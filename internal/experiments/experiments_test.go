package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dmmkit/internal/dspace"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// quickCfg keeps the integration tests fast while exercising the full
// pipeline (workload -> trace -> profile -> managers -> replay).
var quickCfg = Config{Seeds: 2, Quick: true}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	t1, err := RunTable1(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := t1.Cells

	// Column 1 (DRR): custom < Lea < Kingsley, as in the paper.
	if !(cells[MgrCustom][WorkloadDRR].MaxFootprint < cells[MgrLea][WorkloadDRR].MaxFootprint) {
		t.Errorf("DRR: custom (%d) not below Lea (%d)",
			cells[MgrCustom][WorkloadDRR].MaxFootprint, cells[MgrLea][WorkloadDRR].MaxFootprint)
	}
	if !(cells[MgrLea][WorkloadDRR].MaxFootprint < cells[MgrKingsley][WorkloadDRR].MaxFootprint) {
		t.Errorf("DRR: Lea (%d) not below Kingsley (%d)",
			cells[MgrLea][WorkloadDRR].MaxFootprint, cells[MgrKingsley][WorkloadDRR].MaxFootprint)
	}

	// Column 2 (recon3d): custom < Regions and custom < Kingsley.
	if !(cells[MgrCustom][WorkloadRecon].MaxFootprint < cells[MgrRegions][WorkloadRecon].MaxFootprint) {
		t.Errorf("recon3d: custom (%d) not below Regions (%d)",
			cells[MgrCustom][WorkloadRecon].MaxFootprint, cells[MgrRegions][WorkloadRecon].MaxFootprint)
	}
	if !(cells[MgrCustom][WorkloadRecon].MaxFootprint < cells[MgrKingsley][WorkloadRecon].MaxFootprint) {
		t.Errorf("recon3d: custom not below Kingsley")
	}

	// Column 3 (render3d): custom < Obstacks < Kingsley; Lea < Kingsley.
	if !(cells[MgrCustom][WorkloadRender].MaxFootprint < cells[MgrObstacks][WorkloadRender].MaxFootprint) {
		t.Errorf("render3d: custom (%d) not below Obstacks (%d)",
			cells[MgrCustom][WorkloadRender].MaxFootprint, cells[MgrObstacks][WorkloadRender].MaxFootprint)
	}
	if !(cells[MgrObstacks][WorkloadRender].MaxFootprint < cells[MgrKingsley][WorkloadRender].MaxFootprint) {
		t.Errorf("render3d: Obstacks not below Kingsley")
	}
	if !(cells[MgrLea][WorkloadRender].MaxFootprint < cells[MgrKingsley][WorkloadRender].MaxFootprint) {
		t.Errorf("render3d: Lea not below Kingsley (paper: 53%% better)")
	}

	// Every footprint must cover the live lower bound.
	for _, m := range Managers {
		for _, w := range Workloads {
			c := cells[m][w]
			if c.MaxFootprint < c.MaxLive {
				t.Errorf("%s/%s: footprint %d below live bytes %d", m, w, c.MaxFootprint, c.MaxLive)
			}
		}
	}

	// Aggregate improvement must be substantial and positive.
	if avg := t1.AverageImprovement(); avg < 0.15 {
		t.Errorf("average improvement %.2f; paper reports ~0.60", avg)
	}
}

func TestTable1Rendering(t *testing.T) {
	t1, err := RunTable1(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, t1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"Kingsley-Windows", "our DM manager", "paper 2.09e+06", "average improvement"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table output missing %q", frag)
		}
	}
}

func TestFigure5SeriesShape(t *testing.T) {
	f5, err := RunFigure5(context.Background(), Config{Quick: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Lea) < 50 || len(f5.Custom) < 50 {
		t.Fatalf("series too short: lea=%d custom=%d", len(f5.Lea), len(f5.Custom))
	}
	// The custom curve must track live bytes far more closely than Lea
	// on average (the Figure 5 story).
	var leaExcess, customExcess, n float64
	for i := range f5.Custom {
		if i >= len(f5.Lea) {
			break
		}
		live := float64(f5.Custom[i].Live)
		if live <= 0 {
			continue
		}
		leaExcess += float64(f5.Lea[i].Footprint) - live
		customExcess += float64(f5.Custom[i].Footprint) - live
		n++
	}
	if customExcess >= leaExcess {
		t.Errorf("custom mean excess %.0f not below Lea %.0f", customExcess/n, leaExcess/n)
	}
	var buf bytes.Buffer
	if err := f5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 50 {
		t.Errorf("CSV has only %d lines", lines)
	}
	if chart := f5.Chart(60, 10); !strings.Contains(chart, "Lea footprint") {
		t.Error("chart missing legend")
	}
}

func TestPerfOverheadModest(t *testing.T) {
	prs, err := RunPerf(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prs) != len(Workloads) {
		t.Fatalf("got %d perf rows, want %d", len(prs), len(Workloads))
	}
	for _, pr := range prs {
		if pr.Units[MgrKingsley] <= 0 {
			t.Errorf("%s: no Kingsley work recorded", pr.Workload)
		}
		// The paper's claim: ~10% overhead at application level. Allow
		// headroom for quick-mode noise but fail on blowups.
		if pr.AppOverhead > 0.5 {
			t.Errorf("%s: app overhead %.1f%%, far above the paper's ~10%%", pr.Workload, 100*pr.AppOverhead)
		}
	}
}

func TestOrderAblationShowsPenalty(t *testing.T) {
	or, err := RunOrderAblation(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if or.WrongFootprint <= or.RightFootprint {
		t.Errorf("wrong order (%d) not worse than right order (%d); Figure 4 expects a penalty",
			or.WrongFootprint, or.RightFootprint)
	}
	// The wrong order must have been forced into never split/coalesce.
	if or.WrongDesign.Vector.SplitWhen != 0 || or.WrongDesign.Vector.CoalesceWhen != 0 {
		t.Error("wrong-order design still splits/coalesces")
	}
	var buf bytes.Buffer
	if err := WriteOrder(&buf, or); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "penalty") {
		t.Error("order report missing penalty line")
	}
}

func TestStaticVsDynamic(t *testing.T) {
	st, err := RunStaticVsDynamic(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.StaticBytes <= st.DynamicPeak {
		t.Errorf("static plan (%d) not above dynamic footprint (%d)", st.StaticBytes, st.DynamicPeak)
	}
	var buf bytes.Buffer
	if err := WriteStatic(&buf, st); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "static worst-case") {
		t.Error("static report missing header")
	}
}

// TestTable1ParallelMatchesSequential pins the engine redesign's
// determinism contract at the experiments level: fanning the Table 1
// workload×seed cells over 8 workers must reproduce the sequential cells
// exactly (every job owns a private trace, profile and heap, and the
// reduction runs in a fixed order).
func TestTable1ParallelMatchesSequential(t *testing.T) {
	seqCfg := quickCfg
	seqCfg.Parallelism = 1
	seq, err := RunTable1(context.Background(), seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := quickCfg
	parCfg.Parallelism = 8
	par, err := RunTable1(context.Background(), parCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Managers {
		for _, w := range Workloads {
			if seq.Cells[m][w] != par.Cells[m][w] {
				t.Errorf("%s/%s: sequential %+v != parallel %+v", m, w, seq.Cells[m][w], par.Cells[m][w])
			}
		}
	}
}

func TestTable1Cancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunTable1(ctx, quickCfg); err == nil {
		t.Error("RunTable1 on a cancelled context succeeded")
	}
}

func TestBuildWorkloadTraceErrors(t *testing.T) {
	if _, err := BuildWorkloadTrace("nope", 1, true); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := NewManager("nope", nil); err == nil {
		t.Error("unknown manager accepted")
	}
}

func TestManagersAreFreshPerRun(t *testing.T) {
	tr, err := BuildWorkloadTrace(WorkloadDRR, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	p := profileOf(t, tr)
	m1, err := NewManager(MgrKingsley, p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(MgrKingsley, p)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Error("NewManager returned a shared instance")
	}
}

// profileOf is a test helper computing a trace's profile.
func profileOf(t *testing.T, tr *trace.Trace) *profile.Profile {
	t.Helper()
	return profile.FromTrace(tr)
}

func TestFitAblation(t *testing.T) {
	frs, err := RunFitAblation(context.Background(), quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(frs) != 5 {
		t.Fatalf("got %d fit results, want 5", len(frs))
	}
	byFit := map[string]int64{}
	for _, r := range frs {
		if r.MaxFootprint <= 0 {
			t.Errorf("fit %d: no footprint", r.Fit)
		}
		byFit[fitName(r.Fit)] = r.MaxFootprint
	}
	// The paper chooses exact fit for footprint: it must not lose to
	// worst fit, the anti-footprint policy.
	if byFit["exact"] > byFit["worst"] {
		t.Errorf("exact fit (%d) worse than worst fit (%d)", byFit["exact"], byFit["worst"])
	}
	var buf bytes.Buffer
	if err := WriteFits(&buf, frs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exact") {
		t.Error("fit table missing exact row")
	}
}

func fitName(l dspace.Leaf) string { return dspace.LeafName(dspace.C1Fit, l) }

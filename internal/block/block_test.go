package block

import (
	"testing"
	"testing/quick"

	"dmmkit/internal/heap"
)

func newHeap(t *testing.T, n int64) (*heap.Heap, heap.Addr) {
	t.Helper()
	h := heap.New(heap.Config{})
	a, err := h.Sbrk(n)
	if err != nil {
		t.Fatal(err)
	}
	return h, a
}

func TestLayoutOverheads(t *testing.T) {
	cases := []struct {
		l              Layout
		header, footer int64
		min            int64
	}{
		{Layout{TagsNone, 0, LinksSingle}, 0, 0, 8},
		{Layout{TagsHeader, InfoSize, LinksSingle}, 4, 0, 8},
		{Layout{TagsHeader, InfoSize | InfoStatus, LinksDouble}, 4, 0, 16},
		{Layout{TagsHeader, InfoSize | InfoStatus | InfoPrevSize, LinksDouble}, 8, 0, 16},
		{Layout{TagsBoth, InfoSize | InfoStatus, LinksDouble}, 4, 4, 16},
	}
	for _, c := range cases {
		if err := c.l.Validate(); err != nil {
			t.Errorf("%+v: Validate: %v", c.l, err)
			continue
		}
		if got := c.l.HeaderBytes(); got != c.header {
			t.Errorf("%+v: HeaderBytes = %d, want %d", c.l, got, c.header)
		}
		if got := c.l.FooterBytes(); got != c.footer {
			t.Errorf("%+v: FooterBytes = %d, want %d", c.l, got, c.footer)
		}
		if got := c.l.MinBlock(); got != c.min {
			t.Errorf("%+v: MinBlock = %d, want %d", c.l, got, c.min)
		}
	}
}

func TestLayoutValidateRejectsInconsistent(t *testing.T) {
	if err := (Layout{TagsNone, InfoSize, LinksNone}).Validate(); err == nil {
		t.Error("info without tags validated")
	}
	if err := (Layout{TagsHeader, 0, LinksNone}).Validate(); err == nil {
		t.Error("tags without size field validated")
	}
}

func TestGrossForCoversRequestPlusOverhead(t *testing.T) {
	l := Layout{TagsBoth, InfoSize | InfoStatus, LinksDouble}
	for _, n := range []int64{1, 7, 8, 9, 100, 1000} {
		g := l.GrossFor(n)
		if g < n+l.Overhead() {
			t.Errorf("GrossFor(%d) = %d, too small for payload+overhead", n, g)
		}
		if g%heap.Align != 0 {
			t.Errorf("GrossFor(%d) = %d, unaligned", n, g)
		}
		if g < l.MinBlock() {
			t.Errorf("GrossFor(%d) = %d below MinBlock %d", n, g, l.MinBlock())
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h, a := newHeap(t, 256)
	v := NewView(h, Layout{TagsHeader, InfoSize | InfoStatus, LinksDouble})
	v.SetHeader(a, 64, true, false)
	if got := v.Size(a); got != 64 {
		t.Errorf("Size = %d, want 64", got)
	}
	if !v.Used(a) || v.PrevUsed(a) {
		t.Errorf("flags = used:%v prevUsed:%v, want true,false", v.Used(a), v.PrevUsed(a))
	}
	v.SetUsed(a, false)
	v.SetPrevUsed(a, true)
	if v.Used(a) || !v.PrevUsed(a) {
		t.Error("flag rewrite failed")
	}
	if got := v.Size(a); got != 64 {
		t.Errorf("Size after flag writes = %d, want 64", got)
	}
}

func TestStatusBitsIgnoredWithoutInfoStatus(t *testing.T) {
	h, a := newHeap(t, 64)
	v := NewView(h, Layout{TagsHeader, InfoSize, LinksSingle})
	v.SetHeader(a, 32, true, true)
	if h.U32(a)&0x3 != 0 {
		t.Error("status bits written despite InfoStatus absent")
	}
}

func TestPrevSizeField(t *testing.T) {
	h, a := newHeap(t, 64)
	v := NewView(h, Layout{TagsHeader, InfoSize | InfoStatus | InfoPrevSize, LinksDouble})
	v.SetHeader(a, 48, false, false)
	v.SetPrevSize(a, 128)
	if got := v.PrevSizeField(a); got != 128 {
		t.Errorf("PrevSizeField = %d, want 128", got)
	}
}

func TestFooterAndPrevFooterSize(t *testing.T) {
	h, a := newHeap(t, 256)
	v := NewView(h, Layout{TagsBoth, InfoSize | InfoStatus, LinksDouble})
	v.SetHeader(a, 64, false, true)
	v.WriteFooter(a)
	next := v.Next(a)
	v.SetHeader(next, 32, true, false)
	if got := v.PrevFooterSize(next); got != 64 {
		t.Errorf("PrevFooterSize = %d, want 64", got)
	}
}

func TestPayloadBlockInverse(t *testing.T) {
	h, a := newHeap(t, 64)
	for _, l := range []Layout{
		{TagsHeader, InfoSize, LinksSingle},
		{TagsHeader, InfoSize | InfoStatus | InfoPrevSize, LinksDouble},
		{TagsBoth, InfoSize | InfoStatus, LinksDouble},
	} {
		v := NewView(h, l)
		p := v.Payload(a)
		if v.Block(p) != a {
			t.Errorf("%+v: Block(Payload(a)) != a", l)
		}
	}
}

func TestFreeLinks(t *testing.T) {
	h, a := newHeap(t, 256)
	v := NewView(h, Layout{TagsBoth, InfoSize | InfoStatus, LinksDouble})
	v.SetHeader(a, 64, false, true)
	b := v.Next(a)
	v.SetHeader(b, 64, false, false)
	v.SetNextFree(a, b)
	v.SetPrevFree(b, a)
	if v.NextFree(a) != b || v.PrevFree(b) != a {
		t.Error("free link round trip failed")
	}
}

func TestWalkTilesRegion(t *testing.T) {
	h, a := newHeap(t, 96)
	v := NewView(h, Layout{TagsHeader, InfoSize | InfoStatus, LinksSingle})
	v.SetHeader(a, 32, true, true)
	v.SetHeader(a+32, 16, false, true)
	v.SetHeader(a+48, 48, true, false)
	var sizes []int64
	err := v.Walk(a, a+96, func(bi BlockInfo) error {
		sizes = append(sizes, bi.Size)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 32 || sizes[1] != 16 || sizes[2] != 48 {
		t.Errorf("Walk sizes = %v, want [32 16 48]", sizes)
	}
}

func TestWalkDetectsCorruptSize(t *testing.T) {
	h, a := newHeap(t, 64)
	v := NewView(h, Layout{TagsHeader, InfoSize, LinksSingle})
	h.PutU32(a, 0) // size 0: corrupt
	if err := v.Walk(a, a+64, func(BlockInfo) error { return nil }); err == nil {
		t.Error("Walk accepted zero-size block")
	}
	v.SetHeader(a, 128, false, false) // crosses end
	if err := v.Walk(a, a+64, func(BlockInfo) error { return nil }); err == nil {
		t.Error("Walk accepted block crossing region end")
	}
}

func TestCheckRegionPrevUsedConsistency(t *testing.T) {
	h, a := newHeap(t, 64)
	v := NewView(h, Layout{TagsHeader, InfoSize | InfoStatus, LinksSingle})
	v.SetHeader(a, 32, true, true)
	v.SetHeader(a+32, 32, false, true) // consistent: prev is used
	if _, err := v.CheckRegion(a, a+64); err != nil {
		t.Errorf("consistent region rejected: %v", err)
	}
	v.SetPrevUsed(a+32, false) // now inconsistent
	if _, err := v.CheckRegion(a, a+64); err == nil {
		t.Error("inconsistent prevUsed accepted")
	}
}

func TestCheckRegionFooterConsistency(t *testing.T) {
	h, a := newHeap(t, 64)
	v := NewView(h, Layout{TagsBoth, InfoSize | InfoStatus, LinksDouble})
	v.SetHeader(a, 64, false, true)
	v.WriteFooter(a)
	if _, err := v.CheckRegion(a, a+64); err != nil {
		t.Errorf("consistent footer rejected: %v", err)
	}
	h.PutU32(a+60, 32) // corrupt footer
	if _, err := v.CheckRegion(a, a+64); err == nil {
		t.Error("corrupt footer accepted")
	}
}

// Property: header size/flag encoding round-trips for all aligned sizes and
// flag combinations.
func TestQuickHeaderEncoding(t *testing.T) {
	h, a := newHeap(t, 64)
	v := NewView(h, Layout{TagsHeader, InfoSize | InfoStatus, LinksSingle})
	f := func(raw uint32, used, prevUsed bool) bool {
		size := int64(raw%(1<<27)) &^ (heap.Align - 1)
		if size == 0 {
			size = heap.Align
		}
		v.SetHeader(a, size, used, prevUsed)
		return v.Size(a) == size && v.Used(a) == used && v.PrevUsed(a) == prevUsed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run evaluates fn(i) for every i in [0, n) on up to parallelism
// concurrent workers and waits for them. parallelism <= 0 selects
// GOMAXPROCS; parallelism == 1 runs inline with no goroutines. The first
// error stops the pool (preferring the lowest-index error when several
// jobs fail together), as does context cancellation; fn is never called
// after either. fn must be safe for concurrent invocation with distinct i.
func Run(ctx context.Context, parallelism, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = n
		first  error
	)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if first != nil {
		return first
	}
	return ctx.Err()
}

package core

import (
	"dmmkit/internal/block"
	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// This file implements the A5 flexible-block-size mechanisms — splitting
// (category E) and coalescing (category D) — plus the wilderness chunk and
// system trimming used by variable-size managers.

// maySplit reports whether policy E2/E1 allows splitting a block of size
// have to satisfy want, i.e. whether the remainder is an allowed result
// size.
func (m *Custom) maySplit(have, want int64) bool {
	if m.vec.SplitWhen == dspace.Never {
		return false
	}
	rem := have - want
	min := m.lay.MinBlock()
	if rem < min {
		return false
	}
	if m.vec.SplitWhen == dspace.Deferred && rem < m.par.DeferredSplitMin {
		return false
	}
	switch m.vec.MinBlockSizes {
	case dspace.OneResultSize:
		// Only one remainder size is allowed: the smallest class (or the
		// minimum block when unclassed).
		allowed := min
		if len(m.par.ClassSizes) > 0 {
			allowed = m.par.ClassSizes[0]
		}
		return rem == allowed
	case dspace.ManyFixedSet:
		return m.isClassSize(rem)
	default: // ManyNotFixed
		return true
	}
}

// split carves free block b (not in any list) into a want-byte prefix and
// a free remainder, which is binned. Returns the prefix (== b).
func (m *Custom) split(b heap.Addr, want int64) heap.Addr {
	have := m.v.Size(b)
	rem := b + heap.Addr(want)
	m.v.SetHeader(b, want, false, m.prevUsedBit(b))
	m.writeNeighborInfo(b)
	m.v.SetHeader(rem, have-want, false, true)
	m.writeNeighborInfo(rem)
	m.NoteSplit()
	m.binFree(rem)
	return b
}

// mayCoalesce reports whether policy D1 allows a merge producing result
// bytes.
func (m *Custom) mayCoalesce(result int64) bool {
	switch m.vec.MaxBlockSizes {
	case dspace.OneResultSize:
		return result <= m.par.MaxCoalesceSize
	case dspace.ManyFixedSet:
		return m.isClassSize(result)
	default:
		return true
	}
}

// coalesce merges block b (free, not in any list) with free physical
// neighbours where policy permits, returning the merged block address and
// size. The caller insert/returns the result.
func (m *Custom) coalesce(b heap.Addr) (heap.Addr, int64) {
	size := m.v.Size(b)
	// Backward merge.
	for {
		prev, ok := m.prevNeighbor(b)
		if !ok || m.v.Used(prev) || prev == m.top {
			break
		}
		merged := m.v.Size(prev) + size
		if !m.mayCoalesce(merged) {
			break
		}
		m.unlinkKnownFree(prev)
		b, size = prev, merged
		m.v.SetHeader(b, size, false, m.prevUsedBit(b))
		m.NoteCoalesce()
	}
	// Forward merge.
	for {
		next := b + heap.Addr(size)
		if next >= m.h.Brk() || next == m.top {
			break
		}
		if m.v.Used(next) {
			break
		}
		merged := size + m.v.Size(next)
		if !m.mayCoalesce(merged) {
			break
		}
		m.unlinkKnownFree(next)
		size = merged
		m.v.SetHeader(b, size, false, m.prevUsedBit(b))
		m.NoteCoalesce()
	}
	// Merge into the wilderness when adjacent.
	if m.top != heap.Nil && b+heap.Addr(size) == m.top {
		size += m.v.Size(m.top)
		m.setTop(b, size, m.prevUsedBit(b))
		m.NoteCoalesce()
		return b, -1 // absorbed by top: nothing to bin
	}
	m.v.SetHeader(b, size, false, m.prevUsedBit(b))
	m.writeNeighborInfo(b)
	m.markNeighborOfFree(b, false)
	m.Charge(mm.CostHeader)
	return b, size
}

// prevNeighbor locates the previous physical block when it is known to be
// free, using whatever backward information the layout provides: a footer
// (A3=header+footer, valid only on free blocks) or a prev-size header
// field (A4 includes prevsize). ok is false when b is the first managed
// block, the previous block is in use, or the layout lacks backward info.
func (m *Custom) prevNeighbor(b heap.Addr) (heap.Addr, bool) {
	if b == m.heapStart || b == heap.Nil {
		return heap.Nil, false
	}
	if m.hasStatus() && m.v.PrevUsed(b) {
		return heap.Nil, false
	}
	var ps int64
	switch {
	case m.lay.Tags == block.TagsBoth:
		ps = m.v.PrevFooterSize(b)
	case m.hasPrevSize():
		ps = m.v.PrevSizeField(b)
	default:
		return heap.Nil, false
	}
	if ps <= 0 || heap.Addr(ps) > b-m.heapStart {
		return heap.Nil, false
	}
	return b - heap.Addr(ps), true
}

// prevUsedBit reads the prevUsed bit when the layout records status; it
// defaults to true otherwise (preventing spurious merges).
func (m *Custom) prevUsedBit(b heap.Addr) bool {
	if !m.hasStatus() {
		return true
	}
	return m.v.PrevUsed(b)
}

// writeNeighborInfo maintains the backward-coalescing info for the block
// after b: the footer of b (when free, footer layouts) and/or the
// prev-size field of the next block (prev-size layouts).
func (m *Custom) writeNeighborInfo(b heap.Addr) {
	size := m.v.Size(b)
	if m.lay.Tags == block.TagsBoth {
		m.v.WriteFooter(b)
		m.Charge(mm.CostHeader)
	}
	next := b + heap.Addr(size)
	if next < m.h.Brk() && m.hasPrevSize() {
		m.v.SetPrevSize(next, size)
		m.Charge(mm.CostHeader)
	}
}

// markNeighborOfFree updates the next neighbour's prevUsed bit after b
// changes status.
func (m *Custom) markNeighborOfFree(b heap.Addr, used bool) {
	if !m.hasStatus() {
		return
	}
	next := b + heap.Addr(m.v.Size(b))
	if next < m.h.Brk() {
		m.v.SetPrevUsed(next, used)
		m.Charge(mm.CostHeader)
	}
}

// binFree inserts free block b into the pool for its size and phase.
func (m *Custom) binFree(b heap.Addr) {
	gross := m.sizeOf(b)
	k := m.keyFor(m.phaseOf(b), m.floorClass(gross))
	pl := m.poolFor(k)
	m.insertFree(pl, b)
	m.freeKey[b] = k
}

// setTop installs the wilderness chunk at b with the given size, keeping
// its header (and footer, for boundary-tag layouts) consistent.
func (m *Custom) setTop(b heap.Addr, size int64, prevUsed bool) {
	m.top = b
	m.v.SetHeader(b, size, false, prevUsed)
	if m.lay.Tags == block.TagsBoth {
		m.v.WriteFooter(b)
	}
	m.Charge(mm.CostHeader)
}

// carveTop satisfies gross bytes from the wilderness, extending the break
// as needed. Only variable-range managers use a wilderness.
func (m *Custom) carveTop(gross int64) (heap.Addr, error) {
	min := m.lay.MinBlock()
	if m.topSize() < gross+min {
		need := gross + min - m.topSize() + m.par.TopPad
		start, err := m.h.Sbrk(need)
		if err != nil {
			return heap.Nil, err
		}
		m.Charge(mm.CostSbrk)
		if m.top == heap.Nil {
			if m.heapStart == heap.Nil {
				m.heapStart = start
			}
			m.setTop(start, int64(m.h.Brk()-start), true)
		} else {
			m.setTop(m.top, int64(m.h.Brk()-m.top), m.prevUsedBit(m.top))
		}
	}
	b := m.top
	prevUsed := m.prevUsedBit(m.top)
	topSize := m.v.Size(m.top)
	m.setTop(b+heap.Addr(gross), topSize-gross, true)
	m.v.SetHeader(b, gross, false, prevUsed)
	m.Charge(mm.CostHeader)
	return b, nil
}

func (m *Custom) topSize() int64 {
	if m.top == heap.Nil {
		return 0
	}
	return m.v.Size(m.top)
}

// maybeTrim returns the tail of an oversized wilderness to the system —
// the paper's "when large coalesced chunks of memory are not used, they
// are returned back to the system".
func (m *Custom) maybeTrim() {
	if m.top == heap.Nil {
		return
	}
	size := m.v.Size(m.top)
	if size < m.par.TrimThreshold {
		return
	}
	keep := m.lay.MinBlock()
	release := (size - keep) &^ (heap.Align - 1)
	if release <= 0 {
		return
	}
	if err := m.h.ShrinkBrk(release); err != nil {
		return
	}
	m.Charge(mm.CostTrim)
	m.setTop(m.top, size-release, m.prevUsedBit(m.top))
}

// deferFree pushes b onto its pool's deferred list (used bit kept set so
// neighbours skip it until consolidation).
func (m *Custom) deferFree(b heap.Addr) {
	gross := m.v.Size(b)
	pl := m.poolFor(m.keyFor(m.phaseOf(b), m.floorClass(gross)))
	m.setNextFree(b, pl.deferred)
	pl.deferred = b
	pl.nDeferred++
	m.Charge(mm.CostLink)
}

// consolidate drains every deferred list, coalescing each block and
// binning the results (dlmalloc's malloc_consolidate generalized to the
// D2=deferred leaf).
func (m *Custom) consolidate() {
	keys := append([]poolKey(nil), m.keys...) // coalescing may add pools
	for _, k := range keys {
		pl := m.pools[k]
		for b := pl.deferred; b != heap.Nil; {
			next := m.nextFree(b)
			m.Charge(mm.CostProbe)
			m.v.SetUsed(b, false)
			if merged, size := m.coalesce(b); size >= 0 {
				m.binFree(merged)
			}
			b = next
		}
		pl.deferred = heap.Nil
		pl.nDeferred = 0
	}
}

package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunVisitsEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 2, 8, 100} {
		const n = 64
		var counts [n]atomic.Int32
		err := Run(context.Background(), par, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", par, i, got)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(context.Background(), 4, 0, func(int) error {
		t.Error("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Run(context.Background(), 4, 1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() == 1000 {
		t.Error("error did not stop the pool early")
	}
}

func TestRunSequentialErrorIsFirst(t *testing.T) {
	first := errors.New("first")
	err := Run(context.Background(), 1, 10, func(i int) error {
		if i >= 2 {
			return errors.New("later")
		}
		if i == 1 {
			return first
		}
		return nil
	})
	if !errors.Is(err, first) {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := Run(ctx, 4, 100, func(int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunNilContext(t *testing.T) {
	var ran atomic.Int32
	if err := Run(nil, 2, 10, func(int) error { //nolint:staticcheck // deliberate nil ctx
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10", ran.Load())
	}
}

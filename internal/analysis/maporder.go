package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MapOrder flags `for range` over a map whose body feeds an ordered
// consumer: appends to a slice, sends on a channel, writes through an
// EventSink/io.Writer-shaped method, or invokes a callback value. Go
// randomizes map iteration order per run, so any of these silently
// desyncs the repo's in-order candidate and event streams.
//
// Recognized blessed patterns (not flagged):
//
//   - collect-then-sort: a body that only appends keys/values to slices
//     is fine when every such slice is passed to a sort.*/slices.Sort*
//     call later in the same enclosing block;
//   - per-iteration state: appends, writes and sends whose destination
//     is declared inside the loop body cannot leak iteration order;
//   - table tests: calling the range value (or key) itself — the
//     map-of-functions idiom — invokes each entry once rather than
//     feeding an ordered consumer.
var MapOrder = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flag map iteration feeding slices, channels, writers or callbacks without a sort",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rng := n.(*ast.RangeStmt)
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rng, stack)
		return true
	})
	return nil, nil
}

type appendSite struct {
	key  string // canonical destination expression, e.g. "g.order"
	node ast.Node
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	var appended []appendSite
	seen := map[string]bool{}
	var violation ast.Node
	what := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if violation != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if declaredWithin(pass, n.Chan, rng) {
				return true
			}
			violation, what = n, "sends on a channel"
			return false
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			// append(dst, ...) — remember the destination.
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
					if b.Name() == "append" && len(n.Args) > 0 {
						dst := ast.Unparen(n.Args[0])
						if declaredWithin(pass, dst, rng) {
							return true
						}
						key, ok := exprKey(dst)
						if !ok {
							violation, what = n, "appends in map-iteration order"
							return false
						}
						if !seen[key] {
							seen[key] = true
							appended = append(appended, appendSite{key, n})
						}
					}
					return true
				}
			}
			if fn := calleeFunc(pass, n); fn != nil {
				if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
					if writerMethod(fn.Name(), sig) && !receiverDeclaredWithin(pass, fun, rng) {
						violation, what = n, "writes through "+fn.Name()+" in map-iteration order"
						return false
					}
					return true
				}
				// fmt.Fprint* into an io.Writer is a write too.
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
					if len(n.Args) > 0 && declaredWithin(pass, n.Args[0], rng) {
						return true
					}
					violation, what = n, "writes via fmt."+fn.Name()+" in map-iteration order"
					return false
				}
				return true
			}
			// Call of a function-typed value: a callback observes order —
			// unless the callee is the range variable itself (the
			// map-of-functions table idiom: each entry runs once).
			if obj, name := callbackObject(pass, fun); obj != nil {
				if isRangeVar(pass, rng, obj) || declaredWithin(pass, fun, rng) {
					return true
				}
				violation, what = n, "invokes callback "+name+" in map-iteration order"
				return false
			}
		}
		return true
	})
	if violation != nil {
		pass.Reportf(violation.Pos(),
			"%s inside `for range` over a map; map order is randomized — collect keys, sort, then iterate the sorted slice", what)
		return
	}
	// Pure collectors: every appended-to slice must be sorted after the
	// loop in the enclosing block, or the collected order still leaks.
	for _, site := range appended {
		if !sortedAfter(pass, rng, stack, site.key) {
			pass.Reportf(site.node.Pos(),
				"appends %s in map-iteration order and never sorts it; sort %s after the loop (sort.* / slices.Sort*)",
				site.key, site.key)
		}
	}
}

// exprKey canonicalizes an identifier/selector chain ("x", "g.order",
// "p.Sizes") so append destinations can be matched against later sort
// arguments. Reports ok=false for expressions with calls or indexing,
// which cannot be matched reliably.
func exprKey(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// rootObject resolves the leftmost identifier of an expression to its
// object, so "declared inside the loop" can be decided for b, b.buf,
// (&b).buf alike.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the expression's root object is
// declared inside the range statement — per-iteration state that cannot
// leak map order.
func declaredWithin(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	obj := rootObject(pass, e)
	return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// receiverDeclaredWithin is declaredWithin for a method call's receiver.
func receiverDeclaredWithin(pass *analysis.Pass, fun ast.Expr, rng *ast.RangeStmt) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return declaredWithin(pass, sel.X, rng)
}

// callbackObject reports the variable object a call expression invokes
// when the callee is a function-typed value (not a declared func or
// method), along with its display name.
func callbackObject(pass *analysis.Pass, fun ast.Expr) (types.Object, string) {
	var id *ast.Ident
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil, ""
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil, ""
	}
	if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
		return nil, ""
	}
	return v, id.Name
}

// isRangeVar reports whether obj is the range statement's key or value
// variable.
func isRangeVar(pass *analysis.Pass, rng *ast.RangeStmt, obj types.Object) bool {
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && pass.TypesInfo.Defs[id] == obj {
			return true
		}
	}
	return false
}

// writerMethod reports whether a method looks like an ordered byte/event
// consumer: the io.Writer / trace.EventSink / encoder shape.
func writerMethod(name string, sig *types.Signature) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteEvent", "Encode":
		// Must return an error (possibly after a count) — distinguishes
		// real sinks from coincidentally named pure helpers.
		res := sig.Results()
		if res.Len() == 0 {
			return false
		}
		return res.At(res.Len()-1).Type().String() == "error"
	}
	return false
}

// sortedAfter reports whether the canonical destination key is passed to
// a sort.*/slices.Sort* call in a statement after rng inside the nearest
// enclosing block on the stack. A heuristic (same block, lexically
// after), but it covers the canonical collect-keys-then-sort idiom.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node, key string) bool {
	var block []ast.Stmt
	for i := len(stack) - 1; i >= 0 && block == nil; i-- {
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			block = b.List
		case *ast.CaseClause:
			block = b.Body
		case *ast.CommClause:
			block = b.Body
		}
	}
	after := false
	for _, st := range block {
		if st == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if k, ok := exprKey(arg); ok && k == key {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSbrkGrowsAndReturnsOldBreak(t *testing.T) {
	h := New(Config{})
	a1, err := h.Sbrk(100)
	if err != nil {
		t.Fatalf("Sbrk: %v", err)
	}
	if a1 != Base() {
		t.Fatalf("first Sbrk returned %#x, want base %#x", a1, Base())
	}
	a2, err := h.Sbrk(8)
	if err != nil {
		t.Fatalf("Sbrk: %v", err)
	}
	want := Base() + Addr(roundUp(100))
	if a2 != want {
		t.Fatalf("second Sbrk returned %#x, want %#x", a2, want)
	}
}

func TestSbrkRejectsNonPositive(t *testing.T) {
	h := New(Config{})
	if _, err := h.Sbrk(0); err == nil {
		t.Error("Sbrk(0) succeeded, want error")
	}
	if _, err := h.Sbrk(-5); err == nil {
		t.Error("Sbrk(-5) succeeded, want error")
	}
}

func TestSbrkAlignment(t *testing.T) {
	h := New(Config{})
	for _, n := range []int64{1, 7, 8, 9, 100} {
		a, err := h.Sbrk(n)
		if err != nil {
			t.Fatalf("Sbrk(%d): %v", n, err)
		}
		if a%Align != 0 {
			t.Errorf("Sbrk(%d) returned unaligned address %#x", n, a)
		}
	}
}

func TestFootprintHighWater(t *testing.T) {
	h := New(Config{})
	if _, err := h.Sbrk(1000); err != nil {
		t.Fatal(err)
	}
	fp := h.Footprint()
	if fp != roundUp(1000) {
		t.Fatalf("Footprint = %d, want %d", fp, roundUp(1000))
	}
	if err := h.ShrinkBrk(roundUp(1000)); err != nil {
		t.Fatal(err)
	}
	if h.Footprint() != 0 {
		t.Errorf("Footprint after shrink = %d, want 0", h.Footprint())
	}
	if h.MaxFootprint() != fp {
		t.Errorf("MaxFootprint = %d, want %d (high water unaffected by shrink)", h.MaxFootprint(), fp)
	}
}

func TestShrinkBrkValidation(t *testing.T) {
	h := New(Config{})
	if _, err := h.Sbrk(64); err != nil {
		t.Fatal(err)
	}
	if err := h.ShrinkBrk(3); err == nil {
		t.Error("unaligned shrink succeeded")
	}
	if err := h.ShrinkBrk(128); err == nil {
		t.Error("shrink below base succeeded")
	}
	if err := h.ShrinkBrk(64); err != nil {
		t.Errorf("valid shrink failed: %v", err)
	}
}

func TestFieldRoundTrip(t *testing.T) {
	h := New(Config{})
	a, err := h.Sbrk(64)
	if err != nil {
		t.Fatal(err)
	}
	h.PutU32(a, 0xDEADBEEF)
	h.PutU32(a+4, 42)
	if got := h.U32(a); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x, want 0xDEADBEEF", got)
	}
	if got := h.U32(a + 4); got != 42 {
		t.Errorf("U32 = %d, want 42", got)
	}
	h.PutPtr(a+8, a)
	if got := h.Ptr(a + 8); got != a {
		t.Errorf("Ptr = %#x, want %#x", got, a)
	}
}

func TestAccessOutsideHeapPanics(t *testing.T) {
	h := New(Config{})
	defer func() {
		if recover() == nil {
			t.Error("U32 beyond break did not panic")
		}
	}()
	h.U32(Base() + 1000)
}

func TestMapUnmap(t *testing.T) {
	h := New(Config{})
	a, err := h.Map(10000)
	if err != nil {
		t.Fatal(err)
	}
	if a < h.cfg.SegBase {
		t.Fatalf("segment base %#x below SegBase %#x", a, h.cfg.SegBase)
	}
	if got := h.SegmentSize(a); got != 12288 {
		t.Errorf("SegmentSize = %d, want 12288 (page-rounded)", got)
	}
	h.PutU32(a, 7)
	if h.U32(a) != 7 {
		t.Error("segment field round trip failed")
	}
	if h.Footprint() != 12288 {
		t.Errorf("Footprint = %d, want 12288", h.Footprint())
	}
	if err := h.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if h.Footprint() != 0 {
		t.Errorf("Footprint after unmap = %d, want 0", h.Footprint())
	}
	if err := h.Unmap(a); err == nil {
		t.Error("double unmap succeeded")
	}
}

func TestMapSegmentsDisjoint(t *testing.T) {
	h := New(Config{})
	var addrs []Addr
	for i := 0; i < 10; i++ {
		a, err := h.Map(5000)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for i, a := range addrs {
		h.Fill(a, 5000, byte(i+1))
	}
	for i, a := range addrs {
		for _, b := range h.Bytes(a, 5000) {
			if b != byte(i+1) {
				t.Fatalf("segment %d corrupted: got %d", i, b)
			}
		}
	}
}

func TestLimitForcesOutOfMemory(t *testing.T) {
	h := New(Config{Limit: 8192})
	if _, err := h.Sbrk(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Sbrk(8192); err != ErrOutOfMemory {
		t.Errorf("over-limit Sbrk: err = %v, want ErrOutOfMemory", err)
	}
	if _, err := h.Map(8192); err != ErrOutOfMemory {
		t.Errorf("over-limit Map: err = %v, want ErrOutOfMemory", err)
	}
	if _, err := h.Sbrk(4096); err != nil {
		t.Errorf("within-limit Sbrk failed: %v", err)
	}
}

func TestBrkCannotEnterSegmentArea(t *testing.T) {
	h := New(Config{SegBase: 1 << 16})
	if _, err := h.Sbrk(1 << 17); err != ErrOutOfMemory {
		t.Errorf("Sbrk past SegBase: err = %v, want ErrOutOfMemory", err)
	}
}

func TestReset(t *testing.T) {
	h := New(Config{})
	if _, err := h.Sbrk(100); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Map(100); err != nil {
		t.Fatal(err)
	}
	h.Reset()
	if h.Footprint() != 0 || h.MaxFootprint() != 0 {
		t.Error("Reset did not clear footprint")
	}
	if s := h.SysStats(); s != (SysStats{}) {
		t.Errorf("Reset did not clear stats: %+v", s)
	}
}

func TestSysStatsCounts(t *testing.T) {
	h := New(Config{})
	_, _ = h.Sbrk(16)
	_, _ = h.Sbrk(16)
	_ = h.ShrinkBrk(16)
	a, _ := h.Map(100)
	_ = h.Unmap(a)
	got := h.SysStats()
	want := SysStats{Sbrks: 2, Shrinks: 1, Maps: 1, Unmaps: 1}
	if got != want {
		t.Errorf("SysStats = %+v, want %+v", got, want)
	}
}

// Property: interleaved writes through Sbrk-acquired regions never clobber
// each other as long as the regions are disjoint.
func TestQuickDisjointWrites(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		h := New(Config{})
		type region struct {
			addr Addr
			n    int64
		}
		var regs []region
		for _, s := range sizes {
			n := int64(s%2000) + 1
			a, err := h.Sbrk(n)
			if err != nil {
				return false
			}
			regs = append(regs, region{a, n})
		}
		for i, r := range regs {
			h.Fill(r.addr, r.n, byte(i+1))
		}
		for i, r := range regs {
			for _, b := range h.Bytes(r.addr, r.n) {
				if b != byte(i+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: footprint is always the sum of break extent and live segments,
// and the max never decreases.
func TestQuickFootprintMonotoneMax(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := New(Config{})
	var segs []Addr
	var maxSeen int64
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			_, _ = h.Sbrk(int64(rng.Intn(5000) + 1))
		case 1:
			if a, err := h.Map(int64(rng.Intn(20000) + 1)); err == nil {
				segs = append(segs, a)
			}
		case 2:
			if len(segs) > 0 {
				j := rng.Intn(len(segs))
				if err := h.Unmap(segs[j]); err != nil {
					t.Fatalf("unmap live segment: %v", err)
				}
				segs = append(segs[:j], segs[j+1:]...)
			}
		}
		if h.MaxFootprint() < maxSeen {
			t.Fatalf("MaxFootprint decreased: %d -> %d", maxSeen, h.MaxFootprint())
		}
		maxSeen = h.MaxFootprint()
		if h.Footprint() > h.MaxFootprint() {
			t.Fatalf("Footprint %d exceeds MaxFootprint %d", h.Footprint(), h.MaxFootprint())
		}
	}
}

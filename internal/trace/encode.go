package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Two binary trace formats share the header layout (magic, then the
// uvarint-prefixed name) and differ in the event encoding:
//
//   - DMMT1 writes the event count after the name and encodes every field
//     as an unsigned varint. Signed values (negative Tag/Phase, backward
//     Tick deltas) only survive through two's-complement wraparound and
//     cost 10 bytes each.
//   - DMMT2 (see Encoder) has no up-front count — it is streamable — and
//     zigzag-encodes the signed fields (Tag, Phase, tick deltas). The
//     stream ends with a 0xFF marker byte followed by the event count
//     (a truncation check) and a trailing CRC-32C over all preceding
//     bytes (a corruption check; optional on read, for streams written
//     by releases that predate it).
//
// DecodeBinary and DecodeBinarySource read both formats transparently.
const (
	binaryMagic1 = "DMMT1\n"
	binaryMagic2 = "DMMT2\n"
	magicLen     = len(binaryMagic1)

	// endMarker terminates a DMMT2 event stream. It can never start an
	// event: events start with a Kind byte, and kinds are 0 or 1.
	endMarker = 0xFF

	// maxNameLen bounds the header's name field against crafted input.
	maxNameLen = 1 << 16
	// crcLen is the size of the DMMT2 trailing CRC-32C checksum.
	crcLen = 4
	// maxEventCount bounds the DMMT1 header count against crafted input,
	// and maxPrealloc bounds what DecodeBinary preallocates from it (a
	// forged count must not reserve gigabytes before the first event).
	maxEventCount = 1 << 30
	maxPrealloc   = 1 << 20
)

// castagnoli is the CRC-32C polynomial table shared by the DMMT2 encoder
// and decoder. Castagnoli rather than IEEE for its better burst-error
// detection (and hardware support on common targets).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeBinary writes the trace in the legacy DMMT1 binary format.
// EncodeBinary2 writes the more compact, streamable DMMT2 format; both
// are read back by DecodeBinary and DecodeBinarySource.
func (t *Trace) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic1); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	var lastTick int64
	for _, e := range t.Events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.ID)); err != nil {
			return err
		}
		if e.Kind == KindAlloc {
			if err := putUvarint(uint64(e.Size)); err != nil {
				return err
			}
			if err := putUvarint(uint64(e.Tag)); err != nil {
				return err
			}
		}
		if err := putUvarint(uint64(e.Phase)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.Tick - lastTick)); err != nil {
			return err
		}
		lastTick = e.Tick
	}
	return bw.Flush()
}

// DecodeBinary reads a whole binary trace (either format) into memory.
// For out-of-core replay of large traces use DecodeBinarySource instead.
func DecodeBinary(r io.Reader) (*Trace, error) {
	src, err := DecodeBinarySource(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: src.Name()}
	if s, ok := src.(Sized); ok {
		t.Events = make([]Event, 0, min(s.EventCount(), maxPrealloc))
	}
	for {
		e, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return t, nil
		}
		t.Events = append(t.Events, e)
	}
}

// EncodeJSON writes the trace as indented JSON (for inspection and
// interchange).
func (t *Trace) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// DecodeJSON reads a JSON trace.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

// checkID validates a decoded ID uvarint: values above MaxInt64 would
// silently wrap to a negative Event.ID.
func checkID(i uint64, v uint64) (int64, error) {
	if v > 1<<63-1 {
		return 0, fmt.Errorf("trace: event %d: id %d overflows int64", i, v)
	}
	return int64(v), nil
}

// checkSize validates a decoded Size uvarint: values above MaxInt64 wrap
// negative, and zero-size allocations are invalid in any trace (Validate
// rejects them), so a streaming replay can trust decoded events.
func checkSize(i uint64, v uint64) (int64, error) {
	if v > 1<<63-1 {
		return 0, fmt.Errorf("trace: event %d: size %d overflows int64", i, v)
	}
	if v == 0 {
		return 0, fmt.Errorf("trace: event %d: alloc size 0", i)
	}
	return int64(v), nil
}

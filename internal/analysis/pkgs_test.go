package analysis

import "testing"

func TestMatchPkg(t *testing.T) {
	cases := []struct {
		path, patterns string
		want           bool
	}{
		{"dmmkit/internal/core", DetPkgs, true},
		{"dmmkit/internal/trace", DetPkgs, true},
		{"dmmkit/internal/workloads/drr", DetPkgs, true},
		{"dmmkit/internal/workloads", DetPkgs, true},
		{"dmmkit/internal/experiments", DetPkgs, false},
		{"dmmkit/internal/corex", DetPkgs, false},
		{"dmmkit/internal/core/sub", DetPkgs, false},
		{"dmmkit/internal/core", "dmmkit/internal/core/...", true},
		{"dmmkit/internal/core/sub", "dmmkit/internal/core/...", true},
		{"anything", "", false},
		{"a", "a, b", true},
		{"b", "a, b", true},
	}
	for _, c := range cases {
		if got := matchPkg(c.path, c.patterns); got != c.want {
			t.Errorf("matchPkg(%q, %q) = %v, want %v", c.path, c.patterns, got, c.want)
		}
	}
}

// Command dmmtrace generates the case-study allocation traces to files in
// the binary or JSON trace format, for use with dmmprofile and dmmexplore.
//
// Usage:
//
//	dmmtrace -workload drr -seed 3 -o drr3.trace
//	dmmtrace -workload recon3d -format json -o recon.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmmkit"
)

func main() {
	var (
		workload = flag.String("workload", "drr", "registered workload: "+strings.Join(dmmkit.Workloads(), ", "))
		seed     = flag.Int64("seed", 1, "workload seed")
		quick    = flag.Bool("quick", false, "reduced workload configuration")
		format   = flag.String("format", "binary", "binary or json")
		out      = flag.String("o", "", "output file (default <workload><seed>.trace)")
	)
	flag.Parse()

	tr, err := dmmkit.BuildWorkload(*workload, dmmkit.WorkloadOpts{Seed: *seed, Quick: *quick})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmtrace: %v\n", err)
		os.Exit(2)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s%d.trace", *workload, *seed)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmtrace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = tr.EncodeBinary(f)
	case "json":
		err = tr.EncodeJSON(f)
	default:
		fmt.Fprintf(os.Stderr, "dmmtrace: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmtrace: encoding: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d events, peak live %d bytes -> %s\n",
		tr.Name, len(tr.Events), tr.MaxLiveBytes(), path)
}

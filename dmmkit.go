// Package dmmkit is a library for designing custom dynamic memory (DM)
// managers with reduced memory footprint, reproducing the methodology of
// Atienza, Mamagkakis, Catthoor, Mendias and Soudris, "Dynamic Memory
// Management Design Methodology for Reduced Memory Footprint in Multimedia
// and Wireless Network Applications" (DATE 2004).
//
// The library provides:
//
//   - a simulated byte-addressable heap (allocator metadata lives in-band,
//     so footprint and fragmentation measurements are byte-accurate);
//   - the paper's design space of fifteen orthogonal decision trees with
//     interdependency constraints, ordered traversal and enumeration;
//   - a custom-manager engine that realizes any valid decision vector;
//   - the methodology: profile an application's allocation trace, walk
//     the trees in the published order with footprint heuristics, and
//     build an atomic manager per behavioural phase (composed into a
//     global manager);
//   - reference implementations of the paper's baselines: Kingsley
//     (power-of-two segregated fits), Lea (dlmalloc/ptmalloc policy),
//     region/partition managers, and GNU-style obstacks;
//   - the paper's three case studies as trace-producing workloads (DRR
//     network scheduling, 3D image reconstruction, 3D scalable-mesh
//     rendering) and drivers that regenerate every table and figure of
//     the evaluation.
//
// # Quick start
//
//	tr := dmmkit.DRRTrace(dmmkit.DRRConfig{Seed: 1})
//	prof := dmmkit.Profile(tr)
//	design := dmmkit.Design(prof)      // the methodology's tree walk
//	mgr, _ := design.Build(dmmkit.NewHeap())
//	res, _ := dmmkit.Replay(context.Background(), mgr, tr, dmmkit.ReplayOpts{})
//	fmt.Println(res.MaxFootprint)      // bytes requested from the system
//
// See the examples directory for complete programs.
package dmmkit

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"dmmkit/internal/alloc/kingsley"
	"dmmkit/internal/alloc/lea"
	"dmmkit/internal/alloc/obstack"
	"dmmkit/internal/alloc/region"
	"dmmkit/internal/core"
	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
	"dmmkit/internal/trace"
	"dmmkit/internal/workloads/drr"
	"dmmkit/internal/workloads/recon3d"
	"dmmkit/internal/workloads/render3d"
)

// Core memory-management types.
type (
	// Heap is the simulated byte-addressable heap every manager runs on.
	Heap = heap.Heap
	// HeapConfig configures heap construction (page size, limits).
	HeapConfig = heap.Config
	// Addr is an address inside a heap.
	Addr = heap.Addr
	// Manager is the DM manager interface (Alloc/Free/Footprint/Stats).
	Manager = mm.Manager
	// Request describes one allocation (size, tag, phase).
	Request = mm.Request
	// Stats holds cumulative manager counters.
	Stats = mm.Stats
	// Work is the architecture-neutral execution-time proxy.
	Work = mm.Work
)

// Design-space types (the paper's Sec. 3).
type (
	// Vector is one point of the design space: a leaf per decision tree.
	Vector = dspace.Vector
	// Tree identifies one orthogonal decision tree (A1..E2).
	Tree = dspace.Tree
	// Leaf is a decision within a tree.
	Leaf = dspace.Leaf
)

// Methodology types (the paper's Sec. 4).
type (
	// DesignResult is a designed manager: vector, params, decision log.
	DesignResult = core.Design
	// Params are the profile-derived numeric parameters of a design.
	Params = core.Params
	// CustomManager is an atomic manager realizing a decision vector.
	CustomManager = core.Custom
	// GlobalManager composes per-phase atomic managers (Sec. 3.3).
	GlobalManager = core.Global
	// AppProfile summarizes an application's DM behaviour.
	AppProfile = profile.Profile
	// SizeStats aggregates the allocations of one request size.
	SizeStats = profile.SizeStats
	// PhaseProfile is the per-phase slice of a profile.
	PhaseProfile = profile.PhaseProfile
)

// Trace types.
type (
	// Trace is an application allocation trace.
	Trace = trace.Trace
	// TraceEvent is one dynamic-memory operation of a trace.
	TraceEvent = trace.Event
	// TraceBuilder incrementally constructs well-formed traces.
	TraceBuilder = trace.Builder
	// ReplayOpts configures trace replay.
	ReplayOpts = trace.RunOpts
	// ReplayResult reports footprint statistics of a replay.
	ReplayResult = trace.Result
	// TraceSource streams trace events for out-of-core replay.
	TraceSource = trace.Source
	// TraceOpener yields independent streaming passes over one logical
	// trace (*Trace and *TraceFile implement it).
	TraceOpener = trace.Opener
	// TraceFile is a TraceOpener over an on-disk binary trace.
	TraceFile = trace.File
	// TraceEncoder writes the streamable DMMT2 binary format; it is an
	// EventSink, so generation can pipe straight to disk.
	TraceEncoder = trace.Encoder
	// EventSink consumes generated events as they are emitted.
	EventSink = trace.EventSink
	// TraceStats wraps an EventSink with event/peak-live accounting.
	TraceStats = trace.StatsSink
)

// Event kinds of a TraceEvent.
const (
	// KindAlloc marks an allocation event.
	KindAlloc = trace.KindAlloc
	// KindFree marks a deallocation event.
	KindFree = trace.KindFree
)

// Workload configurations (the paper's case studies).
type (
	// DRRConfig parameterizes the Deficit Round Robin case study.
	DRRConfig = drr.Config
	// Recon3DConfig parameterizes the 3D reconstruction case study.
	Recon3DConfig = recon3d.Config
	// Render3DConfig parameterizes the scalable rendering case study.
	Render3DConfig = render3d.Config
)

// Errors.
var (
	// ErrOutOfMemory is returned when a heap limit is exceeded.
	ErrOutOfMemory = mm.ErrOutOfMemory
	// ErrBadFree is returned when freeing an unknown or dead block.
	ErrBadFree = mm.ErrBadFree
	// ErrBadSize is returned for non-positive request sizes.
	ErrBadSize = mm.ErrBadSize
)

// NewHeap returns a simulated heap with default configuration.
func NewHeap() *Heap { return heap.New(heap.Config{}) }

// NewHeapWith returns a simulated heap with the given configuration.
func NewHeapWith(cfg HeapConfig) *Heap { return heap.New(cfg) }

// NewKingsley returns a Kingsley power-of-two manager over h (the paper's
// "Kingsley-Windows" baseline).
func NewKingsley(h *Heap) Manager { return kingsley.New(h) }

// NewLea returns a Lea/dlmalloc-style manager over h with glibc-like
// defaults (the paper's "Lea-Linux" baseline).
func NewLea(h *Heap) Manager { return lea.New(h, lea.Config{}) }

// NewRegions returns a region/partition manager over h. sizer chooses a
// region's fixed block size from its tag and first request; nil selects
// power-of-two rounding of the first request.
func NewRegions(h *Heap, sizer func(tag int, firstReq int64) int64) Manager {
	return region.New(h, sizer)
}

// NewObstack returns a GNU-style obstack manager over h.
func NewObstack(h *Heap) Manager { return obstack.New(h, 0) }

// NewCustom builds the atomic manager described by a decision vector and
// params, validating the vector against the design-space constraints.
func NewCustom(h *Heap, v Vector, p Params) (*CustomManager, error) {
	return core.NewCustom(h, v, p)
}

// ValidateVector checks a decision vector against the interdependency
// rules of the design space (Fig. 2/3 of the paper).
func ValidateVector(v Vector) error { return dspace.Validate(&v) }

// EnumerateVectors walks every valid decision vector, calling fn until it
// returns false; it returns the number visited. The valid space has
// ~144k points.
func EnumerateVectors(fn func(Vector) bool) int { return dspace.Enumerate(fn) }

// Profile computes the DM behaviour profile of a trace.
func Profile(t *Trace) *AppProfile { return profile.FromTrace(t) }

// Design runs the paper's methodology on a profile: the ordered tree walk
// with constraint propagation and footprint heuristics (Sec. 4.2).
func Design(p *AppProfile) DesignResult { return core.DesignFor(p) }

// DesignGlobal designs and builds the application's global manager: one
// atomic manager per behavioural phase when phases are memory-disjoint, a
// single atomic manager otherwise. It returns the manager and the
// per-phase designs.
func DesignGlobal(name string, p *AppProfile) (*GlobalManager, map[int]DesignResult, error) {
	return core.BuildGlobal(name, p)
}

// Replay runs a trace against a manager and reports footprint statistics.
// Cancelling ctx stops the replay between events.
func Replay(ctx context.Context, m Manager, t *Trace, opts ReplayOpts) (ReplayResult, error) {
	return trace.Run(ctx, m, t, opts)
}

// ReplaySource replays an event stream against a manager: the out-of-core
// form of Replay, with memory bounded by the application's live set
// rather than the trace length. Results are identical to Replay on the
// materialized equivalent of the stream.
func ReplaySource(ctx context.Context, m Manager, src TraceSource, opts ReplayOpts) (ReplayResult, error) {
	return trace.RunSource(ctx, m, src, opts)
}

// ProfileSource computes the DM behaviour profile from an event stream in
// one pass, without materializing the trace; ProfileSource(t.Source()) is
// identical to Profile(t).
func ProfileSource(src TraceSource) (*AppProfile, error) { return profile.FromSource(src) }

// NewTraceEncoder returns a streaming DMMT2 encoder writing to w: call
// Begin, WriteEvent per event (or hand it to a workload as an EventSink),
// then Close. See OpenTraceFile / LoadTrace for reading the file back.
func NewTraceEncoder(w io.Writer) *TraceEncoder { return trace.NewEncoder(w) }

// OpenTraceFile probes a binary trace file (DMMT1 or DMMT2) and returns a
// TraceOpener whose every Open streams the file from disk with O(live-set)
// replay memory. JSON traces have no streaming decoder; use LoadTrace.
func OpenTraceFile(path string) (*TraceFile, error) { return trace.OpenFile(path) }

// OpenTrace returns a replayable source for a trace file of any format:
// binary traces (DMMT1/DMMT2) stream from disk out-of-core, JSON traces
// are materialized in memory and validated. Use it where either a *Trace
// or a *TraceFile is acceptable (Engine.ExploreSource, the CLIs' -trace
// flag).
func OpenTrace(path string) (TraceOpener, error) {
	if f, err := trace.OpenFile(path); err == nil {
		return f, nil
	}
	return LoadTrace(path)
}

// Exploration types.
type (
	// Candidate is one evaluated design-space point.
	Candidate = core.Candidate
	// ExploreOpts configures design-space exploration: sample size,
	// objectives, parallelism, streaming and progress callbacks.
	ExploreOpts = core.ExploreOpts
	// Engine fans design-space exploration out over a worker pool with
	// deterministic, parallelism-independent results.
	Engine = core.Engine
	// Objective identifies one optimization axis of an exploration
	// (footprint, work).
	Objective = core.Objective
)

// The two measured objectives. Setting ExploreOpts.Objectives to both
// turns on multi-objective Pareto mode: the engine maintains a
// footprint×work Pareto front over the in-order candidate stream and
// reports changes through ExploreOpts.OnFront.
const (
	// ObjectiveFootprint is the paper's primary metric: peak bytes
	// requested from the system.
	ObjectiveFootprint = core.ObjectiveFootprint
	// ObjectiveWork is the architecture-neutral execution-time proxy.
	ObjectiveWork = core.ObjectiveWork
)

// ParseObjectives parses a comma-separated objective list as accepted by
// the CLIs: "footprint" (classic scalar mode) or "footprint,work" in
// either order (multi-objective Pareto mode). An empty string selects
// the default, footprint only; work alone is rejected.
func ParseObjectives(s string) ([]Objective, error) { return core.ParseObjectives(s) }

// NewEngine returns an exploration engine with the given default worker
// count (<= 0 means GOMAXPROCS).
func NewEngine(parallelism int) *Engine { return core.NewEngine(parallelism) }

// Explore evaluates design-space candidates against a trace (plus the
// methodology's design), returning measured candidates in a deterministic
// order. Candidates come from opts.Strategy — nil selects a uniform
// exhaustive sample capped at opts.MaxCandidates; NewGASearch selects the
// seeded genetic search. It is the convenience form of Engine.Explore;
// evaluation parallelizes per opts.Parallelism (default GOMAXPROCS) with
// results identical to a sequential run.
func Explore(ctx context.Context, t *Trace, opts ExploreOpts) ([]Candidate, error) {
	return core.NewEngine(0).Explore(ctx, t, opts)
}

// ExploreSource is Explore over any TraceOpener — an in-memory *Trace or
// an on-disk *TraceFile: every candidate replays its own streaming pass,
// so exploring a long binary capture never materializes the events. It is
// the convenience form of Engine.ExploreSource.
func ExploreSource(ctx context.Context, t TraceOpener, opts ExploreOpts) ([]Candidate, error) {
	return core.NewEngine(0).ExploreSource(ctx, t, opts)
}

// SpaceSize returns the number of valid decision vectors (~144k), cached
// after the first enumeration.
func SpaceSize() int { return core.SpaceSize() }

// Registry types. The registry is the toolkit's extension point: managers
// and workloads register by name, and every consumer (experiments, CLIs,
// examples) constructs them through a lookup. The built-ins self-register:
// managers "kingsley", "lea", "regions", "obstack", "custom" (the
// methodology's per-phase global manager) and "designed" (one atomic
// designed manager); workloads "drr", "recon3d" and "render3d".
type (
	// ManagerCtor builds a fresh manager over a heap for a trace whose
	// profile is given; either argument may be nil.
	ManagerCtor = registry.ManagerCtor
	// WorkloadCtor generates one allocation trace of a workload.
	WorkloadCtor = registry.WorkloadCtor
	// WorkloadOpts parameterizes workload trace generation (seed, quick).
	WorkloadOpts = registry.WorkloadOpts
)

// RegisterManager makes a manager family available under name; it panics
// on a duplicate name or nil constructor.
func RegisterManager(name string, ctor ManagerCtor) { registry.RegisterManager(name, ctor) }

// RegisterWorkload makes a trace-producing workload available under name;
// it panics on a duplicate name or nil constructor.
func RegisterWorkload(name string, ctor WorkloadCtor) { registry.RegisterWorkload(name, ctor) }

// NewManagerByName constructs a fresh manager of the named registered
// family. A nil heap selects a default heap; p may be nil for families
// that need no profile ("kingsley", "lea", "obstack").
func NewManagerByName(name string, h *Heap, p *AppProfile) (Manager, error) {
	return registry.NewManager(name, h, p)
}

// BuildWorkload generates the named registered workload's trace.
func BuildWorkload(name string, opts WorkloadOpts) (*Trace, error) {
	return registry.BuildWorkload(name, opts)
}

// Managers lists the registered manager names, sorted.
func Managers() []string { return registry.Managers() }

// Workloads lists the registered workload names, sorted.
func Workloads() []string { return registry.Workloads() }

// ParetoFront filters candidates to the footprint/work Pareto front.
func ParetoFront(cands []Candidate) []Candidate { return core.ParetoFront(cands) }

// BestByFootprint returns the successful candidate with the smallest
// footprint, breaking ties by work; ok is false when every candidate
// failed.
func BestByFootprint(cands []Candidate) (Candidate, bool) { return core.BestByFootprint(cands) }

// NewTraceBuilder returns a builder for a named trace.
func NewTraceBuilder(name string) *TraceBuilder { return trace.NewBuilder(name) }

// LoadTrace reads a trace file written by the dmmtrace tool or the
// Encode methods, accepting the binary formats (DMMT1 and DMMT2) and the
// JSON format, and validates the result (frees must match live
// allocations, sizes must be positive), so a corrupt or hand-damaged file
// fails at load instead of mid-replay. When the file parses as neither
// format, the returned error carries both decoders' failures (a corrupt
// binary trace would otherwise surface only as a misleading JSON syntax
// error).
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read path: a close failure after a full decode is moot
	t, binErr := trace.DecodeBinary(f)
	if binErr == nil {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		return t, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	t, jsonErr := trace.DecodeJSON(f)
	if jsonErr == nil {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, fmt.Errorf("dmmkit: %s is neither a binary nor a JSON trace: %w",
		path, errors.Join(binErr, jsonErr))
}

// DRRTrace generates the Deficit-Round-Robin case study's allocation
// trace (synthetic internet traffic through the DRR scheduler).
func DRRTrace(cfg DRRConfig) *Trace {
	res, err := drr.BuildTrace(cfg)
	if err != nil {
		// The builders fail only on contradictory configurations, which
		// the zero value never is; treat it as a programmer error.
		panic(err)
	}
	return res.Trace
}

// Recon3DTrace generates the 3D image-reconstruction case study's trace.
func Recon3DTrace(cfg Recon3DConfig) *Trace {
	res, err := recon3d.BuildTrace(cfg)
	if err != nil {
		panic(err)
	}
	return res.Trace
}

// Render3DTrace generates the scalable-rendering case study's trace.
func Render3DTrace(cfg Render3DConfig) *Trace {
	res, err := render3d.BuildTrace(cfg)
	if err != nil {
		panic(err)
	}
	return res.Trace
}

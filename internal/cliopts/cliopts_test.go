package cliopts

import (
	"strings"
	"testing"

	"dmmkit/internal/core"
	"dmmkit/internal/search"
)

// TestResolveModeRejectsUnknownStrategy pins the fast-fail contract
// shared by dmmexplore and dmmserve: an unknown strategy is a usage
// error naming the valid options, detected before any workload is built.
func TestResolveModeRejectsUnknownStrategy(t *testing.T) {
	for _, bad := range []string{"", "GA", "genetic", "exhaustive ", "nsga2"} {
		_, _, err := ResolveMode(bad, "")
		if err == nil {
			t.Errorf("strategy %q accepted", bad)
			continue
		}
		for _, want := range ValidStrategies {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("strategy %q: error %q does not list valid option %q", bad, err, want)
			}
		}
	}
}

// TestResolveModeRejectsMalformedObjectives pins the same contract for
// objectives: unknown names, duplicates and trailing commas are usage
// errors, and work-only runs are refused.
func TestResolveModeRejectsMalformedObjectives(t *testing.T) {
	for _, bad := range []string{"latency", "footprint,footprint", "footprint,", "work", ",work"} {
		if _, _, err := ResolveMode("exhaustive", bad); err == nil {
			t.Errorf("objectives %q accepted", bad)
		}
	}
	// nsga has no scalar mode.
	if _, _, err := ResolveMode("nsga", "footprint"); err == nil {
		t.Error("nsga with footprint-only objectives accepted")
	}
}

// TestResolveModeDefaults pins the per-strategy objective defaults: the
// scalar strategies default to footprint only, nsga to footprint,work.
func TestResolveModeDefaults(t *testing.T) {
	cases := []struct {
		strategy, objectives string
		wantMulti            bool
	}{
		{"exhaustive", "", false},
		{"ga", "", false},
		{"nsga", "", true},
		{"exhaustive", "footprint,work", true},
		{"ga", "work,footprint", true},
		{"nsga", "footprint,work", true},
		{"exhaustive", "footprint", false},
	}
	for _, c := range cases {
		objs, multi, err := ResolveMode(c.strategy, c.objectives)
		if err != nil {
			t.Errorf("ResolveMode(%q, %q): %v", c.strategy, c.objectives, err)
			continue
		}
		if multi != c.wantMulti {
			t.Errorf("ResolveMode(%q, %q): multi = %v, want %v", c.strategy, c.objectives, multi, c.wantMulti)
		}
		if multi && len(objs) != 2 {
			t.Errorf("ResolveMode(%q, %q): %d objectives in Pareto mode", c.strategy, c.objectives, len(objs))
		}
	}
}

// TestNewStrategyBuildsEveryValidName holds NewStrategy to its contract
// with ResolveMode: every name ResolveMode accepts builds, everything
// else fails with the identical message.
func TestNewStrategyBuildsEveryValidName(t *testing.T) {
	cfg := SearchConfig{Seed: 1, Population: 8, Generations: 4, Budget: 16}
	for _, name := range ValidStrategies {
		s, err := NewStrategy(name, cfg)
		if err != nil || s == nil {
			t.Errorf("NewStrategy(%q): %v", name, err)
		}
		// Every built-in strategy must be checkpointable, or the server's
		// drain-through-checkpoint shutdown silently degrades to a cancel.
		if _, ok := s.(search.Snapshotter); !ok {
			t.Errorf("NewStrategy(%q): not a search.Snapshotter", name)
		}
	}
	_, errNew := NewStrategy("simulated-annealing", cfg)
	_, _, errResolve := ResolveMode("simulated-annealing", "")
	if errNew == nil || errResolve == nil {
		t.Fatal("unknown strategy accepted")
	}
	if errNew.Error() != errResolve.Error() {
		t.Errorf("NewStrategy and ResolveMode disagree on the unknown-strategy message:\n  %q\n  %q", errNew, errResolve)
	}
}

// TestObjectivesKeyCanonical pins the checkpoint-meta canonicalization:
// order-insensitive, defaulting to footprint.
func TestObjectivesKeyCanonical(t *testing.T) {
	if got := ObjectivesKey(nil); got != "footprint" {
		t.Errorf("ObjectivesKey(nil) = %q", got)
	}
	a := ObjectivesKey([]core.Objective{core.ObjectiveFootprint, core.ObjectiveWork})
	b := ObjectivesKey([]core.Objective{core.ObjectiveWork, core.ObjectiveFootprint})
	if a != b || a != "footprint,work" {
		t.Errorf("ObjectivesKey not canonical: %q vs %q", a, b)
	}
}

package render3d

import (
	"dmmkit/internal/registry"
	"dmmkit/internal/trace"
)

func init() {
	registry.RegisterWorkload("render3d", func(o registry.WorkloadOpts) (*trace.Trace, error) {
		cfg := Config{Seed: o.Seed}
		if o.Quick {
			cfg.Detail = 600
			cfg.Frames = 48
		}
		res, err := StreamTrace(cfg, o.Sink)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	})
}

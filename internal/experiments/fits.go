package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"dmmkit/internal/core"
	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/pool"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// FitResult measures one C1 fit-algorithm leaf on the DRR custom design.
type FitResult struct {
	Fit          dspace.Leaf
	MaxFootprint int64
	Work         int64
}

// RunFitAblation holds the DRR custom design fixed except for the C1 fit
// tree and measures every leaf: the experiment behind the paper's Sec. 5
// choice of exact fit "to avoid as much as possible memory lost in
// internal fragmentation". Seeds run concurrently per cfg.Parallelism.
func RunFitAblation(ctx context.Context, cfg Config) ([]FitResult, error) {
	cfg.defaults()
	fits := []dspace.Leaf{dspace.FirstFit, dspace.NextFit, dspace.BestFit, dspace.WorstFit, dspace.ExactFit}
	perSeed := make([]map[dspace.Leaf]FitResult, cfg.Seeds)
	err := pool.Run(ctx, cfg.Parallelism, cfg.Seeds, func(i int) error {
		seed := int64(i + 1)
		tr, err := BuildWorkloadTrace(WorkloadDRR, seed, cfg.Quick)
		if err != nil {
			return err
		}
		prof := profile.FromTrace(tr)
		base := core.DesignFor(prof)
		got := make(map[dspace.Leaf]FitResult, len(fits))
		for _, f := range fits {
			d := base
			d.Vector.Fit = f
			m, err := d.Build(heap.New(heap.Config{}))
			if err != nil {
				return fmt.Errorf("fit ablation %s: %w", dspace.LeafName(dspace.C1Fit, f), err)
			}
			run, err := trace.Run(ctx, m, tr, trace.RunOpts{})
			if err != nil {
				return err
			}
			got[f] = FitResult{Fit: f, MaxFootprint: run.MaxFootprint, Work: int64(run.Work)}
		}
		perSeed[i] = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []FitResult
	for _, f := range fits {
		r := FitResult{Fit: f}
		for _, got := range perSeed {
			r.MaxFootprint += got[f].MaxFootprint
			r.Work += got[f].Work
		}
		r.MaxFootprint /= int64(cfg.Seeds)
		r.Work /= int64(cfg.Seeds)
		out = append(out, r)
	}
	return out, nil
}

// WriteFits renders the fit ablation table.
func WriteFits(w io.Writer, frs []FitResult) error {
	fmt.Fprintln(w, "C1 fit-algorithm ablation on the DRR custom design (rest of the vector fixed):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "fit\tmax footprint (B)\twork units")
	for _, r := range frs {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", dspace.LeafName(dspace.C1Fit, r.Fit), r.MaxFootprint, r.Work)
	}
	return tw.Flush()
}

package core

import (
	"context"
	"fmt"
	"sort"

	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/search"
	"dmmkit/internal/trace"
)

// Candidate is one evaluated point of the design space.
type Candidate struct {
	Vector       dspace.Vector
	Params       Params
	MaxFootprint int64
	Work         int64
	Designed     bool // produced by the methodology (not enumeration)
	Err          error
}

// ExploreOpts configures a design-space exploration run.
type ExploreOpts struct {
	// Strategy decides which vectors are evaluated, one generation at a
	// time (see dmmkit/internal/search). nil selects the exhaustive
	// ceiling-stride sampler capped at MaxCandidates — the classic
	// Explore behaviour. Strategies carry state; use a fresh value per
	// exploration.
	Strategy search.Strategy
	// MaxCandidates caps how many enumerated vectors are evaluated by
	// the default exhaustive strategy (default 128). The valid space
	// has ~144k points; evaluation samples it with a uniform stride,
	// never exceeding the cap. Ignored when Strategy is set.
	MaxCandidates int
	// IncludeDesigned additionally evaluates the methodology's design,
	// marking it in the result (default behaviour of Explore).
	IncludeDesigned bool
	// Parallelism is the number of concurrent evaluation workers: 0
	// defers to the Engine (whose own zero value means GOMAXPROCS), 1
	// forces sequential evaluation. Results are deterministic and
	// identical at every parallelism level.
	Parallelism int
	// OnCandidate, when set, streams every evaluated candidate in the
	// deterministic result order (proposal order, designed last) as
	// soon as it and all its predecessors are done. Calls are serialized.
	OnCandidate func(Candidate)
	// OnProgress, when set, reports completion counts after every
	// evaluated candidate. total is the number of evaluations scheduled
	// so far (the already-finished generations plus the one in flight,
	// plus the designed candidate when requested); adaptive strategies
	// grow it as they propose further generations. Calls are serialized.
	OnProgress func(done, total int)
}

// SpaceSize returns the number of valid decision vectors (~144k), cached
// after the first enumeration.
func SpaceSize() int { return dspace.SpaceSize() }

// Explore evaluates a uniform sample of the valid design space against a
// trace, returning every candidate with its measured footprint and work.
// It demonstrates what the paper's Sec. 3 claims: the space contains both
// the general-purpose managers and far better custom points, and
// exhaustive search is feasible once constraints prune the space.
//
// Explore is the convenience form of Engine.Explore with a background
// context and default parallelism.
func Explore(tr *trace.Trace, opts ExploreOpts) ([]Candidate, error) {
	return (&Engine{}).Explore(context.Background(), tr, opts)
}

func evaluate(ctx context.Context, v dspace.Vector, par Params, tr *trace.Trace, designed bool) Candidate {
	c := Candidate{Vector: v, Params: par, Designed: designed}
	m, err := NewCustom(heap.New(heap.Config{}), v, par)
	if err != nil {
		c.Err = fmt.Errorf("core: building candidate: %w", err)
		return c
	}
	res, err := trace.Run(ctx, m, tr, trace.RunOpts{})
	if err != nil {
		c.Err = fmt.Errorf("core: replaying candidate: %w", err)
		return c
	}
	c.MaxFootprint = res.MaxFootprint
	c.Work = int64(res.Work)
	return c
}

// ParetoFront returns the candidates not dominated in (footprint, work),
// sorted by footprint. Failed candidates are excluded.
func ParetoFront(cands []Candidate) []Candidate {
	var ok []Candidate
	for _, c := range cands {
		if c.Err == nil {
			ok = append(ok, c)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].MaxFootprint != ok[j].MaxFootprint {
			return ok[i].MaxFootprint < ok[j].MaxFootprint
		}
		return ok[i].Work < ok[j].Work
	})
	var front []Candidate
	bestWork := int64(1<<62 - 1)
	for _, c := range ok {
		if c.Work < bestWork {
			front = append(front, c)
			bestWork = c.Work
		}
	}
	return front
}

// BestByFootprint returns the successful candidate with the smallest
// footprint, breaking ties by work. ok is false when every candidate
// failed.
func BestByFootprint(cands []Candidate) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range cands {
		if c.Err != nil {
			continue
		}
		if !found || c.MaxFootprint < best.MaxFootprint ||
			(c.MaxFootprint == best.MaxFootprint && c.Work < best.Work) {
			best = c
			found = true
		}
	}
	return best, found
}

package kingsley

import (
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
)

func init() {
	registry.RegisterManager("kingsley", func(h *heap.Heap, _ *profile.Profile) (mm.Manager, error) {
		return New(h), nil
	})
}

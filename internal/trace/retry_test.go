package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// transientErr is a minimal error carrying the Transient marker.
type transientErr struct{ msg string }

func (e transientErr) Error() string   { return e.msg }
func (e transientErr) Transient() bool { return true }

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{os.ErrNotExist, false},
		{transientErr{"busy"}, true},
		{fmt.Errorf("opening: %w", transientErr{"busy"}), true},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{fmt.Errorf("read: %w", syscall.EINTR), true},
		{syscall.ENOENT, false},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// writeSampleFile encodes sampleTrace to a DMMT2 file and returns its
// path and encoded bytes.
func writeSampleFile(t *testing.T) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := sampleTrace().EncodeBinary2(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.dmmt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

func TestOpenFileRetriesTransient(t *testing.T) {
	path, _ := writeSampleFile(t)
	fails := 2
	opens := 0
	var slept []time.Duration
	f, err := OpenFileWith(path, FileOpts{
		Open: func(p string) (io.ReadCloser, error) {
			opens++
			if fails > 0 {
				fails--
				return nil, transientErr{"disk momentarily busy"}
			}
			return os.Open(p)
		},
		Retry: RetryPolicy{
			Attempts: 3,
			Backoff:  10 * time.Millisecond,
			Sleep:    func(d time.Duration) { slept = append(slept, d) },
		},
	})
	if err != nil {
		t.Fatalf("OpenFileWith: %v", err)
	}
	if opens != 3 {
		t.Errorf("opened %d times, want 3", opens)
	}
	if want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}; len(slept) != 2 ||
		slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff sleeps = %v, want %v", slept, want)
	}
	if f.Name() != sampleTrace().Name {
		t.Errorf("Name = %q, want %q", f.Name(), sampleTrace().Name)
	}
}

func TestOpenFileRetryGivesUp(t *testing.T) {
	opens := 0
	_, err := OpenFileWith("irrelevant", FileOpts{
		Open: func(string) (io.ReadCloser, error) {
			opens++
			return nil, transientErr{"still busy"}
		},
		Retry: RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}},
	})
	if err == nil || !strings.Contains(err.Error(), "still busy") {
		t.Fatalf("err = %v, want the transient failure after retries", err)
	}
	if opens != 3 {
		t.Errorf("opened %d times, want 3", opens)
	}
}

func TestOpenFileHardFailureNotRetried(t *testing.T) {
	opens := 0
	_, err := OpenFileWith(filepath.Join(t.TempDir(), "missing.dmmt"), FileOpts{
		Open: func(p string) (io.ReadCloser, error) {
			opens++
			return os.Open(p)
		},
		Retry: RetryPolicy{Attempts: 5, Sleep: func(time.Duration) {}},
	})
	if err == nil {
		t.Fatal("opening a missing file succeeded")
	}
	if opens != 1 {
		t.Errorf("opened %d times, want 1 (ENOENT is not transient)", opens)
	}
}

// countingHandles is the counting opener of the leak tests: it tracks
// how many handles were opened and how many remain unclosed.
type countingHandles struct {
	opened int
	closed int
}

func (c *countingHandles) open(path string) (io.ReadCloser, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c.opened++
	return &countedHandle{ReadCloser: fh, c: c}, nil
}

func (c *countingHandles) leaked() int { return c.opened - c.closed }

type countedHandle struct {
	io.ReadCloser
	c      *countingHandles
	closed bool
}

func (h *countedHandle) Close() error {
	if !h.closed {
		h.closed = true
		h.c.closed++
	}
	return h.ReadCloser.Close()
}

// TestFileHandleLifecycle proves no pass handle leaks, whatever path the
// pass takes: exhaustion, mid-stream decode error, replay abort, early
// Close, and double Close.
func TestFileHandleLifecycle(t *testing.T) {
	path, raw := writeSampleFile(t)
	counts := &countingHandles{}
	f, err := OpenFileWith(path, FileOpts{Open: counts.open})
	if err != nil {
		t.Fatal(err)
	}
	if counts.leaked() != 0 {
		t.Fatalf("probe leaked %d handles", counts.leaked())
	}

	t.Run("exhaustion", func(t *testing.T) {
		src, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, ok, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
		if counts.leaked() != 0 {
			t.Fatalf("exhausted pass leaked %d handles", counts.leaked())
		}
	})

	t.Run("early-close-idempotent", func(t *testing.T) {
		src, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := src.Next(); err != nil || !ok {
			t.Fatalf("Next = %v, %v", ok, err)
		}
		for i := 0; i < 3; i++ { // double (triple) Close must be safe
			if err := Close(src); err != nil {
				t.Fatalf("Close #%d: %v", i+1, err)
			}
		}
		if counts.leaked() != 0 {
			t.Fatalf("closed pass leaked %d handles", counts.leaked())
		}
		// A closed source stays terminated.
		if _, ok, err := src.Next(); ok || err != nil {
			t.Fatalf("Next after Close = %v, %v; want exhausted, nil", ok, err)
		}
	})

	t.Run("mid-pass-decode-error", func(t *testing.T) {
		// Corrupt a kind byte in the middle of a copy of the file so the
		// pass dies partway through decoding.
		bad := append([]byte(nil), raw...)
		bad[len(bad)/2] = 0x77
		badPath := filepath.Join(t.TempDir(), "bad.dmmt")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		badCounts := &countingHandles{}
		bf, err := OpenFileWith(badPath, FileOpts{Open: badCounts.open})
		if err != nil {
			t.Fatal(err) // header is intact; the probe succeeds
		}
		src, err := bf.Open()
		if err != nil {
			t.Fatal(err)
		}
		sawErr := false
		for {
			_, ok, err := src.Next()
			if err != nil {
				sawErr = true
				break
			}
			if !ok {
				break
			}
		}
		if !sawErr {
			t.Fatal("corrupt stream decoded without error")
		}
		if badCounts.leaked() != 0 {
			t.Fatalf("failed pass leaked %d handles", badCounts.leaked())
		}
		// The error is latched and Close after the failure is still safe.
		if _, _, err := src.Next(); err == nil {
			t.Fatal("latched error cleared")
		}
		if err := Close(src); err != nil {
			t.Fatalf("Close after decode error: %v", err)
		}
	})

	t.Run("replay-abort", func(t *testing.T) {
		// A cancelled replay abandons the source mid-pass; RunSource's
		// deferred Close must release the handle anyway.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		src, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunSource(ctx, newLeakTestManager(), src, RunOpts{}); err == nil {
			t.Fatal("cancelled replay succeeded")
		}
		if counts.leaked() != 0 {
			t.Fatalf("aborted replay leaked %d handles", counts.leaked())
		}
	})
}

// leakTestManager is a trivial bump allocator for lifecycle tests that
// never fails (so replay outcomes depend only on the stream).
type leakTestManager struct {
	next heap.Addr
	live map[heap.Addr]int64
	cur  int64
	max  int64
}

func newLeakTestManager() *leakTestManager {
	return &leakTestManager{next: 16, live: map[heap.Addr]int64{}}
}

func (m *leakTestManager) Name() string { return "leaktest" }

func (m *leakTestManager) Alloc(r mm.Request) (heap.Addr, error) {
	p := m.next
	m.next += heap.Addr(r.Size)
	m.live[p] = r.Size
	m.cur += r.Size
	if m.cur > m.max {
		m.max = m.cur
	}
	return p, nil
}

func (m *leakTestManager) Free(p heap.Addr) error {
	size, ok := m.live[p]
	if !ok {
		return fmt.Errorf("leaktest: free of unknown %v", p)
	}
	delete(m.live, p)
	m.cur -= size
	return nil
}

func (m *leakTestManager) Footprint() int64    { return m.cur }
func (m *leakTestManager) MaxFootprint() int64 { return m.max }
func (m *leakTestManager) Stats() mm.Stats     { return mm.Stats{LiveBytes: m.cur, MaxLive: m.max} }

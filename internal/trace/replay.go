package trace

import (
	"context"
	"fmt"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// Point is one sample of the footprint evolution during replay — the data
// behind Figure 5 of the paper.
type Point struct {
	Index     int   // event index
	Tick      int64 // application time
	Footprint int64 // bytes requested from the system
	Live      int64 // bytes requested by the application
}

// Result summarizes a replay run.
type Result struct {
	Manager      string
	TraceName    string
	Events       int
	MaxFootprint int64 // peak system memory: the paper's metric
	MaxLive      int64 // peak requested bytes (lower bound)
	Final        int64 // footprint after the last event
	Work         mm.Work
	Stats        mm.Stats
	Series       []Point // populated when RunOpts.SampleEvery > 0
}

// Overhead returns MaxFootprint relative to the workload's peak live bytes
// (1.0 = perfect).
func (r Result) Overhead() float64 {
	if r.MaxLive == 0 {
		return 0
	}
	return float64(r.MaxFootprint) / float64(r.MaxLive)
}

// RunOpts configures a replay.
type RunOpts struct {
	// SampleEvery records a Series point every N events (0 = no series).
	SampleEvery int
}

// liveTable maps allocation IDs to payload addresses during replay.
// Builder-generated traces use dense sequential IDs, so the table is a
// flat slice indexed by ID, preallocated once from the trace's maximum ID
// — no per-event map or slice allocation on the replay hot path. Sparse
// (hand-written) traces fall back to a map. Address Nil marks a dead ID:
// managers never hand out the nil address.
type liveTable struct {
	dense  []heap.Addr
	sparse map[int64]heap.Addr
}

func newLiveTable(t *Trace) liveTable {
	maxID, minID := int64(-1), int64(0)
	for i := range t.Events {
		if id := t.Events[i].ID; id > maxID {
			maxID = id
		} else if id < minID {
			minID = id
		}
	}
	// A Builder trace has one alloc event per ID, so maxID+1 never
	// exceeds the event count; tolerate mild sparseness beyond that.
	// Negative IDs (possible only in hand-built in-memory traces — the
	// binary decoders reject them) are not slice-indexable and force
	// the map fallback.
	if minID >= 0 && maxID < 2*int64(len(t.Events))+64 {
		return liveTable{dense: make([]heap.Addr, maxID+1)}
	}
	return liveTable{sparse: make(map[int64]heap.Addr, 256)}
}

func (lt *liveTable) set(id int64, p heap.Addr) {
	if lt.dense != nil {
		lt.dense[id] = p
	} else {
		lt.sparse[id] = p
	}
}

// take returns the live address for id and forgets it; ok is false when id
// is not live.
func (lt *liveTable) take(id int64) (heap.Addr, bool) {
	if lt.dense != nil {
		if id < 0 || id >= int64(len(lt.dense)) || lt.dense[id] == heap.Nil {
			return heap.Nil, false
		}
		p := lt.dense[id]
		lt.dense[id] = heap.Nil
		return p, true
	}
	p, ok := lt.sparse[id]
	if ok {
		delete(lt.sparse, id)
	}
	return p, ok
}

// cancelCheckMask batches context checks on the replay hot path: the
// context is polled once every 4096 events, bounding both the polling
// cost (one atomic load per batch) and the cancellation latency.
const cancelCheckMask = 4096 - 1

// Run replays a trace against a manager, returning footprint statistics.
// The manager is used as-is (callers Reset or construct fresh managers for
// independent runs). Cancelling ctx stops the replay between events and
// returns the context's error; a nil ctx is treated as context.Background.
//
// Run is the in-memory form of RunSource: the two produce identical
// results for the same event sequence.
func Run(ctx context.Context, m mm.Manager, t *Trace, opts RunOpts) (Result, error) {
	return RunSource(ctx, m, t.Source(), opts)
}

// RunSource replays an event stream against a manager. It is the
// out-of-core replay path: memory is bounded by the source's own needs
// plus a live-pointer table proportional to the application's live set —
// independent of the trace length — so a trace decoded straight off disk
// (DecodeBinarySource) replays without ever being materialized.
//
// The source is consumed to exhaustion (or to the first error) and, when
// it holds resources, released via Close. Results are identical to Run
// on the materialized equivalent of the stream.
func RunSource(ctx context.Context, m mm.Manager, src Source, opts RunOpts) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The in-memory source takes the fast path: direct slice iteration
	// with the preallocated dense live table, no per-event interface
	// call. True streams use a live-set-bounded sparse table, since a
	// dense table indexed by allocation ID would grow with the trace
	// length.
	if ss, ok := src.(*sliceSource); ok {
		return runSlice(ctx, m, ss, opts)
	}
	// Sources that can fill an event buffer in bulk (the DMMT2 decoder,
	// wrapped in-memory sources) take the batched loop: same semantics,
	// one interface call per ~1024 events instead of one per event.
	if bs, ok := src.(BatchSource); ok {
		return runBatch(ctx, m, bs, opts)
	}
	addrs := liveTable{sparse: make(map[int64]heap.Addr, 256)}
	defer Close(src)
	name := src.Name()
	res := Result{Manager: m.Name(), TraceName: name}
	for i := 0; ; i++ {
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("replay %q on %s: event %d: %w", name, m.Name(), i, err)
			}
		}
		e, ok, err := src.Next()
		if err != nil {
			return res, fmt.Errorf("replay %q on %s: event %d: %w", name, m.Name(), i, err)
		}
		if !ok {
			break
		}
		res.Events++
		switch e.Kind {
		case KindAlloc:
			p, err := m.Alloc(mm.Request{Size: e.Size, Tag: int(e.Tag), Phase: int(e.Phase)})
			if err != nil {
				return res, fmt.Errorf("replay %q on %s: event %d: alloc %d bytes: %w", name, m.Name(), i, e.Size, err)
			}
			addrs.set(e.ID, p)
		case KindFree:
			p, ok := addrs.take(e.ID)
			if !ok {
				return res, fmt.Errorf("replay %q on %s: event %d: free of unknown id %d", name, m.Name(), i, e.ID)
			}
			if err := m.Free(p); err != nil {
				return res, fmt.Errorf("replay %q on %s: event %d: free id %d: %w", name, m.Name(), i, e.ID, err)
			}
		default:
			return res, fmt.Errorf("replay %q: event %d: bad kind %d", name, i, e.Kind)
		}
		if opts.SampleEvery > 0 && i%opts.SampleEvery == 0 {
			res.Series = append(res.Series, Point{
				Index: i, Tick: e.Tick, Footprint: m.Footprint(), Live: m.Stats().LiveBytes,
			})
		}
	}
	finish(&res, m)
	return res, nil
}

// runBatch is RunSource's bulk path: the source fills a reused event
// buffer, and the replay iterates it by pointer — the streaming
// equivalent of runSlice's dense loop, with the same live-set-bounded
// sparse table as the generic loop. It must stay semantically identical
// to the per-event loop above; the batch-vs-single differential tests
// pin the two together.
func runBatch(ctx context.Context, m mm.Manager, src BatchSource, opts RunOpts) (Result, error) {
	addrs := liveTable{sparse: make(map[int64]heap.Addr, 256)}
	defer Close(src)
	name := src.Name()
	res := Result{Manager: m.Name(), TraceName: name}
	buf := make([]Event, BatchLen)
	i := 0
	for {
		// One check per batch keeps the cancellation latency of the
		// per-event loop (which polls every 4096 events) or better.
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("replay %q on %s: event %d: %w", name, m.Name(), i, err)
		}
		n, berr := src.NextBatch(buf)
		//dmm:hotloop
		for k := 0; k < n; k++ {
			e := &buf[k]
			res.Events++
			switch e.Kind {
			case KindAlloc:
				p, err := m.Alloc(mm.Request{Size: e.Size, Tag: int(e.Tag), Phase: int(e.Phase)})
				if err != nil {
					return res, fmt.Errorf("replay %q on %s: event %d: alloc %d bytes: %w", name, m.Name(), i, e.Size, err)
				}
				addrs.set(e.ID, p)
			case KindFree:
				p, ok := addrs.take(e.ID)
				if !ok {
					return res, fmt.Errorf("replay %q on %s: event %d: free of unknown id %d", name, m.Name(), i, e.ID)
				}
				if err := m.Free(p); err != nil {
					return res, fmt.Errorf("replay %q on %s: event %d: free id %d: %w", name, m.Name(), i, e.ID, err)
				}
			default:
				return res, fmt.Errorf("replay %q: event %d: bad kind %d", name, i, e.Kind)
			}
			if opts.SampleEvery > 0 && i%opts.SampleEvery == 0 {
				res.Series = append(res.Series, Point{
					Index: i, Tick: e.Tick, Footprint: m.Footprint(), Live: m.Stats().LiveBytes,
				})
			}
			i++
		}
		if berr != nil {
			// The events before the error replayed above, so the failing
			// index matches the per-event loop's.
			return res, fmt.Errorf("replay %q on %s: event %d: %w", name, m.Name(), i, berr)
		}
		if n == 0 {
			break
		}
	}
	finish(&res, m)
	return res, nil
}

// runSlice is RunSource's in-memory fast path: it iterates the event
// slice directly — pointer access, no per-event interface call or event
// copy — with the dense live table preallocated from a pre-scan, exactly
// the classic replay loop. It must stay semantically identical to the
// streaming loop above; the streaming-vs-in-memory differential tests
// pin the two together.
func runSlice(ctx context.Context, m mm.Manager, ss *sliceSource, opts RunOpts) (Result, error) {
	t := ss.t
	events := t.Events[ss.i:]
	ss.i = len(t.Events) // the pass consumes the source either way
	addrs := newLiveTable(t)
	res := Result{Manager: m.Name(), TraceName: t.Name}
	if opts.SampleEvery > 0 {
		res.Series = make([]Point, 0, len(events)/opts.SampleEvery+1)
	}
	//dmm:hotloop
	for i := range events {
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("replay %q on %s: event %d: %w", t.Name, m.Name(), i, err)
			}
		}
		e := &events[i]
		res.Events++
		switch e.Kind {
		case KindAlloc:
			p, err := m.Alloc(mm.Request{Size: e.Size, Tag: int(e.Tag), Phase: int(e.Phase)})
			if err != nil {
				return res, fmt.Errorf("replay %q on %s: event %d: alloc %d bytes: %w", t.Name, m.Name(), i, e.Size, err)
			}
			addrs.set(e.ID, p)
		case KindFree:
			p, ok := addrs.take(e.ID)
			if !ok {
				return res, fmt.Errorf("replay %q on %s: event %d: free of unknown id %d", t.Name, m.Name(), i, e.ID)
			}
			if err := m.Free(p); err != nil {
				return res, fmt.Errorf("replay %q on %s: event %d: free id %d: %w", t.Name, m.Name(), i, e.ID, err)
			}
		default:
			return res, fmt.Errorf("replay %q: event %d: bad kind %d", t.Name, i, e.Kind)
		}
		if opts.SampleEvery > 0 && i%opts.SampleEvery == 0 {
			res.Series = append(res.Series, Point{
				Index: i, Tick: e.Tick, Footprint: m.Footprint(), Live: m.Stats().LiveBytes,
			})
		}
	}
	finish(&res, m)
	return res, nil
}

// finish fills the end-of-replay statistics common to both loops.
func finish(res *Result, m mm.Manager) {
	res.MaxFootprint = m.MaxFootprint()
	res.Final = m.Footprint()
	res.Stats = m.Stats()
	res.MaxLive = res.Stats.MaxLive
	res.Work = res.Stats.Work
}

package drr

import (
	"fmt"
	"sort"

	"dmmkit/internal/netsim"
	"dmmkit/internal/trace"
)

// nodeBytes is the size of the inline per-packet descriptor (pointers,
// lengths, timestamps) allocated together with the payload in a single
// skbuff-style buffer, as router implementations do.
const nodeBytes = 24

// stateBytes is the size of a per-flow state record (classifier entry,
// deficit bookkeeping, statistics). Flow state is allocated when a flow
// becomes active and released after an idle timeout, so it lives much
// longer than packets and pins heap regions across traffic phases.
const stateBytes = 96

// flowIdleMs is the inactivity timeout after which flow state is freed.
const flowIdleMs = 150.0

// Allocation tags used in the emitted trace.
const (
	TagPacket = 0
	TagFlow   = 2
)

// Config controls the DRR simulation.
type Config struct {
	Seed         int64
	Queues       int     // number of DRR queues (default 16)
	QuantumBytes int64   // per-round quantum (default 1500)
	DrainFactor  float64 // service rate relative to offered average (default 1.05)
	Net          netsim.Config
}

func (c *Config) defaults() {
	if c.Queues == 0 {
		c.Queues = 16
	}
	if c.QuantumBytes == 0 {
		c.QuantumBytes = 1500
	}
	if c.DrainFactor == 0 {
		c.DrainFactor = 1.3
	}
	c.Net.Seed = c.Seed
}

type queuedPacket struct {
	size  int64 // wire size (the buffer adds the inline descriptor)
	bufID int64
}

type queue struct {
	pkts    []queuedPacket
	deficit int64
}

// Result reports scheduler-level statistics alongside the trace.
type Result struct {
	Trace      *trace.Trace
	Packets    int
	PeakQueued int64 // peak bytes queued across all queues
	Forwarded  int
	Rounds     int
}

// BuildTrace simulates DRR over synthetic traffic and returns its
// allocation trace (plus scheduler statistics).
func BuildTrace(cfg Config) (*Result, error) { return StreamTrace(cfg, nil) }

// StreamTrace is BuildTrace with the events streamed into sink as they
// are generated (a nil sink materializes them): Result.Trace then
// carries only the name and the event slice is never built. The traffic
// generator's own packet list still scales with the trace, so streaming
// removes the events' share of generation memory, not the simulation's.
func StreamTrace(cfg Config, sink trace.EventSink) (*Result, error) {
	cfg.defaults()
	pkts := netsim.Generate(cfg.Net)
	if len(pkts) == 0 {
		return nil, fmt.Errorf("drr: traffic generator produced no packets")
	}
	stats := netsim.Summarize(pkts, cfg.Net)
	drainPerMs := stats.MeanSize // placeholder; replaced below
	avgBytesPerMs := float64(stats.Bytes) / stats.Duration
	drainPerMs = avgBytesPerMs * cfg.DrainFactor

	b := trace.NewBuilderTo(fmt.Sprintf("drr-seed%d", cfg.Seed), sink)
	queues := make([]queue, cfg.Queues)
	res := &Result{Packets: len(pkts)}

	// Per-flow state: allocated on first packet of an activity period,
	// freed after an idle timeout.
	type flowState struct {
		id       int64
		lastSeen float64
	}
	flows := make(map[int]*flowState)

	var queuedBytes int64
	next := 0
	duration := netsim.Duration(cfg.Net)

	// The DRR case study is one behavioural phase: the traffic mix
	// drifts, but the scheduler's allocation behaviour (variable packet
	// buffers + fixed descriptors + flow state) is uniform.
	for tick := 0.0; tick < duration; tick++ {
		// Arrivals for this tick.
		for next < len(pkts) && pkts[next].TimeMs < tick+1 {
			p := pkts[next]
			next++
			if fs, ok := flows[p.Flow]; ok {
				fs.lastSeen = tick
			} else {
				flows[p.Flow] = &flowState{id: b.Alloc(stateBytes, TagFlow), lastSeen: tick}
			}
			q := p.Flow % cfg.Queues
			bufID := b.Alloc(p.Size+nodeBytes, TagPacket)
			queues[q].pkts = append(queues[q].pkts, queuedPacket{size: p.Size, bufID: bufID})
			queuedBytes += p.Size + nodeBytes
			if queuedBytes > res.PeakQueued {
				res.PeakQueued = queuedBytes
			}
		}
		// Flow-state expiry (deterministic order).
		var expired []int
		for f, fs := range flows {
			if tick-fs.lastSeen > flowIdleMs {
				expired = append(expired, f)
			}
		}
		sort.Ints(expired)
		for _, f := range expired {
			b.Free(flows[f].id)
			delete(flows, f)
		}
		// Service: DRR rounds within this tick's byte budget.
		budget := int64(drainPerMs)
		for budget > 0 {
			served := int64(0)
			res.Rounds++
			for qi := range queues {
				q := &queues[qi]
				if len(q.pkts) == 0 {
					q.deficit = 0 // idle queues lose their deficit
					continue
				}
				q.deficit += cfg.QuantumBytes
				for len(q.pkts) > 0 && q.pkts[0].size <= q.deficit && budget > 0 {
					pk := q.pkts[0]
					q.pkts = q.pkts[1:]
					q.deficit -= pk.size
					budget -= pk.size
					served += pk.size
					queuedBytes -= pk.size + nodeBytes
					b.Free(pk.bufID)
					res.Forwarded++
				}
			}
			if served == 0 {
				break // all queues empty or budget exhausted
			}
		}
		b.Tick()
	}
	// Drain whatever remains queued (link idle at trace end).
	for qi := range queues {
		for _, pk := range queues[qi].pkts {
			b.Free(pk.bufID)
			res.Forwarded++
		}
		queues[qi].pkts = nil
	}
	var lastFlows []int
	for f := range flows {
		lastFlows = append(lastFlows, f)
	}
	sort.Ints(lastFlows)
	for _, f := range lastFlows {
		b.Free(flows[f].id)
	}
	res.Trace = b.Build()
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("drr: writing trace: %w", err)
	}
	// In sink mode the events are gone; the Builder's own live accounting
	// already enforced well-formedness as they streamed out.
	if sink == nil {
		if err := res.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("drr: emitted invalid trace: %w", err)
		}
	}
	return res, nil
}

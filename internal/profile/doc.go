// Package profile analyzes the dynamic-memory behaviour of an application
// trace: block-size populations, lifetimes, per-phase behaviour, LIFO-ness
// and size variability. The Designer (internal/core) consumes these
// numbers to take the decisions the paper's methodology leaves to
// profiling ("we first profile its DM behaviour", Sec. 5).
package profile

// Package replay shards one long trace replay across phase
// checkpoints. A single sequential pass (Build) snapshots the manager —
// simulated heap, in-band structures, live-pointer table — at phase
// boundaries into an in-memory Phases index; the trace then replays as
// K independent windows in parallel (Replay), each continuing from its
// snapshot's clone, with a deterministic merge that is verified
// bit-identical to the sequential pass at every shard seam. The same
// index drives incremental suffix re-runs (ReplayFrom): re-sampling or
// re-verifying a tail costs only the tail.
//
// Sharding never changes results: the snapshot clones carry the full
// prefix state (footprint high-water marks, cumulative stats, heap
// bytes), so shard K's end state is byte-for-byte the sequential state
// at the same event index, and the merged Result equals the sequential
// trace.RunSource Result. The sharded-vs-sequential differential tests
// pin this across every registered workload and manager.
package replay

import (
	"context"
	"fmt"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/pool"
	"dmmkit/internal/trace"
)

// Options configures Build.
type Options struct {
	// MaxShards caps the number of replay windows (snapshots, counting
	// the initial state). 0 means DefaultMaxShards.
	MaxShards int
	// Every forces an extra snapshot candidate after this many events,
	// for traces whose phases are long or absent. 0 snapshots at phase
	// boundaries only.
	Every int
	// MinWindow suppresses snapshots closer than this many events to
	// the previous one, bounding index memory on traces that flip
	// phases every few events. 0 means DefaultMinWindow.
	MinWindow int
}

// DefaultMaxShards bounds the index size when Options.MaxShards is 0:
// more shards than cores stops paying once every core is busy, and each
// snapshot holds a full manager clone.
const DefaultMaxShards = 16

// DefaultMinWindow is the minimum events per shard when
// Options.MinWindow is 0. Windows much smaller than this cost more to
// open and verify than they save.
const DefaultMinWindow = 4096

func (o Options) withDefaults() Options {
	if o.MaxShards <= 0 {
		o.MaxShards = DefaultMaxShards
	}
	if o.MinWindow <= 0 {
		o.MinWindow = DefaultMinWindow
	}
	return o
}

// snapshot is the replay state at one event boundary: everything needed
// to continue the replay from index as if the prefix had just run.
type snapshot struct {
	index      int        // global index of the first event of the window
	phase      int32      // phase of that event (diagnostic)
	mgr        mm.Manager // manager state after events [0, index)
	live       map[int64]heap.Addr
	pos        trace.Pos // mid-stream resume point
	positioned bool      // pos is valid (the build source reported positions)
	foot       int64     // expected state at the boundary, for seam checks
	maxFoot    int64
	stats      mm.Stats
	sum        uint64
	hasSum     bool
}

// shardEnd is the expected state at the end of a window.
type shardEnd struct {
	foot    int64
	maxFoot int64
	stats   mm.Stats
	sum     uint64
	hasSum  bool
}

// Phases is an immutable index over one (manager, trace) pair: the
// snapshots Build captured plus the sequential end state. Replay and
// ReplayFrom clone the snapshots they start from, so a Phases can be
// replayed any number of times, concurrently.
type Phases struct {
	name  string
	op    trace.Opener
	mem   *trace.Trace // non-nil when the trace is in memory: shard by slicing
	snaps []snapshot
	total int // total events in the trace
	final shardEnd
}

// Shards returns the number of parallel windows Replay will run.
func (p *Phases) Shards() int { return len(p.snaps) }

// Events returns the total event count of the indexed trace.
func (p *Phases) Events() int { return p.total }

// Boundary returns the global event index at which shard k starts.
func (p *Phases) Boundary(k int) int { return p.snaps[k].index }

// Build replays the trace once, sequentially, against m — which must
// implement mm.Cloner — snapshotting the full replay state at phase
// boundaries (plus every Options.Every events when set). It returns the
// index and the sequential replay Result, which is identical to
// trace.RunSource on the same pair. m is consumed: it holds the final
// replay state afterwards.
//
// When the build source reports positions (a DMMT2 file), shards later
// resume by seeking; otherwise file shards re-decode and skip their
// prefix, and in-memory traces slice directly.
func Build(ctx context.Context, m mm.Manager, op trace.Opener, opts Options) (*Phases, trace.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cl, ok := m.(mm.Cloner)
	if !ok {
		return nil, trace.Result{}, fmt.Errorf("replay: manager %s does not support cloning", m.Name())
	}
	opts = opts.withDefaults()
	src, err := op.Open()
	if err != nil {
		return nil, trace.Result{}, err
	}
	defer trace.Close(src)

	p := &Phases{name: src.Name(), op: op}
	if t, ok := op.(*trace.Trace); ok {
		p.mem = t
	}
	pos, _ := src.(trace.Positioner)

	res := trace.Result{Manager: m.Name(), TraceName: p.name}
	live := make(map[int64]heap.Addr, 256)
	snap := func(i int, phase int32, at trace.Pos) error {
		cm, err := cl.CloneManager()
		if err != nil {
			return fmt.Errorf("replay: snapshot at event %d: %w", i, err)
		}
		if _, ok := cm.(mm.Cloner); !ok {
			return fmt.Errorf("replay: clone of %s is not itself cloneable", m.Name())
		}
		lv := make(map[int64]heap.Addr, len(live))
		for id, a := range live {
			lv[id] = a
		}
		s := snapshot{
			index: i, phase: phase, mgr: cm, live: lv,
			pos: at, positioned: pos != nil,
			foot: m.Footprint(), maxFoot: m.MaxFootprint(), stats: m.Stats(),
		}
		if cs, ok := m.(mm.Checksummer); ok {
			s.sum, s.hasSum = cs.StateChecksum(), true
		}
		p.snaps = append(p.snaps, s)
		return nil
	}

	var at trace.Pos
	if pos != nil {
		at = pos.Pos()
	}
	if err := snap(0, 0, at); err != nil {
		return nil, trace.Result{}, err
	}
	var lastPhase int32
	first := true
	sinceSnap := 0
	i := 0
	for {
		if i&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, trace.Result{}, fmt.Errorf("replay: build %q on %s: event %d: %w", p.name, m.Name(), i, err)
			}
		}
		if pos != nil {
			at = pos.Pos()
		}
		e, ok, err := src.Next()
		if err != nil {
			return nil, trace.Result{}, fmt.Errorf("replay: build %q on %s: event %d: %w", p.name, m.Name(), i, err)
		}
		if !ok {
			break
		}
		boundary := !first && e.Phase != lastPhase
		if opts.Every > 0 && sinceSnap >= opts.Every {
			boundary = true
		}
		if boundary && sinceSnap >= opts.MinWindow && len(p.snaps) < opts.MaxShards {
			if err := snap(i, e.Phase, at); err != nil {
				return nil, trace.Result{}, err
			}
			sinceSnap = 0
		}
		if err := apply(m, live, &e); err != nil {
			return nil, trace.Result{}, fmt.Errorf("replay: build %q on %s: event %d: %w", p.name, m.Name(), i, err)
		}
		res.Events++
		lastPhase = e.Phase
		first = false
		sinceSnap++
		i++
	}
	res.MaxFootprint = m.MaxFootprint()
	res.Final = m.Footprint()
	res.Stats = m.Stats()
	res.MaxLive = res.Stats.MaxLive
	res.Work = res.Stats.Work
	p.total = i
	p.final = shardEnd{foot: res.Final, maxFoot: res.MaxFootprint, stats: res.Stats}
	if cs, ok := m.(mm.Checksummer); ok {
		p.final.sum, p.final.hasSum = cs.StateChecksum(), true
	}
	return p, res, nil
}

// apply replays one event against a manager and its live-pointer table,
// with the exact semantics of the trace package's replay loops.
func apply(m mm.Manager, live map[int64]heap.Addr, e *trace.Event) error {
	switch e.Kind {
	case trace.KindAlloc:
		a, err := m.Alloc(mm.Request{Size: e.Size, Tag: int(e.Tag), Phase: int(e.Phase)})
		if err != nil {
			return fmt.Errorf("alloc %d bytes: %w", e.Size, err)
		}
		live[e.ID] = a
	case trace.KindFree:
		a, ok := live[e.ID]
		if !ok {
			return fmt.Errorf("free of unknown id %d", e.ID)
		}
		delete(live, e.ID)
		if err := m.Free(a); err != nil {
			return fmt.Errorf("free id %d: %w", e.ID, err)
		}
	default:
		return fmt.Errorf("bad kind %d", e.Kind)
	}
	return nil
}

// Replay runs every window as an independent shard over internal/pool
// at the given parallelism (<= 0 selects GOMAXPROCS) and merges: each
// shard clones its snapshot, replays its window, and must land exactly
// on the next snapshot's state — footprint, high-water mark, cumulative
// stats, and state checksum are all verified at every seam, and the
// last shard against the sequential end state. The merged Result is
// bit-identical to the sequential one; opts.SampleEvery samples at
// global indices, so even the Series matches trace.RunSource's.
func (p *Phases) Replay(ctx context.Context, parallelism int, opts trace.RunOpts) (trace.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	K := len(p.snaps)
	if K == 0 {
		return trace.Result{}, fmt.Errorf("replay: empty index")
	}
	results := make([]trace.Result, K)
	ends := make([]shardEnd, K)
	err := pool.Run(ctx, parallelism, K, func(k int) error {
		r, end, err := p.replayShard(ctx, k, opts)
		if err != nil {
			return err
		}
		results[k] = r
		ends[k] = end
		return nil
	})
	if err != nil {
		return trace.Result{}, err
	}
	for k := 0; k < K; k++ {
		want := p.final
		if k+1 < K {
			s := &p.snaps[k+1]
			want = shardEnd{foot: s.foot, maxFoot: s.maxFoot, stats: s.stats, sum: s.sum, hasSum: s.hasSum}
		}
		got := ends[k]
		switch {
		case got.foot != want.foot, got.maxFoot != want.maxFoot:
			return trace.Result{}, fmt.Errorf("replay: shard %d of %q diverged: footprint %d/%d at seam, want %d/%d",
				k, p.name, got.foot, got.maxFoot, want.foot, want.maxFoot)
		case got.stats != want.stats:
			return trace.Result{}, fmt.Errorf("replay: shard %d of %q diverged: stats %+v at seam, want %+v",
				k, p.name, got.stats, want.stats)
		case got.hasSum && want.hasSum && got.sum != want.sum:
			return trace.Result{}, fmt.Errorf("replay: shard %d of %q diverged: state checksum %016x at seam, want %016x",
				k, p.name, got.sum, want.sum)
		}
	}
	merged := results[K-1]
	merged.Events = p.total
	merged.TraceName = p.name
	if opts.SampleEvery > 0 {
		var series []trace.Point
		for k := range results {
			series = append(series, results[k].Series...)
		}
		merged.Series = series
	}
	return merged, nil
}

// ReplayFrom replays only the suffix starting at shard k, sequentially,
// on a clone of that shard's snapshot — the incremental path: re-running
// a tail (denser sampling, a seam re-verification) costs only the tail.
// The returned Result carries the cumulative end-of-trace state, equal
// to a full sequential replay; its Series covers only the replayed
// suffix.
func (p *Phases) ReplayFrom(ctx context.Context, k int, opts trace.RunOpts) (trace.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 0 || k >= len(p.snaps) {
		return trace.Result{}, fmt.Errorf("replay: shard %d out of range [0,%d)", k, len(p.snaps))
	}
	res, end, err := p.replaySpan(ctx, k, p.total, opts)
	if err != nil {
		return trace.Result{}, err
	}
	if end.foot != p.final.foot || end.stats != p.final.stats {
		return trace.Result{}, fmt.Errorf("replay: suffix from shard %d of %q diverged from the sequential end state", k, p.name)
	}
	res.Events = p.total
	return res, nil
}

// replayShard replays window k (snapshot k up to snapshot k+1 or the
// end of the trace).
func (p *Phases) replayShard(ctx context.Context, k int, opts trace.RunOpts) (trace.Result, shardEnd, error) {
	end := p.total
	if k+1 < len(p.snaps) {
		end = p.snaps[k+1].index
	}
	return p.replaySpan(ctx, k, end, opts)
}

// replaySpan clones snapshot k and replays events [snaps[k].index, end)
// against the clone, returning the window result and the clone's end
// state.
func (p *Phases) replaySpan(ctx context.Context, k, end int, opts trace.RunOpts) (trace.Result, shardEnd, error) {
	s := &p.snaps[k]
	fail := func(err error) (trace.Result, shardEnd, error) {
		return trace.Result{}, shardEnd{}, fmt.Errorf("replay: shard %d of %q (events %d..%d): %w", k, p.name, s.index, end, err)
	}
	cl, ok := s.mgr.(mm.Cloner)
	if !ok {
		return fail(fmt.Errorf("snapshot manager %s is not cloneable", s.mgr.Name()))
	}
	m, err := cl.CloneManager()
	if err != nil {
		return fail(err)
	}
	live := make(map[int64]heap.Addr, len(s.live))
	for id, a := range s.live {
		live[id] = a
	}
	res := trace.Result{Manager: m.Name(), TraceName: p.name}
	step := func(gi int, e *trace.Event) error {
		if err := apply(m, live, e); err != nil {
			return fmt.Errorf("event %d: %w", gi, err)
		}
		res.Events++
		if opts.SampleEvery > 0 && gi%opts.SampleEvery == 0 {
			res.Series = append(res.Series, trace.Point{
				Index: gi, Tick: e.Tick, Footprint: m.Footprint(), Live: m.Stats().LiveBytes,
			})
		}
		return nil
	}

	if p.mem != nil {
		events := p.mem.Events[s.index:end]
		for j := range events {
			if j&4095 == 0 {
				if err := ctx.Err(); err != nil {
					return fail(err)
				}
			}
			if err := step(s.index+j, &events[j]); err != nil {
				return fail(err)
			}
		}
	} else if err := p.streamSpan(ctx, s, end, step); err != nil {
		return fail(err)
	}

	res.MaxFootprint = m.MaxFootprint()
	res.Final = m.Footprint()
	res.Stats = m.Stats()
	res.MaxLive = res.Stats.MaxLive
	res.Work = res.Stats.Work
	se := shardEnd{foot: res.Final, maxFoot: res.MaxFootprint, stats: res.Stats}
	if cs, ok := m.(mm.Checksummer); ok {
		se.sum, se.hasSum = cs.StateChecksum(), true
	}
	return res, se, nil
}

// streamSpan drives step over events [s.index, end) of a streamed
// trace: seek straight to the snapshot's position when the Opener
// supports it, else decode-and-discard the prefix.
func (p *Phases) streamSpan(ctx context.Context, s *snapshot, end int, step func(gi int, e *trace.Event) error) error {
	var src trace.Source
	if oa, ok := p.op.(trace.OpenerAt); ok && s.positioned {
		var err error
		if src, err = oa.OpenAt(s.pos); err != nil {
			return err
		}
	} else {
		var err error
		if src, err = p.op.Open(); err != nil {
			return err
		}
		if err := skipEvents(ctx, src, s.index); err != nil {
			_ = trace.Close(src)
			return err
		}
	}
	defer trace.Close(src)

	buf := make([]trace.Event, trace.BatchLen)
	gi := s.index
	for gi < end {
		if err := ctx.Err(); err != nil {
			return err
		}
		want := end - gi
		if want > len(buf) {
			want = len(buf)
		}
		n, berr := trace.ReadBatch(src, buf[:want])
		for j := 0; j < n; j++ {
			if err := step(gi, &buf[j]); err != nil {
				return err
			}
			gi++
		}
		if berr != nil {
			return berr
		}
		if n == 0 {
			return fmt.Errorf("stream ended at event %d, want %d", gi, end)
		}
	}
	return nil
}

// skipEvents decodes and discards n events, advancing src to the
// window's first event for sources that cannot seek.
func skipEvents(ctx context.Context, src trace.Source, n int) error {
	buf := make([]trace.Event, trace.BatchLen)
	skipped := 0
	for skipped < n {
		if err := ctx.Err(); err != nil {
			return err
		}
		want := n - skipped
		if want > len(buf) {
			want = len(buf)
		}
		got, err := trace.ReadBatch(src, buf[:want])
		skipped += got
		if err != nil {
			return err
		}
		if got == 0 {
			return fmt.Errorf("stream ended at event %d while skipping to %d", skipped, n)
		}
	}
	return nil
}

package search

import "dmmkit/internal/dspace"

// Result is the measured fitness of one evaluated decision vector, as fed
// back to a Strategy. Lower footprint is better; work breaks ties (the
// same ordering core.BestByFootprint uses). Failed marks vectors whose
// manager could not be built or replayed — strategies must treat them as
// maximally unfit, not skip them, so that the evaluation accounting stays
// aligned with the proposal order.
type Result struct {
	Vector    dspace.Vector
	Footprint int64
	Work      int64
	Failed    bool
}

// Better reports whether a is strictly fitter than b: successful beats
// failed, then smaller footprint, then smaller work. Equal fitness is not
// "better", so sorts using Better are stable under it.
func Better(a, b Result) bool {
	if a.Failed != b.Failed {
		return !a.Failed
	}
	if a.Footprint != b.Footprint {
		return a.Footprint < b.Footprint
	}
	return a.Work < b.Work
}

// Strategy decides which design-space vectors to evaluate next, one
// generation at a time. The exploration engine alternates strictly between
// the two methods:
//
//	for batch := s.Next(); len(batch) > 0; batch = s.Next() {
//	    results := evaluate(batch) // in parallel, order preserved
//	    s.Observe(results)
//	}
//
// Next returns the next generation of vectors to evaluate; an empty batch
// ends the exploration. Observe receives the results of the last proposed
// batch, in proposal order. Strategies are not safe for concurrent use —
// the engine serializes all calls — and all strategy state (including any
// randomness) must be owned by the strategy itself so that a given
// strategy value replays identically at every evaluation parallelism.
type Strategy interface {
	Next() []dspace.Vector
	Observe(results []Result)
}

// Fixed pins decision trees to specific leaves, restricting a strategy to
// the subspace where every pinned tree holds its pinned leaf. A nil or
// empty Fixed is the whole valid space. Pinning is how tests shrink the
// space to an exhaustively checkable oracle and how callers explore "what
// if this decision were forced" scenarios.
type Fixed map[dspace.Tree]dspace.Leaf

// Matches reports whether v agrees with every pinned leaf.
func (f Fixed) Matches(v dspace.Vector) bool {
	for t := 0; t < dspace.NumTrees; t++ {
		if l, ok := f[dspace.Tree(t)]; ok && v.Get(dspace.Tree(t)) != l {
			return false
		}
	}
	return true
}

// Size returns the number of valid vectors in the pinned subspace. With no
// pins it is the cached dspace.SpaceSize; otherwise it walks the valid
// space counting matches.
func Size(fix Fixed) int {
	if len(fix) == 0 {
		return dspace.SpaceSize()
	}
	n := 0
	dspace.Enumerate(func(v dspace.Vector) bool {
		if fix.Matches(v) {
			n++
		}
		return true
	})
	return n
}

// Sample returns a uniform ceiling-stride sample of at most max valid
// vectors from the pinned subspace, in enumeration order. The ceiling
// stride guarantees at most max samples: stride*max >= total, so
// ceil(total/stride) <= max.
func Sample(max int, fix Fixed) []dspace.Vector {
	if max <= 0 {
		return nil
	}
	if len(fix) > 0 {
		// The subspace size isn't cached, so collect the matches in one
		// enumeration pass and stride over the slice.
		var matched []dspace.Vector
		dspace.Enumerate(func(v dspace.Vector) bool {
			if fix.Matches(v) {
				matched = append(matched, v)
			}
			return true
		})
		total := len(matched)
		if total == 0 {
			return nil
		}
		stride := (total + max - 1) / max
		vectors := make([]dspace.Vector, 0, (total+stride-1)/stride)
		for i := 0; i < total; i += stride {
			vectors = append(vectors, matched[i])
		}
		return vectors
	}
	total := dspace.SpaceSize()
	stride := (total + max - 1) / max
	if stride < 1 {
		stride = 1
	}
	vectors := make([]dspace.Vector, 0, (total+stride-1)/stride)
	i := 0
	dspace.Enumerate(func(v dspace.Vector) bool {
		if i%stride == 0 {
			vectors = append(vectors, v)
		}
		i++
		return true
	})
	return vectors
}

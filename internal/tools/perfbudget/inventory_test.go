package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fakeResolver maps positions to functions from a hand-written table,
// so the parser goldens run without invoking the compiler.
type fakeResolver struct {
	funcs map[string]string // "file:line" -> symbol
	hot   map[string]bool   // "file:line" -> in hot loop
}

func (f fakeResolver) funcAt(file string, line int) string {
	return f.funcs[key(file, line)]
}

func (f fakeResolver) hotAt(file string, line int) bool {
	return f.hot[key(file, line)]
}

func key(file string, line int) string {
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func readFixture(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestParseM2Golden runs the -m=2 parser over captured compiler output
// that includes everything it must skip: a "go:" toolchain note, "# pkg"
// headers, indented flow detail lines, the duplicated header (trailing
// colon) and bare forms of each escape site, closure inline lines, and
// a positionless chatter line.
func TestParseM2Golden(t *testing.T) {
	res := fakeResolver{funcs: map[string]string{
		"internal/trace/context.go:12": "newContextSource",
		"internal/trace/context.go:30": "readName",
		"internal/trace/context.go:31": "readName",
		"internal/trace/context.go:40": "readName",
	}}
	inv := &Inventory{GoVersion: "go1.24", Packages: map[string]*PkgFacts{}}
	parseM2(readFixture(t, "m2_sample.txt"), res, inv)

	heap := inv.Packages["dmmkit/internal/heap"]
	if heap == nil {
		t.Fatal("no heap package in inventory")
	}
	wantHeap := map[string]*FuncFacts{
		"(*Heap).U32":     {Inline: true},
		"(*Heap).u32Slow": {Inline: false, InlineReason: "marked go:noinline"},
		"(*Heap).Sbrk":    {Inline: false, InlineReason: "function too complex: cost N exceeds budget N"},
	}
	if !reflect.DeepEqual(heap.Funcs, wantHeap) {
		t.Errorf("heap funcs = %+v, want %+v", dump(heap.Funcs), dump(wantHeap))
	}

	trace := inv.Packages["dmmkit/internal/trace"]
	if trace == nil {
		t.Fatal("no trace package in inventory")
	}
	wantTrace := map[string]*FuncFacts{
		"newContextSource": {Escapes: map[string]int{"&contextSource{...} escapes to heap": 1}},
		"readName": {Escapes: map[string]int{
			"make([]byte, nameLen) escapes to heap": 2,
			"moved to heap: scratch":                1,
		}},
		// Generic instantiation brackets are stripped from the symbol.
		"mapKeys": {Inline: true},
	}
	if !reflect.DeepEqual(trace.Funcs, wantTrace) {
		t.Errorf("trace funcs = %v, want %v", dump(trace.Funcs), dump(wantTrace))
	}
}

func dump(m map[string]*FuncFacts) map[string]FuncFacts {
	out := map[string]FuncFacts{}
	for k, v := range m {
		out[k] = *v
	}
	return out
}

// TestParseBCEGolden: only checks inside hot ranges are counted, and
// the toolchain note and headers are ignored.
func TestParseBCEGolden(t *testing.T) {
	res := fakeResolver{
		funcs: map[string]string{
			"internal/trace/decode_stream.go:466": "(*binarySource2).NextBatch",
			"internal/trace/decode_stream.go:500": "(*binarySource2).step",
			"internal/heap/heap.go:206":           "(*Heap).segIndex",
		},
		hot: map[string]bool{
			"internal/trace/decode_stream.go:466": true,
			"internal/trace/decode_stream.go:500": true,
			// heap.go:206 and decode_stream.go:510 are outside hot loops.
		},
	}
	inv := &Inventory{GoVersion: "go1.24", Packages: map[string]*PkgFacts{}}
	parseBCE(readFixture(t, "bce_sample.txt"), res, inv)

	trace := inv.Packages["dmmkit/internal/trace"]
	if trace == nil {
		t.Fatal("no trace package in inventory")
	}
	if got := trace.Funcs["(*binarySource2).NextBatch"].HotBoundsChecks; got != 1 {
		t.Errorf("NextBatch hot bounds = %d, want 1", got)
	}
	if got := trace.Funcs["(*binarySource2).step"].HotBoundsChecks; got != 1 {
		t.Errorf("step hot bounds = %d, want 1", got)
	}
	if inv.Packages["dmmkit/internal/heap"] != nil {
		t.Errorf("cold bounds check leaked into inventory: %v", dump(inv.Packages["dmmkit/internal/heap"].Funcs))
	}
}

func TestDiffInventories(t *testing.T) {
	mk := func() *Inventory {
		return &Inventory{GoVersion: "go1.24", Packages: map[string]*PkgFacts{
			"p": {Funcs: map[string]*FuncFacts{
				"F": {Inline: true},
				"G": {Inline: false, InlineReason: "r", Escapes: map[string]int{"x escapes to heap": 1}, HotLoops: 1, HotBoundsChecks: 2},
			}},
		}}
	}
	if d := diffInventories(mk(), mk()); len(d) != 0 {
		t.Fatalf("identical inventories diff: %v", d)
	}

	cases := []struct {
		name   string
		mutate func(*Inventory)
		want   string
	}{
		{"inline lost", func(i *Inventory) {
			f := i.Packages["p"].Funcs["F"]
			f.Inline = false
			f.InlineReason = "function too complex: cost N exceeds budget N"
		}, `p: F: inline true -> false (function too complex: cost N exceeds budget N)`},
		{"new escape", func(i *Inventory) {
			i.Packages["p"].Funcs["F"].Escapes = map[string]int{"y escapes to heap": 1}
		}, `p: F: escape "y escapes to heap": 0 -> 1`},
		{"escape gone (improvement still diffs)", func(i *Inventory) {
			delete(i.Packages["p"].Funcs["G"].Escapes, "x escapes to heap")
		}, `p: G: escape "x escapes to heap": 1 -> 0`},
		{"hot bounds grew", func(i *Inventory) {
			i.Packages["p"].Funcs["G"].HotBoundsChecks = 5
		}, `p: G: hot-loop bounds checks 2 -> 5`},
		{"annotation dropped", func(i *Inventory) {
			i.Packages["p"].Funcs["G"].HotLoops = 0
		}, `p: G: hot loops 1 -> 0`},
		{"new function", func(i *Inventory) {
			i.Packages["p"].Funcs["H"] = &FuncFacts{Inline: true}
		}, `p: H: new function, not in budget`},
	}
	for _, tc := range cases {
		got := mk()
		tc.mutate(got)
		diffs := diffInventories(mk(), got)
		if len(diffs) != 1 || diffs[0] != tc.want {
			t.Errorf("%s: diffs = %v, want [%s]", tc.name, diffs, tc.want)
		}
	}
}

func TestGoMajorMinor(t *testing.T) {
	for in, want := range map[string]string{
		"go1.24.0":                "go1.24",
		"go1.24":                  "go1.24",
		"go1.23.4":                "go1.23",
		"devel go1.25-abc123 x/y": "devel go1.25-abc123 x/y", // no prefix match: kept verbatim, never equal to a pinned budget
	} {
		if got := goMajorMinor(in); got != want {
			t.Errorf("goMajorMinor(%q) = %q, want %q", in, got, want)
		}
	}
}

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Encoder writes a trace in the DMMT2 binary format, streaming: events
// are encoded as they arrive and nothing is buffered beyond the write
// buffer, so a generator can pipe an arbitrarily long trace to disk in
// O(1) memory. Encoder implements EventSink — hand it (usually wrapped in
// a StatsSink) to NewBuilderTo or the registry's WorkloadOpts.Sink.
//
// DMMT2 layout: the "DMMT2\n" magic and the uvarint-prefixed name, then
// per event a Kind byte, the ID as a uvarint, for allocations the Size as
// a uvarint and the Tag as a zigzag varint, then the Phase and the tick
// delta as zigzag varints. Signed fields that DMMT1 could only round-trip
// through 10-byte two's-complement wraparound (negative tags and phases,
// backward tick deltas) cost their natural varint length here. The stream
// ends with a 0xFF marker followed by the event count as a uvarint, which
// lets the decoder detect truncated files, and then a CRC-32C checksum
// (4 bytes, little-endian) over every preceding byte of the stream, which
// lets it detect bit corruption the structural checks cannot (a flipped
// bit inside a varint decodes to a different, equally valid value). The
// decoder accepts streams from older releases that end at the count.
//
// Use it as: NewEncoder, Begin, WriteEvent..., Close. Close writes the
// end marker and flushes; it does not close the underlying writer.
type Encoder struct {
	w      *bufio.Writer
	begun  bool
	closed bool
	count  uint64
	last   int64  // previous event's tick
	crc    uint32 // running CRC-32C over every byte written
	buf    [binary.MaxVarintLen64]byte
}

// NewEncoder returns a DMMT2 encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriter(w)
	}
	return &Encoder{w: bw}
}

// write sends p to the stream, folding it into the running checksum;
// every stream byte before the checksum itself must pass through here.
func (enc *Encoder) write(p []byte) error {
	enc.crc = crc32.Update(enc.crc, castagnoli, p)
	_, err := enc.w.Write(p)
	return err
}

func (enc *Encoder) writeByte(b byte) error {
	enc.buf[0] = b
	return enc.write(enc.buf[:1])
}

func (enc *Encoder) putUvarint(v uint64) error {
	n := binary.PutUvarint(enc.buf[:], v)
	return enc.write(enc.buf[:n])
}

func (enc *Encoder) putVarint(v int64) error {
	n := binary.PutVarint(enc.buf[:], v)
	return enc.write(enc.buf[:n])
}

// Begin writes the stream header. It must be called exactly once, before
// the first event.
func (enc *Encoder) Begin(name string) error {
	if enc.begun {
		return fmt.Errorf("trace: Encoder.Begin called twice")
	}
	enc.begun = true
	if err := enc.write([]byte(binaryMagic2)); err != nil {
		return err
	}
	if err := enc.putUvarint(uint64(len(name))); err != nil {
		return err
	}
	return enc.write([]byte(name))
}

// WriteEvent appends one event to the stream. Events that could not be
// decoded back (negative IDs, non-positive allocation sizes, unknown
// kinds) are rejected so every encoded file is readable.
func (enc *Encoder) WriteEvent(e Event) error {
	if !enc.begun {
		return fmt.Errorf("trace: Encoder.WriteEvent before Begin")
	}
	if enc.closed {
		return fmt.Errorf("trace: Encoder.WriteEvent after Close")
	}
	// Validate before the first byte goes out: a rejected event must not
	// leave a partial record corrupting the stream.
	if e.Kind != KindAlloc && e.Kind != KindFree {
		return fmt.Errorf("trace: encoding event %d: bad kind %d", enc.count, e.Kind)
	}
	if e.ID < 0 {
		return fmt.Errorf("trace: encoding event %d: negative id %d", enc.count, e.ID)
	}
	if e.Kind == KindAlloc && e.Size <= 0 {
		return fmt.Errorf("trace: encoding event %d: alloc size %d", enc.count, e.Size)
	}
	if err := enc.writeByte(byte(e.Kind)); err != nil {
		return err
	}
	if err := enc.putUvarint(uint64(e.ID)); err != nil {
		return err
	}
	if e.Kind == KindAlloc {
		if err := enc.putUvarint(uint64(e.Size)); err != nil {
			return err
		}
		if err := enc.putVarint(int64(e.Tag)); err != nil {
			return err
		}
	}
	if err := enc.putVarint(int64(e.Phase)); err != nil {
		return err
	}
	if err := enc.putVarint(e.Tick - enc.last); err != nil {
		return err
	}
	enc.last = e.Tick
	enc.count++
	return nil
}

// Count returns the number of events written so far.
func (enc *Encoder) Count() int { return int(enc.count) }

// Close terminates the stream (end marker, event count, CRC-32C
// checksum) and flushes the write buffer. It does not close the
// underlying writer. Close is idempotent; WriteEvent fails after it.
func (enc *Encoder) Close() error {
	if enc.closed {
		return nil
	}
	if !enc.begun {
		return fmt.Errorf("trace: Encoder.Close before Begin")
	}
	enc.closed = true
	if err := enc.writeByte(endMarker); err != nil {
		return err
	}
	if err := enc.putUvarint(enc.count); err != nil {
		return err
	}
	// The checksum covers everything before it, count included; it is the
	// one piece of the stream written outside enc.write.
	binary.LittleEndian.PutUint32(enc.buf[:4], enc.crc)
	if _, err := enc.w.Write(enc.buf[:4]); err != nil {
		return err
	}
	return enc.w.Flush()
}

// EncodeBinary2 writes the trace in the DMMT2 binary format (the
// streaming, zigzag-encoded successor of DMMT1; see Encoder).
func (t *Trace) EncodeBinary2(w io.Writer) error {
	enc := NewEncoder(w)
	if err := enc.Begin(t.Name); err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := enc.WriteEvent(e); err != nil {
			return err
		}
	}
	return enc.Close()
}

package block

import (
	"fmt"

	"dmmkit/internal/heap"
)

// BlockInfo describes one block found by Walk.
type BlockInfo struct {
	Addr heap.Addr // block (header) address
	Size int64     // gross size
	Used bool      // used bit (false when layout records no status)
}

// Walk iterates the contiguous run of blocks in [start, end), calling fn
// for each. It validates basic structural invariants: positive aligned
// sizes, no block crossing end. Walk requires a layout that records sizes.
func (v View) Walk(start, end heap.Addr, fn func(BlockInfo) error) error {
	if !v.L.Info.Has(InfoSize) {
		return fmt.Errorf("block: Walk requires recorded sizes (layout %v)", v.L.Info)
	}
	for b := start; b < end; {
		sz := v.Size(b)
		if sz <= 0 || sz%heap.Align != 0 {
			return fmt.Errorf("block: corrupt size %d at %#x", sz, b)
		}
		if int64(b)+sz > int64(end) {
			return fmt.Errorf("block: block at %#x (size %d) crosses region end %#x", b, sz, end)
		}
		used := v.L.Info.Has(InfoStatus) && v.Used(b)
		if err := fn(BlockInfo{Addr: b, Size: sz, Used: used}); err != nil {
			return err
		}
		b += heap.Addr(sz)
	}
	return nil
}

// CheckRegion validates the full boundary-tag invariants of the contiguous
// region [start, end): block sizes tile the region exactly; with status
// recorded, prevUsed bits match the previous block's used bit; with footers,
// every free block's footer equals its header size. It returns the number
// of blocks on success.
func (v View) CheckRegion(start, end heap.Addr) (int, error) {
	n := 0
	prevKnown := false
	prevUsed := false
	err := v.Walk(start, end, func(bi BlockInfo) error {
		n++
		if v.L.Info.Has(InfoStatus) && prevKnown {
			if got := v.PrevUsed(bi.Addr); got != prevUsed {
				return fmt.Errorf("block: prevUsed bit at %#x is %v, neighbour is %v", bi.Addr, got, prevUsed)
			}
		}
		if v.L.Tags == TagsBoth && !bi.Used {
			if f := int64(v.H.U32(bi.Addr+heap.Addr(bi.Size)-4) & sizeMask); f != bi.Size {
				return fmt.Errorf("block: footer %d != header %d at %#x", f, bi.Size, bi.Addr)
			}
		}
		prevKnown, prevUsed = true, bi.Used
		return nil
	})
	if err != nil {
		return n, err
	}
	return n, nil
}

package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is the error Run returns when a job panics: the pool
// recovers the panic on the worker goroutine — so one pathological job
// cannot tear down the whole process with a stack it does not own — and
// reports it like any other job failure, carrying the job index, the
// recovered value and the worker's stack at the point of the panic.
type PanicError struct {
	Index int    // the job index i passed to fn
	Value any    // the recovered panic value
	Stack []byte // debug.Stack() captured inside the recovering frame
}

// Error implements error. The stack is not included — it is diagnostic
// payload for callers that choose to log it.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job %d panicked: %v", e.Index, e.Value)
}

// call invokes fn(i), converting a panic into a *PanicError.
func call(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Run evaluates fn(i) for every i in [0, n) on up to parallelism
// concurrent workers and waits for them. parallelism <= 0 selects
// GOMAXPROCS; parallelism == 1 runs inline with no goroutines. The first
// error stops the pool (preferring the lowest-index error when several
// jobs fail together), as does context cancellation; fn is never called
// after either. A panicking job does not crash the pool: the panic is
// recovered into a *PanicError and treated as that job's failure. fn
// must be safe for concurrent invocation with distinct i.
func Run(ctx context.Context, parallelism, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := call(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = n
		first  error
	)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := call(i, fn); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// Package analysis is dmmkit's static-analysis suite: five
// golang.org/x/tools/go/analysis analyzers that mechanically enforce the
// invariants every PR so far has staked by hand — byte-identical results
// at any parallelism, on resume, and under injected faults — plus the
// partial-output hygiene and cancellation contracts of the CLIs and the
// engine.
//
// The analyzers:
//
//   - detrand: in deterministic packages, forbids the global math/rand
//     convenience functions and wall-clock reads (time.Now/Since/Until);
//     randomness must flow through a seeded *rand.Rand
//     (rand.New(rand.NewSource(seed))) so runs replay bit-identically.
//   - maporder: flags `for range` over a map whose body feeds an ordered
//     consumer (appends to a slice, sends on a channel, writes to an
//     EventSink/io.Writer, invokes a callback) — the one Go construct
//     that can silently desync the in-order candidate streams. Collect
//     the keys, sort them, then walk the sorted slice.
//   - closecheck: flags Close() calls whose error is discarded — the
//     exact bug class PR 5/6 fixed by hand in the CLIs (a failed Close
//     on a write path silently truncates output). Discarding must be
//     explicit: `_ = f.Close()`.
//   - ctxflow: in the engine packages, exported functions that consume
//     an event or candidate stream (a Source.Next loop, a loop over
//     Candidates) must accept a context.Context and actually use it, so
//     new engine paths cannot ship uncancellable.
//   - pkgdoc: every package must carry package-level documentation (the
//     former internal/tools/checkdocs gate, folded into the suite so CI
//     has one lint entry point).
//
// All five are wired into cmd/dmmlint, which runs standalone
// (`dmmlint ./...`) or as `go vet -vettool=$(which dmmlint) ./...`.
// Fixture-driven tests live under testdata/src and run through the
// offline harness in the atest subpackage.
package analysis

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestVetToolInvocation(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{[]string{"-V=full"}, true},
		{[]string{"--flags"}, true},
		{[]string{"-detrand.pkgs=x", "/tmp/unit.cfg"}, true},
		{[]string{"./..."}, false},
		{[]string{"-detrand.pkgs=x", "./..."}, false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := vetToolInvocation(tc.args); got != tc.want {
			t.Errorf("vetToolInvocation(%v) = %v, want %v", tc.args, got, tc.want)
		}
	}
}

// TestThirdPartyExcludedFromModule pins the mechanism every ./... step
// relies on — standalone dmmlint, `go vet -vettool`, and the CI gofmt
// and vet steps all assume the vendored third_party tree is outside the
// module. That holds only because third_party/golang.org/x/tools keeps
// its own go.mod (a nested module is invisible to the parent's package
// patterns); deleting that file would silently pull thousands of
// vendored files into every lint and format gate.
func TestThirdPartyExcludedFromModule(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "third_party", "golang.org", "x", "tools", "go.mod")); err != nil {
		t.Fatalf("third_party/golang.org/x/tools/go.mod missing — the vendored tree would join the module: %v", err)
	}
	cmd := exec.Command("go", "list", "./...")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list ./...: %v", err)
	}
	for _, pkg := range strings.Fields(string(out)) {
		if strings.Contains(pkg, "third_party") {
			t.Errorf("go list ./... includes vendored package %s", pkg)
		}
	}
}

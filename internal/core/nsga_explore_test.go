package core

import (
	"context"
	"testing"

	"dmmkit/internal/dspace"
	"dmmkit/internal/search"
)

var paretoObjectives = []Objective{ObjectiveFootprint, ObjectiveWork}

func frontPoints(front []Candidate) [][2]int64 {
	ps := make([][2]int64, len(front))
	for i, c := range front {
		ps[i] = [2]int64{c.MaxFootprint, c.Work}
	}
	return ps
}

// TestNSGADeterministic extends the engine's determinism contract to the
// multi-objective strategy and the streaming front path: the same NSGA
// seed and options must produce a byte-identical candidate stream and an
// identical sequence of front updates at parallelism 1 and 8.
func TestNSGADeterministic(t *testing.T) {
	tr := exploreTrace()
	run := func(parallelism int) (cands []Candidate, fronts [][][2]int64) {
		cands, err := NewEngine(0).Explore(context.Background(), tr, ExploreOpts{
			Strategy:    search.NewNSGA(11, gaConfig()),
			Objectives:  paretoObjectives,
			Parallelism: parallelism,
			OnFront:     func(f []Candidate) { fronts = append(fronts, frontPoints(f)) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return cands, fronts
	}
	seq, seqFronts := run(1)
	par, parFronts := run(8)
	if len(seq) != len(par) {
		t.Fatalf("sequential %d candidates, parallel %d", len(seq), len(par))
	}
	sk, pk := keysOf(seq), keysOf(par)
	for i := range sk {
		if sk[i] != pk[i] {
			t.Errorf("candidate %d diverges:\n  seq %+v\n  par %+v", i, sk[i], pk[i])
		}
	}
	if len(seqFronts) != len(parFronts) {
		t.Fatalf("sequential %d front updates, parallel %d", len(seqFronts), len(parFronts))
	}
	for i := range seqFronts {
		if len(seqFronts[i]) != len(parFronts[i]) {
			t.Fatalf("front update %d: %d vs %d points", i, len(seqFronts[i]), len(parFronts[i]))
		}
		for j := range seqFronts[i] {
			if seqFronts[i][j] != parFronts[i][j] {
				t.Errorf("front update %d point %d diverges: %v vs %v",
					i, j, seqFronts[i][j], parFronts[i][j])
			}
		}
	}
	// The final streamed front must equal the front of the full result set.
	final := frontPoints(ParetoFront(seq))
	last := seqFronts[len(seqFronts)-1]
	if len(final) != len(last) {
		t.Fatalf("final streamed front has %d points, ParetoFront %d", len(last), len(final))
	}
	for i := range final {
		if final[i] != last[i] {
			t.Errorf("streamed front point %d is %v, ParetoFront has %v", i, last[i], final[i])
		}
	}
}

// TestNSGAExploreRecoversSubspaceFront is the multi-objective oracle
// test, mirroring TestGAExploreFindsSubspaceOptimum with real replay
// fitness: the pinned subspace is enumerated outright and its exact
// Pareto front computed; the NSGA must recover the identical front
// (objective points — distinct vectors may share a point) while
// evaluating fewer vectors than the subspace holds.
func TestNSGAExploreRecoversSubspaceFront(t *testing.T) {
	tr := exploreTrace()
	fix := search.Fixed{
		dspace.A2BlockSizes: dspace.OneBlockSize,
		dspace.C1Fit:        dspace.FirstFit,
		dspace.B3PoolPhase:  dspace.SharedPools,
	}
	sub := search.Size(fix)
	if sub == 0 || sub > 1000 {
		t.Fatalf("subspace has %d vectors; want a small non-empty oracle", sub)
	}

	oracle, err := NewEngine(0).Explore(context.Background(), tr, ExploreOpts{
		Strategy:   &search.Exhaustive{Max: sub, Fix: fix},
		Objectives: paretoObjectives,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) != sub {
		t.Fatalf("oracle evaluated %d of %d subspace vectors", len(oracle), sub)
	}
	want := frontPoints(ParetoFront(oracle))
	if len(want) == 0 {
		t.Fatal("oracle front is empty")
	}

	nsga := search.NewNSGA(1, search.GAConfig{
		Population:  16,
		Generations: 20,
		Patience:    8,
		Fix:         fix,
	})
	cands, err := NewEngine(0).Explore(context.Background(), tr, ExploreOpts{
		Strategy:   nsga,
		Objectives: paretoObjectives,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := frontPoints(ParetoFront(cands))
	if len(got) != len(want) {
		t.Fatalf("NSGA front has %d points, oracle front %d (NSGA evaluated %d of %d)\n got  %v\n want %v",
			len(got), len(want), len(cands), sub, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("front point %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if len(cands) >= sub {
		t.Errorf("NSGA evaluated %d vectors, subspace holds only %d — no savings", len(cands), sub)
	}
	// The strategy's own archive front must agree with the result front.
	arch := nsga.Front()
	if len(arch) != len(want) {
		t.Fatalf("NSGA archive front has %d points, oracle %d", len(arch), len(want))
	}
	for i, r := range arch {
		if r.Footprint != want[i][0] || r.Work != want[i][1] {
			t.Errorf("archive point %d: got (%d,%d), want %v", i, r.Footprint, r.Work, want[i])
		}
	}
}

// TestExploreObjectiveValidation pins the option-validation contract:
// work-only objectives and OnFront without Pareto mode are rejected
// before any evaluation happens.
func TestExploreObjectiveValidation(t *testing.T) {
	tr := exploreTrace()
	if _, err := Explore(tr, ExploreOpts{Objectives: []Objective{ObjectiveWork}}); err == nil {
		t.Error("work-only objectives accepted")
	}
	if _, err := Explore(tr, ExploreOpts{OnFront: func([]Candidate) {}}); err == nil {
		t.Error("OnFront without Pareto objectives accepted")
	}
	if _, err := Explore(tr, ExploreOpts{
		MaxCandidates: 4,
		Objectives:    []Objective{ObjectiveFootprint},
	}); err != nil {
		t.Errorf("footprint-only objectives rejected: %v", err)
	}
}

// TestParseObjectives pins the CLI syntax for -objectives.
func TestParseObjectives(t *testing.T) {
	good := map[string]int{
		"":                0,
		"footprint":       1,
		"footprint,work":  2,
		"work,footprint":  2,
		"footprint, work": 2,
	}
	for s, n := range good {
		objs, err := ParseObjectives(s)
		if err != nil {
			t.Errorf("ParseObjectives(%q): %v", s, err)
		}
		if len(objs) != n {
			t.Errorf("ParseObjectives(%q) = %v, want %d objectives", s, objs, n)
		}
	}
	for _, s := range []string{"latency", "footprint,footprint", "footprint,", "work,work"} {
		if _, err := ParseObjectives(s); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", s)
		}
	}
}

package obstack

import (
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
)

func init() {
	registry.RegisterManager("obstack", func(h *heap.Heap, _ *profile.Profile) (mm.Manager, error) {
		return New(h, 0), nil
	})
}

// Example recon3d reproduces the paper's multimedia case study: the
// corner-matching kernel of a metric 3D reconstruction pipeline, whose
// unpredictable feature counts force dynamic memory. The custom manager
// is compared against the region manager of embedded real-time OSs and
// against Kingsley (Table 1, column 2).
package main

import (
	"context"
	"fmt"
	"log"

	"dmmkit"
)

func main() {
	fmt.Println("3D image reconstruction case study (paper Sec. 5, Table 1 col. 2)")
	fmt.Println()

	tr := dmmkit.Recon3DTrace(dmmkit.Recon3DConfig{Seed: 1})
	prof := dmmkit.Profile(tr)
	fmt.Printf("trace: %d events; frame buffers of %d B dominate a live peak of %d B\n\n",
		len(tr.Events), prof.TagMax[0], prof.MaxLiveBytes)

	// The "manually designed" region manager of the paper: one region
	// per data type, each sized for its worst-case request rounded to a
	// power of two (the partition rule of embedded kernels).
	regionSizer := func(tag int, first int64) int64 {
		max, ok := prof.TagMax[tag]
		if !ok {
			max = first
		}
		s := int64(8)
		for s < max {
			s <<= 1
		}
		return s
	}

	custom, _, err := dmmkit.DesignGlobal("custom", prof)
	if err != nil {
		log.Fatal(err)
	}
	managers := []dmmkit.Manager{
		custom,
		dmmkit.NewRegions(dmmkit.NewHeap(), regionSizer),
		dmmkit.NewKingsley(dmmkit.NewHeap()),
	}
	fmt.Printf("%-10s %14s %10s %12s\n", "manager", "max footprint", "vs live", "internal frag")
	var results []dmmkit.ReplayResult
	for _, m := range managers {
		res, err := dmmkit.Replay(context.Background(), m, tr, dmmkit.ReplayOpts{})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("%-10s %12d B %9.2fx %11.1f%%\n",
			m.Name(), res.MaxFootprint, res.Overhead(), 100*res.Stats.InternalFrag())
	}
	fmt.Printf("\ncustom saves %.1f%% vs regions (paper: 28.47%%) and %.1f%% vs Kingsley (paper: 33.01%%)\n",
		100*(1-float64(results[0].MaxFootprint)/float64(results[1].MaxFootprint)),
		100*(1-float64(results[0].MaxFootprint)/float64(results[2].MaxFootprint)))
	fmt.Println("\nwhy regions lose: every request of a data type consumes a worst-case")
	fmt.Println("partition buffer, so small candidate-list nodes waste most of their block;")
	fmt.Println("the custom manager allocates exact sizes and splits/coalesces on demand,")
	fmt.Println("and serves the rare huge frame buffers from a dedicated large-block pool")
	fmt.Println("that returns memory to the system as soon as a frame pair is done.")
}

package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Binary format: magic, name, event count, then per event a kind byte and
// varint-encoded fields (deltas for tick to keep traces compact).
const binaryMagic = "DMMT1\n"

// EncodeBinary writes the trace in the compact binary format.
func (t *Trace) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	var lastTick int64
	for _, e := range t.Events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.ID)); err != nil {
			return err
		}
		if e.Kind == KindAlloc {
			if err := putUvarint(uint64(e.Size)); err != nil {
				return err
			}
			if err := putUvarint(uint64(e.Tag)); err != nil {
				return err
			}
		}
		if err := putUvarint(uint64(e.Phase)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.Tick - lastTick)); err != nil {
			return err
		}
		lastTick = e.Tick
	}
	return bw.Flush()
}

// DecodeBinary reads a trace written by EncodeBinary.
func DecodeBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: name length %d too large", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > 1<<30 {
		return nil, fmt.Errorf("trace: event count %d too large", count)
	}
	t := &Trace{Name: string(name), Events: make([]Event, 0, count)}
	var lastTick int64
	for i := uint64(0); i < count; i++ {
		kb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		e := Event{Kind: Kind(kb)}
		if e.Kind != KindAlloc && e.Kind != KindFree {
			return nil, fmt.Errorf("trace: event %d: bad kind %d", i, kb)
		}
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		e.ID = int64(id)
		if e.Kind == KindAlloc {
			size, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			tag, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			e.Size, e.Tag = int64(size), int32(tag)
		}
		phase, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		e.Phase = int32(phase)
		e.Tick = lastTick + int64(dt)
		lastTick = e.Tick
		t.Events = append(t.Events, e)
	}
	return t, nil
}

// EncodeJSON writes the trace as indented JSON (for inspection and
// interchange).
func (t *Trace) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// DecodeJSON reads a JSON trace.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

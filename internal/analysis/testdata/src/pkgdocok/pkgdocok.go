// Package pkgdocok carries a package-level doc comment, so the pkgdoc
// analyzer stays quiet.
package pkgdocok

// Exported does nothing interesting.
func Exported() int { return 1 }

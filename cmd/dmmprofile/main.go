// Command dmmprofile analyzes the dynamic-memory behaviour of a trace:
// size populations, lifetimes, phases, LIFO-ness — the inputs of the
// paper's methodology ("we first profile its DM behaviour", Sec. 5). It
// also prints the decision walk the methodology takes for the profile.
//
// Usage:
//
//	dmmprofile drr1.trace
//	dmmprofile -trace drr1.trace             # stream the file (out-of-core)
//	dmmprofile -workload render3d -seed 2    # profile a generated trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"dmmkit"
	"dmmkit/internal/textplot"
)

func main() {
	var (
		workload  = flag.String("workload", "", "generate and profile a registered workload: "+strings.Join(dmmkit.Workloads(), ", "))
		seed      = flag.Int64("seed", 1, "workload seed")
		tracePath = flag.String("trace", "", "profile a trace file by streaming it from disk (out-of-core; binary traces never materialize)")
		walk      = flag.Bool("walk", true, "print the methodology's decision walk")
	)
	flag.Parse()

	var p *dmmkit.AppProfile
	switch {
	case *tracePath != "":
		// The streaming path: one pass over the file, memory bounded by
		// the live set (plus the profiler's lifetime samples) instead of
		// the trace length.
		op, err := dmmkit.OpenTrace(*tracePath)
		if err == nil {
			var src dmmkit.TraceSource
			if src, err = op.Open(); err == nil {
				p, err = dmmkit.ProfileSource(src)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmprofile: %v\n", err)
			os.Exit(1)
		}
	case *workload != "":
		tr, err := dmmkit.BuildWorkload(*workload, dmmkit.WorkloadOpts{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmprofile: %v\n", err)
			os.Exit(2)
		}
		p = dmmkit.Profile(tr)
	case flag.NArg() == 1:
		tr, err := dmmkit.LoadTrace(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmprofile: %v\n", err)
			os.Exit(1)
		}
		p = dmmkit.Profile(tr)
	default:
		fmt.Fprintln(os.Stderr, "usage: dmmprofile [-workload NAME | -trace FILE | trace-file]")
		os.Exit(2)
	}
	fmt.Printf("trace %q: %d events, %d allocs, %d frees\n", p.Name, p.Events, p.Allocs, p.Frees)
	fmt.Printf("sizes: %d distinct in [%d, %d], mean %.1f, CV %.2f\n",
		p.DistinctSizes, p.MinSize, p.MaxSize, p.MeanSize, p.SizeCV)
	fmt.Printf("live peak: %d bytes in %d blocks; total allocated %d bytes\n",
		p.MaxLiveBytes, p.MaxLiveBlocks, p.TotalBytes)
	fmt.Printf("lifetimes: mean %.1f events, p95 %d; never freed: %d\n",
		p.MeanLifetime, p.P95Lifetime, p.NeverFreed)
	fmt.Printf("LIFO score: %.2f; cross-phase frees: %d\n\n", p.LIFOScore, p.CrossPhaseFrees)

	fmt.Println("top request sizes by peak live bytes:")
	var rows []textplot.BarRow
	top := p.Sizes
	if len(top) > 12 {
		// Keep the 12 sizes with the largest live peaks.
		sorted := append([]dmmkit.SizeStats(nil), top...)
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j].MaxLive > sorted[i].MaxLive {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		top = sorted[:12]
	}
	for _, s := range top {
		rows = append(rows, textplot.BarRow{
			Label: fmt.Sprintf("%6d B x%d", s.Size, s.Count),
			Value: float64(s.MaxLive),
		})
	}
	fmt.Print(textplot.Bar(rows, 40))

	if len(p.Phases) > 1 {
		fmt.Println("\nphases:")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "phase\tevents\tallocs\tsizes\trange\tCV\tlive peak\tLIFO")
		for _, ph := range p.Phases {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t[%d,%d]\t%.2f\t%d\t%.2f\n",
				ph.Phase, ph.Events, ph.Allocs, ph.DistinctSizes, ph.MinSize, ph.MaxSize,
				ph.SizeCV, ph.MaxLiveBytes, ph.LIFOScore)
		}
		tw.Flush()
	}

	if *walk {
		d := dmmkit.Design(p)
		fmt.Printf("\nmethodology decision walk (order %s):\n\n", "A2->A5->E2->D2->E1->D1->B4->B1->...->C1->...->A1->A3->A4")
		fmt.Print(d.String())
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"dmmkit/internal/core"
	"dmmkit/internal/dspace"
	"dmmkit/internal/search"
)

// FrontPoint is one (footprint, work) point of a Pareto front.
type FrontPoint struct {
	Footprint int64
	Work      int64
}

// ParetoRow is one workload's comparison of the NSGA-II multi-objective
// search against ground truth: the subspace pinned by paretoFix is small
// enough to enumerate outright, so its exact Pareto front is known, and
// the row reports how much of it the NSGA recovered from a fraction of
// the evaluations.
type ParetoRow struct {
	Workload     Workload
	SubspaceSize int          // vectors in the pinned subspace
	OracleFront  []FrontPoint // exact front of the enumerated subspace
	NSGAFront    []FrontPoint // front the NSGA converged to
	Matched      int          // NSGA front points that sit on the oracle front
	NSGAEvals    int          // vectors the NSGA evaluated
}

// Recovered returns the fraction of the oracle front the NSGA found
// (1.0 = the exact front).
func (r ParetoRow) Recovered() float64 {
	if len(r.OracleFront) == 0 {
		return 0
	}
	return float64(r.Matched) / float64(len(r.OracleFront))
}

// EvalFraction returns the NSGA's evaluation count as a fraction of the
// subspace it searched.
func (r ParetoRow) EvalFraction() float64 {
	if r.SubspaceSize == 0 {
		return 0
	}
	return float64(r.NSGAEvals) / float64(r.SubspaceSize)
}

// ParetoResult is the measured fig-pareto experiment.
type ParetoResult struct {
	Cfg  Config
	Seed int64
	Rows []ParetoRow
}

// paretoFix pins the experiment's oracle subspace to 150 vectors: block
// structure, tags, pool layout and free order are fixed, while the fit
// algorithm (C1) and the whole split/coalesce machinery (A5, D1/D2,
// E1/E2) stay free. Those are exactly the decisions that trade footprint
// against work — eager coalescing packs the heap at a per-op cost — so
// the subspace has real multi-point fronts (quick DRR: four points) yet
// is small enough to enumerate outright per workload.
func paretoFix() search.Fixed {
	return search.Fixed{
		dspace.A1BlockStructure: dspace.SinglyLinked,
		dspace.A2BlockSizes:     dspace.ManyVarSizes,
		dspace.A3BlockTags:      dspace.HeaderTag,
		dspace.B1PoolDivision:   dspace.SinglePool,
		dspace.B3PoolPhase:      dspace.SharedPools,
		dspace.C2FreeOrder:      dspace.LIFOOrder,
	}
}

// paretoNSGAConfig is the NSGA budget: roughly half the subspace, so
// recovering the exact front demonstrates guided multi-objective search
// rather than accidental enumeration.
func paretoNSGAConfig(fix search.Fixed) search.GAConfig {
	return search.GAConfig{
		Population:     16,
		Generations:    20,
		Patience:       6,
		MaxEvaluations: 75,
		Fix:            fix,
	}
}

// RunPareto measures, for each case study, the exact Pareto front of the
// pinned subspace (by exhaustive enumeration) against the front the
// seeded NSGA-II search converges to on an evaluation budget of about
// half the subspace. Candidate evaluation fans out over cfg.Parallelism
// workers through the engine; identical seed and config give identical
// results at every parallelism level.
func RunPareto(ctx context.Context, cfg Config, seed int64) (*ParetoResult, error) {
	cfg.defaults()
	res := &ParetoResult{Cfg: cfg, Seed: seed}
	for _, w := range Workloads {
		row, err := paretoRow(ctx, cfg, seed, w)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// paretoRow measures one workload's NSGA-vs-oracle front comparison.
func paretoRow(ctx context.Context, cfg Config, seed int64, w Workload) (ParetoRow, error) {
	fix := paretoFix()
	engine := core.NewEngine(cfg.Parallelism)
	tr, err := BuildWorkloadTrace(w, seed, cfg.Quick)
	if err != nil {
		return ParetoRow{}, err
	}
	sub := search.Size(fix)
	row := ParetoRow{Workload: w, SubspaceSize: sub}
	objectives := []core.Objective{core.ObjectiveFootprint, core.ObjectiveWork}

	oracle, err := engine.Explore(ctx, tr, core.ExploreOpts{
		Strategy:    &search.Exhaustive{Max: sub, Fix: fix},
		Objectives:  objectives,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return ParetoRow{}, fmt.Errorf("pareto %s oracle: %w", w, err)
	}
	row.OracleFront = frontPointsOf(core.ParetoFront(oracle))

	nsga, err := engine.Explore(ctx, tr, core.ExploreOpts{
		Strategy:    search.NewNSGA(seed, paretoNSGAConfig(fix)),
		Objectives:  objectives,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return ParetoRow{}, fmt.Errorf("pareto %s nsga: %w", w, err)
	}
	row.NSGAEvals = len(nsga)
	row.NSGAFront = frontPointsOf(core.ParetoFront(nsga))

	oracleSet := make(map[FrontPoint]bool, len(row.OracleFront))
	for _, p := range row.OracleFront {
		oracleSet[p] = true
	}
	for _, p := range row.NSGAFront {
		if oracleSet[p] {
			row.Matched++
		}
	}
	return row, nil
}

func frontPointsOf(front []core.Candidate) []FrontPoint {
	ps := make([]FrontPoint, len(front))
	for i, c := range front {
		ps[i] = FrontPoint{Footprint: c.MaxFootprint, Work: c.Work}
	}
	return ps
}

// WritePareto renders the fig-pareto comparison: the summary table, then
// each workload's oracle and NSGA fronts point by point.
func WritePareto(w io.Writer, r *ParetoResult) error {
	fmt.Fprintf(w, "multi-objective search vs exhaustive subspace front (seed %d):\n\n", r.Seed)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tsubspace\toracle front\tNSGA front\tmatched\trecovered\tNSGA evals\tevals/subspace")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.0f%%\t%d\t%.0f%%\n",
			row.Workload, row.SubspaceSize, len(row.OracleFront), len(row.NSGAFront),
			row.Matched, 100*row.Recovered(), row.NSGAEvals, 100*row.EvalFraction())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "\n%s fronts (footprint B, work units):\n", row.Workload)
		fmt.Fprintf(w, "  oracle: %s\n", formatFront(row.OracleFront))
		fmt.Fprintf(w, "  NSGA:   %s\n", formatFront(row.NSGAFront))
	}
	fmt.Fprintf(w, "\n(the oracle front is exact — the pinned subspace is enumerated outright;\n")
	fmt.Fprintf(w, " recovered 100%% with evals/subspace < 100%% means the NSGA found the whole\n")
	fmt.Fprintf(w, " footprint×work trade-off curve without enumerating the space)\n")
	return nil
}

func formatFront(ps []FrontPoint) string {
	if len(ps) == 0 {
		return "(empty)"
	}
	s := ""
	for i, p := range ps {
		if i > 0 {
			s += "  "
		}
		s += fmt.Sprintf("(%d, %d)", p.Footprint, p.Work)
	}
	return s
}

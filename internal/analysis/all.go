package analysis

import "golang.org/x/tools/go/analysis"

// All returns the full dmmlint suite in stable order. cmd/dmmlint and
// the fixture tests are the only intended consumers; adding an analyzer
// here is all it takes to ship it in the CI gate.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Detrand,
		MapOrder,
		CloseCheck,
		CtxFlow,
		PkgDoc,
		LockSpan,
		ErrWrap,
		APITag,
	}
}

package pkgdocfix // want `package pkgdocfix has no package-level documentation`

// Exported is documented, but the package clause is not — the pkgdoc
// gate requires a package-level doc comment.
func Exported() int { return 1 }

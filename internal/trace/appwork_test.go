package trace

import "testing"

func TestAppWorkModel(t *testing.T) {
	b := NewBuilder("w")
	id := b.Alloc(800, 0) // 150 + 800>>3 = 250
	b.Free(id)            // +100
	got := AppWork(b.Build())
	if got != 350 {
		t.Errorf("AppWork = %d, want 350", got)
	}
}

func TestAppWorkScalesWithSize(t *testing.T) {
	small := NewBuilder("s")
	small.Alloc(8, 0)
	big := NewBuilder("b")
	big.Alloc(1<<20, 0)
	if AppWork(small.Build()) >= AppWork(big.Build()) {
		t.Error("app work does not grow with payload size")
	}
}

func TestAppWorkEmpty(t *testing.T) {
	if w := AppWork(&Trace{}); w != 0 {
		t.Errorf("AppWork(empty) = %d", w)
	}
}

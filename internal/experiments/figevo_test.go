package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestEvoQuickDRRAcceptance pins the fig-evo claim on the quick DRR
// workload: the seeded GA reaches a best footprint within 5% of the
// exhaustive sample's best while evaluating at most 25% of the candidates
// the exhaustive strategy explores. Both runs are deterministic, so this
// is a regression gate, not a statistical test.
func TestEvoQuickDRRAcceptance(t *testing.T) {
	row, err := evoRow(context.Background(), Config{Quick: true}, 1, WorkloadDRR)
	if err != nil {
		t.Fatal(err)
	}
	if row.ExhaustiveBest <= 0 || row.GABest <= 0 {
		t.Fatalf("degenerate bests: exhaustive %d, GA %d", row.ExhaustiveBest, row.GABest)
	}
	if ratio := row.GABestRatio(); ratio > 1.05 {
		t.Errorf("GA best %d is %.1f%% above exhaustive best %d (want <= 5%%)",
			row.GABest, 100*(ratio-1), row.ExhaustiveBest)
	}
	if frac := row.EvalFraction(); frac > 0.25 {
		t.Errorf("GA evaluated %d of %d exhaustive candidates (%.0f%%, want <= 25%%)",
			row.GAEvals, row.ExhaustiveEvals, 100*frac)
	}
	if row.GAEvals <= 0 {
		t.Error("GA evaluated nothing")
	}
}

// TestWriteEvoRenders smoke-tests the renderer against a synthetic result
// (no replays, so it stays fast).
func TestWriteEvoRenders(t *testing.T) {
	r := &EvoResult{
		Seed: 1,
		Rows: []EvoRow{
			{Workload: WorkloadDRR, SpaceSize: 144480, ExhaustiveBest: 112768, ExhaustiveEvals: 256, GABest: 112768, GAEvals: 64, DesignedBest: 112768},
			{Workload: WorkloadRender, SpaceSize: 144480, ExhaustiveBest: 1078280, ExhaustiveEvals: 256, GABest: 1078280, GAEvals: 60, DesignedBest: 1078280},
		},
	}
	var buf bytes.Buffer
	if err := WriteEvo(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"drr", "render3d", "112768", "GA/exh"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

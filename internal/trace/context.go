package trace

import "context"

// WithContext wraps src so its Next fails with the context's error once
// ctx is cancelled — the hook that lets a CLI reading a multi-gigabyte
// trace stop promptly on SIGINT instead of finishing the pass. The
// wrapper forwards Name, Close and (when src knows its length) the
// Sized extension; cancellation latches, and the underlying source is
// closed when it fires so no handle outlives the abort.
func WithContext(ctx context.Context, src Source) Source {
	cs := &contextSource{ctx: ctx, src: src}
	if s, ok := src.(Sized); ok {
		return &sizedContextSource{contextSource: cs, sized: s}
	}
	return cs
}

type contextSource struct {
	ctx  context.Context
	src  Source
	done bool
	err  error
}

func (s *contextSource) Name() string { return s.src.Name() }

func (s *contextSource) Next() (Event, bool, error) {
	if s.done {
		return Event{}, false, s.err
	}
	if err := s.ctx.Err(); err != nil {
		s.done, s.err = true, err
		Close(s.src)
		return Event{}, false, err
	}
	return s.src.Next()
}

// NextBatch implements BatchSource with one cancellation check per
// batch, delegating to the wrapped source's batching (or a Next loop
// via ReadBatch) — so batch-aware consumers behind a context wrapper
// keep bulk decode.
func (s *contextSource) NextBatch(dst []Event) (int, error) {
	if s.done {
		return 0, s.err
	}
	if err := s.ctx.Err(); err != nil {
		s.done, s.err = true, err
		Close(s.src)
		return 0, err
	}
	return ReadBatch(s.src, dst)
}

// Close implements io.Closer by delegating to the wrapped source.
func (s *contextSource) Close() error {
	s.done = true
	return Close(s.src)
}

// sizedContextSource adds the Sized extension when the wrapped source
// has it, so preallocation hints survive the wrapping.
type sizedContextSource struct {
	*contextSource
	sized Sized
}

func (s *sizedContextSource) EventCount() int { return s.sized.EventCount() }

// SinkWithContext wraps sink so WriteEvent fails with the context's
// error once ctx is cancelled — the write-side dual of WithContext, for
// generators piping a long trace to disk. Begin is forwarded as-is (it
// runs once, before any meaningful work).
func SinkWithContext(ctx context.Context, sink EventSink) EventSink {
	return &contextSink{ctx: ctx, sink: sink}
}

type contextSink struct {
	ctx  context.Context
	sink EventSink
}

func (s *contextSink) Begin(name string) error { return s.sink.Begin(name) }

func (s *contextSink) WriteEvent(e Event) error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	return s.sink.WriteEvent(e)
}

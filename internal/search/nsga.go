package search

import (
	"math"
	"math/rand"
	"sort"

	"dmmkit/internal/dspace"
)

// NSGA is a deterministic seeded NSGA-II-style genetic search over the
// design space, optimizing footprint and work jointly instead of
// collapsing them to a single scalar. It reuses the GA's machinery —
// the ceiling-stride seed generation, tournament selection, per-tree
// uniform crossover and mutation, constraint repair, and deduplication
// against every vector already evaluated — but replaces scalar fitness
// with Pareto rank: parents are picked by the crowded-comparison
// operator (non-domination rank first, then crowding distance), and
// survivor selection keeps the best Population individuals of the
// combined parent+offspring pool by non-dominated sorting with
// crowding-distance truncation of the last front, which makes elitism
// implicit (GAConfig.Elite is ignored).
//
// The search maintains an archive ParetoFront over every evaluated
// vector; Front returns it at any time. It stops after
// GAConfig.Generations generations, or earlier once GAConfig.Patience
// consecutive generations fail to change the archive front
// (convergence), or when GAConfig.MaxEvaluations is spent.
//
// Determinism: exactly as GA — randomness is consumed only inside Next,
// results are observed in proposal order, and all sorts below are either
// keyed on a total order or stable over deterministically-ordered input,
// so identical seed and config reproduce the identical proposal sequence
// and the identical front at every evaluation parallelism level.
type NSGA struct {
	cfg GAConfig
	rng *rand.Rand
	src *countedSource // rng's stream, counted for Snapshot/Restore

	evaluated map[dspace.Vector]Result // fitness cache across generations
	pop       []Result                 // survivors of the previous generation
	current   []dspace.Vector          // generation being evaluated
	pending   []dspace.Vector          // current members not in the cache
	front     ParetoFront              // archive over every evaluated vector

	gen       int
	stale     int
	exhausted bool // evaluation budget spent: current generation is the last
	done      bool
}

// NewNSGA returns a seeded multi-objective genetic search strategy.
// Identical seed and config yield an identical exploration (see the
// determinism contract on NSGA). GAConfig.Elite is ignored: NSGA-II's
// survivor selection is inherently elitist.
func NewNSGA(seed int64, cfg GAConfig) *NSGA {
	cfg.defaults()
	src := newCountedSource(seed)
	return &NSGA{
		cfg:       cfg,
		rng:       rand.New(src),
		src:       src,
		evaluated: make(map[dspace.Vector]Result),
	}
}

// Next proposes the unevaluated members of the next generation, exactly
// like GA.Next: generations whose members are all cache hits are scored
// and skipped, so an empty batch always means the search is over.
func (n *NSGA) Next() []dspace.Vector {
	for !n.done {
		if n.current == nil {
			n.buildGeneration()
			continue
		}
		if len(n.pending) > 0 {
			return n.pending
		}
		n.finish(nil)
	}
	return nil
}

// Observe folds the results of the last proposed batch back into the
// fitness cache (in proposal order) and closes out the generation.
func (n *NSGA) Observe(results []Result) {
	if n.current != nil {
		n.finish(results)
	}
}

// Evaluations returns how many vectors the search has had evaluated so
// far (cache hits excluded).
func (n *NSGA) Evaluations() int { return len(n.evaluated) }

// Generation returns how many generations have been scored.
func (n *NSGA) Generation() int { return n.gen }

// Front returns the archive Pareto front over every vector evaluated so
// far, sorted by ascending footprint. It is empty before the first
// generation is scored.
func (n *NSGA) Front() []Result { return n.front.Results() }

// buildGeneration fills n.current with the next population and n.pending
// with its members that still need evaluation, honouring the evaluation
// budget the same way GA does.
func (n *NSGA) buildGeneration() {
	var members []dspace.Vector
	if n.gen == 0 {
		members = Sample(n.cfg.Population, n.cfg.Fix)
	} else {
		members = n.breedGeneration()
	}
	if len(members) == 0 {
		n.done = true
		return
	}
	n.current = members
	n.pending = n.pending[:0]
	for _, v := range members {
		if _, hit := n.evaluated[v]; !hit {
			n.pending = append(n.pending, v)
		}
	}
	if cap := n.cfg.MaxEvaluations; cap > 0 {
		room := cap - len(n.evaluated)
		if room <= 0 {
			n.pending = n.pending[:0]
			n.exhausted = true
		} else if len(n.pending) > room {
			n.pending = n.pending[:room]
			kept := n.current[:0]
			pendingSet := make(map[dspace.Vector]bool, len(n.pending))
			for _, v := range n.pending {
				pendingSet[v] = true
			}
			for _, v := range n.current {
				if _, hit := n.evaluated[v]; hit || pendingSet[v] {
					kept = append(kept, v)
				}
			}
			n.current = kept
			n.exhausted = true
		}
	}
}

// breedGeneration produces the next offspring population by crowded
// tournament selection over the survivors, crossover, mutation and
// repair. Members are unique within the generation; children duplicating
// an already-evaluated vector are admitted (their cached fitness keeps
// survivor selection honest) but will not be re-evaluated.
func (n *NSGA) breedGeneration() []dspace.Vector {
	ranks, crowding := rankAndCrowd(n.pop)
	members := make([]dspace.Vector, 0, n.cfg.Population)
	inGen := make(map[dspace.Vector]bool, n.cfg.Population)
	for attempts := 40 * n.cfg.Population; len(members) < n.cfg.Population && attempts > 0; attempts-- {
		a := n.tournament(ranks, crowding)
		b := n.tournament(ranks, crowding)
		raw := crossoverMutate(n.rng, n.cfg.CrossoverRate, n.cfg.MutationRate, n.pop[a].Vector, n.pop[b].Vector)
		child, ok := Repair(raw, n.cfg.Fix)
		if !ok || inGen[child] {
			continue
		}
		inGen[child] = true
		members = append(members, child)
	}
	return members
}

// tournament draws cfg.Tournament individuals from the survivor pool and
// returns the index of the winner by the crowded-comparison operator:
// lower non-domination rank wins, ties go to the larger crowding
// distance, remaining ties to the first individual drawn.
func (n *NSGA) tournament(ranks []int, crowding []float64) int {
	best := n.rng.Intn(len(n.pop))
	for i := 1; i < n.cfg.Tournament; i++ {
		c := n.rng.Intn(len(n.pop))
		if ranks[c] < ranks[best] || (ranks[c] == ranks[best] && crowding[c] > crowding[best]) {
			best = c
		}
	}
	return best
}

// finish scores the generation: results arrive in proposal order for
// n.pending, cached members score from the cache, the archive front
// absorbs the offspring, and survivor selection truncates the combined
// parent+offspring pool back to Population individuals.
func (n *NSGA) finish(results []Result) {
	for i, v := range n.pending {
		if i >= len(results) {
			break
		}
		r := results[i]
		r.Vector = v
		n.evaluated[v] = r
	}
	offspring := make([]Result, 0, len(n.current))
	frontChanged := false
	for _, v := range n.current {
		r, ok := n.evaluated[v]
		if !ok {
			continue // evaluation was cut short (cancellation)
		}
		offspring = append(offspring, r)
		if n.front.Add(r) {
			frontChanged = true
		}
	}

	// Combine survivors and offspring (deduplicated: a child may rediscover
	// a surviving parent's vector) and keep the best Population of them.
	combined := make([]Result, 0, len(n.pop)+len(offspring))
	inPool := make(map[dspace.Vector]bool, len(n.pop)+len(offspring))
	for _, r := range append(append([]Result{}, n.pop...), offspring...) {
		if !inPool[r.Vector] {
			inPool[r.Vector] = true
			combined = append(combined, r)
		}
	}
	n.pop = selectSurvivors(combined, n.cfg.Population)

	n.current, n.pending = nil, nil
	n.gen++
	// The seed generation establishes the front; staleness counts only
	// generations that leave an established front unchanged.
	if frontChanged || n.gen == 1 {
		n.stale = 0
	} else {
		n.stale++
	}
	if len(n.pop) == 0 || len(offspring) == 0 || n.gen >= n.cfg.Generations ||
		n.stale >= n.cfg.Patience || n.exhausted {
		n.done = true
	}
}

// selectSurvivors is NSGA-II environmental selection: non-dominated sort
// the pool, admit whole fronts while they fit, and truncate the last
// front by descending crowding distance (stable, so pool order breaks
// exact ties deterministically).
func selectSurvivors(pool []Result, size int) []Result {
	if len(pool) <= size {
		return pool
	}
	fronts := nonDominatedSort(pool)
	survivors := make([]Result, 0, size)
	for _, front := range fronts {
		if len(survivors)+len(front) <= size {
			for _, i := range front {
				survivors = append(survivors, pool[i])
			}
			continue
		}
		crowd := crowdingDistances(pool, front)
		idx := append([]int(nil), front...)
		sort.SliceStable(idx, func(a, b int) bool {
			return crowd[idx[a]] > crowd[idx[b]]
		})
		for _, i := range idx[:size-len(survivors)] {
			survivors = append(survivors, pool[i])
		}
		break
	}
	return survivors
}

// rankAndCrowd computes, for every individual, its non-domination rank
// (0 = Pareto-optimal within the pool) and its crowding distance within
// its own front.
func rankAndCrowd(pool []Result) (ranks []int, crowding []float64) {
	ranks = make([]int, len(pool))
	crowding = make([]float64, len(pool))
	for fi, front := range nonDominatedSort(pool) {
		crowd := crowdingDistances(pool, front)
		for _, i := range front {
			ranks[i] = fi
			crowding[i] = crowd[i]
		}
	}
	return ranks, crowding
}

// nonDominatedSort partitions pool into successive non-dominated fronts
// (Deb's fast non-dominated sort): front 0 is the pool's Pareto set,
// front 1 is the Pareto set of the remainder, and so on. Each front
// preserves pool order, so the result is deterministic in the input
// order. Failed results dominate nothing and are dominated by every
// successful one, so they sink to the last fronts naturally.
func nonDominatedSort(pool []Result) [][]int {
	n := len(pool)
	dominatedBy := make([]int, n) // how many pool members dominate i
	dominates := make([][]int, n) // which members i dominates
	var current []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(pool[i], pool[j]) {
				dominates[i] = append(dominates[i], j)
			} else if Dominates(pool[j], pool[i]) {
				dominatedBy[i]++
			}
		}
		if dominatedBy[i] == 0 {
			current = append(current, i)
		}
	}
	var fronts [][]int
	for len(current) > 0 {
		fronts = append(fronts, current)
		var next []int
		for _, i := range current {
			for _, j := range dominates[i] {
				if dominatedBy[j]--; dominatedBy[j] == 0 {
					next = append(next, j)
				}
			}
		}
		sort.Ints(next) // pool order, independent of domination-list order
		current = next
	}
	return fronts
}

// crowdingDistances computes NSGA-II crowding distances for one front:
// per objective, the front is sorted by that objective, boundary
// individuals get +Inf, and interior ones accumulate the normalized gap
// between their neighbours. The returned slice is indexed like pool
// (entries outside the front are zero). Failed results score zero on
// both objectives, which is fine: they only ever share a front with each
// other.
func crowdingDistances(pool []Result, front []int) []float64 {
	dist := make([]float64, len(pool))
	if len(front) <= 2 {
		for _, i := range front {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	for _, objective := range []func(Result) float64{
		func(r Result) float64 { return float64(r.Footprint) },
		func(r Result) float64 { return float64(r.Work) },
	} {
		idx := append([]int(nil), front...)
		sort.SliceStable(idx, func(a, b int) bool {
			return objective(pool[idx[a]]) < objective(pool[idx[b]])
		})
		lo, hi := objective(pool[idx[0]]), objective(pool[idx[len(idx)-1]])
		dist[idx[0]] = math.Inf(1)
		dist[idx[len(idx)-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for k := 1; k < len(idx)-1; k++ {
			dist[idx[k]] += (objective(pool[idx[k+1]]) - objective(pool[idx[k-1]])) / (hi - lo)
		}
	}
	return dist
}

// Package bitset provides a small growable bitset used to index nonempty
// free-list pools: "first nonempty pool at or after position i" becomes a
// TrailingZeros64 scan over words instead of a walk over pool structures.
// It supports insertion of a zero bit at a position, mirroring insertion
// into a sorted key slice the bitset runs parallel to.
package bitset

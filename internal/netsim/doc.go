// Package netsim generates synthetic internet traffic with the
// characteristics of the Internet Traffic Archive traces the paper feeds
// to DRR ("10 real traces of internet network traffic up to 10 Mbit/sec").
//
// The real archive is unavailable offline, so the generator reproduces
// the properties that matter to a dynamic memory manager:
//
//   - the empirical packet-size mixture of wide-area traffic (40-byte
//     ACKs, 552/576-byte TCP segments, 1500-byte MTU-size packets, plus a
//     spread of intermediate sizes),
//   - bursty ON/OFF arrivals (backlogs form during bursts, which is what
//     makes DRR queue memory dynamic), and
//   - traffic-mix drift over time (phases dominated by different size
//     modes, which punishes allocators that keep segregated per-size
//     free lists forever).
//
// Generation is deterministic per seed; the experiment harness averages
// over ten seeds as the paper averages over ten traces.
package netsim

package bitset

import "math/bits"

// Set is a growable bitset. The zero value is an empty set.
type Set struct {
	w []uint64
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() Set {
	var c Set
	if len(s.w) > 0 {
		c.w = append([]uint64(nil), s.w...)
	}
	return c
}

// ensure grows the word slice so bit i is addressable.
func (s *Set) ensure(i int) {
	for len(s.w) <= i/64 {
		s.w = append(s.w, 0)
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.ensure(i)
	s.w[i/64] |= 1 << (i % 64)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	if i/64 < len(s.w) {
		s.w[i/64] &^= 1 << (i % 64)
	}
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return i/64 < len(s.w) && s.w[i/64]&(1<<(i%64)) != 0
}

// NextGE returns the position of the first set bit at or after i, or -1.
func (s *Set) NextGE(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i / 64
	if wi >= len(s.w) {
		return -1
	}
	if rem := s.w[wi] >> (i % 64); rem != 0 {
		return i + bits.TrailingZeros64(rem)
	}
	for wi++; wi < len(s.w); wi++ {
		if s.w[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(s.w[wi])
		}
	}
	return -1
}

// InsertZero shifts every bit at position >= i up by one and leaves bit i
// clear, mirroring an insertion into a parallel sorted slice.
func (s *Set) InsertZero(i int) {
	s.ensure(i)
	if s.w[len(s.w)-1]>>63 != 0 {
		s.w = append(s.w, 0)
	}
	wi, off := i/64, uint(i%64)
	// Shift higher words up first, pulling each predecessor's top bit.
	for j := len(s.w) - 1; j > wi; j-- {
		s.w[j] = s.w[j]<<1 | s.w[j-1]>>63
	}
	low := s.w[wi] & (1<<off - 1)
	high := s.w[wi] &^ (1<<off - 1)
	s.w[wi] = low | high<<1
}

// Reset empties the set.
func (s *Set) Reset() { s.w = s.w[:0] }

package trace

import "io"

// Source streams the events of one logical trace, in order. It is the
// read-side abstraction the replay engine, the profiler and the explore
// engine consume: an in-memory Trace is one implementation, and a binary
// trace file decoded on the fly (DecodeBinarySource) is another, so a
// multi-hour capture replays with memory bounded by the application's
// live set instead of the trace length.
//
// A Source is single-use and not safe for concurrent use; obtain
// independent passes from an Opener. Sources that hold resources (an open
// file) implement io.Closer; consumers that abandon a source early should
// pass it to Close.
type Source interface {
	// Name reports the trace's name, for result labelling.
	Name() string
	// Next returns the next event. ok is false when the stream is
	// exhausted; a non-nil error (ok false too) means the stream is
	// corrupt or unreadable and the replay cannot continue.
	Next() (e Event, ok bool, err error)
}

// Sized is implemented by sources that know their event count up front
// (an in-memory trace, a DMMT1 file); consumers use it to preallocate.
type Sized interface {
	// EventCount returns the total number of events the source yields.
	EventCount() int
}

// Opener yields independent sequential passes over one logical trace.
// Exploration replays the same trace once per candidate, so it consumes
// an Opener rather than a single-use Source. *Trace and *File implement
// it; Open must be safe for concurrent use (candidates evaluate in
// parallel, each on its own Source).
type Opener interface {
	Open() (Source, error)
}

// Close releases a source's resources, if it holds any: sources over
// open files implement io.Closer, in-memory sources do not. It is safe
// on every Source and idempotent for the sources of this package.
func Close(s Source) error {
	if c, ok := s.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Source returns a Source reading the trace from memory. The replay of a
// trace through its Source is identical — footprint, work, system stats —
// to replaying the trace directly.
func (t *Trace) Source() Source { return &sliceSource{t: t} }

// Open implements Opener: every call returns an independent in-memory
// pass. It never fails and is safe for concurrent use.
func (t *Trace) Open() (Source, error) { return t.Source(), nil }

// sliceSource iterates a materialized trace. The replay engine recognizes
// it and keeps the preallocated dense live-pointer table of the in-memory
// fast path.
type sliceSource struct {
	t *Trace
	i int
}

func (s *sliceSource) Name() string { return s.t.Name }

func (s *sliceSource) EventCount() int { return len(s.t.Events) }

func (s *sliceSource) Next() (Event, bool, error) {
	if s.i >= len(s.t.Events) {
		return Event{}, false, nil
	}
	e := s.t.Events[s.i]
	s.i++
	return e, true, nil
}

// EventSink consumes an event stream: the write-side dual of Source.
// Begin is called once with the trace's name before the first event;
// WriteEvent receives every event in order. Flushing or closing the
// underlying medium is the creator's job, not the sink's.
//
// The streaming Encoder is an EventSink, so trace generation can pipe
// straight to disk without materializing an event slice (see
// Builder/NewBuilderTo and WorkloadOpts.Sink in the registry).
type EventSink interface {
	Begin(name string) error
	WriteEvent(e Event) error
}

// StatsSink wraps an EventSink, counting events and tracking the peak of
// concurrently live bytes as the stream passes through — the summary a
// generator wants to report when the events themselves are not kept.
// Its memory is O(live set): one map entry per currently live allocation.
// A nil Sink makes StatsSink a pure counter.
type StatsSink struct {
	Sink EventSink

	name   string
	events int
	live   map[int64]int64
	cur    int64
	max    int64
}

// Begin implements EventSink.
func (s *StatsSink) Begin(name string) error {
	s.name = name
	if s.live == nil {
		s.live = make(map[int64]int64)
	}
	if s.Sink != nil {
		return s.Sink.Begin(name)
	}
	return nil
}

// WriteEvent implements EventSink.
func (s *StatsSink) WriteEvent(e Event) error {
	s.events++
	if s.live == nil {
		s.live = make(map[int64]int64)
	}
	switch e.Kind {
	case KindAlloc:
		s.live[e.ID] = e.Size
		s.cur += e.Size
		if s.cur > s.max {
			s.max = s.cur
		}
	case KindFree:
		s.cur -= s.live[e.ID]
		delete(s.live, e.ID)
	}
	if s.Sink != nil {
		return s.Sink.WriteEvent(e)
	}
	return nil
}

// TraceName returns the name passed to Begin.
func (s *StatsSink) TraceName() string { return s.name }

// Events returns the number of events written so far.
func (s *StatsSink) Events() int { return s.events }

// MaxLiveBytes returns the peak of concurrently live bytes observed.
func (s *StatsSink) MaxLiveBytes() int64 { return s.max }

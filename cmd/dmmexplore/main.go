// Command dmmexplore explores the DM-management design space against a
// trace: it evaluates candidates drawn from the ~144k valid decision
// vectors plus the methodology's design, prints the footprint/work Pareto
// front, and shows where the methodology's one-walk design lands relative
// to search.
//
// Three search strategies are available. -strategy exhaustive (the
// default) evaluates a uniform stride sample of at most -candidates
// vectors; -strategy ga runs a deterministic seeded genetic algorithm
// (tournament selection, constraint-repaired crossover and mutation,
// elitism) that typically matches the exhaustive best while evaluating a
// fraction of the candidates; -strategy nsga runs the NSGA-II-style
// multi-objective variant that searches for the whole footprint×work
// Pareto front rather than the single best footprint. -seed seeds both
// the workload generator and the genetic strategies, so a run is
// reproduced exactly by its command line at any -parallel.
//
// -objectives selects the optimization axes: "footprint" (the classic
// scalar mode) or "footprint,work" (Pareto mode, the default for
// -strategy nsga), in which the exploration reports the front as a table
// and an ASCII scatter plot.
//
// Candidates are evaluated concurrently on -parallel workers (every
// candidate owns a private simulated heap), with results identical to a
// sequential run. Ctrl-C cancels the exploration.
//
// Long runs survive interruption: -checkpoint FILE writes the full
// exploration state (strategy snapshot, evaluated candidates, trace
// identity) atomically every -checkpoint-every generations, and
// -resume continues from it — the resumed run's output is
// byte-identical to an uninterrupted one. Resume refuses a checkpoint
// written by a different command line or against a different trace.
// -on-error selects what a panicking candidate does to the run: "fail"
// (abort, the default) or "skip" (record it as that candidate's error
// and keep going).
//
// A trace file passed via -trace is replayed out-of-core: every candidate
// streams its own pass straight off the file (binary formats), so even a
// capture far larger than memory explores with O(live-set) memory per
// worker. A positional trace file is materialized and validated instead.
//
// Usage:
//
//	dmmexplore -workload drr -candidates 96
//	dmmexplore -workload drr -strategy ga -population 24 -generations 20
//	dmmexplore -workload drr -strategy nsga -objectives footprint,work
//	dmmexplore -workload render3d -parallel 8
//	dmmexplore -trace drr1.trace
//	dmmexplore drr1.trace
//	dmmexplore -workload drr -strategy ga -checkpoint run.ckpt
//	dmmexplore -workload drr -strategy ga -checkpoint run.ckpt -resume
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	"dmmkit"
	"dmmkit/internal/cliopts"
	"dmmkit/internal/textplot"
)

// setupCheckpoint wires checkpoint writing (and, with resume, state
// restoration) into the exploration options. The strategy must
// implement Snapshot/Restore; every built-in one does. A resume whose
// checkpoint file does not exist yet starts fresh — an interrupted run
// may have died before its first checkpoint.
func setupCheckpoint(opts *dmmkit.ExploreOpts, meta dmmkit.CheckpointMeta, path string, every int, resume bool) error {
	if opts.Strategy == nil {
		// The engine's implicit exhaustive strategy lives inside the
		// engine; checkpointing needs an explicit handle to snapshot.
		opts.Strategy = dmmkit.NewExhaustiveSearch(meta.MaxEvaluations)
	}
	snapper, ok := opts.Strategy.(dmmkit.SearchSnapshotter)
	if !ok {
		return fmt.Errorf("-strategy %s does not support checkpointing (no Snapshot/Restore)", meta.Strategy)
	}
	gens := 0
	if resume {
		st, err := dmmkit.LoadCheckpoint(path)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			fmt.Fprintf(os.Stderr, "dmmexplore: no checkpoint at %s yet; starting fresh\n", path)
		case err != nil:
			return err
		default:
			if !st.Meta.Trace.Equal(meta.Trace) {
				return fmt.Errorf("%s was checkpointed against %s; this run explores %s", path, st.Meta.Trace, meta.Trace)
			}
			have, want := st.Meta, meta
			have.Trace, want.Trace = dmmkit.TraceIdentity{}, dmmkit.TraceIdentity{}
			if have != want {
				return fmt.Errorf("%s was written by a different configuration (checkpoint %+v, command line %+v)", path, have, want)
			}
			if err := snapper.Restore(st.Strategy); err != nil {
				return fmt.Errorf("restoring strategy from %s: %w", path, err)
			}
			prior, err := st.Prior()
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			opts.Prior = prior
			gens = st.GenerationsDone
			fmt.Fprintf(os.Stderr, "dmmexplore: resuming from %s: %d generations, %d candidates already evaluated\n",
				path, gens, len(prior))
		}
	}
	opts.AfterGeneration = func(cands []dmmkit.Candidate) error {
		gens++
		if gens%every != 0 {
			return nil
		}
		snap, err := snapper.Snapshot()
		if err != nil {
			return fmt.Errorf("snapshotting after generation %d: %w", gens, err)
		}
		return dmmkit.SaveCheckpoint(path, &dmmkit.CheckpointState{
			Meta:            meta,
			GenerationsDone: gens,
			Strategy:        json.RawMessage(snap),
			Candidates:      dmmkit.CheckpointCandidates(cands),
		})
	}
	return nil
}

// frontPlot renders the footprint×work front as an ASCII scatter, with
// every evaluated candidate as background context and the methodology's
// design as its own marker when it replayed successfully.
func frontPlot(cands, front []dmmkit.Candidate) string {
	var all, fr, designed textplot.Series
	all.Name = "evaluated candidate"
	fr.Name = "Pareto front"
	designed.Name = "methodology design"
	for _, c := range cands {
		if c.Err != nil {
			continue
		}
		if c.Designed {
			designed.X = append(designed.X, float64(c.MaxFootprint))
			designed.Y = append(designed.Y, float64(c.Work))
			continue
		}
		all.X = append(all.X, float64(c.MaxFootprint))
		all.Y = append(all.Y, float64(c.Work))
	}
	for _, c := range front {
		fr.X = append(fr.X, float64(c.MaxFootprint))
		fr.Y = append(fr.Y, float64(c.Work))
	}
	series := []textplot.Series{all, fr}
	if len(designed.X) > 0 {
		series = append(series, designed)
	}
	return textplot.Plot(72, 16, series...)
}

func main() {
	var (
		workload    = flag.String("workload", "", "generate and explore a registered workload: "+strings.Join(dmmkit.Workloads(), ", "))
		tracePath   = flag.String("trace", "", "explore a trace file, streaming it from disk per candidate (out-of-core; binary traces never materialize)")
		seed        = flag.Int64("seed", 1, "seed for the workload generator and the genetic strategies (identical seed = identical run)")
		strategy    = flag.String("strategy", "exhaustive", "search strategy: "+strings.Join(cliopts.ValidStrategies, ", "))
		objectives  = flag.String("objectives", "", "optimization axes: footprint or footprint,work (default: footprint; footprint,work for nsga)")
		candidates  = flag.Int("candidates", 96, "evaluation budget: stride-sample size (exhaustive) or max evaluations (ga, nsga)")
		population  = flag.Int("population", 24, "GA/NSGA individuals per generation")
		generations = flag.Int("generations", 20, "GA/NSGA generation cap (stops earlier on convergence)")
		quick       = flag.Bool("quick", true, "use a reduced workload (exploration replays every candidate)")
		parallel    = flag.Int("parallel", 0, "concurrent evaluation workers (0 = GOMAXPROCS, 1 = sequential)")
		progress    = flag.Bool("progress", true, "report evaluation progress on stderr")
		plot        = flag.Bool("plot", true, "render an ASCII footprint-vs-work plot in Pareto mode")
		ckptPath    = flag.String("checkpoint", "", "write exploration state to this file for -resume (atomic, CRC-guarded)")
		ckptEvery   = flag.Int("checkpoint-every", 1, "checkpoint after every N generations")
		resume      = flag.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
		onError     = flag.String("on-error", "fail", "panicking-candidate policy: fail (abort the run) or skip (record and continue)")
	)
	flag.Parse()

	// Validate the search flags before the (potentially slow) workload
	// build, so a typo fails instantly with a usage error. The shared
	// cliopts validation keeps these messages identical to the ones
	// dmmserve returns for the same bad input.
	objs, multi, err := cliopts.ResolveMode(*strategy, *objectives)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
		os.Exit(2)
	}
	errPolicy, err := dmmkit.ParseErrorPolicy(*onError)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmexplore: bad -on-error: %v\n", err)
		os.Exit(2)
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "dmmexplore: -resume requires -checkpoint FILE")
		os.Exit(2)
	}
	if *ckptEvery < 1 {
		fmt.Fprintf(os.Stderr, "dmmexplore: -checkpoint-every must be >= 1, got %d\n", *ckptEvery)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// op is what the engine explores; traceLine describes it. An
	// in-memory trace reports its event count up front, a streaming
	// DMMT2 file may not (the count lives in its trailer). identityOf
	// computes the trace identity a checkpoint pins — lazily, since
	// hashing a large trace file is wasted work without -checkpoint.
	var op dmmkit.TraceOpener
	var traceLine string
	identityOf := func() (dmmkit.TraceIdentity, error) {
		return dmmkit.TraceIdentity{}, fmt.Errorf("no trace identity")
	}
	switch {
	case *tracePath != "":
		op, err = dmmkit.OpenTrace(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
			os.Exit(1)
		}
		switch t := op.(type) {
		case *dmmkit.TraceFile:
			if n := t.Events(); n >= 0 {
				traceLine = fmt.Sprintf("%q (%d events, streamed from %s)", t.Name(), n, *tracePath)
			} else {
				traceLine = fmt.Sprintf("%q (streamed from %s)", t.Name(), *tracePath)
			}
		case *dmmkit.Trace:
			traceLine = fmt.Sprintf("%q (%d events, live peak %d B)", t.Name, len(t.Events), t.MaxLiveBytes())
		}
		identityOf = func() (dmmkit.TraceIdentity, error) { return dmmkit.TraceFileIdentity(*tracePath) }
	case *workload != "":
		tr, err := dmmkit.BuildWorkload(*workload, dmmkit.WorkloadOpts{Seed: *seed, Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
			os.Exit(2)
		}
		op = tr
		traceLine = fmt.Sprintf("%q (%d events, live peak %d B)", tr.Name, len(tr.Events), tr.MaxLiveBytes())
		identityOf = func() (dmmkit.TraceIdentity, error) {
			return dmmkit.WorkloadTraceIdentity(*workload, *seed, *quick), nil
		}
	case flag.NArg() == 1:
		tr, err := dmmkit.LoadTrace(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
			os.Exit(1)
		}
		op = tr
		traceLine = fmt.Sprintf("%q (%d events, live peak %d B)", tr.Name, len(tr.Events), tr.MaxLiveBytes())
		identityOf = func() (dmmkit.TraceIdentity, error) { return dmmkit.TraceFileIdentity(flag.Arg(0)) }
	default:
		fmt.Fprintln(os.Stderr, "usage: dmmexplore [-workload NAME | -trace FILE | trace-file]")
		os.Exit(2)
	}

	opts := dmmkit.ExploreOpts{
		MaxCandidates:    *candidates,
		IncludeDesigned:  true,
		Parallelism:      *parallel,
		Objectives:       objs,
		OnCandidateError: errPolicy,
	}
	// Build the strategy through the same constructor dmmserve uses, so
	// a job request with these parameters reproduces this run exactly.
	// For exhaustive the engine would default to the same strategy with
	// Strategy nil; constructing it explicitly also gives -checkpoint a
	// handle to snapshot.
	opts.Strategy, err = cliopts.NewStrategy(*strategy, cliopts.SearchConfig{
		Seed:        *seed,
		Population:  *population,
		Generations: *generations,
		Budget:      *candidates,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
		os.Exit(2)
	}
	switch *strategy {
	case "exhaustive":
		fmt.Printf("exploring up to %d of %d candidates against %s...\n\n",
			*candidates, dmmkit.SpaceSize(), traceLine)
	case "ga":
		fmt.Printf("genetic search (seed %d, population %d, <= %d generations, <= %d evaluations) over %d valid vectors against %s...\n\n",
			*seed, *population, *generations, *candidates, dmmkit.SpaceSize(), traceLine)
	case "nsga":
		fmt.Printf("NSGA-II multi-objective search (seed %d, population %d, <= %d generations, <= %d evaluations) for the footprint×work front over %d valid vectors against %s...\n\n",
			*seed, *population, *generations, *candidates, dmmkit.SpaceSize(), traceLine)
	}
	if *ckptPath != "" {
		identity, err := identityOf()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmexplore: computing trace identity: %v\n", err)
			os.Exit(1)
		}
		meta := dmmkit.CheckpointMeta{
			Strategy:       *strategy,
			Seed:           *seed,
			Population:     *population,
			Generations:    *generations,
			MaxEvaluations: *candidates,
			Objectives:     cliopts.ObjectivesKey(objs),
			Trace:          identity,
		}
		if err := setupCheckpoint(&opts, meta, *ckptPath, *ckptEvery, *resume); err != nil {
			fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
			os.Exit(1)
		}
	}
	if *progress {
		opts.OnProgress = func(done, total int) {
			if done%16 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\revaluated %d/%d candidates", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	cands, err := dmmkit.NewEngine(*parallel).ExploreSource(ctx, op, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\ndmmexplore: %v (%d candidates evaluated before cancellation)\n", err, len(cands))
		os.Exit(1)
	}
	failed := 0
	var designed *dmmkit.Candidate
	for i := range cands {
		if cands[i].Err != nil {
			failed++
		}
		if cands[i].Designed {
			designed = &cands[i]
		}
	}
	// Build/replay failures are per-candidate data, but every candidate
	// failing means the trace itself is unusable (e.g. a corrupt stream
	// whose damage only surfaces mid-replay, past the decoder's
	// per-field checks) — that must fail the run, not print an empty
	// front and exit 0.
	if len(cands) > 0 && failed == len(cands) {
		fmt.Fprintf(os.Stderr, "dmmexplore: all %d candidates failed; first error: %v\n",
			failed, cands[0].Err)
		os.Exit(1)
	}
	front := dmmkit.ParetoFront(cands)
	fmt.Printf("evaluated %d candidates (%d failed, %.2f%% of the space); Pareto front (footprint vs work):\n\n",
		len(cands), failed, 100*float64(len(cands))/float64(dmmkit.SpaceSize()))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "footprint (B)\twork units\tdesigned?\tvector")
	for _, c := range front {
		mark := ""
		if c.Designed {
			mark = "<== methodology"
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\n", c.MaxFootprint, c.Work, mark, c.Vector)
	}
	tw.Flush()

	if multi && *plot {
		fmt.Printf("\nfootprint (x, right = more bytes) vs work (y, up = more work):\n\n")
		fmt.Print(frontPlot(cands, front))
	}

	if best, ok := dmmkit.BestByFootprint(cands); ok {
		fmt.Printf("\nbest footprint: %d B (work %d)\n", best.MaxFootprint, best.Work)
	}
	if designed != nil && designed.Err == nil {
		rank := 1
		for _, c := range cands {
			if c.Err == nil && !c.Designed && c.MaxFootprint < designed.MaxFootprint {
				rank++
			}
		}
		fmt.Printf("methodology design: footprint %d B, work %d — rank %d/%d by footprint\n",
			designed.MaxFootprint, designed.Work, rank, len(cands)-failed)
		fmt.Printf("decision vector: %s\n", designed.Vector)
	}
}

package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dmmkit/internal/dspace"
	workpool "dmmkit/internal/pool"
	"dmmkit/internal/search"
	"dmmkit/internal/trace"
)

// withEvalPanic makes the evaluation of one chosen vector panic for the
// duration of the test.
func withEvalPanic(t *testing.T, victim dspace.Vector) {
	t.Helper()
	evalHook = func(v dspace.Vector, designed bool) {
		if v == victim && !designed {
			panic("pathological manager vector")
		}
	}
	t.Cleanup(func() { evalHook = nil })
}

// TestPanicSkipAndRecord: with the skip-and-record policy a panicking
// candidate becomes a recorded per-candidate failure — the run
// completes, every other candidate is unaffected, and the stream is
// byte-identical at parallelism 1 and 8.
func TestPanicSkipAndRecord(t *testing.T) {
	tr := exploreTrace()
	baselineOpts := ExploreOpts{MaxCandidates: 24, IncludeDesigned: true, Parallelism: 1}
	baseline, err := Explore(tr, baselineOpts)
	if err != nil {
		t.Fatal(err)
	}
	victim := baseline[5].Vector
	withEvalPanic(t, victim)

	var streams [][]candKey
	for _, par := range []int{1, 8} {
		opts := ExploreOpts{
			MaxCandidates:    24,
			IncludeDesigned:  true,
			Parallelism:      par,
			OnCandidateError: SkipAndRecord,
		}
		var streamed []Candidate
		opts.OnCandidate = func(c Candidate) { streamed = append(streamed, c) }
		got, err := Explore(tr, opts)
		if err != nil {
			t.Fatalf("parallelism %d: run aborted: %v", par, err)
		}
		if len(got) != len(baseline) {
			t.Fatalf("parallelism %d: %d candidates, want %d", par, len(got), len(baseline))
		}
		if !reflect.DeepEqual(keysOf(streamed), keysOf(got)) {
			t.Fatalf("parallelism %d: streamed candidates differ from returned ones", par)
		}
		for i, c := range got {
			if c.Vector == victim && !c.Designed {
				var pe *workpool.PanicError
				if !errors.As(c.Err, &pe) {
					t.Fatalf("parallelism %d: victim candidate Err = %v, want *pool.PanicError", par, c.Err)
				}
				if pe.Value != "pathological manager vector" || len(pe.Stack) == 0 {
					t.Fatalf("parallelism %d: PanicError = %+v, want recovered value and stack", par, pe)
				}
				continue
			}
			if k, b := keysOf(got[i : i+1])[0], keysOf(baseline[i : i+1])[0]; k != b {
				t.Fatalf("parallelism %d: candidate %d diverged from baseline:\n got %+v\nwant %+v", par, i, k, b)
			}
		}
		streams = append(streams, keysOf(got))
	}
	if !reflect.DeepEqual(streams[0], streams[1]) {
		t.Fatal("skip-and-record streams differ between parallelism 1 and 8")
	}
}

// TestPanicFailFast: the default policy surfaces the panic as the run's
// error — a *pool.PanicError with the recovered value — rather than
// crashing the process or swallowing it.
func TestPanicFailFast(t *testing.T) {
	tr := exploreTrace()
	baseline, err := Explore(tr, ExploreOpts{MaxCandidates: 24, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	withEvalPanic(t, baseline[5].Vector)

	for _, par := range []int{1, 8} {
		got, err := Explore(tr, ExploreOpts{MaxCandidates: 24, Parallelism: par})
		var pe *workpool.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("parallelism %d: err = %v, want *pool.PanicError", par, err)
		}
		if pe.Value != "pathological manager vector" {
			t.Fatalf("parallelism %d: recovered value = %v", par, pe.Value)
		}
		// The returned prefix is contiguous and matches the baseline.
		for i, c := range got {
			if k, b := keysOf([]Candidate{c})[0], keysOf(baseline[i : i+1])[0]; k != b {
				t.Fatalf("parallelism %d: prefix candidate %d diverged", par, i)
			}
		}
	}
}

// captureRun runs one exploration collecting every observable stream:
// the returned slice, the OnCandidate stream, and (in Pareto mode) the
// OnFront snapshots.
type captureRun struct {
	out    []Candidate
	stream []Candidate
	fronts [][]candKey
	params []Params
	runErr error
}

func runCapture(t *testing.T, tr trace.Opener, opts ExploreOpts) *captureRun {
	t.Helper()
	cr := &captureRun{}
	opts.OnCandidate = func(c Candidate) {
		cr.stream = append(cr.stream, c)
		cr.params = append(cr.params, c.Params)
	}
	if hasWorkObjective(opts.Objectives) {
		opts.OnFront = func(front []Candidate) {
			cr.fronts = append(cr.fronts, keysOf(front))
		}
	}
	out, err := NewEngine(0).ExploreSource(context.Background(), tr, opts)
	cr.out, cr.runErr = out, err
	return cr
}

func hasWorkObjective(objs []Objective) bool {
	for _, o := range objs {
		if o == ObjectiveWork {
			return true
		}
	}
	return false
}

// TestResumeByteIdentical is the checkpoint/resume acceptance pin: an
// exploration interrupted between generations and resumed — strategy
// state restored via Snapshot/Restore, already-evaluated candidates
// re-emitted via Prior — produces byte-identical candidate and front
// streams to an uninterrupted run, for both GA and NSGA.
func TestResumeByteIdentical(t *testing.T) {
	tr := exploreTrace()
	cfg := search.GAConfig{Population: 8, Generations: 5, Patience: 5}
	const seed = 17

	cases := []struct {
		name string
		mk   func() search.Strategy
		objs []Objective
	}{
		{"ga", func() search.Strategy { return search.NewGA(seed, cfg) }, nil},
		{"nsga", func() search.Strategy { return search.NewNSGA(seed, cfg) },
			[]Objective{ObjectiveFootprint, ObjectiveWork}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Uninterrupted reference run.
			full := runCapture(t, tr, ExploreOpts{
				Strategy:        tc.mk(),
				IncludeDesigned: true,
				Parallelism:     4,
				Objectives:      tc.objs,
			})
			if full.runErr != nil {
				t.Fatal(full.runErr)
			}

			// Interrupted run: abort after the second generation, keeping
			// the strategy snapshot and the candidate prefix — exactly what
			// a checkpoint stores.
			errStop := errors.New("interrupted")
			var snap []byte
			var prior []Candidate
			gens := 0
			interrupted := tc.mk()
			stopOpts := ExploreOpts{
				Strategy:        interrupted,
				IncludeDesigned: true,
				Parallelism:     4,
				Objectives:      tc.objs,
				AfterGeneration: func(cands []Candidate) error {
					gens++
					if gens < 2 {
						return nil
					}
					var err error
					snap, err = interrupted.(search.Snapshotter).Snapshot()
					if err != nil {
						return err
					}
					prior = append([]Candidate(nil), cands...)
					return errStop
				},
			}
			if _, err := NewEngine(0).Explore(context.Background(), tr, stopOpts); !errors.Is(err, errStop) {
				t.Fatalf("interrupted run err = %v, want the injected stop", err)
			}
			if snap == nil || len(prior) == 0 {
				t.Fatal("checkpoint was not captured")
			}

			// Simulate what a real checkpoint can persist: vectors and
			// measurements survive; Params do not (they are re-derived) and
			// error values survive only as messages.
			for i := range prior {
				prior[i].Params = Params{}
				if prior[i].Err != nil {
					prior[i].Err = errors.New(prior[i].Err.Error())
				}
			}

			// Resumed run.
			restored := tc.mk()
			if err := restored.(search.Snapshotter).Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			resumed := runCapture(t, tr, ExploreOpts{
				Strategy:        restored,
				IncludeDesigned: true,
				Parallelism:     4,
				Objectives:      tc.objs,
				Prior:           prior,
			})
			if resumed.runErr != nil {
				t.Fatal(resumed.runErr)
			}

			if !reflect.DeepEqual(keysOf(resumed.out), keysOf(full.out)) {
				t.Fatalf("resumed candidates diverge from uninterrupted run:\n got %d candidates\nwant %d",
					len(resumed.out), len(full.out))
			}
			if !reflect.DeepEqual(keysOf(resumed.stream), keysOf(full.stream)) {
				t.Fatal("resumed OnCandidate stream diverges from uninterrupted run")
			}
			// Params of re-emitted prior candidates are re-derived, so the
			// streams agree on them too.
			if !reflect.DeepEqual(resumed.params, full.params) {
				t.Fatal("resumed candidate Params diverge from uninterrupted run")
			}
			if tc.objs != nil && !reflect.DeepEqual(resumed.fronts, full.fronts) {
				t.Fatalf("resumed OnFront stream diverges: %d snapshots vs %d",
					len(resumed.fronts), len(full.fronts))
			}
		})
	}
}

// TestAfterGenerationAbort pins the hook's error contract: a failing
// AfterGeneration aborts the run with that error and the already-
// streamed prefix.
func TestAfterGenerationAbort(t *testing.T) {
	tr := exploreTrace()
	boom := errors.New("checkpoint disk full")
	var streamed int
	out, err := Explore(tr, ExploreOpts{
		Strategy:        search.NewGA(3, search.GAConfig{Population: 6, Generations: 4}),
		Parallelism:     2,
		OnCandidate:     func(Candidate) { streamed++ },
		AfterGeneration: func([]Candidate) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the hook's error", err)
	}
	if len(out) != streamed {
		t.Fatalf("returned %d candidates, streamed %d — prefix must match the stream", len(out), streamed)
	}
	if len(out) == 0 {
		t.Fatal("no candidates before the abort; the first generation should have completed")
	}
}

// TestPanicMessageMentionsVector: the recorded failure of a panicking
// candidate is attributable — it carries the pool's panic wording.
func TestPanicMessageMentionsVector(t *testing.T) {
	tr := exploreTrace()
	baseline, err := Explore(tr, ExploreOpts{MaxCandidates: 8, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	withEvalPanic(t, baseline[2].Vector)
	got, err := Explore(tr, ExploreOpts{
		MaxCandidates:    8,
		Parallelism:      1,
		OnCandidateError: SkipAndRecord,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := got[2]
	if c.Err == nil || !strings.Contains(c.Err.Error(), "panicked") {
		t.Fatalf("victim Err = %v, want a panic-attributed error", c.Err)
	}
}

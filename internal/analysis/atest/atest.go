// Package atest is an offline reimplementation of the
// golang.org/x/tools/go/analysis/analysistest fixture harness. The real
// analysistest depends on go/packages (which shells out to the go
// command and is not part of the toolchain's vendored x/tools subset
// this repo builds against), so atest drives analyzers directly: it
// parses a fixture package under testdata/src/<pkg>, type-checks it with
// the stdlib source importer (fixtures may import only the standard
// library), runs the analyzer's Requires closure by hand, and matches
// reported diagnostics against analysistest-style expectations:
//
//	f.Close() // want `Close\(\) error .* is discarded`
//
// Each `// want` comment carries one or more double-quoted regular
// expressions that must match, in any order, the diagnostics reported on
// that line. Unmatched expectations and unexpected diagnostics both fail
// the test.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// One fileset and source importer for the whole test binary: the source
// importer re-type-checks stdlib imports from source, which is the
// expensive part, and its cache is only valid within a single fset.
var (
	sharedFset     = token.NewFileSet()
	sharedImporter = importer.ForCompiler(sharedFset, "source", nil)
)

// Run loads testdata/src/<pkg> relative to dir, applies flags to the
// analyzer (restoring defaults afterwards), runs it, and checks the
// diagnostics against the fixture's // want comments. The fixture's
// package path is exactly pkg, so path-scoped analyzers can be aimed at
// it through their -pkgs flags.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string, flags map[string]string) {
	t.Helper()
	for name, value := range flags {
		f := a.Flags.Lookup(name)
		if f == nil {
			t.Fatalf("analyzer %s has no flag -%s", a.Name, name)
		}
		old := f.Value.String()
		if err := f.Value.Set(value); err != nil {
			t.Fatalf("setting -%s.%s=%s: %v", a.Name, name, value, err)
		}
		defer func() { _ = f.Value.Set(old) }()
	}

	fixdir := filepath.Join(dir, "src", pkg)
	files, err := parseDir(fixdir)
	if err != nil {
		t.Fatal(err)
	}
	tpkg, info, err := typecheck(pkg, files)
	if err != nil {
		t.Fatal(err)
	}

	var diags []analysis.Diagnostic
	if err := runWithRequires(a, files, tpkg, info, &diags, map[*analysis.Analyzer]interface{}{}); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, files, diags)
}

func parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("atest: reading fixture dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("atest: no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func typecheck(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: sharedImporter}
	tpkg, err := conf.Check(path, sharedFset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("atest: type-checking fixture %s: %w", path, err)
	}
	return tpkg, info, nil
}

// runWithRequires runs a's Requires closure depth-first, then a itself,
// threading results and appending a's diagnostics to diags.
func runWithRequires(a *analysis.Analyzer, files []*ast.File, pkg *types.Package, info *types.Info, diags *[]analysis.Diagnostic, results map[*analysis.Analyzer]interface{}) error {
	for _, req := range a.Requires {
		if _, done := results[req]; done {
			continue
		}
		if err := runWithRequires(req, files, pkg, info, nil, results); err != nil {
			return err
		}
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       sharedFset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   results,
		Report: func(d analysis.Diagnostic) {
			if diags != nil {
				*diags = append(*diags, d)
			}
		},
		ImportObjectFact:  func(obj types.Object, fact analysis.Fact) bool { return false },
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool { return false },
		ExportObjectFact:  func(obj types.Object, fact analysis.Fact) {},
		ExportPackageFact: func(fact analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
		ReadFile:          os.ReadFile,
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	results[a] = res
	return nil
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quoteRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// checkWants cross-matches diagnostics against // want comments.
func checkWants(t *testing.T, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := sharedFset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quoteRe.FindAllString(m[1], -1) {
					var pat string
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
						}
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		pos := sharedFset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", k, w.rx)
			}
		}
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"dmmkit/internal/core"
	"dmmkit/internal/search"
)

// EvoRow is one workload's comparison of the seeded genetic search against
// the exhaustive stride sample: best footprint reached and evaluations
// spent by each, plus the methodology's one-walk design as the reference
// point that needs no search at all.
type EvoRow struct {
	Workload        Workload
	SpaceSize       int   // valid vectors in the design space
	ExhaustiveBest  int64 // best footprint of the stride sample, bytes
	ExhaustiveEvals int   // vectors the stride sample evaluated
	GABest          int64 // best footprint the GA reached, bytes
	GAEvals         int   // vectors the GA evaluated (dedup included)
	DesignedBest    int64 // the methodology's design footprint, bytes
}

// GABestRatio returns GA best over exhaustive best (1.0 = matched, < 1 =
// the GA found a better point than the sample).
func (r EvoRow) GABestRatio() float64 {
	if r.ExhaustiveBest == 0 {
		return 0
	}
	return float64(r.GABest) / float64(r.ExhaustiveBest)
}

// EvalFraction returns the GA's evaluation count as a fraction of the
// exhaustive sample's.
func (r EvoRow) EvalFraction() float64 {
	if r.ExhaustiveEvals == 0 {
		return 0
	}
	return float64(r.GAEvals) / float64(r.ExhaustiveEvals)
}

// EvoResult is the measured fig-evo experiment.
type EvoResult struct {
	Cfg  Config
	Seed int64
	Rows []EvoRow
}

// evoBudgets returns the per-strategy budgets: the exhaustive sample size
// and the GA configuration. The GA budget is deliberately a quarter of the
// exhaustive one — the experiment's claim is that guided search reaches
// the sample's best footprint from a fraction of the evaluations, echoing
// the evolutionary follow-up work to the paper.
func evoBudgets(quick bool) (exhaustive int, cfg search.GAConfig) {
	if quick {
		return 256, search.GAConfig{Population: 14, Generations: 20, Patience: 6, MaxEvaluations: 64}
	}
	return 512, search.GAConfig{Population: 20, Generations: 24, Patience: 8, MaxEvaluations: 128}
}

// RunEvo measures, for each case study, the best footprint found by the
// exhaustive stride sample versus the seeded genetic search, with the
// GA's evaluation budget capped at a quarter of the exhaustive one.
// Candidate evaluation fans out over cfg.Parallelism workers through the
// engine; identical seed and config give identical results at every
// parallelism level.
func RunEvo(ctx context.Context, cfg Config, seed int64) (*EvoResult, error) {
	cfg.defaults()
	res := &EvoResult{Cfg: cfg, Seed: seed}
	for _, w := range Workloads {
		row, err := evoRow(ctx, cfg, seed, w)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// evoRow measures one workload's GA-vs-exhaustive comparison.
func evoRow(ctx context.Context, cfg Config, seed int64, w Workload) (EvoRow, error) {
	exhaustiveMax, gaCfg := evoBudgets(cfg.Quick)
	engine := core.NewEngine(cfg.Parallelism)
	tr, err := BuildWorkloadTrace(w, seed, cfg.Quick)
	if err != nil {
		return EvoRow{}, err
	}
	row := EvoRow{Workload: w, SpaceSize: core.SpaceSize()}

	exh, err := engine.Explore(ctx, tr, core.ExploreOpts{
		MaxCandidates:   exhaustiveMax,
		IncludeDesigned: true,
		Parallelism:     cfg.Parallelism,
	})
	if err != nil {
		return EvoRow{}, fmt.Errorf("evo %s exhaustive: %w", w, err)
	}
	for _, c := range exh {
		if c.Designed {
			row.DesignedBest = c.MaxFootprint
		} else {
			row.ExhaustiveEvals++
		}
	}
	if best, ok := core.BestByFootprint(exh); ok {
		row.ExhaustiveBest = best.MaxFootprint
	}

	ga, err := engine.Explore(ctx, tr, core.ExploreOpts{
		Strategy:    search.NewGA(seed, gaCfg),
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return EvoRow{}, fmt.Errorf("evo %s ga: %w", w, err)
	}
	row.GAEvals = len(ga)
	if best, ok := core.BestByFootprint(ga); ok {
		row.GABest = best.MaxFootprint
	}
	return row, nil
}

// WriteEvo renders the fig-evo comparison table.
func WriteEvo(w io.Writer, r *EvoResult) error {
	fmt.Fprintf(w, "evolutionary vs exhaustive design-space search (seed %d):\n\n", r.Seed)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\texhaustive best (B)\tevals\tGA best (B)\tevals\tGA/exh best\tGA/exh evals\tdesigned (B)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.3f\t%.0f%%\t%d\n",
			row.Workload, row.ExhaustiveBest, row.ExhaustiveEvals,
			row.GABest, row.GAEvals,
			row.GABestRatio(), 100*row.EvalFraction(), row.DesignedBest)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(the GA's evaluation budget is capped at ~25%% of the exhaustive sample;\n")
	fmt.Fprintf(w, " GA/exh best <= 1.05 means the guided search reached the sample's footprint)\n")
	return nil
}

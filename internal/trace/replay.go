package trace

import (
	"fmt"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// Point is one sample of the footprint evolution during replay — the data
// behind Figure 5 of the paper.
type Point struct {
	Index     int   // event index
	Tick      int64 // application time
	Footprint int64 // bytes requested from the system
	Live      int64 // bytes requested by the application
}

// Result summarizes a replay run.
type Result struct {
	Manager      string
	TraceName    string
	Events       int
	MaxFootprint int64 // peak system memory: the paper's metric
	MaxLive      int64 // peak requested bytes (lower bound)
	Final        int64 // footprint after the last event
	Work         mm.Work
	Stats        mm.Stats
	Series       []Point // populated when RunOpts.SampleEvery > 0
}

// Overhead returns MaxFootprint relative to the workload's peak live bytes
// (1.0 = perfect).
func (r Result) Overhead() float64 {
	if r.MaxLive == 0 {
		return 0
	}
	return float64(r.MaxFootprint) / float64(r.MaxLive)
}

// RunOpts configures a replay.
type RunOpts struct {
	// SampleEvery records a Series point every N events (0 = no series).
	SampleEvery int
}

// Run replays a trace against a manager, returning footprint statistics.
// The manager is used as-is (callers Reset or construct fresh managers for
// independent runs).
func Run(m mm.Manager, t *Trace, opts RunOpts) (Result, error) {
	addrs := make(map[int64]heap.Addr, 256)
	res := Result{Manager: m.Name(), TraceName: t.Name, Events: len(t.Events)}
	for i, e := range t.Events {
		switch e.Kind {
		case KindAlloc:
			p, err := m.Alloc(mm.Request{Size: e.Size, Tag: int(e.Tag), Phase: int(e.Phase)})
			if err != nil {
				return res, fmt.Errorf("replay %q on %s: event %d: alloc %d bytes: %w", t.Name, m.Name(), i, e.Size, err)
			}
			addrs[e.ID] = p
		case KindFree:
			p, ok := addrs[e.ID]
			if !ok {
				return res, fmt.Errorf("replay %q on %s: event %d: free of unknown id %d", t.Name, m.Name(), i, e.ID)
			}
			delete(addrs, e.ID)
			if err := m.Free(p); err != nil {
				return res, fmt.Errorf("replay %q on %s: event %d: free id %d: %w", t.Name, m.Name(), i, e.ID, err)
			}
		default:
			return res, fmt.Errorf("replay %q: event %d: bad kind %d", t.Name, i, e.Kind)
		}
		if opts.SampleEvery > 0 && i%opts.SampleEvery == 0 {
			res.Series = append(res.Series, Point{
				Index: i, Tick: e.Tick, Footprint: m.Footprint(), Live: m.Stats().LiveBytes,
			})
		}
	}
	res.MaxFootprint = m.MaxFootprint()
	res.Final = m.Footprint()
	res.Stats = m.Stats()
	res.MaxLive = res.Stats.MaxLive
	res.Work = res.Stats.Work
	return res, nil
}

package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// encoders maps the format under test to its whole-trace encode call.
var encoders = map[string]func(*Trace, *bytes.Buffer) error{
	"DMMT1": func(t *Trace, buf *bytes.Buffer) error { return t.EncodeBinary(buf) },
	"DMMT2": func(t *Trace, buf *bytes.Buffer) error { return t.EncodeBinary2(buf) },
}

func TestBinary2RoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.EncodeBinary2(&buf); err != nil {
		t.Fatalf("EncodeBinary2: %v", err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("DMMT2 round trip mismatch:\nin:  %+v\nout: %+v", tr.Events[:3], got.Events[:3])
	}
}

// signedTrace exercises the signed-field corners: negative tags and
// phases, and ticks that jump backwards (non-monotonic), which DMMT1 can
// only represent through two's-complement wraparound.
func signedTrace(seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "signed"}
	var tick int64
	var live []int64
	var next int64
	for i := 0; i < 500; i++ {
		tick += rng.Int63n(7) - 3 // backward jumps included
		tag := int32(rng.Intn(9) - 4)
		phase := int32(rng.Intn(5) - 2)
		if len(live) == 0 || rng.Intn(2) == 0 {
			tr.Events = append(tr.Events, Event{
				Kind: KindAlloc, ID: next, Size: rng.Int63n(4096) + 1,
				Tag: tag, Phase: phase, Tick: tick,
			})
			live = append(live, next)
			next++
		} else {
			j := rng.Intn(len(live))
			tr.Events = append(tr.Events, Event{Kind: KindFree, ID: live[j], Phase: phase, Tick: tick})
			live = append(live[:j], live[j+1:]...)
		}
	}
	return tr
}

func TestRoundTripSignedFields(t *testing.T) {
	for name, encode := range encoders {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				tr := signedTrace(seed)
				var buf bytes.Buffer
				if err := encode(tr, &buf); err != nil {
					t.Fatalf("seed %d: encode: %v", seed, err)
				}
				got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("seed %d: decode: %v", seed, err)
				}
				if !reflect.DeepEqual(tr, got) {
					t.Fatalf("seed %d: round trip mismatch", seed)
				}
			}
		})
	}
}

// TestSignedFieldsCheaperInDMMT2 pins the format's reason to exist: the
// same signed-heavy trace costs materially fewer bytes zigzag-encoded
// than sign-extended to ten-byte uvarints.
func TestSignedFieldsCheaperInDMMT2(t *testing.T) {
	tr := signedTrace(1)
	var v1, v2 bytes.Buffer
	if err := tr.EncodeBinary(&v1); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeBinary2(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Errorf("DMMT2 = %d bytes, DMMT1 = %d: zigzag encoding should shrink signed-heavy traces", v2.Len(), v1.Len())
	}
	// Roughly: DMMT1 spends 10 bytes per negative varint, DMMT2 one or
	// two; a half-negative trace should compress well below 60%.
	if ratio := float64(v2.Len()) / float64(v1.Len()); ratio > 0.6 {
		t.Errorf("DMMT2/DMMT1 size ratio %.2f, want <= 0.6", ratio)
	}
}

// TestDMMT1ToDMMT2Compat migrates a legacy file to the new format and
// back, checking every representation agrees — the upgrade path for
// traces captured before DMMT2.
func TestDMMT1ToDMMT2Compat(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), signedTrace(3)} {
		var v1 bytes.Buffer
		if err := tr.EncodeBinary(&v1); err != nil {
			t.Fatal(err)
		}
		fromV1, err := DecodeBinary(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatalf("decoding DMMT1: %v", err)
		}
		var v2 bytes.Buffer
		if err := fromV1.EncodeBinary2(&v2); err != nil {
			t.Fatalf("re-encoding as DMMT2: %v", err)
		}
		fromV2, err := DecodeBinary(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("decoding migrated DMMT2: %v", err)
		}
		if !reflect.DeepEqual(tr, fromV1) || !reflect.DeepEqual(fromV1, fromV2) {
			t.Errorf("trace %q: DMMT1 -> DMMT2 migration changed the events", tr.Name)
		}
	}
}

// header writes a format header for hand-crafted decode inputs.
func header(t *testing.T, magic, name string, extra ...uint64) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(magic)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(uint64(len(name)))
	buf.WriteString(name)
	for _, v := range extra {
		put(v)
	}
	return &buf
}

func TestDecodeRejectsOverflow(t *testing.T) {
	put := func(buf *bytes.Buffer, v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	cases := []struct {
		name string
		buf  func() *bytes.Buffer
		want string
	}{
		{"v1 id overflow", func() *bytes.Buffer {
			b := header(t, binaryMagic1, "x", 1)
			b.WriteByte(byte(KindFree))
			put(b, 1<<63) // wraps to a negative ID if accepted
			return b
		}, "overflows int64"},
		{"v1 size overflow", func() *bytes.Buffer {
			b := header(t, binaryMagic1, "x", 1)
			b.WriteByte(byte(KindAlloc))
			put(b, 0)
			put(b, 1<<63)
			return b
		}, "overflows int64"},
		{"v1 size zero", func() *bytes.Buffer {
			b := header(t, binaryMagic1, "x", 1)
			b.WriteByte(byte(KindAlloc))
			put(b, 0)
			put(b, 0)
			return b
		}, "alloc size 0"},
		{"v1 tag truncation", func() *bytes.Buffer {
			b := header(t, binaryMagic1, "x", 1)
			b.WriteByte(byte(KindAlloc))
			put(b, 0)
			put(b, 8)
			put(b, 1<<40) // neither int32 range nor a sign extension
			return b
		}, "overflows int32"},
		{"v2 id overflow", func() *bytes.Buffer {
			b := header(t, binaryMagic2, "x")
			b.WriteByte(byte(KindFree))
			put(b, 1<<63)
			return b
		}, "overflows int64"},
		{"v2 size zero", func() *bytes.Buffer {
			b := header(t, binaryMagic2, "x")
			b.WriteByte(byte(KindAlloc))
			put(b, 0)
			put(b, 0)
			return b
		}, "alloc size 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBinary(tc.buf())
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("DecodeBinary = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestBinary2RejectsTruncation(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.EncodeBinary2(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix long enough to pass the header must fail: the
	// end marker (or its trailer count) is missing or the count is short.
	for _, cut := range []int{1, 2, 5, len(full) / 2} {
		if _, err := DecodeBinary(bytes.NewReader(full[:len(full)-cut])); err == nil {
			t.Errorf("truncated by %d bytes: decoded without error", cut)
		}
	}
	// A lying trailer count must fail too. The stream ends with the
	// single-byte count followed by the 4-byte checksum; the count check
	// runs first, so the forgery surfaces as a count mismatch even though
	// the checksum no longer matches either.
	forged := append([]byte(nil), full[:len(full)-crcLen-1]...)
	forged = append(forged, 99) // trailer says 99 events
	forged = append(forged, full[len(full)-crcLen:]...)
	if _, err := DecodeBinary(bytes.NewReader(forged)); err == nil ||
		!strings.Contains(err.Error(), "trailer count") {
		t.Errorf("forged trailer count: err = %v, want trailer count mismatch", err)
	}
}

func TestBinary2ChecksumDetectsCorruption(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.EncodeBinary2(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Flipping any single bit of the stream must fail decoding — either a
	// structural check fires or the checksum does; never a silent success
	// with different events.
	for off := 0; off < len(full); off++ {
		for bit := 0; bit < 8; bit++ {
			corrupt := append([]byte(nil), full...)
			corrupt[off] ^= 1 << bit
			got, err := DecodeBinary(bytes.NewReader(corrupt))
			if err == nil && tracesEqual(tr, got) {
				continue // the flip landed somewhere harmless? it cannot:
			}
			if err == nil {
				t.Fatalf("bit %d of byte %d flipped: decoded different events without error", bit, off)
			}
		}
	}

	// A legacy stream — the same bytes minus the checksum trailer — still
	// decodes: releases without the CRC wrote exactly this.
	legacy := full[:len(full)-crcLen]
	got, err := DecodeBinary(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy stream without checksum: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Fatal("legacy stream decoded different events")
	}
}

func tracesEqual(a, b *Trace) bool {
	if a.Name != b.Name || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}

func TestEncoderMisuse(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.WriteEvent(Event{Kind: KindAlloc, Size: 1}); err == nil {
		t.Error("WriteEvent before Begin succeeded")
	}
	if err := enc.Begin("x"); err != nil {
		t.Fatal(err)
	}
	if err := enc.Begin("x"); err == nil {
		t.Error("second Begin succeeded")
	}
	if err := enc.WriteEvent(Event{Kind: KindAlloc, ID: -1, Size: 1}); err == nil {
		t.Error("negative ID encoded")
	}
	if err := enc.WriteEvent(Event{Kind: KindAlloc, ID: 0, Size: 0}); err == nil {
		t.Error("zero-size alloc encoded")
	}
	if err := enc.WriteEvent(Event{Kind: 7, ID: 0}); err == nil {
		t.Error("bad kind encoded")
	}
	if err := enc.WriteEvent(Event{Kind: KindAlloc, ID: 0, Size: 8}); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := enc.WriteEvent(Event{Kind: KindFree, ID: 0}); err == nil {
		t.Error("WriteEvent after Close succeeded")
	}
	got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decoding encoder output: %v", err)
	}
	if len(got.Events) != 1 || enc.Count() != 1 {
		t.Errorf("decoded %d events, Count() = %d, want 1 and 1", len(got.Events), enc.Count())
	}
}

// TestDecodeBinaryCapsPrealloc guards against a forged DMMT1 header
// reserving gigabytes: a huge (but in-range) count with no events must
// fail on EOF without a giant allocation.
func TestDecodeBinaryCapsPrealloc(t *testing.T) {
	b := header(t, binaryMagic1, "bomb", maxEventCount)
	if _, err := DecodeBinary(b); err == nil {
		t.Error("empty body with forged count decoded")
	}
}

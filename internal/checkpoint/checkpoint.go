// Package checkpoint persists the state of an interrupted design-space
// exploration so it can resume bit-identically: the search strategy's
// snapshot (search.Snapshotter), the candidates already evaluated, and
// the identity of the trace being explored — enough to refuse a resume
// against the wrong input.
//
// The on-disk format is deliberately paranoid about partial writes and
// corruption, because checkpoints exist precisely for machines that die
// mid-write: a versioned magic, a length-prefixed JSON payload, and a
// trailing CRC-32C over everything before it. Save writes atomically
// (temp file + rename in the target directory), so the checkpoint path
// always holds either the previous complete checkpoint or the new one,
// never a torn hybrid. Decode never panics, whatever bytes it is fed —
// FuzzDecodeCheckpoint holds it to that.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"dmmkit/internal/core"
	"dmmkit/internal/dspace"
)

const (
	// magic identifies (and versions) a checkpoint file.
	magic = "DMMC1\n"
	// maxPayload bounds the length prefix against forged input: no real
	// exploration state comes anywhere near 256 MiB.
	maxPayload = 1 << 28
	crcLen     = 4
)

// castagnoli matches the polynomial the trace layer uses; one choice
// across the module.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNotCheckpoint reports that the file is not a checkpoint at all
// (wrong magic) — as opposed to a corrupt or truncated one.
var ErrNotCheckpoint = errors.New("checkpoint: not a checkpoint file")

// TraceIdentity pins the input a checkpoint belongs to. Resuming
// against a different trace would silently produce nonsense, so Load
// callers compare identities before continuing.
type TraceIdentity struct {
	// Kind is "file" for on-disk traces or "workload" for generated ones.
	Kind string `json:"kind"`
	// Path and SHA256 identify a file trace: the path as given (for
	// error messages) and the hex SHA-256 of its content (the actual
	// identity — a renamed file still matches, an edited one does not).
	Path   string `json:"path,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
	// Workload, Seed and Quick identify a generated trace: the
	// registry's generators are deterministic in these three.
	Workload string `json:"workload,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Quick    bool   `json:"quick,omitempty"`
}

// Equal reports whether two identities pin the same input. For file
// traces only the content hash matters.
func (id TraceIdentity) Equal(other TraceIdentity) bool {
	if id.Kind != other.Kind {
		return false
	}
	if id.Kind == "file" {
		return id.SHA256 == other.SHA256
	}
	return id.Workload == other.Workload && id.Seed == other.Seed && id.Quick == other.Quick
}

// String renders the identity for error messages.
func (id TraceIdentity) String() string {
	if id.Kind == "file" {
		return fmt.Sprintf("file %s (sha256 %.12s…)", id.Path, id.SHA256)
	}
	return fmt.Sprintf("workload %s seed %d quick=%v", id.Workload, id.Seed, id.Quick)
}

// FileIdentity hashes a trace file into its identity.
func FileIdentity(path string) (TraceIdentity, error) {
	f, err := os.Open(path)
	if err != nil {
		return TraceIdentity{}, err
	}
	defer func() { _ = f.Close() }() // read path: the hash saw every byte or Copy errored
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return TraceIdentity{}, fmt.Errorf("checkpoint: hashing %s: %w", path, err)
	}
	return TraceIdentity{Kind: "file", Path: path, SHA256: hex.EncodeToString(h.Sum(nil))}, nil
}

// WorkloadIdentity is the identity of a generated trace.
func WorkloadIdentity(name string, seed int64, quick bool) TraceIdentity {
	return TraceIdentity{Kind: "workload", Workload: name, Seed: seed, Quick: quick}
}

// Meta records the exploration configuration a checkpoint belongs to.
// Resume refuses mismatches: restoring a GA snapshot into a differently
// configured GA would continue a different search.
type Meta struct {
	Strategy       string        `json:"strategy"`
	Seed           int64         `json:"seed"`
	Population     int           `json:"population,omitempty"`
	Generations    int           `json:"generations,omitempty"`
	MaxEvaluations int           `json:"max_evaluations,omitempty"`
	Objectives     string        `json:"objectives,omitempty"`
	Trace          TraceIdentity `json:"trace"`
}

// Candidate is the wire form of an evaluated candidate: the decision
// vector plus its measurements. Params are not stored — they re-derive
// deterministically from the trace profile on resume — and errors
// survive as messages.
type Candidate struct {
	Vector       []uint8 `json:"v"`
	MaxFootprint int64   `json:"f"`
	Work         int64   `json:"w"`
	Designed     bool    `json:"d,omitempty"`
	Err          string  `json:"e,omitempty"`
}

// State is everything a resumed exploration needs.
type State struct {
	Meta Meta `json:"meta"`
	// GenerationsDone counts the completed generations — how often the
	// run checkpointed, for logging.
	GenerationsDone int `json:"generations_done"`
	// Strategy is the search.Snapshotter snapshot.
	Strategy json.RawMessage `json:"strategy"`
	// Candidates are the evaluated candidates, in stream order.
	Candidates []Candidate `json:"candidates"`
}

// FromCandidates projects evaluated candidates onto the wire form.
func FromCandidates(cands []core.Candidate) []Candidate {
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		w := Candidate{
			Vector:       make([]uint8, dspace.NumTrees),
			MaxFootprint: c.MaxFootprint,
			Work:         c.Work,
			Designed:     c.Designed,
		}
		for t := 0; t < dspace.NumTrees; t++ {
			w.Vector[t] = uint8(c.Vector.Get(dspace.Tree(t)))
		}
		if c.Err != nil {
			w.Err = c.Err.Error()
		}
		out[i] = w
	}
	return out
}

// Prior converts the stored candidates back into the engine's Prior
// slice, validating every vector (a forged checkpoint must not smuggle
// an invalid genome into the engine).
func (s *State) Prior() ([]core.Candidate, error) {
	out := make([]core.Candidate, len(s.Candidates))
	for i, w := range s.Candidates {
		if len(w.Vector) != dspace.NumTrees {
			return nil, fmt.Errorf("checkpoint: candidate %d: vector has %d trees, want %d", i, len(w.Vector), dspace.NumTrees)
		}
		var v dspace.Vector
		for t := 0; t < dspace.NumTrees; t++ {
			if int(w.Vector[t]) >= dspace.LeafCount(dspace.Tree(t)) {
				return nil, fmt.Errorf("checkpoint: candidate %d: tree %v has no leaf %d", i, dspace.Tree(t), w.Vector[t])
			}
			v.Set(dspace.Tree(t), dspace.Leaf(w.Vector[t]))
		}
		c := core.Candidate{
			Vector:       v,
			MaxFootprint: w.MaxFootprint,
			Work:         w.Work,
			Designed:     w.Designed,
		}
		if w.Err != "" {
			c.Err = errors.New(w.Err)
		}
		out[i] = c
	}
	return out, nil
}

// Encode serializes a checkpoint: magic, uvarint payload length, JSON
// payload, CRC-32C over all preceding bytes.
func Encode(s *State) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding state: %w", err)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	out := make([]byte, 0, len(magic)+n+len(payload)+crcLen)
	out = append(out, magic...)
	out = append(out, lenBuf[:n]...)
	out = append(out, payload...)
	sum := crc32.Checksum(out, castagnoli)
	var crcBuf [crcLen]byte
	binary.LittleEndian.PutUint32(crcBuf[:], sum)
	return append(out, crcBuf[:]...), nil
}

// Decode parses checkpoint bytes, rejecting — never panicking on —
// truncation, corruption, forged lengths and malformed payloads.
func Decode(data []byte) (*State, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, ErrNotCheckpoint
	}
	rest := data[len(magic):]
	payloadLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("checkpoint: truncated length prefix")
	}
	if payloadLen > maxPayload {
		return nil, fmt.Errorf("checkpoint: payload length %d exceeds limit", payloadLen)
	}
	rest = rest[n:]
	if uint64(len(rest)) < payloadLen+crcLen {
		return nil, fmt.Errorf("checkpoint: truncated: payload says %d bytes, %d remain", payloadLen, len(rest))
	}
	payload := rest[:payloadLen]
	trailer := rest[payloadLen : payloadLen+crcLen]
	hashed := data[:len(magic)+n+int(payloadLen)]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.Checksum(hashed, castagnoli); got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch: trailer %08x, content %08x (corrupt checkpoint)", got, want)
	}
	var s State
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding payload: %w", err)
	}
	return &s, nil
}

// Save writes the checkpoint atomically: encode, write to a temp file
// in the target directory, sync, rename. A crash at any point leaves
// path holding either the previous checkpoint or the new one.
func Save(path string, s *State) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		_ = tmp.Close() // error path: the temp file is removed next anyway
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: installing %s: %w", path, err)
	}
	return nil
}

// Load reads and decodes a checkpoint file.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

package core

import (
	"fmt"
	"strings"

	"dmmkit/internal/block"
	"dmmkit/internal/heap"
)

// FragReport quantifies the two memory-waste factors of the paper's
// Sec. 4.1 for a tagged custom manager at a point in time:
//
//   - organization overhead: header/footer bytes of live blocks (factor
//     1a) — the cost of the A3/A4 decisions;
//   - internal fragmentation: rounding waste inside live blocks;
//   - external fragmentation: free memory that exists but is scattered —
//     reported via the free-block population and the largest free block
//     (a request above it fails even though the total free would cover
//     it, the paper's definition of external fragmentation).
type FragReport struct {
	HeapBytes     int64 // bytes currently requested from the system
	LiveBlocks    int64
	LivePayload   int64 // requested bytes (application view)
	LiveGross     int64 // live bytes including overhead and rounding
	Overhead      int64 // header/footer bytes of live blocks
	FreeBlocks    int64
	FreeBytes     int64   // total free bytes inside the heap
	LargestFree   int64   // largest single free block
	ExternalIndex float64 // 1 - largest/total free, in [0,1); 0 when compact
}

// Fragmentation walks the heap of a tagged manager and reports its
// current fragmentation state. Untagged managers (no in-band sizes)
// return a report with only the heap and live counters filled.
func (m *Custom) Fragmentation() FragReport {
	r := FragReport{HeapBytes: m.h.Footprint()}
	s := m.Stats()
	r.LiveBlocks = s.LiveBlocks
	r.LivePayload = s.LiveBytes
	r.LiveGross = s.GrossLive
	if !m.tagged || m.heapStart == heap.Nil || m.heapStart >= m.h.Brk() {
		return r
	}
	overheadPer := m.lay.Overhead()
	_ = m.v.Walk(m.heapStart, m.h.Brk(), func(bi block.BlockInfo) error {
		if bi.Used {
			r.Overhead += overheadPer
			return nil
		}
		r.FreeBlocks++
		r.FreeBytes += bi.Size
		if bi.Size > r.LargestFree {
			r.LargestFree = bi.Size
		}
		return nil
	})
	if r.FreeBytes > 0 {
		r.ExternalIndex = 1 - float64(r.LargestFree)/float64(r.FreeBytes)
	}
	return r
}

// String renders the report for diagnostics.
func (r FragReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "heap %d B: %d live blocks (%d B payload, %d B gross, %d B overhead); ",
		r.HeapBytes, r.LiveBlocks, r.LivePayload, r.LiveGross, r.Overhead)
	fmt.Fprintf(&b, "%d free blocks (%d B, largest %d, external index %.2f)",
		r.FreeBlocks, r.FreeBytes, r.LargestFree, r.ExternalIndex)
	return b.String()
}

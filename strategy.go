package dmmkit

import "dmmkit/internal/search"

// Search-strategy types. A strategy decides which design-space vectors the
// engine evaluates next, one generation at a time; the engine evaluates
// each generation in parallel and feeds the measured results back before
// the next generation is proposed, so adaptive strategies stay
// deterministic at every parallelism level.
type (
	// SearchStrategy proposes generations of vectors (Next) and learns
	// from their evaluations (Observe). Set it on ExploreOpts.Strategy;
	// strategies carry state, so use a fresh value per exploration.
	SearchStrategy = search.Strategy
	// SearchResult is the evaluated fitness fed back to a strategy.
	SearchResult = search.Result
	// GASearchConfig tunes the genetic search (population, generations,
	// elitism, tournament size, crossover/mutation rates, patience,
	// pinned subspace). The zero value selects the documented defaults.
	GASearchConfig = search.GAConfig
	// FixedLeaves pins decision trees to specific leaves, restricting a
	// strategy to a subspace.
	FixedLeaves = search.Fixed
	// SearchSnapshotter is the optional strategy extension behind
	// checkpoint/resume: Snapshot serializes the strategy's complete
	// state between generations, Restore rebuilds it so the resumed
	// search continues byte-identically. All built-in strategies
	// implement it; see EXTENDING.md for the contract custom strategies
	// must meet.
	SearchSnapshotter = search.Snapshotter
)

// NewGASearch returns a deterministic seeded genetic search strategy:
// tournament selection, per-tree crossover and mutation repaired against
// the design-space constraints, elitism, deduplication of already
// evaluated vectors, and a convergence stop after cfg.Patience stale
// generations.
//
// Reproducibility contract: identical seed and config produce the
// identical candidate stream — and the identical best vector — at every
// ExploreOpts.Parallelism, because the engine only advances the strategy
// between generation barriers.
func NewGASearch(seed int64, cfg GASearchConfig) SearchStrategy { return search.NewGA(seed, cfg) }

// NewNSGASearch returns a deterministic seeded NSGA-II-style
// multi-objective search strategy: the GA's tournament selection,
// constraint-repaired crossover and mutation, but with scalar fitness
// replaced by Pareto rank over (footprint, work) — parents win
// tournaments by non-domination rank then crowding distance, and
// survivor selection keeps the best Population individuals of the
// combined parent+offspring pool, making elitism implicit
// (GASearchConfig.Elite is ignored). The search converges once
// cfg.Patience consecutive generations leave its archive Pareto front
// unchanged.
//
// Use it with ExploreOpts.Objectives listing footprint and work; the
// final front is ParetoFront of the returned candidates. The
// reproducibility contract is the same as NewGASearch: identical seed
// and config produce the identical candidate stream — and the identical
// front — at every ExploreOpts.Parallelism.
func NewNSGASearch(seed int64, cfg GASearchConfig) SearchStrategy { return search.NewNSGA(seed, cfg) }

// NewExhaustiveSearch returns the non-adaptive baseline strategy: a
// single generation holding a uniform ceiling-stride sample of at most
// max valid vectors in enumeration order (max <= 0 selects 128). It is
// what Explore uses when ExploreOpts.Strategy is nil — and, combined
// with ExploreOpts.Objectives listing footprint and work, the
// Pareto-aware exhaustive mode: the engine accumulates the front over
// the full sample.
func NewExhaustiveSearch(max int) SearchStrategy { return search.NewExhaustive(max) }

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// DecodeBinarySource returns a Source that decodes a binary trace (DMMT1
// or DMMT2) from r event by event. The header is read eagerly — a file
// that is not a binary trace fails here, not on the first Next — and
// decoding then keeps O(1) memory beyond the read buffer, so replaying
// straight off the source needs memory proportional to the application's
// live set, not the trace length.
//
// The source validates events as it decodes them: ID and Size uvarints
// above MaxInt64 (which would wrap to negative fields), zero allocation
// sizes, and out-of-range Tag/Phase values are decode errors. It cannot
// check cross-event properties (double frees surface as replay errors);
// callers that need a full Trace.Validate must materialize via
// DecodeBinary.
func DecodeBinarySource(r io.Reader) (Source, error) {
	bufr, ok := r.(*bufio.Reader)
	if !ok {
		bufr = bufio.NewReader(r)
	}
	br := &crcReader{br: bufr}
	magic := make([]byte, magicLen)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	version := 0
	switch string(magic) {
	case binaryMagic1:
		version = 1
	case binaryMagic2:
		version = 2
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d too large", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if version == 1 {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event count: %w", err)
		}
		if count > maxEventCount {
			return nil, fmt.Errorf("trace: event count %d too large", count)
		}
		return &binarySource1{binarySource: binarySource{br: br, name: string(name)}, count: count}, nil
	}
	return &binarySource2{binarySource: binarySource{br: br, name: string(name)}}, nil
}

// crcReader folds every byte it yields into a running CRC-32C, so the
// DMMT2 decoder can verify the stream's trailing checksum without a
// second pass. It implements io.Reader and io.ByteReader over the
// buffered stream; the checksum trailer itself is read from the
// underlying br directly, bypassing the accumulation.
type crcReader struct {
	br  *bufio.Reader
	crc uint32
	one [1]byte
}

func (r *crcReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return b, err
	}
	r.one[0] = b
	r.crc = crc32.Update(r.crc, castagnoli, r.one[:1])
	return b, nil
}

func (r *crcReader) Read(p []byte) (int, error) {
	n, err := r.br.Read(p)
	r.crc = crc32.Update(r.crc, castagnoli, p[:n])
	return n, err
}

// binarySource holds the state the two format versions share.
type binarySource struct {
	br   *crcReader
	name string
	i    uint64 // events decoded so far
	last int64  // previous event's tick
	done bool
	err  error     // latched: a corrupt stream stays corrupt
	c    io.Closer // closed when the stream ends (see OpenFile)
}

func (s *binarySource) Name() string { return s.name }

// finish latches the terminal state and releases the underlying closer.
func (s *binarySource) finish(err error) (Event, bool, error) {
	s.done = true
	if err != nil {
		s.err = err
	}
	if s.c != nil {
		c := s.c
		s.c = nil
		if cerr := c.Close(); cerr != nil && s.err == nil {
			s.err = cerr
		}
	}
	return Event{}, false, s.err
}

// Close releases the source's file handle, if it has one; abandoning a
// partially consumed source without Close leaks the handle. Idempotent.
func (s *binarySource) Close() error {
	s.done = true
	if s.c != nil {
		c := s.c
		s.c = nil
		return c.Close()
	}
	return nil
}

// binarySource1 streams a DMMT1 body: the event count is known from the
// header (so it implements Sized) and every field is an unsigned varint.
// Negative Tag/Phase values arrive sign-extended to 64 bits; the decoder
// accepts exactly the values the encoder can produce — plain int32 range
// or full sign extension — and rejects anything that would silently
// truncate.
type binarySource1 struct {
	binarySource
	count uint64
}

func (s *binarySource1) EventCount() int { return int(s.count) }

func (s *binarySource1) Next() (Event, bool, error) {
	if s.done {
		return Event{}, false, s.err
	}
	if s.i >= s.count {
		return s.finish(nil)
	}
	kb, err := s.br.ReadByte()
	if err != nil {
		return s.finish(fmt.Errorf("trace: event %d: %w", s.i, err))
	}
	e := Event{Kind: Kind(kb)}
	if e.Kind != KindAlloc && e.Kind != KindFree {
		return s.finish(fmt.Errorf("trace: event %d: bad kind %d", s.i, kb))
	}
	id, err := binary.ReadUvarint(s.br)
	if err != nil {
		return s.finish(err)
	}
	if e.ID, err = checkID(s.i, id); err != nil {
		return s.finish(err)
	}
	if e.Kind == KindAlloc {
		size, err := binary.ReadUvarint(s.br)
		if err != nil {
			return s.finish(err)
		}
		if e.Size, err = checkSize(s.i, size); err != nil {
			return s.finish(err)
		}
		tag, err := binary.ReadUvarint(s.br)
		if err != nil {
			return s.finish(err)
		}
		if e.Tag, err = checkWrapped32(s.i, "tag", tag); err != nil {
			return s.finish(err)
		}
	}
	phase, err := binary.ReadUvarint(s.br)
	if err != nil {
		return s.finish(err)
	}
	if e.Phase, err = checkWrapped32(s.i, "phase", phase); err != nil {
		return s.finish(err)
	}
	dt, err := binary.ReadUvarint(s.br)
	if err != nil {
		return s.finish(err)
	}
	// Tick deltas wrap through two's complement in DMMT1, so a backward
	// tick (encoded as a huge uvarint) decodes back to a negative delta.
	e.Tick = s.last + int64(dt)
	s.last = e.Tick
	s.i++
	return e, true, nil
}

// checkWrapped32 decodes a DMMT1 int32 field: the encoder widened the
// value with sign extension, so valid encodings are exactly those where
// truncating back to int32 and re-extending reproduces the input.
func checkWrapped32(i uint64, field string, v uint64) (int32, error) {
	if uint64(int64(int32(v))) != v {
		return 0, fmt.Errorf("trace: event %d: %s %d overflows int32", i, field, v)
	}
	return int32(v), nil
}

// binarySource2 streams a DMMT2 body: no up-front count, zigzag varints
// for the signed fields, and a 0xFF end marker followed by the event
// count, which must match what was decoded (truncation check).
type binarySource2 struct {
	binarySource
}

func (s *binarySource2) Next() (Event, bool, error) {
	if s.done {
		return Event{}, false, s.err
	}
	kb, err := s.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("trace: event %d: truncated stream (missing end marker): %w", s.i, io.ErrUnexpectedEOF)
		}
		return s.finish(fmt.Errorf("trace: event %d: %w", s.i, err))
	}
	if kb == endMarker {
		count, err := binary.ReadUvarint(s.br)
		if err != nil {
			return s.finish(fmt.Errorf("trace: reading trailer count: %w", err))
		}
		if count != s.i {
			return s.finish(fmt.Errorf("trace: trailer count %d, decoded %d events (truncated or corrupt stream)", count, s.i))
		}
		// The optional CRC-32C trailer covers every byte before it. It is
		// read off the underlying reader so it does not hash itself;
		// streams from releases that predate the checksum end at the
		// count and are accepted as-is.
		want := s.br.crc
		var sum [crcLen]byte
		if n, err := io.ReadFull(s.br.br, sum[:]); err != nil {
			if err == io.EOF && n == 0 {
				return s.finish(nil) // legacy stream without a checksum
			}
			return s.finish(fmt.Errorf("trace: reading checksum: %w", err))
		}
		if got := binary.LittleEndian.Uint32(sum[:]); got != want {
			return s.finish(fmt.Errorf("trace: checksum mismatch: trailer %08x, stream %08x (corrupt trace)", got, want))
		}
		return s.finish(nil)
	}
	e := Event{Kind: Kind(kb)}
	if e.Kind != KindAlloc && e.Kind != KindFree {
		return s.finish(fmt.Errorf("trace: event %d: bad kind %d", s.i, kb))
	}
	id, err := binary.ReadUvarint(s.br)
	if err != nil {
		return s.finish(err)
	}
	if e.ID, err = checkID(s.i, id); err != nil {
		return s.finish(err)
	}
	if e.Kind == KindAlloc {
		size, err := binary.ReadUvarint(s.br)
		if err != nil {
			return s.finish(err)
		}
		if e.Size, err = checkSize(s.i, size); err != nil {
			return s.finish(err)
		}
		tag, err := binary.ReadVarint(s.br)
		if err != nil {
			return s.finish(err)
		}
		if e.Tag, err = checkInt32(s.i, "tag", tag); err != nil {
			return s.finish(err)
		}
	}
	phase, err := binary.ReadVarint(s.br)
	if err != nil {
		return s.finish(err)
	}
	if e.Phase, err = checkInt32(s.i, "phase", phase); err != nil {
		return s.finish(err)
	}
	dt, err := binary.ReadVarint(s.br)
	if err != nil {
		return s.finish(err)
	}
	e.Tick = s.last + dt
	s.last = e.Tick
	s.i++
	return e, true, nil
}

// checkInt32 range-checks a zigzag-decoded int32 field.
func checkInt32(i uint64, field string, v int64) (int32, error) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("trace: event %d: %s %d overflows int32", i, field, v)
	}
	return int32(v), nil
}

// File is an Opener over an on-disk binary trace: every Open starts an
// independent streaming pass, so exploration can replay the file once
// per candidate — concurrently — without ever materializing the events.
type File struct {
	path   string
	name   string
	events int // -1 when the format does not record a count (DMMT2)
	opts   FileOpts
}

// OpenFile probes path's header and returns a File. The file must be a
// binary trace (DMMT1 or DMMT2); JSON traces have no streaming decoder —
// load them fully instead. Transient open and probe failures (see
// IsTransient) are retried under DefaultRetry — a long exploration
// should not die to one interrupted syscall; use OpenFileWith to tune
// or disable that.
func OpenFile(path string) (*File, error) {
	return OpenFileWith(path, FileOpts{Retry: DefaultRetry})
}

// OpenFileWith is OpenFile with explicit seams: opts.Open replaces
// os.Open (for every pass, not just the probe) and opts.Retry bounds
// how transient failures are retried.
func OpenFileWith(path string, opts FileOpts) (*File, error) {
	f := &File{path: path, events: -1, opts: opts}
	err := opts.Retry.retry(func() error {
		fh, err := opts.open(path)
		if err != nil {
			return err
		}
		defer func() { _ = fh.Close() }() // header probe: read-only pass
		src, err := DecodeBinarySource(fh)
		if err != nil {
			return fmt.Errorf("trace: %s: %w", path, err)
		}
		f.name = src.Name()
		f.events = -1
		if s, ok := src.(Sized); ok {
			f.events = s.EventCount()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Name returns the trace name recorded in the file header.
func (f *File) Name() string { return f.name }

// Events returns the event count from the header, or -1 when the format
// does not record one up front (DMMT2 stores it in the trailer).
func (f *File) Events() int { return f.events }

// Open implements Opener: it opens a fresh handle on the file and
// returns a streaming source over it. The source closes the handle when
// the stream ends (exhaustion or decode error); abandon it early with
// Close. Open is safe for concurrent use. Transient open and header
// failures retry under the File's policy (see OpenFileWith); handles are
// never leaked on an error path.
func (f *File) Open() (Source, error) {
	var src Source
	err := f.opts.Retry.retry(func() error {
		fh, err := f.opts.open(f.path)
		if err != nil {
			return err
		}
		s, err := DecodeBinarySource(fh)
		if err != nil {
			_ = fh.Close() // the decode error is the one to surface
			return fmt.Errorf("trace: %s: %w", f.path, err)
		}
		switch bs := s.(type) {
		case *binarySource1:
			bs.c = fh
		case *binarySource2:
			bs.c = fh
		}
		src = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return src, nil
}

package recon3d

import (
	"testing"

	"dmmkit/internal/profile"
)

func TestTraceValidAndBalanced(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 1, Pairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Trace.LiveAtEnd() != 0 {
		t.Errorf("LiveAtEnd = %d, want 0", res.Trace.LiveAtEnd())
	}
	if res.Corners < 200 {
		t.Errorf("only %d corners; scenes too flat", res.Corners)
	}
	if res.Matches < 50 {
		t.Errorf("only %d matches", res.Matches)
	}
}

func TestPeakDominatedByFrames(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 2, Pairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two 640x480 frames = 614400 bytes must dominate the peak.
	if res.PeakBytes < 614400 {
		t.Errorf("peak %d below two frame buffers", res.PeakBytes)
	}
	if res.PeakBytes > 3<<20 {
		t.Errorf("peak %d unrealistically large", res.PeakBytes)
	}
}

func TestProfileShape(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 3, Pairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.FromTrace(res.Trace)
	if p.TagMax[TagFrame] != 640*480 {
		t.Errorf("frame tag max = %d, want %d", p.TagMax[TagFrame], 640*480)
	}
	if p.TagMax[TagCorner] != cornerBytes || p.TagMax[TagCandidate] != candidateBytes {
		t.Errorf("record tag maxima = %v", p.TagMax)
	}
	// Candidate churn should dominate allocation counts.
	var candCount int64
	for _, s := range p.Sizes {
		if s.Size == candidateBytes {
			candCount = s.Count
		}
	}
	if candCount < 1000 {
		t.Errorf("only %d candidate allocations; matching churn too small", candCount)
	}
}

func TestCornerCountsVaryAcrossPairs(t *testing.T) {
	a, err := BuildTrace(Config{Seed: 4, Pairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTrace(Config{Seed: 5, Pairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Corners == b.Corners {
		t.Error("corner populations identical across seeds; inputs must be unpredictable")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := BuildTrace(Config{Seed: 6, Pairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTrace(Config{Seed: 6, Pairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Events) != len(b.Trace.Events) {
		t.Fatal("event counts differ for same seed")
	}
}

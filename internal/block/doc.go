// Package block defines the in-band block layouts used by the dynamic
// memory managers: which tag fields (header/footer) a block carries and
// what they record (size, status, previous-block size), plus typed
// accessors over a simulated heap.
//
// The layout of a block is exactly what the paper's decision trees A3
// ("Block tags") and A4 ("Block recorded info") choose. Every byte of
// metadata a layout requires is physically reserved inside the arena, so
// the organization overhead the paper discusses (Sec. 4.1, factor 1a) is
// measured, not estimated.
//
// Block addresses refer to the first byte of the block (its header, when
// one exists). Payload addresses are what the application sees.
//
// Word layout (little endian, 32-bit fields):
//
//	header word 0: size (multiple of 8) | bit0 used | bit1 prevUsed
//	header word 1: prev block size (only with InfoPrevSize)
//	payload:       first 4 or 8 bytes reused as free-list links when free
//	footer word:   copy of size|used, at block end (only with TagsBoth)
package block

// Package apitagfix is the apitag fixture: wire structs whose exported
// fields must pin their JSON names, next to in-process structs the
// analyzer must leave alone.
package apitagfix

import (
	"encoding/json"
	"io"
	"time"
)

// Tagged wire struct with one drifting field: the untagged field's JSON
// key would silently track a Go rename.
type jobSnapshot struct {
	ID      string    `json:"id"`
	State   string    `json:"state"`
	Created time.Time // want `exported field Created of wire struct jobSnapshot has no json tag`
	Done    int       `json:"done"`
}

// Reachable through a wire struct's fields: result has no tags of its
// own but rides inside jobSnapshotList, so its exported fields are wire
// schema too.
type result struct {
	Best  string // want `exported field Best of wire struct result has no json tag`
	Count int    // want `exported field Count of wire struct result has no json tag`
}

type jobSnapshotList struct {
	Jobs    []jobSnapshot `json:"jobs"`
	Results []*result     `json:"results,omitempty"`
}

// Marshalled directly: seeds the wire set even without a single tag.
type metricsBody struct {
	Count int // want `exported field Count of wire struct metricsBody has no json tag`
}

func writeMetrics(w io.Writer, m metricsBody) error {
	return json.NewEncoder(w).Encode(m)
}

// Blessed: fully tagged, including the inline nested struct.
type createRequest struct {
	Kind  string `json:"kind"`
	Trace struct {
		ID   string `json:"id,omitempty"`
		Seed int64  `json:"seed,omitempty"`
	} `json:"trace"`
}

// Violation inside an inline nested struct of a tagged field.
type createResponse struct {
	ID    string `json:"id"`
	Stats struct {
		Events int `json:"events"`
		Bytes  int // want `exported field Bytes of wire struct createResponse\.Stats has no json tag`
	} `json:"stats"`
}

// Blessed: in-process config — no json tag anywhere, never marshalled,
// so it is not wire schema and stays untagged.
type managerConfig struct {
	Workers    int
	QueueDepth int
	Clock      func() time.Time
}

// Blessed: unexported fields never marshal; only exported fields need
// tags.
type eventBody struct {
	Seq  int `json:"seq"`
	next *eventBody
}

// Blessed: deliberate default name, frozen explicitly with a rationale.
type legacyBody struct {
	Seq int `json:"seq"`
	//dmmlint:allow apitag wire name Total predates the tagging rule and is frozen as-is
	Total int
}

// keep the otherwise-unused types alive for the type checker.
var (
	_ = jobSnapshotList{}
	_ = createRequest{}
	_ = createResponse{}
	_ = managerConfig{}
	_ = eventBody{}
	_ = legacyBody{}
)

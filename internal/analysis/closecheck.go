package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CloseCheck flags Close() calls whose error result is silently
// discarded — as a statement (`f.Close()`) or deferred bare
// (`defer f.Close()`). On write paths a failed Close is the write
// failure (buffered data, DMMT2 trailers and checkpoint trailers land
// in Close), so dropping it is the partial-output bug class PR 5/6
// fixed by hand in the CLIs. Read paths must opt out explicitly:
//
//	_ = f.Close()                         // statement form
//	defer func() { _ = f.Close() }()      // deferred form
//
// so the discard is visible in review instead of accidental.
var CloseCheck = &analysis.Analyzer{
	Name:     "closecheck",
	Doc:      "flag Close() calls whose error is silently discarded",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCloseCheck,
}

func runCloseCheck(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.ExprStmt)(nil), (*ast.DeferStmt)(nil), (*ast.GoStmt)(nil)}, func(n ast.Node) {
		var call *ast.CallExpr
		deferred := false
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, _ = st.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call, deferred = st.Call, true
		case *ast.GoStmt:
			call = st.Call
		}
		if call == nil || !isErrorClose(pass, call) {
			return
		}
		recv := "value"
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
				recv = types.TypeString(tv.Type, types.RelativeTo(pass.Pkg))
			}
		}
		if deferred {
			pass.Reportf(call.Pos(),
				"deferred Close() on %s discards its error; use `defer func() { _ = x.Close() }()` on read paths or join the error on write paths", recv)
			return
		}
		pass.Reportf(call.Pos(),
			"Close() error on %s is discarded; check it (a failed Close loses buffered writes) or discard explicitly with `_ =`", recv)
	})
	return nil, nil
}

// isErrorClose reports whether call invokes a method named Close with
// signature func() error.
func isErrorClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != "Close" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		sig.Results().At(0).Type().String() == "error"
}

package kingsley

import (
	"fmt"
	"math/bits"

	"dmmkit/internal/block"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

const (
	minGross = 16 // smallest block handed out (header + 12 payload bytes)
	maxClass = 26 // largest class: 64 MiB blocks
)

// chunkBytes is the granularity of requests to the system for small
// classes; classes larger than this are requested one block at a time.
const chunkBytes = 4096

var layout = block.Layout{Tags: block.TagsHeader, Info: block.InfoSize, Links: block.LinksSingle}

// Manager is a Kingsley power-of-two allocator over a simulated heap.
type Manager struct {
	mm.Accounting
	h    *heap.Heap
	v    block.View
	free [maxClass + 1]heap.Addr // free-list heads per class (log2 gross)
	// nonEmpty has bit c set iff free[c] != Nil — the segregated-fit
	// nonempty-bin bitmap (dlmalloc's binmap). Kingsley never scans
	// across classes, so the bitmap serves the empty-class branch and
	// diagnostics; it is out-of-band and does not change placement,
	// footprint, or work accounting.
	nonEmpty uint32
	live     mm.Shadow
}

// setFreeHead writes a class free-list head, keeping nonEmpty in sync.
func (m *Manager) setFreeHead(c int, b heap.Addr) {
	m.free[c] = b
	if b == heap.Nil {
		m.nonEmpty &^= 1 << c
	} else {
		m.nonEmpty |= 1 << c
	}
}

// New returns an empty Kingsley manager owning h.
func New(h *heap.Heap) *Manager {
	return &Manager{h: h, v: block.NewView(h, layout)}
}

// Name implements mm.Manager.
func (*Manager) Name() string { return "Kingsley" }

// classFor returns the class index (log2 of gross size) for a request.
func classFor(n int64) int {
	gross := n + layout.HeaderBytes()
	if gross < minGross {
		gross = minGross
	}
	return 64 - bits.LeadingZeros64(uint64(gross-1))
}

// Alloc implements mm.Manager.
func (m *Manager) Alloc(req mm.Request) (heap.Addr, error) {
	if req.Size <= 0 {
		m.NoteFail()
		return heap.Nil, mm.ErrBadSize
	}
	c := classFor(req.Size)
	if c > maxClass {
		m.NoteFail()
		return heap.Nil, fmt.Errorf("%w: request %d exceeds largest class", mm.ErrOutOfMemory, req.Size)
	}
	m.Charge(mm.CostIndex)
	b := m.free[c]
	if m.nonEmpty&(1<<c) == 0 {
		var err error
		b, err = m.refill(c)
		if err != nil {
			m.NoteFail()
			return heap.Nil, err
		}
	}
	m.setFreeHead(c, m.v.NextFree(b))
	m.Charge(mm.CostProbe + mm.CostUnlink)
	gross := int64(1) << c
	// Every block on the class-c list already carries a class-c header,
	// written at refill time and never cleared by Free, so the header
	// rewrite is byte-idempotent and elided; its work charge remains.
	m.Charge(mm.CostHeader)
	p := m.v.Payload(b)
	m.live.Add(p, req.Size)
	m.NoteAlloc(req.Size, gross)
	return p, nil
}

// refill carves a new extent from the system into blocks of class c and
// returns one of them, pushing the rest onto the class free list.
func (m *Manager) refill(c int) (heap.Addr, error) {
	gross := int64(1) << c
	extent := gross
	if extent < chunkBytes {
		extent = chunkBytes
	}
	start, err := m.h.Sbrk(extent)
	if err != nil {
		return heap.Nil, err
	}
	m.Charge(mm.CostSbrk)
	// Split the extent into blocks; push all but the first.
	for off := gross; off+gross <= extent; off += gross {
		b := start + heap.Addr(off)
		m.v.SetHeader(b, gross, false, false)
		m.v.SetNextFree(b, m.free[c])
		m.setFreeHead(c, b)
		m.Charge(mm.CostLink)
	}
	m.v.SetHeader(start, gross, false, false)
	m.v.SetNextFree(start, m.free[c])
	m.setFreeHead(c, start)
	m.Charge(mm.CostLink)
	return start, nil
}

// Free implements mm.Manager.
func (m *Manager) Free(p heap.Addr) error {
	req, ok := m.live.Remove(p)
	if !ok {
		m.NoteFail()
		return mm.ErrBadFree
	}
	b := m.v.Block(p)
	gross := m.v.Size(b)
	c := 64 - bits.LeadingZeros64(uint64(gross-1))
	m.Charge(mm.CostIndex)
	m.v.SetNextFree(b, m.free[c])
	m.setFreeHead(c, b)
	m.Charge(mm.CostLink)
	m.NoteFree(req, gross)
	return nil
}

// Heap exposes the simulated heap for tests and diagnostics.
func (m *Manager) Heap() *heap.Heap { return m.h }

// Footprint implements mm.Manager.
func (m *Manager) Footprint() int64 { return m.h.Footprint() }

// MaxFootprint implements mm.Manager.
func (m *Manager) MaxFootprint() int64 { return m.h.MaxFootprint() }

// Reset restores the manager and its heap to the initial state.
func (m *Manager) Reset() {
	m.h.Reset()
	m.free = [maxClass + 1]heap.Addr{}
	m.nonEmpty = 0
	m.live.Reset()
	m.ResetStats()
}

// FreeBlocks returns the number of blocks on the class-c free list, for
// tests and fragmentation diagnostics.
func (m *Manager) FreeBlocks(c int) int {
	if m.nonEmpty&(1<<c) == 0 {
		return 0
	}
	n := 0
	for b := m.free[c]; b != heap.Nil; b = m.v.NextFree(b) {
		n++
	}
	return n
}

// Clone returns a deep copy of the manager over a clone of its heap:
// the copy and the original replay independently. The free-list heads
// and bin bitmap are plain values; only the heap and the shadow table
// need deep copies.
func (m *Manager) Clone() *Manager {
	n := *m
	n.h = m.h.Clone()
	n.v.H = n.h
	n.live = m.live.Clone()
	return &n
}

// CloneManager implements mm.Cloner.
func (m *Manager) CloneManager() (mm.Manager, error) { return m.Clone(), nil }

// StateChecksum implements mm.Checksummer by digesting the simulated
// heap, where all in-band allocator state lives.
func (m *Manager) StateChecksum() uint64 { return m.h.Checksum() }

var (
	_ mm.Manager     = (*Manager)(nil)
	_ mm.Cloner      = (*Manager)(nil)
	_ mm.Checksummer = (*Manager)(nil)
)

// Package render3d reproduces the paper's third case study: a 3D video
// rendering system based on scalable meshes, where the quality (level of
// detail) of each object adapts to the position of the viewer under a QoS
// budget, as in interactive QoS frameworks for 3D applications.
//
// The DM behaviour has three phases, matching the paper's discussion of
// Obstacks:
//
//   - Phase 0 (scene load): base meshes are loaded into per-object vertex
//     and face arrays — allocations only, purely stack-like.
//   - Phase 1 (approach): objects refine toward the viewer in per-object
//     bursts, materializing vertex/face records; per-frame render scratch
//     buffers are freed LIFO at frame end. Obstack heaven.
//   - Phase 2 (departure/QoS reshuffle): half the objects leave the view
//     and shed their refinement records in screen-space (shuffled,
//     non-LIFO) order, while the remaining objects gain high-detail
//     textured records of different sizes. Allocators that reuse the
//     released memory stay near the live volume; an obstack cannot
//     reclaim out-of-order frees and keeps growing — "Obstacks cannot
//     exploit its stack-like optimizations in the final phases of the
//     rendering process" (Sec. 5). Power-of-two class allocators cannot
//     recycle the old classes for the new record sizes either.
//
// Allocation tags: 0 = vertex record, 1 = face record, 2 = frame scratch,
// 3 = base-mesh array, 4 = detail (textured) record.
package render3d

package dmmkit

import (
	"dmmkit/internal/dspace"
	"dmmkit/internal/netsim"
)

// NetConfig parameterizes the synthetic internet-traffic generator used
// by the DRR case study.
type NetConfig = netsim.Config

// Decision-tree identifiers (the paper's Fig. 1 trees, categories A-E).
const (
	TreeBlockStructure = dspace.A1BlockStructure // A1: DDT for free blocks
	TreeBlockSizes     = dspace.A2BlockSizes     // A2: fixed vs variable sizes
	TreeBlockTags      = dspace.A3BlockTags      // A3: header/footer fields
	TreeRecordedInfo   = dspace.A4RecordedInfo   // A4: what the tags record
	TreeFlexBlockSize  = dspace.A5FlexBlockSize  // A5: split/coalesce support
	TreePoolDivision   = dspace.B1PoolDivision   // B1: pool division by size
	TreePoolStruct     = dspace.B2PoolStruct     // B2: pool organization DDT
	TreePoolPhase      = dspace.B3PoolPhase      // B3: pool division by phase
	TreePoolRange      = dspace.B4PoolRange      // B4: block range per pool
	TreeFit            = dspace.C1Fit            // C1: fit algorithm
	TreeFreeOrder      = dspace.C2FreeOrder      // C2: free-list ordering
	TreeMaxBlockSizes  = dspace.D1MaxBlockSizes  // D1: coalescing result sizes
	TreeCoalesceWhen   = dspace.D2CoalesceWhen   // D2: when to coalesce
	TreeMinBlockSizes  = dspace.E1MinBlockSizes  // E1: splitting result sizes
	TreeSplitWhen      = dspace.E2SplitWhen      // E2: when to split
)

// Commonly used leaves (see package dspace for the full sets).
const (
	// A1 block structure.
	SinglyLinked = dspace.SinglyLinked
	DoublyLinked = dspace.DoublyLinked
	SizeSorted   = dspace.SizeSorted
	// A2 block sizes.
	OneBlockSize   = dspace.OneBlockSize
	ManyFixedSizes = dspace.ManyFixedSizes
	ManyVarSizes   = dspace.ManyVarSizes
	// A3 block tags.
	NoTags       = dspace.NoTags
	HeaderTag    = dspace.HeaderTag
	HeaderFooter = dspace.HeaderFooter
	// A4 recorded info.
	RecordNone           = dspace.RecordNone
	RecordSize           = dspace.RecordSize
	RecordSizeStatus     = dspace.RecordSizeStatus
	RecordSizeStatusPrev = dspace.RecordSizeStatusPrev
	// A5 flexible block size manager.
	NoFlex        = dspace.NoFlex
	SplitOnly     = dspace.SplitOnly
	CoalesceOnly  = dspace.CoalesceOnly
	SplitCoalesce = dspace.SplitCoalesce
	// B1 pool division.
	SinglePool   = dspace.SinglePool
	PoolPerClass = dspace.PoolPerClass
	// B4 pool range.
	FixedSizePerPool = dspace.FixedSizePerPool
	Pow2Classes      = dspace.Pow2Classes
	ExactClasses     = dspace.ExactClasses
	AnyRange         = dspace.AnyRange
	// C1 fit algorithms.
	FirstFit = dspace.FirstFit
	NextFit  = dspace.NextFit
	BestFit  = dspace.BestFit
	WorstFit = dspace.WorstFit
	ExactFit = dspace.ExactFit
	// D2/E2 scheduling.
	Never    = dspace.Never
	Deferred = dspace.Deferred
	Always   = dspace.Always
	// D1/E1 result sizes.
	OneResultSize = dspace.OneResultSize
	ManyFixedSet  = dspace.ManyFixedSet
	ManyNotFixed  = dspace.ManyNotFixed
)

// LeafName returns the display name of a leaf of a tree.
func LeafName(t Tree, l Leaf) string { return dspace.LeafName(t, l) }

// TraversalOrder returns the paper's tree traversal order for reduced
// memory footprint (Sec. 4.2).
func TraversalOrder() []Tree { return append([]Tree(nil), dspace.Order...) }

// ExplainVector lists every interdependency a vector violates.
func ExplainVector(v Vector) []string { return dspace.Explain(&v) }

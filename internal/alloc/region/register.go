package region

import (
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
)

func init() {
	registry.RegisterManager("regions", func(h *heap.Heap, p *profile.Profile) (mm.Manager, error) {
		return New(h, ProfileSizer(p)), nil
	})
}

// ProfileSizer sizes each region's fixed block for the worst-case request
// of its allocation tag, rounded to the next power of two, as embedded
// partition implementations require — the source of the internal
// fragmentation the paper attributes to region managers (the "manually
// designed" configuration of Sec. 5). A nil profile, or a tag the profile
// never saw, falls back to DefaultSizer.
func ProfileSizer(p *profile.Profile) Sizer {
	return func(tag int, firstReq int64) int64 {
		if p == nil {
			return DefaultSizer(tag, firstReq)
		}
		max, ok := p.TagMax[tag]
		if !ok {
			return DefaultSizer(tag, firstReq)
		}
		s := int64(8)
		for s < max {
			s <<= 1
		}
		return s
	}
}

// Package kingsley implements the Kingsley power-of-two segregated-fit
// allocator, the policy behind the 4.4BSD libc malloc and the baseline the
// paper identifies with Windows-based systems.
//
// Policy (after Wilson et al.'s survey, the paper's reference [19]):
//
//   - Requests are rounded up to the next power of two; one free list per
//     size class holds blocks of exactly that gross size.
//   - Allocation pops the class's free list; when empty, a new extent is
//     carved from the system in page-sized chunks and split into blocks of
//     the class size.
//   - Free pushes the block back on its class list. Blocks are never
//     split, never coalesced and never returned to the system, so every
//     class retains its own high-water mark of memory forever — the
//     behaviour responsible for Kingsley's large footprints in Table 1 of
//     the paper.
//
// Each block carries a four-byte header recording its gross size, which is
// how free recovers the class. In the design space of the paper the policy
// is the point: A2=many-fixed, A3=header, A4=size, A5=none,
// B1=pool-per-class, B4=pow2-classes, C1=first(-of-class), D2=E2=never.
package kingsley

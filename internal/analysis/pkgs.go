package analysis

import "strings"

// matchPkg reports whether the package import path matches any pattern
// in the comma-separated list. A pattern matches when it equals the
// path exactly, or — with a trailing "/..." — when the path is the
// pattern's prefix or any package below it. Patterns are full import
// paths ("dmmkit/internal/core"), so fixture packages and forks can
// retarget an analyzer by overriding its -pkgs flag.
func matchPkg(path, patterns string) bool {
	for _, pat := range strings.Split(patterns, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == rest || strings.HasPrefix(path, rest+"/") {
				return true
			}
			continue
		}
		if path == pat {
			return true
		}
	}
	return false
}

package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func sampleTrace() *Trace {
	b := NewBuilder("sample")
	ids := make([]int64, 0)
	for i := 0; i < 10; i++ {
		ids = append(ids, b.Alloc(int64(100+i*8), i%3))
		b.Tick()
	}
	b.SetPhase(1)
	for _, id := range ids[:5] {
		b.Free(id)
		b.Tick()
	}
	for i := 0; i < 4; i++ {
		ids = append(ids, b.Alloc(int64(2000+i), 7))
	}
	for _, id := range ids[5:] {
		b.Free(id)
	}
	return b.Build()
}

func TestBuilderProducesValidTrace(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.LiveAtEnd() != 0 {
		t.Errorf("LiveAtEnd = %d, want 0", tr.LiveAtEnd())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	tr := &Trace{Name: "bad", Events: []Event{
		{Kind: KindFree, ID: 0},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("free-before-alloc validated")
	}
	tr = &Trace{Name: "bad2", Events: []Event{
		{Kind: KindAlloc, ID: 0, Size: 10},
		{Kind: KindAlloc, ID: 0, Size: 10},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("duplicate alloc id validated")
	}
	tr = &Trace{Name: "bad3", Events: []Event{
		{Kind: KindAlloc, ID: 0, Size: 0},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("zero-size alloc validated")
	}
}

func TestMaxLiveBytes(t *testing.T) {
	b := NewBuilder("live")
	a := b.Alloc(100, 0)
	c := b.Alloc(200, 0) // peak: 300
	b.Free(a)
	b.Free(c)
	b.Alloc(50, 0)
	tr := b.Build()
	if got := tr.MaxLiveBytes(); got != 300 {
		t.Errorf("MaxLiveBytes = %d, want 300", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Errorf("binary round trip mismatch:\nin:  %+v\nout: %+v", tr.Events[:3], got.Events[:3])
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := DecodeBinary(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := DecodeBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input decoded")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("JSON round trip mismatch")
	}
}

func TestBinaryRoundTripLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBuilder("random")
	var ids []int64
	for i := 0; i < 5000; i++ {
		if len(ids) == 0 || rng.Intn(2) == 0 {
			ids = append(ids, b.Alloc(rng.Int63n(100000)+1, rng.Intn(10)))
		} else {
			j := rng.Intn(len(ids))
			b.Free(ids[j])
			ids = append(ids[:j], ids[j+1:]...)
		}
		if rng.Intn(4) == 0 {
			b.Tick()
		}
		b.SetPhase(i / 1000)
	}
	tr := b.Build()
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("large random trace round trip mismatch")
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	b := NewBuilder("x")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double free in builder did not panic")
			}
		}()
		id := b.Alloc(10, 0)
		b.Free(id)
		b.Free(id)
	}()
}

// Package errwrapfix is the errwrap fixture: fmt.Errorf wrap hygiene
// and error-message comparisons, violations next to blessed patterns.
package errwrapfix

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

type opError struct{ msg string }

func (e *opError) Error() string { return e.msg }

func wrapSites(err error, path string) error {
	if err != nil {
		return fmt.Errorf("open %s: %v", path, err) // want `fmt.Errorf formats an error operand without %w`
	}
	if err != nil {
		return fmt.Errorf("open %s: %s", path, err) // want `fmt.Errorf formats an error operand without %w`
	}
	// Blessed: %w keeps the chain visible to errors.Is/As.
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	// Blessed: two causes, two %w verbs.
	if err != nil {
		return fmt.Errorf("decode: %w (after %w)", err, errSentinel)
	}
	// Violation: two error operands, only one wrapped.
	if err != nil {
		return fmt.Errorf("decode: %w then %v", err, errSentinel) // want `fmt.Errorf formats an error operand without %w`
	}
	// Blessed: no error operand at all.
	return fmt.Errorf("open %s: gave up", path)
}

func typedOperand(e *opError) error {
	return fmt.Errorf("op failed: %v", e) // want `fmt.Errorf formats an error operand without %w`
}

// Blessed: deliberate flattening with a rationale.
func frozenMessage(err error) error {
	//dmmlint:allow errwrap user-facing message is frozen; the cause must not leak
	return fmt.Errorf("internal error: %v", err)
}

func compareSites(err error) bool {
	if err.Error() == "file exists" { // want `comparing err.Error\(\) against a string literal`
		return true
	}
	const gone = "not found"
	if gone != err.Error() { // want `comparing err.Error\(\) against a string literal`
		return false
	}
	// Blessed: identity comparison instead of text.
	if errors.Is(err, errSentinel) {
		return true
	}
	var oe *opError
	if errors.As(err, &oe) {
		return true
	}
	// Blessed: comparing two dynamic strings is out of scope.
	other := errSentinel
	return err.Error() == other.Error()
}

// Blessed: suppressed comparison (decoded errors only exist as text).
func decodedError(err error) bool {
	//dmmlint:allow errwrap checkpoint-decoded errors carry no identity, only text
	return err.Error() == "replay exploded"
}

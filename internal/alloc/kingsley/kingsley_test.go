package kingsley

import (
	"testing"

	"dmmkit/internal/alloctest"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

func factory() mm.Manager { return New(heap.New(heap.Config{})) }

func TestConformance(t *testing.T) {
	alloctest.Run(t, factory, alloctest.Options{})
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		req  int64
		want int64 // gross block size
	}{
		{1, 16}, {12, 16}, {13, 32}, {28, 32}, {29, 64},
		{100, 128}, {1500, 2048}, {4092, 4096}, {4093, 8192},
	}
	for _, c := range cases {
		if got := int64(1) << classFor(c.req); got != c.want {
			t.Errorf("classFor(%d): gross %d, want %d", c.req, got, c.want)
		}
	}
}

func TestPow2Rounding(t *testing.T) {
	m := New(heap.New(heap.Config{}))
	if _, err := m.Alloc(mm.Request{Size: 1500}); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.GrossLive != 2048 {
		t.Errorf("GrossLive for 1500-byte request = %d, want 2048 (power-of-two class)", s.GrossLive)
	}
	// Internal fragmentation: (2048-1500)/2048.
	if f := s.InternalFrag(); f < 0.25 || f > 0.30 {
		t.Errorf("InternalFrag = %.3f, want about 0.268", f)
	}
}

func TestNeverReturnsMemory(t *testing.T) {
	m := New(heap.New(heap.Config{}))
	var ps []heap.Addr
	for i := 0; i < 100; i++ {
		p, err := m.Alloc(mm.Request{Size: 1000})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	peak := m.Footprint()
	for _, p := range ps {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.Footprint() != peak {
		t.Errorf("Footprint after freeing everything = %d, want unchanged %d (Kingsley never releases)", m.Footprint(), peak)
	}
}

func TestFreeListReusePerClass(t *testing.T) {
	m := New(heap.New(heap.Config{}))
	p, err := m.Alloc(mm.Request{Size: 100}) // class 128
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	q, err := m.Alloc(mm.Request{Size: 90}) // same class
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("same-class reallocation got %#x, want reused %#x", q, p)
	}
}

func TestClassesDoNotShareMemory(t *testing.T) {
	// The paper: "only a limited amount of block sizes is used and thus
	// memory is misused" — freed blocks of one class are useless to
	// another.
	m := New(heap.New(heap.Config{}))
	var ps []heap.Addr
	for i := 0; i < 64; i++ {
		p, err := m.Alloc(mm.Request{Size: 1000})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		_ = m.Free(p)
	}
	before := m.Footprint()
	for i := 0; i < 64; i++ {
		if _, err := m.Alloc(mm.Request{Size: 200}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Footprint() <= before {
		t.Errorf("allocating a different class reused another class's free memory (footprint %d -> %d)", before, m.Footprint())
	}
}

func TestRefillSplitsChunk(t *testing.T) {
	m := New(heap.New(heap.Config{}))
	if _, err := m.Alloc(mm.Request{Size: 10}); err != nil { // class 16
		t.Fatal(err)
	}
	// A 4096-byte chunk yields 256 sixteen-byte blocks; one is in use.
	if got := m.FreeBlocks(4); got != 255 {
		t.Errorf("FreeBlocks(16B class) = %d, want 255", got)
	}
}

func TestWorkCostIsConstantish(t *testing.T) {
	m := New(heap.New(heap.Config{}))
	var ps []heap.Addr
	for i := 0; i < 1000; i++ {
		p, err := m.Alloc(mm.Request{Size: 100})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		_ = m.Free(p)
	}
	w := m.Stats().Work
	perOp := float64(w) / 2000
	if perOp > 20 {
		t.Errorf("work per op = %.1f units, want small constant (Kingsley is the fast baseline)", perOp)
	}
}

func TestOversizeRequestFails(t *testing.T) {
	m := New(heap.New(heap.Config{}))
	if _, err := m.Alloc(mm.Request{Size: 1 << 30}); err == nil {
		t.Error("absurd request succeeded")
	}
}

func TestReset(t *testing.T) {
	m := New(heap.New(heap.Config{}))
	if _, err := m.Alloc(mm.Request{Size: 64}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Footprint() != 0 || m.Stats().Allocs != 0 {
		t.Error("Reset did not clear state")
	}
	if _, err := m.Alloc(mm.Request{Size: 64}); err != nil {
		t.Errorf("Alloc after Reset: %v", err)
	}
}

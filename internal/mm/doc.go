// Package mm defines the interface shared by every dynamic memory manager
// in this repository, together with the statistics and the
// architecture-neutral cost model used to compare managers.
//
// Managers allocate from a simulated heap (internal/heap); the application
// side (trace replay, workloads) addresses blocks by heap.Addr. The package
// corresponds to the contract a DM manager offers an embedded OS in the
// paper's setting: malloc/free plus observability hooks for footprint and
// execution-time estimation.
//
// # The work-unit cost model
//
// Work is the paper's Sec. 5 execution-time proxy: managers charge
// architecture-neutral units per free-list probe, link update, header
// write and system call (the Cost* weights), accumulated in Stats. The
// charges are part of simulated behaviour, not simulator behaviour: when
// an implementation shortcut skips work the modeled allocator would do
// (a nonempty-bin bitmap skipping empty bins, say), the skipped probes
// are still charged in bulk, so Work compares policies, not Go code.
package mm

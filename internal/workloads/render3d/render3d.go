package render3d

import (
	"fmt"
	"math/rand"

	"dmmkit/internal/mesh"
	"dmmkit/internal/trace"
)

// Allocation tags used in the emitted trace.
const (
	TagVertex  = 0
	TagFace    = 1
	TagScratch = 2
	TagBase    = 3
	TagDetail  = 4
)

// Detail-record sizes of the textured close-up representation (phase 2).
// They deliberately occupy different power-of-two classes than the plain
// vertex/face records, as textured attribute sets do.
const (
	detailVertexBytes = 232
	detailFaceBytes   = 120
)

// Phases of the workload.
const (
	PhaseLoad = iota
	PhaseAnimate
	PhaseTeardown
)

// Config controls the rendering run.
type Config struct {
	Seed    int64
	Objects int // scene objects (default 8)
	BaseRes int // base mesh resolution (default 8: 64 verts)
	Detail  int // refinement levels per object (default 1500)
	Frames  int // animation frames per phase (default 96)
}

func (c *Config) defaults() {
	if c.Objects == 0 {
		c.Objects = 8
	}
	if c.BaseRes == 0 {
		c.BaseRes = 8
	}
	if c.Detail == 0 {
		c.Detail = 1000
	}
	if c.Frames == 0 {
		c.Frames = 96
	}
}

// Result carries the trace and renderer statistics.
type Result struct {
	Trace     *trace.Trace
	Objects   int
	MaxLOD    int
	PeakBytes int64
}

// BuildTrace runs the renderer and records its allocation trace.
func BuildTrace(cfg Config) (*Result, error) { return StreamTrace(cfg, nil) }

// StreamTrace is BuildTrace with the events streamed into sink as they
// are generated (a nil sink materializes them): Result.Trace then
// carries only the name and the event slice is never built.
func StreamTrace(cfg Config, sink trace.EventSink) (*Result, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x51ED))
	b := trace.NewBuilderTo(fmt.Sprintf("render3d-seed%d", cfg.Seed), sink)
	res := &Result{Objects: cfg.Objects}

	allocRecord := func(size int64) int64 {
		if size == mesh.VertexBytes {
			return b.Alloc(size, TagVertex)
		}
		return b.Alloc(size, TagFace)
	}

	// Phase 0: load the scene. Base meshes live in per-object arrays.
	b.SetPhase(PhaseLoad)
	objs := make([]*mesh.Instance, cfg.Objects)
	baseArrIDs := make([][]int64, cfg.Objects)
	for i := range objs {
		p := mesh.Generate(cfg.Seed+int64(i*131), cfg.BaseRes, cfg.Detail)
		if err := p.Validate(); err != nil {
			return nil, err
		}
		objs[i] = mesh.NewInstance(p)
		baseArrIDs[i] = []int64{
			b.Alloc(int64(len(p.BaseVerts))*mesh.VertexBytes, TagBase),
			b.Alloc(int64(len(p.BaseFaces))*mesh.FaceBytes, TagBase),
		}
		b.Tick()
	}

	// Phase 1: approach. One object refines per frame (round robin), so
	// each object's records stay mostly contiguous in the heap; scratch
	// buffers churn LIFO within each frame.
	b.SetPhase(PhaseAnimate)
	for frame := 0; frame < cfg.Frames; frame++ {
		o := objs[frame%cfg.Objects]
		target := o.P.MaxLOD() * (frame/cfg.Objects + 1) * cfg.Objects / cfg.Frames
		for o.LOD() < target {
			if !o.Refine(allocRecord) {
				break
			}
		}
		if o.LOD() > res.MaxLOD {
			res.MaxLOD = o.LOD()
		}
		// Render scratch: command/sort buffers whose size regime drifts
		// with the scene composition every 8 frames (display lists grow
		// as detail accumulates). Freed LIFO at frame end.
		regime := int64(256) << uint((frame/8)%7)
		var scratch []int64
		var scratchBytes int64
		for scratchBytes < 160<<10 {
			size := regime/2 + rng.Int63n(regime)
			scratch = append(scratch, b.Alloc(size, TagScratch))
			scratchBytes += size
		}
		for s := len(scratch) - 1; s >= 0; s-- {
			b.Free(scratch[s])
		}
		b.Tick()
	}

	// Phase 2: departure and QoS reshuffle. Even-indexed objects leave:
	// their records are freed in shuffled (screen-space) order. Odd
	// objects gain textured detail records of new sizes, paid for by the
	// QoS budget the departing objects released.
	b.SetPhase(PhaseTeardown)
	var detailIDs []int64
	shuffled := func(n int) []int { return rng.Perm(n) }
	allocDetail := func(budget int64) {
		for budget > 0 {
			detailIDs = append(detailIDs, b.Alloc(detailVertexBytes, TagDetail))
			budget -= detailVertexBytes
			for k := 0; k < 2 && budget > 0; k++ {
				detailIDs = append(detailIDs, b.Alloc(detailFaceBytes, TagDetail))
				budget -= detailFaceBytes
			}
		}
	}
	levelBytes := int64(mesh.VertexBytes + 2*mesh.FaceBytes)
	for i := 0; i < cfg.Objects; i += 2 {
		// Departing object sheds everything (non-LIFO)...
		released := int64(objs[i].LOD()) * levelBytes
		objs[i].ReleaseAll(shuffled, func(id int64) { b.Free(id) })
		b.Tick()
		// ...and a surviving object gains detail records worth ~80% of
		// the released budget, in the new record sizes.
		allocDetail(released * 8 / 10)
		b.Tick()
	}
	// QoS re-encode wave: surviving objects replace ~30% of their plain
	// records with textured detail records (frees arrive in edge-collapse
	// order from the middle of the allocation stack — non-LIFO again).
	for i := 1; i < cfg.Objects; i += 2 {
		o := objs[i]
		replace := o.LOD() * 3 / 10
		var reencoded int64
		for r := 0; r < replace; r++ {
			if !o.Coarsen(func(id int64) { b.Free(id) }) {
				break
			}
			reencoded += levelBytes
		}
		allocDetail(reencoded)
		b.Tick()
	}
	// Full teardown: remaining objects and arrays unload (screen order).
	for i := 1; i < cfg.Objects; i += 2 {
		objs[i].ReleaseAll(shuffled, func(id int64) { b.Free(id) })
	}
	for _, i := range rng.Perm(len(detailIDs)) {
		b.Free(detailIDs[i])
	}
	for i := range baseArrIDs {
		for _, id := range baseArrIDs[i] {
			b.Free(id)
		}
	}
	res.Trace = b.Build()
	res.PeakBytes = b.MaxLiveBytes()
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("render3d: writing trace: %w", err)
	}
	if sink == nil {
		if err := res.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("render3d: emitted invalid trace: %w", err)
		}
	}
	return res, nil
}

package jobs

import (
	"time"

	"dmmkit/internal/core"
	"dmmkit/internal/profile"
)

// Candidate is the wire form of one evaluated design-space point, as it
// travels through job event streams and results. It carries exactly the
// deterministic measurements — vector, footprint, work — so comparing
// two runs for byte-identity is comparing their marshaled Candidates.
type Candidate struct {
	Vector    string `json:"vector"`
	Footprint int64  `json:"footprint"`
	Work      int64  `json:"work"`
	Designed  bool   `json:"designed,omitempty"`
	Err       string `json:"error,omitempty"`
}

// WireCandidate projects an engine candidate onto the wire form. It is
// exported so the integration tests can compare a server-run stream
// against a direct Engine.Explore through the identical projection.
func WireCandidate(c core.Candidate) Candidate {
	w := Candidate{
		Vector:    c.Vector.String(),
		Footprint: c.MaxFootprint,
		Work:      c.Work,
		Designed:  c.Designed,
	}
	if c.Err != nil {
		w.Err = c.Err.Error()
	}
	return w
}

// wireCandidates projects a candidate slice.
func wireCandidates(cands []core.Candidate) []Candidate {
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		out[i] = WireCandidate(c)
	}
	return out
}

// ProfileSummary is the wire form of a profile job's result.
type ProfileSummary struct {
	Name          string  `json:"name"`
	Events        int     `json:"events"`
	Allocs        int64   `json:"allocs"`
	Frees         int64   `json:"frees"`
	DistinctSizes int     `json:"distinct_sizes"`
	MaxSize       int64   `json:"max_size"`
	MeanSize      float64 `json:"mean_size"`
	MaxLiveBytes  int64   `json:"max_live_bytes"`
	Phases        int     `json:"phases"`
}

// summarize projects a profile onto the wire form.
func summarize(p *profile.Profile) *ProfileSummary {
	return &ProfileSummary{
		Name:          p.Name,
		Events:        p.Events,
		Allocs:        p.Allocs,
		Frees:         p.Frees,
		DistinctSizes: p.DistinctSizes,
		MaxSize:       p.MaxSize,
		MeanSize:      p.MeanSize,
		MaxLiveBytes:  p.MaxLiveBytes,
		Phases:        len(p.Phases),
	}
}

// Result is a finished job's payload: exploration output or a profile
// summary, depending on the job kind. For cancelled or drained jobs,
// Candidates holds the contiguous streamed prefix.
type Result struct {
	Candidates []Candidate     `json:"candidates,omitempty"`
	Best       *Candidate      `json:"best,omitempty"`
	Front      []Candidate     `json:"front,omitempty"`
	Profile    *ProfileSummary `json:"profile,omitempty"`
}

// Event is one entry of a job's ordered event log, streamed to clients
// as NDJSON lines or SSE data frames. Seq is the entry's position in
// the log, so a client can detect gaps (there are none to detect — the
// log is append-only and replayed from 0 for every subscriber).
type Event struct {
	Seq        int         `json:"seq"`
	Type       string      `json:"type"` // state | progress | candidate | front
	State      State       `json:"state,omitempty"`
	Done       int         `json:"done,omitempty"`
	Total      int         `json:"total,omitempty"`
	Candidate  *Candidate  `json:"candidate,omitempty"`
	Front      []Candidate `json:"front,omitempty"`
	Error      string      `json:"error,omitempty"`
	Checkpoint string      `json:"checkpoint,omitempty"`
}

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID         string     `json:"id"`
	Kind       string     `json:"kind"`
	State      State      `json:"state"`
	Trace      string     `json:"trace,omitempty"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	Done       int        `json:"done"`
	Total      int        `json:"total"`
	Error      string     `json:"error,omitempty"`
	Checkpoint string     `json:"checkpoint,omitempty"`
	Result     *Result    `json:"result,omitempty"`
}

// MetricsSnapshot is the job manager's introspection payload, combined
// by the API layer into GET /v1/metrics.
type MetricsSnapshot struct {
	Submitted int64 `json:"submitted"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Retained  int   `json:"retained"` // jobs currently held in memory
	// Window summarizes recently finished jobs (latency over the
	// sliding window; see internal/server/metrics).
	WindowCount    int64   `json:"window_count"`
	WindowAvgMS    float64 `json:"window_avg_ms"`
	WindowMaxMS    float64 `json:"window_max_ms"`
	WindowSeconds  float64 `json:"window_seconds"`
	WorkerCount    int     `json:"workers"`
	QueueDepthMax  int     `json:"queue_depth_max"`
	Draining       bool    `json:"draining"`
	RetentionSecs  float64 `json:"retention_seconds"`
	EventsAppended int64   `json:"events_appended"`
}

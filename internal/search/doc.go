// Package search provides pluggable design-space search strategies for
// the exploration engine.
//
// The valid design space of Atienza et al. (DATE 2004) holds ~144k
// decision vectors (see dmmkit/internal/dspace). Evaluating one vector
// means replaying a whole allocation trace against the manager it
// describes, so the interesting question is not "can we enumerate the
// space" but "which vectors are worth evaluating". A Strategy answers
// that question one generation at a time: Next proposes a batch of
// vectors, the engine evaluates them in parallel (each against a private
// simulated heap), and Observe feeds the measured fitness back in
// proposal order before the next batch is proposed.
//
// Three strategies are provided:
//
//   - Exhaustive is the non-adaptive baseline: a single generation
//     holding a uniform ceiling-stride sample of the valid space in
//     enumeration order. It is the policy the engine uses when no
//     strategy is supplied, and its output needs no seed to reproduce.
//
//   - GA is a deterministic seeded genetic algorithm in the spirit of the
//     follow-up work on evolutionary DMM optimization (grammatical
//     evolution and parallel evolutionary algorithms over the same
//     design space): tournament selection, per-tree uniform crossover,
//     per-tree mutation, constraint repair, elitism, deduplication
//     against every vector already evaluated, and a convergence stop
//     after a configurable number of stale generations. It typically
//     reaches the exhaustive sample's best footprint while evaluating a
//     small fraction of the candidates.
//
//   - NSGA is the multi-objective variant (NSGA-II): the same genome
//     operators, but selection by Pareto rank over (footprint, work) —
//     non-dominated sorting with crowding-distance truncation — so the
//     search converges to the whole footprint×work trade-off front
//     rather than a single scalar optimum. It maintains an archive
//     ParetoFront over every evaluated vector and stops once the front
//     is stale for a configurable number of generations.
//
// The Pareto primitives are shared: Dominates defines strict dominance
// over (footprint, work), ParetoFront accumulates a deterministic
// non-dominated set (first-seen wins among equal objective points), and
// FrontOf computes the front of a result slice in one shot.
//
// Genomes are dspace.Vector values. Crossover and mutation recombine
// leaves freely, which routinely breaks the design-space
// interdependencies; Repair projects any genome back onto the nearest
// valid vector by walking the trees in the paper's traversal order with
// constraint propagation and backtracking. Fixed pins chosen trees to
// chosen leaves, restricting a strategy to a subspace — small enough
// subspaces can be enumerated outright, which is how the tests hold the
// GA against an exhaustive oracle.
//
// Determinism contract: a Strategy owns all of its randomness, and the
// engine serializes Next/Observe around parallel evaluation barriers.
// Identical seed and configuration therefore reproduce the identical
// proposal sequence — and identical exploration results — at every
// evaluation parallelism level.
package search

package trace

// BatchSource is an optional extension of Source for bulk decoding: a
// consumer hands over a reusable event buffer and gets back as many
// events as the source can produce in one call, amortizing the
// per-event interface dispatch that dominates a streaming replay. The
// DMMT2 decoder and the in-memory source implement it; ReadBatch adapts
// any plain Source.
type BatchSource interface {
	Source
	// NextBatch fills dst with the next events of the stream and
	// reports how many were decoded. n == 0 with a nil error means the
	// stream is exhausted. A non-nil error is terminal and latched —
	// later calls return (0, err) — but may accompany n > 0: the first
	// n events are valid and precede the error, so consumers must
	// process dst[:n] before acting on err.
	NextBatch(dst []Event) (n int, err error)
}

// BatchLen is the event-buffer size the package's own batch consumers
// use. It is large enough to amortize the per-batch call and refill
// cost and small enough (~40 KiB of Events) that a batched replay stays
// O(live set) in memory.
const BatchLen = 1024

// ReadBatch fills dst from src: one NextBatch call when src offers
// batching, otherwise a bounded loop of Next calls (at most len(dst)
// events — cancellation stays the caller's per-batch responsibility)
// with the same contract: events decoded before an error are returned
// alongside it, and n == 0 with a nil error means exhaustion.
func ReadBatch(src Source, dst []Event) (int, error) {
	if b, ok := src.(BatchSource); ok {
		return b.NextBatch(dst)
	}
	return readBatchSlow(src, dst)
}

// readBatchSlow is ReadBatch's per-event fallback.
func readBatchSlow(src Source, dst []Event) (int, error) {
	for n := range dst {
		e, ok, err := src.Next()
		if err != nil || !ok {
			return n, err
		}
		dst[n] = e
	}
	return len(dst), nil
}

// Pos is an exact resume point inside a DMMT2 stream: the byte offset
// of the next undecoded event together with the decode state (event
// index and previous tick) the delta coding needs to continue. A Pos is
// only meaningful for the stream it was captured from (via Positioner)
// and, through OpenerAt, for other handles on the same file.
type Pos struct {
	Off   int64  // byte offset of the next event record
	Index uint64 // events decoded before this point
	Tick  int64  // previous event's tick: the base of the next delta
}

// Positioner is implemented by sources that can report an exact
// mid-stream resume point. The DMMT2 streaming decoder implements it;
// the replay sharder uses it to open suffix passes without re-decoding
// the prefix.
type Positioner interface {
	Pos() Pos
}

// OpenerAt extends Opener with mid-stream passes: OpenAt returns a
// source that yields exactly the events after p, where p came from the
// Pos of a source over the same underlying trace. *File implements it
// for DMMT2 files. Sources opened mid-stream cannot verify the trailer
// checksum (the prefix was never read), so callers should have verified
// the stream once with a full pass first.
type OpenerAt interface {
	Opener
	OpenAt(p Pos) (Source, error)
}

// NextBatch implements BatchSource by copying out of the materialized
// event slice, so wrapped in-memory sources (e.g. behind WithContext)
// keep bulk transfer even when the replay engine cannot see the slice.
func (s *sliceSource) NextBatch(dst []Event) (int, error) {
	n := copy(dst, s.t.Events[s.i:])
	s.i += n
	return n, nil
}

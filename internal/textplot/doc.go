// Package textplot renders small ASCII line charts and bar tables for the
// command-line experiment reports (Figure 5 of the paper is reproduced as
// a footprint-over-time chart).
package textplot

package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// BenchRow is one workload×manager benchmark measurement: the Table 1
// footprint metrics plus the simulator's own execution cost (wall-clock
// and Go allocations per replay). Footprint columns are properties of the
// allocator policy and must stay invariant across simulator optimizations;
// the ns/replay and allocs/replay columns are the perf trajectory tracked
// from PR to PR.
type BenchRow struct {
	Workload        string  `json:"workload"`
	Manager         string  `json:"manager"`
	Events          int     `json:"events"`
	FootprintBytes  int64   `json:"footprint_bytes"`
	LiveBytes       int64   `json:"live_bytes"`
	WorkPerOp       float64 `json:"work_per_op"`
	NsPerReplay     float64 `json:"ns_per_replay"`
	AllocsPerReplay float64 `json:"allocs_per_replay"`
	Replays         int     `json:"replays"`
}

// BenchReport is the top-level BENCH_table1.json document.
type BenchReport struct {
	Note string     `json:"note"`
	Rows []BenchRow `json:"rows"`
}

// RunBenchTable replays every benchmark workload (seed 1, quick mode — the
// same configuration as the Go benchmarks and the golden differential
// test) against every manager, timing full replays including manager
// construction, exactly like BenchmarkTable1_*. Cells run sequentially —
// concurrent timed replays would perturb each other — but cancelling ctx
// stops the run between (and within) replays.
func RunBenchTable(ctx context.Context) (*BenchReport, error) {
	rep := &BenchReport{
		Note: "footprint/live bytes are allocator-policy outputs (must not change under simulator optimization); ns and allocs per replay track simulator cost",
	}
	for _, w := range Workloads {
		tr, err := BuildWorkloadTrace(w, 1, true)
		if err != nil {
			return nil, err
		}
		prof := profile.FromTrace(tr)
		for _, name := range Managers {
			row, err := benchOne(ctx, w, name, tr, prof)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, row)
		}
		// The batched DMMT2 streaming path, timed over the same trace so
		// the gate tracks the decoder's cost alongside the in-memory
		// replay's. One manager per workload keeps the run short; the
		// differential tests already pin every combination's identity.
		var enc bytes.Buffer
		if err := tr.EncodeBinary2(&enc); err != nil {
			return nil, err
		}
		row, err := benchOneStream(ctx, w, MgrKingsley, enc.Bytes(), prof)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// benchOneStream times full replays through the batched streaming
// decoder (DecodeBinarySource + RunSource) over an in-memory DMMT2
// encoding, labelled "<manager> (dmmt2 stream)" in the report.
func benchOneStream(ctx context.Context, w Workload, name ManagerName, enc []byte, prof *profile.Profile) (BenchRow, error) {
	replay := func() (trace.Result, error) {
		mgr, err := NewManager(name, prof)
		if err != nil {
			return trace.Result{}, err
		}
		src, err := trace.DecodeBinarySource(bytes.NewReader(enc))
		if err != nil {
			return trace.Result{}, err
		}
		return trace.RunSource(ctx, mgr, src, trace.RunOpts{})
	}
	res, err := replay()
	if err != nil {
		return BenchRow{}, fmt.Errorf("bench %s/%s (stream): %w", name, w, err)
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	n := 0
	for time.Since(start) < 200*time.Millisecond && n < 500 {
		if _, err := replay(); err != nil {
			return BenchRow{}, err
		}
		n++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return BenchRow{
		Workload:        string(w),
		Manager:         string(name) + " (dmmt2 stream)",
		Events:          res.Events,
		FootprintBytes:  res.MaxFootprint,
		LiveBytes:       res.MaxLive,
		WorkPerOp:       float64(res.Work) / float64(res.Events),
		NsPerReplay:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerReplay: float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		Replays:         n,
	}, nil
}

func benchOne(ctx context.Context, w Workload, name ManagerName, tr *trace.Trace, prof *profile.Profile) (BenchRow, error) {
	replay := func() (trace.Result, error) {
		mgr, err := NewManager(name, prof)
		if err != nil {
			return trace.Result{}, err
		}
		return trace.Run(ctx, mgr, tr, trace.RunOpts{})
	}
	// Warm-up (also captures the footprint metrics).
	res, err := replay()
	if err != nil {
		return BenchRow{}, fmt.Errorf("bench %s/%s: %w", name, w, err)
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	n := 0
	for time.Since(start) < 200*time.Millisecond && n < 500 {
		if _, err := replay(); err != nil {
			return BenchRow{}, err
		}
		n++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return BenchRow{
		Workload:        string(w),
		Manager:         string(name),
		Events:          res.Events,
		FootprintBytes:  res.MaxFootprint,
		LiveBytes:       res.MaxLive,
		WorkPerOp:       float64(res.Work) / float64(res.Events),
		NsPerReplay:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerReplay: float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		Replays:         n,
	}, nil
}

// WriteBenchJSON renders the report as indented JSON.
func (r *BenchReport) WriteBenchJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

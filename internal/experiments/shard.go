package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"dmmkit/internal/heap"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
	"dmmkit/internal/replay"
	"dmmkit/internal/trace"
	"dmmkit/internal/workloads/drr"
)

// The shard experiment (dmmbench -exp shard) measures phase-checkpointed
// parallel replay: it generates the stream experiment's netsim-scale DRR
// trace, writes it to a DMMT2 file, builds the phase index once
// (replay.Build — a sequential pass with snapshots), then replays the
// file as parallel shards (replay.Replay) and compares against the
// sequential streaming replay. The merged result is asserted identical
// to the sequential one — replay.Replay already verifies every shard
// seam internally — so the speedup column can be trusted: it never
// reports a fast-but-different number.

// shardManagers are the manager families the experiment shards.
var shardManagers = []ManagerName{MgrKingsley, MgrLea, MgrCustom}

// ShardRow is one manager family's sequential-vs-sharded measurement.
type ShardRow struct {
	Manager   ManagerName
	Footprint int64 // identical across paths (asserted)
	Work      int64
	SeqNs     int64 // sequential streaming replay
	BuildNs   int64 // replay.Build: sequential pass + snapshots
	ShardNs   int64 // parallel sharded replay of the same index
	Shards    int   // windows the index split the trace into
}

// Speedup is the sequential-over-sharded wall-clock ratio.
func (r ShardRow) Speedup() float64 {
	if r.ShardNs == 0 {
		return 0
	}
	return float64(r.SeqNs) / float64(r.ShardNs)
}

// ShardResult is the report of the sharded replay measurement.
type ShardResult struct {
	TraceName   string
	Events      int
	Parallelism int // workers the sharded replays ran on
	Rows        []ShardRow
}

// RunShard generates the trace, indexes it and replays it both ways;
// any divergence between the sequential and the sharded result is an
// error, never a printed number.
func RunShard(ctx context.Context, cfg Config) (*ShardResult, error) {
	dcfg := streamConfig(cfg.Quick)
	built, err := drr.BuildTrace(dcfg)
	if err != nil {
		return nil, err
	}
	tr := built.Trace
	prof := profile.FromTrace(tr)

	f, err := os.CreateTemp("", "dmmkit-shard-*.trace")
	if err != nil {
		return nil, err
	}
	defer os.Remove(f.Name())
	if err := tr.EncodeBinary2(f); err != nil {
		_ = f.Close() // encode error supersedes any close error
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	file, err := trace.OpenFile(f.Name())
	if err != nil {
		return nil, err
	}

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	res := &ShardResult{TraceName: tr.Name, Events: len(tr.Events), Parallelism: par}
	// Quick traces are too short for the production snapshot spacing.
	opts := replay.Options{}
	if cfg.Quick {
		opts = replay.Options{Every: 2048, MinWindow: 256}
	}

	for _, name := range shardManagers {
		reg := registryName[name]

		h1 := heap.New(heap.Config{})
		m1, err := registry.NewManager(reg, h1, prof)
		if err != nil {
			return nil, err
		}
		src, err := file.Open()
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		seq, err := trace.RunSource(ctx, m1, src, trace.RunOpts{})
		if err != nil {
			return nil, err
		}
		seqNs := time.Since(t0).Nanoseconds()

		h2 := heap.New(heap.Config{})
		m2, err := registry.NewManager(reg, h2, prof)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		phases, buildRes, err := replay.Build(ctx, m2, file, opts)
		if err != nil {
			return nil, err
		}
		buildNs := time.Since(t0).Nanoseconds()

		t0 = time.Now()
		sharded, err := phases.Replay(ctx, par, trace.RunOpts{})
		if err != nil {
			return nil, err
		}
		shardNs := time.Since(t0).Nanoseconds()

		for _, check := range []struct {
			which string
			got   trace.Result
		}{{"build", buildRes}, {"sharded", sharded}} {
			which, got := check.which, check.got
			if got.MaxFootprint != seq.MaxFootprint || got.Work != seq.Work ||
				got.Stats != seq.Stats || got.Events != seq.Events {
				return nil, fmt.Errorf("shard: %s: %s replay diverged from sequential: footprint %d vs %d, work %d vs %d",
					name, which, got.MaxFootprint, seq.MaxFootprint, got.Work, seq.Work)
			}
		}
		if h1.SysStats() != h2.SysStats() {
			return nil, fmt.Errorf("shard: %s: heap system stats diverged between the passes", name)
		}
		res.Rows = append(res.Rows, ShardRow{
			Manager:   name,
			Footprint: seq.MaxFootprint,
			Work:      int64(seq.Work),
			SeqNs:     seqNs,
			BuildNs:   buildNs,
			ShardNs:   shardNs,
			Shards:    phases.Shards(),
		})
	}
	return res, nil
}

// WriteShard renders the measurement.
func WriteShard(w io.Writer, r *ShardResult) error {
	fmt.Fprintf(w, "phase-sharded replay of %q: %d events, %d workers\n\n",
		r.TraceName, r.Events, r.Parallelism)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "manager\tfootprint (B)\twork\tshards\tsequential\tbuild (once)\tsharded\tspeedup")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%s\t%.2fx\n",
			row.Manager, row.Footprint, row.Work, row.Shards,
			time.Duration(row.SeqNs), time.Duration(row.BuildNs),
			time.Duration(row.ShardNs), row.Speedup())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nsharded results verified bit-identical to the sequential replay at every seam.")
	return nil
}

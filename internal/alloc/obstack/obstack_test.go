package obstack

import (
	"testing"

	"dmmkit/internal/alloctest"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

func factory() mm.Manager { return New(heap.New(heap.Config{}), 0) }

func TestConformance(t *testing.T) {
	alloctest.Run(t, factory, alloctest.Options{})
}

func TestLIFOFreesReclaimImmediately(t *testing.T) {
	m := New(heap.New(heap.Config{}), 0)
	var ps []heap.Addr
	for i := 0; i < 100; i++ {
		p, err := m.Alloc(mm.Request{Size: 100})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		if err := m.Free(ps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if m.Footprint() != 0 {
		t.Errorf("Footprint after LIFO teardown = %d, want 0 (chunks returned)", m.Footprint())
	}
	if m.DeadBytes() != 0 || m.Depth() != 0 {
		t.Errorf("DeadBytes=%d Depth=%d after teardown, want zeros", m.DeadBytes(), m.Depth())
	}
}

func TestOutOfOrderFreeIsDeferred(t *testing.T) {
	// The paper's render3d observation: obstacks cannot exploit their
	// stack optimization when frees arrive out of order, paying a
	// footprint penalty.
	m := New(heap.New(heap.Config{}), 0)
	p1, _ := m.Alloc(mm.Request{Size: 1000})
	p2, _ := m.Alloc(mm.Request{Size: 1000})
	p3, _ := m.Alloc(mm.Request{Size: 1000})
	before := m.Footprint()
	if err := m.Free(p1); err != nil { // bottom of the stack: deferred
		t.Fatal(err)
	}
	if m.Footprint() != before {
		t.Error("freeing the bottom object reclaimed memory immediately")
	}
	if m.DeadBytes() == 0 {
		t.Error("DeadBytes = 0 after deferred free")
	}
	if err := m.Free(p3); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p2); err != nil {
		t.Fatal(err)
	}
	// Now the dead bottom object unblocks: everything reclaimed.
	if m.Footprint() != 0 {
		t.Errorf("Footprint after all frees = %d, want 0", m.Footprint())
	}
	if m.DeadBytes() != 0 {
		t.Errorf("DeadBytes = %d, want 0", m.DeadBytes())
	}
}

func TestBigObjectGetsOwnChunk(t *testing.T) {
	m := New(heap.New(heap.Config{}), 0)
	p, err := m.Alloc(mm.Request{Size: 100000})
	if err != nil {
		t.Fatal(err)
	}
	m.Heap().Fill(p, 100000, 0x5A)
	if m.Footprint() < 100000 {
		t.Errorf("Footprint = %d, want >= 100000", m.Footprint())
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() != 0 {
		t.Errorf("Footprint after freeing big object = %d, want 0", m.Footprint())
	}
}

func TestChunkReuseAfterPop(t *testing.T) {
	m := New(heap.New(heap.Config{}), 0)
	keep, _ := m.Alloc(mm.Request{Size: 64})
	p1, _ := m.Alloc(mm.Request{Size: 64})
	if err := m.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, _ := m.Alloc(mm.Request{Size: 64})
	if p1 != p2 {
		t.Errorf("bump pointer did not roll back: %#x then %#x", p1, p2)
	}
	_ = m.Free(p2)
	_ = m.Free(keep)
	// Once truly empty the obstack returns its chunks entirely.
	if m.Footprint() != 0 {
		t.Errorf("Footprint = %d after emptying obstack, want 0", m.Footprint())
	}
}

func TestInterleavedPhases(t *testing.T) {
	// Stack-like phase, then a non-LIFO phase, then teardown: the
	// render3d pattern in miniature.
	m := New(heap.New(heap.Config{}), 0)
	var phase1 []heap.Addr
	for i := 0; i < 50; i++ {
		p, err := m.Alloc(mm.Request{Size: 200})
		if err != nil {
			t.Fatal(err)
		}
		phase1 = append(phase1, p)
	}
	for i := 49; i >= 25; i-- { // LIFO pops succeed
		if err := m.Free(phase1[i]); err != nil {
			t.Fatal(err)
		}
	}
	footprintAfterPops := m.Footprint()
	// Non-LIFO frees of the remaining: every other object.
	for i := 0; i < 25; i += 2 {
		if err := m.Free(phase1[i]); err != nil {
			t.Fatal(err)
		}
	}
	if m.DeadBytes() == 0 {
		t.Error("expected deferred dead bytes in non-LIFO phase")
	}
	if m.Footprint() > footprintAfterPops {
		t.Error("footprint grew during frees")
	}
	for i := 1; i < 25; i += 2 {
		if err := m.Free(phase1[i]); err != nil {
			t.Fatal(err)
		}
	}
	if m.Footprint() != 0 || m.Depth() != 0 {
		t.Errorf("Footprint=%d Depth=%d after full teardown", m.Footprint(), m.Depth())
	}
}

func TestStatsLiveBytes(t *testing.T) {
	m := New(heap.New(heap.Config{}), 0)
	p, _ := m.Alloc(mm.Request{Size: 123})
	if got := m.Stats().LiveBytes; got != 123 {
		t.Errorf("LiveBytes = %d, want 123", got)
	}
	_ = m.Free(p)
	if got := m.Stats().LiveBytes; got != 0 {
		t.Errorf("LiveBytes = %d, want 0", got)
	}
}

func TestReset(t *testing.T) {
	m := New(heap.New(heap.Config{}), 0)
	if _, err := m.Alloc(mm.Request{Size: 64}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Footprint() != 0 || m.Depth() != 0 {
		t.Error("Reset did not clear state")
	}
}

// Package region implements the region/partition manager the paper
// compares against for the 3D image reconstruction case study: the style
// of Gay–Aiken region allocation found in embedded real-time operating
// systems such as RTEMS, where each region serves blocks of one fixed
// size.
//
// A region is selected by the allocation request's Tag (the allocation
// site or data type). Every block handed out of a region has the region's
// fixed block size, which the designer of such a manager chooses for the
// worst-case request of that site — exactly the manual design the paper
// describes. Requests smaller than the region block size therefore waste
// the difference as internal fragmentation ("the requests of several block
// sizes creates internal fragmentation", Sec. 5).
//
// Freed blocks return to their region's free list and are reused, but
// memory is never returned to the system and never shared across regions.
//
// In the paper's design space the policy is: A2=many-fixed, A3=header,
// A4=size, A5=none, B1=pool-per-class (region=pool), B4=fixed-size,
// C1=first(-of-region), D2=E2=never.
package region

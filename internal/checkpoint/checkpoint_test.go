package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmmkit/internal/core"
	"dmmkit/internal/dspace"
)

func sampleState(t *testing.T) *State {
	t.Helper()
	var v dspace.Vector // the zero vector is always valid
	cands := []core.Candidate{
		{Vector: v, MaxFootprint: 4096, Work: 120},
		{Vector: v, MaxFootprint: 2048, Work: 300, Err: errors.New("replay exploded")},
	}
	return &State{
		Meta: Meta{
			Strategy:    "ga",
			Seed:        42,
			Population:  24,
			Generations: 40,
			Objectives:  "footprint",
			Trace:       WorkloadIdentity("mixed", 7, true),
		},
		GenerationsDone: 3,
		Strategy:        json.RawMessage(`{"kind":"ga","seed":42,"draws":100}`),
		Candidates:      FromCandidates(cands),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleState(t)
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != s.Meta {
		t.Errorf("Meta = %+v, want %+v", got.Meta, s.Meta)
	}
	if got.GenerationsDone != s.GenerationsDone {
		t.Errorf("GenerationsDone = %d, want %d", got.GenerationsDone, s.GenerationsDone)
	}
	if !bytes.Equal(got.Strategy, s.Strategy) {
		t.Errorf("Strategy = %s, want %s", got.Strategy, s.Strategy)
	}
	prior, err := got.Prior()
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 2 {
		t.Fatalf("Prior has %d candidates, want 2", len(prior))
	}
	if prior[0].MaxFootprint != 4096 || prior[0].Err != nil {
		t.Errorf("prior[0] = %+v", prior[0])
	}
	if prior[1].Err == nil || prior[1].Err.Error() != "replay exploded" {
		t.Errorf("prior[1].Err = %v, want the recorded message", prior[1].Err)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s := sampleState(t)
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	// Overwrite with an updated state; the path must hold the new one.
	s.GenerationsDone = 4
	if err := Save(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GenerationsDone != 4 {
		t.Errorf("GenerationsDone = %d, want 4", got.GenerationsDone)
	}
	// No temp litter survives a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want just the checkpoint", len(entries))
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	data, err := Encode(sampleState(t))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("not-a-checkpoint", func(t *testing.T) {
		for _, bad := range [][]byte{nil, {}, []byte("x"), []byte("DMMT2\nstuff")} {
			if _, err := Decode(bad); !errors.Is(err, ErrNotCheckpoint) {
				t.Errorf("Decode(%q) err = %v, want ErrNotCheckpoint", bad, err)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for cut := 1; cut < len(data); cut += 7 {
			if _, err := Decode(data[:len(data)-cut]); err == nil {
				t.Fatalf("truncated by %d bytes: decoded without error", cut)
			}
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		for off := 0; off < len(data); off++ {
			corrupt := append([]byte(nil), data...)
			corrupt[off] ^= 0x10
			if _, err := Decode(corrupt); err == nil {
				t.Fatalf("flip at byte %d: decoded without error", off)
			}
		}
	})
	t.Run("forged-length", func(t *testing.T) {
		forged := append([]byte(nil), data[:len(magic)]...)
		forged = append(forged, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01) // huge uvarint
		if _, err := Decode(forged); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Errorf("forged length err = %v, want the limit rejection", err)
		}
	})
}

func TestPriorRejectsInvalidVectors(t *testing.T) {
	s := sampleState(t)
	s.Candidates[0].Vector[0] = 255 // no tree has 255 leaves
	if _, err := s.Prior(); err == nil {
		t.Fatal("Prior accepted an out-of-range leaf")
	}
	s = sampleState(t)
	s.Candidates[0].Vector = s.Candidates[0].Vector[:3]
	if _, err := s.Prior(); err == nil {
		t.Fatal("Prior accepted a short vector")
	}
}

func TestTraceIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.dmmt")
	if err := os.WriteFile(path, []byte("same content"), 0o644); err != nil {
		t.Fatal(err)
	}
	idA, err := FileIdentity(path)
	if err != nil {
		t.Fatal(err)
	}
	// A renamed copy with identical content still matches.
	path2 := filepath.Join(dir, "b.dmmt")
	if err := os.WriteFile(path2, []byte("same content"), 0o644); err != nil {
		t.Fatal(err)
	}
	idB, err := FileIdentity(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !idA.Equal(idB) {
		t.Error("identical content, different identity")
	}
	// Edited content does not.
	if err := os.WriteFile(path2, []byte("other content"), 0o644); err != nil {
		t.Fatal(err)
	}
	idC, err := FileIdentity(path2)
	if err != nil {
		t.Fatal(err)
	}
	if idA.Equal(idC) {
		t.Error("different content, same identity")
	}

	w1 := WorkloadIdentity("mixed", 7, false)
	if !w1.Equal(WorkloadIdentity("mixed", 7, false)) {
		t.Error("identical workload identities differ")
	}
	for _, other := range []TraceIdentity{
		WorkloadIdentity("mixed", 8, false),
		WorkloadIdentity("bursts", 7, false),
		WorkloadIdentity("mixed", 7, true),
		idA,
	} {
		if w1.Equal(other) {
			t.Errorf("workload identity matched %v", other)
		}
	}
}

// FuzzDecodeCheckpoint: whatever bytes arrive — truncated, corrupted,
// forged lengths, hostile JSON — Decode (and Prior on anything that
// decodes) returns an error or a valid state; it never panics.
func FuzzDecodeCheckpoint(f *testing.F) {
	valid, err := Encode(sampleState(&testing.T{}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(append([]byte(magic), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))
	f.Add(valid[:len(valid)-2])
	short := append([]byte(nil), valid...)
	short[len(magic)] = 3 // length prefix lies short: CRC covers less than is there
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// Anything that decodes cleanly must also convert cleanly or
		// error — never panic.
		_, _ = s.Prior()
	})
}

package dspace

import "fmt"

// Tree identifies one orthogonal decision tree.
type Tree int

// The fifteen decision trees, grouped by the paper's categories A-E.
const (
	// Category A: creating block structures.
	A1BlockStructure Tree = iota // DDT used for free blocks inside a pool
	A2BlockSizes                 // fixed vs. variable block sizes
	A3BlockTags                  // header/footer fields reserved per block
	A4RecordedInfo               // what the tags record
	A5FlexBlockSize              // split/coalesce mechanisms available
	// Category B: pool division based on criterion.
	B1PoolDivision // one pool vs. one pool per size class
	B2PoolStruct   // DDT organizing the pools
	B3PoolPhase    // pools shared across phases or per phase
	B4PoolRange    // block-size granularity inside a pool
	// Category C: allocating blocks.
	C1Fit       // fit algorithm
	C2FreeOrder // free-list ordering discipline
	// Category D: coalescing blocks.
	D1MaxBlockSizes // block sizes allowed to result from coalescing
	D2CoalesceWhen  // how often coalescing runs
	// Category E: splitting blocks.
	E1MinBlockSizes // block sizes allowed to result from splitting
	E2SplitWhen     // how often splitting runs

	NumTrees int = iota
)

var treeNames = [...]string{
	A1BlockStructure: "A1 block structure",
	A2BlockSizes:     "A2 block sizes",
	A3BlockTags:      "A3 block tags",
	A4RecordedInfo:   "A4 block recorded info",
	A5FlexBlockSize:  "A5 flexible block size manager",
	B1PoolDivision:   "B1 pool division based on size",
	B2PoolStruct:     "B2 pool structure",
	B3PoolPhase:      "B3 pool division based on phase",
	B4PoolRange:      "B4 block range per pool",
	C1Fit:            "C1 fit algorithm",
	C2FreeOrder:      "C2 free-list order",
	D1MaxBlockSizes:  "D1 number of max block sizes",
	D2CoalesceWhen:   "D2 coalescing when",
	E1MinBlockSizes:  "E1 number of min block sizes",
	E2SplitWhen:      "E2 splitting when",
}

// String returns the paper-style tree name.
func (t Tree) String() string {
	if t >= 0 && int(t) < len(treeNames) {
		return treeNames[t]
	}
	return fmt.Sprintf("Tree(%d)", int(t))
}

// Category returns the paper's category letter for the tree.
func (t Tree) Category() byte {
	switch {
	case t <= A5FlexBlockSize:
		return 'A'
	case t <= B4PoolRange:
		return 'B'
	case t <= C2FreeOrder:
		return 'C'
	case t <= D2CoalesceWhen:
		return 'D'
	default:
		return 'E'
	}
}

// Leaf is a leaf index within its tree. The typed constants below give the
// meaning per tree.
type Leaf uint8

// A1 block structure: the dynamic data type holding free blocks.
const (
	SinglyLinked Leaf = iota // one forward link per free block
	DoublyLinked             // forward+backward links: O(1) unlink
	SizeSorted               // doubly linked, kept sorted by size
	numA1
)

// A2 block sizes.
const (
	OneBlockSize   Leaf = iota // single fixed block size
	ManyFixedSizes             // a fixed set of block sizes
	ManyVarSizes               // any size, not fixed in advance
	numA2
)

// A3 block tags.
const (
	NoTags       Leaf = iota // no per-block metadata
	HeaderTag                // header before the payload
	HeaderFooter             // full boundary tags
	numA3
)

// A4 block recorded info (cumulative sets, in increasing capability).
const (
	RecordNone           Leaf = iota // nothing recorded
	RecordSize                       // gross size
	RecordSizeStatus                 // size + used/prevUsed status
	RecordSizeStatusPrev             // size + status + previous block size
	numA4
)

// A5 flexible block size manager.
const (
	NoFlex        Leaf = iota // neither split nor coalesce
	SplitOnly                 // splitting available
	CoalesceOnly              // coalescing available
	SplitCoalesce             // both mechanisms available
	numA5
)

// B1 pool division based on size.
const (
	SinglePool   Leaf = iota // one pool holds every size
	PoolPerClass             // one pool per block-size class
	numB1
)

// B2 pool structure.
const (
	PoolArray Leaf = iota // pools held in a direct-indexed array
	PoolList              // pools held in a linked list
	numB2
)

// B3 pool division based on phase.
const (
	SharedPools   Leaf = iota // one pool set for the whole application
	PoolsPerPhase             // separate pool sets per behavioural phase
	numB3
)

// B4 block range per pool.
const (
	FixedSizePerPool Leaf = iota // exactly one block size per pool
	Pow2Classes                  // power-of-two size classes
	ExactClasses                 // exact-size classes (per distinct size)
	AnyRange                     // any size in any pool
	numB4
)

// C1 fit algorithm.
const (
	FirstFit Leaf = iota
	NextFit
	BestFit
	WorstFit
	ExactFit
	numC1
)

// C2 free-list order.
const (
	LIFOOrder Leaf = iota
	FIFOOrder
	AddressOrder
	numC2
)

// D1/E1 resulting block sizes (shared leaf meanings).
const (
	OneResultSize Leaf = iota // a single allowed result size
	ManyFixedSet              // a fixed set of allowed sizes
	ManyNotFixed              // any size may result
	numD1
)

// D2/E2 when to run the mechanism (shared leaf meanings).
const (
	Never    Leaf = iota // mechanism disabled
	Deferred             // run when a threshold/trigger fires
	Always               // run immediately on every opportunity
	numD2
)

// leafNames maps tree -> leaf -> display name.
var leafNames = [NumTrees][]string{
	A1BlockStructure: {"singly-linked", "doubly-linked", "size-sorted"},
	A2BlockSizes:     {"one", "many-fixed", "many-variable"},
	A3BlockTags:      {"none", "header", "header+footer"},
	A4RecordedInfo:   {"none", "size", "size+status", "size+status+prevsize"},
	A5FlexBlockSize:  {"none", "split-only", "coalesce-only", "split+coalesce"},
	B1PoolDivision:   {"single-pool", "pool-per-class"},
	B2PoolStruct:     {"array", "list"},
	B3PoolPhase:      {"shared", "per-phase"},
	B4PoolRange:      {"fixed-size", "pow2-classes", "exact-classes", "any-range"},
	C1Fit:            {"first", "next", "best", "worst", "exact"},
	C2FreeOrder:      {"lifo", "fifo", "address"},
	D1MaxBlockSizes:  {"one", "many-fixed", "many-not-fixed"},
	D2CoalesceWhen:   {"never", "deferred", "always"},
	E1MinBlockSizes:  {"one", "many-fixed", "many-not-fixed"},
	E2SplitWhen:      {"never", "deferred", "always"},
}

// LeafCount returns the number of leaves in tree t.
func LeafCount(t Tree) int { return len(leafNames[t]) }

// LeafName returns the display name of leaf l of tree t.
func LeafName(t Tree, l Leaf) string {
	if int(l) < len(leafNames[t]) {
		return leafNames[t][l]
	}
	return fmt.Sprintf("leaf(%d)", l)
}

// Order is the paper's traversal order for reduced memory footprint
// (Sec. 4.2): A2→A5→E2→D2→E1→D1→B4→B1→C1→A1→A3→A4. The three trees the
// order in the paper does not mention (B2, B3, C2) are decided immediately
// after their closest relative, which preserves the published prefix.
var Order = []Tree{
	A2BlockSizes, A5FlexBlockSize,
	E2SplitWhen, D2CoalesceWhen, E1MinBlockSizes, D1MaxBlockSizes,
	B4PoolRange, B1PoolDivision, B2PoolStruct, B3PoolPhase,
	C1Fit, C2FreeOrder,
	A1BlockStructure, A3BlockTags, A4RecordedInfo,
}

// Vector is one point in the design space: a leaf chosen in every tree —
// one "atomic DM manager" in the paper's notation.
type Vector struct {
	BlockStructure Leaf // A1
	BlockSizes     Leaf // A2
	BlockTags      Leaf // A3
	RecordedInfo   Leaf // A4
	Flex           Leaf // A5
	PoolDivision   Leaf // B1
	PoolStruct     Leaf // B2
	PoolPhase      Leaf // B3
	PoolRange      Leaf // B4
	Fit            Leaf // C1
	FreeOrder      Leaf // C2
	MaxBlockSizes  Leaf // D1
	CoalesceWhen   Leaf // D2
	MinBlockSizes  Leaf // E1
	SplitWhen      Leaf // E2
}

// Get returns the leaf chosen for tree t.
func (v *Vector) Get(t Tree) Leaf {
	switch t {
	case A1BlockStructure:
		return v.BlockStructure
	case A2BlockSizes:
		return v.BlockSizes
	case A3BlockTags:
		return v.BlockTags
	case A4RecordedInfo:
		return v.RecordedInfo
	case A5FlexBlockSize:
		return v.Flex
	case B1PoolDivision:
		return v.PoolDivision
	case B2PoolStruct:
		return v.PoolStruct
	case B3PoolPhase:
		return v.PoolPhase
	case B4PoolRange:
		return v.PoolRange
	case C1Fit:
		return v.Fit
	case C2FreeOrder:
		return v.FreeOrder
	case D1MaxBlockSizes:
		return v.MaxBlockSizes
	case D2CoalesceWhen:
		return v.CoalesceWhen
	case E1MinBlockSizes:
		return v.MinBlockSizes
	case E2SplitWhen:
		return v.SplitWhen
	}
	panic(fmt.Sprintf("dspace: bad tree %d", t))
}

// Set chooses leaf l for tree t.
func (v *Vector) Set(t Tree, l Leaf) {
	switch t {
	case A1BlockStructure:
		v.BlockStructure = l
	case A2BlockSizes:
		v.BlockSizes = l
	case A3BlockTags:
		v.BlockTags = l
	case A4RecordedInfo:
		v.RecordedInfo = l
	case A5FlexBlockSize:
		v.Flex = l
	case B1PoolDivision:
		v.PoolDivision = l
	case B2PoolStruct:
		v.PoolStruct = l
	case B3PoolPhase:
		v.PoolPhase = l
	case B4PoolRange:
		v.PoolRange = l
	case C1Fit:
		v.Fit = l
	case C2FreeOrder:
		v.FreeOrder = l
	case D1MaxBlockSizes:
		v.MaxBlockSizes = l
	case D2CoalesceWhen:
		v.CoalesceWhen = l
	case E1MinBlockSizes:
		v.MinBlockSizes = l
	case E2SplitWhen:
		v.SplitWhen = l
	default:
		panic(fmt.Sprintf("dspace: bad tree %d", t))
	}
}

// String renders the vector as category-grouped leaf names.
func (v Vector) String() string {
	s := ""
	for i := 0; i < NumTrees; i++ {
		t := Tree(i)
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%c%d=%s", t.Category(), treeIndexInCategory(t), LeafName(t, v.Get(t)))
	}
	return s
}

func treeIndexInCategory(t Tree) int {
	switch t {
	case A1BlockStructure, B1PoolDivision, C1Fit, D1MaxBlockSizes, E1MinBlockSizes:
		return 1
	case A2BlockSizes, B2PoolStruct, C2FreeOrder, D2CoalesceWhen, E2SplitWhen:
		return 2
	case A3BlockTags, B3PoolPhase:
		return 3
	case A4RecordedInfo, B4PoolRange:
		return 4
	case A5FlexBlockSize:
		return 5
	}
	return 0
}

module dmmkit

go 1.24

// The container building this repo has no network access, so the
// analysis framework is vendored from the Go toolchain's own
// cmd/vendor copy (same version go vet itself uses) and wired in via a
// local replace. See third_party/golang.org/x/tools/README.md.
replace golang.org/x/tools => ./third_party/golang.org/x/tools

require golang.org/x/tools v0.0.0-00010101000000-000000000000

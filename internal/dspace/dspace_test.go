package dspace

import (
	"math/rand"
	"strings"
	"testing"
)

// leaFamilyVector is a Lea-like point in the space: variable sizes, full
// boundary tags, split+coalesce always, single pool, best fit.
func leaFamilyVector() Vector {
	return Vector{
		BlockStructure: DoublyLinked,
		BlockSizes:     ManyVarSizes,
		BlockTags:      HeaderFooter,
		RecordedInfo:   RecordSizeStatus,
		Flex:           SplitCoalesce,
		PoolDivision:   SinglePool,
		PoolStruct:     PoolArray,
		PoolPhase:      SharedPools,
		PoolRange:      AnyRange,
		Fit:            BestFit,
		FreeOrder:      LIFOOrder,
		MaxBlockSizes:  ManyNotFixed,
		CoalesceWhen:   Always,
		MinBlockSizes:  ManyNotFixed,
		SplitWhen:      Always,
	}
}

// kingsleyFamilyVector is a Kingsley-like point: power-of-two classes, no
// split/coalesce, headers with size only.
func kingsleyFamilyVector() Vector {
	return Vector{
		BlockStructure: SinglyLinked,
		BlockSizes:     ManyFixedSizes,
		BlockTags:      HeaderTag,
		RecordedInfo:   RecordSize,
		Flex:           NoFlex,
		PoolDivision:   PoolPerClass,
		PoolStruct:     PoolArray,
		PoolPhase:      SharedPools,
		PoolRange:      Pow2Classes,
		Fit:            FirstFit,
		FreeOrder:      LIFOOrder,
		MaxBlockSizes:  OneResultSize,
		CoalesceWhen:   Never,
		MinBlockSizes:  OneResultSize,
		SplitWhen:      Never,
	}
}

// drrPaperVector is the custom manager the paper derives for DRR in Sec. 5:
// many variable sizes, split+coalesce always, unbounded result sizes,
// single pool, exact fit, doubly linked list, header with size and status.
func drrPaperVector() Vector {
	return Vector{
		BlockStructure: DoublyLinked,
		BlockSizes:     ManyVarSizes,
		BlockTags:      HeaderTag,
		RecordedInfo:   RecordSizeStatusPrev,
		Flex:           SplitCoalesce,
		PoolDivision:   SinglePool,
		PoolStruct:     PoolArray,
		PoolPhase:      SharedPools,
		PoolRange:      AnyRange,
		Fit:            ExactFit,
		FreeOrder:      LIFOOrder,
		MaxBlockSizes:  ManyNotFixed,
		CoalesceWhen:   Always,
		MinBlockSizes:  ManyNotFixed,
		SplitWhen:      Always,
	}
}

func TestKnownManagersValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		v    Vector
	}{
		{"lea-family", leaFamilyVector()},
		{"kingsley-family", kingsleyFamilyVector()},
		{"drr-custom (paper Sec.5)", drrPaperVector()},
	} {
		if err := Validate(&tc.v); err != nil {
			t.Errorf("%s should be valid: %v", tc.name, err)
		}
	}
}

func TestFig3InterdependencyA3A4(t *testing.T) {
	// Paper Fig. 3: choosing "none" in Block tags prohibits the Block
	// recorded info tree.
	v := kingsleyFamilyVector()
	v.BlockTags = NoTags
	v.RecordedInfo = RecordSize
	if err := Validate(&v); err == nil {
		t.Error("A3=none with A4=size validated; Fig. 3 forbids it")
	}
	v.RecordedInfo = RecordNone
	// Still invalid: Kingsley's free list needs sizes... actually with
	// implicit per-pool sizes, no-tag blocks are coherent.
	if err := Validate(&v); err != nil {
		t.Errorf("A3=none with A4=none should validate for fixed-size pools: %v", err)
	}
}

func TestFig4OrderExampleConstraint(t *testing.T) {
	// Paper Fig. 4 / Sec. 4.2: with A3=none decided first, the only
	// coherent D2/E2 leaf is "never".
	v := Vector{}
	v.Set(A3BlockTags, NoTags)
	var d Decided
	d[A3BlockTags] = true
	got := Allowed(D2CoalesceWhen, v, d)
	if len(got) != 1 || got[0] != Never {
		t.Errorf("Allowed(D2 | A3=none) = %v, want [never]", got)
	}
	got = Allowed(E2SplitWhen, v, d)
	if len(got) != 1 || got[0] != Never {
		t.Errorf("Allowed(E2 | A3=none) = %v, want [never]", got)
	}
}

func TestSplitWithoutSizeInfoInvalid(t *testing.T) {
	v := drrPaperVector()
	v.RecordedInfo = RecordNone
	if err := Validate(&v); err == nil {
		t.Error("split+coalesce without recorded size validated")
	}
}

func TestCoalesceNeedsBackwardInfo(t *testing.T) {
	v := drrPaperVector()
	v.BlockTags = HeaderTag
	v.RecordedInfo = RecordSizeStatus // no prev-size, no footer
	if err := Validate(&v); err == nil {
		t.Error("coalescing without footers or prev-size validated")
	}
	v.RecordedInfo = RecordSizeStatusPrev
	if err := Validate(&v); err != nil {
		t.Errorf("coalescing with prev-size field should validate: %v", err)
	}
	v.RecordedInfo = RecordSizeStatus
	v.BlockTags = HeaderFooter
	if err := Validate(&v); err != nil {
		t.Errorf("coalescing with footers should validate: %v", err)
	}
}

func TestOneBlockSizeDisablesFlex(t *testing.T) {
	v := kingsleyFamilyVector()
	v.BlockSizes = OneBlockSize
	v.PoolRange = FixedSizePerPool
	if err := Validate(&v); err != nil {
		t.Fatalf("fixed-size base vector invalid: %v", err)
	}
	v.Flex = SplitCoalesce
	if err := Validate(&v); err == nil {
		t.Error("one block size with split+coalesce validated")
	}
}

func TestAllowedNeverEmptyAlongOrder(t *testing.T) {
	// Following the paper's order with constraint propagation must never
	// paint the walk into a corner: at every step at least one leaf of
	// the next tree is allowed. Randomized over many walks.
	rng := rand.New(rand.NewSource(42))
	for walk := 0; walk < 200; walk++ {
		var v Vector
		var d Decided
		for _, tree := range Order {
			leaves := Allowed(tree, v, d)
			if len(leaves) == 0 {
				t.Fatalf("walk %d: no allowed leaf for %v after %v", walk, tree, DescribeWalk(v))
			}
			v.Set(tree, leaves[rng.Intn(len(leaves))])
			d[tree] = true
		}
		if err := Validate(&v); err != nil {
			t.Fatalf("walk %d produced invalid vector: %v\n%v", walk, err, v)
		}
	}
}

func TestEnumerateAllValid(t *testing.T) {
	n := Enumerate(func(v Vector) bool {
		if err := Validate(&v); err != nil {
			t.Fatalf("Enumerate yielded invalid vector: %v", err)
		}
		return true
	})
	if n == 0 {
		t.Fatal("Enumerate found no valid vectors")
	}
	t.Logf("valid design space size: %d", n)
	// The space must be large enough to contain the general-purpose
	// managers and the paper's custom ones, yet far smaller than the
	// unconstrained cross product.
	total := 1
	for i := 0; i < NumTrees; i++ {
		total *= LeafCount(Tree(i))
	}
	if n >= total {
		t.Errorf("enumeration (%d) not pruned below cross product (%d)", n, total)
	}
	if n < 100 {
		t.Errorf("valid space suspiciously small: %d", n)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	count := 0
	n := Enumerate(func(Vector) bool {
		count++
		return count < 5
	})
	if n != 5 || count != 5 {
		t.Errorf("early stop visited %d/%d vectors, want 5/5", count, n)
	}
}

func TestEnumerateContainsKnownManagers(t *testing.T) {
	want := map[string]Vector{
		"lea":      leaFamilyVector(),
		"kingsley": kingsleyFamilyVector(),
		"drr":      drrPaperVector(),
	}
	found := map[string]bool{}
	Enumerate(func(v Vector) bool {
		for name, w := range want {
			if v == w {
				found[name] = true
			}
		}
		return true
	})
	for name := range want {
		if !found[name] {
			t.Errorf("enumeration does not contain the %s vector", name)
		}
	}
}

func TestGetSetRoundTrip(t *testing.T) {
	var v Vector
	for i := 0; i < NumTrees; i++ {
		tree := Tree(i)
		for l := 0; l < LeafCount(tree); l++ {
			v.Set(tree, Leaf(l))
			if got := v.Get(tree); got != Leaf(l) {
				t.Errorf("%v: Get after Set(%d) = %d", tree, l, got)
			}
		}
	}
}

func TestOrderMatchesPaper(t *testing.T) {
	// Sec. 4.2: A2->A5->E2->D2->E1->D1->B4->B1->...->C1->...->A1->A3->A4.
	wantPrefix := []Tree{A2BlockSizes, A5FlexBlockSize, E2SplitWhen, D2CoalesceWhen, E1MinBlockSizes, D1MaxBlockSizes, B4PoolRange, B1PoolDivision}
	for i, w := range wantPrefix {
		if Order[i] != w {
			t.Fatalf("Order[%d] = %v, want %v", i, Order[i], w)
		}
	}
	// The published suffix must appear in relative order.
	rest := []Tree{C1Fit, A1BlockStructure, A3BlockTags, A4RecordedInfo}
	idx := func(t Tree) int {
		for i, o := range Order {
			if o == t {
				return i
			}
		}
		return -1
	}
	for i := 1; i < len(rest); i++ {
		if idx(rest[i-1]) >= idx(rest[i]) {
			t.Errorf("order of %v and %v disagrees with the paper", rest[i-1], rest[i])
		}
	}
	if len(Order) != NumTrees {
		t.Errorf("Order covers %d trees, want %d", len(Order), NumTrees)
	}
}

func TestNamesAndStrings(t *testing.T) {
	for i := 0; i < NumTrees; i++ {
		tree := Tree(i)
		if strings.Contains(tree.String(), "Tree(") {
			t.Errorf("tree %d has no name", i)
		}
		if LeafCount(tree) < 2 {
			t.Errorf("%v has fewer than 2 leaves", tree)
		}
		for l := 0; l < LeafCount(tree); l++ {
			if strings.Contains(LeafName(tree, Leaf(l)), "leaf(") {
				t.Errorf("%v leaf %d has no name", tree, l)
			}
		}
	}
	v := drrPaperVector()
	s := v.String()
	for _, frag := range []string{"A2=many-variable", "C1=exact", "D2=always", "E2=always"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Vector.String() missing %q: %s", frag, s)
		}
	}
}

func TestExplainListsAllViolations(t *testing.T) {
	v := drrPaperVector()
	v.BlockTags = NoTags
	v.RecordedInfo = RecordNone
	msgs := Explain(&v)
	if len(msgs) < 2 {
		t.Errorf("Explain found %d violations, want >=2: %v", len(msgs), msgs)
	}
}

package search

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"dmmkit/internal/dspace"
)

// Snapshotter is the checkpoint extension of Strategy: a strategy that
// can serialize its complete exploration state between generations and
// later restore it into a freshly constructed value, so an interrupted
// exploration resumes bit-identically.
//
// The contract mirrors the engine's generation barrier: Snapshot is only
// valid between generations (after Observe, before the next Next) and
// fails mid-generation; Restore must be called on a strategy built with
// the identical constructor arguments (seed and config) as the one that
// produced the snapshot — the snapshot carries the strategy kind and
// seed and Restore rejects mismatches, but the config is the caller's
// responsibility (the checkpoint file's metadata guards it at the CLI
// layer). After Restore, the strategy proposes exactly the generations
// the snapshotted strategy would have proposed next.
//
// All strategies of this package (Exhaustive, GA, NSGA) implement it.
type Snapshotter interface {
	// Snapshot serializes the strategy's state. It fails when called
	// mid-generation (between Next and Observe).
	Snapshot() ([]byte, error)
	// Restore replaces the strategy's state with a snapshot taken from a
	// strategy of the same kind, seed and config. It fails — without
	// corrupting the receiver — on malformed data or a kind/seed
	// mismatch; it never panics, whatever the input.
	Restore(data []byte) error
}

// countedSource wraps the stdlib PRNG stream behind a draw counter so a
// strategy can record its exact position in the stream (seed + draws
// consumed) and a restored strategy can fast-forward to that position.
//
// It deliberately implements only rand.Source (Int63), not Source64:
// rand.Rand prefers Uint64 when the source offers it, and hiding it pins
// every derived draw (Intn, Float64) to the Int63 path, which is what
// makes the draw count an exact replay cursor. The Int63 values are the
// ones rand.NewSource yields, so seeded runs reproduce the streams of
// earlier releases unchanged.
type countedSource struct {
	src  rand.Source
	seed int64
	n    uint64
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed), seed: seed}
}

func (s *countedSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countedSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed, s.n = seed, 0
}

// reset rewinds the stream to its seed and fast-forwards n draws.
func (s *countedSource) reset(n uint64) {
	s.src.Seed(s.seed)
	s.n = 0
	for s.n < n {
		s.Int63()
	}
}

// vectorState is the wire form of a dspace.Vector: one leaf index per
// tree, in tree order.
type vectorState [dspace.NumTrees]uint8

func vectorToState(v dspace.Vector) vectorState {
	var s vectorState
	for t := 0; t < dspace.NumTrees; t++ {
		s[t] = uint8(v.Get(dspace.Tree(t)))
	}
	return s
}

// vector decodes the wire form, rejecting out-of-range leaves so a
// forged snapshot cannot smuggle an invalid genome into a search.
func (s vectorState) vector() (dspace.Vector, error) {
	var v dspace.Vector
	for t := 0; t < dspace.NumTrees; t++ {
		if int(s[t]) >= dspace.LeafCount(dspace.Tree(t)) {
			return v, fmt.Errorf("search: tree %v has no leaf %d", dspace.Tree(t), s[t])
		}
		v.Set(dspace.Tree(t), dspace.Leaf(s[t]))
	}
	return v, nil
}

// resultState is the wire form of a Result.
type resultState struct {
	Vector    vectorState `json:"v"`
	Footprint int64       `json:"f"`
	Work      int64       `json:"w"`
	Failed    bool        `json:"x,omitempty"`
}

func resultToState(r Result) resultState {
	return resultState{Vector: vectorToState(r.Vector), Footprint: r.Footprint, Work: r.Work, Failed: r.Failed}
}

func (s resultState) result() (Result, error) {
	v, err := s.Vector.vector()
	if err != nil {
		return Result{}, err
	}
	return Result{Vector: v, Footprint: s.Footprint, Work: s.Work, Failed: s.Failed}, nil
}

func resultsToState(rs []Result) []resultState {
	out := make([]resultState, len(rs))
	for i, r := range rs {
		out[i] = resultToState(r)
	}
	return out
}

func resultsFromState(ss []resultState) ([]Result, error) {
	out := make([]Result, len(ss))
	for i, s := range ss {
		r, err := s.result()
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// evaluatedToState serializes the fitness cache sorted by genome, so the
// snapshot bytes are deterministic for a given state (map iteration
// order never leaks into the file).
func evaluatedToState(m map[dspace.Vector]Result) []resultState {
	out := make([]resultState, 0, len(m))
	for _, r := range m {
		out = append(out, resultToState(r))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Vector, out[j].Vector
		for t := range a {
			if a[t] != b[t] {
				return a[t] < b[t]
			}
		}
		return false
	})
	return out
}

// geneticSnapshot is the serialized state shared by GA and NSGA; Kind
// discriminates the two (and Front travels only with NSGA).
type geneticSnapshot struct {
	Kind      string        `json:"kind"`
	Seed      int64         `json:"seed"`
	Draws     uint64        `json:"draws"`
	Evaluated []resultState `json:"evaluated"`
	Pop       []resultState `json:"pop"`
	Front     []resultState `json:"front,omitempty"`
	Gen       int           `json:"gen"`
	Stale     int           `json:"stale"`
	Best      *resultState  `json:"best,omitempty"`
	Exhausted bool          `json:"exhausted,omitempty"`
	Done      bool          `json:"done,omitempty"`
}

// decodeGenetic parses and validates a genetic snapshot against the
// restoring strategy's kind and seed.
func decodeGenetic(data []byte, kind string, seed int64) (*geneticSnapshot, error) {
	var snap geneticSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("search: decoding %s snapshot: %w", kind, err)
	}
	if snap.Kind != kind {
		return nil, fmt.Errorf("search: snapshot is from a %q strategy, restoring into %q", snap.Kind, kind)
	}
	if snap.Seed != seed {
		return nil, fmt.Errorf("search: snapshot was seeded with %d, strategy with %d", snap.Seed, seed)
	}
	return &snap, nil
}

// Snapshot implements Snapshotter: it serializes the GA's complete state
// (RNG position, fitness cache, scored population, convergence counters)
// between generations.
func (g *GA) Snapshot() ([]byte, error) {
	if g.current != nil {
		return nil, fmt.Errorf("search: GA snapshot mid-generation (call between Observe and Next)")
	}
	snap := geneticSnapshot{
		Kind:      "ga",
		Seed:      g.src.seed,
		Draws:     g.src.n,
		Evaluated: evaluatedToState(g.evaluated),
		Pop:       resultsToState(g.pop),
		Gen:       g.gen,
		Stale:     g.stale,
		Exhausted: g.exhausted,
		Done:      g.done,
	}
	if g.haveBest {
		b := resultToState(g.best)
		snap.Best = &b
	}
	return json.Marshal(snap)
}

// Restore implements Snapshotter. The receiver must have been built with
// NewGA using the snapshot's seed and the original config.
func (g *GA) Restore(data []byte) error {
	snap, err := decodeGenetic(data, "ga", g.src.seed)
	if err != nil {
		return err
	}
	evaluated := make(map[dspace.Vector]Result, len(snap.Evaluated))
	for _, s := range snap.Evaluated {
		r, err := s.result()
		if err != nil {
			return err
		}
		evaluated[r.Vector] = r
	}
	pop, err := resultsFromState(snap.Pop)
	if err != nil {
		return err
	}
	var best Result
	if snap.Best != nil {
		if best, err = snap.Best.result(); err != nil {
			return err
		}
	}
	g.src.reset(snap.Draws)
	g.evaluated = evaluated
	g.pop = pop
	g.current, g.pending = nil, nil
	g.gen = snap.Gen
	g.stale = snap.Stale
	g.best, g.haveBest = best, snap.Best != nil
	g.exhausted = snap.Exhausted
	g.done = snap.Done
	return nil
}

// Snapshot implements Snapshotter: NSGA state is the GA's plus the
// archive Pareto front (which must round-trip as a sequence — its
// first-seen tie-breaks depend on insertion history, so it cannot be
// rebuilt from the unordered fitness cache).
func (n *NSGA) Snapshot() ([]byte, error) {
	if n.current != nil {
		return nil, fmt.Errorf("search: NSGA snapshot mid-generation (call between Observe and Next)")
	}
	snap := geneticSnapshot{
		Kind:      "nsga",
		Seed:      n.src.seed,
		Draws:     n.src.n,
		Evaluated: evaluatedToState(n.evaluated),
		Pop:       resultsToState(n.pop),
		Front:     resultsToState(n.front.Results()),
		Gen:       n.gen,
		Stale:     n.stale,
		Exhausted: n.exhausted,
		Done:      n.done,
	}
	return json.Marshal(snap)
}

// Restore implements Snapshotter. The receiver must have been built with
// NewNSGA using the snapshot's seed and the original config.
func (n *NSGA) Restore(data []byte) error {
	snap, err := decodeGenetic(data, "nsga", n.src.seed)
	if err != nil {
		return err
	}
	evaluated := make(map[dspace.Vector]Result, len(snap.Evaluated))
	for _, s := range snap.Evaluated {
		r, err := s.result()
		if err != nil {
			return err
		}
		evaluated[r.Vector] = r
	}
	pop, err := resultsFromState(snap.Pop)
	if err != nil {
		return err
	}
	frontResults, err := resultsFromState(snap.Front)
	if err != nil {
		return err
	}
	var front ParetoFront
	for _, r := range frontResults {
		front.Add(r)
	}
	n.src.reset(snap.Draws)
	n.evaluated = evaluated
	n.pop = pop
	n.front = front
	n.current, n.pending = nil, nil
	n.gen = snap.Gen
	n.stale = snap.Stale
	n.exhausted = snap.Exhausted
	n.done = snap.Done
	return nil
}

// exhaustiveSnapshot is the serialized state of Exhaustive: whether the
// single sample generation was already proposed.
type exhaustiveSnapshot struct {
	Kind     string `json:"kind"`
	Proposed bool   `json:"proposed"`
}

// Snapshot implements Snapshotter.
func (e *Exhaustive) Snapshot() ([]byte, error) {
	return json.Marshal(exhaustiveSnapshot{Kind: "exhaustive", Proposed: e.proposed})
}

// Restore implements Snapshotter.
func (e *Exhaustive) Restore(data []byte) error {
	var snap exhaustiveSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("search: decoding exhaustive snapshot: %w", err)
	}
	if snap.Kind != "exhaustive" {
		return fmt.Errorf("search: snapshot is from a %q strategy, restoring into %q", snap.Kind, "exhaustive")
	}
	e.proposed = snap.Proposed
	return nil
}

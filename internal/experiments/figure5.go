package experiments

import (
	"fmt"
	"io"

	"dmmkit/internal/profile"
	"dmmkit/internal/textplot"
	"dmmkit/internal/trace"
)

// Figure5Result holds the footprint-over-time curves of Lea and the
// custom manager on one DRR run (Figure 5 of the paper).
type Figure5Result struct {
	TraceName string
	Events    int
	Lea       []trace.Point
	Custom    []trace.Point
	Live      []trace.Point // the application's requested bytes, for reference
}

// RunFigure5 replays one DRR trace with footprint sampling on Lea and the
// methodology-designed custom manager.
func RunFigure5(seed int64, quick bool) (*Figure5Result, error) {
	tr, err := BuildWorkloadTrace(WorkloadDRR, seed, quick)
	if err != nil {
		return nil, err
	}
	prof := profile.FromTrace(tr)
	every := len(tr.Events) / 400
	if every < 1 {
		every = 1
	}
	res := &Figure5Result{TraceName: tr.Name, Events: len(tr.Events)}

	leaMgr, err := NewManager(MgrLea, prof)
	if err != nil {
		return nil, err
	}
	leaRun, err := trace.Run(leaMgr, tr, trace.RunOpts{SampleEvery: every})
	if err != nil {
		return nil, err
	}
	res.Lea = leaRun.Series

	customMgr, err := NewManager(MgrCustom, prof)
	if err != nil {
		return nil, err
	}
	customRun, err := trace.Run(customMgr, tr, trace.RunOpts{SampleEvery: every})
	if err != nil {
		return nil, err
	}
	res.Custom = customRun.Series
	for _, p := range customRun.Series {
		res.Live = append(res.Live, trace.Point{Index: p.Index, Tick: p.Tick, Footprint: p.Live})
	}
	return res, nil
}

// WriteCSV emits the three curves as CSV (event index, tick, bytes).
func (f *Figure5Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "event,tick,lea_footprint,custom_footprint,live_bytes"); err != nil {
		return err
	}
	n := len(f.Lea)
	if len(f.Custom) < n {
		n = len(f.Custom)
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n",
			f.Lea[i].Index, f.Lea[i].Tick, f.Lea[i].Footprint, f.Custom[i].Footprint, f.Custom[i].Live); err != nil {
			return err
		}
	}
	return nil
}

// Chart renders the curves as an ASCII chart (the cmd-line Figure 5).
func (f *Figure5Result) Chart(width, height int) string {
	toSeries := func(name string, pts []trace.Point) textplot.Series {
		s := textplot.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, float64(p.Index))
			s.Y = append(s.Y, float64(p.Footprint))
		}
		return s
	}
	return textplot.Plot(width, height,
		toSeries("Lea footprint", f.Lea),
		toSeries("custom DM manager footprint", f.Custom),
		toSeries("live bytes (lower bound)", f.Live),
	)
}

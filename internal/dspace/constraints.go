package dspace

import (
	"fmt"
	"strings"
)

// Rule is one interdependency between orthogonal trees (a full arrow in
// Fig. 2 of the paper). A rule fires only when every tree it references has
// been decided; Bad returns a non-empty explanation when the combination is
// incoherent.
type Rule struct {
	Name string
	Refs []Tree
	Bad  func(v *Vector) string
}

// Rules is the interdependency set implemented by this reproduction. The
// first two rules are the paper's worked example (Fig. 3): choosing "none"
// in the Block tags tree prohibits recording any information, and recorded
// information needs tags to live in.
var Rules = []Rule{
	{
		Name: "A3:none disables A4",
		Refs: []Tree{A3BlockTags, A4RecordedInfo},
		Bad: func(v *Vector) string {
			if v.BlockTags == NoTags && v.RecordedInfo != RecordNone {
				return "no space reserved by A3=none, yet A4 records information"
			}
			return ""
		},
	},
	{
		Name: "A3 tags need recorded size",
		Refs: []Tree{A3BlockTags, A4RecordedInfo},
		Bad: func(v *Vector) string {
			if v.BlockTags != NoTags && !a4HasSize(v.RecordedInfo) {
				return "tags reserved by A3 but A4 records no size to put in them"
			}
			return ""
		},
	},
	{
		Name: "A2:one-size disables A5",
		Refs: []Tree{A2BlockSizes, A5FlexBlockSize},
		Bad: func(v *Vector) string {
			if v.BlockSizes == OneBlockSize && v.Flex != NoFlex {
				return "a single fixed block size leaves nothing to split or coalesce"
			}
			return ""
		},
	},
	{
		Name: "A5 gates E2 splitting",
		Refs: []Tree{A5FlexBlockSize, E2SplitWhen},
		Bad: func(v *Vector) string {
			canSplit := v.Flex == SplitOnly || v.Flex == SplitCoalesce
			if !canSplit && v.SplitWhen != Never {
				return "E2 schedules splitting but A5 provides no splitting mechanism"
			}
			if canSplit && v.SplitWhen == Never {
				return "A5 provides splitting but E2 never uses it"
			}
			return ""
		},
	},
	{
		Name: "A5 gates D2 coalescing",
		Refs: []Tree{A5FlexBlockSize, D2CoalesceWhen},
		Bad: func(v *Vector) string {
			canCoal := v.Flex == CoalesceOnly || v.Flex == SplitCoalesce
			if !canCoal && v.CoalesceWhen != Never {
				return "D2 schedules coalescing but A5 provides no coalescing mechanism"
			}
			if canCoal && v.CoalesceWhen == Never {
				return "A5 provides coalescing but D2 never uses it"
			}
			return ""
		},
	},
	{
		Name: "splitting needs recorded size",
		Refs: []Tree{E2SplitWhen, A4RecordedInfo},
		Bad: func(v *Vector) string {
			if v.SplitWhen != Never && !a4HasSize(v.RecordedInfo) {
				return "a block cannot be split without storing its size (paper Sec. 4.2 example)"
			}
			return ""
		},
	},
	{
		Name: "coalescing needs status and boundary info",
		Refs: []Tree{D2CoalesceWhen, A3BlockTags, A4RecordedInfo},
		Bad: func(v *Vector) string {
			if v.CoalesceWhen == Never {
				return ""
			}
			if v.RecordedInfo < RecordSizeStatus {
				return "coalescing must know neighbour status, but A4 records no status"
			}
			if v.BlockTags != HeaderFooter && v.RecordedInfo != RecordSizeStatusPrev {
				return "backward coalescing needs footers (A3) or a prev-size field (A4)"
			}
			return ""
		},
	},
	{
		Name: "D2:never degenerates D1",
		Refs: []Tree{D2CoalesceWhen, D1MaxBlockSizes},
		Bad: func(v *Vector) string {
			if v.CoalesceWhen == Never && v.MaxBlockSizes != OneResultSize {
				return "no coalescing, so the max-block-size tree is degenerate"
			}
			return ""
		},
	},
	{
		Name: "E2:never degenerates E1",
		Refs: []Tree{E2SplitWhen, E1MinBlockSizes},
		Bad: func(v *Vector) string {
			if v.SplitWhen == Never && v.MinBlockSizes != OneResultSize {
				return "no splitting, so the min-block-size tree is degenerate"
			}
			return ""
		},
	},
	{
		Name: "D1:many-fixed needs fixed size set",
		Refs: []Tree{D1MaxBlockSizes, A2BlockSizes},
		Bad: func(v *Vector) string {
			if v.MaxBlockSizes == ManyFixedSet && v.BlockSizes != ManyFixedSizes {
				return "a fixed set of coalescing result sizes requires A2=many-fixed"
			}
			return ""
		},
	},
	{
		Name: "E1:many-fixed needs fixed size set",
		Refs: []Tree{E1MinBlockSizes, A2BlockSizes},
		Bad: func(v *Vector) string {
			if v.MinBlockSizes == ManyFixedSet && v.BlockSizes != ManyFixedSizes {
				return "a fixed set of splitting result sizes requires A2=many-fixed"
			}
			return ""
		},
	},
	{
		Name: "A2:one-size forces fixed-size pools",
		Refs: []Tree{A2BlockSizes, B4PoolRange},
		Bad: func(v *Vector) string {
			if v.BlockSizes == OneBlockSize && v.PoolRange != FixedSizePerPool {
				return "one global block size implies one fixed size per pool"
			}
			return ""
		},
	},
	{
		Name: "size classes imply pool division",
		Refs: []Tree{B4PoolRange, B1PoolDivision},
		Bad: func(v *Vector) string {
			classes := v.PoolRange == Pow2Classes || v.PoolRange == ExactClasses
			if classes && v.PoolDivision != PoolPerClass {
				return "size classes exist only when pools are divided per class"
			}
			if v.PoolRange == AnyRange && v.PoolDivision != SinglePool {
				return "an any-size pool cannot be divided per size class"
			}
			return ""
		},
	},
	{
		Name: "fixed-size pools with many sizes imply division",
		Refs: []Tree{B4PoolRange, A2BlockSizes, B1PoolDivision},
		Bad: func(v *Vector) string {
			if v.PoolRange == FixedSizePerPool && v.BlockSizes != OneBlockSize && v.PoolDivision != PoolPerClass {
				return "several block sizes with one size per pool require one pool per size"
			}
			return ""
		},
	},
	// The next two rules are implied by the tag/info rules above but are
	// stated directly so that ordered traversal prunes A3 without waiting
	// for A4 (keeping the walk iteration-free, as Sec. 3.1 requires).
	{
		Name: "coalescing needs tags",
		Refs: []Tree{D2CoalesceWhen, A3BlockTags},
		Bad: func(v *Vector) string {
			if v.CoalesceWhen != Never && v.BlockTags == NoTags {
				return "coalescing needs per-block metadata but A3 reserves none"
			}
			return ""
		},
	},
	{
		Name: "splitting needs tags",
		Refs: []Tree{E2SplitWhen, A3BlockTags},
		Bad: func(v *Vector) string {
			if v.SplitWhen != Never && v.BlockTags == NoTags {
				return "splitting needs per-block sizes but A3 reserves no space for them"
			}
			return ""
		},
	},
	{
		Name: "size-sorted structure needs recorded size",
		Refs: []Tree{A1BlockStructure, A4RecordedInfo},
		Bad: func(v *Vector) string {
			if v.BlockStructure == SizeSorted && !a4HasSize(v.RecordedInfo) {
				return "sorting free blocks by size requires recording sizes"
			}
			return ""
		},
	},
	{
		Name: "flexible block manager needs tags",
		Refs: []Tree{A5FlexBlockSize, A3BlockTags},
		Bad: func(v *Vector) string {
			if v.Flex != NoFlex && v.BlockTags == NoTags {
				return "split/coalesce mechanisms need per-block metadata but A3 reserves none"
			}
			return ""
		},
	},
	{
		Name: "size-sorted structure needs tags",
		Refs: []Tree{A1BlockStructure, A3BlockTags},
		Bad: func(v *Vector) string {
			if v.BlockStructure == SizeSorted && v.BlockTags == NoTags {
				return "sorting free blocks by size needs recorded sizes, but A3 reserves no space"
			}
			return ""
		},
	},
	{
		Name: "coalescing needs O(1) unlink",
		Refs: []Tree{D2CoalesceWhen, A1BlockStructure},
		Bad: func(v *Vector) string {
			if v.CoalesceWhen != Never && v.BlockStructure == SinglyLinked {
				return "coalescing must unlink a neighbour; singly-linked lists cannot (paper Sec. 5: doubly linked is the simplest DDT allowing split+coalesce)"
			}
			return ""
		},
	},
}

func a4HasSize(l Leaf) bool { return l >= RecordSize }

// ConstraintError describes a violated interdependency.
type ConstraintError struct {
	Rule   string
	Reason string
}

func (e *ConstraintError) Error() string {
	return fmt.Sprintf("dspace: %s: %s", e.Rule, e.Reason)
}

// Validate checks every interdependency against a fully decided vector.
func Validate(v *Vector) error {
	for _, r := range Rules {
		if msg := r.Bad(v); msg != "" {
			return &ConstraintError{Rule: r.Name, Reason: msg}
		}
	}
	return nil
}

// Decided tracks which trees have been decided during a traversal.
type Decided [NumTrees]bool

// With returns a copy with tree t marked decided.
func (d Decided) With(t Tree) Decided { d[t] = true; return d }

// All reports whether every tree is decided.
func (d Decided) All() bool {
	for _, b := range d {
		if !b {
			return false
		}
	}
	return true
}

// Allowed returns the leaves of tree t compatible with the decisions
// already taken in v (per d). This is the paper's constraint propagation:
// once a decision is taken in one tree it restricts the coherent choices in
// later trees.
func Allowed(t Tree, v Vector, d Decided) []Leaf {
	dd := d.With(t)
	var out []Leaf
	for l := 0; l < LeafCount(t); l++ {
		v.Set(t, Leaf(l))
		ok := true
		for _, r := range Rules {
			if !refsDecided(r, dd) {
				continue
			}
			if r.Bad(&v) != "" {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, Leaf(l))
		}
	}
	return out
}

// Explain returns all violations of a fully decided vector, for diagnostics.
func Explain(v *Vector) []string {
	var out []string
	for _, r := range Rules {
		if msg := r.Bad(v); msg != "" {
			out = append(out, r.Name+": "+msg)
		}
	}
	return out
}

func refsDecided(r Rule, d Decided) bool {
	for _, t := range r.Refs {
		if !d[t] {
			return false
		}
	}
	return true
}

// Enumerate walks the valid region of the design space in the paper's
// traversal order with constraint pruning, calling fn for each fully
// decided valid vector. fn returns false to stop early. Enumerate returns
// the number of valid vectors visited.
func Enumerate(fn func(Vector) bool) int {
	var v Vector
	var d Decided
	n := 0
	stopped := false
	var rec func(i int)
	rec = func(i int) {
		if stopped {
			return
		}
		if i == len(Order) {
			if Validate(&v) == nil {
				n++
				if !fn(v) {
					stopped = true
				}
			}
			return
		}
		t := Order[i]
		for _, l := range Allowed(t, v, d) {
			v.Set(t, l)
			d[t] = true
			rec(i + 1)
			d[t] = false
		}
	}
	rec(0)
	return n
}

// DescribeWalk renders a decision walk (tree order with chosen leaf names),
// used by the explorer CLI to show how a manager was derived.
func DescribeWalk(v Vector) string {
	var b strings.Builder
	for i, t := range Order {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%c%d:%s", t.Category(), treeIndexInCategory(t), LeafName(t, v.Get(t)))
	}
	return b.String()
}

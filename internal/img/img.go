package img

import (
	"math"
	"math/rand"
)

// Gray is an 8-bit grayscale image.
type Gray struct {
	W, H int
	Pix  []byte
}

// NewGray allocates a black WxH image.
func NewGray(w, h int) *Gray {
	return &Gray{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel value at (x, y); out-of-bounds reads return 0.
func (g *Gray) At(x, y int) byte {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 0
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Bytes returns the image storage size, the number the allocators see.
func (g *Gray) Bytes() int64 { return int64(len(g.Pix)) }

// Scene parameterizes procedural frame generation.
type Scene struct {
	Seed    int64
	W, H    int     // default 640x480
	Blobs   int     // textured blobs (corner sources); default 60
	Noise   float64 // additive noise amplitude 0..1; default 0.05
	ShiftX  int     // camera displacement applied to the second frame
	ShiftY  int
	Texture float64 // blob contrast 0..1; default 0.8
}

func (s *Scene) defaults() {
	if s.W == 0 {
		s.W = 640
	}
	if s.H == 0 {
		s.H = 480
	}
	if s.Blobs == 0 {
		s.Blobs = 60
	}
	if s.Noise == 0 {
		s.Noise = 0.05
	}
	if s.Texture == 0 {
		s.Texture = 0.8
	}
}

// Render generates the frame for the scene shifted by (dx, dy) — two
// renders with different shifts emulate consecutive frames under camera
// motion ("the relative displacement between frames is used to
// reconstruct the 3rd dimension").
func (s Scene) Render(dx, dy int) *Gray {
	s.defaults()
	rng := rand.New(rand.NewSource(s.Seed))
	g := NewGray(s.W, s.H)
	// Smooth background gradient.
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			g.Pix[y*s.W+x] = byte(64 + 32*math.Sin(float64(x)/97)*math.Cos(float64(y)/71))
		}
	}
	// Textured square blobs: their corners are detectable features.
	for b := 0; b < s.Blobs; b++ {
		cx := rng.Intn(s.W-40) + 20 + dx
		cy := rng.Intn(s.H-40) + 20 + dy
		sz := rng.Intn(24) + 8
		val := byte(128 + rng.Intn(int(120*s.Texture)))
		for y := cy - sz/2; y < cy+sz/2; y++ {
			for x := cx - sz/2; x < cx+sz/2; x++ {
				g.Set(x, y, val)
			}
		}
	}
	// Pixel noise (deterministic per seed).
	nrng := rand.New(rand.NewSource(s.Seed ^ 0x9E3779B9))
	amp := int(s.Noise * 255)
	if amp > 0 {
		for i := range g.Pix {
			d := nrng.Intn(2*amp+1) - amp
			v := int(g.Pix[i]) + d
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			g.Pix[i] = byte(v)
		}
	}
	return g
}

// Corner is a detected feature point.
type Corner struct {
	X, Y     int
	Strength int32
}

// DetectCorners runs a Moravec-style corner response over the image and
// returns the features above threshold, strongest first within raster
// order. The count depends on image content — the unpredictability that
// forces dynamic memory in the original application.
func DetectCorners(g *Gray, threshold int32) []Corner {
	var out []Corner
	const step = 4 // evaluation grid; keeps the detector fast
	for y := 8; y < g.H-8; y += step {
		for x := 8; x < g.W-8; x += step {
			r := cornerResponse(g, x, y)
			if r >= threshold {
				out = append(out, Corner{X: x, Y: y, Strength: r})
			}
		}
	}
	return out
}

// cornerResponse measures intensity variation in four directions (min of
// directional SSDs, Moravec's operator).
func cornerResponse(g *Gray, x, y int) int32 {
	dirs := [4][2]int{{1, 0}, {0, 1}, {1, 1}, {1, -1}}
	min := int32(math.MaxInt32)
	for _, d := range dirs {
		var ssd int32
		for k := -3; k <= 3; k++ {
			a := int32(g.At(x+k*d[0], y+k*d[1]))
			b := int32(g.At(x+(k+1)*d[0], y+(k+1)*d[1]))
			ssd += (a - b) * (a - b)
		}
		if ssd < min {
			min = ssd
		}
	}
	return min
}

// MatchWindow bounds the displacement search during matching.
const MatchWindow = 24

// PatchDistance compares 7x7 patches around two corners in two images;
// smaller is more similar.
func PatchDistance(a *Gray, ca Corner, b *Gray, cb Corner) int64 {
	var sum int64
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			pa := int64(a.At(ca.X+dx, ca.Y+dy))
			pb := int64(b.At(cb.X+dx, cb.Y+dy))
			sum += (pa - pb) * (pa - pb)
		}
	}
	return sum
}

package heap

import (
	"math/rand"
	"testing"
)

// refU32 assembles the little-endian word byte-by-byte through Bytes —
// the reference the optimized accessors must agree with everywhere.
func refU32(h *Heap, addr Addr) uint32 {
	b := h.Bytes(addr, 4)
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// TestAccessorDifferential drives U32/PutU32 against the byte-by-byte
// reference across the sbrk region, multiple mapped segments, the hot
// segment cache (by alternating segments), and unmapping (which must
// invalidate the cache).
func TestAccessorDifferential(t *testing.T) {
	h := New(Config{})
	rng := rand.New(rand.NewSource(3))

	start, err := h.Sbrk(4096)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []Addr
	for a := start; a+4 <= h.Brk(); a += 4 {
		addrs = append(addrs, a)
	}
	var segs []Addr
	for i := 0; i < 5; i++ {
		s, err := h.Map(8192)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, s)
		sz := h.SegmentSize(s)
		for a := s; int64(a-s)+4 <= sz; a += 512 {
			addrs = append(addrs, a)
		}
	}
	written := make(map[Addr]uint32)
	for i := 0; i < 20000; i++ {
		a := addrs[rng.Intn(len(addrs))]
		if rng.Intn(2) == 0 {
			v := rng.Uint32()
			h.PutU32(a, v)
			written[a] = v
		}
		if got, want := h.U32(a), refU32(h, a); got != want {
			t.Fatalf("U32(%#x) = %#x, reference says %#x", a, got, want)
		}
		if want, ok := written[a]; ok && h.U32(a) != want {
			t.Fatalf("U32(%#x) = %#x, last write was %#x", a, h.U32(a), want)
		}
	}

	// Unmapping the cached segment must not leave a dangling cache hit.
	last := segs[2]
	h.PutU32(last, 0xDEADBEEF) // prime the hot cache on segs[2]
	if err := h.Unmap(last); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("U32 on unmapped segment did not panic")
			}
		}()
		h.U32(last)
	}()
	// The other segments must still be reachable afterwards.
	for _, s := range segs {
		if s == last {
			continue
		}
		if got, want := h.U32(s), refU32(h, s); got != want {
			t.Fatalf("post-unmap U32(%#x) = %#x, want %#x", s, got, want)
		}
	}
}

// TestAccessorBrkBoundary pins the fast-path bound: the last word below
// the break is readable, a straddling word panics with ErrBadAddress.
func TestAccessorBrkBoundary(t *testing.T) {
	h := New(Config{})
	if _, err := h.Sbrk(64); err != nil {
		t.Fatal(err)
	}
	last := h.Brk() - 4
	h.PutU32(last, 0x01020304)
	if got := h.U32(last); got != 0x01020304 {
		t.Fatalf("U32 at last word = %#x", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("straddling U32 did not panic")
		}
	}()
	h.U32(h.Brk() - 2)
}

func BenchmarkU32Sbrk(b *testing.B) {
	h := New(Config{})
	if _, err := h.Sbrk(4096); err != nil {
		b.Fatal(err)
	}
	h.PutU32(64, 42)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += h.U32(64)
	}
	_ = sink
}

func BenchmarkU32Segment(b *testing.B) {
	h := New(Config{})
	s, err := h.Map(4096)
	if err != nil {
		b.Fatal(err)
	}
	h.PutU32(s, 42)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += h.U32(s)
	}
	_ = sink
}

// Package ctxflowfix exercises the ctxflow analyzer: exported functions
// draining a caller-supplied stream must take and use a context.
package ctxflowfix

import "context"

// Event is a stand-in for the trace event record.
type Event struct{ ID int64 }

// Candidate is a stand-in for the explore result record.
type Candidate struct{ Footprint int64 }

// Source mirrors the trace.Source iterator shape.
type Source interface {
	Next() (Event, bool, error)
}

// Opener mirrors trace.Opener: one fresh pass per Open.
type Opener interface {
	Open() (Source, error)
}

// Replay drains a caller-supplied stream with no way to cancel it.
func Replay(src Source) (int, error) { // want `exported Replay consumes an event/candidate stream but has no context\.Context`
	n := 0
	for {
		_, ok, err := src.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// ReplayIgnoredCtx takes a context and then strands it.
func ReplayIgnoredCtx(ctx context.Context, src Source) (int, error) { // want `exported ReplayIgnoredCtx takes ctx but never checks or forwards it`
	n := 0
	for {
		_, ok, err := src.Next()
		if err != nil || !ok {
			return n, err
		}
		n++
	}
}

// ReplayCtx is the blessed pattern: the loop checks ctx directly.
func ReplayCtx(ctx context.Context, src Source) (int, error) {
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		_, ok, err := src.Next()
		if err != nil || !ok {
			return n, err
		}
		n++
	}
}

// ReplayForwarded is also blessed: ctx is forwarded into a wrapper that
// owns the cancellation check (the WithContext idiom).
func ReplayForwarded(ctx context.Context, op Opener) (int, error) {
	src, err := op.Open()
	if err != nil {
		return 0, err
	}
	src = withContext(ctx, src)
	n := 0
	for {
		_, ok, err := src.Next()
		if err != nil || !ok {
			return n, err
		}
		n++
	}
}

// DrainCandidates ranges a candidate channel with no cancellation.
func DrainCandidates(ch <-chan Candidate) int64 { // want `exported DrainCandidates consumes an event/candidate stream but has no context\.Context`
	var total int64
	for c := range ch {
		total += c.Footprint
	}
	return total
}

// FoldCandidates is a bounded in-memory walk over already-evaluated
// candidates: no caller-supplied stream, so no ctx is required.
func FoldCandidates(cands []Candidate) int64 {
	var total int64
	for _, c := range cands {
		total += c.Footprint
	}
	return total
}

// drain is unexported: internal helpers inherit cancellation from their
// exported callers and are not flagged.
func drain(src Source) {
	for {
		if _, ok, _ := src.Next(); !ok {
			return
		}
	}
}

type ctxSource struct {
	ctx context.Context
	src Source
}

func (c ctxSource) Next() (Event, bool, error) {
	if err := c.ctx.Err(); err != nil {
		return Event{}, false, err
	}
	return c.src.Next()
}

func withContext(ctx context.Context, src Source) Source {
	return ctxSource{ctx: ctx, src: src}
}

// Benchmarks regenerating the paper's tables and figures. Each benchmark
// replays a case-study trace against one manager; ns/op is the live
// execution-time measurement and the reported custom metrics carry the
// footprint results:
//
//   - footprint-bytes: maximum memory footprint (Table 1 cells)
//   - live-bytes: the workload's peak requested bytes (lower bound)
//   - work/op: allocator work units per trace event (perf proxy)
//
// Run with: go test -bench=. -benchmem
package dmmkit_test

import (
	"context"
	"sync"
	"testing"

	"dmmkit"
	"dmmkit/internal/experiments"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// Traces are built once (quick variants keep bench time reasonable).
var (
	traceOnce sync.Once
	benchTr   map[experiments.Workload]*trace.Trace
	benchProf map[experiments.Workload]*profile.Profile
)

func workloadTrace(b *testing.B, w experiments.Workload) (*trace.Trace, *profile.Profile) {
	b.Helper()
	traceOnce.Do(func() {
		benchTr = make(map[experiments.Workload]*trace.Trace)
		benchProf = make(map[experiments.Workload]*profile.Profile)
		for _, wl := range experiments.Workloads {
			tr, err := experiments.BuildWorkloadTrace(wl, 1, true)
			if err != nil {
				panic(err)
			}
			benchTr[wl] = tr
			benchProf[wl] = profile.FromTrace(tr)
		}
	})
	return benchTr[w], benchProf[w]
}

// benchReplay is the common body: one iteration = one full trace replay.
func benchReplay(b *testing.B, w experiments.Workload, m experiments.ManagerName) {
	b.Helper()
	tr, prof := workloadTrace(b, w)
	var last trace.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr, err := experiments.NewManager(m, prof)
		if err != nil {
			b.Fatal(err)
		}
		last, err = trace.Run(context.Background(), mgr, tr, trace.RunOpts{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(last.MaxFootprint), "footprint-bytes")
	b.ReportMetric(float64(last.MaxLive), "live-bytes")
	b.ReportMetric(float64(last.Work)/float64(last.Events), "work/op")
}

// Table 1, column 1: DRR scheduler.

func BenchmarkTable1_DRR_Kingsley(b *testing.B) {
	benchReplay(b, experiments.WorkloadDRR, experiments.MgrKingsley)
}
func BenchmarkTable1_DRR_Lea(b *testing.B) {
	benchReplay(b, experiments.WorkloadDRR, experiments.MgrLea)
}
func BenchmarkTable1_DRR_Regions(b *testing.B) {
	benchReplay(b, experiments.WorkloadDRR, experiments.MgrRegions)
}
func BenchmarkTable1_DRR_Obstacks(b *testing.B) {
	benchReplay(b, experiments.WorkloadDRR, experiments.MgrObstacks)
}
func BenchmarkTable1_DRR_Custom(b *testing.B) {
	benchReplay(b, experiments.WorkloadDRR, experiments.MgrCustom)
}

// Table 1, column 2: 3D image reconstruction.

func BenchmarkTable1_Recon3D_Kingsley(b *testing.B) {
	benchReplay(b, experiments.WorkloadRecon, experiments.MgrKingsley)
}
func BenchmarkTable1_Recon3D_Lea(b *testing.B) {
	benchReplay(b, experiments.WorkloadRecon, experiments.MgrLea)
}
func BenchmarkTable1_Recon3D_Regions(b *testing.B) {
	benchReplay(b, experiments.WorkloadRecon, experiments.MgrRegions)
}
func BenchmarkTable1_Recon3D_Obstacks(b *testing.B) {
	benchReplay(b, experiments.WorkloadRecon, experiments.MgrObstacks)
}
func BenchmarkTable1_Recon3D_Custom(b *testing.B) {
	benchReplay(b, experiments.WorkloadRecon, experiments.MgrCustom)
}

// Table 1, column 3: 3D scalable rendering.

func BenchmarkTable1_Render3D_Kingsley(b *testing.B) {
	benchReplay(b, experiments.WorkloadRender, experiments.MgrKingsley)
}
func BenchmarkTable1_Render3D_Lea(b *testing.B) {
	benchReplay(b, experiments.WorkloadRender, experiments.MgrLea)
}
func BenchmarkTable1_Render3D_Regions(b *testing.B) {
	benchReplay(b, experiments.WorkloadRender, experiments.MgrRegions)
}
func BenchmarkTable1_Render3D_Obstacks(b *testing.B) {
	benchReplay(b, experiments.WorkloadRender, experiments.MgrObstacks)
}
func BenchmarkTable1_Render3D_Custom(b *testing.B) {
	benchReplay(b, experiments.WorkloadRender, experiments.MgrCustom)
}

// Figure 5: DRR footprint-over-time series (Lea vs custom with sampling).
func BenchmarkFigure5_Series(b *testing.B) {
	var res *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure5(context.Background(), experiments.Config{Quick: true}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Lea) == 0 || len(res.Custom) == 0 {
		b.Fatal("empty series")
	}
	b.ReportMetric(float64(res.Lea[len(res.Lea)-1].Footprint), "lea-final-bytes")
	b.ReportMetric(float64(res.Custom[len(res.Custom)-1].Footprint), "custom-final-bytes")
}

// Sec. 5 execution-time claim: custom vs Kingsley at the application
// level (~10% in the paper).
func BenchmarkPerf_Overhead(b *testing.B) {
	var prs []experiments.PerfResult
	for i := 0; i < b.N; i++ {
		var err error
		prs, err = experiments.RunPerf(context.Background(), experiments.Config{Seeds: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, pr := range prs {
		sum += pr.AppOverhead
	}
	b.ReportMetric(100*sum/float64(len(prs)), "app-overhead-%")
}

// Figure 4 ablation: the paper's decision order vs deciding block tags
// first.
func BenchmarkFig4_OrderAblation(b *testing.B) {
	var res *experiments.OrderResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunOrderAblation(context.Background(), experiments.Config{Seeds: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.RightFootprint), "right-order-bytes")
	b.ReportMetric(float64(res.WrongFootprint), "wrong-order-bytes")
}

// Sec. 1 motivation: static worst-case sizing vs dynamic management.
func BenchmarkStaticVsDynamic(b *testing.B) {
	var res *experiments.StaticResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunStaticVsDynamic(context.Background(), experiments.Config{Seeds: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.StaticBytes), "static-bytes")
	b.ReportMetric(float64(res.DynamicPeak), "dynamic-bytes")
}

// Methodology speed: one full profile + tree walk + manager build.
func BenchmarkDesignerWalk(b *testing.B) {
	tr, _ := workloadTrace(b, experiments.WorkloadDRR)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profile.FromTrace(tr)
		d := dmmkit.Design(p)
		if _, err := d.Build(dmmkit.NewHeap()); err != nil {
			b.Fatal(err)
		}
	}
}

// Design-space enumeration with constraint pruning (~144k vectors).
func BenchmarkEnumerateDesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := dmmkit.EnumerateVectors(func(dmmkit.Vector) bool { return true })
		if n == 0 {
			b.Fatal("no vectors")
		}
	}
}

// Micro-benchmarks: raw alloc/free pairs per manager (per-op costs).
func benchMicro(b *testing.B, mk func() mm.Manager) {
	m := mk()
	sizes := []int64{24, 96, 552, 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := m.Alloc(mm.Request{Size: sizes[i%len(sizes)]})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_Kingsley(b *testing.B) {
	benchMicro(b, func() mm.Manager { return dmmkit.NewKingsley(dmmkit.NewHeap()) })
}

func BenchmarkMicro_Lea(b *testing.B) {
	benchMicro(b, func() mm.Manager { return dmmkit.NewLea(dmmkit.NewHeap()) })
}

func BenchmarkMicro_CustomDRRDesign(b *testing.B) {
	_, prof := workloadTrace(b, experiments.WorkloadDRR)
	benchMicro(b, func() mm.Manager {
		m, err := dmmkit.Design(prof).Build(dmmkit.NewHeap())
		if err != nil {
			b.Fatal(err)
		}
		return m
	})
}

package api_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"dmmkit/internal/cliopts"
	"dmmkit/internal/core"
	"dmmkit/internal/dspace"
	"dmmkit/internal/server/api"
	"dmmkit/internal/server/jobs"
	"dmmkit/internal/trace"
)

// testEnv is one in-process dmmserve: manager, API, httptest listener.
type testEnv struct {
	ts    *httptest.Server
	mgr   *jobs.Manager
	spool string
}

func newEnv(t *testing.T, workers int) *testEnv {
	t.Helper()
	spool := t.TempDir()
	mgr := jobs.New(jobs.Config{Workers: workers, SpoolDir: spool})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx) // idempotent; tests that shut down explicitly already checked the error
	})
	srv, err := api.New(api.Config{Manager: mgr, SpoolDir: spool})
	if err != nil {
		t.Fatalf("api.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testEnv{ts: ts, mgr: mgr, spool: spool}
}

// traceBytes builds a small deterministic DMMT2 trace in memory — the
// payload every upload test posts.
func traceBytes(t testing.TB) []byte {
	t.Helper()
	b := trace.NewBuilder("httptrace")
	var live []int64
	for i := 0; i < 240; i++ {
		if i%3 == 2 && len(live) > 0 {
			b.Free(live[0])
			live = live[1:]
		} else {
			live = append(live, b.Alloc(int64(24+(i%5)*40), i%2))
		}
		b.Tick()
	}
	for _, id := range live {
		b.Free(id)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("building trace: %v", err)
	}
	var buf bytes.Buffer
	if err := b.Build().EncodeBinary2(&buf); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	return buf.Bytes()
}

// postJSON posts v as JSON and decodes the response body into out.
func (env *testEnv) postJSON(t *testing.T, path string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(env.ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer func() { _ = resp.Body.Close() }() // test teardown: body fully read below
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading POST %s response: %v", path, err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

// upload posts raw trace bytes and returns the assigned trace ID.
func (env *testEnv) upload(t *testing.T, data []byte) string {
	t.Helper()
	resp, err := http.Post(env.ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("uploading trace: %v", err)
	}
	defer func() { _ = resp.Body.Close() }() // test teardown: body fully read below
	var up struct {
		ID     string `json:"id"`
		Name   string `json:"name"`
		Events int    `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	if up.ID == "" || up.Events == 0 {
		t.Fatalf("upload response %+v", up)
	}
	return up.ID
}

// streamEvents reads the job's NDJSON event stream to its end.
func (env *testEnv) streamEvents(t *testing.T, jobID string) []jobs.Event {
	t.Helper()
	resp, err := http.Get(env.ts.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer func() { _ = resp.Body.Close() }() // test teardown: stream read to EOF below
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	var events []jobs.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<22)
	for sc.Scan() {
		var e jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return events
}

func (env *testEnv) getJob(t *testing.T, id string) (jobs.Snapshot, int) {
	t.Helper()
	resp, err := http.Get(env.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer func() { _ = resp.Body.Close() }() // test teardown: body fully read below
	var snap jobs.Snapshot
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("decoding job %q: %v", data, err)
		}
	}
	return snap, resp.StatusCode
}

// TestLifecycleOverHTTP drives the full tentpole sequence in-process:
// upload → launch → stream → result → metrics → graceful shutdown —
// and pins the headline determinism claim: the server's result for an
// uploaded trace is byte-identical to a direct Engine.ExploreSource run
// over the same bytes with the same parameters.
func TestLifecycleOverHTTP(t *testing.T) {
	env := newEnv(t, 2)
	data := traceBytes(t)
	traceID := env.upload(t, data)

	launch := map[string]any{
		"kind":             "explore",
		"trace":            map[string]any{"id": traceID},
		"strategy":         "ga",
		"objectives":       "footprint,work",
		"search_seed":      11,
		"population":       5,
		"generations":      3,
		"budget":           12,
		"parallelism":      4,
		"include_designed": true,
	}
	var created struct {
		ID string `json:"id"`
	}
	if code := env.postJSON(t, "/v1/jobs", launch, &created); code != http.StatusAccepted {
		t.Fatalf("launch status %d", code)
	}

	events := env.streamEvents(t, created.ID)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if last := events[len(events)-1]; last.Type != "state" || last.State != jobs.StateDone {
		t.Fatalf("last event %+v, want done state", last)
	}

	snap, code := env.getJob(t, created.ID)
	if code != http.StatusOK || snap.State != jobs.StateDone || snap.Result == nil {
		t.Fatalf("job after stream: code=%d state=%s", code, snap.State)
	}

	// Reference: the same trace bytes explored directly, sequentially.
	ref, err := os.CreateTemp(t.TempDir(), "ref-*.trace")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	op, err := trace.OpenFile(ref.Name())
	if err != nil {
		t.Fatal(err)
	}
	objs, _, err := cliopts.ResolveMode("ga", "footprint,work")
	if err != nil {
		t.Fatal(err)
	}
	strat, err := cliopts.NewStrategy("ga", cliopts.SearchConfig{Seed: 11, Population: 5, Generations: 3, Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := core.NewEngine(1).ExploreSource(context.Background(), op, core.ExploreOpts{
		Strategy: strat, MaxCandidates: 12, IncludeDesigned: true, Objectives: objs,
	})
	if err != nil {
		t.Fatalf("direct explore: %v", err)
	}
	wire := make([]jobs.Candidate, len(cands))
	for i, c := range cands {
		wire[i] = jobs.WireCandidate(c)
	}
	got, _ := json.Marshal(snap.Result.Candidates)
	want, _ := json.Marshal(wire)
	if !bytes.Equal(got, want) {
		t.Errorf("server result differs from direct engine:\nserver: %s\ndirect: %s", got, want)
	}
	var streamed []jobs.Candidate
	for _, e := range events {
		if e.Type == "candidate" {
			streamed = append(streamed, *e.Candidate)
		}
	}
	gotStream, _ := json.Marshal(streamed)
	if !bytes.Equal(gotStream, want) {
		t.Errorf("streamed candidates differ from direct engine:\nserver: %s\ndirect: %s", gotStream, want)
	}

	// Metrics reflect the work.
	resp, err := http.Get(env.ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var ms struct {
		Jobs jobs.MetricsSnapshot `json:"jobs"`
		HTTP struct {
			WindowCount int64 `json:"window_count"`
		} `json:"http"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	_ = resp.Body.Close() // test teardown: body fully decoded above
	if ms.Jobs.Done != 1 || ms.Jobs.Submitted != 1 || ms.HTTP.WindowCount == 0 {
		t.Errorf("metrics = %+v", ms)
	}

	// Registry discovery.
	resp, err = http.Get(env.ts.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		Strategies []string `json:"strategies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatalf("decoding registry: %v", err)
	}
	_ = resp.Body.Close() // test teardown: body fully decoded above
	if strings.Join(reg.Strategies, ",") != strings.Join(cliopts.ValidStrategies, ",") {
		t.Errorf("registry strategies = %v", reg.Strategies)
	}

	// Graceful shutdown: draining refuses new jobs with 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := env.mgr.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := env.postJSON(t, "/v1/jobs", launch, nil); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", code)
	}
}

// TestUploadRejectsCorruptAndLeavesNoPartials pins the upload
// contract: bad magic, truncation and CRC damage answer 400, and the
// spool never accumulates partial files.
func TestUploadRejectsCorruptAndLeavesNoPartials(t *testing.T) {
	env := newEnv(t, 1)
	valid := traceBytes(t)

	truncated := valid[:len(valid)-3]
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40
	for name, bad := range map[string][]byte{
		"empty":     {},
		"garbage":   []byte("not a trace at all"),
		"magic":     []byte("DMMT2\n"),
		"truncated": truncated,
		"crc":       flipped,
	} {
		resp, err := http.Post(env.ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(bad))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close() // test teardown: body fully read above
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s upload: status %d (%s), want 400", name, resp.StatusCode, body)
		}
	}

	ents, err := os.ReadDir(env.spool)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Errorf("spool not empty after rejected uploads: %s", e.Name())
	}

	// And a valid upload still lands.
	env.upload(t, valid)
}

// TestJobValidationOverHTTP pins the 4xx mapping and the CLI-identical
// messages at the HTTP boundary.
func TestJobValidationOverHTTP(t *testing.T) {
	env := newEnv(t, 1)
	traceID := env.upload(t, traceBytes(t))

	var apiErr struct {
		Error string `json:"error"`
	}
	code := env.postJSON(t, "/v1/jobs", map[string]any{
		"kind": "explore", "trace": map[string]any{"id": traceID}, "strategy": "genetic",
	}, &apiErr)
	_, _, wantErr := cliopts.ResolveMode("genetic", "")
	if code != http.StatusBadRequest || apiErr.Error != wantErr.Error() {
		t.Errorf("bad strategy: code=%d error=%q, want 400 %q", code, apiErr.Error, wantErr)
	}

	code = env.postJSON(t, "/v1/jobs", map[string]any{
		"kind": "explore", "trace": map[string]any{"id": "deadbeef-0000-4000-8000-feedfacecafe"}, "strategy": "ga",
	}, &apiErr)
	if code != http.StatusNotFound {
		t.Errorf("unknown trace: code=%d, want 404", code)
	}

	code = env.postJSON(t, "/v1/jobs", map[string]any{
		"kind": "explore", "trace": map[string]any{"id": "../../etc/passwd"}, "strategy": "ga",
	}, &apiErr)
	if code != http.StatusBadRequest {
		t.Errorf("traversal trace id: code=%d, want 400", code)
	}

	resp, err := http.Post(env.ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close() // test teardown: only the status matters
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: code=%d, want 400", resp.StatusCode)
	}

	if _, code := env.getJob(t, "missing"); code != http.StatusNotFound {
		t.Errorf("GET unknown job: code=%d, want 404", code)
	}
}

// TestDeleteMidRunReturnsPrefix cancels a running job over HTTP and
// expects the streamed prefix plus a cancelled terminal event.
func TestDeleteMidRunReturnsPrefix(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	restore := core.SetEvalHook(func(v dspace.Vector, designed bool) {
		once.Do(func() { close(started) })
		<-gate
	})
	defer restore()

	env := newEnv(t, 1)
	traceID := env.upload(t, traceBytes(t))
	var created struct {
		ID string `json:"id"`
	}
	code := env.postJSON(t, "/v1/jobs", map[string]any{
		"kind": "explore", "trace": map[string]any{"id": traceID},
		"strategy": "exhaustive", "budget": 8, "parallelism": 1,
	}, &created)
	if code != http.StatusAccepted {
		t.Fatalf("launch status %d", code)
	}
	<-started

	req, err := http.NewRequest(http.MethodDelete, env.ts.URL+"/v1/jobs/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	_ = resp.Body.Close() // test teardown: only the status matters
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	close(gate)

	events := env.streamEvents(t, created.ID)
	last := events[len(events)-1]
	if last.Type != "state" || last.State != jobs.StateCancelled {
		t.Fatalf("last event %+v, want cancelled", last)
	}
	snap, _ := env.getJob(t, created.ID)
	if snap.State != jobs.StateCancelled {
		t.Errorf("job state %s, want cancelled", snap.State)
	}
	if snap.Result != nil && len(snap.Result.Candidates) >= 8 {
		t.Errorf("cancelled job returned all %d candidates", len(snap.Result.Candidates))
	}
}

// TestEventsSSE checks the Accept-negotiated SSE framing.
func TestEventsSSE(t *testing.T) {
	env := newEnv(t, 1)
	traceID := env.upload(t, traceBytes(t))
	var created struct {
		ID string `json:"id"`
	}
	if code := env.postJSON(t, "/v1/jobs", map[string]any{
		"kind": "profile", "trace": map[string]any{"id": traceID},
	}, &created); code != http.StatusAccepted {
		t.Fatalf("launch status %d", code)
	}

	req, err := http.NewRequest(http.MethodGet, env.ts.URL+"/v1/jobs/"+created.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }() // test teardown: stream read to EOF below
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content-type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "data: ") {
			frames++
			var e jobs.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("bad SSE frame %q: %v", line, err)
			}
		}
	}
	if frames == 0 {
		t.Fatal("no SSE data frames")
	}
}

// TestConcurrentHTTPClients runs full upload→launch→stream cycles from
// parallel clients; meaningful under -race.
func TestConcurrentHTTPClients(t *testing.T) {
	const clients = 8
	env := newEnv(t, 4)
	data := traceBytes(t)

	var mu sync.Mutex
	ids := make(map[string]bool)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(env.ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
			if err != nil {
				t.Errorf("upload: %v", err)
				return
			}
			var up struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&up)
			_ = resp.Body.Close() // test teardown: body fully decoded above
			if err != nil || up.ID == "" {
				t.Errorf("upload response: %v (%+v)", err, up)
				return
			}
			body, _ := json.Marshal(map[string]any{
				"kind": "profile", "trace": map[string]any{"id": up.ID},
			})
			resp, err = http.Post(env.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("launch: %v", err)
				return
			}
			var created struct {
				ID string `json:"id"`
			}
			err = json.NewDecoder(resp.Body).Decode(&created)
			_ = resp.Body.Close() // test teardown: body fully decoded above
			if err != nil || created.ID == "" {
				t.Errorf("launch response: %v", err)
				return
			}
			mu.Lock()
			if ids[created.ID] {
				t.Errorf("duplicate job id %s", created.ID)
			}
			ids[created.ID] = true
			mu.Unlock()

			streamResp, err := http.Get(env.ts.URL + "/v1/jobs/" + created.ID + "/events")
			if err != nil {
				t.Errorf("stream: %v", err)
				return
			}
			all, err := io.ReadAll(streamResp.Body)
			_ = streamResp.Body.Close() // test teardown: stream read to EOF above
			if err != nil {
				t.Errorf("reading stream: %v", err)
				return
			}
			if !bytes.Contains(all, []byte(`"done"`)) {
				t.Errorf("job %s stream has no done state: %s", created.ID, all)
			}
		}()
	}
	wg.Wait()
	if len(ids) != clients {
		t.Fatalf("%d distinct jobs, want %d", len(ids), clients)
	}
}

// TestUploadTooLarge pins the 413 mapping of the upload size cap.
func TestUploadTooLarge(t *testing.T) {
	spool := t.TempDir()
	mgr := jobs.New(jobs.Config{Workers: 1, SpoolDir: spool})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx) // test teardown
	})
	srv, err := api.New(api.Config{Manager: mgr, SpoolDir: spool, MaxUploadBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream",
		bytes.NewReader(bytes.Repeat([]byte("x"), 4096)))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close() // test teardown: only the status matters
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize upload: status %d, want 413", resp.StatusCode)
	}
	ents, err := os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("spool not empty after oversize upload: %v", names)
	}
}

package core

import (
	"fmt"
	"math/bits"
	"sort"

	"dmmkit/internal/bitset"
	"dmmkit/internal/block"
	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// Custom is an atomic DM manager: one point of the design space realized
// over a simulated heap. Its behaviour is entirely determined by the
// decision vector and params it was built from.
type Custom struct {
	mm.Accounting
	h   *heap.Heap
	v   block.View
	vec dspace.Vector
	par Params
	lay block.Layout

	tagged bool // layout carries in-band metadata (A3 != none)

	pools map[poolKey]*pool
	keys  []poolKey  // sorted by (phase, class)
	ne    bitset.Set // bit per keys position, set iff that pool's head != Nil

	top       heap.Addr // wilderness chunk (tagged variable managers)
	heapStart heap.Addr

	phase int // current behavioural phase (B3)
	frees int // frees since last deferred consolidation

	grossOf map[heap.Addr]int64   // block sizes for untagged layouts
	freeKey map[heap.Addr]poolKey // pool holding each binned free block
	direct  map[heap.Addr]int64   // payload -> segment gross for direct blocks
	live    mm.Shadow

	name string
}

// NewCustom builds the atomic manager described by vec and par over h. It
// returns an error when vec violates the design-space interdependencies.
func NewCustom(h *heap.Heap, vec dspace.Vector, par Params) (*Custom, error) {
	if err := dspace.Validate(&vec); err != nil {
		return nil, err
	}
	par.defaults(vec)
	if !sort.SliceIsSorted(par.ClassSizes, func(i, j int) bool { return par.ClassSizes[i] < par.ClassSizes[j] }) {
		return nil, fmt.Errorf("core: ClassSizes must be ascending")
	}
	lay := layoutFor(vec)
	m := &Custom{
		h:       h,
		vec:     vec,
		par:     par,
		lay:     lay,
		tagged:  lay.Tags != block.TagsNone,
		pools:   make(map[poolKey]*pool),
		freeKey: make(map[heap.Addr]poolKey),
		direct:  make(map[heap.Addr]int64),
		name:    "Custom",
	}
	m.v = block.NewView(h, lay)
	if !m.tagged {
		m.grossOf = make(map[heap.Addr]int64)
	}
	return m, nil
}

// layoutFor derives the in-band block layout from the A1/A3/A4 decisions.
func layoutFor(vec dspace.Vector) block.Layout {
	var l block.Layout
	switch vec.BlockTags {
	case dspace.NoTags:
		l.Tags = block.TagsNone
	case dspace.HeaderTag:
		l.Tags = block.TagsHeader
	default:
		l.Tags = block.TagsBoth
	}
	switch vec.RecordedInfo {
	case dspace.RecordSize:
		l.Info = block.InfoSize
	case dspace.RecordSizeStatus:
		l.Info = block.InfoSize | block.InfoStatus
	case dspace.RecordSizeStatusPrev:
		l.Info = block.InfoSize | block.InfoStatus | block.InfoPrevSize
	}
	if vec.BlockStructure == dspace.SinglyLinked {
		l.Links = block.LinksSingle
	} else {
		l.Links = block.LinksDouble
	}
	return l
}

// Name implements mm.Manager.
func (m *Custom) Name() string { return m.name }

// SetName overrides the display name (used by experiments to label derived
// managers).
func (m *Custom) SetName(s string) { m.name = s }

// Vector returns the decision vector the manager realizes.
func (m *Custom) Vector() dspace.Vector { return m.vec }

// ParamsUsed returns the numeric parameters in effect (after defaults).
func (m *Custom) ParamsUsed() Params { return m.par }

// Heap exposes the simulated heap for tests and diagnostics.
func (m *Custom) Heap() *heap.Heap { return m.h }

func (m *Custom) hasStatus() bool   { return m.lay.Info.Has(block.InfoStatus) }
func (m *Custom) hasPrevSize() bool { return m.lay.Info.Has(block.InfoPrevSize) }

func (m *Custom) canSplit() bool {
	return m.vec.Flex == dspace.SplitOnly || m.vec.Flex == dspace.SplitCoalesce
}

func (m *Custom) canCoalesce() bool {
	return m.vec.Flex == dspace.CoalesceOnly || m.vec.Flex == dspace.SplitCoalesce
}

// sizeOf returns the gross size of block b from its header or, for
// untagged layouts, from the partition table.
func (m *Custom) sizeOf(b heap.Addr) int64 {
	if m.tagged {
		return m.v.Size(b)
	}
	return m.grossOf[b]
}

// isClassSize reports whether s is one of the configured class sizes.
func (m *Custom) isClassSize(s int64) bool {
	i := sort.Search(len(m.par.ClassSizes), func(i int) bool { return m.par.ClassSizes[i] >= s })
	return i < len(m.par.ClassSizes) && m.par.ClassSizes[i] == s
}

// quantize applies the A2/B4 size discipline to a base gross size,
// returning the effective gross size, the pool class (0 = the any-range
// pool) and whether the request must be served by a dedicated block
// because it exceeds every class.
func (m *Custom) quantize(base int64) (gross, class int64, dedicated bool) {
	// A2: the block sizes that exist at all.
	switch m.vec.BlockSizes {
	case dspace.OneBlockSize:
		one := m.par.ClassSizes[0]
		if base > one {
			return base, 0, true
		}
		base = one
	case dspace.ManyFixedSizes:
		i := sort.Search(len(m.par.ClassSizes), func(i int) bool { return m.par.ClassSizes[i] >= base })
		if i == len(m.par.ClassSizes) {
			return base, 0, true
		}
		base = m.par.ClassSizes[i]
	}
	// B4: how pools partition those sizes.
	switch m.vec.PoolRange {
	case dspace.AnyRange:
		return base, 0, false
	case dspace.Pow2Classes:
		g := pow2ceil(base)
		return g, g, false
	case dspace.ExactClasses:
		return base, base, false
	default: // FixedSizePerPool
		i := sort.Search(len(m.par.ClassSizes), func(i int) bool { return m.par.ClassSizes[i] >= base })
		if i == len(m.par.ClassSizes) {
			return base, 0, true
		}
		return m.par.ClassSizes[i], m.par.ClassSizes[i], false
	}
}

// floorClass maps an arbitrary gross size to the pool class that stores
// it: blocks of intermediate size (split/coalesce results) live in the
// largest class not exceeding them.
func (m *Custom) floorClass(gross int64) int64 {
	switch m.vec.PoolRange {
	case dspace.AnyRange:
		return 0
	case dspace.Pow2Classes:
		return pow2floor(gross)
	case dspace.ExactClasses:
		return gross
	default: // FixedSizePerPool
		i := sort.Search(len(m.par.ClassSizes), func(i int) bool { return m.par.ClassSizes[i] > gross })
		if i == 0 {
			return m.par.ClassSizes[0]
		}
		return m.par.ClassSizes[i-1]
	}
}

func pow2ceil(n int64) int64 {
	if n <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(uint64(n-1)))
}

func pow2floor(n int64) int64 {
	if n <= 0 {
		return 1
	}
	return 1 << (63 - bits.LeadingZeros64(uint64(n)))
}

func (m *Custom) keyFor(phase int, class int64) poolKey {
	if m.vec.PoolPhase != dspace.PoolsPerPhase {
		phase = 0
	}
	return poolKey{phase: phase, class: class}
}

// phaseOf returns the phase pools a block belongs to. Per-phase pool
// division assumes phases are temporally disjoint (true of the paper's
// applications), so the current phase is used.
func (m *Custom) phaseOf(heap.Addr) int {
	if m.vec.PoolPhase != dspace.PoolsPerPhase {
		return 0
	}
	return m.phase
}

// Alloc implements mm.Manager.
func (m *Custom) Alloc(req mm.Request) (heap.Addr, error) {
	if req.Size <= 0 {
		m.NoteFail()
		return heap.Nil, mm.ErrBadSize
	}
	m.phase = req.Phase
	base := m.lay.GrossFor(req.Size)
	if m.par.DirectThreshold > 0 && base >= m.par.DirectThreshold {
		return m.allocDirect(req)
	}
	gross, class, dedicated := m.quantize(base)
	if dedicated {
		return m.allocDedicated(req, gross)
	}
	m.Charge(mm.CostIndex)

	// Deferred-list exact reuse (D2=deferred): recycle an identically
	// sized deferred block without coalescing, as dlmalloc's fastbins do.
	if m.vec.CoalesceWhen == dspace.Deferred {
		if b := m.popDeferredExact(class, gross); b != heap.Nil {
			return m.sealAlloc(b, gross, req), nil
		}
	}

	// Search the pools. The block handed back may be larger than gross
	// when splitting is not allowed; the whole block is then consumed
	// (internal fragmentation, visible in GrossLive).
	if b, have, ok := m.allocFromPools(req.Phase, class, gross); ok {
		return m.sealAlloc(b, have, req), nil
	}

	// Refill from the system.
	b, have, err := m.refill(req.Phase, class, gross)
	if err != nil {
		m.NoteFail()
		return heap.Nil, err
	}
	return m.sealAlloc(b, have, req), nil
}

// allocFromPools searches the pool for class and, when splitting is
// available, every larger class in the same phase. Found blocks are
// unlinked and split down to gross when policy allows; the returned size
// is the gross size actually consumed.
func (m *Custom) allocFromPools(phase int, class int64, gross int64) (heap.Addr, int64, bool) {
	k := m.keyFor(phase, class)
	try := func(key poolKey) (heap.Addr, int64, bool) {
		pl := m.poolFor(key)
		r := m.searchPool(pl, gross)
		if !r.ok {
			return heap.Nil, 0, false
		}
		m.unlink(pl, r.b, r.sprev)
		have := m.sizeOf(r.b)
		if have > gross && m.maySplit(have, gross) {
			m.split(r.b, gross)
			have = gross
		}
		return r.b, have, true
	}
	if b, have, ok := try(k); ok {
		return b, have, true
	}
	if m.vec.PoolRange == dspace.AnyRange || !m.canSplit() {
		return heap.Nil, 0, false
	}
	// Segregated fit with splitting: visit larger classes in this phase.
	// The nonempty bitset jumps straight to pools that hold blocks; the
	// pools skipped over are charged exactly what the plain walk's
	// poolFor lookups would have cost, so the work metric is unchanged.
	// try(k) above created the pool for k, so keys[i0] == k.
	i0 := sort.Search(len(m.keys), func(i int) bool { return !keyLess(m.keys[i], k) })
	phaseEnd := sort.Search(len(m.keys), func(i int) bool { return m.keys[i].phase > k.phase })
	for cur := i0; ; {
		j := m.ne.NextGE(cur)
		if j < 0 || j >= phaseEnd {
			m.chargeSkippedPools(cur, phaseEnd, i0)
			return heap.Nil, 0, false
		}
		if m.keys[j].class <= class {
			// The exact-class pool: the walk skips it without a lookup.
			cur = j + 1
			continue
		}
		m.chargeSkippedPools(cur, j, i0)
		if b, have, ok := try(m.keys[j]); ok {
			return b, have, true
		}
		cur = j + 1
	}
}

// chargeSkippedPools accounts the poolFor lookups a linear walk over key
// positions [from, to) would have charged for pools the bitset let us skip
// (all empty). Position exact — the request's own class — is excluded:
// the walk skips it without a lookup.
func (m *Custom) chargeSkippedPools(from, to, exact int) {
	if from >= to {
		return
	}
	n := int64(to - from)
	if exact >= from && exact < to {
		n--
	}
	if n <= 0 {
		return
	}
	if m.vec.PoolStruct == dspace.PoolArray {
		m.ChargeN(mm.CostIndex, n)
	} else {
		// A pool-list lookup of the key at position p costs p+1 probes.
		sum := (int64(to)*(int64(to)+1) - int64(from)*(int64(from)+1)) / 2
		if exact >= from && exact < to {
			sum -= int64(exact) + 1
		}
		m.ChargeN(mm.CostProbe, sum)
	}
}

// popDeferredExact recycles an exact-size block from the deferred list of
// the class pool, if any.
func (m *Custom) popDeferredExact(class, gross int64) heap.Addr {
	pl := m.poolFor(m.keyFor(m.phase, class))
	var prev heap.Addr
	for b := pl.deferred; b != heap.Nil; b = m.nextFree(b) {
		m.Charge(mm.CostProbe)
		if m.sizeOf(b) == gross {
			if prev == heap.Nil {
				pl.deferred = m.nextFree(b)
			} else {
				m.setNextFree(prev, m.nextFree(b))
			}
			pl.nDeferred--
			m.Charge(mm.CostUnlink)
			return b
		}
		prev = b
	}
	return heap.Nil
}

// refill obtains fresh memory: flexible managers consolidate and carve
// from the wilderness; rigid (no-split) managers carve class-sized chunks.
// It returns the block and its gross size.
func (m *Custom) refill(phase int, class int64, gross int64) (heap.Addr, int64, error) {
	if m.vec.CoalesceWhen == dspace.Deferred {
		// Consolidate before going to the system, then retry the pools.
		m.consolidate()
		if b, have, ok := m.allocFromPools(phase, class, gross); ok {
			return b, have, nil
		}
	}
	if m.tagged && m.canSplit() {
		b, err := m.carveTop(gross)
		return b, gross, err
	}
	if class == 0 {
		// Variable sizes without splitting: dedicated exact extents.
		b, err := m.allocExtent(gross)
		return b, gross, err
	}
	// Chunked carve: one system request yields several class blocks.
	n := m.par.ChunkBytes / gross
	if n < 1 {
		n = 1
	}
	start, err := m.h.Sbrk(n * gross)
	if err != nil {
		return heap.Nil, 0, err
	}
	m.Charge(mm.CostSbrk)
	if m.heapStart == heap.Nil {
		m.heapStart = start
	}
	k := m.keyFor(phase, class)
	pl := m.poolFor(k)
	for i := n - 1; i >= 1; i-- {
		b := start + heap.Addr(i*gross)
		m.initBlock(b, gross, i > 0)
		m.insertFree(pl, b)
		m.freeKey[b] = k
	}
	m.initBlock(start, gross, false)
	return start, gross, nil
}

// initBlock writes the header (or partition-table entry) for a fresh free
// block. prevFree hints the prevUsed bit for layouts that track status.
func (m *Custom) initBlock(b heap.Addr, gross int64, prevFree bool) {
	if !m.tagged {
		m.grossOf[b] = gross
		return
	}
	m.v.SetHeader(b, gross, false, !prevFree)
	m.writeNeighborInfo(b)
	m.Charge(mm.CostHeader)
}

// allocExtent serves one block with a dedicated system extent (used by
// untagged/rigid variable managers and oversize dedicated requests).
func (m *Custom) allocExtent(gross int64) (heap.Addr, error) {
	b, err := m.h.Sbrk(gross)
	if err != nil {
		return heap.Nil, err
	}
	m.Charge(mm.CostSbrk)
	if m.heapStart == heap.Nil {
		m.heapStart = b
	}
	m.initBlock(b, gross, false)
	return b, nil
}

func (m *Custom) allocDedicated(req mm.Request, gross int64) (heap.Addr, error) {
	b, err := m.allocExtent(gross)
	if err != nil {
		m.NoteFail()
		return heap.Nil, err
	}
	return m.sealAlloc(b, gross, req), nil
}

// allocDirect serves a request from a dedicated mapped segment (the
// designed large-block pool; returned to the system on free).
func (m *Custom) allocDirect(req mm.Request) (heap.Addr, error) {
	gross := m.lay.GrossFor(req.Size)
	base, err := m.h.Map(gross)
	if err != nil {
		m.NoteFail()
		return heap.Nil, err
	}
	m.Charge(mm.CostSbrk)
	segGross := m.h.SegmentSize(base)
	var p heap.Addr
	if m.tagged {
		m.v.SetHeader(base, gross, true, true)
		p = m.v.Payload(base)
	} else {
		p = base
	}
	m.direct[p] = segGross
	m.live.Add(p, req.Size)
	m.NoteAlloc(req.Size, segGross)
	return p, nil
}

// sealAlloc marks block b as used and returns its payload address.
func (m *Custom) sealAlloc(b heap.Addr, gross int64, req mm.Request) heap.Addr {
	var p heap.Addr
	if m.tagged {
		m.v.SetHeader(b, gross, true, m.prevUsedBit(b))
		if m.hasPrevSize() {
			next := b + heap.Addr(gross)
			if next < m.h.Brk() {
				m.v.SetPrevSize(next, gross)
			}
		}
		m.markNeighborOfFree(b, true)
		m.Charge(mm.CostHeader)
		p = m.v.Payload(b)
	} else {
		p = b
	}
	m.live.Add(p, req.Size)
	m.NoteAlloc(req.Size, gross)
	return p
}

// Free implements mm.Manager.
func (m *Custom) Free(p heap.Addr) error {
	req, ok := m.live.Remove(p)
	if !ok {
		m.NoteFail()
		return mm.ErrBadFree
	}
	if segGross, isDirect := m.direct[p]; isDirect {
		delete(m.direct, p)
		base := p
		if m.tagged {
			base = m.v.Block(p)
		}
		if err := m.h.Unmap(base); err != nil {
			m.NoteFail()
			return err
		}
		m.Charge(mm.CostTrim)
		m.NoteFree(req, segGross)
		return nil
	}
	var b heap.Addr
	if m.tagged {
		b = m.v.Block(p)
	} else {
		b = p
	}
	gross := m.sizeOf(b)
	m.NoteFree(req, gross)

	switch m.vec.CoalesceWhen {
	case dspace.Always:
		m.v.SetUsed(b, false)
		if merged, size := m.coalesce(b); size >= 0 {
			m.binFree(merged)
		}
		m.maybeTrim()
	case dspace.Deferred:
		m.deferFree(b)
		m.frees++
		if m.frees%m.par.CoalesceEveryN == 0 {
			m.consolidate()
			m.maybeTrim()
		}
	default: // Never
		if m.tagged && m.hasStatus() {
			m.v.SetUsed(b, false)
			m.markNeighborOfFree(b, false)
		}
		if m.tagged {
			m.writeNeighborInfo(b) // keep boundary tags consistent
		}
		m.binFree(b)
	}
	return nil
}

// Footprint implements mm.Manager.
func (m *Custom) Footprint() int64 { return m.h.Footprint() }

// MaxFootprint implements mm.Manager.
func (m *Custom) MaxFootprint() int64 { return m.h.MaxFootprint() }

// Reset restores the manager and its heap to the initial state.
func (m *Custom) Reset() {
	m.h.Reset()
	m.pools = make(map[poolKey]*pool)
	m.keys = nil
	m.ne.Reset()
	m.freeKey = make(map[heap.Addr]poolKey)
	m.top, m.heapStart = heap.Nil, heap.Nil
	m.phase, m.frees = 0, 0
	if m.grossOf != nil {
		m.grossOf = make(map[heap.Addr]int64)
	}
	m.direct = make(map[heap.Addr]int64)
	m.live.Reset()
	m.ResetStats()
}

// FreeBlocks returns the total count of blocks across all free lists
// (excluding deferred ones), for diagnostics.
func (m *Custom) FreeBlocks() int {
	n := 0
	for _, pl := range m.pools {
		n += pl.count
	}
	return n
}

// CheckInvariants validates the in-band structure of tagged managers: the
// sbrk region tiles into valid blocks and boundary info is consistent.
// Chunk-carved heaps (no splitting) keep deliberately conservative
// prevUsed bits at chunk boundaries, so only the tiling is checked there.
func (m *Custom) CheckInvariants() error {
	if !m.tagged || m.heapStart == heap.Nil || m.heapStart >= m.h.Brk() {
		return nil
	}
	if !m.lay.Info.Has(block.InfoSize) {
		return nil
	}
	if m.canSplit() {
		_, err := m.v.CheckRegion(m.heapStart, m.h.Brk())
		return err
	}
	return m.v.Walk(m.heapStart, m.h.Brk(), func(block.BlockInfo) error { return nil })
}

var _ mm.Manager = (*Custom)(nil)

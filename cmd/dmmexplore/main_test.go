package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dmmkit/internal/cliopts"
)

// buildCLI compiles dmmexplore once per test binary and returns the
// executable path. The unit-level validation tests live in
// internal/cliopts; what this package pins is the wiring — the built
// command really routes bad flags through the shared validation and
// exits with a usage error.
var buildCLI = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "dmmexplore-test-*")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "dmmexplore")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", &exec.Error{Name: "go build: " + string(out), Err: err}
	}
	return bin, nil
})

// TestUsageErrorsMatchSharedValidation runs the built command with bad
// search flags and requires exit status 2 and, on stderr, the exact
// message internal/cliopts produces — the same string dmmserve returns
// as the 400 body for the equivalent job request (pinned from the
// server side by internal/server tests). One vocabulary, one voice.
func TestUsageErrorsMatchSharedValidation(t *testing.T) {
	bin, err := buildCLI()
	if err != nil {
		t.Fatalf("building dmmexplore: %v", err)
	}
	t.Cleanup(func() { _ = os.RemoveAll(filepath.Dir(bin)) }) // test teardown

	cases := []struct {
		name                 string
		strategy, objectives string
	}{
		{"unknown strategy", "genetic", ""},
		{"empty strategy", "", ""},
		{"bad objectives", "ga", "latency"},
		{"work alone", "exhaustive", "work"},
		{"nsga scalar", "nsga", "footprint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, wantErr := cliopts.ResolveMode(c.strategy, c.objectives)
			if wantErr == nil {
				t.Fatalf("cliopts accepts strategy=%q objectives=%q; bad test case", c.strategy, c.objectives)
			}
			cmd := exec.Command(bin,
				"-workload", "drr", "-strategy", c.strategy, "-objectives", c.objectives)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want usage-error exit, got err=%v output=%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code %d, want 2; output: %s", code, out)
			}
			if want := "dmmexplore: " + wantErr.Error(); !strings.Contains(string(out), want) {
				t.Errorf("stderr %q does not contain the shared validation message %q", out, want)
			}
		})
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5): the maximum-memory-footprint comparison (Table 1),
// the footprint-over-time curves for DRR (Figure 5), the execution-time
// overhead claim, the decision-order ablation (Figure 4), and the
// static-vs-dynamic sizing motivation from Sec. 1.
//
// Absolute bytes differ from the paper — the workloads are synthetic
// reconstructions — but the shape (ordering of managers, rough improvement
// factors, crossovers) is the reproduction target; EXPERIMENTS.md records
// paper-vs-measured values side by side.
package experiments

import (
	"fmt"

	"dmmkit/internal/alloc/kingsley"
	"dmmkit/internal/alloc/lea"
	"dmmkit/internal/alloc/obstack"
	"dmmkit/internal/alloc/region"
	"dmmkit/internal/core"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/netsim"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
	"dmmkit/internal/workloads/drr"
	"dmmkit/internal/workloads/recon3d"
	"dmmkit/internal/workloads/render3d"
)

// Workload identifies one case study.
type Workload string

// The paper's three case studies.
const (
	WorkloadDRR    Workload = "drr"
	WorkloadRecon  Workload = "recon3d"
	WorkloadRender Workload = "render3d"
)

// Workloads lists the case studies in the paper's column order.
var Workloads = []Workload{WorkloadDRR, WorkloadRecon, WorkloadRender}

// ManagerName identifies one DM manager row of Table 1.
type ManagerName string

// Table 1 rows.
const (
	MgrKingsley ManagerName = "Kingsley-Windows"
	MgrLea      ManagerName = "Lea-Linux"
	MgrRegions  ManagerName = "Regions"
	MgrObstacks ManagerName = "Obstacks"
	MgrCustom   ManagerName = "our DM manager"
)

// Managers lists the Table 1 rows in the paper's order.
var Managers = []ManagerName{MgrKingsley, MgrLea, MgrRegions, MgrObstacks, MgrCustom}

// PaperTable1 holds the published values in bytes; absent cells (the
// paper's "-") are zero.
var PaperTable1 = map[ManagerName]map[Workload]int64{
	MgrKingsley: {WorkloadDRR: 2.09e6, WorkloadRecon: 2.26e6, WorkloadRender: 3.96e6},
	MgrLea:      {WorkloadDRR: 2.34e5, WorkloadRender: 1.86e6},
	MgrRegions:  {WorkloadRecon: 2.08e6},
	MgrObstacks: {WorkloadRender: 1.55e6},
	MgrCustom:   {WorkloadDRR: 1.48e5, WorkloadRecon: 1.49e6, WorkloadRender: 1.07e6},
}

// Config scales the experiments. Quick mode shrinks workloads and seed
// counts so unit tests and benchmarks stay fast; the full mode matches
// the paper's ten simulations per case study.
type Config struct {
	Seeds int  // traces per case study (default 10; the paper uses 10)
	Quick bool // smaller workloads (tests/benchmarks)
}

func (c *Config) defaults() {
	if c.Seeds == 0 {
		if c.Quick {
			c.Seeds = 3
		} else {
			c.Seeds = 10
		}
	}
}

// BuildWorkloadTrace generates the trace of one case study for one seed.
func BuildWorkloadTrace(w Workload, seed int64, quick bool) (*trace.Trace, error) {
	switch w {
	case WorkloadDRR:
		cfg := drr.Config{Seed: seed}
		if quick {
			cfg.Net = netsim.Config{Phases: 4, PhaseMs: 250}
		}
		res, err := drr.BuildTrace(cfg)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	case WorkloadRecon:
		cfg := recon3d.Config{Seed: seed}
		if quick {
			cfg.Pairs = 2
		}
		res, err := recon3d.BuildTrace(cfg)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	case WorkloadRender:
		cfg := render3d.Config{Seed: seed}
		if quick {
			cfg.Detail = 600
			cfg.Frames = 48
		}
		res, err := render3d.BuildTrace(cfg)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", w)
}

// NewManager constructs a fresh manager of the named family for a trace
// whose profile is p. Regions are sized per allocation tag from the
// profile (the "manually designed" configuration of Sec. 5); the custom
// manager is designed by the methodology.
func NewManager(name ManagerName, p *profile.Profile) (mm.Manager, error) {
	h := heap.New(heap.Config{})
	switch name {
	case MgrKingsley:
		return kingsley.New(h), nil
	case MgrLea:
		return lea.New(h, lea.Config{}), nil
	case MgrRegions:
		// Partition buffers are sized for the worst-case request of the
		// site and rounded to the next power of two, as embedded
		// partition implementations require — the source of the internal
		// fragmentation the paper attributes to region managers.
		sizer := func(tag int, first int64) int64 {
			max, ok := p.TagMax[tag]
			if !ok {
				return region.DefaultSizer(tag, first)
			}
			s := int64(8)
			for s < max {
				s <<= 1
			}
			return s
		}
		return region.New(h, sizer), nil
	case MgrObstacks:
		return obstack.New(h, 0), nil
	case MgrCustom:
		g, _, err := core.BuildGlobal(string(MgrCustom), p)
		return g, err
	}
	return nil, fmt.Errorf("experiments: unknown manager %q", name)
}

// Cell is one Table 1 measurement, averaged over seeds.
type Cell struct {
	MaxFootprint int64   // mean over seeds, bytes
	MaxLive      int64   // mean peak requested bytes (lower bound)
	Work         mm.Work // mean work units (execution-time proxy)
	Runs         int
}

// Table1Result is the measured Table 1.
type Table1Result struct {
	Cfg   Config
	Cells map[ManagerName]map[Workload]Cell
}

// RunTable1 measures the maximum memory footprint of every manager on
// every case study, averaged over seeds.
func RunTable1(cfg Config) (*Table1Result, error) {
	cfg.defaults()
	res := &Table1Result{Cfg: cfg, Cells: make(map[ManagerName]map[Workload]Cell)}
	for _, m := range Managers {
		res.Cells[m] = make(map[Workload]Cell)
	}
	for _, w := range Workloads {
		for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
			tr, err := BuildWorkloadTrace(w, seed, cfg.Quick)
			if err != nil {
				return nil, err
			}
			prof := profile.FromTrace(tr)
			for _, name := range Managers {
				mgr, err := NewManager(name, prof)
				if err != nil {
					return nil, err
				}
				run, err := trace.Run(mgr, tr, trace.RunOpts{})
				if err != nil {
					return nil, fmt.Errorf("table1 %s/%s seed %d: %w", name, w, seed, err)
				}
				c := res.Cells[name][w]
				c.MaxFootprint += run.MaxFootprint
				c.MaxLive += tr.MaxLiveBytes()
				c.Work += run.Work
				c.Runs++
				res.Cells[name][w] = c
			}
		}
	}
	// Convert sums to means.
	for _, m := range Managers {
		for _, w := range Workloads {
			c := res.Cells[m][w]
			if c.Runs > 0 {
				c.MaxFootprint /= int64(c.Runs)
				c.MaxLive /= int64(c.Runs)
				c.Work /= mm.Work(c.Runs)
			}
			res.Cells[m][w] = c
		}
	}
	return res, nil
}

// Improvement returns the footprint reduction of the custom manager
// versus manager m on workload w, as a fraction (0.36 = 36% smaller).
func (t *Table1Result) Improvement(m ManagerName, w Workload) float64 {
	base := t.Cells[m][w].MaxFootprint
	custom := t.Cells[MgrCustom][w].MaxFootprint
	if base <= 0 {
		return 0
	}
	return 1 - float64(custom)/float64(base)
}

// AverageImprovement aggregates the improvement of the custom manager
// over every baseline cell the paper reports (the abstract's "60% on
// average" claim).
func (t *Table1Result) AverageImprovement() float64 {
	var sum float64
	var n int
	for m, cols := range PaperTable1 {
		if m == MgrCustom {
			continue
		}
		for w := range cols {
			sum += t.Improvement(m, w)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

package analysis

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// PkgDoc requires package-level documentation: at least one non-test
// file in the package must carry a doc comment on its package clause, so
// `go doc` explains the layer without reading the paper. This is the
// former internal/tools/checkdocs CI gate, reborn as an analyzer so the
// whole lint suite has a single entry point (cmd/dmmlint).
var PkgDoc = &analysis.Analyzer{
	Name: "pkgdoc",
	Doc:  "require package-level documentation on every package",
	Run:  runPkgDoc,
}

func runPkgDoc(pass *analysis.Pass) (interface{}, error) {
	// External test packages (foo_test) and synthesized test mains
	// document nothing on their own; the real package is checked when
	// vet visits it.
	if strings.HasSuffix(pass.Pkg.Name(), "_test") || strings.HasSuffix(pass.Pkg.Path(), ".test") {
		return nil, nil
	}
	var first *ast.File
	firstName := ""
	sawNonTest := false
	for _, f := range pass.Files {
		name := pass.Fset.File(f.Pos()).Name()
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		sawNonTest = true
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return nil, nil
		}
		if first == nil || name < firstName {
			first, firstName = f, name
		}
	}
	if !sawNonTest || first == nil {
		return nil, nil // test-only compilation unit
	}
	pass.Reportf(first.Package,
		"package %s has no package-level documentation; add a doc comment on a package clause (see doc.go convention)", pass.Pkg.Name())
	return nil, nil
}

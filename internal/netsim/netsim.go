package netsim

import (
	"math/rand"
)

// Packet is one generated packet arrival.
type Packet struct {
	TimeMs float64 // arrival time in milliseconds
	Size   int64   // bytes on the wire
	Flow   int     // flow identity (maps to a DRR queue)
}

// Config controls trace generation. Zero values select defaults matching
// the paper's setting.
type Config struct {
	Seed     int64
	RateMbps float64 // average offered load (default 10)
	Flows    int     // number of flows (default 16)
	PhaseMs  float64 // duration of one traffic-mix phase (default 500)
	Phases   int     // number of phases (default 6)
	OnMs     float64 // mean burst (ON) duration (default 40)
	OffMs    float64 // mean silence (OFF) duration (default 40)
}

func (c *Config) defaults() {
	if c.RateMbps == 0 {
		c.RateMbps = 10
	}
	if c.Flows == 0 {
		c.Flows = 16
	}
	if c.PhaseMs == 0 {
		c.PhaseMs = 500
	}
	if c.Phases == 0 {
		c.Phases = 6
	}
	if c.OnMs == 0 {
		c.OnMs = 40
	}
	if c.OffMs == 0 {
		c.OffMs = 40
	}
}

// sizeModes are the packet-size modes of wide-area traffic (ACKs, small
// TCP segments, MTU-size data packets and intermediate sizes). Each phase
// promotes one mode to dominance so the mix drifts over the trace; the
// modes are chosen so consecutive dominant sizes land in distinct
// power-of-two classes, as the archive's real mixes do.
// The real archive's strongest modes (40-byte ACKs, 552/576-byte TCP
// segments) sit just above power-of-two boundaries once buffer metadata is
// added — the property that makes power-of-two allocators waste near half
// the buffer memory; the synthetic modes preserve it.
var sizeModes = []int64{20, 40, 110, 240, 552, 1120}

// PhaseCount returns the number of phases cfg will generate.
func PhaseCount(cfg Config) int {
	cfg.defaults()
	return cfg.Phases
}

// Duration returns the total trace duration in milliseconds.
func Duration(cfg Config) float64 {
	cfg.defaults()
	return cfg.PhaseMs * float64(cfg.Phases)
}

// Generate produces the packet arrivals for cfg, ordered by time.
func Generate(cfg Config) []Packet {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	avgBytesPerMs := cfg.RateMbps * 1e6 / 8 / 1000
	duty := cfg.OnMs / (cfg.OnMs + cfg.OffMs)
	peakBytesPerMs := avgBytesPerMs / duty

	var pkts []Packet
	on := true
	stateLeft := expo(rng, cfg.OnMs)
	var carry float64 // fractional byte budget carried between ticks

	total := Duration(cfg)
	for t := 0.0; t < total; t++ {
		phase := int(t / cfg.PhaseMs)
		if phase >= cfg.Phases {
			phase = cfg.Phases - 1
		}
		stateLeft--
		if stateLeft <= 0 {
			on = !on
			if on {
				stateLeft = expo(rng, cfg.OnMs)
			} else {
				stateLeft = expo(rng, cfg.OffMs)
			}
		}
		if !on {
			continue
		}
		carry += peakBytesPerMs
		for carry > 0 {
			size := samplePacketSize(rng, phase)
			carry -= float64(size)
			// Flows are phase-local: sessions start and end as the
			// traffic mix drifts, so per-flow state churns over time.
			pkts = append(pkts, Packet{
				TimeMs: t + rng.Float64(),
				Size:   size,
				Flow:   phase*cfg.Flows + rng.Intn(cfg.Flows),
			})
		}
	}
	// Sort within ticks: arrivals were generated tick-ordered with random
	// intra-tick offsets; a stable pass keeps global time order.
	sortPackets(pkts)
	return pkts
}

// samplePacketSize draws from the phase's size mixture. The dominant mode
// carries 85% of the traffic BYTES (not packets): the probability of
// drawing the dominant size is weighted by its size so that small-packet
// phases are genuinely dominated by small packets.
func samplePacketSize(rng *rand.Rand, phase int) int64 {
	dom := sizeModes[phase%len(sizeModes)]
	const bgMean = 550.0 // approximate mean of the background mixture
	wDom := 0.85 / float64(dom)
	wBg := 0.15 / bgMean
	if rng.Float64() < wDom/(wDom+wBg) {
		return dom
	}
	if rng.Float64() < 0.75 {
		return sizeModes[rng.Intn(len(sizeModes))]
	}
	return 20 + rng.Int63n(1480)
}

// expo draws a truncated-exponential duration: exponential shape with the
// tail capped at 1.5x the mean, so burst intensity varies without a
// single extreme burst dominating a whole trace (every phase then reaches
// a comparable backlog peak, as the paper's per-phase analysis assumes).
func expo(rng *rand.Rand, mean float64) float64 {
	d := rng.ExpFloat64() * mean
	if d > 1.3*mean {
		d = 1.3 * mean
	}
	if d < 0.7*mean {
		d = 0.7 * mean
	}
	return d
}

func sortPackets(pkts []Packet) {
	// Packets are near-sorted (per-tick); insertion sort is O(n) here and
	// keeps the dependency footprint zero.
	for i := 1; i < len(pkts); i++ {
		p := pkts[i]
		j := i - 1
		for j >= 0 && pkts[j].TimeMs > p.TimeMs {
			pkts[j+1] = pkts[j]
			j--
		}
		pkts[j+1] = p
	}
}

// Stats summarizes a generated trace for tests and reports.
type Stats struct {
	Packets   int
	Bytes     int64
	MeanSize  float64
	Duration  float64 // ms
	RateMbps  float64 // achieved average rate
	SizeModes int     // distinct sizes observed
}

// Summarize computes the achieved statistics of a packet sequence.
func Summarize(pkts []Packet, cfg Config) Stats {
	cfg.defaults()
	s := Stats{Packets: len(pkts), Duration: Duration(cfg)}
	sizes := map[int64]bool{}
	for _, p := range pkts {
		s.Bytes += p.Size
		sizes[p.Size] = true
	}
	s.SizeModes = len(sizes)
	if len(pkts) > 0 {
		s.MeanSize = float64(s.Bytes) / float64(len(pkts))
	}
	if s.Duration > 0 {
		s.RateMbps = float64(s.Bytes) * 8 / (s.Duration / 1000) / 1e6
	}
	return s
}

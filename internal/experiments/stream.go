package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"
	"time"
	"unsafe"

	"dmmkit/internal/heap"
	"dmmkit/internal/netsim"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
	"dmmkit/internal/trace"
	"dmmkit/internal/workloads/drr"
)

// The stream experiment (dmmbench -exp stream) is the out-of-core replay
// measurement: it generates a netsim-scale DRR trace (~1M events in full
// mode — a multi-second wireless capture), writes it to disk in the
// streamable DMMT2 format, then replays the file through the streaming
// path (DecodeBinarySource + RunSource) and through the classic
// in-memory path, asserting that footprint, work and system stats are
// identical, and reporting how much Go heap the streaming replay needs —
// which is bounded by the application's live set, not the trace length.

// streamManagers are the manager families the experiment replays.
var streamManagers = []ManagerName{MgrKingsley, MgrLea, MgrCustom}

// StreamRow compares one manager family across the two replay paths.
type StreamRow struct {
	Manager   ManagerName
	Footprint int64 // identical across paths (asserted)
	Work      int64
	InMemNs   int64 // wall clock of the in-memory replay
	StreamNs  int64 // wall clock of the streaming (off-disk) replay
}

// StreamResult is the report of the out-of-core replay measurement.
type StreamResult struct {
	TraceName  string
	Events     int
	PeakLive   int64 // peak concurrently requested bytes
	EventBytes int64 // what the materialized event slice occupies
	FileBytes  int64 // the DMMT2 file on disk
	DMMT1Bytes int64 // the same trace in the legacy format, for comparison

	// Streaming-replay memory, measured around the first replayed
	// manager: AllocBytes is everything allocated during the replay
	// (decoder, live table, simulated heap), LiveBytes what remains
	// reachable after it — both independent of the trace length.
	AllocBytes uint64
	LiveBytes  int64

	Rows []StreamRow
}

// streamConfig is the DRR configuration of the measurement: full mode
// targets ~1M events (heavy traffic over twelve seconds of simulated
// time), quick mode the registry's reduced trace.
func streamConfig(quick bool) drr.Config {
	if quick {
		return drr.Config{Seed: 1, Net: netsim.Config{Phases: 4, PhaseMs: 250}}
	}
	return drr.Config{Seed: 1, Net: netsim.Config{RateMbps: 50, Phases: 6, PhaseMs: 1000}}
}

// countingWriter measures an encoding without keeping it.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// RunStream generates the trace, replays it through both paths and
// verifies they agree; any disagreement is an error, so smoke runs fail
// loudly instead of printing wrong numbers.
func RunStream(ctx context.Context, cfg Config) (*StreamResult, error) {
	dcfg := streamConfig(cfg.Quick)
	built, err := drr.BuildTrace(dcfg)
	if err != nil {
		return nil, err
	}
	tr := built.Trace
	prof := profile.FromTrace(tr)
	res := &StreamResult{
		TraceName:  tr.Name,
		Events:     len(tr.Events),
		PeakLive:   tr.MaxLiveBytes(),
		EventBytes: int64(len(tr.Events)) * int64(sizeOfEvent),
	}

	// The trace on disk, in both formats.
	f, err := os.CreateTemp("", "dmmkit-stream-*.trace")
	if err != nil {
		return nil, err
	}
	defer os.Remove(f.Name())
	if err := tr.EncodeBinary2(f); err != nil {
		_ = f.Close() // encode error supersedes any close error
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	st, err := os.Stat(f.Name())
	if err != nil {
		return nil, err
	}
	res.FileBytes = st.Size()
	var cw countingWriter
	if err := tr.EncodeBinary(&cw); err != nil {
		return nil, err
	}
	res.DMMT1Bytes = cw.n

	file, err := trace.OpenFile(f.Name())
	if err != nil {
		return nil, err
	}
	for i, name := range streamManagers {
		reg := registryName[name]

		h1 := heap.New(heap.Config{})
		m1, err := registry.NewManager(reg, h1, prof)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		inMem, err := trace.Run(ctx, m1, tr, trace.RunOpts{})
		if err != nil {
			return nil, err
		}
		inMemNs := time.Since(t0).Nanoseconds()

		h2 := heap.New(heap.Config{})
		m2, err := registry.NewManager(reg, h2, prof)
		if err != nil {
			return nil, err
		}
		src, err := file.Open()
		if err != nil {
			return nil, err
		}
		measure := i == 0 // memory numbers from the first manager's replay
		var before runtime.MemStats
		if measure {
			runtime.GC()
			runtime.ReadMemStats(&before)
		}
		t0 = time.Now()
		streamed, err := trace.RunSource(ctx, m2, src, trace.RunOpts{})
		if err != nil {
			return nil, err
		}
		streamNs := time.Since(t0).Nanoseconds()
		if measure {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			res.AllocBytes = after.TotalAlloc - before.TotalAlloc
			runtime.GC()
			runtime.ReadMemStats(&after)
			res.LiveBytes = int64(after.HeapAlloc) - int64(before.HeapAlloc)
		}

		if inMem.MaxFootprint != streamed.MaxFootprint || inMem.Work != streamed.Work ||
			inMem.Stats != streamed.Stats || inMem.Events != streamed.Events ||
			h1.SysStats() != h2.SysStats() {
			return nil, fmt.Errorf("stream: %s: streaming replay diverged from in-memory: footprint %d vs %d, work %d vs %d",
				name, inMem.MaxFootprint, streamed.MaxFootprint, inMem.Work, streamed.Work)
		}
		res.Rows = append(res.Rows, StreamRow{
			Manager:   name,
			Footprint: inMem.MaxFootprint,
			Work:      int64(inMem.Work),
			InMemNs:   inMemNs,
			StreamNs:  streamNs,
		})
	}
	return res, nil
}

// sizeOfEvent is what one materialized event occupies, for the
// event-slice size line of the report.
const sizeOfEvent = unsafe.Sizeof(trace.Event{})

// WriteStream renders the measurement.
func WriteStream(w io.Writer, r *StreamResult) error {
	fmt.Fprintf(w, "out-of-core replay of %q: %d events, peak live %s\n",
		r.TraceName, r.Events, byteCount(r.PeakLive))
	fmt.Fprintf(w, "sizes: events in memory %s, DMMT2 file %s (DMMT1 would be %s)\n",
		byteCount(r.EventBytes), byteCount(r.FileBytes), byteCount(r.DMMT1Bytes))
	fmt.Fprintf(w, "streaming replay heap: %s allocated, %s retained (vs %s to materialize)\n\n",
		byteCount(int64(r.AllocBytes)), byteCount(r.LiveBytes), byteCount(r.EventBytes))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "manager\tfootprint (B)\twork\tin-memory\tstreamed")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\n", row.Manager, row.Footprint, row.Work,
			time.Duration(row.InMemNs), time.Duration(row.StreamNs))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nfootprint, work and system stats identical across both paths.")
	return nil
}

// byteCount renders a byte size with a binary unit.
func byteCount(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

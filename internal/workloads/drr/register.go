package drr

import (
	"dmmkit/internal/netsim"
	"dmmkit/internal/registry"
	"dmmkit/internal/trace"
)

func init() {
	registry.RegisterWorkload("drr", func(o registry.WorkloadOpts) (*trace.Trace, error) {
		cfg := Config{Seed: o.Seed}
		if o.Quick {
			cfg.Net = netsim.Config{Phases: 4, PhaseMs: 250}
		}
		res, err := StreamTrace(cfg, o.Sink)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	})
}

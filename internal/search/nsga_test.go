package search

import (
	"testing"

	"dmmkit/internal/dspace"
)

// fakeBiFitness scores vectors on two partially conflicting synthetic
// objectives (leaf sums weighted in opposite tree orders), so pinned
// subspaces have non-trivial Pareto fronts without any trace replay.
func fakeBiFitness(v dspace.Vector) Result {
	var f, w int64
	for i := 0; i < dspace.NumTrees; i++ {
		l := int64(v.Get(dspace.Tree(i)))
		f += l * int64(i+1)
		w += l * int64(dspace.NumTrees-i)
	}
	return Result{Vector: v, Footprint: f, Work: w}
}

func driveBi(s Strategy) (evals int) {
	for {
		batch := s.Next()
		if len(batch) == 0 {
			return evals
		}
		results := make([]Result, len(batch))
		for i, v := range batch {
			results[i] = fakeBiFitness(v)
		}
		evals += len(batch)
		s.Observe(results)
	}
}

// TestNSGAProposalsUniqueAndValid drives the NSGA against the synthetic
// bi-objective fitness and checks every proposed vector is valid and
// never proposed twice (the dedup contract shared with GA).
func TestNSGAProposalsUniqueAndValid(t *testing.T) {
	n := NewNSGA(42, GAConfig{Population: 12, Generations: 10})
	seen := make(map[dspace.Vector]bool)
	for {
		batch := n.Next()
		if len(batch) == 0 {
			break
		}
		results := make([]Result, len(batch))
		for i, v := range batch {
			if seen[v] {
				t.Fatalf("vector %v proposed twice", v)
			}
			seen[v] = true
			if err := dspace.Validate(&v); err != nil {
				t.Fatalf("NSGA proposed invalid vector: %v", err)
			}
			results[i] = fakeBiFitness(v)
		}
		n.Observe(results)
	}
	if n.Evaluations() != len(seen) {
		t.Errorf("Evaluations() = %d, want %d", n.Evaluations(), len(seen))
	}
	if len(n.Front()) == 0 {
		t.Error("no front after a full run")
	}
}

// TestNSGASameSeedSameProposals replays two NSGAs with the same seed and
// checks the full proposal sequence is identical; a different seed must
// diverge.
func TestNSGASameSeedSameProposals(t *testing.T) {
	runSeq := func(seed int64) [][]dspace.Vector {
		n := NewNSGA(seed, GAConfig{Population: 10, Generations: 6})
		var seq [][]dspace.Vector
		for {
			batch := n.Next()
			if len(batch) == 0 {
				return seq
			}
			seq = append(seq, append([]dspace.Vector(nil), batch...))
			results := make([]Result, len(batch))
			for i, v := range batch {
				results[i] = fakeBiFitness(v)
			}
			n.Observe(results)
		}
	}
	a, b := runSeq(7), runSeq(7)
	if len(a) != len(b) {
		t.Fatalf("same seed: %d vs %d generations", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("generation %d: %d vs %d proposals", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("generation %d proposal %d differs", i, j)
			}
		}
	}
	c := runSeq(8)
	diverged := len(c) != len(a)
	for i := 0; !diverged && i < len(a); i++ {
		if len(a[i]) != len(c[i]) {
			diverged = true
			break
		}
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Error("seeds 7 and 8 produced identical proposal sequences")
	}
}

// TestNSGARecoversSubspaceFront holds the NSGA against an exhaustive
// oracle on a pinned subspace small enough to enumerate outright: the
// archive front must equal the true Pareto front of the subspace
// (objective points, not vectors — distinct vectors may share a point),
// while evaluating fewer vectors than the subspace holds.
func TestNSGARecoversSubspaceFront(t *testing.T) {
	fix := Fixed{
		dspace.A2BlockSizes: dspace.OneBlockSize,
		dspace.C1Fit:        dspace.FirstFit,
		dspace.B3PoolPhase:  dspace.SharedPools,
	}
	var all []Result
	dspace.Enumerate(func(v dspace.Vector) bool {
		if fix.Matches(v) {
			all = append(all, fakeBiFitness(v))
		}
		return true
	})
	if len(all) == 0 || len(all) > 1000 {
		t.Fatalf("pinned subspace has %d vectors; want a small non-empty oracle", len(all))
	}
	want := FrontOf(all)

	n := NewNSGA(3, GAConfig{Population: 16, Generations: 30, Patience: 8, Fix: fix})
	evals := driveBi(n)
	got := n.Front()
	if len(got) != len(want) {
		t.Fatalf("NSGA front has %d points, oracle %d (evaluated %d of %d)\n got %v\nwant %v",
			len(got), len(want), evals, len(all), points(got), points(want))
	}
	for i := range got {
		if got[i].Footprint != want[i].Footprint || got[i].Work != want[i].Work {
			t.Errorf("front point %d: got (%d,%d), want (%d,%d)",
				i, got[i].Footprint, got[i].Work, want[i].Footprint, want[i].Work)
		}
	}
	if evals >= len(all) {
		t.Errorf("NSGA evaluated %d vectors, subspace holds only %d — no savings", evals, len(all))
	}
}

func points(rs []Result) [][2]int64 {
	ps := make([][2]int64, len(rs))
	for i, r := range rs {
		ps[i] = [2]int64{r.Footprint, r.Work}
	}
	return ps
}

// TestNSGAFrontSurvivesFailures checks that failed evaluations never
// enter the archive front and never displace measured points.
func TestNSGAFrontSurvivesFailures(t *testing.T) {
	n := NewNSGA(5, GAConfig{Population: 8, Generations: 4})
	first := true
	for {
		batch := n.Next()
		if len(batch) == 0 {
			break
		}
		results := make([]Result, len(batch))
		for i, v := range batch {
			if first && i%2 == 1 {
				results[i] = Result{Vector: v, Failed: true}
			} else {
				results[i] = fakeBiFitness(v)
			}
		}
		first = false
		n.Observe(results)
	}
	for _, r := range n.Front() {
		if r.Failed {
			t.Fatalf("failed result %v on the front", r.Vector)
		}
	}
	if len(n.Front()) == 0 {
		t.Error("front empty despite successful evaluations")
	}
}

package main

import (
	"testing"

	"dmmkit/internal/experiments"
)

func report(rows ...experiments.BenchRow) *experiments.BenchReport {
	return &experiments.BenchReport{Rows: rows}
}

func row(w, m string, ns float64) experiments.BenchRow {
	return experiments.BenchRow{Workload: w, Manager: m, NsPerReplay: ns}
}

// TestCompareWithinTolerance: growth up to the tolerance passes, even
// exactly at base*(1+tol); shrinkage always passes.
func TestCompareWithinTolerance(t *testing.T) {
	base := report(row("drr", "lea", 1000), row("drr", "kingsley", 500))
	cur := report(row("drr", "lea", 1400), row("drr", "kingsley", 100))
	deltas, regressed := compare(base, cur, 0.40)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	if len(regressed) != 0 {
		t.Fatalf("rows regressed within tolerance: %+v", regressed)
	}
}

// TestCompareFlagsRegression: a row beyond the tolerance is flagged; the
// others are not dragged along with it.
func TestCompareFlagsRegression(t *testing.T) {
	base := report(row("drr", "lea", 1000), row("drr", "kingsley", 500))
	cur := report(row("drr", "lea", 1401), row("drr", "kingsley", 500))
	_, regressed := compare(base, cur, 0.40)
	if len(regressed) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regressed), regressed)
	}
	if regressed[0].Manager != "lea" {
		t.Errorf("flagged %s/%s, want drr/lea", regressed[0].Workload, regressed[0].Manager)
	}
	if r := regressed[0].Ratio(); r < 1.40 || r > 1.41 {
		t.Errorf("ratio %.3f out of expected range", r)
	}
}

// TestCompareMissingRowRegresses: a baseline row that was not remeasured
// is a regression (a silently dropped benchmark must not pass the gate),
// while extra measured rows are ignored (a new workload does not break
// the gate before the baseline is regenerated).
func TestCompareMissingRowRegresses(t *testing.T) {
	base := report(row("drr", "lea", 1000))
	cur := report(row("drr", "kingsley", 100), row("render3d", "lea", 900))
	deltas, regressed := compare(base, cur, 0.40)
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1 (baseline rows only)", len(deltas))
	}
	if len(regressed) != 1 || !regressed[0].Missing {
		t.Fatalf("missing row not flagged: %+v", regressed)
	}
}

// TestCompareZeroTolerance: with tolerance 0 any growth at all regresses.
func TestCompareZeroTolerance(t *testing.T) {
	base := report(row("drr", "lea", 1000))
	cur := report(row("drr", "lea", 1001))
	if _, regressed := compare(base, cur, 0); len(regressed) != 1 {
		t.Fatal("growth passed a zero tolerance")
	}
	if _, regressed := compare(base, base, 0); len(regressed) != 0 {
		t.Fatal("identical reports regressed at zero tolerance")
	}
}

// Command dmmexplore explores the DM-management design space against a
// trace: it evaluates candidates drawn from the ~144k valid decision
// vectors plus the methodology's design, prints the footprint/work Pareto
// front, and shows where the methodology's one-walk design lands relative
// to search.
//
// Two search strategies are available. -strategy exhaustive (the default)
// evaluates a uniform stride sample of at most -candidates vectors;
// -strategy ga runs a deterministic seeded genetic algorithm (tournament
// selection, constraint-repaired crossover and mutation, elitism) that
// typically matches the exhaustive best while evaluating a fraction of
// the candidates. -seed seeds both the workload generator and the GA, so
// a run is reproduced exactly by its command line at any -parallel.
//
// Candidates are evaluated concurrently on -parallel workers (every
// candidate owns a private simulated heap), with results identical to a
// sequential run. Ctrl-C cancels the exploration.
//
// Usage:
//
//	dmmexplore -workload drr -candidates 96
//	dmmexplore -workload drr -strategy ga -population 24 -generations 20
//	dmmexplore -workload render3d -parallel 8
//	dmmexplore drr1.trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	"dmmkit"
)

func main() {
	var (
		workload    = flag.String("workload", "", "generate and explore a registered workload: "+strings.Join(dmmkit.Workloads(), ", "))
		seed        = flag.Int64("seed", 1, "seed for the workload generator and the GA (identical seed = identical run)")
		strategy    = flag.String("strategy", "exhaustive", "search strategy: exhaustive or ga")
		candidates  = flag.Int("candidates", 96, "evaluation budget: stride-sample size (exhaustive) or max evaluations (ga)")
		population  = flag.Int("population", 24, "GA individuals per generation")
		generations = flag.Int("generations", 20, "GA generation cap (stops earlier on convergence)")
		quick       = flag.Bool("quick", true, "use a reduced workload (exploration replays every candidate)")
		parallel    = flag.Int("parallel", 0, "concurrent evaluation workers (0 = GOMAXPROCS, 1 = sequential)")
		progress    = flag.Bool("progress", true, "report evaluation progress on stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var tr *dmmkit.Trace
	var err error
	switch {
	case *workload != "":
		tr, err = dmmkit.BuildWorkload(*workload, dmmkit.WorkloadOpts{Seed: *seed, Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
			os.Exit(2)
		}
	case flag.NArg() == 1:
		tr, err = dmmkit.LoadTrace(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: dmmexplore [-workload NAME | trace-file]")
		os.Exit(2)
	}

	opts := dmmkit.ExploreOpts{
		MaxCandidates:   *candidates,
		IncludeDesigned: true,
		Parallelism:     *parallel,
	}
	switch *strategy {
	case "exhaustive":
		fmt.Printf("exploring up to %d of %d candidates against %q (%d events, live peak %d B)...\n\n",
			*candidates, dmmkit.SpaceSize(), tr.Name, len(tr.Events), tr.MaxLiveBytes())
	case "ga":
		opts.Strategy = dmmkit.NewGASearch(*seed, dmmkit.GASearchConfig{
			Population:     *population,
			Generations:    *generations,
			MaxEvaluations: *candidates,
		})
		fmt.Printf("genetic search (seed %d, population %d, <= %d generations, <= %d evaluations) over %d valid vectors against %q (%d events, live peak %d B)...\n\n",
			*seed, *population, *generations, *candidates, dmmkit.SpaceSize(), tr.Name, len(tr.Events), tr.MaxLiveBytes())
	default:
		fmt.Fprintf(os.Stderr, "dmmexplore: unknown -strategy %q (want exhaustive or ga)\n", *strategy)
		os.Exit(2)
	}
	if *progress {
		opts.OnProgress = func(done, total int) {
			if done%16 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\revaluated %d/%d candidates", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	cands, err := dmmkit.NewEngine(*parallel).Explore(ctx, tr, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "\ndmmexplore: %v (%d candidates evaluated before cancellation)\n", err, len(cands))
		os.Exit(1)
	}
	failed := 0
	var designed *dmmkit.Candidate
	for i := range cands {
		if cands[i].Err != nil {
			failed++
		}
		if cands[i].Designed {
			designed = &cands[i]
		}
	}
	front := dmmkit.ParetoFront(cands)
	fmt.Printf("evaluated %d candidates (%d failed, %.2f%% of the space); Pareto front (footprint vs work):\n\n",
		len(cands), failed, 100*float64(len(cands))/float64(dmmkit.SpaceSize()))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "footprint (B)\twork units\tdesigned?\tvector")
	for _, c := range front {
		mark := ""
		if c.Designed {
			mark = "<== methodology"
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\n", c.MaxFootprint, c.Work, mark, c.Vector)
	}
	tw.Flush()

	if best, ok := dmmkit.BestByFootprint(cands); ok {
		fmt.Printf("\nbest footprint: %d B (work %d)\n", best.MaxFootprint, best.Work)
	}
	if designed != nil && designed.Err == nil {
		rank := 1
		for _, c := range cands {
			if c.Err == nil && !c.Designed && c.MaxFootprint < designed.MaxFootprint {
				rank++
			}
		}
		fmt.Printf("methodology design: footprint %d B, work %d — rank %d/%d by footprint\n",
			designed.MaxFootprint, designed.Work, rank, len(cands)-failed)
		fmt.Printf("decision vector: %s\n", designed.Vector)
	}
}

package core

import (
	"fmt"
	"sort"

	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// Candidate is one evaluated point of the design space.
type Candidate struct {
	Vector       dspace.Vector
	Params       Params
	MaxFootprint int64
	Work         int64
	Designed     bool // produced by the methodology (not enumeration)
	Err          error
}

// ExploreOpts configures a design-space exploration run.
type ExploreOpts struct {
	// MaxCandidates caps how many enumerated vectors are evaluated
	// (default 128). The valid space has ~144k points; evaluation
	// samples it with a uniform stride.
	MaxCandidates int
	// IncludeDesigned additionally evaluates the methodology's design,
	// marking it in the result (default behaviour of Explore).
	IncludeDesigned bool
}

// Explore evaluates a uniform sample of the valid design space against a
// trace, returning every candidate with its measured footprint and work.
// It demonstrates what the paper's Sec. 3 claims: the space contains both
// the general-purpose managers and far better custom points, and
// exhaustive search is feasible once constraints prune the space.
func Explore(tr *trace.Trace, opts ExploreOpts) ([]Candidate, error) {
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 128
	}
	prof := profile.FromTrace(tr)

	total := dspace.Enumerate(func(dspace.Vector) bool { return true })
	stride := total / opts.MaxCandidates
	if stride < 1 {
		stride = 1
	}
	var vectors []dspace.Vector
	i := 0
	dspace.Enumerate(func(v dspace.Vector) bool {
		if i%stride == 0 {
			vectors = append(vectors, v)
		}
		i++
		return true
	})

	tr2 := traitsOf(prof)
	var out []Candidate
	for _, v := range vectors {
		out = append(out, evaluate(v, deriveParams(v, tr2, prof), tr, false))
	}
	if opts.IncludeDesigned {
		d := DesignFor(prof)
		out = append(out, evaluate(d.Vector, d.Params, tr, true))
	}
	return out, nil
}

func evaluate(v dspace.Vector, par Params, tr *trace.Trace, designed bool) Candidate {
	c := Candidate{Vector: v, Params: par, Designed: designed}
	m, err := NewCustom(heap.New(heap.Config{}), v, par)
	if err != nil {
		c.Err = fmt.Errorf("core: building candidate: %w", err)
		return c
	}
	res, err := trace.Run(m, tr, trace.RunOpts{})
	if err != nil {
		c.Err = fmt.Errorf("core: replaying candidate: %w", err)
		return c
	}
	c.MaxFootprint = res.MaxFootprint
	c.Work = int64(res.Work)
	return c
}

// ParetoFront returns the candidates not dominated in (footprint, work),
// sorted by footprint. Failed candidates are excluded.
func ParetoFront(cands []Candidate) []Candidate {
	var ok []Candidate
	for _, c := range cands {
		if c.Err == nil {
			ok = append(ok, c)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].MaxFootprint != ok[j].MaxFootprint {
			return ok[i].MaxFootprint < ok[j].MaxFootprint
		}
		return ok[i].Work < ok[j].Work
	})
	var front []Candidate
	bestWork := int64(1<<62 - 1)
	for _, c := range ok {
		if c.Work < bestWork {
			front = append(front, c)
			bestWork = c.Work
		}
	}
	return front
}

// BestByFootprint returns the successful candidate with the smallest
// footprint, breaking ties by work. ok is false when every candidate
// failed.
func BestByFootprint(cands []Candidate) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range cands {
		if c.Err != nil {
			continue
		}
		if !found || c.MaxFootprint < best.MaxFootprint ||
			(c.MaxFootprint == best.MaxFootprint && c.Work < best.Work) {
			best = c
			found = true
		}
	}
	return best, found
}

package recon3d

import (
	"dmmkit/internal/registry"
	"dmmkit/internal/trace"
)

func init() {
	registry.RegisterWorkload("recon3d", func(o registry.WorkloadOpts) (*trace.Trace, error) {
		cfg := Config{Seed: o.Seed}
		if o.Quick {
			cfg.Pairs = 2
		}
		res, err := StreamTrace(cfg, o.Sink)
		if err != nil {
			return nil, err
		}
		return res.Trace, nil
	})
}

// Package detrandfix exercises the detrand analyzer: global math/rand
// and wall-clock reads are violations; seeded generators are blessed.
package detrandfix

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// GlobalRand uses the shared global generator: every call site makes the
// result depend on process history and goroutine interleaving.
func GlobalRand() int {
	n := rand.Intn(10)                 // want `global math/rand\.Intn breaks deterministic replay`
	f := rand.Float64()                // want `global math/rand\.Float64 breaks deterministic replay`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand\.Shuffle breaks deterministic replay`
	_ = rand.Perm(4)                   // want `global math/rand\.Perm breaks deterministic replay`
	_ = f
	return int(rand.Int63()) // want `global math/rand\.Int63 breaks deterministic replay`
}

// GlobalRandV2 checks the math/rand/v2 path too.
func GlobalRandV2() int {
	return randv2.IntN(10) // want `global math/rand/v2\.IntN breaks deterministic replay`
}

// SeededRand is the blessed pattern: an explicitly seeded generator
// threaded through the call chain. Constructor calls and methods on the
// seeded *rand.Rand are fine.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	n := r.Intn(10)
	r2 := randv2.New(randv2.NewPCG(1, 2))
	return n + r2.IntN(10)
}

// WallClock reads the wall clock in a deterministic package.
func WallClock() int64 {
	t0 := time.Now()    // want `time\.Now in deterministic package detrandfix`
	d := time.Since(t0) // want `time\.Since in deterministic package detrandfix`
	return int64(d)
}

// TimeValuesOK: using time types and constants without reading the
// clock is fine.
func TimeValuesOK(d time.Duration) time.Duration {
	return d + time.Millisecond
}

package core

import (
	"context"
	"strings"
	"testing"

	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// drrLikeTrace mimics the DRR behaviour: packet buffers of highly variable
// size, enqueued and dequeued in rough FIFO order.
func drrLikeTrace() *trace.Trace {
	b := trace.NewBuilder("drr-like")
	sizes := []int64{40, 64, 552, 576, 1300, 1500, 900, 128, 256, 1400}
	var q []int64
	for i := 0; i < 2000; i++ {
		if len(q) < 40 || i%3 != 0 {
			q = append(q, b.Alloc(sizes[i%len(sizes)], 0))
		}
		if len(q) > 30 {
			b.Free(q[0])
			q = q[1:]
		}
		b.Tick()
	}
	for _, id := range q {
		b.Free(id)
	}
	return b.Build()
}

// uniformTrace allocates a single size (a partition-friendly profile).
func uniformTrace() *trace.Trace {
	b := trace.NewBuilder("uniform")
	var ids []int64
	for i := 0; i < 500; i++ {
		ids = append(ids, b.Alloc(128, 0))
		if len(ids) > 20 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	for _, id := range ids {
		b.Free(id)
	}
	return b.Build()
}

func TestDesignForDRRMatchesPaperWalk(t *testing.T) {
	// Sec. 5 walkthrough: A2=many (variable), A5=split+coalesce,
	// E2=D2=always, E1=D1=many not fixed, B1=single pool, C1=exact fit,
	// A1=doubly linked, A3=header with size+status info.
	p := profile.FromTrace(drrLikeTrace())
	d := DesignFor(p)
	v := d.Vector
	if err := dspace.Validate(&v); err != nil {
		t.Fatalf("designed vector invalid: %v", err)
	}
	checks := []struct {
		tree dspace.Tree
		want dspace.Leaf
	}{
		{dspace.A2BlockSizes, dspace.ManyVarSizes},
		{dspace.A5FlexBlockSize, dspace.SplitCoalesce},
		{dspace.E2SplitWhen, dspace.Always},
		{dspace.D2CoalesceWhen, dspace.Always},
		{dspace.E1MinBlockSizes, dspace.ManyNotFixed},
		{dspace.D1MaxBlockSizes, dspace.ManyNotFixed},
		{dspace.B1PoolDivision, dspace.SinglePool},
		{dspace.C1Fit, dspace.ExactFit},
		{dspace.A1BlockStructure, dspace.DoublyLinked},
		{dspace.A3BlockTags, dspace.HeaderTag},
	}
	for _, c := range checks {
		if got := v.Get(c.tree); got != c.want {
			t.Errorf("%v = %s, paper walkthrough chooses %s",
				c.tree, dspace.LeafName(c.tree, got), dspace.LeafName(c.tree, c.want))
		}
	}
	if len(d.Walk) != dspace.NumTrees {
		t.Errorf("walk has %d steps, want %d", len(d.Walk), dspace.NumTrees)
	}
}

func TestDesignForUniformPicksPartitions(t *testing.T) {
	p := profile.FromTrace(uniformTrace())
	d := DesignFor(p)
	v := d.Vector
	if v.BlockSizes != dspace.OneBlockSize {
		t.Errorf("A2 = %s, want one", dspace.LeafName(dspace.A2BlockSizes, v.BlockSizes))
	}
	if v.Flex != dspace.NoFlex {
		t.Errorf("A5 = %s, want none", dspace.LeafName(dspace.A5FlexBlockSize, v.Flex))
	}
	if v.BlockTags != dspace.NoTags {
		t.Errorf("A3 = %s, want none (no per-block overhead)", dspace.LeafName(dspace.A3BlockTags, v.BlockTags))
	}
	if err := dspace.Validate(&v); err != nil {
		t.Fatalf("designed vector invalid: %v", err)
	}
}

func TestDesignedManagerBeatsBaselinesOnItsProfile(t *testing.T) {
	tr := drrLikeTrace()
	p := profile.FromTrace(tr)
	d := DesignFor(p)
	m, err := d.Build(heap.New(heap.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.Run(context.Background(), m, tr, trace.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead() > 1.6 {
		t.Errorf("designed manager overhead %.2f, want close to live bytes", res.Overhead())
	}
}

func TestWrongOrderDesignLosesFlexibility(t *testing.T) {
	// Figure 4: deciding A3 first picks "none" to save header bytes,
	// which forbids split/coalesce downstream.
	p := profile.FromTrace(drrLikeTrace())
	d := WrongOrderDesign(p)
	v := d.Vector
	if err := dspace.Validate(&v); err != nil {
		t.Fatalf("wrong-order vector still must be valid: %v", err)
	}
	if v.BlockTags != dspace.NoTags {
		t.Errorf("A3 = %s, want none (greedy first decision)", dspace.LeafName(dspace.A3BlockTags, v.BlockTags))
	}
	if v.SplitWhen != dspace.Never || v.CoalesceWhen != dspace.Never {
		t.Error("wrong order should have propagated into never split/coalesce")
	}
	// And it must cost footprint on the very profile it was designed for.
	tr := drrLikeTrace()
	right, err := DesignFor(p).Build(heap.New(heap.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := d.Build(heap.New(heap.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	rightRes, err := trace.Run(context.Background(), right, tr, trace.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wrongRes, err := trace.Run(context.Background(), wrong, tr, trace.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if wrongRes.MaxFootprint <= rightRes.MaxFootprint {
		t.Errorf("wrong order footprint %d <= right order %d; Figure 4 expects a penalty",
			wrongRes.MaxFootprint, rightRes.MaxFootprint)
	}
}

func TestDesignStringShowsReasons(t *testing.T) {
	p := profile.FromTrace(drrLikeTrace())
	d := DesignFor(p)
	s := d.String()
	for _, frag := range []string{"exact fit", "coalescing", "single pool"} {
		if !strings.Contains(s, frag) {
			t.Errorf("decision log missing %q:\n%s", frag, s)
		}
	}
}

func phasedTrace() *trace.Trace {
	b := trace.NewBuilder("phased")
	// Phase 0: uniform small blocks, fully freed.
	b.SetPhase(0)
	var ids []int64
	for i := 0; i < 300; i++ {
		ids = append(ids, b.Alloc(64, 0))
	}
	for _, id := range ids {
		b.Free(id)
	}
	// Phase 1: highly variable blocks.
	b.SetPhase(1)
	ids = nil
	sizes := []int64{100, 999, 4000, 40, 2222, 808}
	for i := 0; i < 300; i++ {
		ids = append(ids, b.Alloc(sizes[i%len(sizes)], 1))
		if len(ids) > 20 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	for _, id := range ids {
		b.Free(id)
	}
	return b.Build()
}

func TestBuildGlobalComposesAtomicManagers(t *testing.T) {
	tr := phasedTrace()
	p := profile.FromTrace(tr)
	g, designs, err := BuildGlobal("Custom", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) != 2 {
		t.Fatalf("got %d designs, want 2 (one per phase)", len(designs))
	}
	// Phase 0 is uniform: its atomic manager should be a partition-style
	// design; phase 1 variable: a flexible design.
	if designs[0].Vector.Flex != dspace.NoFlex {
		t.Error("phase 0 design should need no flexible block manager")
	}
	if designs[1].Vector.Flex != dspace.SplitCoalesce {
		t.Error("phase 1 design should split+coalesce")
	}
	res, err := trace.Run(context.Background(), g, tr, trace.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFootprint < tr.MaxLiveBytes() {
		t.Errorf("global footprint %d below live bytes %d", res.MaxFootprint, tr.MaxLiveBytes())
	}
	if g.Stats().LiveBytes != 0 {
		t.Errorf("LiveBytes = %d after full replay, want 0", g.Stats().LiveBytes)
	}
}

func TestGlobalRoutesFreesAcrossPhases(t *testing.T) {
	h0, h1 := heap.New(heap.Config{}), heap.New(heap.Config{})
	p := profile.FromTrace(drrLikeTrace())
	m0, err := DesignFor(p).Build(h0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := DesignFor(p).Build(h1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGlobal("G", map[int]mm.Manager{0: m0, 1: m1})
	if err != nil {
		t.Fatal(err)
	}
	// Allocate in phase 0, free during phase 1: the handle must route
	// back to phase 0's manager.
	ha, err := g.Alloc(mm.Request{Size: 100, Phase: 0})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := g.Alloc(mm.Request{Size: 100, Phase: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Free(ha); err != nil {
		t.Fatal(err)
	}
	if err := g.Free(hb); err != nil {
		t.Fatal(err)
	}
	if m0.Stats().Frees != 1 || m1.Stats().Frees != 1 {
		t.Errorf("frees routed wrong: m0=%d m1=%d", m0.Stats().Frees, m1.Stats().Frees)
	}
	if err := g.Free(ha); err == nil {
		t.Error("double free through global succeeded")
	}
	// Unknown phases fall back to the lowest phase's manager.
	if _, err := g.Alloc(mm.Request{Size: 50, Phase: 99}); err != nil {
		t.Errorf("fallback phase alloc failed: %v", err)
	}
}

func TestGlobalFootprintIsSumHighWater(t *testing.T) {
	h0, h1 := heap.New(heap.Config{}), heap.New(heap.Config{})
	p := profile.FromTrace(uniformTrace())
	m0, _ := DesignFor(p).Build(h0)
	m1, _ := DesignFor(p).Build(h1)
	g, err := NewGlobal("G", map[int]mm.Manager{0: m0, 1: m1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Alloc(mm.Request{Size: 128, Phase: 0})
	if err := g.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Alloc(mm.Request{Size: 128, Phase: 1}); err != nil {
		t.Fatal(err)
	}
	if g.Footprint() != m0.Footprint()+m1.Footprint() {
		t.Error("Footprint is not the sum of atomic footprints")
	}
	if g.MaxFootprint() > m0.MaxFootprint()+m1.MaxFootprint() {
		t.Error("MaxFootprint exceeds the sum of atomic high-water marks")
	}
	g.Reset()
	if g.Footprint() != 0 || g.MaxFootprint() != 0 {
		t.Error("Reset did not clear global state")
	}
}

package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunVisitsEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 2, 8, 100} {
		const n = 64
		var counts [n]atomic.Int32
		err := Run(context.Background(), par, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", par, i, got)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(context.Background(), 4, 0, func(int) error {
		t.Error("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Run(context.Background(), 4, 1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() == 1000 {
		t.Error("error did not stop the pool early")
	}
}

func TestRunSequentialErrorIsFirst(t *testing.T) {
	first := errors.New("first")
	err := Run(context.Background(), 1, 10, func(i int) error {
		if i >= 2 {
			return errors.New("later")
		}
		if i == 1 {
			return first
		}
		return nil
	})
	if !errors.Is(err, first) {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := Run(ctx, 4, 100, func(int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunNilContext(t *testing.T) {
	var ran atomic.Int32
	if err := Run(nil, 2, 10, func(int) error { //nolint:staticcheck // deliberate nil ctx
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10", ran.Load())
	}
}

func TestRunRecoversPanic(t *testing.T) {
	for _, par := range []int{1, 8} {
		var ran atomic.Int32
		err := Run(context.Background(), par, 64, func(i int) error {
			ran.Add(1)
			if i == 5 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("parallelism %d: err = %v, want *PanicError", par, err)
		}
		if pe.Index != 5 {
			t.Errorf("parallelism %d: panic index = %d, want 5", par, pe.Index)
		}
		if pe.Value != "kaboom" {
			t.Errorf("parallelism %d: panic value = %v, want kaboom", par, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("parallelism %d: panic stack not captured", par)
		}
		if ran.Load() == 64 {
			t.Errorf("parallelism %d: panic did not stop the pool early", par)
		}
	}
}

func TestRunPanicPrefersLowestIndex(t *testing.T) {
	// Sequentially the first panicking index must win deterministically.
	err := Run(context.Background(), 1, 16, func(i int) error {
		if i >= 3 {
			panic(i)
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 3 {
		t.Errorf("panic index = %d, want 3", pe.Index)
	}
}

func TestRunPanicAtParallelismReportsAPanic(t *testing.T) {
	// Every job panics: whatever the scheduling, the pool must surface
	// one of the panics as a *PanicError, never crash the process.
	err := Run(context.Background(), 8, 32, func(i int) error {
		panic(i)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

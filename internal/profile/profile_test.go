package profile

import (
	"bytes"
	"reflect"
	"testing"

	"dmmkit/internal/trace"
)

func TestBasicCounts(t *testing.T) {
	b := trace.NewBuilder("t")
	a1 := b.Alloc(100, 0)
	a2 := b.Alloc(100, 1)
	a3 := b.Alloc(500, 0)
	b.Free(a3)
	b.Free(a2)
	b.Free(a1)
	p := FromTrace(b.Build())
	if p.Allocs != 3 || p.Frees != 3 {
		t.Errorf("Allocs/Frees = %d/%d, want 3/3", p.Allocs, p.Frees)
	}
	if p.DistinctSizes != 2 {
		t.Errorf("DistinctSizes = %d, want 2", p.DistinctSizes)
	}
	if p.MinSize != 100 || p.MaxSize != 500 {
		t.Errorf("size range = [%d,%d], want [100,500]", p.MinSize, p.MaxSize)
	}
	if p.MaxLiveBytes != 700 {
		t.Errorf("MaxLiveBytes = %d, want 700", p.MaxLiveBytes)
	}
	if p.TagMax[0] != 500 || p.TagMax[1] != 100 {
		t.Errorf("TagMax = %v", p.TagMax)
	}
	if p.NeverFreed != 0 {
		t.Errorf("NeverFreed = %d, want 0", p.NeverFreed)
	}
}

func TestLIFOScoreHighForStackPattern(t *testing.T) {
	b := trace.NewBuilder("stack")
	var ids []int64
	for i := 0; i < 100; i++ {
		ids = append(ids, b.Alloc(64, 0))
	}
	for i := len(ids) - 1; i >= 0; i-- {
		b.Free(ids[i])
	}
	p := FromTrace(b.Build())
	if p.LIFOScore < 0.99 {
		t.Errorf("LIFOScore = %.2f for pure stack pattern, want ~1", p.LIFOScore)
	}
}

func TestLIFOScoreLowForFIFOPattern(t *testing.T) {
	b := trace.NewBuilder("queue")
	var ids []int64
	for i := 0; i < 100; i++ {
		ids = append(ids, b.Alloc(64, 0))
	}
	for _, id := range ids {
		b.Free(id)
	}
	p := FromTrace(b.Build())
	if p.LIFOScore > 0.10 {
		t.Errorf("LIFOScore = %.2f for pure queue pattern, want ~0", p.LIFOScore)
	}
}

func TestSizeCVZeroForUniformSizes(t *testing.T) {
	b := trace.NewBuilder("uniform")
	for i := 0; i < 50; i++ {
		b.Alloc(256, 0)
	}
	p := FromTrace(b.Build())
	if p.SizeCV > 1e-9 {
		t.Errorf("SizeCV = %f for uniform sizes, want 0", p.SizeCV)
	}
}

func TestSizeCVHighForVariableSizes(t *testing.T) {
	b := trace.NewBuilder("variable")
	for i := 0; i < 50; i++ {
		b.Alloc(40, 0)
		b.Alloc(1500, 0)
	}
	p := FromTrace(b.Build())
	if p.SizeCV < 0.5 {
		t.Errorf("SizeCV = %f for bimodal sizes, want high", p.SizeCV)
	}
}

func TestPhasesSeparated(t *testing.T) {
	b := trace.NewBuilder("phases")
	b.SetPhase(0)
	a := b.Alloc(100, 0)
	b.Free(a)
	b.SetPhase(1)
	for i := 0; i < 10; i++ {
		b.Alloc(2000, 0)
	}
	p := FromTrace(b.Build())
	if len(p.Phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(p.Phases))
	}
	if p.Phases[0].Phase != 0 || p.Phases[1].Phase != 1 {
		t.Errorf("phase ids = %d,%d", p.Phases[0].Phase, p.Phases[1].Phase)
	}
	if p.Phases[0].MaxSize != 100 || p.Phases[1].MaxSize != 2000 {
		t.Errorf("per-phase max sizes = %d,%d", p.Phases[0].MaxSize, p.Phases[1].MaxSize)
	}
	if p.Phases[1].MaxLiveBytes != 20000 {
		t.Errorf("phase 1 MaxLiveBytes = %d, want 20000", p.Phases[1].MaxLiveBytes)
	}
}

func TestLifetimes(t *testing.T) {
	b := trace.NewBuilder("life")
	a1 := b.Alloc(10, 0) // freed after 2 events
	a2 := b.Alloc(10, 0) // freed after 2 events
	b.Free(a1)
	b.Free(a2)
	b.Alloc(10, 0) // never freed
	p := FromTrace(b.Build())
	if p.MeanLifetime != 2 {
		t.Errorf("MeanLifetime = %f, want 2", p.MeanLifetime)
	}
	if p.NeverFreed != 1 {
		t.Errorf("NeverFreed = %d, want 1", p.NeverFreed)
	}
}

func TestTopSizes(t *testing.T) {
	b := trace.NewBuilder("top")
	for i := 0; i < 30; i++ {
		b.Alloc(40, 0)
	}
	for i := 0; i < 20; i++ {
		b.Alloc(1500, 0)
	}
	for i := 0; i < 5; i++ {
		b.Alloc(576, 0)
	}
	p := FromTrace(b.Build())
	top := p.TopSizes(2)
	if len(top) != 2 || top[0] != 40 || top[1] != 1500 {
		t.Errorf("TopSizes(2) = %v, want [40 1500]", top)
	}
	all := p.TopSizes(10)
	if len(all) != 3 {
		t.Errorf("TopSizes(10) returned %d sizes, want 3", len(all))
	}
}

func TestPerSizeMaxLive(t *testing.T) {
	b := trace.NewBuilder("persize")
	a1 := b.Alloc(100, 0)
	a2 := b.Alloc(100, 0) // peak 200 for size 100
	b.Free(a1)
	b.Free(a2)
	a3 := b.Alloc(100, 0)
	b.Free(a3)
	p := FromTrace(b.Build())
	if len(p.Sizes) != 1 || p.Sizes[0].MaxLive != 200 {
		t.Errorf("Sizes = %+v, want one entry with MaxLive 200", p.Sizes)
	}
	if p.Sizes[0].Count != 3 {
		t.Errorf("Count = %d, want 3", p.Sizes[0].Count)
	}
}

// TestFromSourceMatchesFromTrace pins the streaming profiler to the
// in-memory one: profiling a trace decoded event-by-event off its binary
// encoding must reproduce every field.
func TestFromSourceMatchesFromTrace(t *testing.T) {
	b := trace.NewBuilder("differential")
	var ids []int64
	for i := 0; i < 400; i++ {
		b.SetPhase(i / 100)
		ids = append(ids, b.Alloc(int64(16+i%7*24), i%3))
		if i%2 == 1 {
			b.Free(ids[0])
			ids = ids[1:]
		}
		if i%5 == 0 {
			b.Tick()
		}
	}
	tr := b.Build()

	var buf bytes.Buffer
	if err := tr.EncodeBinary2(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := trace.DecodeBinarySource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := FromSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(FromTrace(tr), streamed) {
		t.Error("streaming profile differs from in-memory profile")
	}
}

// TestFromSourceReportsDecodeError surfaces stream corruption as a
// profiling error instead of a silent partial profile.
func TestFromSourceReportsDecodeError(t *testing.T) {
	b := trace.NewBuilder("x")
	b.Free(b.Alloc(10, 0))
	var buf bytes.Buffer
	if err := b.Build().EncodeBinary2(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := trace.DecodeBinarySource(bytes.NewReader(buf.Bytes()[:buf.Len()-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromSource(src); err == nil {
		t.Error("profiling a truncated stream succeeded")
	}
}

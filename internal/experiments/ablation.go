package experiments

import (
	"context"
	"fmt"

	"dmmkit/internal/core"
	"dmmkit/internal/heap"
	"dmmkit/internal/pool"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// OrderResult compares the methodology's decision order against the
// Figure 4 counter-example (block tags decided first).
type OrderResult struct {
	RightFootprint int64
	WrongFootprint int64
	RightDesign    core.Design
	WrongDesign    core.Design
	Penalty        float64 // wrong/right - 1
}

// RunOrderAblation designs DRR managers with the correct and the wrong
// tree order and measures both footprints (averaged over seeds, which run
// concurrently per cfg.Parallelism).
func RunOrderAblation(ctx context.Context, cfg Config) (*OrderResult, error) {
	cfg.defaults()
	type seedResult struct {
		right, wrong   int64
		rightD, wrongD core.Design
	}
	perSeed := make([]seedResult, cfg.Seeds)
	err := pool.Run(ctx, cfg.Parallelism, cfg.Seeds, func(i int) error {
		seed := int64(i + 1)
		tr, err := BuildWorkloadTrace(WorkloadDRR, seed, cfg.Quick)
		if err != nil {
			return err
		}
		prof := profile.FromTrace(tr)
		right := core.DesignFor(prof)
		wrong := core.WrongOrderDesign(prof)

		rm, err := right.Build(heap.New(heap.Config{}))
		if err != nil {
			return err
		}
		rr, err := trace.Run(ctx, rm, tr, trace.RunOpts{})
		if err != nil {
			return fmt.Errorf("order ablation (right): %w", err)
		}
		wm, err := wrong.Build(heap.New(heap.Config{}))
		if err != nil {
			return err
		}
		wr, err := trace.Run(ctx, wm, tr, trace.RunOpts{})
		if err != nil {
			return fmt.Errorf("order ablation (wrong): %w", err)
		}
		perSeed[i] = seedResult{rr.MaxFootprint, wr.MaxFootprint, right, wrong}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &OrderResult{}
	for _, s := range perSeed {
		res.RightFootprint += s.right
		res.WrongFootprint += s.wrong
	}
	last := perSeed[len(perSeed)-1]
	res.RightDesign, res.WrongDesign = last.rightD, last.wrongD
	res.RightFootprint /= int64(cfg.Seeds)
	res.WrongFootprint /= int64(cfg.Seeds)
	if res.RightFootprint > 0 {
		res.Penalty = float64(res.WrongFootprint)/float64(res.RightFootprint) - 1
	}
	return res, nil
}

// StaticResult compares static worst-case sizing against dynamic
// management (the Sec. 1 motivation: static sizing costs more memory).
type StaticResult struct {
	StaticBytes int64 // worst-case static buffer plan
	DynamicPeak int64 // custom manager footprint
	Overhead    float64
}

// RunStaticVsDynamic sizes every allocation site statically for its worst
// case (peak concurrent blocks x largest request, per tag) and compares
// with the custom manager's dynamic footprint on DRR. Seeds run
// concurrently per cfg.Parallelism.
func RunStaticVsDynamic(ctx context.Context, cfg Config) (*StaticResult, error) {
	cfg.defaults()
	type seedResult struct{ static, dynamic int64 }
	perSeed := make([]seedResult, cfg.Seeds)
	err := pool.Run(ctx, cfg.Parallelism, cfg.Seeds, func(i int) error {
		seed := int64(i + 1)
		tr, err := BuildWorkloadTrace(WorkloadDRR, seed, cfg.Quick)
		if err != nil {
			return err
		}
		prof := profile.FromTrace(tr)
		mgr, err := NewManager(MgrCustom, prof)
		if err != nil {
			return err
		}
		run, err := trace.Run(ctx, mgr, tr, trace.RunOpts{})
		if err != nil {
			return err
		}
		perSeed[i] = seedResult{staticPlanBytes(tr), run.MaxFootprint}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &StaticResult{}
	for _, s := range perSeed {
		res.StaticBytes += s.static
		res.DynamicPeak += s.dynamic
	}
	res.StaticBytes /= int64(cfg.Seeds)
	res.DynamicPeak /= int64(cfg.Seeds)
	if res.DynamicPeak > 0 {
		res.Overhead = float64(res.StaticBytes)/float64(res.DynamicPeak) - 1
	}
	return res, nil
}

// staticPlanBytes computes the worst-case static buffer plan of a trace:
// for each allocation tag, peak concurrent block count times largest
// request (every block sized for the worst case, as a static design must).
func staticPlanBytes(tr *trace.Trace) int64 {
	type tagState struct {
		live, peak int64
		maxSize    int64
	}
	tags := map[int32]*tagState{}
	sizes := map[int64]int32{}
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindAlloc:
			ts := tags[e.Tag]
			if ts == nil {
				ts = &tagState{}
				tags[e.Tag] = ts
			}
			ts.live++
			if ts.live > ts.peak {
				ts.peak = ts.live
			}
			if e.Size > ts.maxSize {
				ts.maxSize = e.Size
			}
			sizes[e.ID] = e.Tag
		case trace.KindFree:
			tags[sizes[e.ID]].live--
			delete(sizes, e.ID)
		}
	}
	var total int64
	for _, ts := range tags {
		total += ts.peak * ts.maxSize
	}
	return total
}

// PerfResult reports the execution-time proxy per workload: allocator
// work units of each manager, plus the application-level overhead of the
// custom manager versus Kingsley (the fastest general-purpose manager in
// the paper's measurements), using the trace.AppWork application model —
// the quantity the paper reports as "~10% overhead over the execution
// time of the fastest general-purpose DM manager".
type PerfResult struct {
	Workload    Workload
	Units       map[ManagerName]float64 // total allocator work units
	AppUnits    float64                 // application work (trace.AppWork)
	AllocRatio  float64                 // custom/kingsley allocator work
	AppOverhead float64                 // app-level overhead: custom vs kingsley
}

// RunPerf measures work units for every manager on every workload.
func RunPerf(ctx context.Context, cfg Config) ([]PerfResult, error) {
	cfg.defaults()
	t1, err := RunTable1(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var out []PerfResult
	for _, w := range Workloads {
		pr := PerfResult{Workload: w, Units: make(map[ManagerName]float64)}
		tr, err := BuildWorkloadTrace(w, 1, cfg.Quick)
		if err != nil {
			return nil, err
		}
		pr.AppUnits = float64(trace.AppWork(tr))
		for _, m := range Managers {
			c := t1.Cells[m][w]
			if c.Runs > 0 {
				pr.Units[m] = float64(c.Work)
			}
		}
		if k := pr.Units[MgrKingsley]; k > 0 {
			pr.AllocRatio = pr.Units[MgrCustom] / k
			pr.AppOverhead = (pr.AppUnits+pr.Units[MgrCustom])/(pr.AppUnits+pr.Units[MgrKingsley]) - 1
		}
		out = append(out, pr)
	}
	return out, nil
}

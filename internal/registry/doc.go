// Package registry is the extension point of the toolkit: DM managers and
// trace-producing workloads register themselves by name, and every consumer
// (the experiments driver, the CLIs, the examples, user code through the
// dmmkit facade) constructs them through a single lookup instead of a
// hardcoded switch. Adding a scenario becomes a one-line registration.
//
// The built-ins self-register from their packages' init functions:
// managers "kingsley", "lea", "regions", "obstack", "custom" (the
// methodology's per-phase global manager) and "designed" (a single atomic
// designed manager); workloads "drr", "recon3d" and "render3d".
package registry

package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// Clone returns a deep copy of the custom manager over a clone of its
// heap: the copy and the original replay independently. Pools, keys,
// the nonempty bitset, the out-of-band size/key tables and the shadow
// table are deep-copied; the design vector, parameters and layout are
// read-only after construction and shared.
func (m *Custom) Clone() *Custom {
	n := *m
	n.h = m.h.Clone()
	n.v.H = n.h
	n.pools = make(map[poolKey]*pool, len(m.pools))
	for k, p := range m.pools {
		cp := *p
		n.pools[k] = &cp
	}
	n.keys = append([]poolKey(nil), m.keys...)
	n.ne = m.ne.Clone()
	n.grossOf = cloneAddrMap(m.grossOf)
	n.direct = cloneAddrMap(m.direct)
	if m.freeKey != nil {
		n.freeKey = make(map[heap.Addr]poolKey, len(m.freeKey))
		for k, v := range m.freeKey {
			n.freeKey[k] = v
		}
	}
	n.live = m.live.Clone()
	return &n
}

func cloneAddrMap(src map[heap.Addr]int64) map[heap.Addr]int64 {
	if src == nil {
		return nil
	}
	dst := make(map[heap.Addr]int64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// CloneManager implements mm.Cloner.
func (m *Custom) CloneManager() (mm.Manager, error) { return m.Clone(), nil }

// StateChecksum implements mm.Checksummer by digesting the simulated
// heap, where all in-band manager state lives.
func (m *Custom) StateChecksum() uint64 { return m.h.Checksum() }

// CloneManager implements mm.Cloner for the phase-dispatching manager:
// every atomic per-phase manager is cloned and the handle table is
// remapped onto the clones, so the copy dispatches to its own managers,
// never the original's. It fails if a child manager cannot be cloned
// (BuildGlobal only installs Custom managers, which can).
func (g *Global) CloneManager() (mm.Manager, error) {
	n := &Global{
		name:         g.name,
		byPhase:      make(map[int]mm.Manager, len(g.byPhase)),
		order:        append([]int(nil), g.order...),
		handles:      make(map[heap.Addr]handleInfo, len(g.handles)),
		nextHandle:   g.nextHandle,
		maxFootprint: g.maxFootprint,
		failed:       g.failed,
	}
	oldToNew := make(map[mm.Manager]mm.Manager, len(g.byPhase))
	for _, ph := range g.order {
		old := g.byPhase[ph]
		// One manager may serve several phases; its clone must too, or
		// the copy would split state the original shares.
		if cm, ok := oldToNew[old]; ok {
			n.byPhase[ph] = cm
			continue
		}
		c, ok := old.(mm.Cloner)
		if !ok {
			return nil, fmt.Errorf("core: %s: phase %d manager %s is not cloneable", g.name, ph, old.Name())
		}
		cm, err := c.CloneManager()
		if err != nil {
			return nil, fmt.Errorf("core: %s: phase %d: %w", g.name, ph, err)
		}
		n.byPhase[ph] = cm
		oldToNew[old] = cm
	}
	for h, hi := range g.handles {
		n.handles[h] = handleInfo{mgr: oldToNew[hi.mgr], real: hi.real}
	}
	return n, nil
}

// StateChecksum implements mm.Checksummer: the per-phase managers'
// checksums in phase order, then the handle table (sorted by handle,
// with each handle's manager identified by its phase, not its pointer,
// so a clone and its original agree).
func (g *Global) StateChecksum() uint64 {
	sum := fnv.New64a()
	var scratch [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		sum.Write(scratch[:])
	}
	phaseOf := make(map[mm.Manager]int, len(g.byPhase))
	for _, ph := range g.order {
		phaseOf[g.byPhase[ph]] = ph
		word(uint64(int64(ph)))
		if cs, ok := g.byPhase[ph].(mm.Checksummer); ok {
			word(cs.StateChecksum())
		}
	}
	handles := make([]heap.Addr, 0, len(g.handles))
	for h := range g.handles {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	for _, h := range handles {
		hi := g.handles[h]
		word(uint64(h))
		word(uint64(int64(phaseOf[hi.mgr])))
		word(uint64(hi.real))
	}
	word(uint64(g.nextHandle))
	word(uint64(g.failed))
	return sum.Sum64()
}

var (
	_ mm.Cloner      = (*Custom)(nil)
	_ mm.Checksummer = (*Custom)(nil)
	_ mm.Cloner      = (*Global)(nil)
	_ mm.Checksummer = (*Global)(nil)
)

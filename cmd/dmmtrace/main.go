// Command dmmtrace generates the case-study allocation traces to files in
// the binary or JSON trace format, for use with dmmprofile and dmmexplore.
//
// Usage:
//
//	dmmtrace -workload drr -seed 3 -o drr3.trace
//	dmmtrace -workload recon3d -format json -o recon.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dmmkit"
)

func main() {
	var (
		workload = flag.String("workload", "drr", "drr, recon3d or render3d")
		seed     = flag.Int64("seed", 1, "workload seed")
		format   = flag.String("format", "binary", "binary or json")
		out      = flag.String("o", "", "output file (default <workload><seed>.trace)")
	)
	flag.Parse()

	var tr *dmmkit.Trace
	switch *workload {
	case "drr":
		tr = dmmkit.DRRTrace(dmmkit.DRRConfig{Seed: *seed})
	case "recon3d":
		tr = dmmkit.Recon3DTrace(dmmkit.Recon3DConfig{Seed: *seed})
	case "render3d":
		tr = dmmkit.Render3DTrace(dmmkit.Render3DConfig{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "dmmtrace: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s%d.trace", *workload, *seed)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmtrace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = tr.EncodeBinary(f)
	case "json":
		err = tr.EncodeJSON(f)
	default:
		fmt.Fprintf(os.Stderr, "dmmtrace: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmtrace: encoding: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d events, peak live %d bytes -> %s\n",
		tr.Name, len(tr.Events), tr.MaxLiveBytes(), path)
}

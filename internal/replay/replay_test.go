package replay_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
	"dmmkit/internal/replay"
	"dmmkit/internal/trace"

	_ "dmmkit/internal/alloc/kingsley"
	_ "dmmkit/internal/alloc/lea"
	_ "dmmkit/internal/alloc/obstack"
	_ "dmmkit/internal/alloc/region"
	_ "dmmkit/internal/core"
	_ "dmmkit/internal/workloads/drr"
	_ "dmmkit/internal/workloads/recon3d"
	_ "dmmkit/internal/workloads/render3d"
)

// shardOpts forces multiple shards even on quick traces, which are too
// short for the production defaults to split.
var shardOpts = replay.Options{Every: 512, MinWindow: 64, MaxShards: 8}

// TestShardedReplayMatchesSequential is the acceptance differential for
// the sharding tentpole: for every registered workload and manager, the
// Build result, the parallel sharded Replay result and the incremental
// ReplayFrom result must all equal the plain sequential trace.Run
// result — footprint, work, stats, and the heap's system-call counters.
func TestShardedReplayMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for _, w := range registry.Workloads() {
		tr, err := registry.BuildWorkload(w, registry.WorkloadOpts{Seed: 1, Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		prof := profile.FromTrace(tr)
		for _, m := range registry.Managers() {
			h1 := heap.New(heap.Config{})
			m1, err := registry.NewManager(m, h1, prof)
			if err != nil {
				t.Fatalf("%s/%s: %v", w, m, err)
			}
			want, err := trace.Run(ctx, m1, tr, trace.RunOpts{})
			if err != nil {
				t.Fatalf("%s/%s: sequential replay: %v", w, m, err)
			}

			h2 := heap.New(heap.Config{})
			m2, err := registry.NewManager(m, h2, prof)
			if err != nil {
				t.Fatalf("%s/%s: %v", w, m, err)
			}
			phases, buildRes, err := replay.Build(ctx, m2, tr, shardOpts)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", w, m, err)
			}
			if !reflect.DeepEqual(want, buildRes) {
				t.Errorf("%s/%s: build result diverged\nwant: %+v\ngot:  %+v", w, m, want, buildRes)
			}
			if h1.SysStats() != h2.SysStats() {
				t.Errorf("%s/%s: heap SysStats diverged: %+v vs %+v", w, m, h1.SysStats(), h2.SysStats())
			}
			if phases.Shards() < 2 {
				t.Errorf("%s/%s: only %d shard(s); the differential needs a real split", w, m, phases.Shards())
			}
			if phases.Events() != len(tr.Events) {
				t.Errorf("%s/%s: indexed %d events, trace has %d", w, m, phases.Events(), len(tr.Events))
			}

			sharded, err := phases.Replay(ctx, 4, trace.RunOpts{})
			if err != nil {
				t.Fatalf("%s/%s: sharded replay: %v", w, m, err)
			}
			if !reflect.DeepEqual(want, sharded) {
				t.Errorf("%s/%s: sharded replay diverged\nwant: %+v\ngot:  %+v", w, m, want, sharded)
			}

			for _, k := range []int{0, phases.Shards() - 1} {
				suffix, err := phases.ReplayFrom(ctx, k, trace.RunOpts{})
				if err != nil {
					t.Fatalf("%s/%s: replay from shard %d: %v", w, m, k, err)
				}
				suffix.Series = nil
				if !reflect.DeepEqual(want, suffix) {
					t.Errorf("%s/%s: suffix replay from shard %d diverged\nwant: %+v\ngot:  %+v", w, m, k, want, suffix)
				}
			}
		}
	}
}

// TestShardedReplayFromFile runs the differential over a DMMT2 file
// opener, which exercises the positioned OpenAt path: shards seek
// straight to their snapshot offsets instead of re-decoding the prefix.
func TestShardedReplayFromFile(t *testing.T) {
	ctx := context.Background()
	tr, err := registry.BuildWorkload("drr", registry.WorkloadOpts{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.FromTrace(tr)
	path := filepath.Join(t.TempDir(), "drr.dmmt2")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeBinary2(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, m := range registry.Managers() {
		m1, err := registry.NewManager(m, nil, prof)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		want, err := trace.Run(ctx, m1, tr, trace.RunOpts{})
		if err != nil {
			t.Fatalf("%s: sequential replay: %v", m, err)
		}

		m2, err := registry.NewManager(m, nil, prof)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		phases, _, err := replay.Build(ctx, m2, f, shardOpts)
		if err != nil {
			t.Fatalf("%s: build: %v", m, err)
		}
		if phases.Shards() < 2 {
			t.Fatalf("%s: only %d shard(s)", m, phases.Shards())
		}
		sharded, err := phases.Replay(ctx, 4, trace.RunOpts{})
		if err != nil {
			t.Fatalf("%s: sharded replay: %v", m, err)
		}
		if !reflect.DeepEqual(want, sharded) {
			t.Errorf("%s: sharded file replay diverged\nwant: %+v\ngot:  %+v", m, want, sharded)
		}
	}
}

// TestShardedSeriesMatchesSequential pins the sampling contract: with
// SampleEvery set, the concatenated shard series must be the sequential
// series, point for point (samples are taken at global indices).
func TestShardedSeriesMatchesSequential(t *testing.T) {
	ctx := context.Background()
	tr, err := registry.BuildWorkload("drr", registry.WorkloadOpts{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.FromTrace(tr)
	opts := trace.RunOpts{SampleEvery: 97}

	m1, err := registry.NewManager("kingsley", nil, prof)
	if err != nil {
		t.Fatal(err)
	}
	want, err := trace.Run(ctx, m1, tr, opts)
	if err != nil {
		t.Fatal(err)
	}

	m2, err := registry.NewManager("kingsley", nil, prof)
	if err != nil {
		t.Fatal(err)
	}
	phases, _, err := replay.Build(ctx, m2, tr, shardOpts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := phases.Replay(ctx, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, sharded) {
		t.Errorf("sampled sharded replay diverged\nwant: %+v\ngot:  %+v", want, sharded)
	}
}

// TestPhasesReusable replays the same index twice and sequentially after
// a parallel run: snapshots are cloned per run, so a Phases must behave
// as an immutable index.
func TestPhasesReusable(t *testing.T) {
	ctx := context.Background()
	tr, err := registry.BuildWorkload("drr", registry.WorkloadOpts{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := registry.NewManager("lea", nil, profile.FromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	phases, buildRes, err := replay.Build(ctx, m, tr, shardOpts)
	if err != nil {
		t.Fatal(err)
	}
	first, err := phases.Replay(ctx, 4, trace.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := phases.Replay(ctx, 1, trace.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("replays of the same index diverged\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if !reflect.DeepEqual(buildRes, first) {
		t.Errorf("replay diverged from build\nbuild:  %+v\nreplay: %+v", buildRes, first)
	}
}

// TestCloneIndependence checks the manager Clone contract directly for
// every registered family: replay half a trace, clone, finish the trace
// on both the original and the clone independently, and require
// identical end states — any shared mutable structure would desync them.
func TestCloneIndependence(t *testing.T) {
	tr, err := registry.BuildWorkload("drr", registry.WorkloadOpts{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.FromTrace(tr)
	half := len(tr.Events) / 2
	for _, name := range registry.Managers() {
		m, err := registry.NewManager(name, nil, prof)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cl, ok := m.(mm.Cloner)
		if !ok {
			t.Fatalf("%s: registered manager does not implement mm.Cloner", name)
		}
		live := map[int64]heap.Addr{}
		run := func(m mm.Manager, live map[int64]heap.Addr, events []trace.Event) {
			t.Helper()
			for i := range events {
				if err := applyEvent(m, live, &events[i]); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		}
		run(m, live, tr.Events[:half])

		cm, err := cl.CloneManager()
		if err != nil {
			t.Fatalf("%s: clone: %v", name, err)
		}
		cliv := make(map[int64]heap.Addr, len(live))
		for id, a := range live {
			cliv[id] = a
		}

		run(m, live, tr.Events[half:])
		run(cm, cliv, tr.Events[half:])

		if m.Footprint() != cm.Footprint() || m.MaxFootprint() != cm.MaxFootprint() {
			t.Errorf("%s: clone footprint %d/%d, original %d/%d",
				name, cm.Footprint(), cm.MaxFootprint(), m.Footprint(), m.MaxFootprint())
		}
		if m.Stats() != cm.Stats() {
			t.Errorf("%s: clone stats %+v, original %+v", name, cm.Stats(), m.Stats())
		}
		s1, ok1 := m.(mm.Checksummer)
		s2, ok2 := cm.(mm.Checksummer)
		if !ok1 || !ok2 {
			t.Fatalf("%s: manager or clone does not implement mm.Checksummer", name)
		}
		if s1.StateChecksum() != s2.StateChecksum() {
			t.Errorf("%s: clone checksum %016x, original %016x", name, s2.StateChecksum(), s1.StateChecksum())
		}
	}
}

// applyEvent mirrors the replay loop's event semantics for the clone
// test, which drives managers without a trace source.
func applyEvent(m mm.Manager, live map[int64]heap.Addr, e *trace.Event) error {
	switch e.Kind {
	case trace.KindAlloc:
		a, err := m.Alloc(mm.Request{Size: e.Size, Tag: int(e.Tag), Phase: int(e.Phase)})
		if err != nil {
			return err
		}
		live[e.ID] = a
	case trace.KindFree:
		a := live[e.ID]
		delete(live, e.ID)
		if err := m.Free(a); err != nil {
			return err
		}
	}
	return nil
}

// TestBuildRejectsNonCloner pins the error path for managers without
// clone support.
func TestBuildRejectsNonCloner(t *testing.T) {
	tr := &trace.Trace{Name: "t", Events: []trace.Event{{Kind: trace.KindAlloc, ID: 1, Size: 16}}}
	if _, _, err := replay.Build(context.Background(), nonCloner{}, tr, replay.Options{}); err == nil {
		t.Fatal("Build accepted a manager without CloneManager")
	}
}

type nonCloner struct{}

func (nonCloner) Name() string                        { return "noclone" }
func (nonCloner) Alloc(mm.Request) (heap.Addr, error) { return 0, nil }
func (nonCloner) Free(heap.Addr) error                { return nil }
func (nonCloner) Footprint() int64                    { return 0 }
func (nonCloner) MaxFootprint() int64                 { return 0 }
func (nonCloner) Stats() mm.Stats                     { return mm.Stats{} }

// Package obstack implements an obstack ("object stack") manager in the
// style of GNU obstacks, the custom allocator the paper uses as the
// strongest baseline for the 3D rendering case study because of the
// application's stack-like allocation phases.
//
// Objects are bump-allocated inside page-sized chunks obtained from the
// system. Obstacks are optimized for LIFO lifetimes: freeing the most
// recently allocated object releases its space immediately, and chunks
// that empty out are returned to the system at once.
//
// Freeing out of LIFO order is where obstacks lose: this implementation
// marks such objects dead but cannot reclaim their space until every
// object allocated after them has also been freed. That deferred
// reclamation is precisely the "high memory footprint penalty in the final
// phases" the paper observes for Obstacks in Sec. 5 (the GNU API makes the
// same trade: obstack_free(ptr) would discard everything newer than ptr,
// which a correct application cannot do while newer objects are live).
//
// In the design space: A2=many-variable, A3=none (no per-object tags),
// A5=split-only in spirit (bump carving), B3=per-phase chunks, C1=pointer
// bump, D2=E2=never.
package obstack

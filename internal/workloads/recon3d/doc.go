// Package recon3d reproduces the dynamic-memory behaviour of the paper's
// second case study: the corner-matching sub-algorithm of a metric 3D
// reconstruction pipeline (Pollefeys et al.; Target Jr implementation).
// The relative displacement of features between consecutive frames feeds
// the depth reconstruction; the memory-intensive part is the per-frame
// corner sets, the per-corner candidate match lists, and the growing cloud
// of reconstructed 3D points.
//
// The original pipeline is 1.75 MLoC of C++; what the DM manager sees is
// reproduced here faithfully: two ~300 KB frame buffers live at a time,
// thousands of small corner/candidate/match records with unpredictable
// counts (they depend on image content), heavy churn of candidate lists,
// and a point cloud that survives across frame pairs.
//
// Allocation tags: 0 = frame buffer, 1 = corner record, 2 = match
// candidate, 3 = 3D point.
package recon3d

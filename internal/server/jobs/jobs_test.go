package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmmkit/internal/checkpoint"
	"dmmkit/internal/cliopts"
	"dmmkit/internal/core"
	"dmmkit/internal/dspace"
	"dmmkit/internal/search"
	"dmmkit/internal/trace"

	_ "dmmkit/internal/workloads/drr" // register the test workload
)

// drrRef is the registry-workload trace arm: what the CLI gets from
// -workload drr -quick -seed 1. Used by the single-pass (profile)
// tests; exploration tests use the tiny synthetic file from
// testTraceRef so dozens of replays stay fast under -race.
var drrRef = TraceRef{Workload: "drr", Seed: 1, Quick: true}

// testTraceRef writes a small deterministic DMMT2 trace file — mixed
// sizes, phases, interleaved frees — and returns a file-backed ref, the
// shape a trace uploaded to the server spool has.
func testTraceRef(t *testing.T) TraceRef {
	t.Helper()
	b := trace.NewBuilder("unit")
	var live []int64
	for i := 0; i < 300; i++ {
		if i%3 == 2 && len(live) > 0 {
			b.Free(live[0])
			live = live[1:]
		} else {
			live = append(live, b.Alloc(int64(16+(i%7)*24), i%3))
		}
		if i%50 == 49 {
			b.SetPhase(i / 50)
		}
		b.Tick()
	}
	for _, id := range live {
		b.Free(id)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("building test trace: %v", err)
	}
	path := filepath.Join(t.TempDir(), "unit.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Build().EncodeBinary2(f); err != nil {
		t.Fatalf("encoding test trace: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return TraceRef{Path: path}
}

// fakeClock drives TTL expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// await drains the job's event stream until the job is terminal and
// returns its final snapshot plus the replayed events. It is safe from
// any goroutine (it reports failures as errors, not t.Fatal).
func await(m *Manager, id string) (Snapshot, []Event, error) {
	st, ok := m.Events(id)
	if !ok {
		return Snapshot{}, nil, fmt.Errorf("job %s not found", id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var events []Event
	for {
		e, ok, err := st.Next(ctx)
		if err != nil {
			return Snapshot{}, nil, fmt.Errorf("streaming job %s: %w", id, err)
		}
		if !ok {
			break
		}
		events = append(events, e)
	}
	snap, ok := m.Get(id)
	if !ok {
		return Snapshot{}, nil, fmt.Errorf("job %s evicted before inspection", id)
	}
	return snap, events, nil
}

func mustAwait(t *testing.T, m *Manager, id string) (Snapshot, []Event) {
	t.Helper()
	snap, events, err := await(m, id)
	if err != nil {
		t.Fatal(err)
	}
	return snap, events
}

func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestExploreJobMatchesDirectEngine pins the server's determinism
// contract: a job run through the manager (parallel workers, event
// streaming, wire projection) produces the byte-identical candidate
// stream, best point and Pareto front as a direct sequential
// Engine.ExploreSource call with the same parameters.
func TestExploreJobMatchesDirectEngine(t *testing.T) {
	m := New(Config{Workers: 2, SpoolDir: t.TempDir()})
	defer shutdown(t, m)

	ref := testTraceRef(t)
	req := Request{
		Kind:            KindExplore,
		Trace:           ref,
		Strategy:        "ga",
		Objectives:      "footprint,work",
		Seed:            7,
		Population:      6,
		Generations:     4,
		Budget:          18,
		Parallelism:     4,
		IncludeDesigned: true,
	}
	id, err := m.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap, events := mustAwait(t, m, id)
	if snap.State != StateDone {
		t.Fatalf("job state = %s (error %q), want done", snap.State, snap.Error)
	}

	// The reference run: same strategy configuration, direct engine,
	// parallelism 1 — the server must match a sequential CLI run.
	tr, err := trace.OpenFile(ref.Path)
	if err != nil {
		t.Fatalf("opening trace: %v", err)
	}
	objs, _, err := cliopts.ResolveMode(req.Strategy, req.Objectives)
	if err != nil {
		t.Fatalf("resolving mode: %v", err)
	}
	strat, err := cliopts.NewStrategy(req.Strategy, cliopts.SearchConfig{
		Seed: req.Seed, Population: req.Population, Generations: req.Generations, Budget: req.Budget,
	})
	if err != nil {
		t.Fatalf("building strategy: %v", err)
	}
	cands, err := core.NewEngine(1).ExploreSource(context.Background(), tr, core.ExploreOpts{
		Strategy:        strat,
		MaxCandidates:   req.Budget,
		IncludeDesigned: true,
		Objectives:      objs,
	})
	if err != nil {
		t.Fatalf("direct explore: %v", err)
	}

	want, err := json.Marshal(resultOf(cands))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(snap.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("server result differs from direct engine run:\nserver: %s\ndirect: %s", got, want)
	}

	// The streamed candidate events must be the same stream, in order.
	var streamed []Candidate
	for _, e := range events {
		if e.Type == "candidate" {
			streamed = append(streamed, *e.Candidate)
		}
	}
	gotStream, _ := json.Marshal(streamed)
	wantStream, _ := json.Marshal(wireCandidates(cands))
	if !bytes.Equal(gotStream, wantStream) {
		t.Errorf("streamed candidates differ from direct engine stream:\nserver: %s\ndirect: %s", gotStream, wantStream)
	}

	// Event log invariants: contiguous Seq from 0, queued first,
	// terminal state last.
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if events[0].Type != "state" || events[0].State != StateQueued {
		t.Errorf("first event = %+v, want queued state", events[0])
	}
	if last := events[len(events)-1]; last.Type != "state" || last.State != StateDone {
		t.Errorf("last event = %+v, want done state", last)
	}
}

// TestProfileJob runs the second job kind end to end.
func TestProfileJob(t *testing.T) {
	m := New(Config{Workers: 1, SpoolDir: t.TempDir()})
	defer shutdown(t, m)

	id, err := m.Submit(Request{Kind: KindProfile, Trace: drrRef})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap, _ := mustAwait(t, m, id)
	if snap.State != StateDone {
		t.Fatalf("job state = %s (error %q)", snap.State, snap.Error)
	}
	p := snap.Result.Profile
	if p == nil || p.Events == 0 || p.Allocs == 0 || p.MaxLiveBytes == 0 {
		t.Errorf("profile summary = %+v, want populated", p)
	}
}

// TestSubmitRejectsWithCLIMessages pins the shared-vocabulary satellite
// for the server call site: Submit refuses exactly what the dmmexplore
// flag validation refuses, with the identical message.
func TestSubmitRejectsWithCLIMessages(t *testing.T) {
	m := New(Config{Workers: 1, SpoolDir: t.TempDir()})
	defer shutdown(t, m)

	for _, c := range []struct {
		strategy, objectives string
	}{
		{"genetic", ""},
		{"", ""},
		{"nsga2", ""},
		{"ga", "latency"},
		{"nsga", "footprint"},
		{"exhaustive", "work"},
	} {
		_, gotErr := m.Submit(Request{Kind: KindExplore, Trace: drrRef, Strategy: c.strategy, Objectives: c.objectives})
		_, _, wantErr := cliopts.ResolveMode(c.strategy, c.objectives)
		if gotErr == nil || wantErr == nil {
			t.Fatalf("strategy %q objectives %q: submit err %v, cli err %v", c.strategy, c.objectives, gotErr, wantErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("strategy %q objectives %q: server and CLI messages differ:\n  server: %q\n  cli:    %q",
				c.strategy, c.objectives, gotErr, wantErr)
		}
	}

	if _, err := m.Submit(Request{Kind: "compile", Trace: drrRef}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := m.Submit(Request{Kind: KindProfile}); err == nil {
		t.Error("request without a trace accepted")
	}
	if _, err := m.Submit(Request{Kind: KindProfile, Trace: TraceRef{Path: "x", Workload: "drr"}}); err == nil {
		t.Error("request with two trace inputs accepted")
	}
	if _, err := m.Submit(Request{Kind: KindExplore, Trace: drrRef, Strategy: "ga", Budget: -1}); err == nil {
		t.Error("negative budget accepted")
	}
}

// TestBadTraceFailsJob pins that an unreadable input fails the job, not
// the server.
func TestBadTraceFailsJob(t *testing.T) {
	m := New(Config{Workers: 1, SpoolDir: t.TempDir()})
	defer shutdown(t, m)

	id, err := m.Submit(Request{Kind: KindProfile, Trace: TraceRef{Path: t.TempDir() + "/nope.trace"}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap, _ := mustAwait(t, m, id)
	if snap.State != StateFailed || snap.Error == "" {
		t.Errorf("job = %s (error %q), want failed with message", snap.State, snap.Error)
	}
}

// TestTTLEviction pins the retention contract with an injected clock:
// terminal jobs survive until the TTL lapses, then disappear from Get
// (lazy) and Sweep (eager); a negative TTL retains forever.
func TestTTLEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	ref := testTraceRef(t)
	m := New(Config{Workers: 1, TTL: time.Minute, SpoolDir: t.TempDir(), Now: clk.now})
	defer shutdown(t, m)

	a, err := m.Submit(Request{Kind: KindProfile, Trace: ref})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	b, err := m.Submit(Request{Kind: KindProfile, Trace: ref})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	mustAwait(t, m, a)
	mustAwait(t, m, b)

	if _, ok := m.Get(a); !ok {
		t.Fatal("fresh terminal job already evicted")
	}
	clk.advance(61 * time.Second)
	if _, ok := m.Get(a); ok {
		t.Error("Get returned a job past its TTL")
	}
	if n := m.Sweep(); n != 1 { // a went via lazy Get, b goes here
		t.Errorf("Sweep evicted %d jobs, want 1", n)
	}
	if len(m.List()) != 0 {
		t.Errorf("List still shows %d jobs", len(m.List()))
	}

	forever := New(Config{Workers: 1, TTL: -1, SpoolDir: t.TempDir(), Now: clk.now})
	defer shutdown(t, forever)
	c, err := forever.Submit(Request{Kind: KindProfile, Trace: ref})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	mustAwait(t, forever, c)
	clk.advance(1000 * time.Hour)
	if _, ok := forever.Get(c); !ok {
		t.Error("negative TTL evicted a job")
	}
}

// TestQueueLimitsAndQueuedCancel drives the admission paths: a full
// queue refuses with ErrQueueFull, a queued job cancels instantly, and
// a draining manager refuses with ErrDraining.
func TestQueueLimitsAndQueuedCancel(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	restore := core.SetEvalHook(func(v dspace.Vector, designed bool) {
		once.Do(func() { close(started) })
		<-gate
	})
	defer restore()

	ref := testTraceRef(t)
	m := New(Config{Workers: 1, QueueDepth: 1, SpoolDir: t.TempDir()})
	running, err := m.Submit(Request{Kind: KindExplore, Trace: ref, Strategy: "exhaustive", Budget: 4, Parallelism: 1})
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	<-started // the worker holds the only slot now

	queued, err := m.Submit(Request{Kind: KindProfile, Trace: ref})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	if _, err := m.Submit(Request{Kind: KindProfile, Trace: ref}); err != ErrQueueFull {
		t.Errorf("over-capacity submit: %v, want ErrQueueFull", err)
	}

	snap, ok := m.Cancel(queued)
	if !ok || snap.State != StateCancelled {
		t.Errorf("cancelling queued job: ok=%v state=%s", ok, snap.State)
	}
	if snap, _ := m.Get(queued); snap.State != StateCancelled {
		t.Errorf("queued job state after cancel = %s", snap.State)
	}

	close(gate)
	mustAwait(t, m, running)
	shutdown(t, m)
	if _, err := m.Submit(Request{Kind: KindProfile, Trace: ref}); err != ErrDraining {
		t.Errorf("post-shutdown submit: %v, want ErrDraining", err)
	}
}

// TestCancelMidRun cancels a running exploration and expects a
// cancelled job whose result is the contiguous streamed prefix.
func TestCancelMidRun(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	restore := core.SetEvalHook(func(v dspace.Vector, designed bool) {
		once.Do(func() { close(started) })
		<-gate
	})
	defer restore()

	m := New(Config{Workers: 1, SpoolDir: t.TempDir()})
	defer shutdown(t, m)

	id, err := m.Submit(Request{Kind: KindExplore, Trace: testTraceRef(t), Strategy: "exhaustive", Budget: 6, Parallelism: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	if _, ok := m.Cancel(id); !ok {
		t.Fatal("cancel: job not found")
	}
	close(gate)
	snap, events := mustAwait(t, m, id)
	if snap.State != StateCancelled {
		t.Fatalf("job state = %s, want cancelled", snap.State)
	}
	if snap.Result != nil && len(snap.Result.Candidates) >= 6 {
		t.Errorf("cancelled job evaluated all %d candidates", len(snap.Result.Candidates))
	}
	if last := events[len(events)-1]; last.State != StateCancelled {
		t.Errorf("last event = %+v, want cancelled state", last)
	}
}

// TestShutdownDrainsToResumableCheckpoint is the graceful-shutdown
// tentpole test: a SIGTERM-style Shutdown checkpoints the running
// search at the next generation boundary, and resuming that checkpoint
// replays into the byte-identical stream of an uninterrupted run.
func TestShutdownDrainsToResumableCheckpoint(t *testing.T) {
	spool := t.TempDir()
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	restore := core.SetEvalHook(func(v dspace.Vector, designed bool) {
		once.Do(func() { close(started) })
		<-gate
	})

	ref := testTraceRef(t)
	m := New(Config{Workers: 1, SpoolDir: spool})
	cfg := cliopts.SearchConfig{Seed: 3, Population: 5, Generations: 6, Budget: 30}
	id, err := m.Submit(Request{
		Kind: KindExplore, Trace: ref,
		Strategy: "ga", Seed: cfg.Seed, Population: cfg.Population,
		Generations: cfg.Generations, Budget: cfg.Budget, Parallelism: 1,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started

	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		errc <- m.Shutdown(ctx)
	}()
	for !m.Draining() {
		time.Sleep(time.Millisecond)
	}
	close(gate) // let the in-flight generation finish; the drain hook fires next
	if err := <-errc; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	restore()

	snap, ok := m.Get(id)
	if !ok {
		t.Fatal("drained job evicted")
	}
	if snap.State != StateCancelled || snap.Checkpoint == "" {
		t.Fatalf("drained job: state=%s checkpoint=%q error=%q", snap.State, snap.Checkpoint, snap.Error)
	}
	if !strings.HasPrefix(snap.Checkpoint, spool) {
		t.Errorf("checkpoint %q outside spool %q", snap.Checkpoint, spool)
	}

	st, err := checkpoint.Load(snap.Checkpoint)
	if err != nil {
		t.Fatalf("loading drain checkpoint: %v", err)
	}
	wantID, err := checkpoint.FileIdentity(ref.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Meta.Trace.Equal(wantID) {
		t.Errorf("checkpoint trace identity = %+v, want %+v", st.Meta.Trace, wantID)
	}

	// Resume the checkpoint exactly as dmmexplore -resume would.
	tr, err := trace.OpenFile(ref.Path)
	if err != nil {
		t.Fatal(err)
	}
	resumedStrat, err := cliopts.NewStrategy("ga", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumedStrat.(search.Snapshotter).Restore(st.Strategy); err != nil {
		t.Fatalf("restoring strategy: %v", err)
	}
	prior, err := st.Prior()
	if err != nil {
		t.Fatalf("decoding prior candidates: %v", err)
	}
	if len(prior) == 0 {
		t.Fatal("drain checkpoint holds no candidates")
	}
	resumed, err := core.NewEngine(1).ExploreSource(context.Background(), tr, core.ExploreOpts{
		Strategy: resumedStrat, MaxCandidates: cfg.Budget, Prior: prior,
	})
	if err != nil {
		t.Fatalf("resumed explore: %v", err)
	}

	// The uninterrupted reference run.
	refStrat, err := cliopts.NewStrategy("ga", cfg)
	if err != nil {
		t.Fatal(err)
	}
	refCands, err := core.NewEngine(1).ExploreSource(context.Background(), tr, core.ExploreOpts{
		Strategy: refStrat, MaxCandidates: cfg.Budget,
	})
	if err != nil {
		t.Fatalf("reference explore: %v", err)
	}

	got, _ := json.Marshal(wireCandidates(resumed))
	want, _ := json.Marshal(wireCandidates(refCands))
	if !bytes.Equal(got, want) {
		t.Errorf("resumed run differs from uninterrupted run:\nresumed: %s\nref:     %s", got, want)
	}

	// The drained job's partial result is the exact prefix of the
	// reference stream (PR 5's resume contract, now over the server).
	prefix, _ := json.Marshal(snap.Result.Candidates)
	refPrefix, _ := json.Marshal(wireCandidates(refCands[:len(prior)]))
	if !bytes.Equal(prefix, refPrefix) {
		t.Errorf("drained prefix differs from reference prefix:\ndrained: %s\nref:     %s", prefix, refPrefix)
	}
}

// TestPanickingCandidateSkipAndRecord reuses PR 6's fault seam through
// the server: with skip_failures a panicking candidate surfaces as that
// candidate's error in the job result while the job completes; without
// it the job fails.
func TestPanickingCandidateSkipAndRecord(t *testing.T) {
	var evals atomic.Int64
	restore := core.SetEvalHook(func(v dspace.Vector, designed bool) {
		if evals.Add(1) == 3 {
			panic("injected fault")
		}
	})
	defer restore()

	m := New(Config{Workers: 1, SpoolDir: t.TempDir()})
	defer shutdown(t, m)

	ref := testTraceRef(t)
	id, err := m.Submit(Request{
		Kind: KindExplore, Trace: ref,
		Strategy: "exhaustive", Budget: 6, Parallelism: 1, SkipFailures: true,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap, _ := mustAwait(t, m, id)
	if snap.State != StateDone {
		t.Fatalf("skip job state = %s (error %q), want done", snap.State, snap.Error)
	}
	failed := 0
	for _, c := range snap.Result.Candidates {
		if c.Err != "" {
			failed++
			if !strings.Contains(c.Err, "panic") {
				t.Errorf("candidate error %q does not mention the panic", c.Err)
			}
		}
	}
	if failed != 1 {
		t.Errorf("%d failed candidates in result, want 1", failed)
	}

	// FailFast: the same fault aborts the job.
	evals.Store(0)
	id, err = m.Submit(Request{
		Kind: KindExplore, Trace: ref,
		Strategy: "exhaustive", Budget: 6, Parallelism: 1,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	snap, _ = mustAwait(t, m, id)
	if snap.State != StateFailed || snap.Error == "" {
		t.Errorf("fail-fast job = %s (error %q), want failed with message", snap.State, snap.Error)
	}
}

// TestConcurrentClients hammers the manager from parallel goroutines —
// meaningful under -race — and checks no job ID is lost or duplicated.
func TestConcurrentClients(t *testing.T) {
	const clients = 12
	ref := testTraceRef(t)
	m := New(Config{Workers: 4, SpoolDir: t.TempDir()})
	defer shutdown(t, m)

	var mu sync.Mutex
	ids := make(map[string]bool)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := m.Submit(Request{Kind: KindProfile, Trace: ref})
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			mu.Lock()
			if ids[id] {
				t.Errorf("duplicate job id %s", id)
			}
			ids[id] = true
			mu.Unlock()
			snap, _, err := await(m, id)
			if err != nil {
				t.Error(err)
				return
			}
			if snap.State != StateDone {
				t.Errorf("job %s: state %s (error %q)", id, snap.State, snap.Error)
			}
		}()
	}
	wg.Wait()
	if len(ids) != clients {
		t.Fatalf("%d distinct job ids, want %d", len(ids), clients)
	}

	ms := m.Metrics()
	if ms.Submitted != clients || ms.Done != clients || ms.Retained != clients {
		t.Errorf("metrics = %+v, want %d submitted/done/retained", ms, clients)
	}
	if ms.WindowCount != clients || ms.EventsAppended == 0 {
		t.Errorf("metrics window = %+v, want %d finished jobs in window", ms, clients)
	}
	if len(m.List()) != clients {
		t.Errorf("List returned %d jobs", len(m.List()))
	}
}

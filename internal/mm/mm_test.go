package mm

import (
	"testing"

	"dmmkit/internal/heap"
)

func TestAccountingAllocFree(t *testing.T) {
	var a Accounting
	a.NoteAlloc(100, 128)
	a.NoteAlloc(50, 64)
	s := a.Stats()
	if s.Allocs != 2 || s.LiveBytes != 150 || s.LiveBlocks != 2 || s.GrossLive != 192 {
		t.Errorf("after allocs: %+v", s)
	}
	if s.MaxLive != 150 {
		t.Errorf("MaxLive = %d, want 150", s.MaxLive)
	}
	a.NoteFree(100, 128)
	s = a.Stats()
	if s.Frees != 1 || s.LiveBytes != 50 || s.GrossLive != 64 {
		t.Errorf("after free: %+v", s)
	}
	if s.MaxLive != 150 {
		t.Errorf("MaxLive dropped to %d", s.MaxLive)
	}
}

func TestAccountingWork(t *testing.T) {
	var a Accounting
	a.Charge(CostProbe)
	a.ChargeN(CostLink, 3)
	a.NoteSplit()
	a.NoteCoalesce()
	s := a.Stats()
	want := CostProbe + 3*CostLink + CostSplit + CostCoalesce
	if s.Work != want {
		t.Errorf("Work = %d, want %d", s.Work, want)
	}
	if s.Splits != 1 || s.Coalesces != 1 {
		t.Errorf("Splits/Coalesces = %d/%d", s.Splits, s.Coalesces)
	}
}

func TestInternalFrag(t *testing.T) {
	var a Accounting
	if f := a.Stats().InternalFrag(); f != 0 {
		t.Errorf("empty InternalFrag = %f", f)
	}
	a.NoteAlloc(75, 100)
	if f := a.Stats().InternalFrag(); f != 0.25 {
		t.Errorf("InternalFrag = %f, want 0.25", f)
	}
}

func TestResetStats(t *testing.T) {
	var a Accounting
	a.NoteAlloc(10, 16)
	a.NoteFail()
	a.ResetStats()
	if s := a.Stats(); s != (Stats{}) {
		t.Errorf("ResetStats left %+v", s)
	}
}

func TestShadow(t *testing.T) {
	var s Shadow
	if s.Len() != 0 || s.Contains(8) {
		t.Error("fresh shadow not empty")
	}
	s.Add(8, 100)
	s.Add(16, 200)
	if !s.Contains(8) || s.Len() != 2 {
		t.Error("Add not visible")
	}
	req, ok := s.Remove(8)
	if !ok || req != 100 {
		t.Errorf("Remove = %d,%v", req, ok)
	}
	if _, ok := s.Remove(8); ok {
		t.Error("double Remove succeeded")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Error("Reset left entries")
	}
}

func TestErrOutOfMemoryMirrorsHeap(t *testing.T) {
	if ErrOutOfMemory != heap.ErrOutOfMemory {
		t.Error("mm.ErrOutOfMemory is not heap.ErrOutOfMemory")
	}
}

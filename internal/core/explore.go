package core

import (
	"context"
	"fmt"
	"strings"

	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/search"
	"dmmkit/internal/trace"
)

// Candidate is one evaluated point of the design space.
type Candidate struct {
	Vector       dspace.Vector
	Params       Params
	MaxFootprint int64
	Work         int64
	Designed     bool // produced by the methodology (not enumeration)
	Err          error
}

// Objective identifies one optimization axis of an exploration.
type Objective int

// The two measured objectives of a candidate evaluation.
const (
	// ObjectiveFootprint is the paper's primary metric: the maximum
	// number of bytes requested from the system during the replay.
	ObjectiveFootprint Objective = iota
	// ObjectiveWork is the architecture-neutral execution-time proxy
	// accumulated by the manager during the replay.
	ObjectiveWork
)

// String returns the objective's flag-syntax name.
func (o Objective) String() string {
	switch o {
	case ObjectiveFootprint:
		return "footprint"
	case ObjectiveWork:
		return "work"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// ParseObjectives parses a comma-separated objective list as accepted by
// the CLIs: "footprint" (the classic single-objective mode) or
// "footprint,work" in either order (multi-objective Pareto mode). An
// empty string selects the default, footprint only.
func ParseObjectives(s string) ([]Objective, error) {
	if s == "" {
		return nil, nil
	}
	var objs []Objective
	seen := map[Objective]bool{}
	for _, name := range strings.Split(s, ",") {
		var o Objective
		switch strings.TrimSpace(name) {
		case "footprint":
			o = ObjectiveFootprint
		case "work":
			o = ObjectiveWork
		default:
			return nil, fmt.Errorf("unknown objective %q (want footprint or work)", strings.TrimSpace(name))
		}
		if seen[o] {
			return nil, fmt.Errorf("objective %q listed twice", o)
		}
		seen[o] = true
		objs = append(objs, o)
	}
	return objs, nil
}

// multiObjective reports whether the objective list selects Pareto mode,
// validating it: nil or {footprint} is the classic scalar mode, any list
// containing both footprint and work is Pareto mode, and work alone is
// rejected (the scalar order already breaks footprint ties by work, so a
// work-only exploration would silently ignore the paper's metric).
func multiObjective(objs []Objective) (bool, error) {
	hasFootprint, hasWork := false, false
	for _, o := range objs {
		switch o {
		case ObjectiveFootprint:
			hasFootprint = true
		case ObjectiveWork:
			hasWork = true
		default:
			return false, fmt.Errorf("core: unknown objective %v", o)
		}
	}
	if hasWork && !hasFootprint {
		return false, fmt.Errorf("core: objectives %v optimize work without footprint; use footprint,work", objs)
	}
	return hasFootprint && hasWork, nil
}

// ErrorPolicy decides what a panicking candidate evaluation does to an
// exploration run. Build and replay errors are always per-candidate
// data (Candidate.Err); the policy governs panics — a pathological
// manager configuration tripping over its own invariants.
type ErrorPolicy int

const (
	// FailFast (the default) aborts the exploration at the first
	// panicking candidate: the run returns the contiguous prefix of
	// candidates already streamed together with a *pool.PanicError
	// carrying the recovered value and stack. Nothing is swallowed.
	FailFast ErrorPolicy = iota
	// SkipAndRecord converts a panicking candidate into a recorded
	// per-candidate failure: the panic is recovered inside the
	// evaluation, the candidate enters the result stream with Err set
	// to the *pool.PanicError, and the run continues. Which candidates
	// fail depends only on their vectors, so the result stream stays
	// byte-identical at every parallelism level.
	SkipAndRecord
)

// String returns the policy's flag-syntax name.
func (p ErrorPolicy) String() string {
	switch p {
	case FailFast:
		return "fail"
	case SkipAndRecord:
		return "skip"
	}
	return fmt.Sprintf("ErrorPolicy(%d)", int(p))
}

// ParseErrorPolicy parses the CLI spelling of an error policy: "fail"
// (fail-fast, the default) or "skip" (skip-and-record).
func ParseErrorPolicy(s string) (ErrorPolicy, error) {
	switch s {
	case "", "fail":
		return FailFast, nil
	case "skip":
		return SkipAndRecord, nil
	}
	return FailFast, fmt.Errorf("unknown error policy %q (want fail or skip)", s)
}

// ExploreOpts configures a design-space exploration run.
type ExploreOpts struct {
	// Strategy decides which vectors are evaluated, one generation at a
	// time (see dmmkit/internal/search). nil selects the exhaustive
	// ceiling-stride sampler capped at MaxCandidates — the classic
	// Explore behaviour. Strategies carry state; use a fresh value per
	// exploration.
	Strategy search.Strategy
	// MaxCandidates caps how many enumerated vectors are evaluated by
	// the default exhaustive strategy (default 128). The valid space
	// has ~144k points; evaluation samples it with a uniform stride,
	// never exceeding the cap. Ignored when Strategy is set.
	MaxCandidates int
	// IncludeDesigned additionally evaluates the methodology's design,
	// marking it in the result (default behaviour of Explore).
	IncludeDesigned bool
	// Parallelism is the number of concurrent evaluation workers: 0
	// defers to the Engine (whose own zero value means GOMAXPROCS), 1
	// forces sequential evaluation. Results are deterministic and
	// identical at every parallelism level.
	Parallelism int
	// OnCandidate, when set, streams every evaluated candidate in the
	// deterministic result order (proposal order, designed last) as
	// soon as it and all its predecessors are done. Calls are serialized.
	OnCandidate func(Candidate)
	// OnProgress, when set, reports completion counts after every
	// evaluated candidate. total is the number of evaluations scheduled
	// so far (the already-finished generations plus the one in flight,
	// plus the designed candidate when requested); adaptive strategies
	// grow it as they propose further generations. Calls are serialized.
	OnProgress func(done, total int)
	// Objectives selects the optimization axes. nil (or footprint alone)
	// is the classic scalar mode. Listing both footprint and work turns
	// on multi-objective Pareto mode: the engine additionally maintains
	// a Pareto front over the in-order candidate stream and reports
	// front changes through OnFront. The front is fed in deterministic
	// stream order — never completion order — so it is byte-identical at
	// every Parallelism. Work alone is rejected (see ParseObjectives).
	Objectives []Objective
	// OnFront, when set (Pareto mode only), streams the current Pareto
	// front — sorted by ascending footprint — every time an in-order
	// candidate changes it. Calls are serialized with OnCandidate and
	// OnProgress; the slice is a copy the callback may keep.
	OnFront func(front []Candidate)
	// OnCandidateError selects what a panicking candidate evaluation
	// does to the run: FailFast (default) aborts it, SkipAndRecord
	// turns the panic into the candidate's Err and continues.
	OnCandidateError ErrorPolicy
	// Prior replays the candidates of an earlier interrupted run
	// through the result stream — in order, before any new evaluation,
	// without re-evaluating them — so a resumed exploration emits the
	// byte-identical candidate (and Pareto front) stream of an
	// uninterrupted one. Params are re-derived from the trace profile;
	// restoring the Strategy to the matching state (search.Snapshotter)
	// is the caller's job. The engine does not verify that Prior and
	// the strategy state belong together.
	Prior []Candidate
	// AfterGeneration, when set, runs after each generation's results
	// are observed by the strategy — the point where strategy state is
	// clean between generations and a checkpoint is safe. cands is the
	// full in-order candidate slice so far (prior candidates included);
	// the callback must not mutate or retain it past the call. A
	// non-nil error aborts the exploration with that error.
	AfterGeneration func(cands []Candidate) error
}

// SpaceSize returns the number of valid decision vectors (~144k), cached
// after the first enumeration.
func SpaceSize() int { return dspace.SpaceSize() }

// Explore evaluates a uniform sample of the valid design space against a
// trace, returning every candidate with its measured footprint and work.
// It demonstrates what the paper's Sec. 3 claims: the space contains both
// the general-purpose managers and far better custom points, and
// exhaustive search is feasible once constraints prune the space.
//
// Explore is the convenience form of Engine.Explore with a background
// context and default parallelism.
func Explore(tr *trace.Trace, opts ExploreOpts) ([]Candidate, error) {
	return (&Engine{}).Explore(context.Background(), tr, opts)
}

// evalHook, when non-nil, runs at the start of every candidate
// evaluation. It exists for the panic-isolation tests, which use it to
// make a chosen vector pathological; production code never sets it.
var evalHook func(v dspace.Vector, designed bool)

// SetEvalHook installs evalHook and returns a function restoring the
// previous one. It exists so fault-injection tests outside this package
// (the server's panic-isolation suite) can reuse the same seam; like
// the variable itself, it must only be toggled while no exploration is
// in flight. Production code never calls it.
func SetEvalHook(hook func(v dspace.Vector, designed bool)) (restore func()) {
	prev := evalHook
	evalHook = hook
	return func() { evalHook = prev }
}

// evaluate builds the candidate manager and replays one streaming pass
// over the trace against it. Openers hand out independent sources, so
// evaluations run concurrently without sharing replay state.
func evaluate(ctx context.Context, v dspace.Vector, par Params, tr trace.Opener, designed bool) Candidate {
	if evalHook != nil {
		evalHook(v, designed)
	}
	c := Candidate{Vector: v, Params: par, Designed: designed}
	m, err := NewCustom(heap.New(heap.Config{}), v, par)
	if err != nil {
		c.Err = fmt.Errorf("core: building candidate: %w", err)
		return c
	}
	src, err := tr.Open()
	if err != nil {
		c.Err = fmt.Errorf("core: opening trace for candidate: %w", err)
		return c
	}
	res, err := trace.RunSource(ctx, m, src, trace.RunOpts{})
	if err != nil {
		c.Err = fmt.Errorf("core: replaying candidate: %w", err)
		return c
	}
	c.MaxFootprint = res.MaxFootprint
	c.Work = int64(res.Work)
	return c
}

// ParetoFront returns the candidates not dominated in (footprint, work),
// sorted by ascending footprint (equivalently, strictly descending
// work). Failed candidates are excluded, and among candidates sharing an
// objective point the first in slice order survives — the slice order of
// Explore results is deterministic, so the front (including which vector
// represents each point) is too.
func ParetoFront(cands []Candidate) []Candidate {
	var acc frontAccum
	for _, c := range cands {
		acc.add(c)
	}
	return acc.snapshot()
}

// frontAccum incrementally accumulates a candidate Pareto front over
// (footprint, work) by delegating all dominance decisions to
// search.ParetoFront — one copy of that logic in the module — while
// remembering the first-seen candidate per accepted objective point, so
// Designed, Params and Err travel with their point. Entries for points
// later evicted from the front go stale in the map; they are never
// referenced again and fronts are tiny, so they are not reaped.
type frontAccum struct {
	points search.ParetoFront
	cands  map[[2]int64]Candidate
}

// add offers c to the front, reporting whether it entered (evicting any
// members it dominates). Failed candidates never enter, and among
// candidates sharing an objective point the first added wins.
func (a *frontAccum) add(c Candidate) bool {
	ok := a.points.Add(search.Result{
		Footprint: c.MaxFootprint,
		Work:      c.Work,
		Failed:    c.Err != nil,
	})
	if !ok {
		return false
	}
	if a.cands == nil {
		a.cands = make(map[[2]int64]Candidate)
	}
	a.cands[[2]int64{c.MaxFootprint, c.Work}] = c
	return true
}

// snapshot returns a copy of the current front, sorted by ascending
// footprint.
func (a *frontAccum) snapshot() []Candidate {
	rs := a.points.Results()
	front := make([]Candidate, len(rs))
	for i, r := range rs {
		front[i] = a.cands[[2]int64{r.Footprint, r.Work}]
	}
	return front
}

// BestByFootprint returns the successful candidate with the smallest
// footprint, breaking ties by work. ok is false when every candidate
// failed.
func BestByFootprint(cands []Candidate) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range cands {
		if c.Err != nil {
			continue
		}
		if !found || c.MaxFootprint < best.MaxFootprint ||
			(c.MaxFootprint == best.MaxFootprint && c.Work < best.Work) {
			best = c
			found = true
		}
	}
	return best, found
}

package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"dmmkit/internal/checkpoint"
	"dmmkit/internal/cliopts"
	"dmmkit/internal/core"
	"dmmkit/internal/profile"
	"dmmkit/internal/search"
	"dmmkit/internal/trace"
)

// run executes one dequeued job start to finish on a worker goroutine.
func (m *Manager) run(j *job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()
	if !j.start(m.cfg.Now(), cancel) {
		// Cancelled while queued; its terminal event is already logged.
		return
	}
	m.mu.Lock()
	m.running++
	m.mu.Unlock()

	var (
		state  State
		res    *Result
		errMsg string
		ckpt   string
	)
	switch j.req.Kind {
	case KindExplore:
		state, res, errMsg, ckpt = m.runExplore(ctx, j)
	case KindProfile:
		state, res, errMsg = m.runProfile(ctx, j)
	default:
		// validate() refused this at submit; defend anyway.
		state, errMsg = StateFailed, fmt.Sprintf("unknown job kind %q", j.req.Kind)
	}

	now := m.cfg.Now()
	j.mu.Lock()
	started := j.started
	j.finishLocked(state, res, errMsg, ckpt, now)
	j.mu.Unlock()

	m.mu.Lock()
	m.running--
	m.mu.Unlock()
	m.noteFinished(state, now.Sub(started))
}

// resultOf assembles a finished (or prefix-cancelled) exploration's
// wire result: the in-order candidate stream, the best footprint and
// the Pareto front, all through the same deterministic projections the
// CLI prints.
func resultOf(cands []core.Candidate) *Result {
	res := &Result{Candidates: wireCandidates(cands)}
	if best, ok := core.BestByFootprint(cands); ok {
		w := WireCandidate(best)
		res.Best = &w
	}
	if front := core.ParetoFront(cands); len(front) > 0 {
		res.Front = wireCandidates(front)
	}
	return res
}

// runExplore runs a design-space exploration, streaming candidates,
// progress and front updates into the job's event log. During a
// graceful shutdown the run checkpoints its full search state at the
// next generation boundary (the point where the strategy is clean) and
// reports cancelled with the checkpoint path — dmmexplore -resume
// continues it bit-identically.
func (m *Manager) runExplore(ctx context.Context, j *job) (State, *Result, string, string) {
	req := j.req
	op, err := req.Trace.open()
	if err != nil {
		return StateFailed, nil, err.Error(), ""
	}
	objs, multi, err := cliopts.ResolveMode(req.Strategy, req.Objectives)
	if err != nil {
		return StateFailed, nil, err.Error(), ""
	}
	strat, err := cliopts.NewStrategy(req.Strategy, cliopts.SearchConfig{
		Seed:        req.Seed,
		Population:  req.Population,
		Generations: req.Generations,
		Budget:      req.Budget,
	})
	if err != nil {
		return StateFailed, nil, err.Error(), ""
	}

	policy := core.FailFast
	if req.SkipFailures {
		policy = core.SkipAndRecord
	}
	opts := core.ExploreOpts{
		Strategy:         strat,
		MaxCandidates:    req.Budget,
		IncludeDesigned:  req.IncludeDesigned,
		Parallelism:      req.Parallelism,
		Objectives:       objs,
		OnCandidateError: policy,
		OnCandidate: func(c core.Candidate) {
			w := WireCandidate(c)
			j.append(Event{Type: "candidate", Candidate: &w})
		},
		OnProgress: j.progress,
	}
	if multi {
		opts.OnFront = func(front []core.Candidate) {
			j.append(Event{Type: "front", Front: wireCandidates(front)})
		}
	}

	// Drain hook: when a graceful shutdown starts, persist the search
	// state through the exact checkpoint path dmmexplore uses and abort
	// with the errDrained sentinel. Every built-in strategy snapshots
	// (pinned by the cliopts tests), so the type assertion is belt and
	// braces for custom strategies only.
	var drainedTo string
	gens := 0
	opts.AfterGeneration = func(cands []core.Candidate) error {
		gens++
		if !m.Draining() {
			return nil
		}
		snapper, ok := strat.(search.Snapshotter)
		if !ok {
			return nil // not checkpointable: run to completion or hard-cancel
		}
		identity, err := req.Trace.identity()
		if err != nil {
			return fmt.Errorf("jobs: pinning trace identity for drain: %w", err)
		}
		snap, err := snapper.Snapshot()
		if err != nil {
			return fmt.Errorf("jobs: snapshotting strategy for drain: %w", err)
		}
		path := filepath.Join(m.cfg.SpoolDir, j.id+".ckpt")
		err = checkpoint.Save(path, &checkpoint.State{
			Meta: checkpoint.Meta{
				Strategy:       req.Strategy,
				Seed:           req.Seed,
				Population:     req.Population,
				Generations:    req.Generations,
				MaxEvaluations: req.Budget,
				Objectives:     cliopts.ObjectivesKey(objs),
				Trace:          identity,
			},
			GenerationsDone: gens,
			Strategy:        json.RawMessage(snap),
			Candidates:      checkpoint.FromCandidates(cands),
		})
		if err != nil {
			return fmt.Errorf("jobs: draining to checkpoint: %w", err)
		}
		drainedTo = path
		return errDrained
	}

	cands, err := core.NewEngine(req.Parallelism).ExploreSource(ctx, op, opts)
	res := resultOf(cands)
	switch {
	case errors.Is(err, errDrained):
		return StateCancelled, res, "drained: server shutting down", drainedTo
	case err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil):
		return StateCancelled, res, "cancelled", ""
	case err != nil:
		return StateFailed, res, err.Error(), ""
	}
	return StateDone, res, "", ""
}

// runProfile runs one profiling pass over the trace and returns the
// summary. The source is wrapped with the job context, so a DELETE or
// shutdown interrupts even a multi-gigabyte streaming pass.
func (m *Manager) runProfile(ctx context.Context, j *job) (State, *Result, string) {
	op, err := j.req.Trace.open()
	if err != nil {
		return StateFailed, nil, err.Error()
	}
	src, err := op.Open()
	if err != nil {
		return StateFailed, nil, err.Error()
	}
	prof, err := profile.FromSource(trace.WithContext(ctx, src))
	if cerr := trace.Close(src); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || ctx.Err() != nil {
			return StateCancelled, nil, "cancelled"
		}
		return StateFailed, nil, err.Error()
	}
	return StateDone, &Result{Profile: summarize(prof)}, ""
}

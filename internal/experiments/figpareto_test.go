package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestParetoQuickDRRAcceptance pins the fig-pareto claim on the quick DRR
// workload, mirroring TestEvoQuickDRRAcceptance for the multi-objective
// engine: the seeded NSGA must recover the exhaustively enumerated Pareto
// front of the pinned subspace exactly, while evaluating at most 60% of
// it. Both runs are deterministic, so this is a regression gate, not a
// statistical test.
func TestParetoQuickDRRAcceptance(t *testing.T) {
	row, err := paretoRow(context.Background(), Config{Quick: true}, 1, WorkloadDRR)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.OracleFront) == 0 {
		t.Fatal("oracle front is empty")
	}
	if len(row.NSGAFront) != len(row.OracleFront) || row.Matched != len(row.OracleFront) {
		t.Errorf("NSGA front %v does not match oracle front %v (matched %d)",
			row.NSGAFront, row.OracleFront, row.Matched)
	}
	if frac := row.EvalFraction(); frac > 0.60 {
		t.Errorf("NSGA evaluated %d of %d subspace vectors (%.0f%%, want <= 60%%)",
			row.NSGAEvals, row.SubspaceSize, 100*frac)
	}
	if row.NSGAEvals <= 0 {
		t.Error("NSGA evaluated nothing")
	}
}

// TestWriteParetoRenders smoke-tests the renderer against a synthetic
// result (no replays, so it stays fast).
func TestWriteParetoRenders(t *testing.T) {
	r := &ParetoResult{
		Seed: 1,
		Rows: []ParetoRow{
			{
				Workload:     WorkloadDRR,
				SubspaceSize: 240,
				OracleFront:  []FrontPoint{{131072, 200000}, {180224, 150000}},
				NSGAFront:    []FrontPoint{{131072, 200000}, {180224, 150000}},
				Matched:      2,
				NSGAEvals:    111,
			},
			{
				Workload:     WorkloadRender,
				SubspaceSize: 240,
				OracleFront:  []FrontPoint{{1078280, 90000}},
				NSGAFront:    []FrontPoint{{1078280, 90000}},
				Matched:      1,
				NSGAEvals:    98,
			},
		},
	}
	var buf bytes.Buffer
	if err := WritePareto(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"drr", "render3d", "131072", "recovered", "100%", "oracle"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

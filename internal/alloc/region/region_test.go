package region

import (
	"testing"

	"dmmkit/internal/alloctest"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

func factory() mm.Manager { return New(heap.New(heap.Config{}), nil) }

func TestConformance(t *testing.T) {
	alloctest.Run(t, factory, alloctest.Options{})
}

func TestRegionFixedBlockSize(t *testing.T) {
	m := New(heap.New(heap.Config{}), nil)
	if _, err := m.Alloc(mm.Request{Size: 100, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	if got := m.RegionBlockSize(1); got != 128 {
		t.Errorf("RegionBlockSize = %d, want 128 (pow2 of first request)", got)
	}
	// A smaller request in the same region still consumes a full block:
	// the internal fragmentation the paper attributes to region managers.
	if _, err := m.Alloc(mm.Request{Size: 10, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	wantGross := int64(2 * (128 + 8)) // two blocks of 128 payload + 8 header
	if s.GrossLive != wantGross {
		t.Errorf("GrossLive = %d, want %d", s.GrossLive, wantGross)
	}
}

func TestSizerConfiguresWorstCase(t *testing.T) {
	sizer := func(tag int, _ int64) int64 {
		if tag == 7 {
			return 640 * 480 // image region sized for the worst case
		}
		return 64
	}
	m := New(heap.New(heap.Config{}), sizer)
	if _, err := m.Alloc(mm.Request{Size: 1000, Tag: 7}); err != nil {
		t.Fatal(err)
	}
	if got := m.RegionBlockSize(7); got != 640*480 {
		t.Errorf("RegionBlockSize = %d, want 307200", got)
	}
}

func TestRegionsDoNotShareFreeLists(t *testing.T) {
	m := New(heap.New(heap.Config{}), nil)
	var ps []heap.Addr
	for i := 0; i < 32; i++ {
		p, err := m.Alloc(mm.Request{Size: 256, Tag: 1})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		_ = m.Free(p)
	}
	before := m.Footprint()
	// Same block size, different region: must not reuse region 1's list.
	if _, err := m.Alloc(mm.Request{Size: 256, Tag: 2}); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() <= before {
		t.Error("regions shared free memory across tags")
	}
}

func TestReuseWithinRegion(t *testing.T) {
	m := New(heap.New(heap.Config{}), nil)
	p, err := m.Alloc(mm.Request{Size: 256, Tag: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	q, err := m.Alloc(mm.Request{Size: 200, Tag: 3})
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("same-region reallocation got %#x, want reused %#x", q, p)
	}
}

func TestOversizeRequestStillServed(t *testing.T) {
	m := New(heap.New(heap.Config{}), func(int, int64) int64 { return 64 })
	p, err := m.Alloc(mm.Request{Size: 5000, Tag: 1})
	if err != nil {
		t.Fatalf("oversize request failed: %v", err)
	}
	m.Heap().Fill(p, 5000, 0xAB)
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestNeverReturnsMemory(t *testing.T) {
	m := New(heap.New(heap.Config{}), nil)
	var ps []heap.Addr
	for i := 0; i < 100; i++ {
		p, err := m.Alloc(mm.Request{Size: 512, Tag: i % 3})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	peak := m.Footprint()
	for _, p := range ps {
		_ = m.Free(p)
	}
	if m.Footprint() != peak {
		t.Errorf("footprint shrank from %d to %d; regions never release", peak, m.Footprint())
	}
}

func TestReset(t *testing.T) {
	m := New(heap.New(heap.Config{}), nil)
	if _, err := m.Alloc(mm.Request{Size: 64, Tag: 9}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Footprint() != 0 || m.RegionBlockSize(9) != 0 {
		t.Error("Reset did not clear regions")
	}
}

package experiments

import (
	"context"
	"fmt"

	"dmmkit/internal/mm"
	"dmmkit/internal/pool"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
	"dmmkit/internal/trace"

	// The built-in managers and workloads self-register with the registry.
	_ "dmmkit/internal/alloc/kingsley"
	_ "dmmkit/internal/alloc/lea"
	_ "dmmkit/internal/alloc/obstack"
	_ "dmmkit/internal/alloc/region"
	_ "dmmkit/internal/core"
	_ "dmmkit/internal/workloads/drr"
	_ "dmmkit/internal/workloads/recon3d"
	_ "dmmkit/internal/workloads/render3d"
)

// Workload identifies one case study by its registry name.
type Workload string

// The paper's three case studies.
const (
	WorkloadDRR    Workload = "drr"
	WorkloadRecon  Workload = "recon3d"
	WorkloadRender Workload = "render3d"
)

// Workloads lists the case studies in the paper's column order.
var Workloads = []Workload{WorkloadDRR, WorkloadRecon, WorkloadRender}

// ManagerName identifies one DM manager row of Table 1.
type ManagerName string

// Table 1 rows.
const (
	MgrKingsley ManagerName = "Kingsley-Windows"
	MgrLea      ManagerName = "Lea-Linux"
	MgrRegions  ManagerName = "Regions"
	MgrObstacks ManagerName = "Obstacks"
	MgrCustom   ManagerName = "our DM manager"
)

// Managers lists the Table 1 rows in the paper's order.
var Managers = []ManagerName{MgrKingsley, MgrLea, MgrRegions, MgrObstacks, MgrCustom}

// registryName maps a Table 1 row label to the registry name of its
// manager family.
var registryName = map[ManagerName]string{
	MgrKingsley: "kingsley",
	MgrLea:      "lea",
	MgrRegions:  "regions",
	MgrObstacks: "obstack",
	MgrCustom:   "custom",
}

// PaperTable1 holds the published values in bytes; absent cells (the
// paper's "-") are zero.
var PaperTable1 = map[ManagerName]map[Workload]int64{
	MgrKingsley: {WorkloadDRR: 2.09e6, WorkloadRecon: 2.26e6, WorkloadRender: 3.96e6},
	MgrLea:      {WorkloadDRR: 2.34e5, WorkloadRender: 1.86e6},
	MgrRegions:  {WorkloadRecon: 2.08e6},
	MgrObstacks: {WorkloadRender: 1.55e6},
	MgrCustom:   {WorkloadDRR: 1.48e5, WorkloadRecon: 1.49e6, WorkloadRender: 1.07e6},
}

// Config scales the experiments. Quick mode shrinks workloads and seed
// counts so unit tests and benchmarks stay fast; the full mode matches
// the paper's ten simulations per case study.
type Config struct {
	Seeds       int  // traces per case study (default 10; the paper uses 10)
	Quick       bool // smaller workloads (tests/benchmarks)
	Parallelism int  // worker count for independent cells (0 = GOMAXPROCS, 1 = sequential)
}

func (c *Config) defaults() {
	if c.Seeds == 0 {
		if c.Quick {
			c.Seeds = 3
		} else {
			c.Seeds = 10
		}
	}
}

// BuildWorkloadTrace generates the trace of one case study for one seed,
// through the workload registry.
func BuildWorkloadTrace(w Workload, seed int64, quick bool) (*trace.Trace, error) {
	tr, err := registry.BuildWorkload(string(w), registry.WorkloadOpts{Seed: seed, Quick: quick})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return tr, nil
}

// NewManager constructs a fresh manager of the named family for a trace
// whose profile is p, through the manager registry. Regions are sized per
// allocation tag from the profile (the "manually designed" configuration
// of Sec. 5); the custom manager is designed by the methodology.
func NewManager(name ManagerName, p *profile.Profile) (mm.Manager, error) {
	key, ok := registryName[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown manager %q", name)
	}
	return registry.NewManager(key, nil, p)
}

// Cell is one Table 1 measurement, averaged over seeds.
type Cell struct {
	MaxFootprint int64   // mean over seeds, bytes
	MaxLive      int64   // mean peak requested bytes (lower bound)
	Work         mm.Work // mean work units (execution-time proxy)
	Runs         int
}

// Table1Result is the measured Table 1.
type Table1Result struct {
	Cfg   Config
	Cells map[ManagerName]map[Workload]Cell
}

// RunTable1 measures the maximum memory footprint of every manager on
// every case study, averaged over seeds. Workload×seed cells run
// concurrently per cfg.Parallelism (each builds its own trace and
// managers); the reduction happens in a fixed order, so the result is
// identical at every parallelism level.
func RunTable1(ctx context.Context, cfg Config) (*Table1Result, error) {
	cfg.defaults()
	type job struct {
		w    Workload
		seed int64
	}
	var jobs []job
	for _, w := range Workloads {
		for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
			jobs = append(jobs, job{w, seed})
		}
	}
	cells := make([]map[ManagerName]Cell, len(jobs))
	err := pool.Run(ctx, cfg.Parallelism, len(jobs), func(i int) error {
		j := jobs[i]
		tr, err := BuildWorkloadTrace(j.w, j.seed, cfg.Quick)
		if err != nil {
			return err
		}
		prof := profile.FromTrace(tr)
		got := make(map[ManagerName]Cell, len(Managers))
		for _, name := range Managers {
			mgr, err := NewManager(name, prof)
			if err != nil {
				return err
			}
			run, err := trace.Run(ctx, mgr, tr, trace.RunOpts{})
			if err != nil {
				return fmt.Errorf("table1 %s/%s seed %d: %w", name, j.w, j.seed, err)
			}
			got[name] = Cell{
				MaxFootprint: run.MaxFootprint,
				MaxLive:      tr.MaxLiveBytes(),
				Work:         run.Work,
				Runs:         1,
			}
		}
		cells[i] = got
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table1Result{Cfg: cfg, Cells: make(map[ManagerName]map[Workload]Cell)}
	for _, m := range Managers {
		res.Cells[m] = make(map[Workload]Cell)
	}
	// Reduce in job order (deterministic regardless of completion order).
	for i, j := range jobs {
		for _, name := range Managers {
			c := res.Cells[name][j.w]
			g := cells[i][name]
			c.MaxFootprint += g.MaxFootprint
			c.MaxLive += g.MaxLive
			c.Work += g.Work
			c.Runs += g.Runs
			res.Cells[name][j.w] = c
		}
	}
	// Convert sums to means.
	for _, m := range Managers {
		for _, w := range Workloads {
			c := res.Cells[m][w]
			if c.Runs > 0 {
				c.MaxFootprint /= int64(c.Runs)
				c.MaxLive /= int64(c.Runs)
				c.Work /= mm.Work(c.Runs)
			}
			res.Cells[m][w] = c
		}
	}
	return res, nil
}

// Improvement returns the footprint reduction of the custom manager
// versus manager m on workload w, as a fraction (0.36 = 36% smaller).
func (t *Table1Result) Improvement(m ManagerName, w Workload) float64 {
	base := t.Cells[m][w].MaxFootprint
	custom := t.Cells[MgrCustom][w].MaxFootprint
	if base <= 0 {
		return 0
	}
	return 1 - float64(custom)/float64(base)
}

// AverageImprovement aggregates the improvement of the custom manager
// over every baseline cell the paper reports (the abstract's "60% on
// average" claim).
func (t *Table1Result) AverageImprovement() float64 {
	var sum float64
	var n int
	for m, cols := range PaperTable1 {
		if m == MgrCustom {
			continue
		}
		for w := range cols {
			sum += t.Improvement(m, w)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

package jobs

import (
	"fmt"

	"dmmkit/internal/checkpoint"
	"dmmkit/internal/registry"
	"dmmkit/internal/trace"
)

// Job kinds.
const (
	// KindExplore runs a design-space exploration (the server-side
	// equivalent of dmmexplore).
	KindExplore = "explore"
	// KindProfile runs one profiling pass over the trace (dmmprof).
	KindProfile = "profile"
)

// TraceRef names a job's input trace: exactly one of Path (a DMMT trace
// file, typically in the server's upload spool) or Workload (a
// registered generator, parameterized by Seed and Quick).
type TraceRef struct {
	Path     string `json:"path,omitempty"`
	Workload string `json:"workload,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Quick    bool   `json:"quick,omitempty"`
}

// displayName renders the ref for snapshots and logs.
func (t TraceRef) displayName() string {
	if t.Workload != "" {
		return fmt.Sprintf("workload:%s seed=%d quick=%v", t.Workload, t.Seed, t.Quick)
	}
	return t.Path
}

// open resolves the ref to a trace.Opener. A file opens as a streaming
// *trace.File (out-of-core, one independent pass per candidate); a
// workload is generated once in memory and shared read-only.
func (t TraceRef) open() (trace.Opener, error) {
	if t.Workload != "" {
		return registry.BuildWorkload(t.Workload, registry.WorkloadOpts{Seed: t.Seed, Quick: t.Quick})
	}
	return trace.OpenFile(t.Path)
}

// identity pins the ref for checkpoint metadata. Hashing the file
// happens only on the drain path, never per job.
func (t TraceRef) identity() (checkpoint.TraceIdentity, error) {
	if t.Workload != "" {
		return checkpoint.WorkloadIdentity(t.Workload, t.Seed, t.Quick), nil
	}
	return checkpoint.FileIdentity(t.Path)
}

// Request describes one job submission. The option vocabulary mirrors
// the dmmexplore flags one-to-one (see internal/cliopts): a request and
// a command line with the same values produce byte-identical results.
type Request struct {
	// Kind selects the job type: KindExplore or KindProfile.
	Kind string `json:"kind"`
	// Trace names the input.
	Trace TraceRef `json:"trace"`

	// Strategy and Objectives mirror -strategy and -objectives;
	// Objectives empty means the strategy's natural default.
	Strategy   string `json:"strategy,omitempty"`
	Objectives string `json:"objectives,omitempty"`
	// Seed seeds the genetic strategies (-seed).
	Seed int64 `json:"search_seed,omitempty"`
	// Population and Generations parameterize ga/nsga (-population,
	// -generations).
	Population  int `json:"population,omitempty"`
	Generations int `json:"generations,omitempty"`
	// Budget is the evaluation cap (-candidates).
	Budget int `json:"budget,omitempty"`
	// Parallelism is the per-job evaluation worker count (-parallel;
	// 0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// IncludeDesigned additionally evaluates the methodology's design.
	IncludeDesigned bool `json:"include_designed,omitempty"`
	// SkipFailures selects -on-error skip: a panicking candidate is
	// recorded as that candidate's error instead of aborting the job.
	SkipFailures bool `json:"skip_failures,omitempty"`
}

// Package closecheckfix exercises the closecheck analyzer: silently
// discarded Close() errors are violations; checked or explicitly
// discarded ones are blessed.
package closecheckfix

import (
	"errors"
	"os"
)

// Encoder is a stand-in for the trace/checkpoint encoders whose Close
// flushes buffered state and the format trailer.
type Encoder struct{ closed bool }

// Close flushes and closes the encoder.
func (e *Encoder) Close() error {
	e.closed = true
	return nil
}

// NoError has a Close without an error result; closecheck must ignore
// it (nothing is discarded).
type NoError struct{}

// Close has nothing to report.
func (NoError) Close() {}

// DiscardStatement drops the Close error on the floor.
func DiscardStatement(path string) {
	f, _ := os.Open(path)
	f.Close() // want `Close\(\) error on \*os\.File is discarded`
}

// DiscardDefer drops it via a bare defer.
func DiscardDefer(path string) {
	f, _ := os.Open(path)
	defer f.Close() // want `deferred Close\(\) on \*os\.File discards its error`
}

// DiscardEncoder drops an encoder's trailer write.
func DiscardEncoder(enc *Encoder) {
	enc.Close() // want `Close\(\) error on \*Encoder is discarded`
}

// ExplicitDiscard is the blessed read-path pattern: the discard is
// visible in review.
func ExplicitDiscard(path string) {
	f, _ := os.Open(path)
	_ = f.Close()
}

// ExplicitDeferDiscard is the blessed deferred form.
func ExplicitDeferDiscard(path string) {
	f, _ := os.Open(path)
	defer func() { _ = f.Close() }()
}

// CheckedClose is the blessed write-path pattern.
func CheckedClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// CloselessClose: a Close returning nothing has no error to lose.
func CloselessClose(n NoError) {
	n.Close()
}

// Package heap provides a simulated byte-addressable heap for dynamic
// memory managers.
//
// Go's runtime is garbage collected, so a manual allocator cannot manage
// real process memory the way the C allocators studied by Atienza et al.
// (DATE 2004) do. Instead, every manager in this repository operates on a
// Heap: a growable arena with an sbrk-style program break plus mmap-like
// side segments. Allocator metadata (block headers, footers, free-list
// links) is stored in-band inside the arena, exactly as a C allocator
// stores it in process memory, so per-block overhead, fragmentation and
// footprint measurements are byte-accurate.
//
// Addresses are 32-bit offsets (type Addr), matching the 32-bit embedded
// targets the paper considers; in-band pointer fields therefore cost four
// bytes. Address 0 is reserved as the nil address.
//
// The Heap tracks the high-water mark of memory requested from the
// "system" (break high-water plus mapped-segment high-water). This is the
// paper's figure of merit: maximum memory footprint.
//
// # Cost model
//
// Footprint is one axis of the paper's evaluation; execution time is the
// other. Simulated managers charge architecture-neutral work units
// (internal/mm's Cost* weights) for every probe, link update, header
// write and system call, so "how long would this policy take" is modeled
// independently of how fast the simulator itself runs. The heap's own
// accessors (U32/PutU32 and friends) are engineered to keep simulator
// overhead out of that measurement: a single bounds compare selects an
// inline read/write into the sbrk arena, segment lookups hit a last-used
// cache before binary search, and error paths live out of line. Policy
// outputs (footprint, live bytes, work units) are invariant under these
// optimizations — the golden differential test pins them, including an
// FNV checksum of every heap byte.
package heap

package bitset

import (
	"math/rand"
	"testing"
)

// reference is a plain bool-slice model of the bitset.
type reference []bool

func (r reference) nextGE(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < len(r); i++ {
		if r[i] {
			return i
		}
	}
	return -1
}

func TestBasic(t *testing.T) {
	var s Set
	if s.NextGE(0) != -1 {
		t.Fatal("empty set has a set bit")
	}
	s.Set(3)
	s.Set(70)
	s.Set(200)
	if !s.Test(3) || !s.Test(70) || s.Test(4) || s.Test(1000) {
		t.Fatal("Test mismatch")
	}
	for _, tc := range []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 70}, {63, 70}, {64, 70}, {70, 70}, {71, 200}, {200, 200}, {201, -1},
	} {
		if got := s.NextGE(tc.from); got != tc.want {
			t.Errorf("NextGE(%d) = %d, want %d", tc.from, got, tc.want)
		}
	}
	s.Clear(70)
	if got := s.NextGE(4); got != 200 {
		t.Errorf("NextGE(4) after Clear = %d, want 200", got)
	}
	s.Reset()
	if s.NextGE(0) != -1 || s.Test(3) {
		t.Fatal("Reset did not empty the set")
	}
}

func TestInsertZero(t *testing.T) {
	var s Set
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.InsertZero(1)
	for _, want := range []struct {
		i  int
		on bool
	}{{0, true}, {1, false}, {63, false}, {64, true}, {65, true}} {
		if s.Test(want.i) != want.on {
			t.Errorf("after InsertZero(1): bit %d = %v, want %v", want.i, s.Test(want.i), want.on)
		}
	}
}

// TestDifferential drives Set and a bool-slice model through random
// operations, comparing NextGE over the whole domain after each step.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Set
	ref := make(reference, 0, 512)
	grow := func(i int) {
		for len(ref) <= i {
			ref = append(ref, false)
		}
	}
	for step := 0; step < 4000; step++ {
		i := rng.Intn(300)
		switch rng.Intn(4) {
		case 0:
			grow(i)
			ref[i] = true
			s.Set(i)
		case 1:
			grow(i)
			ref[i] = false
			s.Clear(i)
		case 2:
			grow(i)
			ref = append(ref, false)
			copy(ref[i+1:], ref[i:len(ref)-1])
			ref[i] = false
			s.InsertZero(i)
		default:
			if got, want := s.Test(i), i < len(ref) && ref[i]; got != want {
				t.Fatalf("step %d: Test(%d) = %v, want %v", step, i, got, want)
			}
		}
		for q := 0; q < 310; q += 7 {
			if got, want := s.NextGE(q), ref.nextGE(q); got != want {
				t.Fatalf("step %d: NextGE(%d) = %d, want %d", step, q, got, want)
			}
		}
	}
}

package mesh

import (
	"fmt"
	"math/rand"
)

// Vec3 is a 3D position.
type Vec3 struct{ X, Y, Z float32 }

// Face is a triangle over vertex indices.
type Face struct{ A, B, C int32 }

// VSplit is one refinement record: splitting vertex Parent introduces a
// new vertex and two new faces.
type VSplit struct {
	Parent  int32
	NewVert Vec3
	FaceA   Face
	FaceB   Face
}

// Record sizes in bytes on the 32-bit embedded target: what the DM
// manager is asked for when a record is materialized.
const (
	VertexBytes = 72 // position, normal, texture coords, color, flags
	FaceBytes   = 40 // indices, neighbour links, material
)

// Progressive is a scalable mesh: the base geometry plus the refinement
// stream.
type Progressive struct {
	BaseVerts []Vec3
	BaseFaces []Face
	Splits    []VSplit
}

// Generate builds a progressive mesh from a jittered grid surface: a
// (base+detail)-resolution surface simplified down to a base-resolution
// mesh, with the removed vertices recorded as vertex splits.
func Generate(seed int64, baseRes, detail int) *Progressive {
	if baseRes < 2 {
		baseRes = 2
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Progressive{}
	// Base grid.
	for y := 0; y < baseRes; y++ {
		for x := 0; x < baseRes; x++ {
			p.BaseVerts = append(p.BaseVerts, Vec3{
				X: float32(x) + rng.Float32()*0.3,
				Y: float32(y) + rng.Float32()*0.3,
				Z: rng.Float32(),
			})
		}
	}
	for y := 0; y < baseRes-1; y++ {
		for x := 0; x < baseRes-1; x++ {
			i := int32(y*baseRes + x)
			p.BaseFaces = append(p.BaseFaces,
				Face{i, i + 1, i + int32(baseRes)},
				Face{i + 1, i + int32(baseRes) + 1, i + int32(baseRes)})
		}
	}
	// Refinement stream: each split subdivides around a random parent.
	nVerts := int32(len(p.BaseVerts))
	for s := 0; s < detail; s++ {
		parent := rng.Int31n(nVerts)
		nv := Vec3{
			X: rng.Float32() * float32(baseRes),
			Y: rng.Float32() * float32(baseRes),
			Z: rng.Float32(),
		}
		p.Splits = append(p.Splits, VSplit{
			Parent:  parent,
			NewVert: nv,
			FaceA:   Face{parent, nVerts, rng.Int31n(nVerts)},
			FaceB:   Face{nVerts, parent, rng.Int31n(nVerts)},
		})
		nVerts++
	}
	return p
}

// MaxLOD returns the number of available refinement levels.
func (p *Progressive) MaxLOD() int { return len(p.Splits) }

// RecordsAt returns how many vertex and face records a mesh refined to
// lod levels holds beyond the base mesh.
func (p *Progressive) RecordsAt(lod int) (verts, faces int) {
	if lod > len(p.Splits) {
		lod = len(p.Splits)
	}
	return lod, 2 * lod
}

// BaseBytes returns the dynamic memory the base mesh occupies when loaded
// (vertex and face records).
func (p *Progressive) BaseBytes() int64 {
	return int64(len(p.BaseVerts))*VertexBytes + int64(len(p.BaseFaces))*FaceBytes
}

// Instance is a refinable view of a progressive mesh: it tracks the
// current LOD and which refinement records are materialized. The actual
// allocation of records is delegated to the caller through the Alloc/Free
// callbacks so the workload can emit a DM trace.
type Instance struct {
	P   *Progressive
	lod int
	// Materialized record handles, in refinement order: for each level
	// one vertex record and two face records.
	vertIDs []int64
	faceIDs []int64
}

// NewInstance returns an instance at LOD 0.
func NewInstance(p *Progressive) *Instance { return &Instance{P: p} }

// LOD returns the current refinement level.
func (in *Instance) LOD() int { return in.lod }

// Refine raises the LOD by one, materializing one vertex and two face
// records via alloc. It reports whether refinement was possible.
func (in *Instance) Refine(alloc func(size int64) int64) bool {
	if in.lod >= in.P.MaxLOD() {
		return false
	}
	in.vertIDs = append(in.vertIDs, alloc(VertexBytes))
	in.faceIDs = append(in.faceIDs, alloc(FaceBytes), alloc(FaceBytes))
	in.lod++
	return true
}

// Coarsen lowers the LOD by one, releasing the most recent records via
// free (LIFO — the edge-collapse order). It reports whether coarsening
// was possible.
func (in *Instance) Coarsen(free func(id int64)) bool {
	if in.lod == 0 {
		return false
	}
	in.lod--
	free(in.faceIDs[len(in.faceIDs)-1])
	free(in.faceIDs[len(in.faceIDs)-2])
	in.faceIDs = in.faceIDs[:len(in.faceIDs)-2]
	free(in.vertIDs[len(in.vertIDs)-1])
	in.vertIDs = in.vertIDs[:len(in.vertIDs)-1]
	return true
}

// ReleaseAll frees every materialized record in the given order function:
// order receives the record count and returns the visit order (the
// teardown phase frees in screen-space order, not LIFO). The instance
// returns to LOD 0.
func (in *Instance) ReleaseAll(order func(n int) []int, free func(id int64)) {
	ids := make([]int64, 0, len(in.vertIDs)+len(in.faceIDs))
	ids = append(ids, in.vertIDs...)
	ids = append(ids, in.faceIDs...)
	if order == nil {
		for i := len(ids) - 1; i >= 0; i-- {
			free(ids[i])
		}
	} else {
		for _, i := range order(len(ids)) {
			free(ids[i])
		}
	}
	in.vertIDs, in.faceIDs = nil, nil
	in.lod = 0
}

// Validate checks structural sanity of the progressive mesh.
func (p *Progressive) Validate() error {
	if len(p.BaseVerts) < 3 || len(p.BaseFaces) < 1 {
		return fmt.Errorf("mesh: degenerate base mesh (%d verts, %d faces)", len(p.BaseVerts), len(p.BaseFaces))
	}
	n := int32(len(p.BaseVerts)) + int32(len(p.Splits))
	for i, f := range p.BaseFaces {
		if f.A >= n || f.B >= n || f.C >= n || f.A < 0 || f.B < 0 || f.C < 0 {
			return fmt.Errorf("mesh: base face %d references vertex out of range", i)
		}
	}
	for i, s := range p.Splits {
		limit := int32(len(p.BaseVerts)) + int32(i) + 1
		for _, f := range []Face{s.FaceA, s.FaceB} {
			if f.A >= limit || f.B >= limit || f.C >= limit {
				return fmt.Errorf("mesh: split %d references future vertex", i)
			}
		}
	}
	return nil
}

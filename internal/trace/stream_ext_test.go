// Streaming-replay tests live in the external package for the same
// reason as replay_ext_test.go: they replay against a real manager.
package trace_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"dmmkit/internal/alloc/kingsley"
	"dmmkit/internal/heap"
	"dmmkit/internal/trace"
)

// writeChurnTrace streams a generated churn trace (bounded live set,
// arbitrary length) to path in DMMT2 without materializing it, returning
// the event count. The pattern keeps liveSet allocations alive in a ring:
// every step frees the oldest and allocates a new one.
func writeChurnTrace(t *testing.T, path string, events, liveSet int) int {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := trace.NewEncoder(f)
	b := trace.NewBuilderTo("churn", enc)
	var ring []int64
	for b.EventCount() < events-liveSet {
		if len(ring) >= liveSet {
			b.Free(ring[0])
			ring = ring[1:]
		}
		ring = append(ring, b.Alloc(int64(16+8*(b.EventCount()%37)), b.EventCount()%5))
		if b.EventCount()%3 == 0 {
			b.Tick()
		}
	}
	for _, id := range ring {
		b.Free(id)
	}
	if err := errors.Join(b.Err(), enc.Close(), f.Close()); err != nil {
		t.Fatal(err)
	}
	return b.EventCount()
}

func TestRunSourceMatchesRunOnFile(t *testing.T) {
	tr := replayTrace()
	var buf bytes.Buffer
	if err := tr.EncodeBinary2(&buf); err != nil {
		t.Fatal(err)
	}
	inMem, err := trace.Run(context.Background(), kingsley.New(heap.New(heap.Config{})), tr, trace.RunOpts{SampleEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.DecodeBinarySource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := trace.RunSource(context.Background(), kingsley.New(heap.New(heap.Config{})), src, trace.RunOpts{SampleEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if inMem.MaxFootprint != streamed.MaxFootprint || inMem.Work != streamed.Work ||
		inMem.Stats != streamed.Stats || inMem.Events != streamed.Events ||
		inMem.MaxLive != streamed.MaxLive || inMem.Final != streamed.Final {
		t.Errorf("streaming replay diverged:\nin-mem:   %+v\nstreamed: %+v", inMem, streamed)
	}
	if len(inMem.Series) != len(streamed.Series) {
		t.Fatalf("series: %d vs %d points", len(inMem.Series), len(streamed.Series))
	}
	for i := range inMem.Series {
		if inMem.Series[i] != streamed.Series[i] {
			t.Fatalf("series point %d differs: %+v vs %+v", i, inMem.Series[i], streamed.Series[i])
		}
	}
}

func TestRunSourceReportsDecodeError(t *testing.T) {
	tr := replayTrace()
	var buf bytes.Buffer
	if err := tr.EncodeBinary2(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := trace.DecodeBinarySource(bytes.NewReader(buf.Bytes()[:buf.Len()-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.RunSource(context.Background(), kingsley.New(heap.New(heap.Config{})), src, trace.RunOpts{}); err == nil {
		t.Error("replay of truncated stream succeeded")
	}
}

func TestFileOpenerIndependentPasses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "churn.trace")
	n := writeChurnTrace(t, path, 10000, 64)
	f, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "churn" {
		t.Errorf("Name = %q", f.Name())
	}
	if f.Events() != -1 {
		t.Errorf("Events = %d, want -1 (DMMT2 has no header count)", f.Events())
	}
	// Concurrent passes must not interfere (exploration replays one pass
	// per worker).
	results := make(chan int64, 4)
	for w := 0; w < 4; w++ {
		go func() {
			src, err := f.Open()
			if err != nil {
				results <- -1
				return
			}
			res, err := trace.RunSource(context.Background(), kingsley.New(heap.New(heap.Config{})), src, trace.RunOpts{})
			if err != nil {
				results <- -1
				return
			}
			if res.Events != n {
				results <- -2
				return
			}
			results <- res.MaxFootprint
		}()
	}
	first := <-results
	for w := 1; w < 4; w++ {
		if got := <-results; got != first || got < 0 {
			t.Fatalf("concurrent pass %d returned %d, first returned %d", w, got, first)
		}
	}
	// An abandoned source must release its handle without error.
	src, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if err := trace.Close(src); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := trace.Close(src); err != nil {
		t.Errorf("second Close: %v", err)
	}
	// A DMMT1 file reports its count up front.
	tr := replayTrace()
	p1 := filepath.Join(t.TempDir(), "v1.trace")
	fh, err := os.Create(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := errors.Join(tr.EncodeBinary(fh), fh.Close()); err != nil {
		t.Fatal(err)
	}
	f1, err := trace.OpenFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Events() != len(tr.Events) {
		t.Errorf("DMMT1 Events = %d, want %d", f1.Events(), len(tr.Events))
	}
	if _, err := trace.OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("OpenFile on a missing path succeeded")
	}
}

// TestStreamingReplayBoundedMemory is the acceptance check for
// out-of-core replay: a ~1M-event trace replayed straight off disk must
// allocate far less than the events would occupy materialized (~40 MB) —
// the retained heap is the live-pointer table plus the simulated heap,
// both functions of the live set only, not of the trace length.
func TestStreamingReplayBoundedMemory(t *testing.T) {
	const events = 1_000_000
	const liveSet = 1024
	path := filepath.Join(t.TempDir(), "big.trace")
	n := writeChurnTrace(t, path, events, liveSet)
	if n < events-liveSet {
		t.Fatalf("generated only %d events", n)
	}
	f, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	src, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.RunSource(context.Background(), kingsley.New(heap.New(heap.Config{})), src, trace.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if res.Events != n {
		t.Fatalf("replayed %d events, want %d", res.Events, n)
	}
	if res.MaxFootprint <= 0 {
		t.Fatal("no footprint measured")
	}
	// Materializing would retain ~40 bytes per event; bound the streaming
	// replay at a small fraction of that, generously above the real need
	// (live table + simulated heap + read buffer, all O(live set)).
	const bound = 8 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > bound {
		t.Errorf("streaming replay retained %d bytes of heap (bound %d): memory is not O(live set)", grew, bound)
	}
	t.Logf("replayed %d events; heap grew %d bytes, footprint %d",
		res.Events, int64(after.HeapAlloc)-int64(before.HeapAlloc), res.MaxFootprint)
}

package trace

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// drainNext collects src's events through the one-event interface.
func drainNext(t *testing.T, src Source) ([]Event, error) {
	t.Helper()
	var out []Event
	for {
		e, ok, err := src.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, e)
	}
}

// drainBatch collects src's events through NextBatch with the given
// buffer size, pre-dirtying the buffer before every call so stale fields
// from reused storage cannot leak into the result unnoticed.
func drainBatch(t *testing.T, src BatchSource, size int) ([]Event, error) {
	t.Helper()
	var out []Event
	buf := make([]Event, size)
	for {
		for i := range buf {
			buf[i] = Event{Kind: 99, ID: -1, Size: -7, Tag: 13, Phase: -5, Tick: 1 << 40}
		}
		n, err := src.NextBatch(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			return out, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// TestNextBatchMatchesNext is the batch-vs-single differential: over
// valid DMMT2 streams, NextBatch at any buffer size must yield exactly
// the events of a Next loop, and report exhaustion as (0, nil).
func TestNextBatchMatchesNext(t *testing.T) {
	for _, tr := range []*Trace{{Name: "empty"}, sampleTrace(), signedTrace(1), signedTrace(2)} {
		var enc bytes.Buffer
		if err := tr.EncodeBinary2(&enc); err != nil {
			t.Fatal(err)
		}
		ref, err := DecodeBinarySource(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := drainNext(t, ref)
		if err != nil {
			t.Fatalf("%s: next loop: %v", tr.Name, err)
		}
		for _, size := range []int{1, 2, 3, 7, 64, 1024} {
			src, err := DecodeBinarySource(bytes.NewReader(enc.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			bs, ok := src.(BatchSource)
			if !ok {
				t.Fatalf("%s: DMMT2 source does not implement BatchSource", tr.Name)
			}
			got, err := drainBatch(t, bs, size)
			if err != nil {
				t.Fatalf("%s: batch size %d: %v", tr.Name, size, err)
			}
			if len(want) != len(got) || (len(want) > 0 && !reflect.DeepEqual(want, got)) {
				t.Errorf("%s: batch size %d decoded %d events differing from the %d of the next loop",
					tr.Name, size, len(got), len(want))
			}
			// Exhaustion must be latched: further calls keep returning (0, nil).
			if n, err := bs.NextBatch(make([]Event, 4)); n != 0 || err != nil {
				t.Errorf("%s: batch size %d: post-exhaustion NextBatch = (%d, %v), want (0, nil)", tr.Name, size, n, err)
			}
		}
	}
}

// TestNextBatchErrorContract truncates a DMMT2 stream and checks that
// the batch path yields the same event prefix and verdict as the
// one-event path, and that the error latches.
func TestNextBatchErrorContract(t *testing.T) {
	var enc bytes.Buffer
	if err := signedTrace(3).EncodeBinary2(&enc); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(enc.Bytes()) / 2, len(enc.Bytes()) - 1, len(enc.Bytes()) - 5} {
		data := enc.Bytes()[:cut]
		ref, err := DecodeBinarySource(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := drainNext(t, ref)
		if wantErr == nil {
			t.Fatalf("cut %d: truncated stream decoded cleanly", cut)
		}

		src, err := DecodeBinarySource(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		bs := src.(BatchSource)
		got, gotErr := drainBatch(t, bs, 16)
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Errorf("cut %d: batch error %v, next loop error %v", cut, gotErr, wantErr)
		}
		if len(want) != len(got) || (len(want) > 0 && !reflect.DeepEqual(want, got)) {
			t.Errorf("cut %d: batch prefix %d events, next loop %d", cut, len(got), len(want))
		}
		if n, err := bs.NextBatch(make([]Event, 4)); n != 0 || err == nil {
			t.Errorf("cut %d: error did not latch: NextBatch = (%d, %v)", cut, n, err)
		}
	}
}

// nextOnly hides every optional extension of a Source, forcing ReadBatch
// onto its per-event fallback.
type nextOnly struct{ src Source }

func (s nextOnly) Name() string               { return s.src.Name() }
func (s nextOnly) Next() (Event, bool, error) { return s.src.Next() }

// TestReadBatchFallback checks ReadBatch's per-event path against the
// batching path on the same trace.
func TestReadBatchFallback(t *testing.T) {
	tr := signedTrace(4)
	var viaFallback []Event
	src := nextOnly{src: tr.Source()}
	buf := make([]Event, 33)
	for {
		n, err := ReadBatch(src, buf)
		if err != nil {
			t.Fatal(err)
		}
		viaFallback = append(viaFallback, buf[:n]...)
		if n == 0 {
			break
		}
	}
	if !reflect.DeepEqual(tr.Events, viaFallback) {
		t.Errorf("fallback ReadBatch decoded %d events, trace has %d", len(viaFallback), len(tr.Events))
	}
}

// TestContextSourceNextBatch checks that the context wrapper keeps
// batching and that cancellation latches on the batch path too.
func TestContextSourceNextBatch(t *testing.T) {
	tr := sampleTrace()
	ctx, cancel := context.WithCancel(context.Background())
	src := WithContext(ctx, tr.Source())
	bs, ok := src.(BatchSource)
	if !ok {
		t.Fatal("context-wrapped source lost BatchSource")
	}
	buf := make([]Event, 5)
	n, err := bs.NextBatch(buf)
	if err != nil || n != 5 {
		t.Fatalf("first batch = (%d, %v), want (5, nil)", n, err)
	}
	if !reflect.DeepEqual(buf[:n], tr.Events[:5]) {
		t.Error("context-wrapped batch events differ from the trace")
	}
	cancel()
	if n, err := bs.NextBatch(buf); n != 0 || err == nil {
		t.Fatalf("post-cancel batch = (%d, %v), want (0, ctx error)", n, err)
	}
	if n, err := bs.NextBatch(buf); n != 0 || err == nil {
		t.Fatalf("cancellation did not latch: (%d, %v)", n, err)
	}
}

// TestPosOpenAt splits a DMMT2 file at several event indices: decoding k
// events, capturing Pos and reopening with OpenAt must yield exactly the
// tail of a full sequential decode.
func TestPosOpenAt(t *testing.T) {
	tr := signedTrace(5)
	path := filepath.Join(t.TempDir(), "signed.dmmt2")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeBinary2(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{0, 1, len(tr.Events) / 3, len(tr.Events) - 1, len(tr.Events)} {
		src, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		p, ok := src.(Positioner)
		if !ok {
			t.Fatal("DMMT2 file source does not implement Positioner")
		}
		for i := 0; i < k; i++ {
			if _, ok, err := src.Next(); err != nil || !ok {
				t.Fatalf("k=%d: prefix decode stopped at %d: %v", k, i, err)
			}
		}
		pos := p.Pos()
		if err := Close(src); err != nil {
			t.Fatal(err)
		}
		if pos.Index != uint64(k) {
			t.Fatalf("k=%d: Pos.Index = %d", k, pos.Index)
		}

		resumed, err := f.OpenAt(pos)
		if err != nil {
			t.Fatalf("k=%d: OpenAt: %v", k, err)
		}
		tail, err := drainNext(t, resumed)
		if err != nil {
			t.Fatalf("k=%d: resumed decode: %v", k, err)
		}
		if err := Close(resumed); err != nil {
			t.Fatal(err)
		}
		want := tr.Events[k:]
		if len(tail) != len(want) || (len(want) > 0 && !reflect.DeepEqual(tail, want)) {
			t.Errorf("k=%d: resumed decode yielded %d events, want the %d-event tail", k, len(tail), len(want))
		}
	}
}

// TestOpenAtRejectsDMMT1 pins the version gate: mid-stream resume needs
// the self-delimiting DMMT2 framing.
func TestOpenAtRejectsDMMT1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sample.dmmt1")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sampleTrace().EncodeBinary(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.OpenAt(Pos{}); err == nil {
		t.Fatal("OpenAt accepted a DMMT1 file")
	}
}

// FuzzNextBatch is the batch-path twin of FuzzDecodeBinary: over
// arbitrary input, a NextBatch drain must agree with a Next drain on
// verdict, event prefix and error text, at more than one buffer size.
func FuzzNextBatch(f *testing.F) {
	for _, tr := range []*Trace{{Name: "empty"}, sampleTrace(), signedTrace(1)} {
		var v2 bytes.Buffer
		if err := tr.EncodeBinary2(&v2); err != nil {
			f.Fatal(err)
		}
		f.Add(v2.Bytes())
		f.Add(v2.Bytes()[:len(v2.Bytes())/2])
		f.Add(v2.Bytes()[:len(v2.Bytes())-1])
	}
	f.Add([]byte("DMMT2\n"))
	f.Add([]byte("not a trace at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ref, openErr := DecodeBinarySource(bytes.NewReader(data))
		var want []Event
		var refErr error
		if openErr == nil {
			for {
				e, ok, err := ref.Next()
				if err != nil {
					refErr = err
					break
				}
				if !ok {
					break
				}
				want = append(want, e)
			}
		}
		for _, size := range []int{1, 8, 1024} {
			src, err := DecodeBinarySource(bytes.NewReader(data))
			if (err == nil) != (openErr == nil) {
				t.Fatalf("size %d: open verdicts disagree: %v vs %v", size, err, openErr)
			}
			if err != nil {
				continue
			}
			bs, ok := src.(BatchSource)
			if !ok {
				return // DMMT1 input: no batch path to compare
			}
			var got []Event
			var gotErr error
			buf := make([]Event, size)
			for {
				n, err := bs.NextBatch(buf)
				got = append(got, buf[:n]...)
				if err != nil {
					gotErr = err
					break
				}
				if n == 0 {
					break
				}
			}
			if (gotErr == nil) != (refErr == nil) {
				t.Fatalf("size %d: batch verdict %v, next verdict %v", size, gotErr, refErr)
			}
			if gotErr != nil && gotErr.Error() != refErr.Error() {
				t.Fatalf("size %d: batch error %q, next error %q", size, gotErr, refErr)
			}
			if len(want) != len(got) || (len(want) > 0 && !reflect.DeepEqual(want, got)) {
				t.Fatalf("size %d: batch decoded %d events, next loop %d", size, len(got), len(want))
			}
		}
	})
}

// Command dmmexplore explores the DM-management design space against a
// trace: it evaluates a uniform sample of the ~144k valid decision
// vectors plus the methodology's design, prints the footprint/work Pareto
// front, and shows where the methodology's one-walk design lands relative
// to exhaustive search.
//
// Usage:
//
//	dmmexplore -workload drr -candidates 96
//	dmmexplore drr1.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"dmmkit"
)

func main() {
	var (
		workload   = flag.String("workload", "", "generate and explore: drr, recon3d or render3d")
		seed       = flag.Int64("seed", 1, "workload seed")
		candidates = flag.Int("candidates", 96, "enumerated vectors to evaluate")
		quick      = flag.Bool("quick", true, "use a reduced workload (exploration replays every candidate)")
	)
	flag.Parse()

	var tr *dmmkit.Trace
	switch {
	case *workload != "":
		switch *workload {
		case "drr":
			cfg := dmmkit.DRRConfig{Seed: *seed}
			if *quick {
				cfg.Net.Phases = 3
				cfg.Net.PhaseMs = 200
			}
			tr = dmmkit.DRRTrace(cfg)
		case "recon3d":
			cfg := dmmkit.Recon3DConfig{Seed: *seed}
			if *quick {
				cfg.Pairs = 1
			}
			tr = dmmkit.Recon3DTrace(cfg)
		case "render3d":
			cfg := dmmkit.Render3DConfig{Seed: *seed}
			if *quick {
				cfg.Detail = 300
				cfg.Frames = 24
			}
			tr = dmmkit.Render3DTrace(cfg)
		default:
			fmt.Fprintf(os.Stderr, "dmmexplore: unknown workload %q\n", *workload)
			os.Exit(2)
		}
	case flag.NArg() == 1:
		var err error
		tr, err = dmmkit.LoadTrace(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: dmmexplore [-workload NAME | trace-file]")
		os.Exit(2)
	}

	fmt.Printf("exploring %d candidates against %q (%d events, live peak %d B)...\n\n",
		*candidates, tr.Name, len(tr.Events), tr.MaxLiveBytes())
	cands, err := dmmkit.Explore(tr, dmmkit.ExploreOpts{MaxCandidates: *candidates, IncludeDesigned: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmexplore: %v\n", err)
		os.Exit(1)
	}
	failed := 0
	var designed *dmmkit.Candidate
	for i := range cands {
		if cands[i].Err != nil {
			failed++
		}
		if cands[i].Designed {
			designed = &cands[i]
		}
	}
	front := dmmkit.ParetoFront(cands)
	fmt.Printf("evaluated %d candidates (%d failed); Pareto front (footprint vs work):\n\n", len(cands), failed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "footprint (B)\twork units\tdesigned?\tvector")
	for _, c := range front {
		mark := ""
		if c.Designed {
			mark = "<== methodology"
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\n", c.MaxFootprint, c.Work, mark, c.Vector)
	}
	tw.Flush()

	if designed != nil && designed.Err == nil {
		rank := 1
		for _, c := range cands {
			if c.Err == nil && !c.Designed && c.MaxFootprint < designed.MaxFootprint {
				rank++
			}
		}
		fmt.Printf("\nmethodology design: footprint %d B, work %d — rank %d/%d by footprint\n",
			designed.MaxFootprint, designed.Work, rank, len(cands)-failed)
		fmt.Printf("decision vector: %s\n", designed.Vector)
	}
}

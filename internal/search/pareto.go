package search

import "sort"

// Dominates reports whether a Pareto-dominates b over the two objectives
// (footprint, work): a is no worse than b in both and strictly better in
// at least one. A successful result dominates every failed one, and a
// failed result dominates nothing, so failed vectors can never push a
// measured point off a front.
func Dominates(a, b Result) bool {
	if a.Failed {
		return false
	}
	if b.Failed {
		return true
	}
	if a.Footprint > b.Footprint || a.Work > b.Work {
		return false
	}
	return a.Footprint < b.Footprint || a.Work < b.Work
}

// ParetoFront accumulates the non-dominated set of results over
// (footprint, work). The zero value is an empty front.
//
// The front is deterministic in the order results are added: a result
// enters only if no member dominates it or occupies the same objective
// point (first-seen wins among objective ties), and entering evicts every
// member it dominates. Feeding the same result sequence therefore always
// yields the same front — which is why the engine feeds it from the
// in-order candidate stream rather than from completion order.
type ParetoFront struct {
	// members are kept sorted by ascending footprint; since no member
	// dominates another, work is strictly descending along the slice.
	members []Result
}

// Add offers r to the front. It returns true when r entered (evicting any
// members it dominates) and false when r was dominated, duplicated an
// existing objective point, or had Failed set.
func (f *ParetoFront) Add(r Result) bool {
	if r.Failed {
		return false
	}
	// The insertion point by footprint: members[:i] have footprint < r's.
	i := sort.Search(len(f.members), func(k int) bool {
		return f.members[k].Footprint >= r.Footprint
	})
	// Members left of i have smaller footprint; the nearest one dominates
	// r unless r strictly improves on its work. A member at i with the
	// same footprint but less work dominates r too. Members from i
	// rightward are otherwise evicted while their work is >= r's.
	if i > 0 && f.members[i-1].Work <= r.Work {
		return false
	}
	if i < len(f.members) && f.members[i].Footprint == r.Footprint && f.members[i].Work < r.Work {
		return false
	}
	j := i
	for j < len(f.members) && f.members[j].Work >= r.Work {
		if f.members[j].Footprint == r.Footprint && f.members[j].Work == r.Work {
			return false // same objective point: first-seen wins
		}
		j++
	}
	f.members = append(f.members[:i], append([]Result{r}, f.members[j:]...)...)
	return true
}

// Len returns the number of points on the front.
func (f *ParetoFront) Len() int { return len(f.members) }

// Results returns a copy of the front sorted by ascending footprint
// (equivalently, descending work).
func (f *ParetoFront) Results() []Result {
	return append([]Result(nil), f.members...)
}

// Dominated reports whether r is dominated by (or duplicates the
// objective point of) a member of the front, i.e. whether Add would
// reject it. Failed results are always dominated.
func (f *ParetoFront) Dominated(r Result) bool {
	if r.Failed {
		return true
	}
	for _, m := range f.members {
		if Dominates(m, r) || (m.Footprint == r.Footprint && m.Work == r.Work) {
			return true
		}
	}
	return false
}

// FrontOf returns the Pareto front of results, offered in slice order
// (first-seen wins among objective ties), sorted by ascending footprint.
func FrontOf(results []Result) []Result {
	var f ParetoFront
	for _, r := range results {
		f.Add(r)
	}
	return f.Results()
}

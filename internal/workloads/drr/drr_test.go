package drr

import (
	"context"
	"testing"

	"dmmkit/internal/heap"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"

	"dmmkit/internal/alloc/kingsley"
	"dmmkit/internal/alloc/lea"
)

func TestTraceValidAndBalanced(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.LiveAtEnd() != 0 {
		t.Errorf("LiveAtEnd = %d, want 0 (all packets forwarded)", tr.LiveAtEnd())
	}
	if res.Forwarded != res.Packets {
		t.Errorf("forwarded %d of %d packets", res.Forwarded, res.Packets)
	}
	if len(tr.Events) < 10000 {
		t.Errorf("only %d events; trace too small to be interesting", len(tr.Events))
	}
}

func TestQueueBuildupIsSubstantial(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	peak := res.Trace.MaxLiveBytes()
	// The paper's DRR custom manager peaks at ~148 KB; the synthetic
	// traffic should produce backlogs in the same regime.
	if peak < 40<<10 {
		t.Errorf("peak live bytes = %d, want bursty backlog of at least 40 KiB", peak)
	}
	if peak > 1<<20 {
		t.Errorf("peak live bytes = %d, unrealistically large", peak)
	}
}

func TestProfileShowsVariableSizes(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.FromTrace(res.Trace)
	if p.DistinctSizes < 20 {
		t.Errorf("DistinctSizes = %d, want many (variable packet sizes)", p.DistinctSizes)
	}
	if p.SizeCV < 0.3 {
		t.Errorf("SizeCV = %.2f, want high variability", p.SizeCV)
	}
	if p.TagMax[TagFlow] != 96 {
		t.Errorf("flow tag max = %d, want 96", p.TagMax[TagFlow])
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := BuildTrace(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTrace(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Events) != len(b.Trace.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Trace.Events), len(b.Trace.Events))
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestReplaysOnRealManagers(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	k := kingsley.New(heap.New(heap.Config{}))
	rk, err := trace.Run(context.Background(), k, res.Trace, trace.RunOpts{})
	if err != nil {
		t.Fatalf("kingsley replay: %v", err)
	}
	l := lea.New(heap.New(heap.Config{}), lea.Config{})
	rl, err := trace.Run(context.Background(), l, res.Trace, trace.RunOpts{})
	if err != nil {
		t.Fatalf("lea replay: %v", err)
	}
	// The paper's headline DRR shape: Lea's footprint is far below
	// Kingsley's on this workload.
	if rl.MaxFootprint >= rk.MaxFootprint {
		t.Errorf("Lea footprint %d >= Kingsley %d; expected Kingsley to waste much more", rl.MaxFootprint, rk.MaxFootprint)
	}
}

func TestDrainFactorControlsBacklog(t *testing.T) {
	slow, err := BuildTrace(Config{Seed: 5, DrainFactor: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := BuildTrace(Config{Seed: 5, DrainFactor: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if fast.PeakQueued >= slow.PeakQueued {
		t.Errorf("faster drain should reduce backlog: fast=%d slow=%d", fast.PeakQueued, slow.PeakQueued)
	}
}

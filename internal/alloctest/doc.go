// Package alloctest provides a conformance and property-test harness that
// every dynamic memory manager in this repository must pass. It checks the
// allocator contract (correct payloads, no overlap, error behaviour) and
// the accounting invariants the experiments rely on (footprint vs. live
// bytes, stats consistency).
package alloctest

package mm

import (
	"errors"

	"dmmkit/internal/heap"
)

// Common manager errors.
var (
	// ErrOutOfMemory mirrors heap.ErrOutOfMemory for callers that only
	// import mm.
	ErrOutOfMemory = heap.ErrOutOfMemory
	// ErrBadFree is returned when freeing an address the manager does not
	// recognize as a live block.
	ErrBadFree = errors.New("mm: free of unknown or dead block")
	// ErrBadSize is returned for non-positive allocation sizes.
	ErrBadSize = errors.New("mm: allocation size must be positive")
)

// Request describes one allocation. Size is the number of payload bytes the
// application needs. Tag identifies the allocation site or data type (used
// by region managers and profiling); Phase is the behavioural phase the
// application is in (used by global managers, Sec. 3.3 of the paper).
type Request struct {
	Size  int64
	Tag   int
	Phase int
}

// Manager is a dynamic memory manager operating on a simulated heap.
// Implementations are single-threaded, as on the paper's embedded targets.
type Manager interface {
	// Alloc returns the payload address of a block of at least req.Size
	// bytes.
	Alloc(req Request) (heap.Addr, error)
	// Free releases the block whose payload address is addr.
	Free(addr heap.Addr) error
	// Footprint returns the bytes currently requested from the system.
	Footprint() int64
	// MaxFootprint returns the high-water mark of Footprint: the paper's
	// figure of merit.
	MaxFootprint() int64
	// Stats returns cumulative counters.
	Stats() Stats
	// Name identifies the manager in tables and logs.
	Name() string
}

// Resetter is implemented by managers that can return to their initial
// state without reconstruction.
type Resetter interface{ Reset() }

// Cloner is implemented by managers that can deep-copy their complete
// state — simulated heap, in-band block structures, and out-of-band
// bookkeeping — so replay can snapshot a manager at a trace boundary
// and later continue from the copy. The clone and the original must
// evolve independently: replaying the same suffix against either yields
// bit-identical results, and neither observes the other's mutations.
// Read-only configuration (a sizing policy, a parameter table) may be
// shared. CloneManager returns an error when a composite manager holds
// a child that cannot be cloned.
type Cloner interface {
	CloneManager() (Manager, error)
}

// Checksummer is implemented by managers that can digest their full
// simulated-heap state into one value. Two managers that evolved
// through the same event sequence from the same start state must agree;
// sharded replay uses it to verify that a shard lands exactly on the
// next shard's snapshot.
type Checksummer interface {
	StateChecksum() uint64
}

// Stats holds cumulative manager counters. LiveBytes/LiveBlocks describe
// requested payload bytes currently held by the application; gross bytes
// (including headers and rounding) are visible through Footprint.
type Stats struct {
	Allocs     int64 // successful allocations
	Frees      int64 // successful frees
	FailedOps  int64 // allocations or frees that returned an error
	LiveBytes  int64 // requested payload bytes currently live
	LiveBlocks int64 // blocks currently live
	MaxLive    int64 // high-water mark of LiveBytes
	GrossLive  int64 // block bytes (payload+overhead) currently live
	Splits     int64 // block splits performed
	Coalesces  int64 // block merges performed
	Work       Work  // accumulated work units (execution-time proxy)
}

// InternalFrag returns the fraction of live gross bytes lost to headers and
// size rounding, in [0,1). It is 0 when nothing is live.
func (s Stats) InternalFrag() float64 {
	if s.GrossLive <= 0 {
		return 0
	}
	return 1 - float64(s.LiveBytes)/float64(s.GrossLive)
}

// Work is an architecture-neutral execution-time proxy, accumulated in
// abstract work units. The weights approximate the relative cost of
// allocator operations on an embedded core with single-cycle word access:
// following a pointer or examining a header costs about one memory access;
// splitting/coalescing rewrites several header/footer/link words; an sbrk
// is a system call.
type Work int64

// Cost weights for the Work model.
const (
	CostProbe    Work = 1  // examine one free block / follow one link
	CostIndex    Work = 1  // size-class or bin index computation
	CostUnlink   Work = 2  // remove a block from a free list
	CostLink     Work = 2  // insert a block into a free list
	CostHeader   Work = 1  // write one header/footer word
	CostSplit    Work = 6  // carve a block in two (headers + links)
	CostCoalesce Work = 6  // merge two blocks (headers + links)
	CostSbrk     Work = 40 // extend the break (system call)
	CostTrim     Work = 40 // shrink the break / unmap (system call)
)

// Accounting implements the bookkeeping half of Manager. Managers embed it
// and call the note* helpers; it is not safe for concurrent use.
type Accounting struct {
	stats Stats
}

// Stats returns the accumulated counters.
func (a *Accounting) Stats() Stats { return a.stats }

// ResetStats clears all counters.
func (a *Accounting) ResetStats() { a.stats = Stats{} }

// NoteAlloc records a successful allocation of req bytes occupying gross
// block bytes.
func (a *Accounting) NoteAlloc(req, gross int64) {
	a.stats.Allocs++
	a.stats.LiveBytes += req
	a.stats.LiveBlocks++
	a.stats.GrossLive += gross
	if a.stats.LiveBytes > a.stats.MaxLive {
		a.stats.MaxLive = a.stats.LiveBytes
	}
}

// NoteFree records a successful free of a block allocated for req bytes in
// gross block bytes.
func (a *Accounting) NoteFree(req, gross int64) {
	a.stats.Frees++
	a.stats.LiveBytes -= req
	a.stats.LiveBlocks--
	a.stats.GrossLive -= gross
}

// NoteFail records a failed operation.
func (a *Accounting) NoteFail() { a.stats.FailedOps++ }

// NoteSplit records a block split.
func (a *Accounting) NoteSplit() { a.stats.Splits++; a.stats.Work += CostSplit }

// NoteCoalesce records a block merge.
func (a *Accounting) NoteCoalesce() { a.stats.Coalesces++; a.stats.Work += CostCoalesce }

// Charge adds w work units.
func (a *Accounting) Charge(w Work) { a.stats.Work += w }

// ChargeN adds n repetitions of w work units.
func (a *Accounting) ChargeN(w Work, n int64) { a.stats.Work += Work(int64(w) * n) }

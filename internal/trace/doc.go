// Package trace defines allocation traces — the interface between the
// dynamic applications and the DM managers — together with binary/JSON
// codecs, a streaming event-source abstraction and a replay engine.
//
// The paper's methodology starts by profiling an application's dynamic
// memory behaviour; here workloads emit traces, profiles are computed from
// traces (internal/profile), and the same trace replays against every
// manager so comparisons are exact (the paper averages 10 input traces per
// case study; the experiment harness does the same with 10 seeds).
//
// # Streaming
//
// Every consumer of events goes through Source (Next, one event at a
// time) rather than a materialized []Event, so traces far larger than
// memory process out-of-core: replay (RunSource) and profiling keep
// memory proportional to the application's live set, not the trace
// length. Opener hands out independent passes — an in-memory *Trace, or
// a *File streaming a binary trace off disk per pass — which is what
// design-space exploration consumes, one pass per candidate. On the
// write side, EventSink is the dual: a Builder with a sink (NewBuilderTo)
// streams generated events out instead of accumulating them, and the
// DMMT2 Encoder is such a sink, so generation pipes to disk in O(1)
// memory.
//
// # Binary formats
//
// Two on-disk formats share a header (magic, name) and are read back
// transparently by DecodeBinary and DecodeBinarySource. DMMT1 is the
// legacy format: an event count in the header and every field as an
// unsigned varint, so signed values round-trip only via two's-complement
// wraparound at ten bytes each. DMMT2 zigzag-encodes the signed fields
// (Tag, Phase, tick deltas), drops the up-front count — which is what
// makes it streamable — and ends with a marker plus trailing count that
// detects truncation. Both decoders reject fields that would silently
// wrap or truncate (IDs and sizes above MaxInt64, zero allocation sizes,
// out-of-range tags/phases).
package trace

// Package cliopts holds the strategy/objectives option handling shared
// by every front end of the exploration engine — the dmmexplore command
// line and dmmserve's HTTP job requests. Both surfaces accept the same
// option vocabulary (a strategy name, a comma-separated objective list,
// the numeric GA/NSGA parameters), and both must reject bad input with
// identical fast-fail messages, so the validation lives here once
// instead of drifting apart per call site.
package cliopts

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"dmmkit/internal/core"
	"dmmkit/internal/search"
)

// ValidStrategies lists the accepted strategy names, in help order.
var ValidStrategies = []string{"exhaustive", "ga", "nsga"}

// ResolveMode validates a strategy name and an objectives list together
// and returns the parsed objectives plus whether the run is
// multi-objective. It is cheap and performs no workload or trace work,
// so front ends call it before anything slow: a typo fails instantly
// with a usage error (exit 2 on the CLI, 400 over HTTP) instead of
// after seconds of trace generation.
//
// An empty objectives string means "the strategy's natural default":
// footprint alone for exhaustive and ga, footprint+work for nsga. The
// nsga strategy requires Pareto mode — it has no scalar fitness to
// optimize footprint alone.
func ResolveMode(strategy, objectives string) (objs []core.Objective, multi bool, err error) {
	if !slices.Contains(ValidStrategies, strategy) {
		return nil, false, fmt.Errorf("unknown strategy %q (valid: %s)", strategy, strings.Join(ValidStrategies, ", "))
	}
	if objectives == "" && strategy == "nsga" {
		objectives = "footprint,work"
	}
	objs, err = core.ParseObjectives(objectives)
	if err != nil {
		return nil, false, fmt.Errorf("bad objectives: %w (valid: footprint or footprint,work)", err)
	}
	hasWork, hasFootprint := false, false
	for _, o := range objs {
		switch o {
		case core.ObjectiveWork:
			hasWork = true
		case core.ObjectiveFootprint:
			hasFootprint = true
		}
	}
	if hasWork && !hasFootprint {
		return nil, false, fmt.Errorf("bad objectives %q: work alone is not supported (valid: footprint or footprint,work)", objectives)
	}
	if strategy == "nsga" && !hasWork {
		return nil, false, fmt.Errorf("strategy nsga is multi-objective; use objectives footprint,work")
	}
	return objs, hasWork, nil
}

// SearchConfig carries the numeric search parameters shared by the CLI
// flags and the server's job requests. Budget is the evaluation cap:
// the stride-sample size for exhaustive, MaxEvaluations for ga/nsga.
type SearchConfig struct {
	Seed        int64
	Population  int
	Generations int
	Budget      int
}

// NewStrategy builds a fresh instance of the named search strategy,
// parameterized exactly as the dmmexplore flags would parameterize it —
// the server constructs jobs through the same path, which is what keeps
// a server-run exploration byte-identical to the equivalent CLI run.
// Strategies carry state: build a new one per exploration.
func NewStrategy(name string, cfg SearchConfig) (search.Strategy, error) {
	switch name {
	case "exhaustive":
		return search.NewExhaustive(cfg.Budget), nil
	case "ga":
		return search.NewGA(cfg.Seed, search.GAConfig{
			Population:     cfg.Population,
			Generations:    cfg.Generations,
			MaxEvaluations: cfg.Budget,
		}), nil
	case "nsga":
		return search.NewNSGA(cfg.Seed, search.GAConfig{
			Population:     cfg.Population,
			Generations:    cfg.Generations,
			MaxEvaluations: cfg.Budget,
		}), nil
	}
	return nil, fmt.Errorf("unknown strategy %q (valid: %s)", name, strings.Join(ValidStrategies, ", "))
}

// ObjectivesKey canonicalizes an objective list for checkpoint metadata
// (sorted, so "work,footprint" and "footprint,work" resume each other).
func ObjectivesKey(objs []core.Objective) string {
	if len(objs) == 0 {
		return "footprint"
	}
	names := make([]string, len(objs))
	for i, o := range objs {
		names[i] = o.String()
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

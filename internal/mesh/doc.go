// Package mesh implements scalable (progressive) triangle meshes in the
// style of Hoppe's progressive meshes / the "Level of Detail for 3D
// Graphics" techniques the paper's third case study builds on: a coarse
// base mesh plus an ordered sequence of vertex-split refinements. A
// renderer picks the level of detail (LOD) per object from the viewer
// distance and materializes or releases refinement records dynamically —
// the DM behaviour of the 3D scalable rendering application.
package mesh

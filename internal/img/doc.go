// Package img provides synthetic grayscale images and a corner detector
// for the 3D-reconstruction workload. The paper's second case study
// processes 640x480 video frames whose feature counts are unpredictable at
// compile time; this package generates procedural frames with a
// seed-controlled amount of texture so the detected corner population
// varies the same way.
package img

package dmmkit_test

import (
	"context"
	"fmt"

	"dmmkit"
)

// ExampleDesign shows the methodology on a synthetic profile: record a
// trace, profile it, walk the decision trees, build the manager.
func ExampleDesign() {
	b := dmmkit.NewTraceBuilder("example")
	var ids []int64
	for i := 0; i < 100; i++ {
		ids = append(ids, b.Alloc(int64(100+(i%7)*200), 0))
		if len(ids) > 8 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	for _, id := range ids {
		b.Free(id)
	}
	tr := b.Build()

	design := dmmkit.Design(dmmkit.Profile(tr))
	fmt.Println("A2:", dmmkit.LeafName(dmmkit.TreeBlockSizes, design.Vector.BlockSizes))
	fmt.Println("A5:", dmmkit.LeafName(dmmkit.TreeFlexBlockSize, design.Vector.Flex))
	fmt.Println("C1:", dmmkit.LeafName(dmmkit.TreeFit, design.Vector.Fit))

	mgr, err := design.Build(dmmkit.NewHeap())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := dmmkit.Replay(context.Background(), mgr, tr, dmmkit.ReplayOpts{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("footprint covers live bytes:", res.MaxFootprint >= res.MaxLive)
	// Output:
	// A2: many-variable
	// A5: split+coalesce
	// C1: exact
	// footprint covers live bytes: true
}

// ExampleValidateVector demonstrates the interdependency constraints of
// the design space (the paper's Figure 3 example).
func ExampleValidateVector() {
	var v dmmkit.Vector
	v.Set(dmmkit.TreeBlockTags, dmmkit.NoTags)
	v.Set(dmmkit.TreeRecordedInfo, dmmkit.RecordSize)
	err := dmmkit.ValidateVector(v)
	fmt.Println(err != nil)
	// Output:
	// true
}

// ExampleNewCustom builds a manager directly from a hand-written decision
// vector (a Kingsley-like point of the space).
func ExampleNewCustom() {
	var v dmmkit.Vector
	v.Set(dmmkit.TreeBlockStructure, dmmkit.SinglyLinked)
	v.Set(dmmkit.TreeBlockSizes, dmmkit.ManyFixedSizes)
	v.Set(dmmkit.TreeBlockTags, dmmkit.HeaderTag)
	v.Set(dmmkit.TreeRecordedInfo, dmmkit.RecordSize)
	v.Set(dmmkit.TreeFlexBlockSize, dmmkit.NoFlex)
	v.Set(dmmkit.TreePoolDivision, dmmkit.PoolPerClass)
	v.Set(dmmkit.TreePoolRange, dmmkit.Pow2Classes)
	v.Set(dmmkit.TreeFit, dmmkit.FirstFit)
	v.Set(dmmkit.TreeCoalesceWhen, dmmkit.Never)
	v.Set(dmmkit.TreeSplitWhen, dmmkit.Never)
	v.Set(dmmkit.TreeMaxBlockSizes, dmmkit.OneResultSize)
	v.Set(dmmkit.TreeMinBlockSizes, dmmkit.OneResultSize)

	m, err := dmmkit.NewCustom(dmmkit.NewHeap(), v, dmmkit.Params{})
	if err != nil {
		fmt.Println("invalid:", err)
		return
	}
	p, _ := m.Alloc(dmmkit.Request{Size: 1500})
	fmt.Println("gross block size:", m.Stats().GrossLive) // pow2 class
	_ = m.Free(p)
	// Output:
	// gross block size: 2048
}

// ExampleRegisterManager adds a new manager family and a new workload to
// the registry, then uses them through the same lookups every CLI and
// experiment driver uses. The manager here is a custom design-space point
// (an exact-fit single-pool manager); a from-scratch implementation of
// dmmkit.Manager works the same way.
func ExampleRegisterManager() {
	// A hand-written decision vector: single pool, exact fit, full
	// split+coalesce support.
	var v dmmkit.Vector
	v.Set(dmmkit.TreeBlockStructure, dmmkit.DoublyLinked)
	v.Set(dmmkit.TreeBlockSizes, dmmkit.ManyVarSizes)
	v.Set(dmmkit.TreeBlockTags, dmmkit.HeaderTag)
	v.Set(dmmkit.TreeRecordedInfo, dmmkit.RecordSizeStatusPrev)
	v.Set(dmmkit.TreeFlexBlockSize, dmmkit.SplitCoalesce)
	v.Set(dmmkit.TreePoolDivision, dmmkit.SinglePool)
	v.Set(dmmkit.TreePoolRange, dmmkit.AnyRange)
	v.Set(dmmkit.TreeFit, dmmkit.ExactFit)
	v.Set(dmmkit.TreeCoalesceWhen, dmmkit.Always)
	v.Set(dmmkit.TreeSplitWhen, dmmkit.Always)
	v.Set(dmmkit.TreeMaxBlockSizes, dmmkit.ManyNotFixed)
	v.Set(dmmkit.TreeMinBlockSizes, dmmkit.ManyNotFixed)

	dmmkit.RegisterManager("exactfit", func(h *dmmkit.Heap, p *dmmkit.AppProfile) (dmmkit.Manager, error) {
		return dmmkit.NewCustom(h, v, dmmkit.Params{})
	})
	dmmkit.RegisterWorkload("pings", func(o dmmkit.WorkloadOpts) (*dmmkit.Trace, error) {
		b := dmmkit.NewTraceBuilder("pings")
		for i := 0; i < 64; i++ {
			id := b.Alloc(64+int64(o.Seed)+int64(i%3)*512, 0)
			b.Free(id)
		}
		return b.Build(), nil
	})

	tr, err := dmmkit.BuildWorkload("pings", dmmkit.WorkloadOpts{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m, err := dmmkit.NewManagerByName("exactfit", nil, dmmkit.Profile(tr))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := dmmkit.Replay(context.Background(), m, tr, dmmkit.ReplayOpts{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("replayed events:", res.Events)
	fmt.Println("footprint covers live bytes:", res.MaxFootprint >= res.MaxLive)
	// Output:
	// replayed events: 128
	// footprint covers live bytes: true
}

// ExampleNewGASearch explores the design space with the seeded genetic
// strategy and demonstrates the reproducibility contract: the same seed
// gives the same best vector at any parallelism.
func ExampleNewGASearch() {
	b := dmmkit.NewTraceBuilder("ga-example")
	var ids []int64
	for i := 0; i < 200; i++ {
		ids = append(ids, b.Alloc(int64(32+(i%5)*144), 0))
		if len(ids) > 6 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	for _, id := range ids {
		b.Free(id)
	}
	tr := b.Build()

	best := func(parallelism int) dmmkit.Candidate {
		cands, err := dmmkit.Explore(context.Background(), tr, dmmkit.ExploreOpts{
			Strategy: dmmkit.NewGASearch(9, dmmkit.GASearchConfig{
				Population: 8, Generations: 4,
			}),
			Parallelism: parallelism,
		})
		if err != nil {
			panic(err)
		}
		c, _ := dmmkit.BestByFootprint(cands)
		return c
	}
	sequential, parallel := best(1), best(8)
	fmt.Println("same best vector at P=1 and P=8:", sequential.Vector == parallel.Vector)
	fmt.Println("same footprint:", sequential.MaxFootprint == parallel.MaxFootprint)
	// Output:
	// same best vector at P=1 and P=8: true
	// same footprint: true
}

// ExampleNewNSGASearch explores the design space multi-objectively: the
// NSGA-II strategy searches for the whole footprint×work Pareto front,
// the engine streams front updates in deterministic order, and the final
// front is ParetoFront of the returned candidates.
func ExampleNewNSGASearch() {
	b := dmmkit.NewTraceBuilder("nsga-example")
	var ids []int64
	for i := 0; i < 200; i++ {
		ids = append(ids, b.Alloc(int64(32+(i%5)*144), 0))
		if len(ids) > 6 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	for _, id := range ids {
		b.Free(id)
	}
	tr := b.Build()

	updates := 0
	cands, err := dmmkit.Explore(context.Background(), tr, dmmkit.ExploreOpts{
		Strategy: dmmkit.NewNSGASearch(9, dmmkit.GASearchConfig{
			Population: 8, Generations: 4,
		}),
		Objectives: []dmmkit.Objective{dmmkit.ObjectiveFootprint, dmmkit.ObjectiveWork},
		OnFront:    func([]dmmkit.Candidate) { updates++ },
	})
	if err != nil {
		panic(err)
	}
	front := dmmkit.ParetoFront(cands)
	fmt.Println("front is non-empty:", len(front) > 0)
	fmt.Println("front updates streamed:", updates > 0)
	sorted := true
	for i := 1; i < len(front); i++ {
		if front[i].MaxFootprint <= front[i-1].MaxFootprint || front[i].Work >= front[i-1].Work {
			sorted = false
		}
	}
	fmt.Println("front trades footprint against work:", sorted)
	// Output:
	// front is non-empty: true
	// front updates streamed: true
	// front trades footprint against work: true
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// allowed reports whether the line holding pos (or the line above it)
// carries a suppression comment for the named analyzer:
//
//	//dmmlint:allow lockspan — send to self-owned buffered channel
//
// The text after the analyzer name is the mandatory one-line rationale;
// a bare `//dmmlint:allow lockspan` with nothing after it does NOT
// suppress, so every suppression in the tree explains itself. Wave-1
// analyzers keep their own bless idioms (`_ = x.Close()`,
// collect-then-sort); the wave-2 analyzers (lockspan, errwrap, apitag)
// use this shared escape hatch for the rare real-code pattern the
// analyzer cannot prove safe.
func allowed(pass *analysis.Pass, pos token.Pos, name string) bool {
	tf := pass.Fset.File(pos)
	if tf == nil {
		return false
	}
	line := tf.Line(pos)
	var file *ast.File
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) == tf {
			file = f
			break
		}
	}
	if file == nil {
		return false
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			cl := tf.Line(c.Pos())
			if cl != line && cl != line-1 {
				continue
			}
			rest, ok := strings.CutPrefix(c.Text, "//dmmlint:allow ")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			// Name match plus a non-empty rationale after it.
			if len(fields) >= 2 && fields[0] == name {
				return true
			}
		}
	}
	return false
}

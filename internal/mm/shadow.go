package mm

import "dmmkit/internal/heap"

// Shadow is debug/measurement bookkeeping mapping live payload addresses to
// their requested sizes. Real embedded allocators keep no such table; it
// exists so managers can report accurate LiveBytes statistics and reject
// bad frees deterministically. It lives outside the simulated arena and is
// deliberately NOT counted in any footprint figure.
type Shadow struct {
	m map[heap.Addr]int64
}

// Add records a live payload address with its requested size.
func (s *Shadow) Add(p heap.Addr, req int64) {
	if s.m == nil {
		s.m = make(map[heap.Addr]int64)
	}
	s.m[p] = req
}

// Remove forgets a payload address, returning its requested size. ok is
// false when p is not live (bad or double free).
func (s *Shadow) Remove(p heap.Addr) (req int64, ok bool) {
	req, ok = s.m[p]
	if ok {
		delete(s.m, p)
	}
	return req, ok
}

// Contains reports whether p is live.
func (s *Shadow) Contains(p heap.Addr) bool { _, ok := s.m[p]; return ok }

// Len returns the number of live blocks.
func (s *Shadow) Len() int { return len(s.m) }

// Reset clears the shadow table.
func (s *Shadow) Reset() { s.m = nil }

package search

import (
	"sort"

	"dmmkit/internal/dspace"
)

// Repair maps an arbitrary genome onto the nearest valid decision vector.
// Crossover and mutation freely recombine leaves, so a child routinely
// violates the design-space interdependencies (a split schedule without a
// splitting mechanism, size classes without pool division, ...). Repair
// walks the trees in the paper's traversal order with constraint
// propagation, preferring at every tree the desired leaf and then the
// leaves closest to it, backtracking when a prefix admits no valid
// completion. The result is deterministic in (desired, fix): no randomness
// is consumed, which keeps GA runs reproducible.
//
// Pinned trees in fix always take their pinned leaf. ok is false only when
// the pinned subspace is empty.
func Repair(desired dspace.Vector, fix Fixed) (repaired dspace.Vector, ok bool) {
	var v dspace.Vector
	var d dspace.Decided
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == len(dspace.Order) {
			return dspace.Validate(&v) == nil
		}
		t := dspace.Order[i]
		want := desired.Get(t)
		if l, pinned := fix[t]; pinned {
			want = l
		}
		allowed := dspace.Allowed(t, v, d)
		// Try the desired leaf first, then by distance to it; ties by leaf
		// value so the order is total and deterministic.
		sort.SliceStable(allowed, func(a, b int) bool {
			da, db := dist(allowed[a], want), dist(allowed[b], want)
			if da != db {
				return da < db
			}
			return allowed[a] < allowed[b]
		})
		for _, l := range allowed {
			if fl, pinned := fix[t]; pinned && l != fl {
				continue
			}
			v.Set(t, l)
			d[t] = true
			if walk(i + 1) {
				return true
			}
			d[t] = false
		}
		return false
	}
	if walk(0) {
		return v, true
	}
	return dspace.Vector{}, false
}

func dist(a, b dspace.Leaf) int {
	if a < b {
		return int(b - a)
	}
	return int(a - b)
}

package region

import (
	"dmmkit/internal/block"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// header layout: word0 = gross size, word1 = region id (oversize blocks
// use region id ^owned bit). Eight bytes total.
const (
	hdrBytes    = 8
	oversizeBit = 1 << 31
)

// chunkBytes caps how much a region requests from the system at once;
// small block sizes are carved from chunks of this size, large blocks are
// requested one at a time.
const chunkBytes = 16 << 10

var layout = block.Layout{Tags: block.TagsHeader, Info: block.InfoSize | block.InfoPrevSize, Links: block.LinksSingle}

// Sizer chooses the fixed block size for a region given its tag and the
// first request seen. A manually designed region manager sizes each region
// for its worst-case request; the experiment harness derives that from the
// application profile.
type Sizer func(tag int, firstReq int64) int64

// DefaultSizer rounds the first request of a region up to the next power
// of two — a common rule of thumb when no profile is available.
func DefaultSizer(_ int, firstReq int64) int64 {
	s := int64(8)
	for s < firstReq {
		s <<= 1
	}
	return s
}

type regionState struct {
	blockSize int64     // fixed payload capacity per block
	free      heap.Addr // singly linked free list
}

// Manager is a region/partition allocator over a simulated heap.
type Manager struct {
	mm.Accounting
	h       *heap.Heap
	v       block.View
	sizer   Sizer
	regions map[int]*regionState
	live    mm.Shadow
}

// New returns a region manager owning h. If sizer is nil, DefaultSizer is
// used.
func New(h *heap.Heap, sizer Sizer) *Manager {
	if sizer == nil {
		sizer = DefaultSizer
	}
	return &Manager{
		h:       h,
		v:       block.NewView(h, layout),
		sizer:   sizer,
		regions: make(map[int]*regionState),
	}
}

// Name implements mm.Manager.
func (*Manager) Name() string { return "Regions" }

// Heap exposes the simulated heap for tests and diagnostics.
func (m *Manager) Heap() *heap.Heap { return m.h }

func (m *Manager) gross(payload int64) int64 {
	g := payload + hdrBytes
	if g < hdrBytes+8 {
		g = hdrBytes + 8
	}
	return (g + heap.Align - 1) &^ (heap.Align - 1)
}

// Alloc implements mm.Manager.
func (m *Manager) Alloc(req mm.Request) (heap.Addr, error) {
	if req.Size <= 0 {
		m.NoteFail()
		return heap.Nil, mm.ErrBadSize
	}
	r := m.regions[req.Tag]
	if r == nil {
		r = &regionState{blockSize: m.sizer(req.Tag, req.Size)}
		if r.blockSize < req.Size {
			r.blockSize = req.Size
		}
		m.regions[req.Tag] = r
	}
	m.Charge(mm.CostIndex)
	if req.Size > r.blockSize {
		// The region was sized too small for this request: hand out a
		// dedicated oversize block, as an embedded designer would
		// special-case. It bypasses the region free list.
		return m.allocOversize(req)
	}
	gross := m.gross(r.blockSize)
	b := r.free
	if b == heap.Nil {
		n := chunkBytes / gross
		if n < 1 {
			n = 1
		}
		start, err := m.h.Sbrk(gross * n)
		if err != nil {
			m.NoteFail()
			return heap.Nil, err
		}
		m.Charge(mm.CostSbrk)
		for i := n - 1; i >= 0; i-- {
			nb := start + heap.Addr(i*gross)
			m.v.SetHeader(nb, gross, false, false)
			m.h.PutU32(nb+4, uint32(req.Tag))
			m.v.SetNextFree(nb, r.free)
			r.free = nb
			m.Charge(mm.CostLink)
		}
		b = r.free
	}
	r.free = m.v.NextFree(b)
	m.Charge(mm.CostProbe + mm.CostUnlink)
	p := m.v.Payload(b)
	m.live.Add(p, req.Size)
	m.NoteAlloc(req.Size, gross)
	return p, nil
}

func (m *Manager) allocOversize(req mm.Request) (heap.Addr, error) {
	gross := m.gross(req.Size)
	b, err := m.h.Sbrk(gross)
	if err != nil {
		m.NoteFail()
		return heap.Nil, err
	}
	m.Charge(mm.CostSbrk)
	m.v.SetHeader(b, gross, false, false)
	m.h.PutU32(b+4, uint32(req.Tag)|oversizeBit)
	p := m.v.Payload(b)
	m.live.Add(p, req.Size)
	m.NoteAlloc(req.Size, gross)
	return p, nil
}

// Free implements mm.Manager.
func (m *Manager) Free(p heap.Addr) error {
	req, ok := m.live.Remove(p)
	if !ok {
		m.NoteFail()
		return mm.ErrBadFree
	}
	b := m.v.Block(p)
	gross := m.v.Size(b)
	word1 := m.h.U32(b + 4)
	if word1&oversizeBit != 0 {
		// Oversize blocks are simply abandoned (their memory is not
		// reusable by the fixed-size lists); a real design would avoid
		// creating them. They still count as freed for the stats.
		m.NoteFree(req, gross)
		return nil
	}
	r := m.regions[int(word1)]
	if r == nil {
		m.NoteFail()
		return mm.ErrBadFree
	}
	m.v.SetNextFree(b, r.free)
	r.free = b
	m.Charge(mm.CostIndex + mm.CostLink)
	m.NoteFree(req, gross)
	return nil
}

// Footprint implements mm.Manager.
func (m *Manager) Footprint() int64 { return m.h.Footprint() }

// MaxFootprint implements mm.Manager.
func (m *Manager) MaxFootprint() int64 { return m.h.MaxFootprint() }

// Reset restores the manager and its heap to the initial state.
func (m *Manager) Reset() {
	m.h.Reset()
	m.regions = make(map[int]*regionState)
	m.live.Reset()
	m.ResetStats()
}

// RegionBlockSize reports the fixed block size of the region for tag, or 0
// if the region does not exist yet.
func (m *Manager) RegionBlockSize(tag int) int64 {
	if r := m.regions[tag]; r != nil {
		return r.blockSize
	}
	return 0
}

// Clone returns a deep copy of the manager over a clone of its heap:
// the copy and the original replay independently. The per-tag region
// states are copied; the Sizer is shared, which is safe because sizing
// policies are pure functions of their arguments (ProfileSizer closes
// over a profile it only reads).
func (m *Manager) Clone() *Manager {
	n := *m
	n.h = m.h.Clone()
	n.v.H = n.h
	if m.regions != nil {
		n.regions = make(map[int]*regionState, len(m.regions))
		for k, r := range m.regions {
			cr := *r
			n.regions[k] = &cr
		}
	}
	n.live = m.live.Clone()
	return &n
}

// CloneManager implements mm.Cloner.
func (m *Manager) CloneManager() (mm.Manager, error) { return m.Clone(), nil }

// StateChecksum implements mm.Checksummer by digesting the simulated
// heap, where all in-band allocator state lives.
func (m *Manager) StateChecksum() uint64 { return m.h.Checksum() }

var (
	_ mm.Manager     = (*Manager)(nil)
	_ mm.Cloner      = (*Manager)(nil)
	_ mm.Checksummer = (*Manager)(nil)
)

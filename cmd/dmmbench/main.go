// Command dmmbench regenerates the tables and figures of the paper's
// evaluation (Sec. 5): the maximum-memory-footprint comparison (Table 1),
// the DRR footprint-over-time curves (Figure 5), the execution-time
// overhead claim, the decision-order ablation (Figure 4) and the
// static-vs-dynamic sizing motivation.
//
// Independent cells (workload×seed) run concurrently on -parallel workers;
// results are identical at every parallelism level. Ctrl-C cancels the run.
//
// Usage:
//
//	dmmbench -exp table1            # Table 1 (default 10 seeds, as the paper)
//	dmmbench -exp table1 -parallel 8
//	dmmbench -exp figure5 -csv out.csv
//	dmmbench -exp perf
//	dmmbench -exp order
//	dmmbench -exp static
//	dmmbench -exp evo               # fig-evo: GA vs exhaustive search
//	dmmbench -exp pareto            # fig-pareto: NSGA front vs exhaustive subspace front
//	dmmbench -exp stream            # out-of-core streaming replay measurement
//	dmmbench -exp shard             # phase-sharded parallel replay measurement
//	dmmbench -exp all -seeds 10
//	dmmbench -exp bench -json BENCH_table1.json   # machine-readable perf baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dmmkit/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, figure5, perf, order, static, evo, pareto, fits, stream, shard, bench, all")
		seeds    = flag.Int("seeds", 10, "traces per case study (the paper averages 10)")
		quick    = flag.Bool("quick", false, "smaller workloads (for smoke runs)")
		parallel = flag.Int("parallel", 0, "concurrent cells (0 = GOMAXPROCS, 1 = sequential)")
		csv      = flag.String("csv", "", "write Figure 5 series to this CSV file")
		seed     = flag.Int64("seed", 1, "seed for single-trace experiments (figure5)")
		jsonPath = flag.String("json", "BENCH_table1.json", "output file for -exp bench")
	)
	flag.Parse()
	cfg := experiments.Config{Seeds: *seeds, Quick: *quick, Parallelism: *parallel}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	run := func(name string, fn func() error) {
		if *exp != name && *exp != "all" {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "dmmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		t1, err := experiments.RunTable1(ctx, cfg)
		if err != nil {
			return err
		}
		return experiments.WriteTable1(os.Stdout, t1)
	})
	run("figure5", func() error {
		f5, err := experiments.RunFigure5(ctx, cfg, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("DRR footprint over time (%s, %d events):\n\n", f5.TraceName, f5.Events)
		fmt.Println(f5.Chart(86, 18))
		if *csv != "" {
			f, err := os.Create(*csv)
			if err != nil {
				return err
			}
			if err := f5.WriteCSV(f); err != nil {
				_ = f.Close() // the write error is the one worth reporting
				return err
			}
			if err := f.Close(); err != nil {
				return err // buffered CSV rows may be lost
			}
			fmt.Printf("series written to %s\n", *csv)
		}
		return nil
	})
	run("perf", func() error {
		prs, err := experiments.RunPerf(ctx, cfg)
		if err != nil {
			return err
		}
		return experiments.WritePerf(os.Stdout, prs)
	})
	run("order", func() error {
		or, err := experiments.RunOrderAblation(ctx, cfg)
		if err != nil {
			return err
		}
		return experiments.WriteOrder(os.Stdout, or)
	})
	run("static", func() error {
		st, err := experiments.RunStaticVsDynamic(ctx, cfg)
		if err != nil {
			return err
		}
		return experiments.WriteStatic(os.Stdout, st)
	})
	run("evo", func() error {
		er, err := experiments.RunEvo(ctx, cfg, *seed)
		if err != nil {
			return err
		}
		return experiments.WriteEvo(os.Stdout, er)
	})
	run("pareto", func() error {
		pr, err := experiments.RunPareto(ctx, cfg, *seed)
		if err != nil {
			return err
		}
		return experiments.WritePareto(os.Stdout, pr)
	})
	run("fits", func() error {
		frs, err := experiments.RunFitAblation(ctx, cfg)
		if err != nil {
			return err
		}
		return experiments.WriteFits(os.Stdout, frs)
	})
	// The stream experiment generates a ~1M-event trace (full mode), so
	// like bench it only runs when asked for by name.
	if *exp == "stream" {
		fmt.Println("== stream ==")
		sr, err := experiments.RunStream(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmbench: stream: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteStream(os.Stdout, sr); err != nil {
			fmt.Fprintf(os.Stderr, "dmmbench: stream: %v\n", err)
			os.Exit(1)
		}
	}
	// The shard experiment replays the same netsim-scale trace, so it too
	// only runs when asked for by name.
	if *exp == "shard" {
		fmt.Println("== shard ==")
		sr, err := experiments.RunShard(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmbench: shard: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteShard(os.Stdout, sr); err != nil {
			fmt.Fprintf(os.Stderr, "dmmbench: shard: %v\n", err)
			os.Exit(1)
		}
	}
	// The bench experiment writes a file, so it only runs when asked for
	// by name — never as part of -exp all.
	if *exp == "bench" {
		fmt.Println("== bench ==")
		rep, err := experiments.RunBenchTable(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmbench: bench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmmbench: bench: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteBenchJSON(f); err != nil {
			_ = f.Close()
			fmt.Fprintf(os.Stderr, "dmmbench: bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dmmbench: bench: closing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("benchmark baseline written to %s (%d rows)\n", *jsonPath, len(rep.Rows))
	}
}

// Package maporderfix exercises the maporder analyzer: map iteration
// feeding ordered consumers is a violation; collect-then-sort and
// per-iteration state are blessed.
package maporderfix

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// Event is a stand-in for the trace event record.
type Event struct{ ID int64 }

// EventSink mirrors the trace package's ordered event consumer.
type EventSink interface {
	Begin(name string) error
	WriteEvent(e Event) error
}

// AppendUnsorted leaks map order into the returned slice.
func AppendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appends out in map-iteration order and never sorts it`
	}
	return out
}

// AppendSorted is the blessed collect-then-sort pattern.
func AppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FieldAppendSorted blesses the same pattern through a struct field.
type holder struct{ order []int }

func FieldAppendSorted(m map[int]bool) holder {
	var h holder
	for k := range m {
		h.order = append(h.order, k)
	}
	sort.Ints(h.order)
	return h
}

// SendOnChannel leaks map order into a channel.
func SendOnChannel(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `sends on a channel inside .for range. over a map`
	}
}

// WriteToSink leaks map order into an EventSink.
func WriteToSink(m map[int64]Event, sink EventSink) error {
	for _, e := range m {
		if err := sink.WriteEvent(e); err != nil { // want `writes through WriteEvent in map-iteration order`
			return err
		}
	}
	return nil
}

// WriteToWriter leaks map order into an io.Writer.
func WriteToWriter(m map[string]int, w io.Writer) {
	for k := range m {
		w.Write([]byte(k)) // want `writes through Write in map-iteration order`
	}
}

// FprintfWriter leaks map order through fmt.
func FprintfWriter(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `writes via fmt\.Fprintf in map-iteration order`
	}
}

// Callback invokes a fixed callback per entry: the callback observes
// map order.
func Callback(m map[string]int, fn func(string)) {
	for k := range m {
		fn(k) // want `invokes callback fn in map-iteration order`
	}
}

// PerIterationBuffer is blessed: the destination is declared inside the
// loop body, so nothing ordered escapes an iteration.
func PerIterationBuffer(m map[string]int) int {
	total := 0
	for k := range m {
		var buf bytes.Buffer
		buf.WriteString(k)
		var tmp []byte
		tmp = append(tmp, k...)
		total += buf.Len() + len(tmp)
	}
	return total
}

// TableCall is the blessed map-of-functions table idiom: calling the
// range value itself runs each entry once rather than feeding an
// ordered consumer.
func TableCall(table map[string]func() error) error {
	for _, fn := range table {
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

// PureAggregation never materializes an order: commutative folds over a
// map are fine.
func PureAggregation(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ServingPkgs is the default scope of lockspan: the serving tier and the
// worker pool, where a mutex held across a blocking operation turns one
// slow client (or one full channel) into a stalled manager — every other
// request then queues on the lock. The replay engine itself is
// single-goroutine-per-candidate and lock-free by design, so it is out
// of scope.
const ServingPkgs = "dmmkit/internal/server/...,dmmkit/internal/pool"

// LockSpan flags sync.Mutex/RWMutex critical sections — including those
// extended to function end by `defer mu.Unlock()` — that span a blocking
// operation:
//
//   - channel sends and receives, and select statements without a
//     default case;
//   - time.Sleep and (*sync.WaitGroup).Wait;
//   - (*sync.Cond).Wait under any lock that is not the Cond's own
//     Locker (Wait atomically releases its own Locker — that is the
//     blessed pattern — but it keeps holding everything else);
//   - I/O-shaped calls: Read/Write methods with the io.Reader/io.Writer
//     signature, parameterless Flush/Sync, (*json.Encoder).Encode and
//     (*json.Decoder).Decode (they drive an underlying Writer/Reader),
//     net/http request/serve calls (Do, ServeHTTP), and the io
//     package's copy helpers.
//
// The analysis is a per-function, order-aware walk: a branch that
// unlocks and falls through clears the lock only if every fall-through
// path did; closures and deferred bodies are separate scopes (a
// goroutine launched under a lock does not hold it). The blessed fix is
// almost always the one the jobs manager uses: copy what you need under
// the lock, release, then block (the close-and-replace notify channel,
// snapshot-then-send). For a send the analyzer cannot prove safe (e.g.
// a self-owned buffered channel with reserved capacity), suppress with
// `//dmmlint:allow lockspan <why>`.
var LockSpan = &analysis.Analyzer{
	Name:     "lockspan",
	Doc:      "no mutex may be held across channel ops, sleeps, Cond/WaitGroup waits, or I/O in the serving tier",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runLockSpan,
}

var lockspanPkgs *string

func init() {
	lockspanPkgs = LockSpan.Flags.String("pkgs", ServingPkgs,
		"comma-separated serving-tier package paths (suffix /... matches subtrees)")
}

func runLockSpan(pass *analysis.Pass) (interface{}, error) {
	if !matchPkg(pass.Pkg.Path(), *lockspanPkgs) {
		return nil, nil
	}
	condLockers := condLockerMap(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return
		}
		w := &lockWalker{pass: pass, condLockers: condLockers}
		w.walkStmts(body.List, map[string]token.Pos{})
	})
	return nil, nil
}

// condLockerMap scans the package for `x = sync.NewCond(&y)` and maps
// the canonical form of x to the canonical form of y, so Cond.Wait can
// be matched to the one lock it legitimately holds-and-releases.
func condLockerMap(pass *analysis.Pass) map[string]string {
	m := map[string]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					continue
				}
				fn := calleeFunc(pass, call)
				if fn == nil || fn.Name() != "NewCond" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
					continue
				}
				arg := ast.Unparen(call.Args[0])
				if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					arg = ast.Unparen(ue.X)
				}
				m[lockExprKey(as.Lhs[i])] = lockExprKey(arg)
			}
			return true
		})
	}
	return m
}

// exprKey canonicalizes a lock/cond expression for matching Lock against
// Unlock and Cond against its Locker. Selector chains keep their field
// path; the root identifier is kept as written (receivers are named
// consistently within a function, which is the matching that matters).
func lockExprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return lockExprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return lockExprKey(e.X) + "[...]"
	case *ast.CallExpr:
		return lockExprKey(e.Fun) + "()"
	case *ast.StarExpr:
		return lockExprKey(e.X)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// fieldPath strips the root identifier from a canonical key: "m.mu"
// -> ".mu". Used to match a Cond built in a constructor (receiver "m")
// against a Wait in a method with a differently named receiver.
func fieldPath(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[i:]
	}
	return key
}

// lockWalker walks one function body tracking the set of held locks.
type lockWalker struct {
	pass        *analysis.Pass
	condLockers map[string]string
}

// walkStmts walks a statement list with the given entry lock set and
// returns the exit set plus whether the list always terminates (return,
// branch, panic) before falling through.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) (map[string]token.Pos, bool) {
	for _, st := range stmts {
		var terminated bool
		held, terminated = w.walkStmt(st, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// mergeFallthrough unions the exit states of branches that fall through.
// A lock is considered held after the construct if any surviving branch
// still holds it (conservative in the safe direction).
func mergeFallthrough(states []map[string]token.Pos, terms []bool) (map[string]token.Pos, bool) {
	out := map[string]token.Pos{}
	all := true
	for i, s := range states {
		if terms[i] {
			continue
		}
		all = false
		for k, v := range s {
			if _, ok := out[k]; !ok {
				out[k] = v
			}
		}
	}
	return out, all
}

func (w *lockWalker) walkStmt(st ast.Stmt, held map[string]token.Pos) (map[string]token.Pos, bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if key, locks := w.lockCall(call); key != "" {
				if locks {
					held = cloneHeld(held)
					held[key] = call.Pos()
				} else {
					held = cloneHeld(held)
					delete(held, key)
				}
				return held, false
			}
		}
		w.checkBlocking(st.X, held)
		return held, w.isTerminalCall(st.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end: no
		// state change. Any other deferred body is a separate scope,
		// but the deferred call's arguments are evaluated right now.
		for _, arg := range st.Call.Args {
			w.checkBlocking(arg, held)
		}
		return held, false
	case *ast.GoStmt:
		// The goroutine body is a separate scope; launching is
		// non-blocking. Arguments are evaluated now, though.
		for _, arg := range st.Call.Args {
			w.checkBlocking(arg, held)
		}
		return held, false
	case *ast.SendStmt:
		if len(held) > 0 {
			w.report(st.Pos(), held, "a channel send")
		}
		return held, false
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.checkBlocking(rhs, held)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.checkBlocking(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return w.walkStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = w.walkStmt(st.Init, held)
		}
		w.checkBlocking(st.Cond, held)
		bodyExit, bodyTerm := w.walkStmts(st.Body.List, cloneHeld(held))
		elseExit, elseTerm := cloneHeld(held), false
		if st.Else != nil {
			elseExit, elseTerm = w.walkStmt(st.Else, cloneHeld(held))
		}
		return mergeFallthrough(
			[]map[string]token.Pos{bodyExit, elseExit},
			[]bool{bodyTerm, elseTerm})
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.checkBlocking(st.Cond, held)
		}
		bodyExit, _ := w.walkStmts(st.Body.List, cloneHeld(held))
		merged, _ := mergeFallthrough(
			[]map[string]token.Pos{held, bodyExit}, []bool{false, false})
		return merged, false
	case *ast.RangeStmt:
		w.checkBlocking(st.X, held)
		if len(held) > 0 {
			if tv, ok := w.pass.TypesInfo.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.report(st.X.Pos(), held, "a channel-range receive")
				}
			}
		}
		bodyExit, _ := w.walkStmts(st.Body.List, cloneHeld(held))
		merged, _ := mergeFallthrough(
			[]map[string]token.Pos{held, bodyExit}, []bool{false, false})
		return merged, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			if sw.Tag != nil {
				w.checkBlocking(sw.Tag, held)
			}
			body = sw.Body
		} else {
			body = st.(*ast.TypeSwitchStmt).Body
		}
		var states []map[string]token.Pos
		var terms []bool
		for _, cc := range body.List {
			clause := cc.(*ast.CaseClause)
			exit, term := w.walkStmts(clause.Body, cloneHeld(held))
			states, terms = append(states, exit), append(terms, term)
		}
		// No default clause: entry state can also fall through.
		states, terms = append(states, held), append(terms, false)
		exit, _ := mergeFallthrough(states, terms)
		return exit, false
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range st.Body.List {
			if cc.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.report(st.Pos(), held, "a blocking select")
		}
		var states []map[string]token.Pos
		var terms []bool
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CommClause)
			exit, term := w.walkStmts(clause.Body, cloneHeld(held))
			states, terms = append(states, exit), append(terms, term)
		}
		exit, allTerm := mergeFallthrough(states, terms)
		return exit, allTerm && len(st.Body.List) > 0
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)
	case *ast.DeclStmt:
		return held, false
	default:
		// Conservative default: scan the statement's expressions for
		// blocking operations without changing lock state.
		w.checkBlocking(st, held)
		return held, false
	}
}

// lockCall classifies call as a lock acquisition or release on a
// sync.Mutex/RWMutex/Locker receiver. It returns the canonical receiver
// key and locks=true for Lock/RLock, locks=false for Unlock/RUnlock;
// key "" means the call is neither.
func (w *lockWalker) lockCall(call *ast.CallExpr) (key string, locks bool) {
	fn := calleeFunc(w.pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockExprKey(sel.X), true
	case "Unlock", "RUnlock":
		return lockExprKey(sel.X), false
	}
	return "", false
}

// checkBlocking reports any blocking operation inside node while locks
// are held. Nested function literals are separate scopes and skipped.
func (w *lockWalker) checkBlocking(node ast.Node, held map[string]token.Pos) {
	if len(held) == 0 || node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.report(n.Pos(), held, "a channel receive")
			}
		case *ast.CallExpr:
			if what := w.blockingCall(n, held); what != "" {
				w.report(n.Pos(), held, what)
			}
		}
		return true
	})
}

// blockingCall describes why call blocks, or "" if it does not.
func (w *lockWalker) blockingCall(call *ast.CallExpr, held map[string]token.Pos) string {
	fn := calleeFunc(w.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	switch pkg {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		switch name {
		case "Wait":
			if sig != nil && sig.Recv() != nil {
				recv := sig.Recv().Type().String()
				if strings.HasSuffix(recv, "sync.WaitGroup") {
					return "WaitGroup.Wait"
				}
				if strings.HasSuffix(recv, "sync.Cond") {
					if w.isCondOwnLocker(call, held) {
						return ""
					}
					return "Cond.Wait (holding a lock that is not the Cond's Locker)"
				}
			}
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "WriteString":
			return "io." + name
		}
	case "encoding/json":
		if name == "Encode" || name == "Decode" {
			return "json " + name + " (drives the underlying stream)"
		}
	case "net/http":
		if name == "Do" || name == "ServeHTTP" || name == "Get" || name == "Post" {
			return "an HTTP call"
		}
	}
	// Interface/struct-agnostic I/O shapes.
	if sig != nil && sig.Recv() != nil {
		switch name {
		case "Read", "Write":
			if ioSignature(sig) {
				return "an io." + map[string]string{"Read": "Reader", "Write": "Writer"}[name] + "-shaped " + name
			}
		case "Flush", "Sync":
			if sig.Params().Len() == 0 {
				return "a " + name + " to the underlying stream"
			}
		case "ServeHTTP":
			return "an HTTP call"
		}
	}
	return ""
}

// ioSignature reports whether sig is ([]byte) (int, error).
func ioSignature(sig *types.Signature) bool {
	if sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	p, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok || p.Elem().String() != "byte" {
		return false
	}
	return sig.Results().At(0).Type().String() == "int" &&
		sig.Results().At(1).Type().String() == "error"
}

// isCondOwnLocker reports whether the only held lock is the Cond's own
// Locker (matched through the package's sync.NewCond sites, comparing
// field paths so constructor and method receiver names may differ).
func (w *lockWalker) isCondOwnLocker(call *ast.CallExpr, held map[string]token.Pos) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	condKey := lockExprKey(sel.X)
	locker, ok := w.condLockers[condKey]
	if !ok {
		// Try the field-path form: any NewCond site whose cond path
		// matches this receiver's path.
		for ck, lk := range w.condLockers {
			if fieldPath(ck) == fieldPath(condKey) {
				locker, ok = lk, true
				break
			}
		}
	}
	if !ok {
		return false
	}
	for heldKey := range held {
		if heldKey != locker && fieldPath(heldKey) != fieldPath(locker) {
			return false
		}
	}
	return true
}

// isTerminalCall reports whether e is a call that never returns (panic,
// os.Exit, runtime.Goexit, (*testing.common).Fatal*).
func (w *lockWalker) isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isFunc := w.pass.TypesInfo.Uses[id].(*types.Func); !isFunc {
			return true // the builtin
		}
	}
	fn := calleeFunc(w.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() + "." + fn.Name() {
	case "os.Exit", "runtime.Goexit":
		return true
	}
	return false
}

func (w *lockWalker) report(pos token.Pos, held map[string]token.Pos, what string) {
	if allowed(w.pass, pos, "lockspan") {
		return
	}
	// Name one held lock deterministically (the earliest acquisition).
	var lock string
	var lockPos token.Pos
	for k, p := range held {
		if lock == "" || p < lockPos || (p == lockPos && k < lock) {
			lock, lockPos = k, p
		}
	}
	w.pass.Reportf(pos,
		"%s is held across %s; release the lock first (copy under lock, then block) — a blocked holder stalls every other acquirer", lock, what)
}

package core

import (
	"errors"
	"math/rand"
	"testing"

	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// Fault injection: managers built on a limited heap must surface
// ErrOutOfMemory cleanly, keep consistent accounting, and continue to
// operate within the remaining memory.

func limitedManagers(t *testing.T, limit int64) map[string]mm.Manager {
	t.Helper()
	out := make(map[string]mm.Manager)
	for name, vec := range map[string]dspace.Vector{
		"drr-custom":    drrVector(),
		"lea-like":      leaLikeVector(),
		"kingsley-like": kingsleyLikeVector(),
		"partition":     partitionVector(),
	} {
		m, err := NewCustom(heap.New(heap.Config{Limit: limit}), vec, Params{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = m
	}
	return out
}

func TestOOMSurfacesCleanly(t *testing.T) {
	for name, m := range limitedManagers(t, 64<<10) {
		var ps []heap.Addr
		var err error
		for i := 0; i < 100000; i++ {
			var p heap.Addr
			p, err = m.Alloc(mm.Request{Size: 1024})
			if err != nil {
				break
			}
			ps = append(ps, p)
		}
		if err == nil {
			t.Fatalf("%s: limited heap never ran out", name)
		}
		if !errors.Is(err, mm.ErrOutOfMemory) {
			t.Fatalf("%s: err = %v, want ErrOutOfMemory", name, err)
		}
		if m.Stats().FailedOps == 0 {
			t.Errorf("%s: failed op not recorded", name)
		}
		// The manager must still work: free one block, then a request of
		// the same size must be satisfiable from the freed memory (rigid
		// class policies cannot reuse it for other sizes, so the request
		// mirrors the freed block).
		if len(ps) == 0 {
			t.Fatalf("%s: nothing allocated before OOM", name)
		}
		if err := m.Free(ps[0]); err != nil {
			t.Fatalf("%s: free after OOM: %v", name, err)
		}
		if _, err := m.Alloc(mm.Request{Size: 1024}); err != nil {
			t.Errorf("%s: alloc after free post-OOM failed: %v", name, err)
		}
	}
}

func TestOOMThenFullDrainRecovers(t *testing.T) {
	m, err := NewCustom(heap.New(heap.Config{Limit: 32 << 10}), drrVector(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var live []heap.Addr
	ooms := 0
	for i := 0; i < 5000; i++ {
		if rng.Intn(2) == 0 {
			p, err := m.Alloc(mm.Request{Size: rng.Int63n(2000) + 1})
			if err != nil {
				if !errors.Is(err, mm.ErrOutOfMemory) {
					t.Fatalf("op %d: %v", i, err)
				}
				ooms++
			} else {
				live = append(live, p)
			}
		} else if len(live) > 0 {
			j := rng.Intn(len(live))
			if err := m.Free(live[j]); err != nil {
				t.Fatalf("op %d: free: %v", i, err)
			}
			live = append(live[:j], live[j+1:]...)
		}
	}
	if ooms == 0 {
		t.Error("limited heap never hit OOM during churn")
	}
	for _, p := range live {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Stats().LiveBytes; got != 0 {
		t.Errorf("LiveBytes = %d after drain", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("invariants after OOM churn: %v", err)
	}
}

func TestGlobalPropagatesOOM(t *testing.T) {
	m0, err := NewCustom(heap.New(heap.Config{Limit: 16 << 10}), drrVector(), Params{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGlobal("G", map[int]mm.Manager{0: m0})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 1000; i++ {
		if _, lastErr = g.Alloc(mm.Request{Size: 1024}); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, mm.ErrOutOfMemory) {
		t.Errorf("global OOM err = %v", lastErr)
	}
	if g.Stats().FailedOps == 0 {
		t.Error("global did not record the failure")
	}
}

package mesh

import "testing"

func TestGenerateValid(t *testing.T) {
	p := Generate(1, 8, 500)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.BaseVerts) != 64 {
		t.Errorf("base verts = %d, want 64", len(p.BaseVerts))
	}
	if len(p.BaseFaces) != 2*7*7 {
		t.Errorf("base faces = %d, want 98", len(p.BaseFaces))
	}
	if p.MaxLOD() != 500 {
		t.Errorf("MaxLOD = %d, want 500", p.MaxLOD())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := Generate(2, 4, 10)
	p.BaseFaces[0].A = 9999
	if err := p.Validate(); err == nil {
		t.Error("out-of-range face index validated")
	}
	p = Generate(2, 4, 10)
	p.Splits[0].FaceA.B = 9999
	if err := p.Validate(); err == nil {
		t.Error("future-vertex split validated")
	}
}

func TestRecordsAt(t *testing.T) {
	p := Generate(3, 4, 100)
	v, f := p.RecordsAt(40)
	if v != 40 || f != 80 {
		t.Errorf("RecordsAt(40) = %d,%d, want 40,80", v, f)
	}
	v, f = p.RecordsAt(1000) // clamped
	if v != 100 || f != 200 {
		t.Errorf("RecordsAt(1000) = %d,%d, want clamped 100,200", v, f)
	}
}

func TestInstanceRefineCoarsenLIFO(t *testing.T) {
	p := Generate(4, 4, 50)
	in := NewInstance(p)
	var log []int64
	next := int64(0)
	alloc := func(size int64) int64 {
		next++
		log = append(log, next)
		return next
	}
	var freed []int64
	free := func(id int64) { freed = append(freed, id) }

	for i := 0; i < 10; i++ {
		if !in.Refine(alloc) {
			t.Fatal("refine failed")
		}
	}
	if in.LOD() != 10 {
		t.Fatalf("LOD = %d, want 10", in.LOD())
	}
	if len(log) != 30 { // 1 vertex + 2 faces per level
		t.Fatalf("allocated %d records, want 30", len(log))
	}
	if !in.Coarsen(free) {
		t.Fatal("coarsen failed")
	}
	// Coarsen must free the most recent records (LIFO).
	if len(freed) != 3 {
		t.Fatalf("freed %d records, want 3", len(freed))
	}
	for _, id := range freed {
		if id < 28 {
			t.Errorf("coarsen freed old record %d; LIFO order expected", id)
		}
	}
	if in.LOD() != 9 {
		t.Errorf("LOD = %d after coarsen, want 9", in.LOD())
	}
}

func TestCoarsenAtBaseFails(t *testing.T) {
	in := NewInstance(Generate(5, 4, 10))
	if in.Coarsen(func(int64) {}) {
		t.Error("coarsen succeeded at LOD 0")
	}
}

func TestRefineExhaustion(t *testing.T) {
	p := Generate(6, 4, 3)
	in := NewInstance(p)
	alloc := func(int64) int64 { return 1 }
	n := 0
	for in.Refine(func(s int64) int64 { n++; return alloc(s) }) {
	}
	if in.LOD() != 3 {
		t.Errorf("LOD = %d after exhaustion, want 3", in.LOD())
	}
	if n != 9 {
		t.Errorf("allocated %d records, want 9", n)
	}
}

func TestReleaseAllCustomOrder(t *testing.T) {
	p := Generate(7, 4, 20)
	in := NewInstance(p)
	id := int64(0)
	for i := 0; i < 20; i++ {
		in.Refine(func(int64) int64 { id++; return id })
	}
	var freed []int64
	reverse := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i // forward order: deliberately non-LIFO
		}
		return out
	}
	in.ReleaseAll(reverse, func(x int64) { freed = append(freed, x) })
	if len(freed) != 60 {
		t.Fatalf("released %d records, want 60", len(freed))
	}
	if in.LOD() != 0 {
		t.Errorf("LOD = %d after ReleaseAll, want 0", in.LOD())
	}
	// Default (nil order) releases LIFO.
	in2 := NewInstance(p)
	id = 0
	for i := 0; i < 5; i++ {
		in2.Refine(func(int64) int64 { id++; return id })
	}
	freed = nil
	in2.ReleaseAll(nil, func(x int64) { freed = append(freed, x) })
	if freed[0] != 15 {
		t.Errorf("nil-order ReleaseAll freed %d first, want the newest (15)", freed[0])
	}
}

func TestBaseBytes(t *testing.T) {
	p := Generate(8, 4, 0)
	want := int64(16)*VertexBytes + int64(18)*FaceBytes
	if p.BaseBytes() != want {
		t.Errorf("BaseBytes = %d, want %d", p.BaseBytes(), want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(9, 6, 100)
	b := Generate(9, 6, 100)
	if len(a.Splits) != len(b.Splits) {
		t.Fatal("split counts differ")
	}
	for i := range a.Splits {
		if a.Splits[i] != b.Splits[i] {
			t.Fatal("splits differ for same seed")
		}
	}
}

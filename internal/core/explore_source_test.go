package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dmmkit/internal/trace"
)

// TestExploreSourceFileMatchesInMemory pins the out-of-core exploration
// path: exploring the DMMT2-encoded file of a trace must yield the exact
// candidate set (vectors, footprints, work, order, designed point) of
// exploring the in-memory trace — at parallelism, where every worker
// streams its own pass off the file.
func TestExploreSourceFileMatchesInMemory(t *testing.T) {
	tr := exploreTrace()
	path := filepath.Join(t.TempDir(), "explore.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := errors.Join(tr.EncodeBinary2(f), f.Close()); err != nil {
		t.Fatal(err)
	}
	file, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}

	opts := ExploreOpts{MaxCandidates: 16, IncludeDesigned: true, Parallelism: 4}
	inMem, err := NewEngine(0).Explore(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := NewEngine(0).ExploreSource(context.Background(), file, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(inMem) != len(streamed) {
		t.Fatalf("in-memory %d candidates, streamed %d", len(inMem), len(streamed))
	}
	ik, sk := keysOf(inMem), keysOf(streamed)
	for i := range ik {
		if ik[i] != sk[i] {
			t.Errorf("candidate %d diverges:\n  in-mem   %+v\n  streamed %+v", i, ik[i], sk[i])
		}
	}
}

// TestExploreSourceOpenFailure verifies a dead opener fails the
// exploration up front (the profiling pass) instead of per candidate.
func TestExploreSourceOpenFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gone.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := errors.Join(exploreTrace().EncodeBinary2(f), f.Close()); err != nil {
		t.Fatal(err)
	}
	file, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(0).ExploreSource(context.Background(), file, ExploreOpts{MaxCandidates: 4}); err == nil {
		t.Error("exploring a removed file succeeded")
	}
}

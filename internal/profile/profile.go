package profile

import (
	"fmt"
	"math"
	"sort"

	"dmmkit/internal/trace"
)

// SizeStats aggregates the allocations of one requested size.
type SizeStats struct {
	Size    int64
	Count   int64
	MaxLive int64 // peak concurrently live bytes of this size
}

// Profile summarizes a trace's DM behaviour.
type Profile struct {
	Name   string
	Events int
	Allocs int64
	Frees  int64

	// Size population.
	Sizes         []SizeStats // ascending by size
	DistinctSizes int
	MinSize       int64
	MaxSize       int64
	MeanSize      float64
	SizeCV        float64 // coefficient of variation of request sizes

	// Live volume.
	MaxLiveBytes  int64 // peak concurrently requested bytes
	MaxLiveBlocks int64
	TotalBytes    int64 // sum of all allocation sizes

	// Lifetimes, in events between alloc and free.
	MeanLifetime float64
	P95Lifetime  int64
	NeverFreed   int64

	// Behaviour indicators.
	LIFOScore       float64 // fraction of frees hitting the newest live block
	CrossPhaseFrees int64   // frees of blocks allocated in a different phase

	// Per-tag worst case (sizes a region/partition designer would use).
	TagMax map[int]int64

	// Phases present in the trace, ascending by phase id.
	Phases []PhaseProfile
}

// PhaseProfile is the per-phase slice of the profile (Sec. 3.3: one atomic
// manager per behavioural phase).
type PhaseProfile struct {
	Phase         int
	Events        int
	Allocs        int64
	DistinctSizes int
	MinSize       int64
	MaxSize       int64
	SizeCV        float64
	MaxLiveBytes  int64
	LIFOScore     float64
}

// FromTrace computes the full profile of a trace.
func FromTrace(t *trace.Trace) *Profile {
	// The in-memory source never fails.
	p, _ := FromSource(t.Source())
	return p
}

// FromSource computes the full profile of an event stream in one pass,
// without materializing the trace: FromSource(t.Source()) is identical
// to FromTrace(t). Memory is dominated by the live-allocation table
// (O(live set)) and the lifetime sample buffer (one int64 per free, for
// the exact P95 the methodology's heuristics use).
func FromSource(src trace.Source) (*Profile, error) {
	p := &Profile{Name: src.Name(), TagMax: make(map[int]int64)}

	type liveInfo struct {
		size    int64
		born    int
		orderIx int64 // allocation order for LIFO detection
		phase   int32
	}
	live := make(map[int64]liveInfo)

	sizeCount := make(map[int64]int64)
	sizeLive := make(map[int64]int64)
	sizeLiveMax := make(map[int64]int64)

	var liveBytes, liveBlocks int64
	var orderCounter int64
	var newestStack []int64 // stack of live ids in allocation order
	var lifoHits, lifoTotal int64
	var lifetimes []int64
	var sumSize float64
	var sumSize2 float64

	phases := make(map[int32]*phaseAcc)
	phaseOf := func(id int32) *phaseAcc {
		pa, ok := phases[id]
		if !ok {
			pa = newPhaseAcc(int(id))
			phases[id] = pa
		}
		return pa
	}

	// The stream is consumed in batches (trace.ReadBatch adapts sources
	// without native batching); i stays the global event index the
	// born/lifetime bookkeeping needs.
	buf := make([]trace.Event, trace.BatchLen)
	i := 0
	for {
		n, berr := trace.ReadBatch(src, buf)
		if n == 0 && berr == nil {
			break
		}
		for k := 0; k < n; k++ {
			e := buf[k]
			p.Events++
			pa := phaseOf(e.Phase)
			pa.events++
			switch e.Kind {
			case trace.KindAlloc:
				p.Allocs++
				live[e.ID] = liveInfo{size: e.Size, born: i, orderIx: orderCounter, phase: e.Phase}
				newestStack = append(newestStack, e.ID)
				orderCounter++

				sizeCount[e.Size]++
				sizeLive[e.Size] += e.Size
				if sizeLive[e.Size] > sizeLiveMax[e.Size] {
					sizeLiveMax[e.Size] = sizeLive[e.Size]
				}
				liveBytes += e.Size
				liveBlocks++
				if liveBytes > p.MaxLiveBytes {
					p.MaxLiveBytes = liveBytes
				}
				if liveBlocks > p.MaxLiveBlocks {
					p.MaxLiveBlocks = liveBlocks
				}
				p.TotalBytes += e.Size
				sumSize += float64(e.Size)
				sumSize2 += float64(e.Size) * float64(e.Size)
				if e.Size > p.TagMax[int(e.Tag)] {
					p.TagMax[int(e.Tag)] = e.Size
				}
				pa.noteAlloc(e.Size, liveBytesOfPhase(pa, e.Size))
			case trace.KindFree:
				p.Frees++
				li := live[e.ID]
				delete(live, e.ID)
				if li.phase != e.Phase {
					p.CrossPhaseFrees++
				}
				// LIFO detection: pop dead ids, then check the top.
				for len(newestStack) > 0 {
					if _, ok := live[newestStack[len(newestStack)-1]]; !ok && newestStack[len(newestStack)-1] != e.ID {
						newestStack = newestStack[:len(newestStack)-1]
						continue
					}
					break
				}
				lifoTotal++
				if len(newestStack) > 0 && newestStack[len(newestStack)-1] == e.ID {
					lifoHits++
					newestStack = newestStack[:len(newestStack)-1]
				}
				sizeLive[li.size] -= li.size
				liveBytes -= li.size
				liveBlocks--
				lifetimes = append(lifetimes, int64(i-li.born))
				pa.noteFree(li.size)
			}
			i++
		}
		if berr != nil {
			return nil, fmt.Errorf("profile: event %d: %w", i, berr)
		}
	}
	p.NeverFreed = int64(len(live))

	// Size population.
	for s, c := range sizeCount {
		p.Sizes = append(p.Sizes, SizeStats{Size: s, Count: c, MaxLive: sizeLiveMax[s]})
	}
	sort.Slice(p.Sizes, func(i, j int) bool { return p.Sizes[i].Size < p.Sizes[j].Size })
	p.DistinctSizes = len(p.Sizes)
	if p.DistinctSizes > 0 {
		p.MinSize = p.Sizes[0].Size
		p.MaxSize = p.Sizes[p.DistinctSizes-1].Size
	}
	if p.Allocs > 0 {
		p.MeanSize = sumSize / float64(p.Allocs)
		variance := sumSize2/float64(p.Allocs) - p.MeanSize*p.MeanSize
		if variance > 0 && p.MeanSize > 0 {
			p.SizeCV = math.Sqrt(variance) / p.MeanSize
		}
	}

	// Lifetimes.
	if len(lifetimes) > 0 {
		var sum int64
		for _, l := range lifetimes {
			sum += l
		}
		p.MeanLifetime = float64(sum) / float64(len(lifetimes))
		sort.Slice(lifetimes, func(i, j int) bool { return lifetimes[i] < lifetimes[j] })
		p.P95Lifetime = lifetimes[len(lifetimes)*95/100]
	}
	if lifoTotal > 0 {
		p.LIFOScore = float64(lifoHits) / float64(lifoTotal)
	}

	// Phases.
	var ids []int32
	for id := range phases {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p.Phases = append(p.Phases, phases[id].finish())
	}
	return p, nil
}

// phaseAcc accumulates one phase's statistics.
type phaseAcc struct {
	phase     int
	events    int
	allocs    int64
	sizes     map[int64]int64
	liveBytes int64
	maxLive   int64
	sumSize   float64
	sumSize2  float64
	lifoHits  int64
	lifoTotal int64
	stack     []int64 // sizes in LIFO order (approximation per phase)
}

func newPhaseAcc(phase int) *phaseAcc {
	return &phaseAcc{phase: phase, sizes: make(map[int64]int64)}
}

func liveBytesOfPhase(pa *phaseAcc, add int64) int64 { return pa.liveBytes + add }

func (pa *phaseAcc) noteAlloc(size, _ int64) {
	pa.allocs++
	pa.sizes[size]++
	pa.liveBytes += size
	if pa.liveBytes > pa.maxLive {
		pa.maxLive = pa.liveBytes
	}
	pa.sumSize += float64(size)
	pa.sumSize2 += float64(size) * float64(size)
	pa.stack = append(pa.stack, size)
}

func (pa *phaseAcc) noteFree(size int64) {
	pa.liveBytes -= size
	pa.lifoTotal++
	if n := len(pa.stack); n > 0 && pa.stack[n-1] == size {
		pa.lifoHits++
		pa.stack = pa.stack[:n-1]
	}
}

func (pa *phaseAcc) finish() PhaseProfile {
	pp := PhaseProfile{
		Phase:         pa.phase,
		Events:        pa.events,
		Allocs:        pa.allocs,
		DistinctSizes: len(pa.sizes),
		MaxLiveBytes:  pa.maxLive,
	}
	var min, max int64
	for s := range pa.sizes {
		if min == 0 || s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	pp.MinSize, pp.MaxSize = min, max
	if pa.allocs > 0 {
		mean := pa.sumSize / float64(pa.allocs)
		variance := pa.sumSize2/float64(pa.allocs) - mean*mean
		if variance > 0 && mean > 0 {
			pp.SizeCV = math.Sqrt(variance) / mean
		}
	}
	if pa.lifoTotal > 0 {
		pp.LIFOScore = float64(pa.lifoHits) / float64(pa.lifoTotal)
	}
	return pp
}

// TopSizes returns the n most frequent request sizes, descending by count
// (ties broken by size); used to derive class-size parameters.
func (p *Profile) TopSizes(n int) []int64 {
	byCount := append([]SizeStats(nil), p.Sizes...)
	sort.Slice(byCount, func(i, j int) bool {
		if byCount[i].Count != byCount[j].Count {
			return byCount[i].Count > byCount[j].Count
		}
		return byCount[i].Size < byCount[j].Size
	})
	if n > len(byCount) {
		n = len(byCount)
	}
	out := make([]int64, 0, n)
	for _, s := range byCount[:n] {
		out = append(out, s.Size)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

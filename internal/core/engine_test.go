package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"dmmkit/internal/dspace"
)

// candKey projects a Candidate onto comparable fields (errors compared by
// message).
type candKey struct {
	Vector       dspace.Vector
	MaxFootprint int64
	Work         int64
	Designed     bool
	Err          string
}

func keysOf(cands []Candidate) []candKey {
	out := make([]candKey, len(cands))
	for i, c := range cands {
		out[i] = candKey{c.Vector, c.MaxFootprint, c.Work, c.Designed, ""}
		if c.Err != nil {
			out[i].Err = c.Err.Error()
		}
	}
	return out
}

// TestEngineParallelMatchesSequential is the engine's determinism
// contract: Parallelism 8 must yield a byte-identical candidate set
// (vectors, footprints, work, ordering) to Parallelism 1.
func TestEngineParallelMatchesSequential(t *testing.T) {
	tr := exploreTrace()
	opts := ExploreOpts{MaxCandidates: 24, IncludeDesigned: true}

	opts.Parallelism = 1
	seq, err := NewEngine(0).Explore(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := NewEngine(0).Explore(context.Background(), tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential %d candidates, parallel %d", len(seq), len(par))
	}
	sk, pk := keysOf(seq), keysOf(par)
	for i := range sk {
		if sk[i] != pk[i] {
			t.Errorf("candidate %d diverges:\n  seq %+v\n  par %+v", i, sk[i], pk[i])
		}
	}
}

// TestEngineStreamsInOrder checks that OnCandidate receives exactly the
// returned candidates, in the deterministic result order, and that
// OnProgress counts every completion.
func TestEngineStreamsInOrder(t *testing.T) {
	tr := exploreTrace()
	var mu sync.Mutex
	var streamed []Candidate
	var progress []int
	lastTotal := 0
	cands, err := NewEngine(4).Explore(context.Background(), tr, ExploreOpts{
		MaxCandidates:   16,
		IncludeDesigned: true,
		OnCandidate: func(c Candidate) {
			mu.Lock()
			streamed = append(streamed, c)
			mu.Unlock()
		},
		OnProgress: func(done, total int) {
			mu.Lock()
			progress = append(progress, done)
			lastTotal = total
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(cands) {
		t.Fatalf("streamed %d, returned %d", len(streamed), len(cands))
	}
	sk, ck := keysOf(streamed), keysOf(cands)
	for i := range sk {
		if sk[i] != ck[i] {
			t.Errorf("streamed candidate %d out of order", i)
		}
	}
	if lastTotal != len(cands) {
		t.Errorf("OnProgress total %d, want %d", lastTotal, len(cands))
	}
	if len(progress) != len(cands) {
		t.Fatalf("OnProgress fired %d times, want %d", len(progress), len(cands))
	}
	for i, d := range progress {
		if d != i+1 {
			t.Fatalf("progress not monotonic: step %d reported %d", i, d)
		}
	}
}

// TestEngineCancellation cancels mid-run and checks the partial result is
// a clean prefix of the deterministic ordering.
func TestEngineCancellation(t *testing.T) {
	tr := exploreTrace()
	full, err := NewEngine(1).Explore(context.Background(), tr, ExploreOpts{MaxCandidates: 12})
	if err != nil {
		t.Fatal(err)
	}

	// Sequential parallelism makes the cut point exact: the pool checks
	// the context before every job, so cancelling inside the third
	// streamed candidate stops the run right there.
	ctx, cancel := context.WithCancel(context.Background())
	var streamed int
	partial, err := NewEngine(1).Explore(ctx, tr, ExploreOpts{
		MaxCandidates: 12,
		OnCandidate: func(Candidate) {
			streamed++
			if streamed == 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial) != 3 {
		t.Errorf("cancellation kept %d candidates, want exactly 3", len(partial))
	}
	fk := keysOf(full)
	for i, k := range keysOf(partial) {
		if k != fk[i] {
			t.Errorf("partial result %d is not a prefix of the full ordering", i)
		}
	}
}

func TestSpaceSizeCachedAndLarge(t *testing.T) {
	n := SpaceSize()
	if n < 100000 {
		t.Fatalf("SpaceSize = %d, want the paper's ~144k valid points", n)
	}
	if m := SpaceSize(); m != n {
		t.Errorf("SpaceSize not stable: %d then %d", n, m)
	}
}

package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"dmmkit/internal/heap"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
	"dmmkit/internal/trace"
)

// TestStreamingReplayMatchesInMemory is the acceptance differential:
// for every registered workload and every registered manager family,
// replaying the DMMT2-encoded stream must produce exactly the footprint,
// work, manager stats and heap system stats of the in-memory replay.
func TestStreamingReplayMatchesInMemory(t *testing.T) {
	ctx := context.Background()
	for _, w := range registry.Workloads() {
		tr, err := registry.BuildWorkload(w, registry.WorkloadOpts{Seed: 1, Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		var buf bytes.Buffer
		if err := tr.EncodeBinary2(&buf); err != nil {
			t.Fatalf("%s: encode: %v", w, err)
		}
		prof := profile.FromTrace(tr)
		for _, m := range registry.Managers() {
			h1 := heap.New(heap.Config{})
			m1, err := registry.NewManager(m, h1, prof)
			if err != nil {
				t.Fatalf("%s/%s: %v", w, m, err)
			}
			inMem, err := trace.Run(ctx, m1, tr, trace.RunOpts{})
			if err != nil {
				t.Fatalf("%s/%s: in-memory replay: %v", w, m, err)
			}

			src, err := trace.DecodeBinarySource(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s/%s: %v", w, m, err)
			}
			h2 := heap.New(heap.Config{})
			m2, err := registry.NewManager(m, h2, prof)
			if err != nil {
				t.Fatalf("%s/%s: %v", w, m, err)
			}
			streamed, err := trace.RunSource(ctx, m2, src, trace.RunOpts{})
			if err != nil {
				t.Fatalf("%s/%s: streaming replay: %v", w, m, err)
			}

			if !reflect.DeepEqual(inMem, streamed) {
				t.Errorf("%s/%s: streaming replay diverged\nin-mem:   %+v\nstreamed: %+v", w, m, inMem, streamed)
			}
			if h1.SysStats() != h2.SysStats() {
				t.Errorf("%s/%s: heap SysStats diverged: %+v vs %+v", w, m, h1.SysStats(), h2.SysStats())
			}
		}
	}
}

// TestStreamWorkloadGenerationMatches checks the write side: generating
// a workload into a sink yields exactly the events of the materialized
// build, and the returned summary trace carries no events.
func TestStreamWorkloadGenerationMatches(t *testing.T) {
	type collector struct {
		trace.StatsSink
		events []trace.Event
	}
	for _, w := range registry.Workloads() {
		tr, err := registry.BuildWorkload(w, registry.WorkloadOpts{Seed: 2, Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		c := &collector{}
		c.Sink = sinkFunc(func(e trace.Event) error {
			c.events = append(c.events, e)
			return nil
		})
		summary, err := registry.BuildWorkload(w, registry.WorkloadOpts{Seed: 2, Quick: true, Sink: &c.StatsSink})
		if err != nil {
			t.Fatalf("%s: streaming build: %v", w, err)
		}
		if len(summary.Events) != 0 {
			t.Errorf("%s: streaming build materialized %d events", w, len(summary.Events))
		}
		if summary.Name != tr.Name {
			t.Errorf("%s: names differ: %q vs %q", w, summary.Name, tr.Name)
		}
		if !reflect.DeepEqual(c.events, tr.Events) {
			t.Errorf("%s: streamed events differ from materialized build", w)
		}
		if c.StatsSink.Events() != len(tr.Events) || c.StatsSink.MaxLiveBytes() != tr.MaxLiveBytes() {
			t.Errorf("%s: sink summary (%d events, %d peak) disagrees with trace (%d, %d)",
				w, c.StatsSink.Events(), c.StatsSink.MaxLiveBytes(), len(tr.Events), tr.MaxLiveBytes())
		}
	}
}

// sinkFunc adapts a function to an EventSink with a no-op Begin.
type sinkFunc func(trace.Event) error

func (sinkFunc) Begin(string) error               { return nil }
func (f sinkFunc) WriteEvent(e trace.Event) error { return f(e) }

// TestRunStreamQuick exercises the measurement end to end in quick mode;
// RunStream itself errors if the two replay paths disagree.
func TestRunStreamQuick(t *testing.T) {
	res, err := RunStream(context.Background(), Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 || len(res.Rows) != len(streamManagers) {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	if res.FileBytes <= 0 || res.EventBytes <= res.FileBytes {
		t.Errorf("sizes look wrong: file %d, events %d", res.FileBytes, res.EventBytes)
	}
	var out bytes.Buffer
	if err := WriteStream(&out, res); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("empty report")
	}
}

// Command goldendump captures the current golden differential cells
// (the exact observable outcome of every workload×manager replay — see
// experiments.CaptureGolden) and prints them as indented JSON on
// stdout.
//
// CI runs it when the golden-drift test fails, so the got-vs-want
// comparison can be uploaded as an artifact and a footprint regression
// diagnosed from the Actions UI with
//
//	diff <(go run ./internal/tools/goldendump) internal/experiments/testdata/golden_table1.json
//
// without checking the branch out locally.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"dmmkit/internal/experiments"
)

func main() {
	cells, err := experiments.CaptureGolden()
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldendump: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "goldendump: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(data, '\n'))
}

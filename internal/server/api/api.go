// Package api implements dmmserve's HTTP/JSON surface over the job
// manager: streaming DMMT2 trace uploads into an on-disk spool, job
// launch/inspect/cancel, NDJSON and SSE event streaming, and windowed
// metrics. The handlers are a thin projection — all policy (admission,
// retention, determinism, drain-on-shutdown) lives in
// internal/server/jobs, and all option validation in internal/cliopts,
// so the API rejects bad requests with exactly the messages the
// dmmexplore flags print.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"dmmkit/internal/cliopts"
	"dmmkit/internal/registry"
	"dmmkit/internal/server/jobs"
	"dmmkit/internal/server/metrics"
	"dmmkit/internal/trace"
)

// Config parameterizes a Server.
type Config struct {
	// Manager runs the jobs (required).
	Manager *jobs.Manager
	// SpoolDir receives uploaded traces (required; created if absent).
	// Give the job manager the same directory so drain checkpoints and
	// uploads live together.
	SpoolDir string
	// MaxUploadBytes caps one trace upload (default 1 GiB).
	MaxUploadBytes int64
	// Now is the clock for request latency metrics (default time.Now).
	Now func() time.Time
}

// Server is the HTTP API. Build with New, serve via Handler.
type Server struct {
	mgr       *jobs.Manager
	spool     string
	maxUpload int64
	now       func() time.Time
	httpLat   *metrics.Tracker
	mux       *http.ServeMux
}

// New builds the API server and its route table.
func New(cfg Config) (*Server, error) {
	if cfg.Manager == nil {
		return nil, errors.New("api: Config.Manager is required")
	}
	if cfg.SpoolDir == "" {
		return nil, errors.New("api: Config.SpoolDir is required")
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("api: creating spool dir: %w", err)
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 1 << 30
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{
		mgr:       cfg.Manager,
		spool:     cfg.SpoolDir,
		maxUpload: cfg.MaxUploadBytes,
		now:       cfg.Now,
		httpLat:   metrics.New(time.Minute, 6, cfg.Now),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", s.uploadTrace)
	mux.HandleFunc("POST /v1/jobs", s.createJob)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.streamEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	mux.HandleFunc("GET /v1/metrics", s.metricsReport)
	mux.HandleFunc("GET /v1/registry", s.listRegistry)
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler: the route table wrapped in
// the latency-recording middleware.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		s.mux.ServeHTTP(w, r)
		s.httpLat.Record(s.now().Sub(start))
	})
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding a value we built cannot fail; a broken connection can,
	// and has no one left to report to.
	_ = enc.Encode(v)
}

// fail emits a JSON error body with the given status.
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// uploadResponse answers POST /v1/traces.
type uploadResponse struct {
	// ID names the stored trace for later job requests.
	ID string `json:"id"`
	// Name is the trace's embedded name.
	Name string `json:"name"`
	// Events is the validated event count.
	Events int `json:"events"`
}

// uploadTrace streams a DMMT2 (or DMMT1) trace body into the spool. The
// upload is decoded end to end — framing, varints, the CRC-32C trailer —
// before it is given an ID; a failed or interrupted upload leaves no
// partial file behind.
func (s *Server) uploadTrace(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	tmp, err := os.CreateTemp(s.spool, ".upload-*")
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "spooling upload: %v", err)
		return
	}
	tmpName := tmp.Name()
	discard := func() {
		_ = tmp.Close() // error path: the partial file is removed next anyway
		_ = os.Remove(tmpName)
	}
	if _, err := io.Copy(tmp, body); err != nil {
		discard()
		// MaxBytesReader's error means the client sent too much; any
		// other read error is the client connection going away.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", s.maxUpload)
			return
		}
		s.fail(w, http.StatusBadRequest, "reading upload: %v", err)
		return
	}
	if err := tmp.Sync(); err != nil {
		discard()
		s.fail(w, http.StatusInternalServerError, "syncing upload: %v", err)
		return
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName) // error path: nothing more to do with the temp file
		s.fail(w, http.StatusInternalServerError, "closing upload: %v", err)
		return
	}

	name, events, err := validateTraceFile(r, tmpName)
	if err != nil {
		_ = os.Remove(tmpName) // invalid upload: remove the partial spool file
		s.fail(w, http.StatusBadRequest, "invalid trace: %v", err)
		return
	}

	id := jobs.NewID()
	final := filepath.Join(s.spool, id+".trace")
	if err := os.Rename(tmpName, final); err != nil {
		_ = os.Remove(tmpName) // error path: drop the orphaned temp file
		s.fail(w, http.StatusInternalServerError, "installing trace: %v", err)
		return
	}
	writeJSON(w, http.StatusCreated, uploadResponse{ID: id, Name: name, Events: events})
}

// validateTraceFile decodes the spooled file end to end under the
// request context, returning the trace name and event count. Any
// decode error — bad magic, torn varint, CRC mismatch, truncation —
// rejects the upload.
func validateTraceFile(r *http.Request, path string) (string, int, error) {
	f, err := trace.OpenFile(path)
	if err != nil {
		return "", 0, err
	}
	src, err := f.Open()
	if err != nil {
		return "", 0, err
	}
	src = trace.WithContext(r.Context(), src)
	events := 0
	for {
		_, ok, err := src.Next()
		if err != nil {
			_ = trace.Close(src) // error path: the decode error is what matters
			return "", 0, err
		}
		if !ok {
			break
		}
		events++
	}
	if err := trace.Close(src); err != nil {
		return "", 0, err
	}
	return src.Name(), events, nil
}

// validID reports whether id is one of our own generated identifiers
// (UUID alphabet only), refusing anything that could walk the
// filesystem when joined to the spool path.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'f', c >= '0' && c <= '9', c == '-':
		default:
			return false
		}
	}
	return true
}

// jobRequest is the POST /v1/jobs body: the jobs.Request vocabulary
// with the trace named by upload ID instead of filesystem path, so
// clients can only reference traces they uploaded (or registered
// workloads), never arbitrary server files.
type jobRequest struct {
	Kind  string `json:"kind"`
	Trace struct {
		ID       string `json:"id,omitempty"`
		Workload string `json:"workload,omitempty"`
		Seed     int64  `json:"seed,omitempty"`
		Quick    bool   `json:"quick,omitempty"`
	} `json:"trace"`
	Strategy        string `json:"strategy,omitempty"`
	Objectives      string `json:"objectives,omitempty"`
	Seed            int64  `json:"search_seed,omitempty"`
	Population      int    `json:"population,omitempty"`
	Generations     int    `json:"generations,omitempty"`
	Budget          int    `json:"budget,omitempty"`
	Parallelism     int    `json:"parallelism,omitempty"`
	IncludeDesigned bool   `json:"include_designed,omitempty"`
	SkipFailures    bool   `json:"skip_failures,omitempty"`
}

// createJob validates and submits a job, mapping manager admission
// errors onto HTTP statuses (full queue 429, draining 503, bad request
// 400 with the CLI-identical message).
func (s *Server) createJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}

	jr := jobs.Request{
		Kind:            req.Kind,
		Strategy:        req.Strategy,
		Objectives:      req.Objectives,
		Seed:            req.Seed,
		Population:      req.Population,
		Generations:     req.Generations,
		Budget:          req.Budget,
		Parallelism:     req.Parallelism,
		IncludeDesigned: req.IncludeDesigned,
		SkipFailures:    req.SkipFailures,
	}
	switch {
	case req.Trace.ID != "" && req.Trace.Workload != "":
		s.fail(w, http.StatusBadRequest, "trace must name exactly one of id or workload")
		return
	case req.Trace.ID != "":
		if !validID(req.Trace.ID) {
			s.fail(w, http.StatusBadRequest, "malformed trace id %q", req.Trace.ID)
			return
		}
		path := filepath.Join(s.spool, req.Trace.ID+".trace")
		if _, err := os.Stat(path); err != nil {
			s.fail(w, http.StatusNotFound, "unknown trace %q (upload it first via POST /v1/traces)", req.Trace.ID)
			return
		}
		jr.Trace.Path = path
	default:
		jr.Trace.Workload = req.Trace.Workload
		jr.Trace.Seed = req.Trace.Seed
		jr.Trace.Quick = req.Trace.Quick
	}

	id, err := s.mgr.Submit(jr)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.fail(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, jobs.ErrDraining):
		s.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		ID string `json:"id"`
	}{id})
}

// getJob answers GET /v1/jobs/{id}.
func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.mgr.Get(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no job %q (finished jobs expire after their TTL)", id)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// listJobs answers GET /v1/jobs.
func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}{s.mgr.List()})
}

// cancelJob answers DELETE /v1/jobs/{id}: cancellation is asynchronous,
// the response is the job's snapshot at the moment the cancel landed.
// The events stream then delivers the remaining prefix and the terminal
// state.
func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.mgr.Cancel(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// streamEvents answers GET /v1/jobs/{id}/events: the job's full event
// log from sequence 0, then live events until the job is terminal. The
// default framing is NDJSON (one event per line); an Accept header
// naming text/event-stream switches to SSE data frames. The client
// disconnecting simply ends the stream — the job keeps running.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.mgr.Events(id)
	if !ok {
		s.fail(w, http.StatusNotFound, "no job %q", id)
		return
	}
	sse := false
	for _, accept := range r.Header.Values("Accept") {
		if accept == "text/event-stream" {
			sse = true
		}
	}
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		e, ok, err := st.Next(ctx)
		if err != nil || !ok {
			return // client gone or job terminal: either way, done
		}
		if sse {
			if _, err := io.WriteString(w, "data: "); err != nil {
				return
			}
		}
		if err := enc.Encode(e); err != nil {
			return
		}
		if sse {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// metricsResponse answers GET /v1/metrics: the job manager's counters
// plus the HTTP request latency window (the jobs block carries its own
// job-latency window).
type metricsResponse struct {
	Jobs jobs.MetricsSnapshot `json:"jobs"`
	HTTP httpMetrics          `json:"http"`
}

type httpMetrics struct {
	WindowCount   int64   `json:"window_count"`
	WindowAvgMS   float64 `json:"window_avg_ms"`
	WindowMaxMS   float64 `json:"window_max_ms"`
	WindowSeconds float64 `json:"window_seconds"`
}

func (s *Server) metricsReport(w http.ResponseWriter, r *http.Request) {
	lat := s.httpLat.Snapshot()
	writeJSON(w, http.StatusOK, metricsResponse{
		Jobs: s.mgr.Metrics(),
		HTTP: httpMetrics{
			WindowCount:   lat.Count,
			WindowAvgMS:   float64(lat.Avg) / float64(time.Millisecond),
			WindowMaxMS:   float64(lat.Max) / float64(time.Millisecond),
			WindowSeconds: lat.Window.Seconds(),
		},
	})
}

// listRegistry answers GET /v1/registry: the same extension points the
// library exposes (registered workloads and manager families, valid
// strategies), so API clients discover the vocabulary instead of
// hard-coding it.
func (s *Server) listRegistry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workloads  []string `json:"workloads"`
		Managers   []string `json:"managers"`
		Strategies []string `json:"strategies"`
	}{registry.Workloads(), registry.Managers(), cliopts.ValidStrategies})
}

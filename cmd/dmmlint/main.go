// Command dmmlint runs dmmkit's determinism/hygiene/cancellation
// analyzer suite (internal/analysis: detrand, maporder, closecheck,
// ctxflow, pkgdoc, lockspan, errwrap, apitag) over Go packages.
//
// Two modes share one binary:
//
//   - vettool: go vet drives dmmlint through the unitchecker protocol,
//     one package at a time:
//
//     go vet -vettool=$(command -v dmmlint) ./...
//
//   - standalone: any other invocation re-execs `go vet` with itself as
//     the vettool, so the familiar spelling just works:
//
//     dmmlint ./...
//     dmmlint -detrand.pkgs=dmmkit/internal/core/... ./...
//
// Analyzer flags (-detrand.pkgs, -ctxflow.pkgs) pass through in both
// modes. Exit status is non-zero when any diagnostic is reported, so CI
// can gate on it directly.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"dmmkit/internal/analysis"
)

func main() {
	if vetToolInvocation(os.Args[1:]) {
		unitchecker.Main(analysis.All()...) // does not return
	}
	os.Exit(standalone(os.Args[1:]))
}

// vetToolInvocation reports whether the process was started by go vet
// speaking the unitchecker protocol: a -V=full version probe, a -flags
// query, or a single *.cfg unit file (possibly after analyzer flags).
func vetToolInvocation(args []string) bool {
	for _, a := range args {
		switch {
		case a == "-V=full", a == "--V=full", a == "-flags", a == "--flags":
			return true
		case strings.HasSuffix(a, ".cfg"):
			return true
		}
	}
	return false
}

// standalone re-invokes go vet with this binary as the vettool, passing
// every argument (package patterns and analyzer flags) through. With no
// package pattern it defaults to ./... so bare `dmmlint` lints the
// module from the current directory.
func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmmlint: cannot locate own executable: %v\n", err)
		return 2
	}
	hasPattern := false
	for _, a := range args {
		if a == "-h" || a == "--help" || a == "-help" {
			usage()
			return 0
		}
		if !strings.HasPrefix(a, "-") {
			hasPattern = true
		}
	}
	if !hasPattern {
		args = append(args, "./...")
	}
	vet := append([]string{"vet", "-vettool=" + exe}, args...)
	cmd := exec.Command("go", vet...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "dmmlint: %v\n", err)
		return 2
	}
	return 0
}

func usage() {
	fmt.Fprintf(os.Stderr, `dmmlint: dmmkit determinism/hygiene/cancellation lint suite

Usage:
  dmmlint [analyzer flags] [package patterns]      (default pattern ./...)
  go vet -vettool=$(command -v dmmlint) ./...

Analyzers:
`)
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, `
Key flags:
  -detrand.pkgs   deterministic package list (default: the engine set)
  -ctxflow.pkgs   cancellation-checked package list (default: core,trace)
  -lockspan.pkgs  serving-tier package list (default: server/..., pool)
  -apitag.pkgs    wire-schema package list (default: server/...)

See docs/EXTENDING.md "Determinism invariants & lint rules".
`)
}

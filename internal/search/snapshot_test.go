package search

import (
	"bytes"
	"math/rand"
	"testing"

	"dmmkit/internal/dspace"
)

// syntheticFitness is a deterministic stand-in evaluator: fitness is an
// arbitrary but stable function of the genome, with enough spread that
// selection pressure is real and occasional "failures" exercise the
// Failed path.
func syntheticFitness(v dspace.Vector) Result {
	var foot, work int64 = 1, 0
	for t := 0; t < dspace.NumTrees; t++ {
		l := int64(v.Get(dspace.Tree(t)))
		foot += (l + 1) * int64(t%5+1)
		work += (l*l + 3) * int64(t%3+1)
	}
	return Result{
		Vector:    v,
		Footprint: foot % 9973,
		Work:      work % 7919,
		Failed:    foot%97 == 0,
	}
}

func evaluateBatch(batch []dspace.Vector) []Result {
	out := make([]Result, len(batch))
	for i, v := range batch {
		out[i] = syntheticFitness(v)
	}
	return out
}

// snapStrategy is what the snapshot tests drive: every strategy in this
// package implements both halves.
type snapStrategy interface {
	Strategy
	Snapshotter
}

// runToEnd drives the strategy to completion, returning the flattened
// sequence of proposed vectors.
func runToEnd(t *testing.T, s Strategy) []dspace.Vector {
	t.Helper()
	var proposals []dspace.Vector
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("strategy did not terminate")
		}
		batch := s.Next()
		if len(batch) == 0 {
			return proposals
		}
		proposals = append(proposals, batch...)
		s.Observe(evaluateBatch(batch))
	}
}

// runGenerations drives the strategy through exactly n proposed batches.
func runGenerations(t *testing.T, s Strategy, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		batch := s.Next()
		if len(batch) == 0 {
			t.Fatalf("strategy ended after %d generations, wanted %d", i, n)
		}
		s.Observe(evaluateBatch(batch))
	}
}

// TestCountedSourcePreservesStream pins the compatibility guarantee: a
// rand.Rand over countedSource must emit exactly the stream rand.NewSource
// would, so snapshotting does not change any seeded run's results.
func TestCountedSourcePreservesStream(t *testing.T) {
	want := rand.New(rand.NewSource(42))
	got := rand.New(newCountedSource(42))
	for i := 0; i < 2000; i++ {
		switch i % 3 {
		case 0:
			if w, g := want.Int63(), got.Int63(); w != g {
				t.Fatalf("draw %d: Int63 = %d, want %d", i, g, w)
			}
		case 1:
			if w, g := want.Intn(7), got.Intn(7); w != g {
				t.Fatalf("draw %d: Intn = %d, want %d", i, g, w)
			}
		default:
			if w, g := want.Float64(), got.Float64(); w != g {
				t.Fatalf("draw %d: Float64 = %g, want %g", i, g, w)
			}
		}
	}
}

// TestCountedSourceReset pins the fast-forward cursor: resetting to a
// recorded draw count resumes the stream exactly where it left off.
func TestCountedSourceReset(t *testing.T) {
	src := newCountedSource(7)
	for i := 0; i < 137; i++ {
		src.Int63()
	}
	mark := src.n
	var tail []int64
	for i := 0; i < 50; i++ {
		tail = append(tail, src.Int63())
	}

	fresh := newCountedSource(7)
	fresh.reset(mark)
	if fresh.n != mark {
		t.Fatalf("after reset n = %d, want %d", fresh.n, mark)
	}
	for i, want := range tail {
		if got := fresh.Int63(); got != want {
			t.Fatalf("resumed draw %d = %d, want %d", i, got, want)
		}
	}
}

// TestSnapshotResumeIdenticalContinuation is the core resume guarantee:
// snapshot a strategy mid-run, restore into a freshly constructed one,
// and the continuation (every proposal and, for NSGA, the final front)
// is identical to the uninterrupted run.
func TestSnapshotResumeIdenticalContinuation(t *testing.T) {
	cfg := GAConfig{Population: 12, Generations: 10, Patience: 10}
	cases := []struct {
		name string
		mk   func() snapStrategy
	}{
		{"ga", func() snapStrategy { return NewGA(99, cfg) }},
		{"nsga", func() snapStrategy { return NewNSGA(99, cfg) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Uninterrupted reference run.
			ref := tc.mk()
			refProposals := runToEnd(t, ref)

			// Interrupted run: 3 generations, snapshot, abandon.
			first := tc.mk()
			runGenerations(t, first, 3)
			snap, err := first.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			// Snapshot must not perturb the source strategy either.
			firstTail := runToEnd(t, first)

			// Resume into a fresh strategy.
			resumed := tc.mk()
			if err := resumed.Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			resumedTail := runToEnd(t, resumed)

			if !vectorsEqual(firstTail, resumedTail) {
				t.Fatalf("resumed continuation diverged from interrupted strategy's own continuation")
			}
			head := len(refProposals) - len(resumedTail)
			if head < 0 || !vectorsEqual(refProposals[head:], resumedTail) {
				t.Fatalf("resumed continuation diverged from uninterrupted run (head %d, tail %d, total %d)",
					head, len(resumedTail), len(refProposals))
			}

			// Final search products must agree too.
			switch a := ref.(type) {
			case *GA:
				b := resumed.(*GA)
				ab, aok := a.Best()
				bb, bok := b.Best()
				if aok != bok || ab != bb {
					t.Fatalf("resumed best %+v (%v), want %+v (%v)", bb, bok, ab, aok)
				}
			case *NSGA:
				b := resumed.(*NSGA)
				af, bf := a.Front(), b.Front()
				if len(af) != len(bf) {
					t.Fatalf("resumed front has %d results, want %d", len(bf), len(af))
				}
				for i := range af {
					if af[i] != bf[i] {
						t.Fatalf("front[%d] = %+v, want %+v", i, bf[i], af[i])
					}
				}
			}
		})
	}
}

func vectorsEqual(a, b []dspace.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotDeterministicBytes: snapshotting the same state twice
// yields identical bytes (no map-order leakage), so checkpoint files are
// reproducible artifacts.
func TestSnapshotDeterministicBytes(t *testing.T) {
	cfg := GAConfig{Population: 10, Generations: 6, Patience: 6}
	g := NewGA(5, cfg)
	runGenerations(t, g, 2)
	a, err := g.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	b, err := g.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two snapshots of the same state differ:\n%s\n%s", a, b)
	}
}

// TestSnapshotMidGenerationFails pins the generation-barrier contract.
func TestSnapshotMidGenerationFails(t *testing.T) {
	cfg := GAConfig{Population: 8, Generations: 4}
	for _, tc := range []struct {
		name string
		s    snapStrategy
	}{
		{"ga", NewGA(1, cfg)},
		{"nsga", NewNSGA(1, cfg)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batch := tc.s.Next()
			if len(batch) == 0 {
				t.Fatal("no first generation")
			}
			if _, err := tc.s.Snapshot(); err == nil {
				t.Fatal("Snapshot mid-generation succeeded, want error")
			}
			// After Observe the barrier is clear again.
			tc.s.Observe(evaluateBatch(batch))
			if _, err := tc.s.Snapshot(); err != nil {
				t.Fatalf("Snapshot after Observe: %v", err)
			}
		})
	}
}

// TestRestoreRejectsBadSnapshots: malformed or mismatched input errors
// out without panicking or corrupting the receiver.
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	cfg := GAConfig{Population: 8, Generations: 4}
	gaSnap, err := NewGA(3, cfg).Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	t.Run("kind-mismatch", func(t *testing.T) {
		if err := NewNSGA(3, cfg).Restore(gaSnap); err == nil {
			t.Fatal("NSGA restored a GA snapshot, want error")
		}
		if err := NewExhaustive(8).Restore(gaSnap); err == nil {
			t.Fatal("Exhaustive restored a GA snapshot, want error")
		}
	})
	t.Run("seed-mismatch", func(t *testing.T) {
		if err := NewGA(4, cfg).Restore(gaSnap); err == nil {
			t.Fatal("restore with wrong seed succeeded, want error")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		for _, data := range [][]byte{nil, {}, []byte("{"), []byte("not json"), []byte(`{"kind":"ga"`)} {
			if err := NewGA(3, cfg).Restore(data); err == nil {
				t.Fatalf("restore of %q succeeded, want error", data)
			}
		}
	})
	t.Run("invalid-leaf", func(t *testing.T) {
		// Forge a snapshot whose population genome has an out-of-range leaf.
		forged := []byte(`{"kind":"ga","seed":3,"draws":0,"evaluated":[],` +
			`"pop":[{"v":[255,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"f":1,"w":1}],"gen":1,"stale":0}`)
		if err := NewGA(3, cfg).Restore(forged); err == nil {
			t.Fatal("restore of out-of-range genome succeeded, want error")
		}
	})
	t.Run("receiver-intact-after-failure", func(t *testing.T) {
		g := NewGA(3, cfg)
		runGenerations(t, g, 1)
		want := runToEnd(t, cloneViaSnapshot(t, g, cfg))
		if err := g.Restore([]byte("garbage")); err == nil {
			t.Fatal("restore of garbage succeeded, want error")
		}
		if got := runToEnd(t, g); !vectorsEqual(got, want) {
			t.Fatal("failed Restore corrupted the receiver")
		}
	})
}

func cloneViaSnapshot(t *testing.T, g *GA, cfg GAConfig) *GA {
	t.Helper()
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	clone := NewGA(g.src.seed, cfg)
	if err := clone.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return clone
}

// TestExhaustiveSnapshotRoundTrip: the exhaustive cursor round-trips, so
// a resumed exhaustive run does not re-propose its sample.
func TestExhaustiveSnapshotRoundTrip(t *testing.T) {
	e := NewExhaustive(16)
	if batch := e.Next(); len(batch) == 0 {
		t.Fatal("no sample proposed")
	}
	e.Observe(nil)
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored := NewExhaustive(16)
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if batch := restored.Next(); batch != nil {
		t.Fatalf("restored exhaustive proposed %d vectors, want none", len(batch))
	}

	// A fresh (pre-proposal) snapshot restores to a proposing strategy.
	freshSnap, err := NewExhaustive(16).Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	again := NewExhaustive(16)
	if err := again.Restore(freshSnap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if batch := again.Next(); len(batch) == 0 {
		t.Fatal("restored fresh exhaustive proposed nothing")
	}
}

// TestStrategiesImplementSnapshotter keeps the facade honest: every
// built-in strategy satisfies the checkpoint extension.
func TestStrategiesImplementSnapshotter(t *testing.T) {
	for _, s := range []Strategy{NewExhaustive(8), NewGA(1, GAConfig{}), NewNSGA(1, GAConfig{})} {
		if _, ok := s.(Snapshotter); !ok {
			t.Errorf("%T does not implement Snapshotter", s)
		}
	}
}

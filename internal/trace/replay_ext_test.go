// Replay tests live in an external test package: they drive Run with a
// real manager (Kingsley), and the allocator packages now import the
// registry — whose types mention profile, which imports trace — so an
// in-package test would form an import cycle.
package trace_test

import (
	"context"
	"errors"
	"testing"

	"dmmkit/internal/alloc/kingsley"
	"dmmkit/internal/heap"
	"dmmkit/internal/trace"
)

func replayTrace() *trace.Trace {
	b := trace.NewBuilder("sample")
	ids := make([]int64, 0)
	for i := 0; i < 10; i++ {
		ids = append(ids, b.Alloc(int64(100+i*8), i%3))
		b.Tick()
	}
	b.SetPhase(1)
	for _, id := range ids[:5] {
		b.Free(id)
		b.Tick()
	}
	for i := 0; i < 4; i++ {
		ids = append(ids, b.Alloc(int64(2000+i), 7))
	}
	for _, id := range ids[5:] {
		b.Free(id)
	}
	return b.Build()
}

func TestReplayProducesFootprint(t *testing.T) {
	tr := replayTrace()
	m := kingsley.New(heap.New(heap.Config{}))
	res, err := trace.Run(context.Background(), m, tr, trace.RunOpts{SampleEvery: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MaxFootprint <= 0 {
		t.Error("MaxFootprint not positive")
	}
	if res.MaxLive != tr.MaxLiveBytes() {
		t.Errorf("MaxLive = %d, want %d", res.MaxLive, tr.MaxLiveBytes())
	}
	if res.MaxFootprint < res.MaxLive {
		t.Errorf("footprint %d below live bytes %d", res.MaxFootprint, res.MaxLive)
	}
	if len(res.Series) != len(tr.Events) {
		t.Errorf("series has %d points, want %d", len(res.Series), len(tr.Events))
	}
	if res.Overhead() < 1.0 {
		t.Errorf("Overhead = %.2f, want >= 1", res.Overhead())
	}
}

func TestReplayReportsBadTrace(t *testing.T) {
	m := kingsley.New(heap.New(heap.Config{}))
	tr := &trace.Trace{Name: "bad", Events: []trace.Event{{Kind: trace.KindFree, ID: 9}}}
	if _, err := trace.Run(context.Background(), m, tr, trace.RunOpts{}); err == nil {
		t.Error("replay of invalid trace succeeded")
	}
}

func TestReplayNilContextDefaults(t *testing.T) {
	m := kingsley.New(heap.New(heap.Config{}))
	//nolint:staticcheck // deliberate: Run must tolerate a nil ctx
	if _, err := trace.Run(nil, m, replayTrace(), trace.RunOpts{}); err != nil {
		t.Errorf("Run with nil ctx: %v", err)
	}
}

func TestReplayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the replay must stop at the first check
	m := kingsley.New(heap.New(heap.Config{}))
	_, err := trace.Run(ctx, m, replayTrace(), trace.RunOpts{})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
}

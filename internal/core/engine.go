package core

import (
	"context"
	"runtime"
	"sync"

	workpool "dmmkit/internal/pool"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"
)

// Engine runs design-space explorations concurrently. Candidate
// evaluation is embarrassingly parallel — every candidate replays the
// trace against a private simulated heap — so the engine fans evaluation
// out over a worker pool while keeping the result deterministic: the
// returned candidate slice is identical (vectors, footprints, work,
// ordering) at every parallelism level, including 1.
//
// The zero value is a valid engine that uses GOMAXPROCS workers.
type Engine struct {
	// Parallelism is the default worker count for explorations whose
	// options do not set their own; <= 0 means GOMAXPROCS.
	Parallelism int
}

// NewEngine returns an engine with the given default worker count
// (<= 0 means GOMAXPROCS).
func NewEngine(parallelism int) *Engine { return &Engine{Parallelism: parallelism} }

// Explore evaluates a uniform sample of the valid design space against a
// trace on a worker pool, plus the methodology's design when requested.
// The candidate order is deterministic: enumeration order, designed
// candidate last — byte-identical to a sequential run. Cancelling ctx
// stops evaluation early and returns the contiguous prefix of candidates
// already streamed, together with the context's error.
func (e *Engine) Explore(ctx context.Context, tr *trace.Trace, opts ExploreOpts) ([]Candidate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 128
	}
	par := opts.Parallelism
	if par == 0 {
		par = e.Parallelism
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	prof := profile.FromTrace(tr)
	vectors := sampleVectors(opts.MaxCandidates)
	n := len(vectors)
	total := n
	var designed Design
	if opts.IncludeDesigned {
		designed = DesignFor(prof)
		total++
	}
	tr2 := traitsOf(prof)

	out := make([]Candidate, total)
	em := &emitter{total: total, ready: make([]bool, total), opts: &opts}
	err := workpool.Run(ctx, par, total, func(i int) error {
		// Build/replay failures are per-candidate data (Candidate.Err),
		// not exploration failures; only cancellation aborts the run.
		if i < n {
			v := vectors[i]
			out[i] = evaluate(ctx, v, deriveParams(v, tr2, prof), tr, false)
		} else {
			out[i] = evaluate(ctx, designed.Vector, designed.Params, tr, true)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		em.done(i, out)
		return nil
	})
	if err != nil {
		return out[:em.prefix()], err
	}
	return out, nil
}

// emitter serializes the streaming callbacks: OnProgress fires on every
// completion, OnCandidate fires in deterministic index order as soon as a
// candidate and all its predecessors are done. The callbacks run under the
// emitter's lock, so they are never concurrent and never out of order;
// they should not block for long and must not re-enter the engine.
type emitter struct {
	mu    sync.Mutex
	next  int // first index not yet streamed
	count int // completions so far
	ready []bool
	total int
	opts  *ExploreOpts
}

func (em *emitter) done(i int, out []Candidate) {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.count++
	em.ready[i] = true
	if em.opts.OnProgress != nil {
		em.opts.OnProgress(em.count, em.total)
	}
	for em.next < em.total && em.ready[em.next] {
		if em.opts.OnCandidate != nil {
			em.opts.OnCandidate(out[em.next])
		}
		em.next++
	}
}

func (em *emitter) prefix() int {
	em.mu.Lock()
	defer em.mu.Unlock()
	return em.next
}

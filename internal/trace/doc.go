// Package trace defines allocation traces — the interface between the
// dynamic applications and the DM managers — together with binary/JSON
// codecs and a replay engine.
//
// The paper's methodology starts by profiling an application's dynamic
// memory behaviour; here workloads emit traces, profiles are computed from
// traces (internal/profile), and the same trace replays against every
// manager so comparisons are exact (the paper averages 10 input traces per
// case study; the experiment harness does the same with 10 seeds).
package trace

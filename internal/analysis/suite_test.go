package analysis_test

import (
	"testing"

	"dmmkit/internal/analysis"
	"dmmkit/internal/analysis/atest"
)

// Each analyzer runs over its fixture package under testdata/src; the
// fixtures carry // want comments for every violation and compile the
// blessed patterns next to them so suppressions are pinned too.

func TestDetrand(t *testing.T) {
	atest.Run(t, "testdata", analysis.Detrand, "detrandfix",
		map[string]string{"pkgs": "detrandfix"})
}

func TestDetrandScopedToConfiguredPackages(t *testing.T) {
	// A fixture outside the configured -pkgs list must yield zero
	// diagnostics (pkgdocok has no wants, so any report fails the run).
	atest.Run(t, "testdata", analysis.Detrand, "pkgdocok",
		map[string]string{"pkgs": "dmmkit/internal/core"})
}

func TestMapOrder(t *testing.T) {
	atest.Run(t, "testdata", analysis.MapOrder, "maporderfix", nil)
}

func TestCloseCheck(t *testing.T) {
	atest.Run(t, "testdata", analysis.CloseCheck, "closecheckfix", nil)
}

func TestCtxFlow(t *testing.T) {
	atest.Run(t, "testdata", analysis.CtxFlow, "ctxflowfix",
		map[string]string{"pkgs": "ctxflowfix"})
}

func TestLockSpan(t *testing.T) {
	atest.Run(t, "testdata", analysis.LockSpan, "lockspanfix",
		map[string]string{"pkgs": "lockspanfix"})
}

func TestLockSpanScopedToConfiguredPackages(t *testing.T) {
	// A fixture outside the configured -pkgs list must yield zero
	// diagnostics (pkgdocok has no wants, so any report fails the run).
	atest.Run(t, "testdata", analysis.LockSpan, "pkgdocok",
		map[string]string{"pkgs": "dmmkit/internal/server/..."})
}

func TestErrWrap(t *testing.T) {
	atest.Run(t, "testdata", analysis.ErrWrap, "errwrapfix", nil)
}

func TestAPITag(t *testing.T) {
	atest.Run(t, "testdata", analysis.APITag, "apitagfix",
		map[string]string{"pkgs": "apitagfix"})
}

func TestAPITagScopedToConfiguredPackages(t *testing.T) {
	atest.Run(t, "testdata", analysis.APITag, "pkgdocok",
		map[string]string{"pkgs": "dmmkit/internal/server/..."})
}

func TestPkgDoc(t *testing.T) {
	atest.Run(t, "testdata", analysis.PkgDoc, "pkgdocfix", nil)
}

func TestPkgDocDocumented(t *testing.T) {
	atest.Run(t, "testdata", analysis.PkgDoc, "pkgdocok", nil)
}

func TestAllStable(t *testing.T) {
	all := analysis.All()
	if len(all) != 8 {
		t.Fatalf("suite has %d analyzers, want 8", len(all))
	}
	names := []string{"detrand", "maporder", "closecheck", "ctxflow", "pkgdoc", "lockspan", "errwrap", "apitag"}
	for i, a := range all {
		if a.Name != names[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, names[i])
		}
	}
}

// Package lea implements a Lea-style allocator: the dlmalloc policy that
// the paper identifies as the basis of Linux-based systems and uses as its
// strongest general-purpose baseline.
//
// The implementation follows dlmalloc 2.7's policy elements as described
// in Wilson et al.'s survey and Lea's own documentation:
//
//   - Boundary tags: every block has a 4-byte size/status header; free
//     blocks additionally carry a 4-byte footer, enabling constant-time
//     bidirectional coalescing. (Real dlmalloc overlaps the footer with
//     the neighbour's prev_size slot; here the footer is reserved inside
//     the block, costing 4 bytes more per block — documented.)
//   - Segregated bins: exact-spaced small bins (8-byte spacing up to 504
//     bytes gross) and logarithmically spaced, size-sorted large bins,
//     searched best-fit.
//   - Deferred coalescing for tiny blocks ("fastbins", gross <= 80
//     bytes): freed tiny blocks keep their used bit and are recycled
//     LIFO without merging until a consolidation pass runs. This is the
//     "coalesce seldomly" behaviour the paper ascribes to Lea.
//   - A wilderness (top) chunk bordering the program break, extended via
//     sbrk and trimmed back to the system when it exceeds TrimThreshold.
//   - mmap for huge requests (>= MmapThreshold), returned to the system
//     on free.
//
// In the design space: A1=doubly-linked, A2=many-variable, A3=both tags,
// A4=size+status, A5=split+coalesce, B1=pool-per-class (bins),
// B4=exact+log classes, C1=best fit, D2=deferred (fastbins) /
// always (others), E2=always.
package lea

package dmmkit_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync/atomic"
	"testing"

	"dmmkit"
)

func TestPublicAPIPipeline(t *testing.T) {
	// Build a small trace through the public builder.
	b := dmmkit.NewTraceBuilder("api")
	var ids []int64
	for i := 0; i < 200; i++ {
		ids = append(ids, b.Alloc(int64(64+i%5*100), 0))
		if len(ids) > 16 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	for _, id := range ids {
		b.Free(id)
	}
	tr := b.Build()

	prof := dmmkit.Profile(tr)
	if prof.Allocs != 200 {
		t.Fatalf("Allocs = %d, want 200", prof.Allocs)
	}
	design := dmmkit.Design(prof)
	if err := dmmkit.ValidateVector(design.Vector); err != nil {
		t.Fatalf("designed vector invalid: %v", err)
	}
	mgr, err := design.Build(dmmkit.NewHeap())
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmmkit.Replay(context.Background(), mgr, tr, dmmkit.ReplayOpts{SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFootprint < res.MaxLive {
		t.Errorf("footprint %d below live %d", res.MaxFootprint, res.MaxLive)
	}
	if len(res.Series) == 0 {
		t.Error("no series sampled")
	}
}

func TestPublicBaselines(t *testing.T) {
	for _, mk := range []func() dmmkit.Manager{
		func() dmmkit.Manager { return dmmkit.NewKingsley(dmmkit.NewHeap()) },
		func() dmmkit.Manager { return dmmkit.NewLea(dmmkit.NewHeap()) },
		func() dmmkit.Manager { return dmmkit.NewRegions(dmmkit.NewHeap(), nil) },
		func() dmmkit.Manager { return dmmkit.NewObstack(dmmkit.NewHeap()) },
	} {
		m := mk()
		p, err := m.Alloc(dmmkit.Request{Size: 100})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if err := m.Free(p); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if m.Stats().Allocs != 1 {
			t.Errorf("%s: stats not recorded", m.Name())
		}
	}
}

func TestPublicWorkloadTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation in -short mode")
	}
	drr := dmmkit.DRRTrace(dmmkit.DRRConfig{Seed: 1, Net: dmmkit.NetConfig{Phases: 2, PhaseMs: 100}})
	if err := drr.Validate(); err != nil {
		t.Errorf("DRR trace invalid: %v", err)
	}
	recon := dmmkit.Recon3DTrace(dmmkit.Recon3DConfig{Seed: 1, Pairs: 1})
	if err := recon.Validate(); err != nil {
		t.Errorf("recon3d trace invalid: %v", err)
	}
	render := dmmkit.Render3DTrace(dmmkit.Render3DConfig{Seed: 1, Detail: 100, Frames: 8})
	if err := render.Validate(); err != nil {
		t.Errorf("render3d trace invalid: %v", err)
	}
}

func TestLoadTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := dmmkit.NewTraceBuilder("file")
	id := b.Alloc(128, 1)
	b.Free(id)
	tr := b.Build()

	binPath := filepath.Join(dir, "t.trace")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := dmmkit.LoadTrace(binPath)
	if err != nil {
		t.Fatalf("LoadTrace(binary): %v", err)
	}
	if len(got.Events) != 2 {
		t.Errorf("loaded %d events, want 2", len(got.Events))
	}

	jsonPath := filepath.Join(dir, "t.json")
	f, err = os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = dmmkit.LoadTrace(jsonPath)
	if err != nil {
		t.Fatalf("LoadTrace(json): %v", err)
	}
	if got.Name != "file" {
		t.Errorf("loaded name %q", got.Name)
	}
}

// TestLoadTraceCorruptBinaryReportsBothErrors exercises the errors.Join
// path: a truncated binary trace must surface the binary decoder's
// failure, not just the (misleading) JSON error from the fallback.
func TestLoadTraceCorruptBinaryReportsBothErrors(t *testing.T) {
	dir := t.TempDir()
	b := dmmkit.NewTraceBuilder("trunc")
	var ids []int64
	for i := 0; i < 50; i++ {
		ids = append(ids, b.Alloc(int64(100+i), 0))
	}
	for _, id := range ids {
		b.Free(id)
	}
	tr := b.Build()
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-events: the magic still matches, so this is a
	// corrupt binary trace, not a JSON file.
	truncated := buf.Bytes()[:buf.Len()/2]
	path := filepath.Join(dir, "trunc.trace")
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := dmmkit.LoadTrace(path)
	if err == nil {
		t.Fatal("LoadTrace accepted a truncated binary trace")
	}
	msg := err.Error()
	if !strings.Contains(msg, "trace: event") && !strings.Contains(msg, "EOF") {
		t.Errorf("error does not mention the binary decoder's failure: %v", err)
	}
	if !strings.Contains(msg, "invalid character") {
		t.Errorf("error does not mention the JSON decoder's failure: %v", err)
	}
}

var facadeSeq atomic.Int64

func TestRegistryFacade(t *testing.T) {
	for _, want := range []string{"kingsley", "lea", "regions", "obstack", "custom", "designed"} {
		if !slices.Contains(dmmkit.Managers(), want) {
			t.Errorf("Managers() = %v missing built-in %q", dmmkit.Managers(), want)
		}
	}
	for _, want := range []string{"drr", "recon3d", "render3d"} {
		if !slices.Contains(dmmkit.Workloads(), want) {
			t.Errorf("Workloads() = %v missing built-in %q", dmmkit.Workloads(), want)
		}
	}

	// Build a workload and a profile-requiring manager through the
	// registry, then replay end to end.
	tr, err := dmmkit.BuildWorkload("drr", dmmkit.WorkloadOpts{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := dmmkit.Profile(tr)
	for _, name := range []string{"kingsley", "custom"} {
		m, err := dmmkit.NewManagerByName(name, nil, prof)
		if err != nil {
			t.Fatalf("NewManagerByName(%q): %v", name, err)
		}
		res, err := dmmkit.Replay(context.Background(), m, tr, dmmkit.ReplayOpts{})
		if err != nil {
			t.Fatalf("replay on %q: %v", name, err)
		}
		if res.MaxFootprint < res.MaxLive {
			t.Errorf("%q: footprint %d below live %d", name, res.MaxFootprint, res.MaxLive)
		}
	}

	// User registrations extend the same namespace the CLIs consume. The
	// registry is process-global, so the name carries a sequence number to
	// survive same-process reruns (go test -count=N).
	name := fmt.Sprintf("test-facade-mgr-%d", facadeSeq.Add(1))
	dmmkit.RegisterManager(name, func(h *dmmkit.Heap, p *dmmkit.AppProfile) (dmmkit.Manager, error) {
		return dmmkit.NewKingsley(h), nil
	})
	if _, err := dmmkit.NewManagerByName(name, nil, nil); err != nil {
		t.Errorf("user-registered manager not constructible: %v", err)
	}

	if _, err := dmmkit.NewManagerByName("custom", nil, nil); err == nil {
		t.Error("custom manager built without a profile")
	}
}

func TestEnumerateAndExploreSmall(t *testing.T) {
	n := dmmkit.EnumerateVectors(func(dmmkit.Vector) bool { return true })
	if n < 100000 {
		t.Errorf("valid space only %d points", n)
	}
	order := dmmkit.TraversalOrder()
	if len(order) == 0 || order[0] != dmmkit.TreeBlockSizes {
		t.Error("traversal order does not start at A2 (block sizes)")
	}
	var bad dmmkit.Vector
	bad.Set(dmmkit.TreeBlockTags, dmmkit.NoTags)
	bad.Set(dmmkit.TreeSplitWhen, dmmkit.Always)
	if msgs := dmmkit.ExplainVector(bad); len(msgs) == 0 {
		t.Error("ExplainVector found no violations in a bad vector")
	}
}

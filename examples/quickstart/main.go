// Quickstart: profile an application's allocation behaviour, let the
// methodology design a custom DM manager, and compare its footprint
// against the general-purpose baselines.
package main

import (
	"context"
	"fmt"
	"log"

	"dmmkit"
)

func main() {
	// 1. Record the application's allocation trace. Here: a toy message
	// queue that buffers variable-size messages with bursty arrivals.
	b := dmmkit.NewTraceBuilder("quickstart")
	var queue []int64
	sizes := []int64{48, 512, 1500, 96, 256}
	for i := 0; i < 5000; i++ {
		if i%3 != 0 || len(queue) == 0 {
			queue = append(queue, b.Alloc(sizes[i%len(sizes)], 0))
		} else {
			b.Free(queue[0])
			queue = queue[1:]
		}
		b.Tick()
	}
	for _, id := range queue {
		b.Free(id)
	}
	tr := b.Build()

	// 2. Profile it: block-size population, lifetimes, phases.
	prof := dmmkit.Profile(tr)
	fmt.Printf("profile: %d allocs, %d distinct sizes in [%d,%d], live peak %d B\n\n",
		prof.Allocs, prof.DistinctSizes, prof.MinSize, prof.MaxSize, prof.MaxLiveBytes)

	// 3. Run the methodology: the ordered walk over the decision trees.
	design := dmmkit.Design(prof)
	fmt.Println("methodology decisions:")
	fmt.Println(design.String())

	// 4. Build the custom manager and replay the trace on it and on the
	// general-purpose baselines.
	custom, err := design.Build(dmmkit.NewHeap())
	if err != nil {
		log.Fatal(err)
	}
	managers := []dmmkit.Manager{
		custom,
		dmmkit.NewLea(dmmkit.NewHeap()),
		dmmkit.NewKingsley(dmmkit.NewHeap()),
	}
	fmt.Printf("%-12s %14s %12s\n", "manager", "max footprint", "vs live peak")
	for _, m := range managers {
		res, err := dmmkit.Replay(context.Background(), m, tr, dmmkit.ReplayOpts{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12d B %11.2fx\n", m.Name(), res.MaxFootprint, res.Overhead())
	}
}

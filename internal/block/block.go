package block

import (
	"fmt"

	"dmmkit/internal/heap"
)

// Tags enumerates the A3 "Block tags" decision: which boundary tag fields a
// block carries.
type Tags uint8

const (
	// TagsNone reserves no metadata; block sizes must be implicit (fixed
	// per pool).
	TagsNone Tags = iota
	// TagsHeader reserves a header before the payload.
	TagsHeader
	// TagsBoth reserves a header and a footer (full boundary tags),
	// enabling constant-time backward coalescing.
	TagsBoth
)

// String returns the leaf name used in the paper's tree diagrams.
func (t Tags) String() string {
	switch t {
	case TagsNone:
		return "none"
	case TagsHeader:
		return "header"
	case TagsBoth:
		return "header+footer"
	}
	return fmt.Sprintf("Tags(%d)", uint8(t))
}

// Info is the A4 "Block recorded info" decision: a bit set of fields
// recorded inside the tags.
type Info uint8

const (
	// InfoSize records the block's gross size.
	InfoSize Info = 1 << iota
	// InfoStatus records used/free status bits (own and previous block).
	InfoStatus
	// InfoPrevSize records the previous neighbour's gross size in the
	// header, enabling backward coalescing without footers.
	InfoPrevSize
)

// Has reports whether all bits in q are recorded.
func (i Info) Has(q Info) bool { return i&q == q }

// String returns the leaf name used in the paper's tree diagrams.
func (i Info) String() string {
	if i == 0 {
		return "none"
	}
	s := ""
	if i.Has(InfoSize) {
		s += "+size"
	}
	if i.Has(InfoStatus) {
		s += "+status"
	}
	if i.Has(InfoPrevSize) {
		s += "+prevsize"
	}
	return s[1:]
}

// Links enumerates the free-list link fields kept in the payload of free
// blocks (the A1 "Block structure" DDT decides how many are needed).
type Links uint8

const (
	// LinksNone keeps no links (bitmap or implicit structures).
	LinksNone Links = iota
	// LinksSingle keeps one forward link (singly linked list).
	LinksSingle
	// LinksDouble keeps forward and backward links (doubly linked list).
	LinksDouble
)

// Bytes returns the payload bytes the links occupy while a block is free.
func (l Links) Bytes() int64 {
	switch l {
	case LinksSingle:
		return 4
	case LinksDouble:
		return 8
	}
	return 0
}

// Layout is a concrete block layout: the combination of A3 and A4 decisions
// plus the free-list link requirement.
type Layout struct {
	Tags  Tags
	Info  Info
	Links Links
}

// Validate reports whether the layout is self-consistent: tags imply some
// recorded info and vice versa.
func (l Layout) Validate() error {
	if l.Tags == TagsNone && l.Info != 0 {
		return fmt.Errorf("block: layout records %v with no tags to store them", l.Info)
	}
	if l.Tags != TagsNone && !l.Info.Has(InfoSize) {
		return fmt.Errorf("block: %v tags require at least the size field", l.Tags)
	}
	return nil
}

// HeaderBytes returns the bytes reserved before the payload.
func (l Layout) HeaderBytes() int64 {
	if l.Tags == TagsNone {
		return 0
	}
	n := int64(4) // size|status word
	if l.Info.Has(InfoPrevSize) {
		n += 4
	}
	return n
}

// FooterBytes returns the bytes reserved after the payload.
func (l Layout) FooterBytes() int64 {
	if l.Tags == TagsBoth {
		return 4
	}
	return 0
}

// Overhead returns the per-block metadata bytes (header + footer).
func (l Layout) Overhead() int64 { return l.HeaderBytes() + l.FooterBytes() }

// MinBlock returns the smallest legal gross block size: metadata plus room
// for the free-list links, rounded up to the heap alignment.
func (l Layout) MinBlock() int64 {
	n := l.Overhead() + l.Links.Bytes()
	if n < heap.Align {
		n = heap.Align
	}
	return (n + heap.Align - 1) &^ (heap.Align - 1)
}

// GrossFor returns the gross block size needed to satisfy a payload request
// of n bytes under this layout.
func (l Layout) GrossFor(n int64) int64 {
	g := n + l.Overhead()
	if g < l.MinBlock() {
		g = l.MinBlock()
	}
	return (g + heap.Align - 1) &^ (heap.Align - 1)
}

const (
	usedBit     = 0x1
	prevUsedBit = 0x2
	sizeMask    = ^uint32(0x7)
)

// View binds a Layout to a heap, providing typed block accessors. The
// zero-size methods make the cost of each metadata access explicit at call
// sites; managers charge mm cost units alongside.
type View struct {
	H *heap.Heap
	L Layout
}

// NewView returns a View for layout l over h, panicking on invalid layouts
// (a programmer error: the design-space constraints forbid them).
func NewView(h *heap.Heap, l Layout) View {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return View{H: h, L: l}
}

// SetHeader writes the size/status header of the block at b.
func (v View) SetHeader(b heap.Addr, size int64, used, prevUsed bool) {
	if v.L.Tags == TagsNone {
		panic("block: SetHeader on layout without tags")
	}
	w := uint32(size) & sizeMask
	if v.L.Info.Has(InfoStatus) {
		if used {
			w |= usedBit
		}
		if prevUsed {
			w |= prevUsedBit
		}
	}
	v.H.PutU32(b, w)
}

// Size returns the gross size recorded in the header of the block at b.
func (v View) Size(b heap.Addr) int64 { return int64(v.H.U32(b) & sizeMask) }

// Used reports the used bit of the block at b.
func (v View) Used(b heap.Addr) bool { return v.H.U32(b)&usedBit != 0 }

// SetUsed rewrites only the used bit of the block at b.
func (v View) SetUsed(b heap.Addr, used bool) {
	w := v.H.U32(b)
	if used {
		w |= usedBit
	} else {
		w &^= usedBit
	}
	v.H.PutU32(b, w)
}

// PrevUsed reports the previous-block-used bit of the block at b.
func (v View) PrevUsed(b heap.Addr) bool { return v.H.U32(b)&prevUsedBit != 0 }

// SetPrevUsed rewrites only the prevUsed bit of the block at b.
func (v View) SetPrevUsed(b heap.Addr, used bool) {
	w := v.H.U32(b)
	if used {
		w |= prevUsedBit
	} else {
		w &^= prevUsedBit
	}
	v.H.PutU32(b, w)
}

// SetPrevSize records the previous neighbour's gross size (InfoPrevSize
// layouts only).
func (v View) SetPrevSize(b heap.Addr, size int64) {
	if !v.L.Info.Has(InfoPrevSize) {
		panic("block: SetPrevSize without InfoPrevSize")
	}
	v.H.PutU32(b+4, uint32(size))
}

// PrevSizeField returns the previous neighbour's gross size from the header
// (InfoPrevSize layouts only).
func (v View) PrevSizeField(b heap.Addr) int64 {
	if !v.L.Info.Has(InfoPrevSize) {
		panic("block: PrevSizeField without InfoPrevSize")
	}
	return int64(v.H.U32(b + 4))
}

// WriteFooter copies the block's size into its footer (TagsBoth layouts).
// Following dlmalloc, footers need only be valid on free blocks, but
// writing them unconditionally is also legal.
func (v View) WriteFooter(b heap.Addr) {
	v.WriteFooterSized(b, v.Size(b))
}

// WriteFooterSized writes the footer of the block at b whose gross size
// the caller already holds, skipping the header re-read.
func (v View) WriteFooterSized(b heap.Addr, size int64) {
	if v.L.Tags != TagsBoth {
		panic("block: WriteFooter without footer tags")
	}
	v.H.PutU32(b+heap.Addr(size)-4, uint32(size))
}

// PrevFooterSize reads the size stored in the previous neighbour's footer,
// which sits immediately before b (TagsBoth layouts, prev block free).
func (v View) PrevFooterSize(b heap.Addr) int64 {
	if v.L.Tags != TagsBoth {
		panic("block: PrevFooterSize without footer tags")
	}
	return int64(v.H.U32(b-4) & sizeMask)
}

// Next returns the address of the next physical neighbour.
func (v View) Next(b heap.Addr) heap.Addr { return b + heap.Addr(v.Size(b)) }

// Payload returns the application-visible address of the block at b.
func (v View) Payload(b heap.Addr) heap.Addr { return b + heap.Addr(v.L.HeaderBytes()) }

// Block returns the block address for a payload address.
func (v View) Block(p heap.Addr) heap.Addr { return p - heap.Addr(v.L.HeaderBytes()) }

// UserBytes returns the payload capacity of the block at b.
func (v View) UserBytes(b heap.Addr) int64 { return v.Size(b) - v.L.Overhead() }

// Free-list links live at the start of the payload while a block is free.

// NextFree returns the forward free-list link of the free block at b.
func (v View) NextFree(b heap.Addr) heap.Addr { return v.H.Ptr(v.Payload(b)) }

// SetNextFree writes the forward free-list link of the free block at b.
func (v View) SetNextFree(b, to heap.Addr) { v.H.PutPtr(v.Payload(b), to) }

// PrevFree returns the backward free-list link (LinksDouble layouts).
func (v View) PrevFree(b heap.Addr) heap.Addr {
	if v.L.Links != LinksDouble {
		panic("block: PrevFree without double links")
	}
	return v.H.Ptr(v.Payload(b) + 4)
}

// SetPrevFree writes the backward free-list link (LinksDouble layouts).
func (v View) SetPrevFree(b, to heap.Addr) {
	if v.L.Links != LinksDouble {
		panic("block: SetPrevFree without double links")
	}
	v.H.PutPtr(v.Payload(b)+4, to)
}

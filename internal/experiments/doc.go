// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5): the maximum-memory-footprint comparison (Table 1),
// the footprint-over-time curves for DRR (Figure 5), the execution-time
// overhead claim, the decision-order ablation (Figure 4), and the
// static-vs-dynamic sizing motivation from Sec. 1.
//
// Managers and workloads are resolved through the registry (every cell of
// Table 1 is one registry lookup), and the drivers fan independent cells
// out over a worker pool — each cell replays against a private simulated
// heap, so workload×seed cells parallelize embarrassingly while the
// reduction stays deterministic.
//
// Absolute bytes differ from the paper — the workloads are synthetic
// reconstructions — but the shape (ordering of managers, rough improvement
// factors, crossovers) is the reproduction target; EXPERIMENTS.md records
// paper-vs-measured values side by side.
package experiments

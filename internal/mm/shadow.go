package mm

import "dmmkit/internal/heap"

// Shadow is debug/measurement bookkeeping mapping live payload addresses to
// their requested sizes. Real embedded allocators keep no such table; it
// exists so managers can report accurate LiveBytes statistics and reject
// bad frees deterministically. It lives outside the simulated arena and is
// deliberately NOT counted in any footprint figure.
//
// Every Alloc and Free crosses this table, so it is kept off Go's map: an
// open-addressing table with linear probing and backward-shift deletion.
// Payload addresses are 8-aligned and non-zero, so the zero address marks
// empty slots and the low bits carry no information for the hash.
type Shadow struct {
	slots []shadowSlot
	n     int
	mask  uint32
}

type shadowSlot struct {
	p   heap.Addr // heap.Nil = empty
	req int64
}

const shadowMinSize = 16 // power of two

// hash spreads an 8-aligned address over the table (Fibonacci hashing).
func (s *Shadow) hash(p heap.Addr) uint32 {
	return ((uint32(p) >> 3) * 2654435761) & s.mask
}

// Add records a live payload address with its requested size.
func (s *Shadow) Add(p heap.Addr, req int64) {
	if s.n*4 >= len(s.slots)*3 { // load factor 3/4, and initial allocation
		s.grow()
	}
	i := s.hash(p)
	for s.slots[i].p != heap.Nil {
		if s.slots[i].p == p {
			s.slots[i].req = req
			return
		}
		i = (i + 1) & s.mask
	}
	s.slots[i] = shadowSlot{p: p, req: req}
	s.n++
}

// Remove forgets a payload address, returning its requested size. ok is
// false when p is not live (bad or double free).
func (s *Shadow) Remove(p heap.Addr) (req int64, ok bool) {
	if s.n == 0 {
		return 0, false
	}
	i := s.hash(p)
	for s.slots[i].p != p {
		if s.slots[i].p == heap.Nil {
			return 0, false
		}
		i = (i + 1) & s.mask
	}
	req = s.slots[i].req
	s.n--
	// Backward-shift deletion keeps probe chains intact without
	// tombstones: each following entry whose home slot is outside the
	// cycle (i, j] moves back into the hole.
	j := i
	for {
		s.slots[i] = shadowSlot{}
		for {
			j = (j + 1) & s.mask
			if s.slots[j].p == heap.Nil {
				return req, true
			}
			home := s.hash(s.slots[j].p)
			if (j-home)&s.mask >= (j-i)&s.mask {
				break
			}
		}
		s.slots[i] = s.slots[j]
		i = j
	}
}

// Contains reports whether p is live.
func (s *Shadow) Contains(p heap.Addr) bool {
	if s.n == 0 {
		return false
	}
	for i := s.hash(p); ; i = (i + 1) & s.mask {
		switch s.slots[i].p {
		case p:
			return true
		case heap.Nil:
			return false
		}
	}
}

// Len returns the number of live blocks.
func (s *Shadow) Len() int { return s.n }

// Reset clears the shadow table.
func (s *Shadow) Reset() { s.slots, s.n, s.mask = nil, 0, 0 }

// Clone returns an independent copy of the table.
func (s *Shadow) Clone() Shadow {
	c := *s
	if s.slots != nil {
		c.slots = append([]shadowSlot(nil), s.slots...)
	}
	return c
}

// grow doubles the table (or creates it) and rehashes every live entry.
func (s *Shadow) grow() {
	old := s.slots
	size := 2 * len(old)
	if size < shadowMinSize {
		size = shadowMinSize
	}
	s.slots = make([]shadowSlot, size)
	s.mask = uint32(size - 1)
	for _, e := range old {
		if e.p == heap.Nil {
			continue
		}
		i := s.hash(e.p)
		for s.slots[i].p != heap.Nil {
			i = (i + 1) & s.mask
		}
		s.slots[i] = e
	}
}

package search

import "dmmkit/internal/dspace"

// Exhaustive is the original exploration policy behind the Strategy
// interface: one generation holding a uniform ceiling-stride sample of at
// most Max valid vectors, in enumeration order. It learns nothing from
// results — Observe is a no-op — so its proposals depend only on the
// constraint tables, which is what makes the classic Explore output
// reproducible without a seed.
type Exhaustive struct {
	// Max caps the sample size (default 128, matching ExploreOpts).
	Max int
	// Fix restricts sampling to a pinned subspace (nil = whole space).
	Fix Fixed

	proposed bool
}

// NewExhaustive returns an exhaustive stride sampler proposing at most max
// vectors (max <= 0 selects the default of 128).
func NewExhaustive(max int) *Exhaustive { return &Exhaustive{Max: max} }

// Next proposes the whole sample on the first call and ends the
// exploration on the second.
func (e *Exhaustive) Next() []dspace.Vector {
	if e.proposed {
		return nil
	}
	e.proposed = true
	max := e.Max
	if max <= 0 {
		max = 128
	}
	return Sample(max, e.Fix)
}

// Observe discards the results: exhaustive sampling is non-adaptive.
func (e *Exhaustive) Observe([]Result) {}

package trace

import (
	"fmt"
	"slices"
)

// Kind distinguishes allocation from deallocation events.
type Kind uint8

// Event kinds.
const (
	KindAlloc Kind = iota
	KindFree
)

// Event is one dynamic-memory operation performed by the application.
type Event struct {
	Kind  Kind
	ID    int64 // allocation identity; Free refers to a prior Alloc
	Size  int64 // requested payload bytes (alloc events)
	Tag   int32 // allocation site / data type
	Phase int32 // behavioural phase of the application
	Tick  int64 // logical application time
}

// Trace is a sequence of events with a name for reporting.
type Trace struct {
	Name   string
	Events []Event
}

// Validate checks trace well-formedness: positive sizes, frees matching
// live allocations, no double frees.
func (t *Trace) Validate() error {
	live := make(map[int64]bool, len(t.Events)/2)
	for i, e := range t.Events {
		switch e.Kind {
		case KindAlloc:
			if e.Size <= 0 {
				return fmt.Errorf("trace %q: event %d: alloc size %d", t.Name, i, e.Size)
			}
			if live[e.ID] {
				return fmt.Errorf("trace %q: event %d: duplicate alloc id %d", t.Name, i, e.ID)
			}
			live[e.ID] = true
		case KindFree:
			if !live[e.ID] {
				return fmt.Errorf("trace %q: event %d: free of dead id %d", t.Name, i, e.ID)
			}
			delete(live, e.ID)
		default:
			return fmt.Errorf("trace %q: event %d: bad kind %d", t.Name, i, e.Kind)
		}
	}
	return nil
}

// LiveAtEnd returns the number of allocations never freed.
func (t *Trace) LiveAtEnd() int {
	live := make(map[int64]bool)
	for _, e := range t.Events {
		if e.Kind == KindAlloc {
			live[e.ID] = true
		} else {
			delete(live, e.ID)
		}
	}
	return len(live)
}

// MaxLiveBytes returns the peak of concurrently requested bytes: the lower
// bound any manager's footprint must exceed.
func (t *Trace) MaxLiveBytes() int64 {
	sizes := make(map[int64]int64)
	var cur, max int64
	for _, e := range t.Events {
		if e.Kind == KindAlloc {
			sizes[e.ID] = e.Size
			cur += e.Size
			if cur > max {
				max = cur
			}
		} else {
			cur -= sizes[e.ID]
			delete(sizes, e.ID)
		}
	}
	return max
}

// Builder incrementally constructs a well-formed trace; workloads use it
// so that IDs, phases and ticks stay consistent. A Builder either
// materializes the events (NewBuilder) or streams them into an EventSink
// as they are emitted (NewBuilderTo) — in sink mode nothing but the live
// allocation table is retained, so generation memory is O(live set)
// regardless of trace length.
type Builder struct {
	t      Trace
	nextID int64
	tick   int64
	phase  int32
	live   map[int64]int64 // id -> size of currently live allocations
	cur    int64           // currently live bytes
	max    int64           // peak of cur
	count  int             // events emitted
	sink   EventSink       // nil: append to t.Events
	err    error           // first sink failure; latched
}

// NewBuilder returns a Builder for a trace with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{t: Trace{Name: name}, live: make(map[int64]int64)}
}

// NewBuilderTo returns a Builder that streams every event into sink
// instead of materializing the trace: Build returns a Trace carrying only
// the name. Sink failures latch into Err; events after a failure are
// dropped (the generator has no error path, so it runs to completion and
// the caller checks Err once).
func NewBuilderTo(name string, sink EventSink) *Builder {
	b := &Builder{t: Trace{Name: name}, live: make(map[int64]int64), sink: sink}
	if sink != nil {
		b.err = sink.Begin(name)
	}
	return b
}

// emit routes one event to the sink or the event slice.
func (b *Builder) emit(e Event) {
	b.count++
	if b.sink != nil {
		if b.err == nil {
			b.err = b.sink.WriteEvent(e)
		}
		return
	}
	b.t.Events = append(b.t.Events, e)
}

// SetPhase switches the behavioural phase recorded on subsequent events.
func (b *Builder) SetPhase(p int) { b.phase = int32(p) }

// Tick advances logical time by one.
func (b *Builder) Tick() { b.tick++ }

// Alloc appends an allocation event and returns its ID.
func (b *Builder) Alloc(size int64, tag int) int64 {
	if size <= 0 {
		panic(fmt.Sprintf("trace: builder alloc size %d", size))
	}
	id := b.nextID
	b.nextID++
	b.live[id] = size
	b.cur += size
	if b.cur > b.max {
		b.max = b.cur
	}
	b.emit(Event{
		Kind: KindAlloc, ID: id, Size: size, Tag: int32(tag), Phase: b.phase, Tick: b.tick,
	})
	return id
}

// Free appends a deallocation event for a live ID.
func (b *Builder) Free(id int64) {
	size, ok := b.live[id]
	if !ok {
		panic(fmt.Sprintf("trace: builder free of dead id %d", id))
	}
	delete(b.live, id)
	b.cur -= size
	b.emit(Event{Kind: KindFree, ID: id, Phase: b.phase, Tick: b.tick})
}

// LiveIDs returns the currently live allocation IDs in ascending order,
// so callers that emit or compare the live set see a deterministic
// sequence regardless of map iteration order.
func (b *Builder) LiveIDs() []int64 {
	out := make([]int64, 0, len(b.live))
	for id := range b.live {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// EventCount returns the number of events emitted so far (in sink mode,
// the events written to the sink).
func (b *Builder) EventCount() int { return b.count }

// MaxLiveBytes returns the peak of concurrently live bytes emitted so
// far; in materializing mode it equals Build().MaxLiveBytes().
func (b *Builder) MaxLiveBytes() int64 { return b.max }

// Err returns the first sink failure, or nil. Builders without a sink
// never fail.
func (b *Builder) Err() error { return b.err }

// Build finalizes and returns the trace. In sink mode the returned trace
// carries the name only (the events went to the sink); check Err. The
// builder must not be reused.
func (b *Builder) Build() *Trace { return &b.t }

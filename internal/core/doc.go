// Package core implements the paper's primary contribution: custom dynamic
// memory managers composed from the DM-management design space of Atienza
// et al. (DATE 2004).
//
// A core.Custom manager is built from one dspace.Vector — one leaf per
// orthogonal decision tree — plus numeric Params that the methodology
// derives from the application profile ("those decisions of the final
// custom DM manager that depend on its particular run-time behaviour",
// Sec. 5). The same engine therefore realizes Kingsley-like,
// Lea-like, region-like and the paper's custom managers, differing only in
// the decision vector, which is exactly the premise of the design space.
//
// The Designer type implements the Sec. 4 methodology: it walks the trees
// in the published order, applying the footprint heuristics and constraint
// propagation to produce a vector (and params) from a profile. The
// GlobalManager composes per-phase atomic managers (Sec. 3.3).
//
// The Engine explores the design space concurrently: a search strategy
// (internal/search) proposes vectors one generation at a time — the
// exhaustive stride sampler, the seeded genetic algorithm, or the
// NSGA-II multi-objective variant — and the engine evaluates each
// generation on a worker pool (internal/pool), streaming candidates in a
// deterministic order that is identical at every parallelism level. With
// ExploreOpts.Objectives listing both footprint and work, the engine
// additionally maintains a Pareto front over the in-order candidate
// stream and reports front changes through ExploreOpts.OnFront, which is
// how the paper's central trade-off — smaller footprint at higher
// per-operation cost — is surfaced as a front instead of collapsed into
// a scalar.
package core

package core

import (
	"errors"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
	"dmmkit/internal/registry"
)

func init() {
	// "custom" is the paper's manager: the methodology applied per
	// behavioural phase and composed into a global manager (Sec. 3.3).
	// It owns one heap per phase, so the caller-provided heap is unused.
	registry.RegisterManager("custom", func(_ *heap.Heap, p *profile.Profile) (mm.Manager, error) {
		if p == nil {
			return nil, errors.New("core: the custom manager requires a trace profile")
		}
		g, _, err := BuildGlobal("custom", p)
		return g, err
	})
	// "designed" is a single atomic manager from one methodology walk over
	// the whole profile, without the per-phase composition.
	registry.RegisterManager("designed", func(h *heap.Heap, p *profile.Profile) (mm.Manager, error) {
		if p == nil {
			return nil, errors.New("core: the designed manager requires a trace profile")
		}
		if h == nil {
			h = heap.New(heap.Config{})
		}
		return DesignFor(p).Build(h)
	})
}

package main

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// pinnedVersion is the toolchain prefix the committed budget was
// measured with. Tests that invoke the real compiler skip on any other
// release: inline costs and escape diagnostics drift across versions,
// and the CI gate runs on the pinned toolchain only.
const pinnedVersion = "go1.24"

// measurePinned runs the real compiler over the default hot-path
// packages, from the module root, skipping when the toolchain is not
// the pinned release.
func measurePinned(t *testing.T) *Inventory {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping compiler-driving measurement in -short mode")
	}
	v := goMajorMinor(runtime.Version())
	if v != pinnedVersion {
		t.Skipf("toolchain %s is not the pinned %s; diagnostics are not comparable", v, pinnedVersion)
	}
	// The test binary runs in internal/tools/perfbudget; diagnostics and
	// go list paths are module-root relative.
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(root)
	inv, err := measure(DefaultPkgs, v)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func facts(t *testing.T, inv *Inventory, pkg, fn string) *FuncFacts {
	t.Helper()
	p := inv.Packages[pkg]
	if p == nil {
		t.Fatalf("package %s not in inventory", pkg)
	}
	f := p.Funcs[fn]
	if f == nil {
		t.Fatalf("function %s not in %s inventory", fn, pkg)
	}
	return f
}

// TestFastPathPins pins the load-bearing fast paths: the single-compare
// heap accessors and the allocator bin lookups must stay inlinable and
// allocation-free, and every //dmm:hotloop annotation must still be
// attached to its loop. A failure here means an edit silently knocked a
// fast path off the inliner's budget or grew an escape on the per-event
// path — fix the code (or, if the cost is deliberate, re-seed the
// budget AND update this pin).
func TestFastPathPins(t *testing.T) {
	inv := measurePinned(t)

	// Simulated heap: the word accessors on the replay inner path.
	for _, fn := range []string{"(*Heap).U32", "(*Heap).PutU32", "(*Heap).Ptr", "(*Heap).PutPtr"} {
		f := facts(t, inv, "dmmkit/internal/heap", fn)
		if !f.Inline {
			t.Errorf("heap.%s no longer inlines: %s", fn, f.InlineReason)
		}
		if len(f.Escapes) != 0 {
			t.Errorf("heap.%s grew escapes: %v", fn, f.Escapes)
		}
	}

	// Kingsley: the size-class lookup and free-list head update.
	for _, fn := range []string{"classFor", "(*Manager).setFreeHead"} {
		if f := facts(t, inv, "dmmkit/internal/alloc/kingsley", fn); !f.Inline {
			t.Errorf("kingsley.%s no longer inlines: %s", fn, f.InlineReason)
		}
	}

	// Lea: the bin index computations and bin head updates.
	for _, fn := range []string{"fastIndex", "smallIndex", "largeIndex",
		"(*Manager).setFastHead", "(*Manager).setSmallHead", "(*Manager).setLargeHead"} {
		if f := facts(t, inv, "dmmkit/internal/alloc/lea", fn); !f.Inline {
			t.Errorf("lea.%s no longer inlines: %s", fn, f.InlineReason)
		}
	}

	// Annotated hot loops: the annotation must still be attached (a
	// refactor that detaches the comment silently unguards the loop),
	// and the DMMT2 batch-decode loop must stay free of bounds checks —
	// its indexing is guarded by the n < len(dst) condition alone.
	hotLoops := map[string]struct {
		pkg, fn   string
		maxBounds int
	}{
		"NextBatch": {"dmmkit/internal/trace", "(*binarySource2).NextBatch", 0},
		"runBatch":  {"dmmkit/internal/trace", "runBatch", 2},
		"runSlice":  {"dmmkit/internal/trace", "runSlice", 1},
		"bestFit":   {"dmmkit/internal/alloc/lea", "(*Manager).bestFit", 1},
	}
	for name, want := range hotLoops {
		f := facts(t, inv, want.pkg, want.fn)
		if f.HotLoops != 1 {
			t.Errorf("%s: hot_loops = %d, want 1 (//dmm:hotloop annotation detached?)", name, f.HotLoops)
		}
		if f.HotBoundsChecks > want.maxBounds {
			t.Errorf("%s: %d bounds checks in hot loop, budget is %d", name, f.HotBoundsChecks, want.maxBounds)
		}
	}
}

// TestBudgetMatchesTree is the gate run as a unit test: a fresh
// measurement must match the committed perf_budget.json exactly, so
// `-update` on a clean tree is a no-op. If this fails, either fix the
// regression it names or deliberately re-seed with
// `go run ./internal/tools/perfbudget -update` and review the JSON diff.
func TestBudgetMatchesTree(t *testing.T) {
	inv := measurePinned(t)
	want, err := readBudget(DefaultBudget)
	if err != nil {
		t.Fatalf("reading committed budget: %v", err)
	}
	if want.GoVersion != inv.GoVersion {
		t.Fatalf("budget pinned to %s, measured with %s", want.GoVersion, inv.GoVersion)
	}
	diffs := diffInventories(want, inv)
	if len(diffs) > 0 {
		t.Errorf("perf_budget.json drifted (%d differences):\n  %s\nif deliberate: go run ./internal/tools/perfbudget -update",
			len(diffs), strings.Join(diffs, "\n  "))
	}
}

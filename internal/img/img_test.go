package img

import "testing"

func TestRenderDeterministic(t *testing.T) {
	s := Scene{Seed: 1}
	a := s.Render(0, 0)
	b := s.Render(0, 0)
	if a.W != 640 || a.H != 480 {
		t.Fatalf("default size %dx%d, want 640x480", a.W, a.H)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same scene rendered differently")
		}
	}
}

func TestShiftMovesContent(t *testing.T) {
	s := Scene{Seed: 2, Noise: 0.0001}
	a := s.Render(0, 0)
	c := s.Render(10, 0)
	diff := 0
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			diff++
		}
	}
	if diff < 1000 {
		t.Errorf("shifted render differs in only %d pixels", diff)
	}
}

func TestAtSetBounds(t *testing.T) {
	g := NewGray(10, 10)
	g.Set(-1, 0, 9)
	g.Set(0, -1, 9)
	g.Set(10, 0, 9)
	if g.At(-1, 0) != 0 || g.At(0, 100) != 0 {
		t.Error("out-of-bounds reads not zero")
	}
	g.Set(3, 4, 42)
	if g.At(3, 4) != 42 {
		t.Error("Set/At round trip failed")
	}
}

func TestDetectCornersFindsFeatures(t *testing.T) {
	s := Scene{Seed: 3}
	g := s.Render(0, 0)
	corners := DetectCorners(g, 600)
	if len(corners) < 50 {
		t.Errorf("only %d corners detected, want a rich feature set", len(corners))
	}
	for _, c := range corners {
		if c.X < 0 || c.X >= g.W || c.Y < 0 || c.Y >= g.H {
			t.Fatalf("corner out of bounds: %+v", c)
		}
		if c.Strength < 600 {
			t.Fatalf("corner below threshold: %+v", c)
		}
	}
}

func TestCornerCountVariesWithSeed(t *testing.T) {
	counts := map[int]bool{}
	for seed := int64(0); seed < 5; seed++ {
		g := Scene{Seed: seed, Blobs: 40 + int(seed)*15}.Render(0, 0)
		counts[len(DetectCorners(g, 600))] = true
	}
	if len(counts) < 3 {
		t.Errorf("corner counts too uniform across scenes: %v (the workload needs unpredictable populations)", counts)
	}
}

func TestFlatImageHasNoCorners(t *testing.T) {
	g := NewGray(100, 100)
	for i := range g.Pix {
		g.Pix[i] = 128
	}
	if got := DetectCorners(g, 100); len(got) != 0 {
		t.Errorf("flat image produced %d corners", len(got))
	}
}

func TestPatchDistanceZeroForIdenticalPatches(t *testing.T) {
	s := Scene{Seed: 4}
	g := s.Render(0, 0)
	c := Corner{X: 50, Y: 50}
	if d := PatchDistance(g, c, g, c); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
	far := Corner{X: 200, Y: 300}
	if d := PatchDistance(g, c, g, far); d == 0 {
		t.Error("distant patches identical; scene has no texture")
	}
}

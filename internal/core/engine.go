package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	workpool "dmmkit/internal/pool"
	"dmmkit/internal/profile"
	"dmmkit/internal/search"
	"dmmkit/internal/trace"
)

// Engine runs design-space explorations concurrently. Candidate
// evaluation is embarrassingly parallel — every candidate replays the
// trace against a private simulated heap — so the engine fans each
// generation of a search strategy out over a worker pool while keeping
// the result deterministic: the returned candidate slice is identical
// (vectors, footprints, work, ordering) at every parallelism level,
// including 1.
//
// The zero value is a valid engine that uses GOMAXPROCS workers.
type Engine struct {
	// Parallelism is the default worker count for explorations whose
	// options do not set their own; <= 0 means GOMAXPROCS.
	Parallelism int
}

// NewEngine returns an engine with the given default worker count
// (<= 0 means GOMAXPROCS).
func NewEngine(parallelism int) *Engine { return &Engine{Parallelism: parallelism} }

// Explore evaluates design-space candidates against a trace on a worker
// pool, plus the methodology's design when requested. The candidates come
// from opts.Strategy, one generation at a time: each generation is
// evaluated in parallel, its results are observed by the strategy in
// proposal order, and only then is the next generation proposed — which is
// why adaptive strategies (the seeded GA) stay deterministic at every
// parallelism level. A nil strategy selects the exhaustive stride sampler
// capped at opts.MaxCandidates.
//
// The candidate order is deterministic: proposal order, designed candidate
// last — byte-identical to a sequential run. Cancelling ctx stops
// evaluation early and returns the contiguous prefix of candidates already
// streamed, together with the context's error.
//
// Explore is the in-memory form of ExploreSource; the two produce
// identical candidates for the same logical trace.
func (e *Engine) Explore(ctx context.Context, tr *trace.Trace, opts ExploreOpts) ([]Candidate, error) {
	return e.ExploreSource(ctx, tr, opts)
}

// ExploreSource explores the design space against any trace.Opener — an
// in-memory *trace.Trace or an on-disk *trace.File. Every candidate opens
// its own streaming pass over the trace (concurrently, one per worker),
// so exploring a multi-hour binary capture needs memory proportional to
// the application's live set per worker, never the trace length. The
// methodology's profile is computed from one extra streaming pass before
// exploration starts.
func (e *Engine) ExploreSource(ctx context.Context, tr trace.Opener, opts ExploreOpts) ([]Candidate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 128
	}
	par := opts.Parallelism
	if par == 0 {
		par = e.Parallelism
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	multi, err := multiObjective(opts.Objectives)
	if err != nil {
		return nil, err
	}
	if opts.OnFront != nil && !multi {
		return nil, fmt.Errorf("core: OnFront requires Objectives to list footprint and work")
	}
	strat := opts.Strategy
	if strat == nil {
		strat = search.NewExhaustive(opts.MaxCandidates)
	}

	src, err := tr.Open()
	if err != nil {
		return nil, fmt.Errorf("core: opening trace: %w", err)
	}
	prof, err := profile.FromSource(src)
	if err != nil {
		trace.Close(src)
		return nil, fmt.Errorf("core: profiling trace: %w", err)
	}
	if err := trace.Close(src); err != nil {
		return nil, fmt.Errorf("core: closing trace: %w", err)
	}
	tr2 := traitsOf(prof)

	var out []Candidate
	em := &emitter{opts: &opts}
	if multi {
		em.front = &frontAccum{}
	}
	if opts.IncludeDesigned {
		em.reserved = 1
	}

	// A resumed run replays the prior candidates through the stream
	// first — re-emitted, not re-evaluated — with Params re-derived from
	// the (deterministic) profile, so downstream output cannot tell a
	// resumed run from an uninterrupted one.
	if len(opts.Prior) > 0 {
		out = append(out, opts.Prior...)
		em.extend(len(opts.Prior))
		for i := range out {
			if !out[i].Designed {
				out[i].Params = deriveParams(out[i].Vector, tr2, prof)
			}
			em.done(i, out)
		}
	}

	// Build/replay failures are per-candidate data (Candidate.Err), not
	// exploration failures; under SkipAndRecord so are panics. Only
	// cancellation — and a panic under FailFast — aborts the run.
	guard := func(i int, eval func() Candidate) (c Candidate) {
		if opts.OnCandidateError == SkipAndRecord {
			defer func() {
				if r := recover(); r != nil {
					c.Err = &workpool.PanicError{Index: i, Value: r, Stack: debug.Stack()}
				}
			}()
		}
		return eval()
	}
	runBatch := func(n int, eval func(i int) Candidate) error {
		base := len(out)
		out = append(out, make([]Candidate, n)...)
		em.extend(n)
		return workpool.Run(ctx, par, n, func(i int) error {
			out[base+i] = eval(i)
			if err := ctx.Err(); err != nil {
				return err
			}
			em.done(base+i, out)
			return nil
		})
	}

	for {
		batch := strat.Next()
		if len(batch) == 0 {
			break
		}
		base := len(out)
		err := runBatch(len(batch), func(i int) Candidate {
			v := batch[i]
			par := deriveParams(v, tr2, prof)
			c := guard(i, func() Candidate {
				return evaluate(ctx, v, par, tr, false)
			})
			// A recovered panic yields a zero candidate; restore its
			// identity so the failure is attributable in the stream.
			c.Vector, c.Params = v, par
			return c
		})
		if err != nil {
			return out[:em.prefix()], err
		}
		strat.Observe(resultsOf(out[base:]))
		if opts.AfterGeneration != nil {
			if err := opts.AfterGeneration(out); err != nil {
				return out[:em.prefix()], err
			}
		}
	}

	if opts.IncludeDesigned {
		em.reserved = 0
		designed := DesignFor(prof)
		err := runBatch(1, func(int) Candidate {
			c := guard(0, func() Candidate {
				return evaluate(ctx, designed.Vector, designed.Params, tr, true)
			})
			c.Vector, c.Params, c.Designed = designed.Vector, designed.Params, true
			return c
		})
		if err != nil {
			return out[:em.prefix()], err
		}
	}
	return out, nil
}

// resultsOf projects evaluated candidates onto the strategy feedback type.
func resultsOf(cands []Candidate) []search.Result {
	rs := make([]search.Result, len(cands))
	for i, c := range cands {
		rs[i] = search.Result{
			Vector:    c.Vector,
			Footprint: c.MaxFootprint,
			Work:      c.Work,
			Failed:    c.Err != nil,
		}
	}
	return rs
}

// emitter serializes the streaming callbacks across generations:
// OnProgress fires on every completion, OnCandidate fires in deterministic
// index order as soon as a candidate and all its predecessors are done.
// The callbacks run under the emitter's lock, so they are never concurrent
// and never out of order; they should not block for long and must not
// re-enter the engine. reserved counts evaluations that are known to come
// but not yet scheduled (the designed candidate), so progress totals don't
// shrink between generations.
type emitter struct {
	mu       sync.Mutex
	next     int // first index not yet streamed
	count    int // completions so far
	ready    []bool
	reserved int
	front    *frontAccum // Pareto mode: front over the in-order stream
	opts     *ExploreOpts
}

// extend grows the emitter by one generation of n evaluations.
func (em *emitter) extend(n int) {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.ready = append(em.ready, make([]bool, n)...)
}

func (em *emitter) done(i int, out []Candidate) {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.count++
	em.ready[i] = true
	if em.opts.OnProgress != nil {
		em.opts.OnProgress(em.count, len(em.ready)+em.reserved)
	}
	for em.next < len(em.ready) && em.ready[em.next] {
		if em.opts.OnCandidate != nil {
			em.opts.OnCandidate(out[em.next])
		}
		// The front is fed strictly from the in-order stream, so it (and
		// every OnFront snapshot) is identical at any parallelism.
		if em.front != nil && em.front.add(out[em.next]) && em.opts.OnFront != nil {
			em.opts.OnFront(em.front.snapshot())
		}
		em.next++
	}
}

func (em *emitter) prefix() int {
	em.mu.Lock()
	defer em.mu.Unlock()
	return em.next
}

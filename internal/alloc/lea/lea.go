package lea

import (
	"fmt"
	"math/bits"

	"dmmkit/internal/block"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// Config tunes the Lea manager; zero values select the defaults of the
// glibc ptmalloc derivative the paper benchmarks as "Lea-Linux":
// M_TRIM_THRESHOLD = M_TOP_PAD = M_MMAP_THRESHOLD = 128 KiB.
type Config struct {
	TrimThreshold int64 // trim top when it exceeds this (default 128 KiB)
	MmapThreshold int64 // direct-map requests at least this large (default 128 KiB)
	TopPad        int64 // extra padding when extending top (default 128 KiB)
}

func (c *Config) defaults() {
	if c.TrimThreshold == 0 {
		c.TrimThreshold = 128 << 10
	}
	if c.MmapThreshold == 0 {
		c.MmapThreshold = 128 << 10
	}
	if c.TopPad == 0 {
		c.TopPad = 128 << 10
	}
}

const (
	minGross  = 16  // header + footer + two links
	fastMax   = 80  // largest gross size handled by fastbins
	smallMax  = 504 // largest gross size with exact small bins
	nFastBins = fastMax/8 + 1
	nSmall    = smallMax/8 + 1 // indexed gross/8, entries below 2 unused
	nLarge    = 22             // log-spaced bins for gross > smallMax
)

var layout = block.Layout{Tags: block.TagsBoth, Info: block.InfoSize | block.InfoStatus, Links: block.LinksDouble}

// Manager is a Lea-style best-fit allocator with boundary tags over a
// simulated heap.
type Manager struct {
	mm.Accounting
	h   *heap.Heap
	v   block.View
	cfg Config

	heapStart heap.Addr // first managed address (set on first extension)
	top       heap.Addr // wilderness chunk (heap.Nil until first use)

	fast  [nFastBins]heap.Addr // LIFO singly-linked fastbins (via NextFree)
	small [nSmall]heap.Addr    // doubly-linked exact bins
	large [nLarge]heap.Addr    // doubly-linked size-sorted bins

	// Nonempty-bin bitmaps (bit i set iff the bin's head is non-Nil), the
	// dlmalloc binmap idiom: "find first bin >= class with blocks" becomes
	// a TrailingZeros instead of a linear scan. Out-of-band bookkeeping
	// only — placement and footprint are unchanged, and work accounting
	// still charges the probes the un-indexed scan would have made.
	fastMask  uint16
	smallMask uint64 // nSmall == 64 exactly
	largeMask uint32

	mapped map[heap.Addr]int64 // payload -> segment base gross for mmapped blocks
	live   mm.Shadow
}

// Bin-head setters keep the nonempty bitmaps in sync with the list heads;
// every head write goes through one of these.

func (m *Manager) setFastHead(i int, b heap.Addr) {
	m.fast[i] = b
	if b == heap.Nil {
		m.fastMask &^= 1 << i
	} else {
		m.fastMask |= 1 << i
	}
}

func (m *Manager) setSmallHead(i int, b heap.Addr) {
	m.small[i] = b
	if b == heap.Nil {
		m.smallMask &^= 1 << i
	} else {
		m.smallMask |= 1 << i
	}
}

func (m *Manager) setLargeHead(i int, b heap.Addr) {
	m.large[i] = b
	if b == heap.Nil {
		m.largeMask &^= 1 << i
	} else {
		m.largeMask |= 1 << i
	}
}

// New returns an empty Lea manager owning h.
func New(h *heap.Heap, cfg Config) *Manager {
	cfg.defaults()
	return &Manager{h: h, v: block.NewView(h, layout), cfg: cfg, mapped: make(map[heap.Addr]int64)}
}

// Name implements mm.Manager.
func (*Manager) Name() string { return "Lea" }

// Heap exposes the simulated heap for tests and diagnostics.
func (m *Manager) Heap() *heap.Heap { return m.h }

func fastIndex(gross int64) int  { return int(gross / 8) }
func smallIndex(gross int64) int { return int(gross / 8) }

// largeIndex maps gross sizes > smallMax to log-spaced bins.
func largeIndex(gross int64) int {
	i := 0
	for s := int64(1024); s <= gross && i < nLarge-1; s <<= 1 {
		i++
	}
	return i
}

// Alloc implements mm.Manager.
func (m *Manager) Alloc(req mm.Request) (heap.Addr, error) {
	if req.Size <= 0 {
		m.NoteFail()
		return heap.Nil, mm.ErrBadSize
	}
	gross := layout.GrossFor(req.Size)
	if gross >= m.cfg.MmapThreshold {
		return m.allocMapped(req)
	}
	m.Charge(mm.CostIndex)

	// 1. Exact fastbin hit.
	if gross <= fastMax {
		if b := m.fast[fastIndex(gross)]; b != heap.Nil {
			m.setFastHead(fastIndex(gross), m.v.NextFree(b))
			m.Charge(mm.CostProbe + mm.CostUnlink)
			return m.finishAlloc(b, req, gross, false)
		}
	}
	// 2. Exact small bin hit.
	if gross <= smallMax {
		if b := m.small[smallIndex(gross)]; b != heap.Nil {
			m.unlinkSmall(b, smallIndex(gross))
			m.Charge(mm.CostProbe + mm.CostUnlink)
			return m.finishAlloc(b, req, gross, true)
		}
	}
	// Fastbins are consolidated lazily, under memory pressure only (in
	// carveTop, before the break is extended) — the deferred coalescing
	// the paper describes as Lea coalescing "seldomly".
	// 3. Best fit over the remaining bins.
	if b := m.bestFit(gross); b != heap.Nil {
		return m.finishAlloc(b, req, gross, true)
	}
	// 4. Carve from top, consolidating and extending as needed.
	b, err := m.carveTop(gross)
	if err != nil {
		m.NoteFail()
		return heap.Nil, err
	}
	return m.finishAlloc(b, req, gross, false)
}

// lookupMapped checks the mmapped-block table, skipping the map probe
// entirely in the common case of no live mapped blocks.
func (m *Manager) lookupMapped(p heap.Addr) (int64, bool) {
	if len(m.mapped) == 0 {
		return 0, false
	}
	segGross, ok := m.mapped[p]
	return segGross, ok
}

func (m *Manager) allocMapped(req mm.Request) (heap.Addr, error) {
	gross := layout.GrossFor(req.Size)
	base, err := m.h.Map(gross)
	if err != nil {
		m.NoteFail()
		return heap.Nil, err
	}
	m.Charge(mm.CostSbrk)
	segGross := m.h.SegmentSize(base)
	m.v.SetHeader(base, gross, true, true)
	p := m.v.Payload(base)
	m.mapped[p] = segGross
	m.live.Add(p, req.Size)
	m.NoteAlloc(req.Size, segGross)
	return p, nil
}

// finishAlloc marks block b used, splits off any viable remainder, and
// returns the payload address. fromBin records whether b came from a
// doubly linked bin (footer valid) — needed only for accounting clarity.
func (m *Manager) finishAlloc(b heap.Addr, req mm.Request, gross int64, fromBin bool) (heap.Addr, error) {
	_ = fromBin
	have := m.v.Size(b)
	if have-gross >= minGross {
		m.split(b, gross)
		have = gross
	}
	// The header already records size == have on every path into here
	// (bins, split, carveTop), so sealing the block only needs the used
	// bit — a single read-modify-write with bytes identical to the full
	// header rewrite the policy describes.
	m.v.SetUsed(b, true)
	m.setNextPrevUsed(b+heap.Addr(have), true)
	m.Charge(mm.CostHeader)
	p := m.v.Payload(b)
	m.live.Add(p, req.Size)
	m.NoteAlloc(req.Size, have)
	return p, nil
}

// split carves block b into a used prefix of want bytes and a free
// remainder placed into a bin.
func (m *Manager) split(b heap.Addr, want int64) {
	have := m.v.Size(b)
	rem := b + heap.Addr(want)
	m.v.SetHeader(b, want, true, m.v.PrevUsed(b))
	m.v.SetHeader(rem, have-want, false, true)
	m.v.WriteFooter(rem)
	m.NoteSplit()
	m.binFree(rem)
}

// bestFit searches small bins at or above gross, then large bins, for the
// smallest free block that fits. Returns heap.Nil when none fits.
//
// The nonempty bitmaps turn the bin scans into TrailingZeros jumps; the
// ChargeN calls account exactly the probes the linear scan would have
// made, so the work metric is unchanged by the indexing.
func (m *Manager) bestFit(gross int64) heap.Addr {
	if gross <= smallMax {
		start := smallIndex(gross)
		if avail := m.smallMask >> start; avail != 0 {
			i := start + bits.TrailingZeros64(avail)
			m.ChargeN(mm.CostProbe, int64(i-start)+1)
			b := m.small[i]
			m.unlinkSmall(b, i)
			m.Charge(mm.CostUnlink)
			return b
		}
		m.ChargeN(mm.CostProbe, int64(nSmall-start))
	}
	start := 0
	if gross > smallMax {
		start = largeIndex(gross)
	}
	//dmm:hotloop
	for avail := m.largeMask >> start; avail != 0; avail &= avail - 1 {
		i := start + bits.TrailingZeros32(avail)
		for b := m.large[i]; b != heap.Nil; b = m.v.NextFree(b) {
			m.Charge(mm.CostProbe)
			if m.v.Size(b) >= gross {
				m.unlinkLarge(b, i)
				m.Charge(mm.CostUnlink)
				return b
			}
		}
	}
	return heap.Nil
}

// carveTop satisfies gross bytes from the wilderness chunk, consolidating
// fastbins and extending the break as required.
func (m *Manager) carveTop(gross int64) (heap.Addr, error) {
	topSize := m.topSize()
	if topSize < gross+minGross {
		m.consolidate()
		// Consolidation may have merged blocks into top or produced a
		// binned fit; retry the bins once.
		if b := m.bestFit(gross); b != heap.Nil {
			return b, nil
		}
		topSize = m.topSize()
	}
	if topSize < gross+minGross {
		need := gross + minGross - topSize + m.cfg.TopPad
		start, err := m.h.Sbrk(need)
		if err != nil {
			return heap.Nil, err
		}
		m.Charge(mm.CostSbrk)
		if m.top == heap.Nil {
			m.heapStart = start
			m.top = start
			m.v.SetHeader(m.top, int64(m.h.Brk()-start), false, true)
		} else {
			// sbrk extends contiguously past the old break, growing top.
			m.v.SetHeader(m.top, int64(m.h.Brk()-m.top), false, m.v.PrevUsed(m.top))
		}
		m.Charge(mm.CostHeader)
		topSize = m.v.Size(m.top)
	}
	// Carve from the low end of top.
	b := m.top
	prevUsed := m.v.PrevUsed(m.top)
	m.top = b + heap.Addr(gross)
	m.v.SetHeader(m.top, topSize-gross, false, true)
	m.v.SetHeader(b, gross, false, prevUsed) // finishAlloc seals it as used
	m.Charge(mm.CostHeader)
	return b, nil
}

func (m *Manager) topSize() int64 {
	if m.top == heap.Nil {
		return 0
	}
	return m.v.Size(m.top)
}

// Free implements mm.Manager.
func (m *Manager) Free(p heap.Addr) error {
	req, ok := m.live.Remove(p)
	if !ok {
		m.NoteFail()
		return mm.ErrBadFree
	}
	if segGross, isMapped := m.lookupMapped(p); isMapped {
		delete(m.mapped, p)
		if err := m.h.Unmap(m.v.Block(p)); err != nil {
			m.NoteFail()
			return err
		}
		m.Charge(mm.CostTrim)
		m.NoteFree(req, segGross)
		return nil
	}
	b := m.v.Block(p)
	gross := m.v.Size(b)
	m.NoteFree(req, gross)
	if gross <= fastMax {
		// Deferred coalescing: keep the used bit so neighbours skip it.
		m.v.SetNextFree(b, m.fast[fastIndex(gross)])
		m.setFastHead(fastIndex(gross), b)
		m.Charge(mm.CostLink)
		return nil
	}
	m.freeChunk(b, gross)
	m.maybeTrim()
	return nil
}

// freeChunk coalesces block b (header size already read by the caller)
// with free neighbours and places the result in a bin (or merges it into
// top). The caller-supplied size and a tracked prevUsed bit avoid header
// re-reads; every write carries the same bytes as before.
func (m *Manager) freeChunk(b heap.Addr, size int64) {
	prevUsed := m.v.PrevUsed(b)
	// Backward merge.
	if !prevUsed {
		prevSize := m.v.PrevFooterSize(b)
		prev := b - heap.Addr(prevSize)
		m.unbin(prev)
		b = prev
		size += prevSize
		prevUsed = m.v.PrevUsed(b)
		m.NoteCoalesce()
	}
	// Forward merge (with a binned block or with top).
	next := b + heap.Addr(size)
	if next == m.top {
		size += m.v.Size(m.top)
		m.top = b
		m.v.SetHeader(b, size, false, prevUsed)
		m.NoteCoalesce()
		m.Charge(mm.CostHeader)
		return
	}
	if next < m.h.Brk() && !m.v.Used(next) {
		m.unbin(next)
		size += m.v.Size(next)
		m.NoteCoalesce()
	}
	m.v.SetHeader(b, size, false, prevUsed)
	m.v.WriteFooterSized(b, size)
	m.setNextPrevUsed(b+heap.Addr(size), false)
	m.Charge(mm.CostHeader)
	m.binFree(b)
}

// consolidate empties the fastbins, fully freeing each entry with
// coalescing (dlmalloc's malloc_consolidate).
func (m *Manager) consolidate() {
	for avail := m.fastMask; avail != 0; avail &= avail - 1 {
		i := bits.TrailingZeros16(avail)
		for b := m.fast[i]; b != heap.Nil; {
			next := m.v.NextFree(b)
			m.Charge(mm.CostProbe)
			m.freeChunk(b, m.v.Size(b))
			b = next
		}
		m.setFastHead(i, heap.Nil)
	}
}

// maybeTrim returns the tail of an oversized top chunk to the system.
func (m *Manager) maybeTrim() {
	if m.top == heap.Nil {
		return
	}
	size := m.v.Size(m.top)
	if size < m.cfg.TrimThreshold {
		return
	}
	keep := m.cfg.TopPad
	release := (size - keep) &^ (heap.Align - 1)
	if release <= 0 {
		return
	}
	if err := m.h.ShrinkBrk(release); err != nil {
		return // cannot trim (should not happen); keep the memory
	}
	m.Charge(mm.CostTrim)
	m.v.SetHeader(m.top, size-release, false, m.v.PrevUsed(m.top))
	m.Charge(mm.CostHeader)
}

// setNextPrevUsed updates the prevUsed bit of the physical neighbour at
// next (or nothing when it is at/past the break). Callers compute next
// from a size they already hold, sparing the header re-read.
func (m *Manager) setNextPrevUsed(next heap.Addr, used bool) {
	if next < m.h.Brk() {
		m.v.SetPrevUsed(next, used)
		m.Charge(mm.CostHeader)
	}
}

// binFree inserts the free block b into the small or large bin for its
// size. Small bins are LIFO; large bins are kept sorted ascending by size
// so bestFit takes the first fit.
func (m *Manager) binFree(b heap.Addr) {
	size := m.v.Size(b)
	if size <= smallMax {
		i := smallIndex(size)
		m.v.SetNextFree(b, m.small[i])
		m.v.SetPrevFree(b, heap.Nil)
		if m.small[i] != heap.Nil {
			m.v.SetPrevFree(m.small[i], b)
		}
		m.setSmallHead(i, b)
		m.Charge(mm.CostLink)
		return
	}
	i := largeIndex(size)
	var prev heap.Addr
	cur := m.large[i]
	for cur != heap.Nil && m.v.Size(cur) < size {
		m.Charge(mm.CostProbe)
		prev, cur = cur, m.v.NextFree(cur)
	}
	m.v.SetNextFree(b, cur)
	m.v.SetPrevFree(b, prev)
	if cur != heap.Nil {
		m.v.SetPrevFree(cur, b)
	}
	if prev == heap.Nil {
		m.setLargeHead(i, b)
	} else {
		m.v.SetNextFree(prev, b)
	}
	m.Charge(mm.CostLink)
}

// unbin removes a known-free block from whichever doubly linked bin holds
// it (used when coalescing neighbours).
func (m *Manager) unbin(b heap.Addr) {
	size := m.v.Size(b)
	next := m.v.NextFree(b)
	prev := m.v.PrevFree(b)
	if prev == heap.Nil {
		if size <= smallMax {
			m.setSmallHead(smallIndex(size), next)
		} else {
			m.setLargeHead(largeIndex(size), next)
		}
	} else {
		m.v.SetNextFree(prev, next)
	}
	if next != heap.Nil {
		m.v.SetPrevFree(next, prev)
	}
	m.Charge(mm.CostUnlink)
}

func (m *Manager) unlinkSmall(b heap.Addr, i int) {
	next := m.v.NextFree(b)
	m.setSmallHead(i, next)
	if next != heap.Nil {
		m.v.SetPrevFree(next, heap.Nil)
	}
}

func (m *Manager) unlinkLarge(b heap.Addr, i int) {
	next := m.v.NextFree(b)
	prev := m.v.PrevFree(b)
	if prev == heap.Nil {
		m.setLargeHead(i, next)
	} else {
		m.v.SetNextFree(prev, next)
	}
	if next != heap.Nil {
		m.v.SetPrevFree(next, prev)
	}
}

// Footprint implements mm.Manager.
func (m *Manager) Footprint() int64 { return m.h.Footprint() }

// MaxFootprint implements mm.Manager.
func (m *Manager) MaxFootprint() int64 { return m.h.MaxFootprint() }

// Reset restores the manager and its heap to the initial state.
func (m *Manager) Reset() {
	m.h.Reset()
	m.heapStart, m.top = heap.Nil, heap.Nil
	m.fast = [nFastBins]heap.Addr{}
	m.small = [nSmall]heap.Addr{}
	m.large = [nLarge]heap.Addr{}
	m.fastMask, m.smallMask, m.largeMask = 0, 0, 0
	m.mapped = make(map[heap.Addr]int64)
	m.live.Reset()
	m.ResetStats()
}

// CheckInvariants walks the managed sbrk region verifying that blocks tile
// it exactly and boundary tags are consistent; it is used by tests after
// torture runs.
func (m *Manager) CheckInvariants() error {
	if m.top == heap.Nil {
		return nil
	}
	end := m.h.Brk()
	foundTop := false
	err := m.v.Walk(m.heapStart, end, func(bi block.BlockInfo) error {
		if bi.Addr == m.top {
			foundTop = true
			if bi.Addr+heap.Addr(bi.Size) != end {
				return fmt.Errorf("lea: top chunk does not reach the break")
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !foundTop {
		return fmt.Errorf("lea: top chunk missing from heap walk")
	}
	return nil
}

// Clone returns a deep copy of the manager over a clone of its heap:
// the copy and the original replay independently. The bins, bitmaps and
// config are plain values; the heap, the mmapped-block table and the
// shadow table need deep copies.
func (m *Manager) Clone() *Manager {
	n := *m
	n.h = m.h.Clone()
	n.v.H = n.h
	if m.mapped != nil {
		n.mapped = make(map[heap.Addr]int64, len(m.mapped))
		for k, v := range m.mapped {
			n.mapped[k] = v
		}
	}
	n.live = m.live.Clone()
	return &n
}

// CloneManager implements mm.Cloner.
func (m *Manager) CloneManager() (mm.Manager, error) { return m.Clone(), nil }

// StateChecksum implements mm.Checksummer by digesting the simulated
// heap, where all in-band allocator state lives.
func (m *Manager) StateChecksum() uint64 { return m.h.Checksum() }

var (
	_ mm.Manager     = (*Manager)(nil)
	_ mm.Cloner      = (*Manager)(nil)
	_ mm.Checksummer = (*Manager)(nil)
)

package core

import (
	"fmt"
	"sort"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/profile"
)

// Global is the paper's global DM manager (Sec. 3.3): the composition of
// one atomic manager per behavioural phase. Each atomic manager owns its
// own simulated heap, so Global hands out opaque handles and routes frees
// back to the owning manager; its footprint is the sum over the atomic
// heaps, with the high-water mark taken over that sum (not the sum of
// individual high-water marks, which would overestimate).
type Global struct {
	name    string
	byPhase map[int]mm.Manager
	order   []int // sorted phases, for deterministic reporting

	handles    map[heap.Addr]handleInfo
	nextHandle heap.Addr

	maxFootprint int64
	failed       int64
}

type handleInfo struct {
	mgr  mm.Manager
	real heap.Addr
}

// NewGlobal composes a global manager from per-phase atomic managers.
// Requests whose phase has no dedicated manager fall back to the lowest
// phase's manager.
func NewGlobal(name string, byPhase map[int]mm.Manager) (*Global, error) {
	if len(byPhase) == 0 {
		return nil, fmt.Errorf("core: global manager needs at least one atomic manager")
	}
	g := &Global{
		name:       name,
		byPhase:    byPhase,
		handles:    make(map[heap.Addr]handleInfo),
		nextHandle: 8,
	}
	for ph := range byPhase {
		g.order = append(g.order, ph)
	}
	sort.Ints(g.order)
	return g, nil
}

// BuildGlobal designs and constructs a global manager for a profiled
// application: one atomic custom manager per phase found in the profile
// (an application with a single phase gets a single atomic manager).
//
// Per-phase atomic managers assume the phases are memory-disjoint: a
// block allocated in one phase is freed in the same phase, so each atomic
// manager's pool set can be reasoned about locally (Sec. 3.3 applies the
// methodology "to each of these different phases separately"). When the
// profile shows substantial cross-phase lifetimes, the phases share
// memory and a single atomic manager designed on the union behaviour is
// used instead — splitting the heap would strand freed memory in one
// phase's pools while another phase allocates.
func BuildGlobal(name string, p *profile.Profile) (*Global, map[int]Design, error) {
	designs := make(map[int]Design)
	mgrs := make(map[int]mm.Manager)
	crossPhase := p.Frees > 0 && float64(p.CrossPhaseFrees) > 0.01*float64(p.Frees)
	if len(p.Phases) <= 1 || crossPhase {
		d := DesignFor(p)
		m, err := d.Build(heap.New(heap.Config{}))
		if err != nil {
			return nil, nil, err
		}
		m.SetName(name)
		designs[0] = d
		mgrs[0] = m
		g, err := NewGlobal(name, mgrs)
		if err != nil {
			return nil, nil, err
		}
		return g, designs, nil
	}
	for _, pp := range p.Phases {
		d := DesignForPhase(pp, p)
		m, err := d.Build(heap.New(heap.Config{}))
		if err != nil {
			return nil, nil, fmt.Errorf("core: building phase %d manager: %w", pp.Phase, err)
		}
		m.SetName(fmt.Sprintf("%s/phase%d", name, pp.Phase))
		designs[pp.Phase] = d
		mgrs[pp.Phase] = m
	}
	g, err := NewGlobal(name, mgrs)
	if err != nil {
		return nil, nil, err
	}
	return g, designs, nil
}

// Name implements mm.Manager.
func (g *Global) Name() string { return g.name }

// managerFor returns the atomic manager for a phase, falling back to the
// lowest phase.
func (g *Global) managerFor(phase int) mm.Manager {
	if m, ok := g.byPhase[phase]; ok {
		return m
	}
	return g.byPhase[g.order[0]]
}

// Alloc implements mm.Manager. The returned address is an opaque handle.
func (g *Global) Alloc(req mm.Request) (heap.Addr, error) {
	m := g.managerFor(req.Phase)
	p, err := m.Alloc(req)
	if err != nil {
		g.failed++
		return heap.Nil, err
	}
	h := g.nextHandle
	g.nextHandle += 8
	g.handles[h] = handleInfo{mgr: m, real: p}
	g.bump()
	return h, nil
}

// Free implements mm.Manager.
func (g *Global) Free(h heap.Addr) error {
	hi, ok := g.handles[h]
	if !ok {
		g.failed++
		return mm.ErrBadFree
	}
	delete(g.handles, h)
	if err := hi.mgr.Free(hi.real); err != nil {
		g.failed++
		return err
	}
	g.bump()
	return nil
}

func (g *Global) bump() {
	if f := g.Footprint(); f > g.maxFootprint {
		g.maxFootprint = f
	}
}

// Footprint implements mm.Manager: the sum over atomic managers.
func (g *Global) Footprint() int64 {
	var sum int64
	for _, ph := range g.order {
		sum += g.byPhase[ph].Footprint()
	}
	return sum
}

// MaxFootprint implements mm.Manager: the high-water mark of the summed
// footprint.
func (g *Global) MaxFootprint() int64 { return g.maxFootprint }

// Stats implements mm.Manager by aggregating the atomic managers.
func (g *Global) Stats() mm.Stats {
	var s mm.Stats
	for _, ph := range g.order {
		as := g.byPhase[ph].Stats()
		s.Allocs += as.Allocs
		s.Frees += as.Frees
		s.FailedOps += as.FailedOps
		s.LiveBytes += as.LiveBytes
		s.LiveBlocks += as.LiveBlocks
		s.GrossLive += as.GrossLive
		s.Splits += as.Splits
		s.Coalesces += as.Coalesces
		s.Work += as.Work
		s.MaxLive += as.MaxLive // upper bound; see doc comment
	}
	s.FailedOps += g.failed
	return s
}

// Atomic returns the per-phase manager for inspection.
func (g *Global) Atomic(phase int) mm.Manager { return g.byPhase[phase] }

// Phases returns the phases with dedicated atomic managers, ascending.
func (g *Global) Phases() []int { return append([]int(nil), g.order...) }

// Reset restores every atomic manager and the handle table.
func (g *Global) Reset() {
	for _, m := range g.byPhase {
		if r, ok := m.(mm.Resetter); ok {
			r.Reset()
		}
	}
	g.handles = make(map[heap.Addr]handleInfo)
	g.nextHandle = 8
	g.maxFootprint = 0
	g.failed = 0
}

var _ mm.Manager = (*Global)(nil)

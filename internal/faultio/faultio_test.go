package faultio

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
	"dmmkit/internal/trace"
)

func TestReaderShortRead(t *testing.T) {
	data := []byte("0123456789abcdef")
	r := NewReader(bytes.NewReader(data), Plan{Faults: []Fault{{Kind: ShortRead, Offset: 5}}})
	buf := make([]byte, 16)
	n, err := r.Read(buf)
	if err != nil || n != 5 {
		t.Fatalf("first read = %d, %v; want 5, nil (truncated at the fault)", n, err)
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:n]) + string(rest); got != string(data) {
		t.Fatalf("reassembled %q, want %q", got, data)
	}
}

func TestReaderTransientFiresOnce(t *testing.T) {
	data := []byte("0123456789")
	r := NewReader(bytes.NewReader(data), Plan{Faults: []Fault{{Kind: Transient, Offset: 4}}})
	buf := make([]byte, 16)
	n, err := r.Read(buf)
	if err != nil || n != 4 {
		t.Fatalf("first read = %d, %v; want 4, nil (stops before the fault)", n, err)
	}
	var te *TransientError
	if _, err := r.Read(buf); !errors.As(err, &te) || !trace.IsTransient(err) {
		t.Fatalf("second read err = %v, want a *TransientError", err)
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != "456789" {
		t.Fatalf("after the transient fault read %q, want %q", rest, "456789")
	}
}

func TestReaderHardIsPermanent(t *testing.T) {
	data := []byte("0123456789")
	r := NewReader(bytes.NewReader(data), Plan{Faults: []Fault{{Kind: Hard, Offset: 3}}})
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "012" {
		t.Fatalf("read %q before the fault, want %q", got, "012")
	}
	if _, err := r.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("hard fault did not latch: %v", err)
	}
}

func TestReaderCorruptBit(t *testing.T) {
	data := []byte{0x00, 0x00, 0x00, 0x00}
	r := NewReader(bytes.NewReader(data), Plan{Faults: []Fault{{Kind: CorruptBit, Offset: 2, Bit: 3}}})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{0x00, 0x00, 0x08, 0x00}; !bytes.Equal(got, want) {
		t.Fatalf("read % x, want % x", got, want)
	}
}

// TestReaderBufferSizeInvariance: the observable corruption must not
// depend on the consumer's read granularity.
func TestReaderBufferSizeInvariance(t *testing.T) {
	data := make([]byte, 257)
	for i := range data {
		data[i] = byte(i * 7)
	}
	plan := RandomPlan(11, int64(len(data)), 3)
	// Drop error faults: this test is about corruption placement.
	var corrupt Plan
	for _, f := range plan.Faults {
		if f.Kind == CorruptBit || f.Kind == ShortRead {
			corrupt.Faults = append(corrupt.Faults, f)
		}
	}
	read := func(bufSize int) []byte {
		r := NewReader(bytes.NewReader(data), corrupt)
		var out []byte
		buf := make([]byte, bufSize)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	want := read(1)
	for _, size := range []int{2, 3, 16, 64, 1024} {
		if got := read(size); !bytes.Equal(got, want) {
			t.Fatalf("buffer size %d produced different bytes than size 1", size)
		}
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(7, 1000, 5)
	b := RandomPlan(7, 1000, 5)
	if len(a.Faults) != 5 || len(b.Faults) != 5 {
		t.Fatalf("plan sizes %d, %d; want 5", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs between identically seeded plans", i)
		}
	}
	c := RandomPlan(8, 1000, 5)
	same := true
	for i := range a.Faults {
		if a.Faults[i] != c.Faults[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}

// bumpManager is a trivial never-failing allocator, so replay outcomes
// depend only on the event stream.
type bumpManager struct {
	next heap.Addr
	live map[heap.Addr]int64
	cur  int64
	max  int64
}

func newBumpManager() *bumpManager { return &bumpManager{next: 16, live: map[heap.Addr]int64{}} }

func (m *bumpManager) Name() string { return "bump" }

func (m *bumpManager) Alloc(r mm.Request) (heap.Addr, error) {
	p := m.next
	m.next += heap.Addr(r.Size)
	m.live[p] = r.Size
	m.cur += r.Size
	if m.cur > m.max {
		m.max = m.cur
	}
	return p, nil
}

func (m *bumpManager) Free(p heap.Addr) error {
	size, ok := m.live[p]
	if !ok {
		return fmt.Errorf("bump: free of unknown %v", p)
	}
	delete(m.live, p)
	m.cur -= size
	return nil
}

func (m *bumpManager) Footprint() int64    { return m.cur }
func (m *bumpManager) MaxFootprint() int64 { return m.max }
func (m *bumpManager) Stats() mm.Stats     { return mm.Stats{LiveBytes: m.cur, MaxLive: m.max} }

// corpusTrace builds a deterministic trace with interesting structure:
// phases, tags, interleaved frees.
func corpusTrace() *trace.Trace {
	tr := &trace.Trace{Name: "faultio-corpus"}
	id := int64(0)
	tick := int64(0)
	var liveIDs []int64
	for phase := 0; phase < 4; phase++ {
		for i := 0; i < 60; i++ {
			size := int64(8 + (i*13+phase*7)%120)
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.KindAlloc, ID: id, Size: size,
				Tag: int32(i % 5), Phase: int32(phase), Tick: tick,
			})
			liveIDs = append(liveIDs, id)
			id++
			tick += int64(1 + i%3)
			if i%3 == 2 && len(liveIDs) > 4 {
				victim := liveIDs[0]
				liveIDs = liveIDs[1:]
				tr.Events = append(tr.Events, trace.Event{
					Kind: trace.KindFree, ID: victim, Phase: int32(phase), Tick: tick,
				})
				tick++
			}
		}
	}
	for _, v := range liveIDs {
		tr.Events = append(tr.Events, trace.Event{Kind: trace.KindFree, ID: v, Phase: 3, Tick: tick})
		tick++
	}
	return tr
}

func replayBytes(raw []byte, plan Plan) (trace.Result, error) {
	src, err := trace.DecodeBinarySource(NewReader(bytes.NewReader(raw), plan))
	if err != nil {
		return trace.Result{}, err
	}
	return trace.RunSource(context.Background(), newBumpManager(), src, trace.RunOpts{})
}

func resultsEqual(a, b trace.Result) bool {
	return a.TraceName == b.TraceName && a.Events == b.Events &&
		a.MaxFootprint == b.MaxFootprint && a.MaxLive == b.MaxLive &&
		a.Final == b.Final && a.Work == b.Work && a.Stats == b.Stats
}

// TestDifferentialFaultCorpus is the faultio guarantee: across a seeded
// corpus of fault plans, every replay of a faulted DMMT2 stream either
// fails with a clean error or produces results identical to the
// fault-free replay. Never a panic, never silently different numbers.
func TestDifferentialFaultCorpus(t *testing.T) {
	tr := corpusTrace()
	var buf bytes.Buffer
	if err := tr.EncodeBinary2(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	baseline, err := replayBytes(raw, Plan{})
	if err != nil {
		t.Fatalf("fault-free replay: %v", err)
	}

	const seeds = 300
	clean, faulted := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		plan := RandomPlan(seed, int64(len(raw)), 1+int(seed%4))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d (plan %+v): replay panicked: %v", seed, plan, r)
				}
			}()
			res, err := replayBytes(raw, plan)
			if err != nil {
				faulted++
				return // a clean error is an acceptable outcome
			}
			clean++
			if !resultsEqual(res, baseline) {
				t.Fatalf("seed %d (plan %+v): replay succeeded with different results:\n got %+v\nwant %+v",
					seed, plan, res, baseline)
			}
		}()
	}
	if clean == 0 || faulted == 0 {
		t.Fatalf("corpus is degenerate: %d clean, %d faulted of %d seeds — both outcomes must be exercised",
			clean, faulted, seeds)
	}
	t.Logf("corpus: %d clean, %d errored, 0 panics, 0 silent corruptions", clean, faulted)
}

func TestSourceFailAt(t *testing.T) {
	tr := corpusTrace()
	src := NewSource(tr.Source(), SourceFaults{FailAt: 10, PanicAt: -1})
	if src.Name() != tr.Name {
		t.Errorf("Name = %q, want %q", src.Name(), tr.Name)
	}
	for i := 0; i < 10; i++ {
		if _, ok, err := src.Next(); !ok || err != nil {
			t.Fatalf("event %d: %v, %v", i, ok, err)
		}
	}
	if _, ok, err := src.Next(); ok || !errors.Is(err, ErrInjected) {
		t.Fatalf("event 10 = %v, %v; want injected failure", ok, err)
	}
	// The failure latches.
	if _, ok, err := src.Next(); ok || !errors.Is(err, ErrInjected) {
		t.Fatalf("after failure = %v, %v; want latched failure", ok, err)
	}
}

func TestSourcePanicAt(t *testing.T) {
	tr := corpusTrace()
	src := NewSource(tr.Source(), SourceFaults{FailAt: -1, PanicAt: 3})
	for i := 0; i < 3; i++ {
		if _, ok, err := src.Next(); !ok || err != nil {
			t.Fatalf("event %d: %v, %v", i, ok, err)
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Next at the panic index did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "injected panic") {
			t.Fatalf("panic value = %v, want the injected panic", r)
		}
	}()
	src.Next()
}

func TestOpenerFaults(t *testing.T) {
	tr := corpusTrace()
	op := NewOpener(tr, OpenerFaults{
		TransientAttempts: []int{1},
		HardAttempts:      []int{3},
		Source:            func(s trace.Source) trace.Source { return NewSource(s, SourceFaults{FailAt: -1, PanicAt: -1}) },
	})
	if _, err := op.Open(); !trace.IsTransient(err) {
		t.Fatalf("attempt 1 err = %v, want transient", err)
	}
	src, err := op.Open()
	if err != nil {
		t.Fatalf("attempt 2: %v", err)
	}
	if _, ok, err := src.Next(); !ok || err != nil {
		t.Fatalf("wrapped source Next = %v, %v", ok, err)
	}
	if _, err := op.Open(); !errors.Is(err, ErrInjected) {
		t.Fatalf("attempt 3 err = %v, want hard injected failure", err)
	}
	if _, err := op.Open(); err != nil {
		t.Fatalf("attempt 4: %v", err)
	}
}

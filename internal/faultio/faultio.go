// Package faultio injects deterministic I/O faults into readers, trace
// sources and trace openers, so robustness tests can prove — rather
// than hope — that every failure mode of the storage layer surfaces as
// a clean error or an identical result, never a panic or silent
// corruption.
//
// Faults are described by a Plan: a list of byte-offset-addressed
// events (short reads, transient errors, hard errors, bit flips)
// applied by NewReader as the stream passes through. RandomPlan derives
// a plan deterministically from a seed, which is how the differential
// suite sweeps a reproducible corpus of failure scenarios; targeted
// tests build plans by hand. The injected transient errors carry the
// Transient() marker trace.IsTransient honours, so retry paths can be
// driven end to end.
//
// NewSource and NewOpener lift fault injection to the trace layer:
// failing (or panicking) at a chosen event index, and failing a chosen
// Open attempt, respectively.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"dmmkit/internal/trace"
)

// ErrInjected is the terminal error hard faults return; tests assert on
// it (via errors.Is) to tell injected failures from real ones.
var ErrInjected = errors.New("faultio: injected I/O error")

// TransientError is the retryable error injected transient faults
// return. It implements the Transient() marker trace.IsTransient
// recognizes.
type TransientError struct {
	// Offset is the stream position at which the fault fired.
	Offset int64
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faultio: injected transient error at byte %d", e.Offset)
}

// Transient marks the error as retryable.
func (e *TransientError) Transient() bool { return true }

// Kind enumerates the injectable byte-stream faults.
type Kind int

const (
	// ShortRead truncates the Read that crosses the fault's offset: the
	// call returns fewer bytes than it had room for, with no error —
	// legal io.Reader behavior that shakes out callers assuming full
	// reads.
	ShortRead Kind = iota
	// Transient fails the Read that reaches the fault's offset once,
	// with a *TransientError; the next attempt proceeds.
	Transient
	// Hard fails the Read that reaches the fault's offset with
	// ErrInjected, permanently.
	Hard
	// CorruptBit flips Bit of the byte at the fault's offset as it is
	// read, leaving the underlying data untouched.
	CorruptBit
)

func (k Kind) String() string {
	switch k {
	case ShortRead:
		return "short-read"
	case Transient:
		return "transient"
	case Hard:
		return "hard"
	case CorruptBit:
		return "corrupt-bit"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one injectable event, addressed by the byte offset in the
// stream at which it fires.
type Fault struct {
	Kind   Kind
	Offset int64
	Bit    uint8 // for CorruptBit: which bit of the byte to flip (0-7)
}

// Plan is a deterministic fault schedule for one pass over a stream.
type Plan struct {
	Faults []Fault
}

// RandomPlan derives a reproducible plan of n faults for a stream of
// size bytes: offsets, kinds and bits all come from the seed. The same
// (seed, size, n) always yields the same plan. A size of zero or n of
// zero yields an empty plan.
func RandomPlan(seed int64, size int64, n int) Plan {
	if size <= 0 || n <= 0 {
		return Plan{}
	}
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		faults = append(faults, Fault{
			Kind:   Kind(rng.Intn(4)),
			Offset: rng.Int63n(size),
			Bit:    uint8(rng.Intn(8)),
		})
	}
	return Plan{Faults: faults}
}

// reader applies a plan to a byte stream. Faults fire in offset order;
// several faults at one offset fire on successive reads in plan order.
type reader struct {
	r      io.Reader
	faults []Fault // sorted by offset, stable
	off    int64   // bytes yielded so far
	next   int     // first unfired fault
}

// NewReader returns a reader over r that injects plan's faults as the
// stream passes through. The reader is deterministic: the same
// underlying bytes and plan produce the same observable sequence of
// reads, errors and corrupted bytes regardless of the caller's buffer
// sizes (corruption is position-addressed, and error faults fire when
// the stream position reaches their offset).
func NewReader(r io.Reader, plan Plan) io.Reader {
	faults := append([]Fault(nil), plan.Faults...)
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].Offset < faults[j].Offset })
	return &reader{r: r, faults: faults}
}

func (f *reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	// Error faults positioned at the current offset fire before any
	// bytes move; a transient fault is consumed by firing, a hard fault
	// stays armed forever.
	for f.next < len(f.faults) && f.faults[f.next].Offset <= f.off {
		fault := f.faults[f.next]
		switch fault.Kind {
		case Transient:
			f.next++
			return 0, &TransientError{Offset: f.off}
		case Hard:
			return 0, fmt.Errorf("faultio: at byte %d: %w", f.off, ErrInjected)
		default:
			// ShortRead at or behind the position can no longer truncate
			// anything; CorruptBit behind the position missed its byte.
			// Both are spent.
			f.next++
		}
	}
	// A pending short read truncates this call at its offset; a pending
	// error fault must not be jumped over by one large read.
	limit := len(p)
	for i := f.next; i < len(f.faults); i++ {
		fault := f.faults[i]
		if fault.Offset >= f.off+int64(limit) {
			break
		}
		switch fault.Kind {
		case ShortRead, Transient, Hard:
			if span := int(fault.Offset - f.off); span > 0 && span < limit {
				limit = span
			}
		}
	}
	n, err := f.r.Read(p[:limit])
	// Corruption faults inside the returned window fire now, position-
	// addressed so buffer-size choices cannot shift which byte flips.
	for i := f.next; i < len(f.faults); i++ {
		fault := f.faults[i]
		if fault.Offset >= f.off+int64(n) {
			break
		}
		if fault.Kind == CorruptBit {
			p[fault.Offset-f.off] ^= 1 << (fault.Bit & 7)
		}
	}
	f.off += int64(n)
	// Retire everything the stream has moved past (corrupt faults just
	// applied, short reads that fired as the limit above).
	for f.next < len(f.faults) && f.faults[f.next].Offset < f.off {
		f.next++
	}
	return n, err
}

// SourceFaults injects faults at the trace-event level: the stream
// fails (or panics) when the chosen event index is reached.
type SourceFaults struct {
	// FailAt, when >= 0, makes Next return Err (default ErrInjected)
	// instead of event FailAt.
	FailAt int
	// Err replaces ErrInjected as the injected failure.
	Err error
	// PanicAt, when >= 0, makes Next panic instead of returning event
	// PanicAt — the probe for panic-isolation layers.
	PanicAt int
}

// NewSource wraps src with event-level fault injection. Pass -1 for the
// indexes that should not fire.
func NewSource(src trace.Source, f SourceFaults) trace.Source {
	return &faultSource{src: src, f: f}
}

type faultSource struct {
	src trace.Source
	f   SourceFaults
	i   int
	err error
}

func (s *faultSource) Name() string { return s.src.Name() }

func (s *faultSource) Next() (trace.Event, bool, error) {
	if s.err != nil {
		return trace.Event{}, false, s.err
	}
	if s.f.PanicAt >= 0 && s.i == s.f.PanicAt {
		panic(fmt.Sprintf("faultio: injected panic at event %d", s.i))
	}
	if s.f.FailAt >= 0 && s.i == s.f.FailAt {
		err := s.f.Err
		if err == nil {
			err = fmt.Errorf("faultio: at event %d: %w", s.i, ErrInjected)
		}
		s.err = err
		trace.Close(s.src)
		return trace.Event{}, false, err
	}
	e, ok, err := s.src.Next()
	if ok {
		s.i++
	}
	return e, ok, err
}

// Close implements io.Closer by delegating to the wrapped source.
func (s *faultSource) Close() error { return trace.Close(s.src) }

// OpenerFaults schedules failures of an Opener's Open calls by attempt
// number (1-based, counted across all callers).
type OpenerFaults struct {
	// TransientAttempts lists the attempt numbers that fail with a
	// *TransientError.
	TransientAttempts []int
	// HardAttempts lists the attempt numbers that fail with ErrInjected.
	HardAttempts []int
	// Source, when non-nil, wraps every successfully opened source.
	Source func(trace.Source) trace.Source
}

// NewOpener wraps op with open-time fault injection. The attempt
// counter is shared across goroutines (Open must be concurrency-safe),
// so attempt-numbered faults are deterministic only for sequential
// callers — which is what the retry tests use.
func NewOpener(op trace.Opener, f OpenerFaults) trace.Opener {
	return &faultOpener{op: op, f: f}
}

type faultOpener struct {
	op      trace.Opener
	f       OpenerFaults
	mu      sync.Mutex
	attempt int
}

func (o *faultOpener) Open() (trace.Source, error) {
	o.mu.Lock()
	o.attempt++
	attempt := o.attempt
	o.mu.Unlock()
	for _, a := range o.f.TransientAttempts {
		if a == attempt {
			return nil, &TransientError{Offset: -1}
		}
	}
	for _, a := range o.f.HardAttempts {
		if a == attempt {
			return nil, fmt.Errorf("faultio: open attempt %d: %w", attempt, ErrInjected)
		}
	}
	src, err := o.op.Open()
	if err != nil {
		return nil, err
	}
	if o.f.Source != nil {
		src = o.f.Source(src)
	}
	return src, nil
}

package core

import "dmmkit/internal/dspace"

// Params are the numeric choices accompanying a decision vector. Zero
// values select documented defaults.
type Params struct {
	// ClassSizes lists the fixed gross block sizes when A2=many-fixed or
	// B4=fixed-size pools. Must be ascending. Defaults to pow2 from 16
	// to 64 KiB when required but empty.
	ClassSizes []int64

	// ChunkBytes is the sbrk granularity for class pools (default 4096).
	ChunkBytes int64

	// TrimThreshold returns the wilderness tail to the system when it
	// exceeds this size (default 4096; the paper's custom managers
	// return unused coalesced chunks to the system).
	TrimThreshold int64

	// TopPad is extra slack requested when extending the wilderness
	// (default 0: footprint-greedy).
	TopPad int64

	// CoalesceEveryN runs the deferred coalescing pass after this many
	// frees when D2=deferred (default 32).
	CoalesceEveryN int

	// DeferredSplitMin only splits remainders at least this large when
	// E2=deferred (default 256).
	DeferredSplitMin int64

	// MaxCoalesceSize caps coalescing results when D1=one (default 1
	// MiB).
	MaxCoalesceSize int64

	// DirectThreshold, when > 0, serves requests at least this large
	// with dedicated system segments (a designed large-block pool
	// division; used when the profile shows huge rare blocks).
	DirectThreshold int64

	// MaxProbes bounds every free-list search (default 64). Bounded
	// search is standard practice in embedded allocators: a search that
	// exhausts the budget gives up and takes the best candidate seen (or
	// fresh memory), trading a little footprint for a hard latency
	// bound — how the paper's custom managers stay within ~10% of
	// Kingsley's execution time.
	MaxProbes int
}

func (p *Params) defaults(vec dspace.Vector) {
	if p.ChunkBytes == 0 {
		p.ChunkBytes = 4096
	}
	if p.TrimThreshold == 0 {
		p.TrimThreshold = 4096
	}
	if p.CoalesceEveryN == 0 {
		p.CoalesceEveryN = 32
	}
	if p.DeferredSplitMin == 0 {
		p.DeferredSplitMin = 256
	}
	if p.MaxCoalesceSize == 0 {
		p.MaxCoalesceSize = 1 << 20
	}
	if p.MaxProbes == 0 {
		p.MaxProbes = 64
	}
	needClasses := vec.BlockSizes != dspace.ManyVarSizes || vec.PoolRange == dspace.FixedSizePerPool
	if needClasses && len(p.ClassSizes) == 0 {
		for s := int64(16); s <= 64<<10; s <<= 1 {
			p.ClassSizes = append(p.ClassSizes, s)
		}
	}
}

package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Addr is an address (byte offset) inside a Heap's virtual address space.
// Address 0 is never a valid block address.
type Addr uint32

// Nil is the reserved invalid address.
const Nil Addr = 0

// Align is the alignment guaranteed by Sbrk and Map and required of all
// in-band field accesses that cross managers.
const Align = 8

// Common errors returned by Heap operations.
var (
	// ErrOutOfMemory is returned when the configured address-space or
	// byte limit would be exceeded.
	ErrOutOfMemory = errors.New("heap: out of memory")
	// ErrBadAddress is returned for accesses outside any live region.
	ErrBadAddress = errors.New("heap: bad address")
	// ErrBadUnmap is returned when unmapping an address that is not the
	// base of a live mapped segment.
	ErrBadUnmap = errors.New("heap: not a mapped segment")
)

// Config controls heap construction. The zero value selects defaults.
type Config struct {
	// PageSize is the sbrk granularity in bytes. Managers may request
	// arbitrary extensions; the heap grows its backing store in pages.
	// Default 4096.
	PageSize int64
	// SegBase is the virtual address where mapped segments start. The
	// break may never grow past it. Default 1 GiB.
	SegBase Addr
	// Limit, if non-zero, caps the total bytes (break + segments) the
	// heap will hand out; used for out-of-memory fault injection.
	Limit int64
}

type segment struct {
	base Addr
	size int64
	mem  []byte
}

// Heap is a simulated process heap. It is not safe for concurrent use;
// each manager owns its heap, mirroring a single-threaded embedded target.
type Heap struct {
	cfg Config

	mem   []byte // backing store for the sbrk region; mem[0] unused
	brk   Addr   // current program break; addresses in [base, brk) are owned
	span4 Addr   // count of addresses in [base, brk) with room for 4 bytes

	segs     []*segment // mmap-like segments, sorted by base
	hot      *segment   // last segment hit by locate, checked before the search
	nextSeg  Addr       // next segment base to hand out
	segBytes int64

	maxFootprint int64

	// Counters exposed through SysStats.
	nSbrk, nShrink, nMap, nUnmap int64
}

// base is the lowest address handed out by Sbrk. Address 0 is reserved,
// and keeping the first Align bytes unused means every valid address is
// non-zero and aligned.
const base Addr = Align

// New returns an empty heap with the given configuration.
func New(cfg Config) *Heap {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.SegBase == 0 {
		cfg.SegBase = 1 << 30
	}
	h := &Heap{cfg: cfg, brk: base, nextSeg: cfg.SegBase}
	return h
}

// Reset returns the heap to its freshly constructed state, releasing all
// memory and clearing statistics.
func (h *Heap) Reset() {
	h.mem = nil
	h.brk = base
	h.span4 = 0
	h.segs = nil
	h.hot = nil
	h.nextSeg = h.cfg.SegBase
	h.segBytes = 0
	h.maxFootprint = 0
	h.nSbrk, h.nShrink, h.nMap, h.nUnmap = 0, 0, 0, 0
}

// setSpan recomputes the fast-path bound after a break move: a 4-byte
// access at addr stays below the break iff uint32(addr-base) < span4.
func (h *Heap) setSpan() {
	if d := h.brk - base; d >= 4 {
		h.span4 = d - 3
	} else {
		h.span4 = 0
	}
}

// roundUp rounds n up to a multiple of Align.
func roundUp(n int64) int64 { return (n + Align - 1) &^ (Align - 1) }

// Sbrk extends the program break by n bytes (rounded up to Align) and
// returns the address of the newly acquired region. It fails if the break
// would collide with the segment area or exceed the byte limit.
func (h *Heap) Sbrk(n int64) (Addr, error) {
	if n <= 0 {
		return Nil, fmt.Errorf("heap: Sbrk size %d: must be positive", n)
	}
	n = roundUp(n)
	old := h.brk
	newBrk := int64(old) + n
	if newBrk > int64(h.cfg.SegBase) {
		return Nil, ErrOutOfMemory
	}
	if h.cfg.Limit > 0 && h.footprint()+n > h.cfg.Limit {
		return Nil, ErrOutOfMemory
	}
	// Grow backing store geometrically (in whole pages) so repeated
	// small extensions stay amortized O(1).
	if need := newBrk; need > int64(len(h.mem)) {
		if dbl := int64(len(h.mem)) * 2; need < dbl {
			need = dbl
		}
		pages := (need + h.cfg.PageSize - 1) / h.cfg.PageSize
		grown := make([]byte, pages*h.cfg.PageSize)
		copy(grown, h.mem)
		h.mem = grown
	}
	h.brk = Addr(newBrk)
	h.setSpan()
	h.nSbrk++
	h.bumpFootprint()
	return old, nil
}

// ShrinkBrk lowers the program break by n bytes, returning memory to the
// system. The caller must no longer own [brk-n, brk). The maximum
// footprint statistic is unaffected.
func (h *Heap) ShrinkBrk(n int64) error {
	if n <= 0 || n%Align != 0 {
		return fmt.Errorf("heap: ShrinkBrk size %d: must be positive and aligned", n)
	}
	if int64(h.brk)-n < int64(base) {
		return fmt.Errorf("heap: ShrinkBrk %d below heap base", n)
	}
	h.brk -= Addr(n)
	h.setSpan()
	// Poison the released range so use-after-release shows up in tests.
	for i := int64(h.brk); i < int64(h.brk)+n && i < int64(len(h.mem)); i++ {
		h.mem[i] = 0xDD
	}
	h.nShrink++
	return nil
}

// Brk returns the current program break.
func (h *Heap) Brk() Addr { return h.brk }

// Map allocates an mmap-like segment of n bytes (rounded up to the page
// size) outside the sbrk region and returns its base address.
func (h *Heap) Map(n int64) (Addr, error) {
	if n <= 0 {
		return Nil, fmt.Errorf("heap: Map size %d: must be positive", n)
	}
	sz := (n + h.cfg.PageSize - 1) / h.cfg.PageSize * h.cfg.PageSize
	if h.cfg.Limit > 0 && h.footprint()+sz > h.cfg.Limit {
		return Nil, ErrOutOfMemory
	}
	if int64(h.nextSeg)+sz > int64(^uint32(0))-Align {
		return Nil, ErrOutOfMemory
	}
	s := &segment{base: h.nextSeg, size: sz, mem: make([]byte, sz)}
	h.nextSeg += Addr(sz) + h.cfg.SegGuard()
	h.segs = append(h.segs, s)
	h.segBytes += sz
	h.nMap++
	h.bumpFootprint()
	return s.base, nil
}

// SegGuard is the gap left between mapped segments so that off-by-one
// accesses cannot silently land in a neighbouring segment.
func (c Config) SegGuard() Addr { return Addr(c.PageSize) }

// segIndex returns the index in segs of the segment whose base is addr,
// or -1. Segments are handed out at increasing bases and removals preserve
// order, so segs stays sorted and a binary search suffices.
func (h *Heap) segIndex(addr Addr) int {
	i := sort.Search(len(h.segs), func(i int) bool { return h.segs[i].base >= addr })
	if i < len(h.segs) && h.segs[i].base == addr {
		return i
	}
	return -1
}

// Unmap releases the segment previously returned by Map at addr.
func (h *Heap) Unmap(addr Addr) error {
	i := h.segIndex(addr)
	if i < 0 {
		return ErrBadUnmap
	}
	if h.hot == h.segs[i] {
		h.hot = nil
	}
	h.segBytes -= h.segs[i].size
	h.segs = append(h.segs[:i], h.segs[i+1:]...)
	h.nUnmap++
	return nil
}

// SegmentSize returns the size of the mapped segment at addr, or 0 if addr
// is not a mapped segment base.
func (h *Heap) SegmentSize(addr Addr) int64 {
	if i := h.segIndex(addr); i >= 0 {
		return h.segs[i].size
	}
	return 0
}

// InSbrkRegion reports whether addr lies inside the current sbrk region.
func (h *Heap) InSbrkRegion(addr Addr) bool {
	return addr >= base && addr < h.brk
}

// locate returns the backing slice and offset for addr, ensuring n bytes
// are accessible. The sbrk-region check is the fast path; segment lookups
// go through a last-hit cache before the binary search. Error construction
// lives out-of-line (badAddress) so locate's callers stay inline-friendly.
func (h *Heap) locate(addr Addr, n int64) ([]byte, int64, error) {
	if addr >= base && int64(addr)+n <= int64(h.brk) {
		return h.mem, int64(addr), nil
	}
	if s := h.seg(addr); s != nil {
		off := int64(addr) - int64(s.base)
		if off+n <= s.size {
			return s.mem, off, nil
		}
	}
	return nil, 0, badAddress(addr, n)
}

// seg returns the mapped segment containing addr, or nil. The last hit is
// cached: managers touch the same segment's header repeatedly (header
// write then payload access), so the cache removes the binary search from
// the common case.
func (h *Heap) seg(addr Addr) *segment {
	if s := h.hot; s != nil && addr >= s.base && int64(addr) < int64(s.base)+s.size {
		return s
	}
	if addr < h.cfg.SegBase {
		return nil
	}
	i := sort.Search(len(h.segs), func(i int) bool { return h.segs[i].base+Addr(h.segs[i].size) > addr })
	if i < len(h.segs) && addr >= h.segs[i].base {
		h.hot = h.segs[i]
		return h.segs[i]
	}
	return nil
}

//go:noinline
func badAddress(addr Addr, n int64) error {
	return fmt.Errorf("%w: %#x (+%d)", ErrBadAddress, addr, n)
}

// U32 reads a little-endian 32-bit field at addr.
// The single unsigned compare folds the lower and upper bound checks:
// addr < base underflows to a value above span4.
func (h *Heap) U32(addr Addr) uint32 {
	if addr-base < h.span4 {
		return binary.LittleEndian.Uint32(h.mem[addr:])
	}
	return h.u32Slow(addr)
}

//go:noinline
func (h *Heap) u32Slow(addr Addr) uint32 {
	m, off, err := h.locate(addr, 4)
	if err != nil {
		panic(err)
	}
	return binary.LittleEndian.Uint32(m[off:])
}

// PutU32 writes a little-endian 32-bit field at addr.
func (h *Heap) PutU32(addr Addr, v uint32) {
	if addr-base < h.span4 {
		binary.LittleEndian.PutUint32(h.mem[addr:], v)
		return
	}
	h.putU32Slow(addr, v)
}

//go:noinline
func (h *Heap) putU32Slow(addr Addr, v uint32) {
	m, off, err := h.locate(addr, 4)
	if err != nil {
		panic(err)
	}
	binary.LittleEndian.PutUint32(m[off:], v)
}

// Ptr reads an in-band address field at addr.
func (h *Heap) Ptr(addr Addr) Addr { return Addr(h.U32(addr)) }

// PutPtr writes an in-band address field at addr.
func (h *Heap) PutPtr(addr Addr, v Addr) { h.PutU32(addr, uint32(v)) }

// Bytes returns a mutable view of n bytes at addr. The view is only valid
// until the next Sbrk/Map call.
func (h *Heap) Bytes(addr Addr, n int64) []byte {
	m, off, err := h.locate(addr, n)
	if err != nil {
		panic(err)
	}
	return m[off : off+n]
}

// Fill sets n bytes at addr to b; used by tests to detect overlap.
func (h *Heap) Fill(addr Addr, n int64, b byte) {
	s := h.Bytes(addr, n)
	for i := range s {
		s[i] = b
	}
}

// Checksum returns an FNV-1a hash over the heap's observable state: the
// sbrk region contents, the break, and every mapped segment (base, size,
// contents). Two heaps with equal checksums hold bit-identical memory;
// differential tests use this to prove optimizations preserve behavior.
func (h *Heap) Checksum() uint64 {
	sum := fnv.New64a()
	var scratch [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		sum.Write(scratch[:])
	}
	word(uint64(h.brk))
	if h.brk > base {
		sum.Write(h.mem[base:h.brk])
	}
	word(uint64(len(h.segs)))
	for _, s := range h.segs {
		word(uint64(s.base))
		word(uint64(s.size))
		sum.Write(s.mem)
	}
	return sum.Sum64()
}

// Clone returns a deep copy of the heap: identical observable state
// (Checksum, Footprint, SysStats, every byte an allocator can address)
// over fully independent backing memory, so a snapshot and the original
// can evolve in parallel replays without sharing anything mutable. The
// hot-segment cache is not carried over — it is a lookup accelerator
// with no observable effect.
func (h *Heap) Clone() *Heap {
	n := &Heap{
		cfg:          h.cfg,
		brk:          h.brk,
		span4:        h.span4,
		nextSeg:      h.nextSeg,
		segBytes:     h.segBytes,
		maxFootprint: h.maxFootprint,
		nSbrk:        h.nSbrk,
		nShrink:      h.nShrink,
		nMap:         h.nMap,
		nUnmap:       h.nUnmap,
	}
	if len(h.mem) > 0 {
		n.mem = make([]byte, len(h.mem))
		copy(n.mem, h.mem)
	}
	if len(h.segs) > 0 {
		n.segs = make([]*segment, len(h.segs))
		for i, s := range h.segs {
			n.segs[i] = &segment{base: s.base, size: s.size, mem: append([]byte(nil), s.mem...)}
		}
	}
	return n
}

// footprint is the memory currently requested from the system.
func (h *Heap) footprint() int64 {
	return int64(h.brk) - int64(base) + h.segBytes
}

// Footprint returns the bytes currently requested from the system (sbrk
// region plus mapped segments).
func (h *Heap) Footprint() int64 { return h.footprint() }

// MaxFootprint returns the high-water mark of Footprint over the heap's
// lifetime: the paper's "maximum memory footprint".
func (h *Heap) MaxFootprint() int64 { return h.maxFootprint }

func (h *Heap) bumpFootprint() {
	if f := h.footprint(); f > h.maxFootprint {
		h.maxFootprint = f
	}
}

// SysStats reports system-call-level activity for a heap.
type SysStats struct {
	Sbrks   int64 // break extensions
	Shrinks int64 // break shrinks (memory returned to the system)
	Maps    int64 // segment allocations
	Unmaps  int64 // segment releases
}

// SysStats returns the heap's system-call counters.
func (h *Heap) SysStats() SysStats {
	return SysStats{Sbrks: h.nSbrk, Shrinks: h.nShrink, Maps: h.nMap, Unmaps: h.nUnmap}
}

// Base returns the lowest valid sbrk-region address.
func Base() Addr { return base }

// Command checkdocs fails when any Go package in the module lacks
// package-level documentation. It is the CI docs gate: every package —
// internal layers, commands, examples — must carry a doc comment on its
// package clause so `go doc` explains the layer without reading the
// paper.
//
// Usage (from the module root):
//
//	go run ./internal/tools/checkdocs
//
// A package passes when at least one of its non-test files has a comment
// immediately above the package clause. Undocumented packages are listed
// one per line and the command exits non-zero.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	// dir -> has any non-test .go file / has a documented one.
	type state struct{ hasGo, documented bool }
	dirs := map[string]*state{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		st := dirs[dir]
		if st == nil {
			st = &state{}
			dirs[dir] = st
		}
		st.hasGo = true
		if st.documented {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("%s: %w", path, perr)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			st.documented = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkdocs: %v\n", err)
		os.Exit(2)
	}

	var bad []string
	for dir, st := range dirs {
		if st.hasGo && !st.documented {
			bad = append(bad, dir)
		}
	}
	sort.Strings(bad)
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "checkdocs: %d package(s) without package-level documentation:\n", len(bad))
		for _, dir := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Printf("checkdocs: %d packages documented\n", len(dirs))
}

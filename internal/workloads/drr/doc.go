// Package drr implements the Deficit Round Robin fair scheduler of
// Shreedhar & Varghese (SIGCOMM'95) — the paper's first case study, taken
// there from the NetBench suite — and derives its dynamic-memory trace.
//
// DRR keeps one FIFO queue per flow. Each service round adds a quantum to
// a queue's deficit counter and dequeues packets while the head packet
// fits in the deficit. Packet buffers are allocated on arrival and freed
// when the packet is forwarded, so queue memory follows the offered load:
// bursty, highly size-variable traffic makes the DM behaviour that
// motivates the paper ("it requires the use of DM because the real input
// can vary enormously depending on the network traffic").
//
// Allocation tags: 0 = packet payload buffer, 1 = queue descriptor node.
package drr

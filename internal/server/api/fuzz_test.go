package api_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"dmmkit/internal/server/api"
	"dmmkit/internal/server/jobs"
)

// newFuzzEnv builds an in-process API handler for fuzzing. No workloads
// are registered in this binary, so any accepted workload-backed job
// fails fast at build time instead of running a real exploration.
func newFuzzEnv(f *testing.F) (http.Handler, string) {
	f.Helper()
	spool := f.TempDir()
	mgr := jobs.New(jobs.Config{Workers: 1, SpoolDir: spool})
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx) // fuzz teardown; accepted jobs fail fast anyway
	})
	srv, err := api.New(api.Config{Manager: mgr, SpoolDir: spool})
	if err != nil {
		f.Fatal(err)
	}
	return srv.Handler(), spool
}

// FuzzCreateJob feeds arbitrary bodies to POST /v1/jobs: the decoder
// must answer a clean 4xx (or accept) — never panic, never 5xx.
func FuzzCreateJob(f *testing.F) {
	f.Add([]byte(`{"kind":"explore","trace":{"workload":"drr","seed":1,"quick":true},"strategy":"ga","objectives":"footprint,work","population":4,"generations":2,"budget":8}`))
	f.Add([]byte(`{"kind":"profile","trace":{"id":"deadbeef-0000-4000-8000-feedfacecafe"}}`))
	f.Add([]byte(`{"kind":"explore","trace":{"id":"../../../etc/passwd"},"strategy":"ga"}`))
	f.Add([]byte(`{"kind":"explore","trace":{"workload":"drr"},"strategy":"genetic"}`))
	f.Add([]byte(`{"kind":"explore","trace":{"id":"a","workload":"b"},"strategy":"ga"}`))
	f.Add([]byte(`{"kind":"explore","trace":{"workload":"drr"},"strategy":"ga","budget":-1}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`{"kind":"explore","trace":{"seed":9223372036854775807}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte("\xff\xfe{}"))
	f.Add(bytes.Repeat([]byte(`{"kind":`), 1000))

	h, _ := newFuzzEnv(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req) // a handler panic fails the fuzzer here

		switch rr.Code {
		case http.StatusAccepted, http.StatusBadRequest, http.StatusNotFound,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("POST /v1/jobs answered %d for %q", rr.Code, body)
		}
		var decoded map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("non-JSON response %q for %q", rr.Body.Bytes(), body)
		}
		if rr.Code == http.StatusAccepted {
			if id, _ := decoded["id"].(string); id == "" {
				t.Fatalf("accepted job without id: %q", rr.Body.Bytes())
			}
		} else if msg, _ := decoded["error"].(string); msg == "" {
			t.Fatalf("error response without message: %q", rr.Body.Bytes())
		}
	})
}

// FuzzUploadTrace feeds arbitrary bytes to POST /v1/traces: corrupt
// uploads must answer 400 without panicking, and the spool must never
// retain a partial or temp file for a rejected body.
func FuzzUploadTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DMMT2\n"))
	f.Add([]byte("DMMT1\n"))
	f.Add([]byte("not a trace at all"))
	valid := traceBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add(bytes.Repeat([]byte{0x00}, 512))
	f.Add(bytes.Repeat([]byte{0xff}, 512))

	h, spool := newFuzzEnv(f)
	countTraces := func(t *testing.T) int {
		t.Helper()
		ents, err := os.ReadDir(spool)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range ents {
			switch {
			case strings.HasSuffix(e.Name(), ".trace"):
				n++
			case strings.HasPrefix(e.Name(), ".upload-"):
				t.Fatalf("partial upload left in spool: %s", e.Name())
			}
		}
		return n
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		before := countTraces(t)
		req := httptest.NewRequest(http.MethodPost, "/v1/traces", bytes.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req) // a handler panic fails the fuzzer here

		after := countTraces(t)
		switch rr.Code {
		case http.StatusCreated:
			if after != before+1 {
				t.Fatalf("201 but spool went %d -> %d traces", before, after)
			}
		case http.StatusBadRequest:
			if after != before {
				t.Fatalf("400 but spool went %d -> %d traces", before, after)
			}
		default:
			t.Fatalf("POST /v1/traces answered %d for %d-byte body", rr.Code, len(body))
		}
		var decoded map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("non-JSON response %q", rr.Body.Bytes())
		}
	})
}

package core

import (
	"testing"

	"dmmkit/internal/trace"
)

func exploreTrace() *trace.Trace {
	b := trace.NewBuilder("explore")
	var q []int64
	sizes := []int64{40, 560, 1200, 96}
	for i := 0; i < 1500; i++ {
		if i%3 != 0 || len(q) == 0 {
			q = append(q, b.Alloc(sizes[i%len(sizes)], 0))
		} else {
			b.Free(q[0])
			q = q[1:]
		}
	}
	for _, id := range q {
		b.Free(id)
	}
	return b.Build()
}

func TestExploreEvaluatesCandidates(t *testing.T) {
	tr := exploreTrace()
	cands, err := Explore(tr, ExploreOpts{MaxCandidates: 16, IncludeDesigned: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 16 {
		t.Fatalf("evaluated only %d candidates", len(cands))
	}
	designed := 0
	for _, c := range cands {
		if c.Designed {
			designed++
			if c.Err != nil {
				t.Errorf("designed candidate failed: %v", c.Err)
			}
		}
		if c.Err == nil && c.MaxFootprint < tr.MaxLiveBytes() {
			t.Errorf("candidate footprint %d below live bound %d", c.MaxFootprint, tr.MaxLiveBytes())
		}
	}
	if designed != 1 {
		t.Errorf("got %d designed candidates, want 1", designed)
	}
}

func TestParetoFrontIsMonotone(t *testing.T) {
	tr := exploreTrace()
	cands, err := Explore(tr, ExploreOpts{MaxCandidates: 24, IncludeDesigned: true})
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(cands)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	for i := 1; i < len(front); i++ {
		if front[i].MaxFootprint < front[i-1].MaxFootprint {
			t.Error("front not sorted by footprint")
		}
		if front[i].Work >= front[i-1].Work {
			t.Error("front not strictly improving in work")
		}
	}
	// No candidate may dominate a front member.
	for _, f := range front {
		for _, c := range cands {
			if c.Err == nil && c.MaxFootprint < f.MaxFootprint && c.Work < f.Work {
				t.Errorf("front member (%d,%d) dominated by (%d,%d)",
					f.MaxFootprint, f.Work, c.MaxFootprint, c.Work)
			}
		}
	}
}

func TestDesignedNearBestInSample(t *testing.T) {
	tr := exploreTrace()
	cands, err := Explore(tr, ExploreOpts{MaxCandidates: 48, IncludeDesigned: true})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := BestByFootprint(cands)
	if !ok {
		t.Fatal("no successful candidates")
	}
	var designed Candidate
	for _, c := range cands {
		if c.Designed {
			designed = c
		}
	}
	// The methodology's design must be within 25% of the sampled optimum
	// (the paper's claim: the ordered walk reaches the right region
	// without exhaustive search).
	if float64(designed.MaxFootprint) > 1.25*float64(best.MaxFootprint) {
		t.Errorf("designed footprint %d far above sample best %d", designed.MaxFootprint, best.MaxFootprint)
	}
}

func TestExploreRespectsMaxCandidates(t *testing.T) {
	tr := exploreTrace()
	cands, err := Explore(tr, ExploreOpts{MaxCandidates: 7, IncludeDesigned: true})
	if err != nil {
		t.Fatal(err)
	}
	// At most MaxCandidates enumerated vectors plus the designed one.
	if len(cands) > 8 {
		t.Fatalf("evaluated %d candidates, want <= 8", len(cands))
	}
}

func TestBestByFootprintEmpty(t *testing.T) {
	if _, ok := BestByFootprint(nil); ok {
		t.Error("BestByFootprint on empty slice returned ok")
	}
}

// Package dspace models the dynamic-memory-management design space of
// Atienza et al. (DATE 2004): fifteen orthogonal decision trees grouped in
// five categories, the interdependencies between them (Fig. 2/3 of the
// paper), and the traversal order for reduced memory footprint (Sec. 4.2).
//
// Any combination of one leaf per tree is a candidate DM manager; the
// constraint rules reject incoherent combinations exactly as the paper's
// full-arrow interdependencies do. The package also enumerates the valid
// region of the space for exhaustive exploration (~144k vectors, cached
// by SpaceSize).
//
// # The categories (paper Fig. 1)
//
// The paper's Fig. 1 organizes the fifteen trees in five categories, each
// answering one question a DM manager designer must decide:
//
//   - Category A, creating block structures — what a block physically is:
//     A1 the dynamic data type holding free blocks (singly/doubly linked,
//     size-sorted), A2 whether block sizes are fixed or variable, A3
//     which tag fields a block carries (none, header, header+footer), A4
//     what those tags record (nothing, size, size+status,
//     size+status+prevsize), and A5 which flexible-size mechanisms exist
//     (none, split, coalesce, both).
//
//   - Category B, pool division based on criterion — how the heap is
//     partitioned: B1 one pool vs. one per size class, B2 the structure
//     organizing the pools (array or list), B3 pools shared across
//     behavioural phases or private per phase, and B4 the block-size
//     range a pool serves (one fixed size, power-of-two classes, exact
//     classes, any size).
//
//   - Category C, allocating blocks — the allocation policy: C1 the fit
//     algorithm (first, next, best, worst, exact) and C2 the free-list
//     ordering discipline (LIFO, FIFO, address order).
//
//   - Category D, coalescing blocks — recombining freed neighbours: D1
//     the block sizes allowed to result from coalescing and D2 how often
//     coalescing runs (never, deferred, always).
//
//   - Category E, splitting blocks — the dual of D: E1 the block sizes
//     allowed to result from splitting and E2 how often splitting runs.
//
// A Vector records one Leaf per Tree — an "atomic DM manager" in the
// paper's notation. Rules encodes the interdependencies (choosing "none"
// in A3 prohibits recording information in A4; scheduling coalescing in
// D2 requires status bits in A4 and a mechanism in A5; ...). Allowed
// propagates those constraints during an ordered traversal, Validate
// checks a complete vector, and Enumerate walks the whole valid region in
// the paper's published order (Order) with pruning.
//
// Figure 1 of the paper (the tree diagram) is not machine-readable in the
// available text; leaf sets are reconstructed from the prose, the Sec. 5
// walkthrough, and Wilson et al.'s survey the paper builds on. See
// DESIGN.md §4 for the mapping.
package dspace

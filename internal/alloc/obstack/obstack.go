package obstack

import (
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// chunkHdr is the in-band chunk header: a 4-byte size field plus 4 bytes
// of padding to keep payloads aligned (GNU obstacks keep a chunk limit and
// next pointer; the simulated heap tracks chunk extents, so one word
// suffices for realism of overhead).
const chunkHdr = 8

// DefaultChunkSize is the system allocation granularity, matching the GNU
// default of 4096 bytes.
const DefaultChunkSize = 4096

type object struct {
	payload heap.Addr
	size    int64 // requested bytes
	gross   int64 // aligned bytes consumed in the chunk
	chunk   int   // index into chunks at allocation time
	dead    bool
}

type chunk struct {
	base heap.Addr
	size int64
	off  int64 // bump offset
}

// Manager is an obstack allocator over a simulated heap.
type Manager struct {
	mm.Accounting
	h         *heap.Heap
	chunkSize int64
	chunks    []chunk
	objs      []object // allocation stack; index 0 is the oldest
	index     map[heap.Addr]int
	live      mm.Shadow
}

// New returns an obstack manager owning h with the given chunk size
// (DefaultChunkSize if 0).
func New(h *heap.Heap, chunkSize int64) *Manager {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Manager{h: h, chunkSize: chunkSize, index: make(map[heap.Addr]int)}
}

// Name implements mm.Manager.
func (*Manager) Name() string { return "Obstacks" }

// Heap exposes the simulated heap for tests and diagnostics.
func (m *Manager) Heap() *heap.Heap { return m.h }

// Alloc implements mm.Manager.
func (m *Manager) Alloc(req mm.Request) (heap.Addr, error) {
	if req.Size <= 0 {
		m.NoteFail()
		return heap.Nil, mm.ErrBadSize
	}
	gross := (req.Size + heap.Align - 1) &^ (heap.Align - 1)
	ci := len(m.chunks) - 1
	if ci < 0 || m.chunks[ci].off+gross > m.chunks[ci].size {
		// Need a new chunk; big objects get a chunk of their own size.
		sz := m.chunkSize
		if gross+chunkHdr > sz {
			sz = gross + chunkHdr
		}
		base, err := m.h.Map(sz)
		if err != nil {
			m.NoteFail()
			return heap.Nil, err
		}
		m.Charge(mm.CostSbrk)
		m.h.PutU32(base, uint32(sz))
		m.chunks = append(m.chunks, chunk{base: base, size: m.h.SegmentSize(base), off: chunkHdr})
		ci = len(m.chunks) - 1
	}
	c := &m.chunks[ci]
	p := c.base + heap.Addr(c.off)
	c.off += gross
	m.Charge(mm.CostProbe + mm.CostHeader)
	m.objs = append(m.objs, object{payload: p, size: req.Size, gross: gross, chunk: ci})
	m.index[p] = len(m.objs) - 1
	m.live.Add(p, req.Size)
	m.NoteAlloc(req.Size, gross)
	return p, nil
}

// Free implements mm.Manager. LIFO frees release space immediately;
// out-of-order frees are deferred until the object becomes the top of the
// stack.
func (m *Manager) Free(p heap.Addr) error {
	req, ok := m.live.Remove(p)
	if !ok {
		m.NoteFail()
		return mm.ErrBadFree
	}
	i, ok := m.index[p]
	if !ok || m.objs[i].dead {
		m.NoteFail()
		return mm.ErrBadFree
	}
	m.objs[i].dead = true
	delete(m.index, p)
	m.NoteFree(req, m.objs[i].gross)
	m.Charge(mm.CostHeader)
	m.pop()
	return nil
}

// pop unwinds dead objects from the top of the stack, rolling back bump
// offsets and returning emptied chunks to the system.
func (m *Manager) pop() {
	for len(m.objs) > 0 && m.objs[len(m.objs)-1].dead {
		o := m.objs[len(m.objs)-1]
		m.objs = m.objs[:len(m.objs)-1]
		// Roll the owning chunk's offset back to the object base. Any
		// chunks allocated after it are necessarily empty now.
		for len(m.chunks)-1 > o.chunk {
			last := m.chunks[len(m.chunks)-1]
			if err := m.h.Unmap(last.base); err != nil {
				panic(err) // chunk bookkeeping corrupt: programmer error
			}
			m.Charge(mm.CostTrim)
			m.chunks = m.chunks[:len(m.chunks)-1]
		}
		m.chunks[o.chunk].off = int64(o.payload - m.chunks[o.chunk].base)
		m.Charge(mm.CostProbe)
	}
	// If the top chunk is empty and not the only one, release it too.
	for len(m.chunks) > 0 && m.chunks[len(m.chunks)-1].off == chunkHdr && len(m.objs) == 0 {
		last := m.chunks[len(m.chunks)-1]
		if err := m.h.Unmap(last.base); err != nil {
			panic(err)
		}
		m.Charge(mm.CostTrim)
		m.chunks = m.chunks[:len(m.chunks)-1]
	}
}

// Footprint implements mm.Manager.
func (m *Manager) Footprint() int64 { return m.h.Footprint() }

// MaxFootprint implements mm.Manager.
func (m *Manager) MaxFootprint() int64 { return m.h.MaxFootprint() }

// Reset restores the manager and its heap to the initial state.
func (m *Manager) Reset() {
	m.h.Reset()
	m.chunks = nil
	m.objs = nil
	m.index = make(map[heap.Addr]int)
	m.live.Reset()
	m.ResetStats()
}

// DeadBytes reports bytes held by dead-but-unreclaimed objects: the
// obstack penalty under non-LIFO frees.
func (m *Manager) DeadBytes() int64 {
	var n int64
	for _, o := range m.objs {
		if o.dead {
			n += o.gross
		}
	}
	return n
}

// Depth returns the current object-stack depth (live + deferred dead).
func (m *Manager) Depth() int { return len(m.objs) }

// Clone returns a deep copy of the manager over a clone of its heap:
// the copy and the original replay independently. Chunks and objects
// are value types, so copying the slices suffices; the payload index
// and shadow table are rebuilt as fresh copies.
func (m *Manager) Clone() *Manager {
	n := *m
	n.h = m.h.Clone()
	n.chunks = append([]chunk(nil), m.chunks...)
	n.objs = append([]object(nil), m.objs...)
	if m.index != nil {
		n.index = make(map[heap.Addr]int, len(m.index))
		for k, v := range m.index {
			n.index[k] = v
		}
	}
	n.live = m.live.Clone()
	return &n
}

// CloneManager implements mm.Cloner.
func (m *Manager) CloneManager() (mm.Manager, error) { return m.Clone(), nil }

// StateChecksum implements mm.Checksummer by digesting the simulated
// heap, where all in-band allocator state lives.
func (m *Manager) StateChecksum() uint64 { return m.h.Checksum() }

var (
	_ mm.Manager     = (*Manager)(nil)
	_ mm.Cloner      = (*Manager)(nil)
	_ mm.Checksummer = (*Manager)(nil)
)

package search

import (
	"testing"

	"dmmkit/internal/dspace"
)

// TestGAEliteExceedsPopulation pins the config-clamping contract: an
// elitism count larger than the population must not panic or inflate the
// generation — it is clamped to the population size.
func TestGAEliteExceedsPopulation(t *testing.T) {
	g := NewGA(1, GAConfig{Population: 4, Elite: 10, Generations: 5})
	for {
		batch := g.Next()
		if len(batch) == 0 {
			break
		}
		if len(batch) > 4 {
			t.Fatalf("generation proposes %d vectors, population is 4", len(batch))
		}
		results := make([]Result, len(batch))
		for i, v := range batch {
			results[i] = fakeFitness(v)
		}
		g.Observe(results)
	}
	if g.Evaluations() == 0 {
		t.Error("clamped GA evaluated nothing")
	}
	if _, ok := g.Best(); !ok {
		t.Error("clamped GA found no best")
	}
}

// TestMaxEvaluationsBelowOneGeneration pins the budget trim on both
// strategies: a MaxEvaluations smaller than one population means the seed
// generation is trimmed to exactly the budget and the search stops there.
func TestMaxEvaluationsBelowOneGeneration(t *testing.T) {
	for name, s := range map[string]Strategy{
		"ga":   NewGA(1, GAConfig{Population: 12, Generations: 10, MaxEvaluations: 5}),
		"nsga": NewNSGA(1, GAConfig{Population: 12, Generations: 10, MaxEvaluations: 5}),
	} {
		evals := 0
		batches := 0
		for {
			batch := s.Next()
			if len(batch) == 0 {
				break
			}
			batches++
			results := make([]Result, len(batch))
			for i, v := range batch {
				results[i] = fakeFitness(v)
			}
			evals += len(batch)
			s.Observe(results)
		}
		if evals != 5 {
			t.Errorf("%s: evaluated %d vectors, budget is 5", name, evals)
		}
		if batches != 1 {
			t.Errorf("%s: proposed %d batches after spending the budget, want 1", name, batches)
		}
	}
}

// TestPatienceZeroSelectsDefault pins that Patience: 0 is "use the
// documented default of 4", not "stop immediately": with a constant
// fitness nothing improves after the seed generation, so the run scores
// at most 1+4 generations — and more than one, proving the search did
// not treat zero patience as instant convergence.
func TestPatienceZeroSelectsDefault(t *testing.T) {
	g := NewGA(1, GAConfig{Population: 8, Generations: 50, Patience: 0})
	for {
		batch := g.Next()
		if len(batch) == 0 {
			break
		}
		results := make([]Result, len(batch))
		for i, v := range batch {
			results[i] = Result{Vector: v, Footprint: 1000, Work: 10}
		}
		g.Observe(results)
		if g.Generation() > 10 {
			t.Fatal("GA with zero patience never converged")
		}
	}
	if g.Generation() <= 1 {
		t.Errorf("scored %d generations; Patience=0 must mean the default, not instant stop", g.Generation())
	}
	if g.Generation() > 5 {
		t.Errorf("scored %d generations, want <= 5 (seed + 4 stale)", g.Generation())
	}
}

// TestNSGASingletonSubspace drives the NSGA on a subspace pinned down to
// very few vectors: the run must terminate (no spinning on a tiny
// neighbourhood) and the archive front must be the true front of the
// handful of points.
func TestNSGASingletonSubspace(t *testing.T) {
	// Pin every tree of one known-valid vector except the free-list order,
	// leaving a subspace of only a few vectors.
	base := Sample(1, nil)[0]
	fix := Fixed{}
	for i := 0; i < dspace.NumTrees; i++ {
		tr := dspace.Tree(i)
		if tr == dspace.C2FreeOrder {
			continue
		}
		fix[tr] = base.Get(tr)
	}
	sub := Size(fix)
	if sub == 0 || sub > 8 {
		t.Fatalf("subspace has %d vectors, want a handful", sub)
	}
	var all []Result
	dspace.Enumerate(func(v dspace.Vector) bool {
		if fix.Matches(v) {
			all = append(all, fakeBiFitness(v))
		}
		return true
	})
	n := NewNSGA(9, GAConfig{Population: 8, Generations: 10, Fix: fix})
	evals := driveBi(n)
	if evals > sub {
		t.Errorf("evaluated %d vectors in a subspace of %d", evals, sub)
	}
	want := FrontOf(all)
	got := n.Front()
	if len(got) != len(want) {
		t.Fatalf("front has %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Footprint != want[i].Footprint || got[i].Work != want[i].Work {
			t.Errorf("front point %d: got (%d,%d), want (%d,%d)",
				i, got[i].Footprint, got[i].Work, want[i].Footprint, want[i].Work)
		}
	}
}

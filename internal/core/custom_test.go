package core

import (
	"math/rand"
	"testing"

	"dmmkit/internal/alloctest"
	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// Vectors used across the tests.

func drrVector() dspace.Vector {
	return dspace.Vector{
		BlockStructure: dspace.DoublyLinked,
		BlockSizes:     dspace.ManyVarSizes,
		BlockTags:      dspace.HeaderTag,
		RecordedInfo:   dspace.RecordSizeStatusPrev,
		Flex:           dspace.SplitCoalesce,
		PoolDivision:   dspace.SinglePool,
		PoolStruct:     dspace.PoolArray,
		PoolPhase:      dspace.SharedPools,
		PoolRange:      dspace.AnyRange,
		Fit:            dspace.ExactFit,
		FreeOrder:      dspace.LIFOOrder,
		MaxBlockSizes:  dspace.ManyNotFixed,
		CoalesceWhen:   dspace.Always,
		MinBlockSizes:  dspace.ManyNotFixed,
		SplitWhen:      dspace.Always,
	}
}

func leaLikeVector() dspace.Vector {
	v := drrVector()
	v.BlockTags = dspace.HeaderFooter
	v.RecordedInfo = dspace.RecordSizeStatus
	v.Fit = dspace.BestFit
	v.CoalesceWhen = dspace.Deferred
	return v
}

func kingsleyLikeVector() dspace.Vector {
	return dspace.Vector{
		BlockStructure: dspace.SinglyLinked,
		BlockSizes:     dspace.ManyFixedSizes,
		BlockTags:      dspace.HeaderTag,
		RecordedInfo:   dspace.RecordSize,
		Flex:           dspace.NoFlex,
		PoolDivision:   dspace.PoolPerClass,
		PoolStruct:     dspace.PoolArray,
		PoolPhase:      dspace.SharedPools,
		PoolRange:      dspace.Pow2Classes,
		Fit:            dspace.FirstFit,
		FreeOrder:      dspace.LIFOOrder,
		MaxBlockSizes:  dspace.OneResultSize,
		CoalesceWhen:   dspace.Never,
		MinBlockSizes:  dspace.OneResultSize,
		SplitWhen:      dspace.Never,
	}
}

func partitionVector() dspace.Vector {
	// An untagged fixed-size partition manager (RTEMS-partition-like).
	return dspace.Vector{
		BlockStructure: dspace.SinglyLinked,
		BlockSizes:     dspace.ManyFixedSizes,
		BlockTags:      dspace.NoTags,
		RecordedInfo:   dspace.RecordNone,
		Flex:           dspace.NoFlex,
		PoolDivision:   dspace.PoolPerClass,
		PoolStruct:     dspace.PoolArray,
		PoolPhase:      dspace.SharedPools,
		PoolRange:      dspace.FixedSizePerPool,
		Fit:            dspace.FirstFit,
		FreeOrder:      dspace.LIFOOrder,
		MaxBlockSizes:  dspace.OneResultSize,
		CoalesceWhen:   dspace.Never,
		MinBlockSizes:  dspace.OneResultSize,
		SplitWhen:      dspace.Never,
	}
}

func mustNew(t *testing.T, vec dspace.Vector, par Params) *Custom {
	t.Helper()
	m, err := NewCustom(heap.New(heap.Config{}), vec, par)
	if err != nil {
		t.Fatalf("NewCustom: %v", err)
	}
	return m
}

func TestConformanceDRRVector(t *testing.T) {
	alloctest.Run(t, func() mm.Manager {
		m, err := NewCustom(heap.New(heap.Config{}), drrVector(), Params{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, alloctest.Options{})
}

func TestConformanceLeaLikeVector(t *testing.T) {
	alloctest.Run(t, func() mm.Manager {
		m, err := NewCustom(heap.New(heap.Config{}), leaLikeVector(), Params{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, alloctest.Options{})
}

func TestConformanceKingsleyLikeVector(t *testing.T) {
	alloctest.Run(t, func() mm.Manager {
		m, err := NewCustom(heap.New(heap.Config{}), kingsleyLikeVector(), Params{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, alloctest.Options{MaxSize: 32 << 10})
}

func TestConformancePartitionVector(t *testing.T) {
	alloctest.Run(t, func() mm.Manager {
		m, err := NewCustom(heap.New(heap.Config{}), partitionVector(), Params{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, alloctest.Options{MaxSize: 32 << 10})
}

func TestInvalidVectorRejected(t *testing.T) {
	vec := drrVector()
	vec.BlockTags = dspace.NoTags // split+coalesce without tags: invalid
	if _, err := NewCustom(heap.New(heap.Config{}), vec, Params{}); err == nil {
		t.Fatal("invalid vector accepted")
	}
}

func TestExactFitAvoidsInternalFragmentation(t *testing.T) {
	m := mustNew(t, drrVector(), Params{})
	sizes := []int64{40, 576, 1500, 40, 1500, 576}
	var ps []heap.Addr
	for _, s := range sizes {
		p, err := m.Alloc(mm.Request{Size: s})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	s := m.Stats()
	// Header is 8 bytes (size + prevsize); blocks are 8-aligned.
	if f := s.InternalFrag(); f > 0.20 {
		t.Errorf("InternalFrag = %.3f, want < 0.20 for exact-fit variable sizes", f)
	}
	for _, p := range ps {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestImmediateCoalesceAndTrimReturnsMemory(t *testing.T) {
	m := mustNew(t, drrVector(), Params{})
	var ps []heap.Addr
	for i := 0; i < 200; i++ {
		p, err := m.Alloc(mm.Request{Size: 1000})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	peak := m.Footprint()
	for _, p := range ps {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Coalesces == 0 {
		t.Error("no coalescing recorded")
	}
	if m.Footprint() >= peak/10 {
		t.Errorf("footprint %d not returned to system (peak %d); the paper's custom managers release coalesced chunks", m.Footprint(), peak)
	}
}

func TestFootprintTracksLiveAcrossMixShift(t *testing.T) {
	// The paper's DRR argument: with variable sizes and immediate
	// split+coalesce, memory freed by one size mix is reused by the
	// next, unlike segregated free lists.
	m := mustNew(t, drrVector(), Params{})
	phase := func(size int64, n int) {
		var ps []heap.Addr
		for i := 0; i < n; i++ {
			p, err := m.Alloc(mm.Request{Size: size})
			if err != nil {
				t.Fatal(err)
			}
			ps = append(ps, p)
		}
		for _, p := range ps {
			if err := m.Free(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	phase(1400, 100) // ~140KB live
	after1 := m.MaxFootprint()
	phase(560, 250) // same live volume, different size
	phase(48, 2900)
	if m.MaxFootprint() > after1*3/2 {
		t.Errorf("MaxFootprint grew from %d to %d across mix shifts; reuse failed", after1, m.MaxFootprint())
	}
}

func TestKingsleyLikeVectorMatchesKingsleyShape(t *testing.T) {
	m := mustNew(t, kingsleyLikeVector(), Params{})
	p, err := m.Alloc(mm.Request{Size: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Stats().GrossLive; g != 2048 {
		t.Errorf("GrossLive = %d, want 2048 (pow2 class)", g)
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() == 0 {
		t.Error("pow2-class manager returned memory; Kingsley-like vectors never release")
	}
}

func TestDeferredCoalescingConsolidates(t *testing.T) {
	vec := leaLikeVector()
	m := mustNew(t, vec, Params{CoalesceEveryN: 8})
	var ps []heap.Addr
	for i := 0; i < 32; i++ {
		p, err := m.Alloc(mm.Request{Size: 500})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	for _, p := range ps {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Coalesces == 0 {
		t.Error("deferred coalescing never consolidated")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDeferredExactReuseSkipsCoalescing(t *testing.T) {
	m := mustNew(t, leaLikeVector(), Params{CoalesceEveryN: 1000})
	p1, _ := m.Alloc(mm.Request{Size: 500})
	if _, err := m.Alloc(mm.Request{Size: 500}); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p1); err != nil {
		t.Fatal(err)
	}
	before := m.Stats().Coalesces
	q, err := m.Alloc(mm.Request{Size: 500})
	if err != nil {
		t.Fatal(err)
	}
	if q != p1 {
		t.Errorf("deferred list did not recycle exact block: %#x vs %#x", q, p1)
	}
	if m.Stats().Coalesces != before {
		t.Error("exact deferred reuse triggered coalescing")
	}
}

func TestSplitWhenNeverWastesRestOfBlock(t *testing.T) {
	vec := drrVector()
	vec.Flex = dspace.CoalesceOnly
	vec.SplitWhen = dspace.Never
	vec.MinBlockSizes = dspace.OneResultSize
	m := mustNew(t, vec, Params{})
	p1, err := m.Alloc(mm.Request{Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(mm.Request{Size: 64}); err != nil { // pin
		t.Fatal(err)
	}
	if err := m.Free(p1); err != nil {
		t.Fatal(err)
	}
	// Allocating a small block from the binned 4KB block must NOT split.
	if _, err := m.Alloc(mm.Request{Size: 100}); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Splits != 0 {
		t.Error("split happened despite E2=never")
	}
	if g := m.Stats().GrossLive; g < 4096 {
		t.Errorf("GrossLive = %d; expected whole 4KB block consumed by the small request", g)
	}
}

func TestFitAlgorithms(t *testing.T) {
	build := func(fit dspace.Leaf) (*Custom, []heap.Addr) {
		vec := drrVector()
		vec.Fit = fit
		vec.SplitWhen = dspace.Never
		vec.CoalesceWhen = dspace.Never
		vec.Flex = dspace.NoFlex
		vec.MinBlockSizes = dspace.OneResultSize
		vec.MaxBlockSizes = dspace.OneResultSize
		m := mustNew(t, vec, Params{})
		// Free blocks of sizes 5000, 2000, 3000 separated by pins.
		var frees []heap.Addr
		for _, s := range []int64{5000, 2000, 3000} {
			p, err := m.Alloc(mm.Request{Size: s})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Alloc(mm.Request{Size: 32}); err != nil {
				t.Fatal(err)
			}
			frees = append(frees, p)
		}
		for _, p := range frees {
			if err := m.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		return m, frees
	}

	m, frees := build(dspace.BestFit)
	q, err := m.Alloc(mm.Request{Size: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if q != frees[1] {
		t.Errorf("best fit chose %#x, want the 2000-byte block %#x", q, frees[1])
	}

	m, frees = build(dspace.WorstFit)
	q, err = m.Alloc(mm.Request{Size: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if q != frees[0] {
		t.Errorf("worst fit chose %#x, want the 5000-byte block %#x", q, frees[0])
	}

	m, frees = build(dspace.FirstFit)
	q, err = m.Alloc(mm.Request{Size: 1500})
	if err != nil {
		t.Fatal(err)
	}
	// LIFO order: the most recently freed (3000) is scanned first and fits.
	if q != frees[2] {
		t.Errorf("first fit chose %#x, want the head block %#x", q, frees[2])
	}

	m, frees = build(dspace.ExactFit)
	q, err = m.Alloc(mm.Request{Size: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if q != frees[1] {
		t.Errorf("exact fit chose %#x, want the exact 2000-byte block %#x", q, frees[1])
	}
}

func TestNextFitRovesForward(t *testing.T) {
	vec := drrVector()
	vec.Fit = dspace.NextFit
	m := mustNew(t, vec, Params{})
	var ps []heap.Addr
	for i := 0; i < 6; i++ {
		p, err := m.Alloc(mm.Request{Size: 1000})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
		if _, err := m.Alloc(mm.Request{Size: 32}); err != nil { // pins
			t.Fatal(err)
		}
	}
	for _, p := range ps {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	a, err := m.Alloc(mm.Request{Size: 900})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(mm.Request{Size: 900})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("next fit returned the same block twice")
	}
}

func TestPerPhasePoolsSegregate(t *testing.T) {
	vec := drrVector()
	vec.PoolPhase = dspace.PoolsPerPhase
	m := mustNew(t, vec, Params{})
	p0, err := m.Alloc(mm.Request{Size: 1000, Phase: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p0); err != nil {
		t.Fatal(err)
	}
	// Phase 1 allocations must not reuse phase 0's pool content directly
	// (disjoint pool sets), though the wilderness is shared.
	if _, err := m.Alloc(mm.Request{Size: 1000, Phase: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSizeSortedStructureKeepsOrder(t *testing.T) {
	vec := drrVector()
	vec.BlockStructure = dspace.SizeSorted
	vec.Fit = dspace.BestFit
	vec.CoalesceWhen = dspace.Never
	vec.Flex = dspace.SplitOnly
	vec.MaxBlockSizes = dspace.OneResultSize
	m := mustNew(t, vec, Params{})
	var ps []heap.Addr
	for _, s := range []int64{3000, 1000, 2000, 500} {
		p, err := m.Alloc(mm.Request{Size: s})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
		if _, err := m.Alloc(mm.Request{Size: 32}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range ps {
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// Best fit on a sorted list stops at the first fit; a 900-byte
	// request must take the 1000-byte block.
	q, err := m.Alloc(mm.Request{Size: 900})
	if err != nil {
		t.Fatal(err)
	}
	if q != ps[1] {
		t.Errorf("sorted best fit chose %#x, want the 1000-byte block %#x", q, ps[1])
	}
}

// TestDesignSpaceSweep torture-tests a deterministic sample of the valid
// design space: every sampled vector must behave as a correct allocator.
func TestDesignSpaceSweep(t *testing.T) {
	var vectors []dspace.Vector
	i := 0
	dspace.Enumerate(func(v dspace.Vector) bool {
		if i%2400 == 0 { // ~60 samples over the whole space
			vectors = append(vectors, v)
		}
		i++
		return true
	})
	if len(vectors) < 40 {
		t.Fatalf("sampled only %d vectors", len(vectors))
	}
	for vi, vec := range vectors {
		m, err := NewCustom(heap.New(heap.Config{}), vec, Params{})
		if err != nil {
			t.Fatalf("vector %d invalid at construction: %v\n%v", vi, err, vec)
		}
		rng := rand.New(rand.NewSource(int64(vi)))
		type blk struct {
			p heap.Addr
			n int64
		}
		var live []blk
		var liveBytes int64
		for op := 0; op < 300; op++ {
			if len(live) == 0 || rng.Intn(100) < 55 {
				n := rng.Int63n(2000) + 1
				p, err := m.Alloc(mm.Request{Size: n, Tag: rng.Intn(3), Phase: op / 100})
				if err != nil {
					t.Fatalf("vector %d (%v): op %d Alloc(%d): %v", vi, vec, op, n, err)
				}
				live = append(live, blk{p, n})
				liveBytes += n
			} else {
				j := rng.Intn(len(live))
				if err := m.Free(live[j].p); err != nil {
					t.Fatalf("vector %d (%v): op %d Free: %v", vi, vec, op, err)
				}
				liveBytes -= live[j].n
				live = append(live[:j], live[j+1:]...)
			}
			if s := m.Stats(); s.LiveBytes != liveBytes {
				t.Fatalf("vector %d (%v): op %d LiveBytes=%d want %d", vi, vec, op, s.LiveBytes, liveBytes)
			}
		}
		for _, b := range live {
			if err := m.Free(b.p); err != nil {
				t.Fatalf("vector %d (%v): final Free: %v", vi, vec, err)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("vector %d (%v): invariants: %v", vi, vec, err)
		}
		if s := m.Stats(); s.LiveBytes != 0 || s.LiveBlocks != 0 {
			t.Fatalf("vector %d (%v): leftover live bytes", vi, vec)
		}
	}
}

func TestDirectThresholdUsesSegments(t *testing.T) {
	m := mustNew(t, drrVector(), Params{DirectThreshold: 64 << 10})
	p, err := m.Alloc(mm.Request{Size: 300000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Heap().SysStats().Maps == 0 {
		t.Error("large request did not use a direct segment")
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	if m.Footprint() != 0 {
		t.Errorf("Footprint = %d after direct free, want 0", m.Footprint())
	}
}

func TestResetRestoresCleanState(t *testing.T) {
	m := mustNew(t, drrVector(), Params{})
	if _, err := m.Alloc(mm.Request{Size: 100}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Footprint() != 0 || m.Stats().Allocs != 0 || m.FreeBlocks() != 0 {
		t.Error("Reset left state behind")
	}
	if _, err := m.Alloc(mm.Request{Size: 100}); err != nil {
		t.Errorf("Alloc after Reset: %v", err)
	}
}

package metrics

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTrackerAggregatesWithinWindow(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := New(time.Minute, 6, clk.now)
	tr.Record(10 * time.Millisecond)
	tr.Record(30 * time.Millisecond)
	s := tr.Snapshot()
	if s.Count != 2 || s.Avg != 20*time.Millisecond || s.Max != 30*time.Millisecond {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Window != time.Minute {
		t.Fatalf("window = %v", s.Window)
	}
}

func TestTrackerExpiresOldBuckets(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := New(time.Minute, 6, clk.now)
	tr.Record(100 * time.Millisecond)
	// Half the window later the event is still visible...
	clk.advance(30 * time.Second)
	tr.Record(50 * time.Millisecond)
	if s := tr.Snapshot(); s.Count != 2 {
		t.Fatalf("mid-window count = %d, want 2", s.Count)
	}
	// ...but a full window after the second event, both are gone.
	clk.advance(61 * time.Second)
	if s := tr.Snapshot(); s.Count != 0 || s.Avg != 0 || s.Max != 0 {
		t.Fatalf("post-window snapshot = %+v, want zero", s)
	}
}

func TestTrackerPartialExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tr := New(60*time.Second, 6, clk.now) // 10s buckets
	tr.Record(40 * time.Millisecond)      // bucket 0
	clk.advance(35 * time.Second)
	tr.Record(20 * time.Millisecond) // bucket 3
	clk.advance(30 * time.Second)
	// 65s after the first event: bucket 0 expired, bucket 3 still in.
	s := tr.Snapshot()
	if s.Count != 1 || s.Max != 20*time.Millisecond {
		t.Fatalf("snapshot = %+v, want the 20ms event only", s)
	}
}

func TestTrackerDefaultsAndConcurrency(t *testing.T) {
	tr := New(0, 0, nil) // defaults: 1m window, 6 buckets, real clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := tr.Snapshot(); s.Count != 800 {
		t.Fatalf("count = %d, want 800", s.Count)
	}
}

//go:build bench

package detrandfix

import "time"

// BenchClock lives in a bench-tagged file: wall-clock reads are
// legitimate measurement there and detrand must stay quiet.
func BenchClock() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

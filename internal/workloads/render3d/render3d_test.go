package render3d

import (
	"context"
	"testing"

	"dmmkit/internal/heap"
	"dmmkit/internal/profile"
	"dmmkit/internal/trace"

	"dmmkit/internal/alloc/obstack"
)

func TestTraceValidAndBalanced(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Trace.LiveAtEnd() != 0 {
		t.Errorf("LiveAtEnd = %d, want 0", res.Trace.LiveAtEnd())
	}
	if res.MaxLOD < 100 {
		t.Errorf("MaxLOD = %d; objects barely refined", res.MaxLOD)
	}
}

func TestThreePhases(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.FromTrace(res.Trace)
	if len(p.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(p.Phases))
	}
	// Phase 0 (load) must be allocation-only and stack-like.
	if p.Phases[0].LIFOScore < 0.0 {
		t.Errorf("phase 0 LIFO score negative?")
	}
	// Phase 1 carries the bulk of the allocations.
	if p.Phases[1].Allocs < p.Phases[0].Allocs {
		t.Error("animation phase allocated less than load phase")
	}
}

func TestPeakLiveInTargetRegime(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's render3d footprints are ~1-4 MB; the workload's live
	// peak should sit under those in the hundreds-of-KB-to-MB regime.
	if res.PeakBytes < 300<<10 {
		t.Errorf("peak live %d too small", res.PeakBytes)
	}
	if res.PeakBytes > 8<<20 {
		t.Errorf("peak live %d too large", res.PeakBytes)
	}
}

func TestObstackSuffersInFinalPhase(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := obstack.New(heap.New(heap.Config{}), 0)
	r, err := trace.Run(context.Background(), m, res.Trace, trace.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// The out-of-order departure phase must leave deferred dead bytes,
	// pushing the obstack footprint visibly above the live peak.
	if r.Overhead() < 1.2 {
		t.Errorf("obstack overhead %.2f; the teardown phase should hurt it", r.Overhead())
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := BuildTrace(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTrace(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Events) != len(b.Trace.Events) {
		t.Fatal("event counts differ for same seed")
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestScratchChurnsWithinFrames(t *testing.T) {
	res, err := BuildTrace(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := profile.FromTrace(res.Trace)
	// Scratch allocations must exist and be fully freed (they never
	// reach the teardown phase).
	var scratchMax int64
	for tag, max := range p.TagMax {
		if tag == TagScratch {
			scratchMax = max
		}
	}
	if scratchMax < 1000 {
		t.Errorf("scratch max size %d; variable display lists expected", scratchMax)
	}
}

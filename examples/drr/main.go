// Example drr reproduces the paper's first case study end to end: the
// Deficit Round Robin scheduler from the network domain, driven by
// synthetic internet traffic, with the methodology-designed custom
// manager compared against Lea and Kingsley (Table 1, column 1, and the
// Figure 5 curves).
package main

import (
	"context"
	"fmt"
	"log"

	"dmmkit"
)

func main() {
	fmt.Println("DRR case study (paper Sec. 5, Table 1 col. 1, Figure 5)")
	fmt.Println()

	// Ten seeded traffic traces, as the paper uses ten archive traces.
	const seeds = 10
	var leaSum, kingsleySum, customSum, liveSum int64
	for seed := int64(1); seed <= seeds; seed++ {
		tr := dmmkit.DRRTrace(dmmkit.DRRConfig{Seed: seed})
		prof := dmmkit.Profile(tr)
		custom, _, err := dmmkit.DesignGlobal("custom", prof)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range []dmmkit.Manager{custom, dmmkit.NewLea(dmmkit.NewHeap()), dmmkit.NewKingsley(dmmkit.NewHeap())} {
			res, err := dmmkit.Replay(context.Background(), m, tr, dmmkit.ReplayOpts{})
			if err != nil {
				log.Fatal(err)
			}
			switch m.Name() {
			case "custom":
				customSum += res.MaxFootprint
			case "Lea":
				leaSum += res.MaxFootprint
			case "Kingsley":
				kingsleySum += res.MaxFootprint
			}
		}
		liveSum += tr.MaxLiveBytes()
	}
	fmt.Printf("average over %d traces:\n", seeds)
	fmt.Printf("  peak live bytes:   %8d\n", liveSum/seeds)
	fmt.Printf("  custom manager:    %8d B\n", customSum/seeds)
	fmt.Printf("  Lea (glibc):       %8d B  -> custom saves %.0f%%  (paper: 36%%)\n",
		leaSum/seeds, 100*(1-float64(customSum)/float64(leaSum)))
	fmt.Printf("  Kingsley (pow2):   %8d B  -> custom saves %.0f%%  (paper: 93%%)\n",
		kingsleySum/seeds, 100*(1-float64(customSum)/float64(kingsleySum)))

	// Show why: the decision walk for one trace.
	tr := dmmkit.DRRTrace(dmmkit.DRRConfig{Seed: 1})
	design := dmmkit.Design(dmmkit.Profile(tr))
	fmt.Println("\nmethodology decisions for this behaviour (compare paper Sec. 5):")
	fmt.Println(design.String())
}

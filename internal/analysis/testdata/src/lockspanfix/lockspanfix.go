// Package lockspanfix is the lockspan fixture: critical sections that
// span blocking operations, next to the blessed copy-then-release
// patterns the serving tier uses.
package lockspanfix

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

type manager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	other sync.Mutex
	ch    chan int
	out   io.Writer
	subs  []chan int
}

func newManager() *manager {
	m := &manager{ch: make(chan int)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *manager) sendUnderLock(v int) {
	m.mu.Lock()
	m.ch <- v // want `m\.mu is held across a channel send`
	m.mu.Unlock()
}

func (m *manager) sendUnderDeferredUnlock(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ch <- v // want `m\.mu is held across a channel send`
}

func (m *manager) receiveUnderLock() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return <-m.ch // want `m\.mu is held across a channel receive`
}

func (m *manager) sleepUnderLock() {
	m.mu.Lock()
	time.Sleep(time.Millisecond) // want `m\.mu is held across time\.Sleep`
	m.mu.Unlock()
}

func (m *manager) writeUnderLock(p []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.out.Write(p) // want `m\.mu is held across an io\.Writer-shaped Write`
}

func (m *manager) encodeUnderLock(v any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	json.NewEncoder(m.out).Encode(v) // want `m\.mu is held across json Encode`
}

func (m *manager) selectUnderLock(done chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	select { // want `m\.mu is held across a blocking select`
	case <-done:
	case v := <-m.ch:
		_ = v
	}
}

func (m *manager) rangeUnderLock() int {
	total := 0
	m.mu.Lock()
	defer m.mu.Unlock()
	for v := range m.ch { // want `m\.mu is held across a channel-range receive`
		total += v
	}
	return total
}

// Blessed: Cond.Wait holding only the Cond's own Locker — that is the
// sync.Cond contract (Wait releases and reacquires it).
func (m *manager) waitOwnLocker() {
	m.mu.Lock()
	for len(m.subs) == 0 {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// Violation: Cond.Wait releases m.mu, but m.other stays held while the
// goroutine parks.
func (m *manager) waitForeignLock() {
	m.other.Lock()
	m.mu.Lock()
	m.cond.Wait() // want `held across Cond\.Wait`
	m.mu.Unlock()
	m.other.Unlock()
}

// Blessed: copy under the lock, release, then block.
func (m *manager) snapshotThenSend(v int) {
	m.mu.Lock()
	subs := make([]chan int, len(m.subs))
	copy(subs, m.subs)
	m.mu.Unlock()
	for _, ch := range subs {
		ch <- v
	}
}

// Blessed: the branch that unlocks falls through, and every path
// released the lock before the send.
func (m *manager) unlockAllPathsThenSend(fast bool, v int) {
	m.mu.Lock()
	if fast {
		m.mu.Unlock()
	} else {
		m.subs = nil
		m.mu.Unlock()
	}
	m.ch <- v
}

// Violation: only one branch released the lock before the send.
func (m *manager) unlockOnePathThenSend(fast bool, v int) {
	m.mu.Lock()
	if fast {
		m.mu.Unlock()
	}
	m.ch <- v // want `m\.mu is held across a channel send`
}

// Blessed: a branch that unlocks and returns does not release the
// fall-through path's lock; the send after the final unlock is clean.
func (m *manager) earlyReturnPattern(v int) {
	m.mu.Lock()
	if len(m.subs) == 0 {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	m.ch <- v
}

// Blessed: a goroutine launched under the lock runs in its own scope —
// the spawner holds the lock, the goroutine does not.
func (m *manager) spawnUnderLock(v int) {
	m.mu.Lock()
	go func() {
		m.ch <- v
	}()
	m.mu.Unlock()
}

// Blessed: select with a default case never blocks.
func (m *manager) nonBlockingNotify(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case m.ch <- v:
	default:
	}
}

// Blessed: suppression with rationale for a send the analyzer cannot
// prove safe.
func (m *manager) reservedCapacitySend(v int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	//dmmlint:allow lockspan self-owned buffered channel with reserved capacity
	m.ch <- v
}

package core

import (
	"sort"

	"dmmkit/internal/dspace"
	"dmmkit/internal/heap"
	"dmmkit/internal/mm"
)

// poolKey identifies one pool: the B3 phase (0 unless pools are divided
// per phase) and the B4 class (0 for the any-range single pool, otherwise
// the floor class size).
type poolKey struct {
	phase int
	class int64
}

// pool is one memory pool: an in-band free list plus the roving pointer
// for next fit and the deferred-coalescing list (blocks freed but not yet
// merged, still carrying their used bit, as dlmalloc's fastbins do).
// idx is the pool's position in the sorted key slice (and in the nonempty
// bitset that runs parallel to it).
type pool struct {
	head, tail heap.Addr
	count      int
	rover      heap.Addr
	deferred   heap.Addr
	nDeferred  int
	idx        int
}

// poolFor returns (creating on demand) the pool for a key, charging the
// B2 pool-structure lookup cost: constant for an array of pools, linear in
// the pool position for a linked list of pools.
func (m *Custom) poolFor(k poolKey) *pool {
	if m.vec.PoolStruct == dspace.PoolArray {
		m.Charge(mm.CostIndex)
	} else {
		pos := sort.Search(len(m.keys), func(i int) bool { return !keyLess(m.keys[i], k) })
		m.ChargeN(mm.CostProbe, int64(pos)+1)
	}
	if pl, ok := m.pools[k]; ok {
		return pl
	}
	i := sort.Search(len(m.keys), func(i int) bool { return !keyLess(m.keys[i], k) })
	pl := &pool{idx: i}
	for _, other := range m.pools {
		if other.idx >= i {
			other.idx++
		}
	}
	m.pools[k] = pl
	m.keys = append(m.keys, poolKey{})
	copy(m.keys[i+1:], m.keys[i:])
	m.keys[i] = k
	m.ne.InsertZero(i)
	return pl
}

func keyLess(a, b poolKey) bool {
	if a.phase != b.phase {
		return a.phase < b.phase
	}
	return a.class < b.class
}

// insertFree places free block b (gross size known) into pool pl honouring
// the A1 structure and C2 ordering decisions.
func (m *Custom) insertFree(pl *pool, b heap.Addr) {
	pl.count++
	m.ne.Set(pl.idx)
	m.Charge(mm.CostLink)
	if pl.head == heap.Nil {
		pl.head, pl.tail = b, b
		m.setNextFree(b, heap.Nil)
		m.setPrevFree(b, heap.Nil)
		return
	}
	switch {
	case m.vec.BlockStructure == dspace.SizeSorted:
		m.insertSorted(pl, b, func(x heap.Addr) bool { return m.v.Size(x) >= m.v.Size(b) })
	case m.vec.FreeOrder == dspace.AddressOrder:
		m.insertSorted(pl, b, func(x heap.Addr) bool { return x > b })
	case m.vec.FreeOrder == dspace.FIFOOrder:
		// Append at tail.
		m.setNextFree(pl.tail, b)
		m.setPrevFree(b, pl.tail)
		m.setNextFree(b, heap.Nil)
		pl.tail = b
	default: // LIFO
		m.setNextFree(b, pl.head)
		m.setPrevFree(b, heap.Nil)
		m.setPrevFree(pl.head, b)
		pl.head = b
	}
}

// insertSorted walks the list charging probes and inserts b before the
// first element satisfying stop.
func (m *Custom) insertSorted(pl *pool, b heap.Addr, stop func(heap.Addr) bool) {
	var prev heap.Addr
	cur := pl.head
	for cur != heap.Nil && !stop(cur) {
		m.Charge(mm.CostProbe)
		prev, cur = cur, m.nextFree(cur)
	}
	m.setNextFree(b, cur)
	m.setPrevFree(b, prev)
	if cur != heap.Nil {
		m.setPrevFree(cur, b)
	} else {
		pl.tail = b
	}
	if prev == heap.Nil {
		pl.head = b
	} else {
		m.setNextFree(prev, b)
	}
}

// unlink removes block b from pool pl. With doubly linked structures it is
// O(1); with singly linked lists the caller provides the predecessor found
// during the search (sprev), matching what the hardware-true structure can
// do.
func (m *Custom) unlink(pl *pool, b, sprev heap.Addr) {
	pl.count--
	delete(m.freeKey, b)
	m.Charge(mm.CostUnlink)
	if pl.rover == b {
		pl.rover = m.nextFree(b)
	}
	if m.doubleLinks() {
		next := m.nextFree(b)
		prev := m.prevFree(b)
		if prev == heap.Nil {
			pl.head = next
		} else {
			m.setNextFree(prev, next)
		}
		if next != heap.Nil {
			m.setPrevFree(next, prev)
		} else {
			pl.tail = prev
		}
	} else {
		next := m.nextFree(b)
		if sprev == heap.Nil {
			pl.head = next
		} else {
			m.setNextFree(sprev, next)
		}
		if pl.tail == b {
			pl.tail = sprev
		}
	}
	if pl.head == heap.Nil {
		m.ne.Clear(pl.idx)
	}
}

// unlinkKnownFree removes a binned block found by address (used when
// coalescing absorbs a neighbour). The owning pool is recorded at bin
// time; only doubly linked structures support address unlinking, which the
// design-space constraints guarantee whenever coalescing is on.
func (m *Custom) unlinkKnownFree(b heap.Addr) {
	k, ok := m.freeKey[b]
	if !ok {
		k = m.keyFor(m.phaseOf(b), m.floorClass(m.sizeOf(b)))
	}
	pl := m.poolFor(k)
	m.unlink(pl, b, heap.Nil)
}

// searchResult carries a fit-search hit: the block and, for singly linked
// lists, its predecessor (needed to unlink).
type searchResult struct {
	b, sprev heap.Addr
	ok       bool
}

// searchPool looks for a free block of at least gross bytes in pl using
// the C1 fit algorithm. Exact fit scans for an exact size match and falls
// back to best fit, the composition the paper's DRR walkthrough implies
// (exact fit to avoid internal fragmentation, with split+coalesce mopping
// up the rest).
func (m *Custom) searchPool(pl *pool, gross int64) searchResult {
	if pl.head == heap.Nil {
		return searchResult{}
	}
	switch m.vec.Fit {
	case dspace.FirstFit:
		return m.scanFirst(pl.head, gross)
	case dspace.NextFit:
		start := pl.rover
		if start == heap.Nil {
			start = pl.head
		}
		if r := m.scanFirst(start, gross); r.ok {
			pl.rover = m.nextFree(r.b)
			return r
		}
		r := m.scanFirst(pl.head, gross) // wrap around
		if r.ok {
			pl.rover = m.nextFree(r.b)
		}
		return r
	case dspace.BestFit, dspace.ExactFit:
		// Exact fit prefers an exact-size block (returned as soon as it
		// is seen) and otherwise degrades to best fit within the probe
		// budget.
		return m.scanBest(pl, gross)
	case dspace.WorstFit:
		return m.scanWorst(pl, gross)
	}
	return searchResult{}
}

// scanFirst returns the first fitting block within the probe budget.
func (m *Custom) scanFirst(from heap.Addr, gross int64) searchResult {
	var prev heap.Addr
	probes := 0
	for b := from; b != heap.Nil && probes < m.par.MaxProbes; b = m.nextFree(b) {
		m.Charge(mm.CostProbe)
		probes++
		if m.sizeOf(b) >= gross {
			return searchResult{b: b, sprev: prev, ok: true}
		}
		prev = b
	}
	return searchResult{}
}

// scanBest finds the smallest fitting block within the probe budget,
// returning immediately on an exact size match. With a size-sorted
// structure the scan stops at the first fit.
func (m *Custom) scanBest(pl *pool, gross int64) searchResult {
	var best, bestPrev, prev heap.Addr
	var bestSize int64
	probes := 0
	for b := pl.head; b != heap.Nil && probes < m.par.MaxProbes; b = m.nextFree(b) {
		m.Charge(mm.CostProbe)
		probes++
		sz := m.sizeOf(b)
		if sz == gross {
			return searchResult{b: b, sprev: prev, ok: true}
		}
		if sz > gross && (best == heap.Nil || sz < bestSize) {
			best, bestPrev, bestSize = b, prev, sz
		}
		if m.vec.BlockStructure == dspace.SizeSorted && sz > gross {
			break // sorted ascending: this is already the best fit
		}
		prev = b
	}
	if best == heap.Nil {
		return searchResult{}
	}
	return searchResult{b: best, sprev: bestPrev, ok: true}
}

func (m *Custom) scanWorst(pl *pool, gross int64) searchResult {
	if m.vec.BlockStructure == dspace.SizeSorted {
		// Largest block is at the tail.
		m.Charge(mm.CostProbe)
		if pl.tail != heap.Nil && m.sizeOf(pl.tail) >= gross {
			return searchResult{b: pl.tail, ok: true}
		}
		return searchResult{}
	}
	var worst, worstPrev, prev heap.Addr
	var worstSize int64
	probes := 0
	for b := pl.head; b != heap.Nil && probes < m.par.MaxProbes; b = m.nextFree(b) {
		m.Charge(mm.CostProbe)
		probes++
		if sz := m.sizeOf(b); sz >= gross && sz > worstSize {
			worst, worstPrev, worstSize = b, prev, sz
		}
		prev = b
	}
	if worst == heap.Nil {
		return searchResult{}
	}
	return searchResult{b: worst, sprev: worstPrev, ok: true}
}

// Link-field helpers: doubly linked structures use both payload link
// slots; singly linked ones only the forward slot. prevFree is only
// meaningful with double links.

func (m *Custom) doubleLinks() bool {
	return m.vec.BlockStructure != dspace.SinglyLinked
}

func (m *Custom) nextFree(b heap.Addr) heap.Addr { return m.v.NextFree(b) }

func (m *Custom) setNextFree(b, to heap.Addr) { m.v.SetNextFree(b, to) }

func (m *Custom) prevFree(b heap.Addr) heap.Addr {
	if !m.doubleLinks() {
		return heap.Nil
	}
	return m.v.PrevFree(b)
}

func (m *Custom) setPrevFree(b, to heap.Addr) {
	if m.doubleLinks() {
		m.v.SetPrevFree(b, to)
	}
}

// Package jobs is dmmserve's job manager: a bounded pool of workers
// running explore/profile jobs asynchronously against the exploration
// engine, with per-job UUIDs, an append-only event log streamed to any
// number of subscribers, TTL'd retention of finished results, and a
// graceful shutdown that drains running searches through the existing
// checkpoint path so a SIGTERM loses no completed work.
//
// Determinism contract: a job built from the same trace, seed, strategy
// and parallelism as a direct Engine.Explore run produces the
// byte-identical candidate stream, best vector and Pareto front — the
// manager only wires the engine's in-order callbacks into the event
// log, it never reorders or resamples. The integration tests pin this.
package jobs

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmmkit/internal/cliopts"
	"dmmkit/internal/server/metrics"
)

// State is a job's lifecycle position.
type State string

// The job states, in lifecycle order. Terminal states are done, failed
// and cancelled; a drained job (checkpointed during shutdown) reports
// cancelled with a non-empty Checkpoint path.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Manager errors surfaced to the API layer.
var (
	// ErrQueueFull rejects a submit when the queue is at capacity; the
	// HTTP layer maps it to 429.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects a submit during graceful shutdown (503).
	ErrDraining = errors.New("jobs: server draining")
	// errDrained aborts a running exploration after its state was
	// checkpointed during shutdown. Internal: jobs report cancelled.
	errDrained = errors.New("jobs: drained to checkpoint")
)

// Config parameterizes a Manager.
type Config struct {
	// Workers is the number of jobs running concurrently (default 2).
	// Each job additionally parallelizes candidate evaluation per its
	// own request, so total CPU use is Workers × job parallelism.
	Workers int
	// QueueDepth caps the queued (not yet running) jobs (default 64);
	// Submit returns ErrQueueFull beyond it.
	QueueDepth int
	// TTL is how long terminal jobs (and their results) are retained
	// before Sweep or a lazy Get evicts them. 0 selects the 15-minute
	// default; negative retains forever.
	TTL time.Duration
	// SpoolDir receives drain checkpoints on shutdown (default: the
	// process's working directory).
	SpoolDir string
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
}

// Manager owns the job table, the FIFO queue and the worker pool.
// Lock order: m.mu may be held while taking a job's j.mu, never the
// reverse — which is why the event counter is atomic (appends happen
// under j.mu) and noteFinished is only called with both locks free.
type Manager struct {
	cfg      Config
	baseCtx  context.Context
	baseStop context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*job
	queue     []*job
	draining  bool
	stopped   bool
	submitted int64
	running   int
	done      int64
	failed    int64
	cancelled int64

	events  atomic.Int64 // total events appended across all jobs
	latency *metrics.Tracker
	wg      sync.WaitGroup
}

// New builds a manager and starts its workers.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.TTL == 0 {
		cfg.TTL = 15 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		baseCtx:  ctx,
		baseStop: stop,
		jobs:     make(map[string]*job),
		latency:  metrics.New(5*time.Minute, 10, cfg.Now),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// NewID returns a random RFC 4122 version-4 UUID. Job and upload
// identity is the one place the server wants collision-proof randomness
// rather than determinism; results stay deterministic regardless of the
// ID. Exported for the API layer, which names uploaded traces the same
// way.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken beyond a job
		// ID's concern.
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	return fmt.Sprintf("%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// Submit validates a request, assigns it an ID and enqueues it.
func (m *Manager) Submit(req Request) (string, error) {
	if err := req.validate(); err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining || m.stopped {
		return "", ErrDraining
	}
	if len(m.queue) >= m.cfg.QueueDepth {
		return "", ErrQueueFull
	}
	j := &job{
		id:      NewID(),
		req:     req,
		state:   StateQueued,
		created: m.cfg.Now(),
		notify:  make(chan struct{}),
		mgr:     m,
	}
	j.append(Event{Type: "state", State: StateQueued})
	m.jobs[j.id] = j
	m.queue = append(m.queue, j)
	m.submitted++
	m.cond.Signal()
	return j.id, nil
}

// Get returns a snapshot of the job, lazily evicting it when its TTL
// has expired (ok false, exactly as if Sweep had run).
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	if m.expiredLocked(j) {
		delete(m.jobs, id)
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// List returns snapshots of every retained job, newest first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		if m.expiredLocked(j) {
			continue
		}
		out = append(out, j.snapshot())
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.After(out[k].Created)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel requests cancellation: a queued job is cancelled immediately,
// a running one through its context (the engine returns the contiguous
// streamed prefix). Cancelling a terminal job is a no-op; ok is false
// only for unknown IDs.
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || m.expiredLocked(j) {
		delete(m.jobs, id)
		m.mu.Unlock()
		return Snapshot{}, false
	}
	m.mu.Unlock()

	j.mu.Lock()
	wasQueued := false
	switch j.state {
	case StateQueued:
		j.finishLocked(StateCancelled, nil, "cancelled before start", "", m.cfg.Now())
		wasQueued = true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	snap := j.snapshotLocked()
	j.mu.Unlock()
	if wasQueued {
		m.noteFinished(StateCancelled, 0)
	}
	return snap, true
}

// Events subscribes to the job's event log from the beginning.
func (m *Manager) Events(id string) (*Stream, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || m.expiredLocked(j) {
		delete(m.jobs, id)
		return nil, false
	}
	return &Stream{j: j}, true
}

// Sweep evicts terminal jobs whose TTL has expired, returning how many.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, j := range m.jobs {
		if m.expiredLocked(j) {
			delete(m.jobs, id)
			n++
		}
	}
	return n
}

// expiredLocked reports whether j's retention has lapsed. Caller holds
// m.mu (j.mu is taken briefly; lock order is always m.mu before j.mu).
func (m *Manager) expiredLocked(j *job) bool {
	if m.cfg.TTL < 0 {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal() && m.cfg.Now().After(j.finished.Add(m.cfg.TTL))
}

// Draining reports whether a graceful shutdown is in progress.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Metrics summarizes the manager for the /v1/metrics endpoint.
func (m *Manager) Metrics() MetricsSnapshot {
	lat := m.latency.Snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	return MetricsSnapshot{
		Submitted:      m.submitted,
		Queued:         len(m.queue),
		Running:        m.running,
		Done:           m.done,
		Failed:         m.failed,
		Cancelled:      m.cancelled,
		Retained:       len(m.jobs),
		WindowCount:    lat.Count,
		WindowAvgMS:    float64(lat.Avg) / float64(time.Millisecond),
		WindowMaxMS:    float64(lat.Max) / float64(time.Millisecond),
		WindowSeconds:  lat.Window.Seconds(),
		WorkerCount:    m.cfg.Workers,
		QueueDepthMax:  m.cfg.QueueDepth,
		Draining:       m.draining,
		RetentionSecs:  m.cfg.TTL.Seconds(),
		EventsAppended: m.events.Load(),
	}
}

// Shutdown drains the manager: new submits are refused, queued jobs are
// cancelled, and running jobs checkpoint their search state to the
// spool directory at the next generation boundary and stop. When ctx
// expires first, running jobs are hard-cancelled through their contexts
// (the engine stops within one evaluation batch) and ctx's error is
// returned; a nil return means every job drained cleanly.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.stopped = true
	queued := m.queue
	m.queue = nil
	m.cond.Broadcast()
	m.mu.Unlock()

	now := m.cfg.Now()
	for _, j := range queued {
		j.mu.Lock()
		wasQueued := j.state == StateQueued
		if wasQueued {
			j.finishLocked(StateCancelled, nil, "server shutting down", "", now)
		}
		j.mu.Unlock()
		if wasQueued {
			m.noteFinished(StateCancelled, 0)
		}
	}

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
		m.baseStop()
		return nil
	case <-ctx.Done():
		m.baseStop() // hard-cancel whatever is still running
		<-workersDone
		return ctx.Err()
	}
}

// noteFinished updates the aggregate counters for one finished job.
// dur 0 (a job cancelled before it started) is not folded into the
// latency window.
func (m *Manager) noteFinished(s State, dur time.Duration) {
	m.mu.Lock()
	switch s {
	case StateDone:
		m.done++
	case StateFailed:
		m.failed++
	case StateCancelled:
		m.cancelled++
	}
	m.mu.Unlock()
	if dur > 0 {
		m.latency.Record(dur)
	}
}

// worker pulls queued jobs until shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.run(j)
	}
}

// next blocks for the next queued job; nil means the manager stopped.
func (m *Manager) next() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.draining || m.stopped {
			return nil
		}
		if len(m.queue) > 0 {
			j := m.queue[0]
			m.queue = m.queue[1:]
			return j
		}
		m.cond.Wait()
	}
}

// job is the manager's mutable record of one submission. Lock order:
// m.mu before j.mu when both are needed.
type job struct {
	id  string
	req Request
	mgr *Manager

	mu         sync.Mutex
	state      State
	created    time.Time
	started    time.Time
	finished   time.Time
	done       int
	total      int
	events     []Event
	notify     chan struct{} // replaced on every append; closed to wake readers
	result     *Result
	errMsg     string
	checkpoint string
	cancel     context.CancelFunc
}

// append adds one event to the log and wakes subscribers.
func (j *job) append(e Event) {
	j.mu.Lock()
	j.appendLocked(e)
	j.mu.Unlock()
}

func (j *job) appendLocked(e Event) {
	e.Seq = len(j.events)
	j.events = append(j.events, e)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mgr.events.Add(1)
}

// start flips the job to running; false when it was cancelled while
// queued (the worker skips it).
func (j *job) start(now time.Time, cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	j.appendLocked(Event{Type: "state", State: StateRunning})
	return true
}

// progress records counts and appends a progress event.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.appendLocked(Event{Type: "progress", Done: done, Total: total})
	j.mu.Unlock()
}

// finishLocked records the terminal state and the final event in one
// critical section, so a subscriber that sees the terminal state has
// the complete log.
func (j *job) finishLocked(s State, res *Result, errMsg, checkpoint string, now time.Time) {
	j.state = s
	j.finished = now
	j.result = res
	j.errMsg = errMsg
	j.checkpoint = checkpoint
	j.appendLocked(Event{Type: "state", State: s, Error: errMsg, Checkpoint: checkpoint})
}

func (j *job) finish(s State, res *Result, errMsg, checkpoint string, now time.Time) {
	j.mu.Lock()
	j.finishLocked(s, res, errMsg, checkpoint, now)
	j.mu.Unlock()
}

func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *job) snapshotLocked() Snapshot {
	s := Snapshot{
		ID:         j.id,
		Kind:       j.req.Kind,
		State:      j.state,
		Trace:      j.req.Trace.displayName(),
		Created:    j.created,
		Done:       j.done,
		Total:      j.total,
		Error:      j.errMsg,
		Checkpoint: j.checkpoint,
		Result:     j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// Stream iterates a job's event log from the beginning, blocking for
// new events until the job is terminal and the log is drained.
type Stream struct {
	j *job
	i int
}

// Next returns the next event. ok is false when the job is terminal and
// every event has been delivered; a ctx cancellation (the HTTP client
// disconnecting) returns ctx's error.
func (s *Stream) Next(ctx context.Context) (Event, bool, error) {
	for {
		s.j.mu.Lock()
		if s.i < len(s.j.events) {
			e := s.j.events[s.i]
			s.i++
			s.j.mu.Unlock()
			return e, true, nil
		}
		if s.j.state.Terminal() {
			s.j.mu.Unlock()
			return Event{}, false, nil
		}
		ch := s.j.notify
		s.j.mu.Unlock()
		select {
		case <-ctx.Done():
			return Event{}, false, ctx.Err()
		case <-ch:
		}
	}
}

// validate fast-fails a request through the same vocabulary checks the
// dmmexplore flags apply (see internal/cliopts), so the server rejects
// a typo with the identical message — and before any trace is touched.
func (r *Request) validate() error {
	switch r.Kind {
	case KindExplore:
		if _, _, err := cliopts.ResolveMode(r.Strategy, r.Objectives); err != nil {
			return err
		}
	case KindProfile:
		// No search options to check.
	default:
		return fmt.Errorf("unknown job kind %q (valid: %s, %s)", r.Kind, KindExplore, KindProfile)
	}
	if (r.Trace.Path == "") == (r.Trace.Workload == "") {
		return errors.New("request must name exactly one trace input: a trace path or a registered workload")
	}
	if r.Budget < 0 || r.Population < 0 || r.Generations < 0 || r.Parallelism < 0 {
		return errors.New("budget, population, generations and parallelism must be non-negative")
	}
	return nil
}

package main

import (
	"strings"
	"testing"

	"dmmkit"
)

// TestResolveModeRejectsUnknownStrategy pins the fast-fail contract: an
// unknown -strategy value is a usage error naming the valid options, and
// it is detected before any workload is built.
func TestResolveModeRejectsUnknownStrategy(t *testing.T) {
	for _, bad := range []string{"", "GA", "genetic", "exhaustive ", "nsga2"} {
		_, _, err := resolveMode(bad, "")
		if err == nil {
			t.Errorf("strategy %q accepted", bad)
			continue
		}
		for _, want := range validStrategies {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("strategy %q: error %q does not list valid option %q", bad, err, want)
			}
		}
	}
}

// TestResolveModeRejectsMalformedObjectives pins the same contract for
// -objectives: unknown names, duplicates and trailing commas are usage
// errors, and work-only runs are refused.
func TestResolveModeRejectsMalformedObjectives(t *testing.T) {
	for _, bad := range []string{"latency", "footprint,footprint", "footprint,", "work", ",work"} {
		if _, _, err := resolveMode("exhaustive", bad); err == nil {
			t.Errorf("objectives %q accepted", bad)
		}
	}
	// nsga has no scalar mode.
	if _, _, err := resolveMode("nsga", "footprint"); err == nil {
		t.Error("nsga with footprint-only objectives accepted")
	}
}

// TestResolveModeDefaults pins the per-strategy objective defaults: the
// scalar strategies default to footprint only, nsga to footprint,work.
func TestResolveModeDefaults(t *testing.T) {
	cases := []struct {
		strategy, objectives string
		wantMulti            bool
	}{
		{"exhaustive", "", false},
		{"ga", "", false},
		{"nsga", "", true},
		{"exhaustive", "footprint,work", true},
		{"ga", "work,footprint", true},
		{"nsga", "footprint,work", true},
		{"exhaustive", "footprint", false},
	}
	for _, c := range cases {
		objs, multi, err := resolveMode(c.strategy, c.objectives)
		if err != nil {
			t.Errorf("resolveMode(%q, %q): %v", c.strategy, c.objectives, err)
			continue
		}
		if multi != c.wantMulti {
			t.Errorf("resolveMode(%q, %q) multi = %v, want %v", c.strategy, c.objectives, multi, c.wantMulti)
		}
		if multi {
			hasWork := false
			for _, o := range objs {
				if o == dmmkit.ObjectiveWork {
					hasWork = true
				}
			}
			if !hasWork {
				t.Errorf("resolveMode(%q, %q) multi without work objective", c.strategy, c.objectives)
			}
		}
	}
}

package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Plot renders the series into a width x height character chart with a
// y-axis legend. X ranges are merged across series.
func Plot(width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // footprint charts anchor y at 0
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxY <= minY {
		return "(no data)\n"
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			col := 0
			if maxX > minX {
				col = int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			}
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mk
		}
	}
	var b strings.Builder
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7s ", SI(maxY))
		case height - 1:
			label = fmt.Sprintf("%7s ", SI(minY))
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(line)
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat(" ", 8) + "+" + strings.Repeat("-", width) + "\n")
	b.WriteString(fmt.Sprintf("%9s%-*s%s\n", SI(minX), width-6, "", SI(maxX)))
	for si, s := range series {
		b.WriteString(fmt.Sprintf("  %c = %s\n", markers[si%len(markers)], s.Name))
	}
	return b.String()
}

// SI formats a value with engineering suffixes (k, M, G).
func SI(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Bar renders a labelled horizontal bar chart scaled to the largest value.
func Bar(rows []BarRow, width int) string {
	var max float64
	for _, r := range rows {
		if r.Value > max {
			max = r.Value
		}
	}
	if max == 0 {
		return "(no data)\n"
	}
	var b strings.Builder
	for _, r := range rows {
		n := int(r.Value / max * float64(width))
		b.WriteString(fmt.Sprintf("%-22s %8s |%s\n", r.Label, SI(r.Value), strings.Repeat("=", n)))
	}
	return b.String()
}

// BarRow is one bar of a Bar chart.
type BarRow struct {
	Label string
	Value float64
}

package dmmkit_test

import (
	"os"
	"path/filepath"
	"testing"

	"dmmkit"
)

func TestPublicAPIPipeline(t *testing.T) {
	// Build a small trace through the public builder.
	b := dmmkit.NewTraceBuilder("api")
	var ids []int64
	for i := 0; i < 200; i++ {
		ids = append(ids, b.Alloc(int64(64+i%5*100), 0))
		if len(ids) > 16 {
			b.Free(ids[0])
			ids = ids[1:]
		}
	}
	for _, id := range ids {
		b.Free(id)
	}
	tr := b.Build()

	prof := dmmkit.Profile(tr)
	if prof.Allocs != 200 {
		t.Fatalf("Allocs = %d, want 200", prof.Allocs)
	}
	design := dmmkit.Design(prof)
	if err := dmmkit.ValidateVector(design.Vector); err != nil {
		t.Fatalf("designed vector invalid: %v", err)
	}
	mgr, err := design.Build(dmmkit.NewHeap())
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmmkit.Replay(mgr, tr, dmmkit.ReplayOpts{SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFootprint < res.MaxLive {
		t.Errorf("footprint %d below live %d", res.MaxFootprint, res.MaxLive)
	}
	if len(res.Series) == 0 {
		t.Error("no series sampled")
	}
}

func TestPublicBaselines(t *testing.T) {
	for _, mk := range []func() dmmkit.Manager{
		func() dmmkit.Manager { return dmmkit.NewKingsley(dmmkit.NewHeap()) },
		func() dmmkit.Manager { return dmmkit.NewLea(dmmkit.NewHeap()) },
		func() dmmkit.Manager { return dmmkit.NewRegions(dmmkit.NewHeap(), nil) },
		func() dmmkit.Manager { return dmmkit.NewObstack(dmmkit.NewHeap()) },
	} {
		m := mk()
		p, err := m.Alloc(dmmkit.Request{Size: 100})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if err := m.Free(p); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if m.Stats().Allocs != 1 {
			t.Errorf("%s: stats not recorded", m.Name())
		}
	}
}

func TestPublicWorkloadTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("workload generation in -short mode")
	}
	drr := dmmkit.DRRTrace(dmmkit.DRRConfig{Seed: 1, Net: dmmkit.NetConfig{Phases: 2, PhaseMs: 100}})
	if err := drr.Validate(); err != nil {
		t.Errorf("DRR trace invalid: %v", err)
	}
	recon := dmmkit.Recon3DTrace(dmmkit.Recon3DConfig{Seed: 1, Pairs: 1})
	if err := recon.Validate(); err != nil {
		t.Errorf("recon3d trace invalid: %v", err)
	}
	render := dmmkit.Render3DTrace(dmmkit.Render3DConfig{Seed: 1, Detail: 100, Frames: 8})
	if err := render.Validate(); err != nil {
		t.Errorf("render3d trace invalid: %v", err)
	}
}

func TestLoadTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := dmmkit.NewTraceBuilder("file")
	id := b.Alloc(128, 1)
	b.Free(id)
	tr := b.Build()

	binPath := filepath.Join(dir, "t.trace")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := dmmkit.LoadTrace(binPath)
	if err != nil {
		t.Fatalf("LoadTrace(binary): %v", err)
	}
	if len(got.Events) != 2 {
		t.Errorf("loaded %d events, want 2", len(got.Events))
	}

	jsonPath := filepath.Join(dir, "t.json")
	f, err = os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = dmmkit.LoadTrace(jsonPath)
	if err != nil {
		t.Fatalf("LoadTrace(json): %v", err)
	}
	if got.Name != "file" {
		t.Errorf("loaded name %q", got.Name)
	}
}

func TestEnumerateAndExploreSmall(t *testing.T) {
	n := dmmkit.EnumerateVectors(func(dmmkit.Vector) bool { return true })
	if n < 100000 {
		t.Errorf("valid space only %d points", n)
	}
	order := dmmkit.TraversalOrder()
	if len(order) == 0 || order[0] != dmmkit.TreeBlockSizes {
		t.Error("traversal order does not start at A2 (block sizes)")
	}
	var bad dmmkit.Vector
	bad.Set(dmmkit.TreeBlockTags, dmmkit.NoTags)
	bad.Set(dmmkit.TreeSplitWhen, dmmkit.Always)
	if msgs := dmmkit.ExplainVector(bad); len(msgs) == 0 {
		t.Error("ExplainVector found no violations in a bad vector")
	}
}

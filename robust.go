package dmmkit

import (
	"context"

	"dmmkit/internal/checkpoint"
	"dmmkit/internal/core"
	workpool "dmmkit/internal/pool"
	"dmmkit/internal/trace"
)

// Fault-tolerance types: panic isolation, checkpoint/resume, transient
// I/O retry. See ARCHITECTURE.md "Failure semantics & recovery".
type (
	// ErrorPolicy selects what a panicking candidate evaluation does to
	// an exploration run: FailFast aborts it, SkipAndRecord converts the
	// panic into the candidate's Err and continues.
	ErrorPolicy = core.ErrorPolicy
	// PanicError is a worker panic recovered by the pool or the engine:
	// the worker's index, the recovered value, and the goroutine stack.
	PanicError = workpool.PanicError
	// CheckpointState is the serialized state of an interrupted
	// exploration: configuration, strategy snapshot, evaluated candidates.
	CheckpointState = checkpoint.State
	// CheckpointMeta records the run configuration a checkpoint belongs
	// to; resume refuses mismatches.
	CheckpointMeta = checkpoint.Meta
	// TraceIdentity pins the input a checkpoint belongs to (file content
	// hash, or workload name + seed + quick).
	TraceIdentity = checkpoint.TraceIdentity
	// TraceFileOpts configures OpenTraceFileWith (injectable opener,
	// retry policy for transient open failures).
	TraceFileOpts = trace.FileOpts
	// RetryPolicy bounds retry-with-backoff for transient I/O failures.
	RetryPolicy = trace.RetryPolicy
)

// The two candidate-error policies (see ExploreOpts.OnCandidateError).
const (
	// FailFast (the default) aborts the exploration at the first
	// panicking candidate, returning a *PanicError.
	FailFast = core.FailFast
	// SkipAndRecord records a panicking candidate as a per-candidate
	// failure and continues, deterministically at any parallelism.
	SkipAndRecord = core.SkipAndRecord
)

// ErrNotCheckpoint reports that a file is not a checkpoint at all, as
// opposed to a corrupt or truncated one.
var ErrNotCheckpoint = checkpoint.ErrNotCheckpoint

// ParseErrorPolicy parses the CLI spelling of an error policy: "fail"
// (fail-fast, the default) or "skip" (skip-and-record).
func ParseErrorPolicy(s string) (ErrorPolicy, error) { return core.ParseErrorPolicy(s) }

// SaveCheckpoint writes a checkpoint atomically: the path always holds
// either the previous complete checkpoint or the new one.
func SaveCheckpoint(path string, s *CheckpointState) error { return checkpoint.Save(path, s) }

// LoadCheckpoint reads and verifies a checkpoint file.
func LoadCheckpoint(path string) (*CheckpointState, error) { return checkpoint.Load(path) }

// CheckpointCandidates projects evaluated candidates onto the
// checkpoint's wire form (Params drop — they re-derive on resume).
func CheckpointCandidates(cands []Candidate) []checkpoint.Candidate {
	return checkpoint.FromCandidates(cands)
}

// TraceFileIdentity hashes a trace file into the identity a checkpoint
// stores: a renamed copy still matches, an edited one does not.
func TraceFileIdentity(path string) (TraceIdentity, error) { return checkpoint.FileIdentity(path) }

// WorkloadTraceIdentity is the checkpoint identity of a generated trace.
func WorkloadTraceIdentity(name string, seed int64, quick bool) TraceIdentity {
	return checkpoint.WorkloadIdentity(name, seed, quick)
}

// SourceWithContext wraps a trace source so cancelling ctx fails the
// stream (and closes the underlying source) at the next event.
func SourceWithContext(ctx context.Context, src TraceSource) TraceSource {
	return trace.WithContext(ctx, src)
}

// SinkWithContext wraps an event sink so cancelling ctx fails the next
// write — the hook that lets Ctrl-C abort a streaming trace generation.
func SinkWithContext(ctx context.Context, sink EventSink) EventSink {
	return trace.SinkWithContext(ctx, sink)
}

// OpenTraceFileWith is OpenTraceFile with explicit fault-tolerance
// options: a retry policy for transient open/probe failures and an
// injectable opener (used by the fault-injection tests).
func OpenTraceFileWith(path string, opts TraceFileOpts) (*TraceFile, error) {
	return trace.OpenFileWith(path, opts)
}

// IsTransient reports whether an I/O error is worth retrying: it
// unwraps to EINTR/EAGAIN or to any error exposing Transient() bool.
func IsTransient(err error) bool { return trace.IsTransient(err) }

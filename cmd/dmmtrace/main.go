// Command dmmtrace generates the case-study allocation traces to files in
// the binary or JSON trace format, for use with dmmprofile and dmmexplore.
//
// The default format is DMMT2, the streamable binary format: events are
// piped to the output as the workload generates them, never materialized
// as a slice (the workload's own simulation state is all that stays in
// memory). The legacy DMMT1 format and JSON materialize the trace first.
// "-o -" writes to stdout.
//
// Usage:
//
//	dmmtrace -workload drr -seed 3 -o drr3.trace
//	dmmtrace -workload recon3d -format json -o recon.json
//	dmmtrace -workload drr -o - | wc -c
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"dmmkit"
)

// fail prints the error and exits non-zero, removing the partially
// written output file first: a trace that failed to encode (disk full,
// I/O error) or was interrupted mid-write must not be left behind
// looking like a valid one.
func fail(err error, removePath string) {
	if removePath != "" {
		os.Remove(removePath)
	}
	fmt.Fprintf(os.Stderr, "dmmtrace: %v\n", err)
	os.Exit(1)
}

func main() {
	var (
		workload = flag.String("workload", "drr", "registered workload: "+strings.Join(dmmkit.Workloads(), ", "))
		seed     = flag.Int64("seed", 1, "workload seed")
		quick    = flag.Bool("quick", false, "reduced workload configuration")
		format   = flag.String("format", "binary", "binary (DMMT2, streamed), binary1 (legacy DMMT1) or json")
		out      = flag.String("o", "", "output file; - for stdout (default <workload><seed>.trace)")
	)
	flag.Parse()

	// Ctrl-C aborts generation (the context-wrapped sink fails the next
	// streamed event) and removes the partial output file.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *format {
	case "binary", "binary1", "json":
	default:
		fmt.Fprintf(os.Stderr, "dmmtrace: unknown format %q (binary, binary1, json)\n", *format)
		os.Exit(2)
	}
	// Validate the workload name before creating the output file, so a
	// usage error neither creates nor clobbers anything.
	known := false
	for _, w := range dmmkit.Workloads() {
		known = known || w == *workload
	}
	if !known {
		fmt.Fprintf(os.Stderr, "dmmtrace: unknown workload %q (registered: %s)\n",
			*workload, strings.Join(dmmkit.Workloads(), ", "))
		os.Exit(2)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s%d.trace", *workload, *seed)
	}
	f := os.Stdout
	removePath := ""
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			fail(err, "")
		}
		removePath = path
	}
	// closeOut flushes the file to disk exactly once; a dropped Close
	// error (a full disk buffers locally and fails at close) would report
	// success over a truncated trace.
	closed := false
	closeOut := func() error {
		if closed || f == os.Stdout {
			return nil
		}
		closed = true
		return f.Close()
	}
	defer closeOut()

	wopts := dmmkit.WorkloadOpts{Seed: *seed, Quick: *quick}
	stats := &dmmkit.TraceStats{}
	if *format == "binary" {
		// Streaming: the encoder is the workload's event sink, so the
		// trace goes straight to disk without being materialized. The
		// context wrapper turns a Ctrl-C into a failed write, which the
		// builder latches and BuildWorkload reports.
		stats.Sink = dmmkit.NewTraceEncoder(f)
		wopts.Sink = dmmkit.SinkWithContext(ctx, stats)
	}

	tr, err := dmmkit.BuildWorkload(*workload, wopts)
	if err != nil {
		fail(err, removePath)
	}

	events, peakLive := len(tr.Events), tr.MaxLiveBytes()
	switch *format {
	case "binary":
		err = stats.Sink.(*dmmkit.TraceEncoder).Close()
		events, peakLive = stats.Events(), stats.MaxLiveBytes()
	case "binary1":
		err = tr.EncodeBinary(f)
	case "json":
		err = tr.EncodeJSON(f)
	}
	// The materialized formats have no streaming cancellation point; a
	// Ctrl-C that arrived during generation or encoding still removes
	// the partial output via the joined context error.
	if err = errors.Join(err, ctx.Err(), closeOut()); err != nil {
		fail(fmt.Errorf("encoding: %w", err), removePath)
	}
	fmt.Fprintf(os.Stderr, "%s: %d events, peak live %d bytes -> %s\n",
		tr.Name, events, peakLive, path)
}

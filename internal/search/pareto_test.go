package search

import (
	"math/rand"
	"testing"

	"dmmkit/internal/dspace"
)

func pt(f, w int64) Result {
	var v dspace.Vector
	v.Set(dspace.A1BlockStructure, dspace.Leaf(f%3))
	return Result{Vector: v, Footprint: f, Work: w}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Result
		want bool
	}{
		{pt(1, 1), pt(2, 2), true},              // better in both
		{pt(1, 2), pt(2, 2), true},              // better in one, equal in the other
		{pt(2, 1), pt(2, 2), true},              // same footprint, less work
		{pt(2, 2), pt(2, 2), false},             // equal point: no strict improvement
		{pt(1, 3), pt(3, 1), false},             // trade-off: incomparable
		{pt(3, 1), pt(1, 3), false},             // trade-off, other direction
		{Result{Failed: true}, pt(9, 9), false}, // failed dominates nothing
		{pt(9, 9), Result{Failed: true}, true},  // success dominates failure
		{Result{Failed: true}, Result{Failed: true}, false},
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Dominates(%+v, %+v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// TestParetoFrontEmptyAndSingleton pins the degenerate fronts: the zero
// value is empty, a failed result leaves it empty, and one successful
// result is its own front.
func TestParetoFrontEmptyAndSingleton(t *testing.T) {
	var f ParetoFront
	if f.Len() != 0 || len(f.Results()) != 0 {
		t.Fatalf("zero-value front not empty: %v", f.Results())
	}
	if f.Add(Result{Failed: true}) {
		t.Error("failed result entered the front")
	}
	if f.Len() != 0 {
		t.Fatalf("front has %d members after a failed add", f.Len())
	}
	if !f.Add(pt(10, 10)) {
		t.Error("first successful result rejected")
	}
	if f.Len() != 1 {
		t.Fatalf("singleton front has %d members", f.Len())
	}
	if got := f.Results(); got[0].Footprint != 10 || got[0].Work != 10 {
		t.Errorf("singleton front holds %+v", got[0])
	}
	if !f.Dominated(pt(11, 11)) || f.Dominated(pt(9, 20)) {
		t.Error("Dominated disagrees with the singleton front")
	}
}

// TestParetoFrontAccumulates drives the accumulator through inserts,
// rejections and evictions and checks the maintained invariant: sorted by
// ascending footprint, strictly descending work, no dominated members.
func TestParetoFrontAccumulates(t *testing.T) {
	var f ParetoFront
	adds := []struct {
		r    Result
		want bool
	}{
		{pt(10, 10), true},
		{pt(20, 20), false}, // dominated
		{pt(5, 20), true},   // trade-off: cheaper footprint, more work
		{pt(15, 5), true},   // trade-off: more footprint, less work
		{pt(10, 10), false}, // duplicate objective point
		{pt(10, 11), false}, // dominated by (10,10)
		{pt(10, 9), true},   // evicts (10,10)
		{pt(1, 1), true},    // dominates everything: evicts the whole front
	}
	for i, a := range adds {
		if got := f.Add(a.r); got != a.want {
			t.Errorf("add %d (%d,%d): Add = %v, want %v", i, a.r.Footprint, a.r.Work, got, a.want)
		}
	}
	got := f.Results()
	if len(got) != 1 || got[0].Footprint != 1 || got[0].Work != 1 {
		t.Fatalf("final front %v, want the single point (1,1)", got)
	}
}

// TestParetoFrontMatchesBruteForce cross-checks the incremental
// accumulator against a brute-force dominance filter on random points,
// and checks the ordering invariant of Results.
func TestParetoFrontMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var results []Result
		for i := 0; i < 60; i++ {
			results = append(results, pt(int64(rng.Intn(30)), int64(rng.Intn(30))))
		}
		got := FrontOf(results)
		// Brute force: a point is on the front iff nothing dominates it;
		// among equal objective points only one survives.
		type point struct{ f, w int64 }
		wantSet := map[point]bool{}
		for _, r := range results {
			dominated := false
			for _, s := range results {
				if Dominates(s, r) {
					dominated = true
					break
				}
			}
			if !dominated {
				wantSet[point{r.Footprint, r.Work}] = true
			}
		}
		if len(got) != len(wantSet) {
			t.Fatalf("trial %d: front has %d points, brute force %d", trial, len(got), len(wantSet))
		}
		for i, r := range got {
			if !wantSet[point{r.Footprint, r.Work}] {
				t.Fatalf("trial %d: front point (%d,%d) not in brute-force set", trial, r.Footprint, r.Work)
			}
			if i > 0 && (got[i-1].Footprint >= r.Footprint || got[i-1].Work <= r.Work) {
				t.Fatalf("trial %d: front not strictly ordered at %d: %v", trial, i, got)
			}
		}
	}
}

// TestParetoFrontDeterministicTieBreak pins first-seen-wins for equal
// objective points: the surviving vector is the one added first.
func TestParetoFrontDeterministicTieBreak(t *testing.T) {
	a, b := pt(5, 5), pt(5, 5)
	b.Vector.Set(dspace.C1Fit, dspace.BestFit)
	var f ParetoFront
	f.Add(a)
	f.Add(b)
	got := f.Results()
	if len(got) != 1 || got[0].Vector != a.Vector {
		t.Fatalf("tie broken to %v, want first-seen %v", got[0].Vector, a.Vector)
	}
}

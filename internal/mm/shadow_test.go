package mm

import (
	"math/rand"
	"testing"

	"dmmkit/internal/heap"
)

// TestShadowDifferential drives the open-addressing shadow table and a
// reference Go map through the same random operation sequence and checks
// they agree after every step.
func TestShadowDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s Shadow
	ref := make(map[heap.Addr]int64)
	var keys []heap.Addr

	randAddr := func() heap.Addr {
		// 8-aligned, non-zero, clustered like real block addresses.
		return heap.Addr((rng.Int63n(1<<20) + 1) * 8)
	}
	for i := 0; i < 200000; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // add
			p := randAddr()
			req := rng.Int63n(1 << 20)
			if _, exists := ref[p]; !exists {
				keys = append(keys, p)
			}
			s.Add(p, req)
			ref[p] = req
		case op < 9 && len(keys) > 0: // remove (mix of live and dead keys)
			var p heap.Addr
			if rng.Intn(4) == 0 {
				p = randAddr()
			} else {
				j := rng.Intn(len(keys))
				p = keys[j]
				keys = append(keys[:j], keys[j+1:]...)
			}
			wantReq, wantOK := ref[p]
			delete(ref, p)
			gotReq, gotOK := s.Remove(p)
			if gotOK != wantOK || gotReq != wantReq {
				t.Fatalf("op %d: Remove(%#x) = (%d, %v), want (%d, %v)", i, p, gotReq, gotOK, wantReq, wantOK)
			}
		default: // contains
			p := randAddr()
			_, want := ref[p]
			if got := s.Contains(p); got != want {
				t.Fatalf("op %d: Contains(%#x) = %v, want %v", i, p, got, want)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", i, s.Len(), len(ref))
		}
	}
	// Drain everything through Remove to exercise deletion chains.
	for p, want := range ref {
		got, ok := s.Remove(p)
		if !ok || got != want {
			t.Fatalf("drain Remove(%#x) = (%d, %v), want (%d, true)", p, got, ok, want)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", s.Len())
	}
}

func TestShadowResetAndReuse(t *testing.T) {
	var s Shadow
	for i := 1; i <= 100; i++ {
		s.Add(heap.Addr(i*8), int64(i))
	}
	s.Reset()
	if s.Len() != 0 || s.Contains(8) {
		t.Fatal("Reset did not clear the table")
	}
	s.Add(16, 7)
	if req, ok := s.Remove(16); !ok || req != 7 {
		t.Fatalf("Remove after Reset = (%d, %v), want (7, true)", req, ok)
	}
}

// TestShadowAddOverwrite checks that re-adding a live address updates its
// size without growing the table's logical count.
func TestShadowAddOverwrite(t *testing.T) {
	var s Shadow
	s.Add(64, 10)
	s.Add(64, 20)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if req, _ := s.Remove(64); req != 20 {
		t.Fatalf("req = %d, want 20", req)
	}
}

func BenchmarkShadowAddRemove(b *testing.B) {
	var s Shadow
	for i := 0; i < b.N; i++ {
		p := heap.Addr((i%1024 + 1) * 16)
		s.Add(p, 64)
		s.Remove(p)
	}
}

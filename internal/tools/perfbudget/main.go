// Command perfbudget is the static performance gate: it asks the Go
// compiler what it actually did to the hot-path packages — which
// functions inline (and why not), which values escape to the heap,
// which bounds checks survive inside //dmm:hotloop-annotated loops —
// and diffs that inventory against the committed perf_budget.json.
//
// The compiler is the oracle: `-gcflags=-m=2` for inline and escape
// decisions, `-gcflags=-d=ssa/check_bce/debug=1` for bounds checks.
// Sites are keyed symbolically (package, function, the compiler's own
// message text), never by line number, so reordering code without
// changing its performance shape does not churn the budget. An escape
// that appears on a fast path, a function that falls out of the
// inliner's budget, a hot loop that regrows a bounds check — each shows
// up as a diff, exits non-zero, and names the function and fact that
// moved.
//
// Compiler diagnostics are not stable across Go releases, so the
// budget records the toolchain's major.minor prefix and the gate only
// compares like with like; CI pins the version. After a deliberate
// change (or a toolchain bump), regenerate with -update and review the
// budget diff like any other golden.
//
// Usage (from the module root):
//
//	go run ./internal/tools/perfbudget              # gate: diff against perf_budget.json
//	go run ./internal/tools/perfbudget -update      # regenerate the budget
//	go run ./internal/tools/perfbudget -diff got.json  # also dump the measured inventory
//
// Exit status: 0 when the inventory matches the budget, 1 on any
// drift (or toolchain mismatch), 2 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
)

// DefaultPkgs is the hot-path surface under budget: the simulated heap,
// the allocator implementations, the cost model, the trace codec, and
// the replay engine — everything on the per-event path of an
// exploration run, plus the core config types they share.
const DefaultPkgs = "dmmkit/internal/heap,dmmkit/internal/mm,dmmkit/internal/bitset,dmmkit/internal/alloc/...,dmmkit/internal/trace,dmmkit/internal/replay,dmmkit/internal/core"

// DefaultBudget is the committed golden at the module root.
const DefaultBudget = "perf_budget.json"

func main() {
	update := flag.Bool("update", false, "rewrite the budget file from a fresh measurement instead of gating")
	budgetPath := flag.String("budget", DefaultBudget, "path of the committed budget golden")
	pkgsFlag := flag.String("pkgs", DefaultPkgs, "comma-separated package patterns to measure")
	diffOut := flag.String("diff", "", "also write the freshly measured inventory JSON to this path (CI failure artifact)")
	flag.Parse()

	got, err := measure(*pkgsFlag, goMajorMinor(runtime.Version()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbudget:", err)
		os.Exit(2)
	}
	if *diffOut != "" {
		if err := writeBudget(*diffOut, got); err != nil {
			fmt.Fprintln(os.Stderr, "perfbudget:", err)
			os.Exit(2)
		}
	}
	if *update {
		if err := writeBudget(*budgetPath, got); err != nil {
			fmt.Fprintln(os.Stderr, "perfbudget:", err)
			os.Exit(2)
		}
		fmt.Printf("perfbudget: wrote %s (%d packages, %d functions, %s)\n",
			*budgetPath, len(got.Packages), countFuncs(got), got.GoVersion)
		return
	}
	want, err := readBudget(*budgetPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfbudget: %v (seed it with -update)\n", err)
		os.Exit(2)
	}
	if want.GoVersion != got.GoVersion {
		fmt.Fprintf(os.Stderr, "perfbudget: budget was measured with %s, this toolchain is %s; compiler diagnostics are not comparable across releases — rerun with the pinned toolchain or regenerate with -update\n",
			want.GoVersion, got.GoVersion)
		os.Exit(1)
	}
	diffs := diffInventories(want, got)
	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "perfbudget: inventory drifted from %s (%d differences):\n", *budgetPath, len(diffs))
		for _, d := range diffs {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		fmt.Fprintln(os.Stderr, "if the change is deliberate, regenerate with: go run ./internal/tools/perfbudget -update")
		os.Exit(1)
	}
	fmt.Printf("perfbudget: ok (%d packages, %d functions, %s)\n",
		len(got.Packages), countFuncs(got), got.GoVersion)
}

var goVersionRE = regexp.MustCompile(`^go\d+\.\d+`)

// goMajorMinor truncates runtime.Version() to its major.minor prefix
// ("go1.24.0" -> "go1.24"); patch releases share diagnostics.
func goMajorMinor(v string) string {
	if m := goVersionRE.FindString(v); m != "" {
		return m
	}
	return v
}

func countFuncs(inv *Inventory) int {
	n := 0
	for _, p := range inv.Packages {
		n += len(p.Funcs)
	}
	return n
}

func readBudget(path string) (*Inventory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var inv Inventory
	if err := json.Unmarshal(data, &inv); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &inv, nil
}

func writeBudget(path string, inv *Inventory) error {
	data, err := json.MarshalIndent(inv, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diffInventories reports every fact present in exactly one side or
// differing between the two, one human-readable line per fact, sorted.
// The gate is exact in both directions: an improvement (an escape gone,
// a function newly inlinable) also diffs, so the budget is regenerated
// and the win is recorded rather than silently absorbed.
func diffInventories(want, got *Inventory) []string {
	var diffs []string
	for _, pkg := range unionKeys(want.Packages, got.Packages) {
		wp, gp := want.Packages[pkg], got.Packages[pkg]
		switch {
		case wp == nil:
			diffs = append(diffs, fmt.Sprintf("%s: package not in budget", pkg))
			continue
		case gp == nil:
			diffs = append(diffs, fmt.Sprintf("%s: package in budget but not measured", pkg))
			continue
		}
		for _, fn := range unionKeys(wp.Funcs, gp.Funcs) {
			wf, gf := wp.Funcs[fn], gp.Funcs[fn]
			switch {
			case wf == nil:
				diffs = append(diffs, fmt.Sprintf("%s: %s: new function, not in budget", pkg, fn))
				continue
			case gf == nil:
				diffs = append(diffs, fmt.Sprintf("%s: %s: in budget but no longer measured", pkg, fn))
				continue
			}
			diffs = append(diffs, diffFunc(pkg, fn, wf, gf)...)
		}
	}
	sort.Strings(diffs)
	return diffs
}

func diffFunc(pkg, fn string, want, got *FuncFacts) []string {
	var diffs []string
	if want.Inline != got.Inline {
		reason := got.InlineReason
		if got.Inline {
			reason = "now inlinable"
		}
		diffs = append(diffs, fmt.Sprintf("%s: %s: inline %v -> %v (%s)", pkg, fn, want.Inline, got.Inline, reason))
	} else if want.InlineReason != got.InlineReason {
		diffs = append(diffs, fmt.Sprintf("%s: %s: cannot-inline reason %q -> %q", pkg, fn, want.InlineReason, got.InlineReason))
	}
	for _, site := range unionKeys(want.Escapes, got.Escapes) {
		w, g := want.Escapes[site], got.Escapes[site]
		if w != g {
			diffs = append(diffs, fmt.Sprintf("%s: %s: escape %q: %d -> %d", pkg, fn, site, w, g))
		}
	}
	if want.HotLoops != got.HotLoops {
		diffs = append(diffs, fmt.Sprintf("%s: %s: hot loops %d -> %d", pkg, fn, want.HotLoops, got.HotLoops))
	}
	if want.HotBoundsChecks != got.HotBoundsChecks {
		diffs = append(diffs, fmt.Sprintf("%s: %s: hot-loop bounds checks %d -> %d", pkg, fn, want.HotBoundsChecks, got.HotBoundsChecks))
	}
	return diffs
}

func unionKeys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	return sortedKeys(seen)
}

package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden differential file from current behavior")

const goldenPath = "testdata/golden_table1.json"

// TestGoldenDifferential replays every benchmark workload against every
// manager and compares the complete observable outcome — placements (via a
// heap checksum over every byte), footprint, live bytes, work units, and
// system-call counters — against testdata/golden_table1.json, which was
// captured from the unoptimized seed implementation. Hot-path
// optimizations (fast in-band accessors, bitmap-indexed bins,
// allocation-free replay) must keep all of it bit-identical.
//
// Regenerate deliberately with: go test ./internal/experiments -run Golden -update
func TestGoldenDifferential(t *testing.T) {
	got, err := CaptureGolden()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cells to %s", len(got), goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want []GoldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d cells, golden has %d", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g != w {
			t.Errorf("%s on %s diverged from seed behavior:\n  got  %+v\n  want %+v", g.Manager, g.Workload, g, w)
		}
	}
}

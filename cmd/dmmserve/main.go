// Command dmmserve serves the design-space exploration engine over
// HTTP/JSON: upload traces, launch explore/profile jobs, stream their
// candidate events live, and fetch results — the same deterministic
// engine dmmexplore drives, behind a bounded job manager.
//
// Endpoints (all under /v1):
//
//	POST   /v1/traces          upload a DMMT trace (raw body, CRC-verified)
//	POST   /v1/jobs            launch a job (JSON; same vocabulary as dmmexplore flags)
//	GET    /v1/jobs            list retained jobs
//	GET    /v1/jobs/{id}       job status and result
//	GET    /v1/jobs/{id}/events  NDJSON (or SSE via Accept) event stream
//	DELETE /v1/jobs/{id}       cancel a job
//	GET    /v1/metrics         job counters and windowed latencies
//	GET    /v1/registry        registered workloads, managers, strategies
//
// A job submitted with the same trace, strategy, seed and budget as a
// dmmexplore invocation returns the byte-identical candidate stream,
// best point and Pareto front, at any -workers or job parallelism.
//
// SIGINT/SIGTERM shuts down gracefully: queued jobs are cancelled and
// running explorations checkpoint their full search state into -spool
// at the next generation boundary (resumable with dmmexplore -resume);
// jobs still running when -grace expires are hard-cancelled. A clean
// drain exits 0.
//
// Usage:
//
//	dmmserve -addr 127.0.0.1:8377 -spool /var/tmp/dmm -workers 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmmkit/internal/server/api"
	"dmmkit/internal/server/jobs"

	// Populate the workload and manager registries /v1/registry exposes
	// and workload-backed jobs draw from.
	_ "dmmkit/internal/alloc/kingsley"
	_ "dmmkit/internal/alloc/lea"
	_ "dmmkit/internal/alloc/obstack"
	_ "dmmkit/internal/alloc/region"
	_ "dmmkit/internal/workloads/drr"
	_ "dmmkit/internal/workloads/recon3d"
	_ "dmmkit/internal/workloads/render3d"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks a free port)")
		spool      = flag.String("spool", "", "directory for uploaded traces and drain checkpoints (default: a fresh temp dir)")
		workers    = flag.Int("workers", 2, "jobs running concurrently (each job parallelizes further per its request)")
		queueDepth = flag.Int("queue-depth", 64, "queued-jobs cap; beyond it POST /v1/jobs answers 429")
		ttl        = flag.Duration("ttl", 15*time.Minute, "retention of finished jobs and their results (negative: forever)")
		maxUpload  = flag.Int64("max-upload", 1<<30, "largest accepted trace upload in bytes")
		grace      = flag.Duration("grace", 30*time.Second, "graceful-shutdown budget before running jobs are hard-cancelled")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: dmmserve [flags] (no positional arguments)")
		os.Exit(2)
	}
	if err := run(*addr, *spool, *workers, *queueDepth, *ttl, *maxUpload, *grace); err != nil {
		fmt.Fprintf(os.Stderr, "dmmserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, spool string, workers, queueDepth int, ttl time.Duration, maxUpload int64, grace time.Duration) error {
	if spool == "" {
		dir, err := os.MkdirTemp("", "dmmserve-spool-*")
		if err != nil {
			return fmt.Errorf("creating spool dir: %w", err)
		}
		spool = dir
		fmt.Fprintf(os.Stderr, "dmmserve: spooling to %s\n", spool)
	}

	mgr := jobs.New(jobs.Config{
		Workers:    workers,
		QueueDepth: queueDepth,
		TTL:        ttl,
		SpoolDir:   spool,
	})
	srv, err := api.New(api.Config{
		Manager:        mgr,
		SpoolDir:       spool,
		MaxUploadBytes: maxUpload,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Janitor: evict expired jobs even when nobody polls them.
	go func() {
		tick := time.NewTicker(time.Minute)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				mgr.Sweep()
			}
		}
	}()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "dmmserve: listening on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: first the job manager (running explorations
	// checkpoint and stop, which also terminates their event streams),
	// then the HTTP server (flushes those streams and closes). The
	// grace budget covers both phases.
	fmt.Fprintln(os.Stderr, "dmmserve: shutting down, draining jobs...")
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := mgr.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "dmmserve: drain incomplete, running jobs hard-cancelled: %v\n", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		// Lingering connections past the budget: close them.
		_ = hs.Close() // final hard stop; nothing left to preserve
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "dmmserve: bye")
	return nil
}

// Package pool provides the tiny indexed worker pool behind the parallel
// engine: candidate evaluation and experiment cells are embarrassingly
// parallel (every job owns a private simulated heap), so all the engine
// needs is "run fn(i) for i in [0,n) on p workers, stop early on error or
// cancellation". Results are returned by writing into caller-owned slices
// at index i, which keeps output ordering deterministic regardless of
// scheduling.
package pool

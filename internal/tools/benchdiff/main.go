// Command benchdiff is the CI perf-regression gate: it compares a
// freshly measured benchmark report (dmmbench -exp bench -json ...)
// against the committed BENCH_table1.json baseline, row by row, and
// exits non-zero when any workload×manager cell's ns_per_replay grew
// beyond the tolerance.
//
// The tolerance is deliberately generous (default +40%): CI runners are
// noisy shared machines, and the gate exists to catch real simulator
// regressions — an accidentally quadratic free list, a lost fast path —
// not single-digit jitter. Footprint columns are not compared here; the
// golden differential test guards those bit-exactly.
//
// Usage (from the module root):
//
//	go run ./cmd/dmmbench -exp bench -json bench_pr.json
//	go run ./internal/tools/benchdiff -base BENCH_table1.json -new bench_pr.json
//	go run ./internal/tools/benchdiff -base BENCH_table1.json -new bench_pr.json -tolerance 0.40
//
// Exit status: 0 when every row is within tolerance, 1 on any
// regression or missing row, 2 on bad input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"dmmkit/internal/experiments"
)

// rowDelta is one workload×manager comparison.
type rowDelta struct {
	Workload, Manager string
	BaseNs, NewNs     float64
	Missing           bool // row present in the baseline but not remeasured
}

// Ratio returns new over base ns/replay (1.0 = unchanged, 1.4 = 40%
// slower).
func (d rowDelta) Ratio() float64 {
	if d.BaseNs == 0 {
		return 0
	}
	return d.NewNs / d.BaseNs
}

// compare matches cur's rows to base's by workload×manager and returns
// every baseline row's delta (in baseline order) plus the subset that
// regressed: rows missing from cur, and rows whose ns_per_replay exceeds
// base*(1+tolerance).
func compare(base, cur *experiments.BenchReport, tolerance float64) (deltas, regressed []rowDelta) {
	type key struct{ w, m string }
	measured := make(map[key]experiments.BenchRow, len(cur.Rows))
	for _, r := range cur.Rows {
		measured[key{r.Workload, r.Manager}] = r
	}
	for _, b := range base.Rows {
		d := rowDelta{Workload: b.Workload, Manager: b.Manager, BaseNs: b.NsPerReplay}
		if c, ok := measured[key{b.Workload, b.Manager}]; ok {
			d.NewNs = c.NsPerReplay
		} else {
			d.Missing = true
		}
		deltas = append(deltas, d)
		if d.Missing || d.NewNs > b.NsPerReplay*(1+tolerance) {
			regressed = append(regressed, d)
		}
	}
	return deltas, regressed
}

func load(path string) (*experiments.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("%s: no benchmark rows", path)
	}
	return &rep, nil
}

func main() {
	var (
		basePath  = flag.String("base", "BENCH_table1.json", "committed baseline report")
		newPath   = flag.String("new", "bench_pr.json", "freshly measured report to gate")
		tolerance = flag.Float64("tolerance", 0.40, "allowed ns_per_replay growth fraction (0.40 = +40%)")
	)
	flag.Parse()
	if *tolerance < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -tolerance must be >= 0")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: new report: %v\n", err)
		os.Exit(2)
	}

	deltas, regressed := compare(base, cur, *tolerance)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tmanager\tbase ns/replay\tnew ns/replay\tratio\t")
	for _, d := range deltas {
		if d.Missing {
			fmt.Fprintf(tw, "%s\t%s\t%.0f\t(missing)\t\tREGRESSED\n", d.Workload, d.Manager, d.BaseNs)
			continue
		}
		mark := ""
		if d.NewNs > d.BaseNs*(1+*tolerance) {
			mark = "REGRESSED"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.0f\t%.2f\t%s\n", d.Workload, d.Manager, d.BaseNs, d.NewNs, d.Ratio(), mark)
	}
	tw.Flush()

	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d of %d rows regressed beyond +%.0f%%\n",
			len(regressed), len(deltas), 100**tolerance)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: all %d rows within +%.0f%% of the baseline\n", len(deltas), 100**tolerance)
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DetPkgs is the default set of deterministic packages: everywhere a
// wall-clock read or a shared global RNG would desync the byte-identical
// replay/explore contract. Additions here should come with a row in
// ARCHITECTURE.md's determinism ladder.
const DetPkgs = "dmmkit/internal/core," +
	"dmmkit/internal/search," +
	"dmmkit/internal/trace," +
	"dmmkit/internal/mm," +
	"dmmkit/internal/heap," +
	"dmmkit/internal/dspace," +
	"dmmkit/internal/checkpoint," +
	"dmmkit/internal/replay," +
	"dmmkit/internal/workloads/..."

// Detrand forbids nondeterminism sources in deterministic packages:
// the global math/rand convenience functions (Int, Intn, Float64,
// Shuffle, ...), whose shared state makes output depend on goroutine
// interleaving and process history, and wall-clock reads (time.Now,
// time.Since, time.Until) outside bench-tagged files. The blessed
// pattern is an explicitly seeded generator, rand.New(rand.NewSource(seed)),
// threaded through the call chain.
var Detrand = &analysis.Analyzer{
	Name:     "detrand",
	Doc:      "forbid global math/rand and wall-clock reads in deterministic packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetrand,
}

var detrandPkgs *string

// randConstructors are the math/rand package-level functions that build
// or seed explicit generators rather than consult the shared global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func init() {
	detrandPkgs = Detrand.Flags.String("pkgs", DetPkgs,
		"comma-separated deterministic package paths (suffix /... matches subtrees)")
}

func runDetrand(pass *analysis.Pass) (interface{}, error) {
	if !matchPkg(pass.Pkg.Path(), *detrandPkgs) {
		return nil, nil
	}
	benchFile := benchTaggedFiles(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Type().(*types.Signature).Recv() != nil {
			return // not a package-level function
		}
		pkg := fn.Pkg()
		if pkg == nil {
			return
		}
		switch pkg.Path() {
		case "math/rand", "math/rand/v2":
			if randConstructors[fn.Name()] {
				return
			}
			pass.Reportf(call.Pos(),
				"global %s.%s breaks deterministic replay; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
				pkg.Path(), fn.Name())
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				if benchFile[pass.Fset.File(call.Pos())] {
					return
				}
				pass.Reportf(call.Pos(),
					"time.%s in deterministic package %s; derive time from trace ticks or move this into a bench-tagged file",
					fn.Name(), pass.Pkg.Path())
			}
		}
	})
	return nil, nil
}

// calleeFunc resolves a call's callee to the *types.Func it invokes,
// unwrapping parenthesization and selector forms; nil for calls of
// function-typed values, conversions and builtins.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// benchTaggedFiles maps each token.File whose //go:build constraint
// mentions the bench tag; wall-clock reads are legitimate there.
func benchTaggedFiles(pass *analysis.Pass) map[*token.File]bool {
	out := map[*token.File]bool{}
	for _, f := range pass.Files {
		tagged := false
		for _, cg := range f.Comments {
			if cg.Pos() > f.Package {
				break
			}
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//go:build") && containsTag(c.Text, "bench") {
					tagged = true
				}
			}
		}
		if tagged {
			out[pass.Fset.File(f.Pos())] = true
		}
	}
	return out
}

// containsTag reports whether the build-constraint line mentions tag as
// a whole word.
func containsTag(line, tag string) bool {
	for _, field := range strings.FieldsFunc(line, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '&' || r == '|' || r == '(' || r == ')' || r == '!'
	}) {
		if field == tag {
			return true
		}
	}
	return false
}

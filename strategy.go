package dmmkit

import "dmmkit/internal/search"

// Search-strategy types. A strategy decides which design-space vectors the
// engine evaluates next, one generation at a time; the engine evaluates
// each generation in parallel and feeds the measured results back before
// the next generation is proposed, so adaptive strategies stay
// deterministic at every parallelism level.
type (
	// SearchStrategy proposes generations of vectors (Next) and learns
	// from their evaluations (Observe). Set it on ExploreOpts.Strategy;
	// strategies carry state, so use a fresh value per exploration.
	SearchStrategy = search.Strategy
	// SearchResult is the evaluated fitness fed back to a strategy.
	SearchResult = search.Result
	// GASearchConfig tunes the genetic search (population, generations,
	// elitism, tournament size, crossover/mutation rates, patience,
	// pinned subspace). The zero value selects the documented defaults.
	GASearchConfig = search.GAConfig
	// FixedLeaves pins decision trees to specific leaves, restricting a
	// strategy to a subspace.
	FixedLeaves = search.Fixed
)

// NewGASearch returns a deterministic seeded genetic search strategy:
// tournament selection, per-tree crossover and mutation repaired against
// the design-space constraints, elitism, deduplication of already
// evaluated vectors, and a convergence stop after cfg.Patience stale
// generations.
//
// Reproducibility contract: identical seed and config produce the
// identical candidate stream — and the identical best vector — at every
// ExploreOpts.Parallelism, because the engine only advances the strategy
// between generation barriers.
func NewGASearch(seed int64, cfg GASearchConfig) SearchStrategy { return search.NewGA(seed, cfg) }

// NewExhaustiveSearch returns the non-adaptive baseline strategy: a
// single generation holding a uniform ceiling-stride sample of at most
// max valid vectors in enumeration order (max <= 0 selects 128). It is
// what Explore uses when ExploreOpts.Strategy is nil.
func NewExhaustiveSearch(max int) SearchStrategy { return search.NewExhaustive(max) }

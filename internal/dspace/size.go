package dspace

import "sync"

// spaceSize caches the number of valid design-space vectors: the count is
// a pure function of the constraint tables, so it is enumerated once per
// process instead of once per exploration.
var spaceSize = sync.OnceValue(func() int {
	return Enumerate(func(Vector) bool { return true })
})

// SpaceSize returns the number of valid decision vectors (~144k), cached
// after the first enumeration.
func SpaceSize() int { return spaceSize() }

// Example explore demonstrates the design space (paper Sec. 3) through
// the parallel exploration engine: the orthogonal decision trees, the
// interdependency constraints, the size of the valid space, and a sampled
// concurrent exploration with streaming results, progress reporting and
// early cancellation, showing where the methodology's single-walk design
// lands relative to brute-force search.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"dmmkit"
)

func main() {
	// The registry knows every manager family and workload; adding a
	// scenario is one dmmkit.RegisterManager / RegisterWorkload call.
	fmt.Printf("registered managers:  %s\n", strings.Join(dmmkit.Managers(), ", "))
	fmt.Printf("registered workloads: %s\n\n", strings.Join(dmmkit.Workloads(), ", "))

	// The valid region of the design space, after constraint pruning
	// (cached after the first enumeration).
	fmt.Printf("valid design-space points (atomic DM managers): %d\n\n", dmmkit.SpaceSize())

	// Constraint propagation at work: the paper's Fig. 3/4 example — no
	// block tags, yet splitting scheduled.
	var bad dmmkit.Vector
	bad.Set(dmmkit.TreeBlockTags, dmmkit.NoTags)
	bad.Set(dmmkit.TreeSplitWhen, dmmkit.Always)
	if err := dmmkit.ValidateVector(bad); err != nil {
		fmt.Printf("constraint check (paper Fig. 3/4): %v\n\n", err)
	}

	// A reduced DRR trace from the workload registry.
	tr, err := dmmkit.BuildWorkload("drr", dmmkit.WorkloadOpts{Seed: 7, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exploring against %q (%d events, live peak %d B)...\n\n",
		tr.Name, len(tr.Events), tr.MaxLiveBytes())

	// Concurrent exploration: every candidate replays the trace on a
	// private simulated heap, so evaluation fans out over all cores while
	// the candidate order stays deterministic. OnCandidate streams each
	// result as soon as it (and its predecessors) are done; OnProgress
	// reports completion counts.
	streamed := 0
	engine := dmmkit.NewEngine(0) // 0 = GOMAXPROCS workers
	cands, err := engine.Explore(context.Background(), tr, dmmkit.ExploreOpts{
		MaxCandidates:   64,
		IncludeDesigned: true,
		OnCandidate:     func(dmmkit.Candidate) { streamed++ },
		OnProgress: func(done, total int) {
			if done == total {
				fmt.Printf("evaluated %d/%d candidates\n", done, total)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d candidates in deterministic order\n\n", streamed)

	front := dmmkit.ParetoFront(cands)
	fmt.Println("footprint/work Pareto front:")
	for _, c := range front {
		mark := ""
		if c.Designed {
			mark = "   <== methodology's design"
		}
		fmt.Printf("  %8d B  %9d work%s\n", c.MaxFootprint, c.Work, mark)
	}
	better := 0
	var designedFootprint int64
	for _, c := range cands {
		if c.Designed {
			designedFootprint = c.MaxFootprint
		}
	}
	for _, c := range cands {
		if c.Err == nil && !c.Designed && c.MaxFootprint < designedFootprint {
			better++
		}
	}
	fmt.Printf("\nenumerated candidates with a smaller footprint than the designed manager: %d\n\n", better)

	// Evolutionary search: the seeded GA proposes generations of vectors,
	// learns from their measured footprints, and typically matches the
	// exhaustive sample's best while evaluating far fewer candidates. The
	// same seed reproduces the identical run at any parallelism.
	gaCands, err := engine.Explore(context.Background(), tr, dmmkit.ExploreOpts{
		Strategy: dmmkit.NewGASearch(7, dmmkit.GASearchConfig{
			Population: 14, Generations: 12, Patience: 8, MaxEvaluations: 48,
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	exhaustiveBest, _ := dmmkit.BestByFootprint(cands)
	gaBest, ok := dmmkit.BestByFootprint(gaCands)
	if ok {
		fmt.Printf("genetic search: best %d B after %d evaluations (exhaustive best %d B after %d)\n\n",
			gaBest.MaxFootprint, len(gaCands), exhaustiveBest.MaxFootprint, len(cands))
	}

	// Early cancellation: cancel the context after a handful of results.
	// Explore stops promptly and returns the contiguous prefix of
	// candidates it had already streamed, together with ctx's error.
	ctx, cancel := context.WithCancel(context.Background())
	partial, err := engine.Explore(ctx, tr, dmmkit.ExploreOpts{
		MaxCandidates: 64,
		OnCandidate: func(dmmkit.Candidate) {
			cancel() // stop after the first streamed candidate
		},
	})
	fmt.Printf("cancelled exploration: %d candidates kept, err = %v\n", len(partial), err)
}

package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Inventory is the machine-readable performance surface of the hot-path
// packages: for every function, whether the compiler can inline it (and
// the normalized reason when it cannot), which values escape to the
// heap, and how many bounds checks survive inside loops annotated
// //dmm:hotloop. It is the "got" side of the perf_budget.json golden.
type Inventory struct {
	// GoVersion is the major.minor toolchain prefix (e.g. "go1.24") the
	// inventory was measured with. Compiler diagnostics are not stable
	// across releases, so the gate only compares inventories from the
	// same prefix; CI pins the toolchain.
	GoVersion string               `json:"go_version"`
	Packages  map[string]*PkgFacts `json:"packages"`
}

// PkgFacts holds the per-function facts of one package.
type PkgFacts struct {
	Funcs map[string]*FuncFacts `json:"funcs"`
}

// FuncFacts is the budgeted surface of one function. Sites are keyed
// symbolically — by the compiler's own expression text, never by line
// number — so moving code around without changing its performance shape
// does not churn the budget.
type FuncFacts struct {
	// Inline reports whether the compiler can inline the function.
	Inline bool `json:"inline"`
	// InlineReason is the cannot-inline reason with digit runs
	// normalized to N ("function too complex: cost N exceeds budget N",
	// "marked go:noinline"). Empty when Inline is true.
	InlineReason string `json:"inline_reason,omitempty"`
	// Escapes counts heap-escape diagnostics by message text, e.g.
	// "&crcReader{...} escapes to heap" -> 2.
	Escapes map[string]int `json:"escapes,omitempty"`
	// HotLoops is the number of //dmm:hotloop-annotated loops in the
	// function (measured from source, not compiler output — it pins the
	// annotations themselves).
	HotLoops int `json:"hot_loops,omitempty"`
	// HotBoundsChecks counts IsInBounds/IsSliceInBounds checks the
	// compiler could not eliminate inside annotated hot loops.
	HotBoundsChecks int `json:"hot_bounds_checks,omitempty"`
}

func (inv *Inventory) fn(pkg, name string) *FuncFacts {
	p := inv.Packages[pkg]
	if p == nil {
		p = &PkgFacts{Funcs: map[string]*FuncFacts{}}
		inv.Packages[pkg] = p
	}
	f := p.Funcs[name]
	if f == nil {
		f = &FuncFacts{}
		p.Funcs[name] = f
	}
	return f
}

// resolver maps a diagnostic's file:line to the enclosing function
// symbol and reports whether the line is inside a //dmm:hotloop loop.
// The real implementation is srcMap; parser tests inject a fake.
type resolver interface {
	funcAt(file string, line int) string
	hotAt(file string, line int) bool
}

// diagRE matches a compiler diagnostic line: file.go:line:col: message.
// Everything else — "# pkg" headers are handled separately — is noise
// the parser must ignore: blank lines, "go:" toolchain notes, link
// output.
var diagRE = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.*)$`)

// closureRE matches compiler-synthesized closure symbols
// ((*Heap).segIndex.func1, Run.gowrap1, flush.deferwrap1). Their inline
// status churns with unrelated edits; escape and bounds facts inside
// them are attributed to the enclosing declared function via source
// ranges instead.
var closureRE = regexp.MustCompile(`\.(func|gowrap|deferwrap)\d+`)

// digitsRE normalizes volatile numbers (inline costs, budgets) out of
// cannot-inline reasons.
var digitsRE = regexp.MustCompile(`\d+`)

// typeArgsRE strips instantiation brackets from generic symbols.
var typeArgsRE = regexp.MustCompile(`\[.*\]`)

// parseM2 folds `go build -gcflags=-m=2` output into inv. Recognized
// messages: "can inline X with cost N as: ...", "cannot inline X:
// reason", the bare "... escapes to heap" site line (the duplicate
// header form ends in a colon and is skipped, as are the indented
// "flow:" detail lines), and "moved to heap: x".
func parseM2(out string, res resolver, inv *Inventory) {
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil || pkg == "" {
			continue
		}
		file, msg := m[1], m[4]
		lineNo, _ := strconv.Atoi(m[2])
		if strings.HasPrefix(msg, " ") { // indented detail ("flow: ...")
			continue
		}
		switch {
		case strings.HasPrefix(msg, "can inline "):
			name, _, ok := strings.Cut(msg[len("can inline "):], " with cost ")
			if !ok || closureRE.MatchString(name) {
				continue
			}
			inv.fn(pkg, typeArgsRE.ReplaceAllString(name, "")).Inline = true
		case strings.HasPrefix(msg, "cannot inline "):
			name, reason, ok := strings.Cut(msg[len("cannot inline "):], ": ")
			if !ok || closureRE.MatchString(name) {
				continue
			}
			f := inv.fn(pkg, typeArgsRE.ReplaceAllString(name, ""))
			f.Inline = false
			f.InlineReason = digitsRE.ReplaceAllString(reason, "N")
		case strings.HasSuffix(msg, " escapes to heap") || strings.HasPrefix(msg, "moved to heap: "):
			fn := res.funcAt(file, lineNo)
			if fn == "" {
				fn = "(package scope)"
			}
			f := inv.fn(pkg, fn)
			if f.Escapes == nil {
				f.Escapes = map[string]int{}
			}
			f.Escapes[msg]++
		}
	}
}

// parseBCE folds `go build -gcflags=-d=ssa/check_bce/debug=1` output
// into inv, counting only checks inside //dmm:hotloop-annotated loops.
func parseBCE(out string, res resolver, inv *Inventory) {
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil || pkg == "" {
			continue
		}
		file, msg := m[1], m[4]
		if msg != "Found IsInBounds" && msg != "Found IsSliceInBounds" {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		if !res.hotAt(file, lineNo) {
			continue
		}
		fn := res.funcAt(file, lineNo)
		if fn == "" {
			continue
		}
		inv.fn(pkg, fn).HotBoundsChecks++
	}
}

// srcMap maps diagnostic positions back to declared functions and
// //dmm:hotloop loop ranges, built by parsing every non-test source
// file of the measured packages.
type srcMap struct {
	files map[string]*fileInfo // keyed by absolute path
}

type fileInfo struct {
	pkg   string
	funcs []funcRange
	hot   []lineRange
}

type funcRange struct {
	name       string
	start, end int
}

type lineRange struct{ start, end int }

// loadSrcMap parses the non-test .go files of each listed package
// (importPath -> dir) and additionally records, per function, how many
// //dmm:hotloop loops it contains, seeding those counts into inv.
func loadSrcMap(pkgs map[string]string, inv *Inventory) (*srcMap, error) {
	sm := &srcMap{files: map[string]*fileInfo{}}
	for _, importPath := range sortedKeys(pkgs) {
		dir := pkgs[importPath]
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", dir, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			fi, err := parseSourceFile(path, importPath)
			if err != nil {
				return nil, err
			}
			sm.files[path] = fi
			for _, h := range fi.hot {
				if fn := fi.funcAtLine(h.start); fn != "" {
					inv.fn(importPath, fn).HotLoops++
				}
			}
		}
	}
	return sm, nil
}

func parseSourceFile(path, importPath string) (*fileInfo, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	fi := &fileInfo{pkg: importPath}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		fi.funcs = append(fi.funcs, funcRange{
			name:  funcSymbol(fn),
			start: fset.Position(fn.Pos()).Line,
			end:   fset.Position(fn.End()).Line,
		})
	}
	// A //dmm:hotloop comment marks the for/range statement on the same
	// line or the line directly below it.
	hotLines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "dmm:hotloop") {
				hotLines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	if len(hotLines) > 0 {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				start := fset.Position(n.Pos()).Line
				if hotLines[start] || hotLines[start-1] {
					fi.hot = append(fi.hot, lineRange{start: start, end: fset.Position(n.End()).Line})
				}
			}
			return true
		})
	}
	return fi, nil
}

// funcSymbol renders a declaration the way -m=2 names it: Name,
// T.Name, or (*T).Name.
func funcSymbol(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if ptr, ok := t.(*ast.StarExpr); ok {
		return "(*" + typeName(ptr.X) + ")." + fn.Name.Name
	}
	return typeName(t) + "." + fn.Name.Name
}

func typeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver: T[P]
		return typeName(e.X)
	case *ast.IndexListExpr:
		return typeName(e.X)
	default:
		return "?"
	}
}

func (fi *fileInfo) funcAtLine(line int) string {
	best, span := "", 1<<31-1
	for _, fr := range fi.funcs {
		if fr.start <= line && line <= fr.end && fr.end-fr.start < span {
			best, span = fr.name, fr.end-fr.start
		}
	}
	return best
}

func (sm *srcMap) funcAt(file string, line int) string {
	fi := sm.lookup(file)
	if fi == nil {
		return ""
	}
	return fi.funcAtLine(line)
}

func (sm *srcMap) hotAt(file string, line int) bool {
	fi := sm.lookup(file)
	if fi == nil {
		return false
	}
	for _, h := range fi.hot {
		if h.start <= line && line <= h.end {
			return true
		}
	}
	return false
}

func (sm *srcMap) lookup(file string) *fileInfo {
	abs, err := filepath.Abs(file)
	if err != nil {
		return nil
	}
	return sm.files[abs]
}

// listPackages expands the comma-separated patterns to importPath->dir.
func listPackages(patterns string) (map[string]string, error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}"}, strings.Split(patterns, ",")...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", patterns, err)
	}
	pkgs := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		ip, dir, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		pkgs[ip] = dir
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no packages match %q", patterns)
	}
	return pkgs, nil
}

// capture rebuilds the named packages with the given -gcflags and
// returns the compiler's diagnostics. A build cache hit still reprints
// them, so this is safe to run repeatedly.
func capture(gcflags string, pkgs []string) (string, error) {
	args := append([]string{"build", "-gcflags=" + gcflags}, pkgs...)
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build -gcflags=%s failed: %w\n%s", gcflags, err, out)
	}
	return string(out), nil
}

// measure builds the full inventory for the packages matching patterns.
func measure(patterns, goVersion string) (*Inventory, error) {
	pkgs, err := listPackages(patterns)
	if err != nil {
		return nil, err
	}
	inv := &Inventory{GoVersion: goVersion, Packages: map[string]*PkgFacts{}}
	sm, err := loadSrcMap(pkgs, inv)
	if err != nil {
		return nil, err
	}
	names := sortedKeys(pkgs)
	m2, err := capture("-m=2", names)
	if err != nil {
		return nil, err
	}
	parseM2(m2, sm, inv)
	bce, err := capture("-d=ssa/check_bce/debug=1", names)
	if err != nil {
		return nil, err
	}
	parseBCE(bce, sm, inv)
	return inv, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
